//===- tests/profile_test.cpp - Heap profiler unit tests -------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/HeapProfiler.h"

#include "runtime/Mutator.h"
#include "workloads/MLLib.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t keyProf() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "prof.test", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

MutatorConfig profiledConfig() {
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 256u << 10;
  C.EnableProfiling = true;
  return C;
}

} // namespace

TEST(ProfilerTest, CountsAllocationsPerSite) {
  static const uint32_t Site =
      AllocSiteRegistry::global().define("prof.alloc");
  Mutator M(profiledConfig());
  Frame F(M, keyProf());
  for (int I = 0; I < 10; ++I)
    F.set(1, M.allocRecord(Site, 2, 0));
  const SiteStats &S = M.profiler()->site(Site);
  EXPECT_EQ(S.AllocCount, 10u);
  EXPECT_EQ(S.AllocBytes, 10u * (2 + HeaderWords) * 8);
}

TEST(ProfilerTest, SurvivalAndDeathAccounting) {
  static const uint32_t LiveSite =
      AllocSiteRegistry::global().define("prof.live");
  static const uint32_t DeadSite =
      AllocSiteRegistry::global().define("prof.dead");
  Mutator M(profiledConfig());
  Frame F(M, keyProf());

  // One object stays reachable, many die young.
  F.set(1, M.allocRecord(LiveSite, 2, 0));
  for (int I = 0; I < 100; ++I)
    F.set(2, M.allocRecord(DeadSite, 2, 0));
  F.set(2, Value::null());
  M.collect(false);

  const SiteStats &Live = M.profiler()->site(LiveSite);
  const SiteStats &Dead = M.profiler()->site(DeadSite);
  EXPECT_EQ(Live.SurvivedFirstCount, 1u);
  EXPECT_GT(Live.CopiedBytes, 0u);
  EXPECT_EQ(Live.oldFraction(), 1.0);
  // Only the last dead-site object could have survived (held by slot 2
  // until nulled) — and it did not, since the slot was cleared.
  EXPECT_EQ(Dead.SurvivedFirstCount, 0u);
  EXPECT_EQ(Dead.DeathCount, 100u);
  EXPECT_EQ(Dead.oldFraction(), 0.0);
}

TEST(ProfilerTest, ReferentEdgesFeedScanElimination) {
  static const uint32_t Inner =
      AllocSiteRegistry::global().define("prof.inner");
  static const uint32_t Outer =
      AllocSiteRegistry::global().define("prof.outer");
  Mutator M(profiledConfig());
  Frame F(M, keyProf());

  // Outer objects point only at inner objects; both survive collections
  // (old% = 100), so both are pretenure candidates and outer's referent
  // set is within the chosen set -> scan elimination applies.
  static const uint32_t Keep = AllocSiteRegistry::global().define("prof.keep");
  for (int I = 0; I < 8; ++I) {
    F.set(2, M.allocRecord(Inner, 1, 0));
    Value Out = M.allocRecord(Outer, 1, 0b1);
    M.initField(Out, 0, F.get(2));
    F.set(3, Out);
    F.set(1, consPtr(M, Keep, slot(F, 3), slot(F, 1)));
  }
  M.collect(false);
  M.collect(false);

  auto Decisions = M.profiler()->derivePretenureSet(0.8, /*MinObjects=*/4);
  bool OuterChosen = false, OuterClosed = false, InnerChosen = false;
  for (const PretenureDecision &D : Decisions) {
    if (D.SiteId == Outer) {
      OuterChosen = true;
      OuterClosed = D.EliminateScan;
    }
    if (D.SiteId == Inner)
      InnerChosen = true;
  }
  EXPECT_TRUE(OuterChosen);
  EXPECT_TRUE(InnerChosen);
  EXPECT_TRUE(OuterClosed) << "outer references only pretenured sites";
}

TEST(ProfilerTest, SaveLoadRoundTrip) {
  HeapProfiler P;
  P.onAlloc(3, 100);
  P.onAlloc(3, 60);
  P.onCopy(3, 80);
  P.onSurviveFirst(3);
  P.onDeath(3, 7);
  P.onReferent(3, 5);
  P.onReferent(3, 9);

  std::string Path = "/tmp/tilgc_profile_test.txt";
  ASSERT_TRUE(P.save(Path));
  HeapProfiler Q;
  ASSERT_TRUE(Q.load(Path));
  const SiteStats &S = Q.site(3);
  EXPECT_EQ(S.AllocBytes, 160u);
  EXPECT_EQ(S.AllocCount, 2u);
  EXPECT_EQ(S.CopiedBytes, 80u);
  EXPECT_EQ(S.SurvivedFirstCount, 1u);
  EXPECT_EQ(S.DeathCount, 1u);
  EXPECT_EQ(S.DeathAgeKBSum, 7u);
  EXPECT_EQ(S.ReferentSites.size(), 2u);
  EXPECT_TRUE(S.ReferentSites.count(5));
  EXPECT_TRUE(S.ReferentSites.count(9));
  std::remove(Path.c_str());
}

TEST(ProfilerTest, PretenureCutoffRespectsMinObjects) {
  HeapProfiler P;
  // Site 2: 2 objects, both survive — but below the noise floor.
  P.onAlloc(2, 16);
  P.onAlloc(2, 16);
  P.onSurviveFirst(2);
  P.onSurviveFirst(2);
  // Site 4: 100 objects, 90 survive.
  for (int I = 0; I < 100; ++I)
    P.onAlloc(4, 16);
  for (int I = 0; I < 90; ++I)
    P.onSurviveFirst(4);

  auto Decisions = P.derivePretenureSet(0.8, /*MinObjects=*/8);
  ASSERT_EQ(Decisions.size(), 1u);
  EXPECT_EQ(Decisions[0].SiteId, 4u);
}

//===----------------------------------------------------------------------===
// Pretenuring behavior at the collector level
//===----------------------------------------------------------------------===

TEST(PretenureTest, PretenuredObjectsAllocateInTenuredAndKeepYoungRefs) {
  static const uint32_t PreSite =
      AllocSiteRegistry::global().define("pre.site");
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 512u << 10;
  C.Pretenure = {PretenureDecision{PreSite, /*EliminateScan=*/false}};
  Mutator M(C);
  Frame F(M, keyProf());

  Value Young = M.allocRecord(RuntimeSiteId, 1, 0);
  M.initField(Young, 0, Value::fromInt(41));
  F.set(2, Young);
  Value Old = M.allocRecord(PreSite, 1, 0b1);
  M.initField(Old, 0, F.get(2)); // Initializing old->young reference.
  F.set(1, Old);
  F.set(2, Value::null());

  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  EXPECT_TRUE(GC.inTenured(F.get(1).asPtr()))
      << "pretenured object must be born in the old generation";
  EXPECT_GT(M.gcStats().PretenuredBytes, 0u);

  M.collect(false);
  // The pretenured-region scan must have kept (and promoted) the young
  // referent even though no barrier recorded the initializing store.
  Value Kept = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Kept.isNull());
  EXPECT_EQ(Mutator::getField(Kept, 0).asInt(), 41);
  EXPECT_GT(M.gcStats().PretenuredScannedBytes, 0u);
}

TEST(PretenureTest, ScanEliminationSkipsRegions) {
  static const uint32_t ElimSite =
      AllocSiteRegistry::global().define("pre.elim");
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 512u << 10;
  C.Pretenure = {PretenureDecision{ElimSite, /*EliminateScan=*/true}};
  Mutator M(C);
  Frame F(M, keyProf());

  for (int I = 0; I < 50; ++I)
    F.set(1, M.allocRecord(ElimSite, 2, 0));
  M.collect(false);
  EXPECT_GT(M.gcStats().PretenuredScanSkippedBytes, 0u);
  EXPECT_EQ(M.gcStats().PretenuredScannedBytes, 0u);
  // The objects themselves are alive and intact.
  EXPECT_FALSE(F.get(1).isNull());
}
