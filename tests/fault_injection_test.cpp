//===- tests/fault_injection_test.cpp - Deterministic fault torture -------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives every FaultInjector point through real workloads and asserts the
/// resilience contract: a run under injected faults either completes with
/// the byte-identical checksum of an uninjected run, or fails with a
/// structured error — and the heap verifies clean either way. The parallel
/// evacuator must degrade to its serial recovery drain when a worker
/// faults, never deadlock on the termination protocol.
///
/// Like oom_test.cpp, this file is also compiled into the NDEBUG
/// resilience binary. The seeded ResilienceTorture suite reads
/// TILGC_TORTURE_SEED / TILGC_VERIFY_LEVEL so CI can sweep fault schedules
/// without recompiling.
///
//===----------------------------------------------------------------------===//

#include "gc/HeapError.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorGroup.h"
#include "support/FaultInjector.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace tilgc;

namespace {

/// Arms nothing; guarantees the global injector is clean before and after
/// each test regardless of how the test exits.
struct ScopedFaults {
  ScopedFaults() { FaultInjector::global().reset(); }
  ~ScopedFaults() { FaultInjector::global().reset(); }
};

uint32_t faultKey() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("fault.roots", {Trace::pointer(), Trace::pointer()}));
  return K;
}

uint64_t envSeed(uint64_t Default) {
  if (const char *E = std::getenv("TILGC_TORTURE_SEED"))
    return static_cast<uint64_t>(std::strtoull(E, nullptr, 10));
  return Default;
}

unsigned envVerifyLevel(unsigned Default) {
  if (const char *E = std::getenv("TILGC_VERIFY_LEVEL"))
    return static_cast<unsigned>(std::atoi(E));
  return Default;
}

uint64_t envU64(const char *Name, uint64_t Default) {
  if (const char *E = std::getenv(Name))
    return static_cast<uint64_t>(std::strtoull(E, nullptr, 10));
  return Default;
}

MutatorConfig faultConfig(const char *Name, unsigned GcThreads) {
  MutatorConfig C;
  C.Name = Name;
  C.BudgetBytes = 2u << 20;
  C.NurseryLimitBytes = 96u << 10; // Tight: many parallel minor GCs.
  C.GcThreads = GcThreads;
  C.VerifyLevel = envVerifyLevel(1);
  return C;
}

uint64_t runLife(const MutatorConfig &C) {
  Mutator M(C);
  Workload *W = findWorkload("Life");
  EXPECT_NE(W, nullptr);
  return W->run(M, /*Scale=*/0.12);
}

} // namespace

TEST(FaultInjector, SeededScheduleIsDeterministic) {
  ScopedFaults Guard;
  FaultInjector &FI = FaultInjector::global();
  FI.armFromSeed(FaultPoint::WorkerThrow, 42, 1000);
  uint64_t FireA = 0;
  for (uint64_t I = 1; I <= 1000; ++I)
    if (FI.shouldFire(FaultPoint::WorkerThrow))
      FireA = I;
  EXPECT_GT(FireA, 0u);
  FI.reset();
  FI.armFromSeed(FaultPoint::WorkerThrow, 42, 1000);
  uint64_t FireB = 0;
  for (uint64_t I = 1; I <= 1000; ++I)
    if (FI.shouldFire(FaultPoint::WorkerThrow))
      FireB = I;
  EXPECT_EQ(FireA, FireB);
  // Different points draw different crossings from the same seed.
  FI.reset();
  FI.armFromSeed(FaultPoint::WorkerStall, 42, 1000);
  uint64_t FireC = 0;
  for (uint64_t I = 1; I <= 1000; ++I)
    if (FI.shouldFire(FaultPoint::WorkerStall))
      FireC = I;
  EXPECT_NE(FireA, FireC);
}

TEST(FaultInjector, DisarmedInjectorCountsNothing) {
  ScopedFaults Guard;
  EXPECT_FALSE(FaultInjector::enabled());
  uint64_t Sum = runLife(faultConfig("life-clean", 1));
  EXPECT_EQ(Sum, findWorkload("Life")->expected(0.12));
  EXPECT_EQ(FaultInjector::global().crossings(FaultPoint::SpaceAllocNull),
            0u);
}

TEST(FaultInjection, AllocNullDrivesEscalationLadderToSameChecksum) {
  uint64_t Expected = findWorkload("Life")->expected(0.12);
  ScopedFaults Guard;
  // Fail three consecutive mutator allocations somewhere in the run: each
  // forces an early collection; the ladder retries and the program must
  // not observe any of it.
  FaultInjector::global().arm(FaultPoint::SpaceAllocNull, 5000,
                              /*FireCount=*/3);
  uint64_t Sum = runLife(faultConfig("life-allocnull", 1));
  EXPECT_EQ(Sum, Expected);
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::SpaceAllocNull), 1u);
}

TEST(FaultInjection, FromSpacePoisonPassesVerifierOnCleanRuns) {
  uint64_t Expected = findWorkload("Life")->expected(0.12);
  ScopedFaults Guard;
  FaultInjector::global().arm(FaultPoint::FromSpacePoison, 1,
                              FaultInjector::Forever);
  MutatorConfig C = faultConfig("life-poison", 1);
  C.VerifyLevel = 3; // Poison + integrity checks + post-GC walk.
  uint64_t Sum = 0;
  {
    Mutator M(C);
    Sum = findWorkload("Life")->run(M, 0.12);
    std::string Error;
    EXPECT_TRUE(M.verifyHeap(Error)) << Error;
  }
  EXPECT_EQ(Sum, Expected);
}

/// The graceful-degradation acceptance matrix: a worker faulting mid-pass
/// at GcThreads 2 and 8 must fall back to the serial recovery drain, finish
/// the collection, and leave the mutator computing the exact uninjected
/// checksum.
class WorkerFaultDegradation
    : public ::testing::TestWithParam<std::tuple<unsigned, FaultPoint>> {};

TEST_P(WorkerFaultDegradation, RecoversSeriallyWithIdenticalChecksum) {
  unsigned Threads = std::get<0>(GetParam());
  FaultPoint P = std::get<1>(GetParam());
  uint64_t Expected = findWorkload("Life")->expected(0.12);

  ScopedFaults Guard;
  if (P == FaultPoint::WorkerThrow)
    // Forever: every worker of every parallel pass throws at entry, so
    // every collection runs entirely through the serial recovery drain.
    FaultInjector::global().arm(P, 1, FaultInjector::Forever);
  else
    // Exactly one refused handout: one worker faults and the recovery
    // drain (whose own handouts are later crossings) finishes its work. A
    // persistent refusal would starve recovery too — that terminal path is
    // the death test below.
    FaultInjector::global().arm(P, 1, /*FireCount=*/1);

  MutatorConfig C = faultConfig("life-workerfault", Threads);
  Mutator M(C);
  uint64_t Sum = findWorkload("Life")->run(M, 0.12);
  EXPECT_EQ(Sum, Expected);
  EXPECT_GE(FaultInjector::global().fired(P), 1u);
  EXPECT_GE(M.gcStats().EvacWorkerFaults, 1u);
  EXPECT_GE(M.gcStats().EvacSerialRecoveries, 1u);
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

INSTANTIATE_TEST_SUITE_P(
    Threads, WorkerFaultDegradation,
    ::testing::Combine(::testing::Values(2u, 8u),
                       ::testing::Values(FaultPoint::WorkerThrow,
                                         FaultPoint::SpaceBlockHandout)),
    [](const ::testing::TestParamInfo<std::tuple<unsigned, FaultPoint>>
           &Info) {
      return std::string(FaultInjector::pointName(std::get<1>(Info.param)))
                 .substr(std::string(FaultInjector::pointName(
                                         std::get<1>(Info.param)))
                             .find_last_of('-') +
                         1) +
             "_t" + std::to_string(std::get<0>(Info.param));
    });

TEST(FaultInjection, WorkerStallDoesNotDeadlockTermination) {
  uint64_t Expected = findWorkload("Life")->expected(0.12);
  ScopedFaults Guard;
  FaultInjector::global().arm(FaultPoint::WorkerStall, 1, /*FireCount=*/4);
  Mutator M(faultConfig("life-stall", 4));
  uint64_t Sum = findWorkload("Life")->run(M, 0.12);
  EXPECT_EQ(Sum, Expected);
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::WorkerStall), 1u);
  // A stall is not a fault: no recovery pass should have run.
  EXPECT_EQ(M.gcStats().EvacWorkerFaults, 0u);
}

TEST(FaultInjectionDeath, PersistentBlockStarvationDiesInRecovery) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Every handout refused, including during serial recovery: a genuine
  // mid-evacuation OOM. Must die with the structured fatal message in
  // every build mode — never hang, never scribble.
  EXPECT_DEATH(
      {
        FaultInjector::global().reset();
        FaultInjector::global().arm(FaultPoint::SpaceBlockHandout, 1,
                                    FaultInjector::Forever);
        MutatorConfig C;
        C.Name = "starved";
        C.BudgetBytes = 2u << 20;
        C.NurseryLimitBytes = 96u << 10;
        C.GcThreads = 2;
        Mutator M(C);
        uint32_t Site = AllocSiteRegistry::global().define("starved.site");
        Frame F(M, faultKey());
        for (uint64_t I = 0; I < 1000000; ++I) {
          Value Cell = M.allocRecord(Site, 2, 0b10);
          M.initField(Cell, 1, F.get(1));
          F.set(1, Cell);
        }
      },
      "destination space overflowed during serial recovery");
}

/// Seeded end-to-end torture: arm a seed-derived subset of fault points,
/// run a workload under a hard limit, and require the resilience contract —
/// identical checksum or structured HeapExhausted, heap verifiably intact
/// in both cases. TILGC_TORTURE_SEED shifts the whole schedule; CI sweeps
/// it without recompiling, and TILGC_GC_DEADLINE_US /
/// TILGC_SAFEPOINT_DEADLINE_US override the seed-chosen watchdog deadlines
/// so the supervision step can tighten them to bark-inducing values.
///
/// The matrix spans every post-PR-3 subsystem: both major engines
/// (semispace and mark-compact, so MarkPlanThrow exercises the failover
/// path), K ∈ {1, 2, 8} mutators through the real MutatorGroup runtime
/// (so TlabRefillFail and SafepointNoShow hit live TLAB refills and
/// rendezvous), all three barrier families (so CardSweepThrow hits real
/// dirty-card sweeps), and HostGrowFail under every reservation.
class ResilienceTorture : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ResilienceTorture, CompletesOrFailsStructurally) {
  uint64_t Seed = envSeed(0) * 7919 + GetParam();
  const char *Names[] = {"Life", "Nqueen", "Peg", "Checksum"};
  Workload *W = findWorkload(Names[Seed % 4]);
  ASSERT_NE(W, nullptr);
  uint64_t Expected = W->expected(0.12);

  ScopedFaults Guard;
  FaultInjector &FI = FaultInjector::global();
  unsigned Threads = (Seed >> 2) % 3 == 0 ? 1 : ((Seed >> 2) % 3 == 1 ? 2 : 8);
  bool MarkCompact = (Seed >> 5) & 1;
  FI.armFromSeed(FaultPoint::SpaceAllocNull, Seed, 20000, 2);
  if (Threads > 1) {
    FI.armFromSeed(FaultPoint::WorkerThrow, Seed, 500, 1);
    FI.armFromSeed(FaultPoint::SpaceBlockHandout, Seed, 200, 1);
    // Multi-mutator runtime points: a refused TLAB handout degrades to the
    // stopped-allocation slow path; a no-show skips one park poll (bounded
    // FireCount so the rendezvous still completes).
    FI.armFromSeed(FaultPoint::TlabRefillFail, Seed, 100, 2);
    FI.armFromSeed(FaultPoint::SafepointNoShow, Seed, 50, 1);
  }
  if (MarkCompact)
    // Aborts the still-mutation-free mark/plan phase; the collection must
    // fail over to a semispace evacuation with the checksum intact.
    FI.armFromSeed(FaultPoint::MarkPlanThrow, Seed, 200, 1);
  // Fires only when a card/hybrid configuration actually sweeps cards;
  // harmless (zero crossings) under pure SSB.
  FI.armFromSeed(FaultPoint::CardSweepThrow, Seed, 100, 1);
  // At most 2 consecutive refusals: the reservation retry loop (4 attempts
  // with backoff) must absorb them without surfacing anything.
  FI.armFromSeed(FaultPoint::HostGrowFail, Seed, 20, 2);
  if (Seed & 1)
    FI.arm(FaultPoint::FromSpacePoison, 1, FaultInjector::Forever);

  MutatorConfig C = faultConfig("torture", Threads);
  C.HardLimitBytes = 8u << 20;
  C.MajorGc = MarkCompact ? GenerationalCollector::MajorGcKind::MarkCompact
                          : GenerationalCollector::MajorGcKind::Semispace;
  switch ((Seed >> 6) % 3) {
  case 0:
    break; // SequentialStoreBuffer default.
  case 1:
    C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    break;
  case 2:
    C.Barrier = GenerationalCollector::BarrierKind::Hybrid;
    break;
  }
  // Watchdog supervision rides along on some seeds. The defaults are wide
  // enough that barks are rare in a healthy run; a bark that does fire
  // under Recover aborts only the mutation-free mark/plan phase, so the
  // checksum contract below still holds either way.
  C.GcDeadlineMicros = envU64("TILGC_GC_DEADLINE_US", (Seed & 2) ? 200000 : 0);
  C.SafepointDeadlineMicros =
      envU64("TILGC_SAFEPOINT_DEADLINE_US", (Seed & 4) ? 100000 : 0);

  bool Structured = false;
  std::string VerifyError;
  bool Verified = false;
  if (Threads == 1) {
    Mutator M(C);
    uint64_t Sum = 0;
    try {
      Sum = W->run(M, 0.12);
    } catch (const HeapExhausted &E) {
      Structured = true;
      EXPECT_NE(std::string(E.what()).find("tilgc heap state"),
                std::string::npos);
    } catch (const MLRaise &) {
      Structured = true; // Workload unwound through an injected failure.
    }
    if (!Structured) {
      EXPECT_EQ(Sum, Expected) << W->name() << " seed " << Seed;
    }
    FI.reset(); // Verify with injection quiesced.
    Verified = M.verifyHeap(VerifyError);
  } else {
    MutatorGroup G(C, Threads);
    std::vector<uint64_t> Sums(Threads, 0);
    try {
      G.run([&](Mutator &M, unsigned I) {
        std::unique_ptr<Workload> Local = makeWorkloadByName(W->name());
        Sums[I] = Local->run(M, 0.12);
      });
      for (unsigned I = 0; I < Threads; ++I)
        EXPECT_EQ(Sums[I], Expected)
            << W->name() << " seed " << Seed << " thread " << I;
    } catch (const HeapExhausted &E) {
      Structured = true;
      EXPECT_NE(std::string(E.what()).find("tilgc heap state"),
                std::string::npos);
    } catch (const MLRaise &) {
      Structured = true;
    }
    (void)Structured;
    FI.reset();
    Verified = G.mutator(0).verifyHeap(VerifyError);
  }
  EXPECT_TRUE(Verified) << W->name() << " seed " << Seed << ": "
                        << VerifyError;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceTorture,
                         ::testing::Range<uint64_t>(1, 13));
