//===- tests/parallel_evacuator_test.cpp - Parallel copy-engine tests ------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Correctness of the work-stealing evacuation engine: a large shared/cyclic
/// graph must survive parallel evacuation intact at every thread count, the
/// destination space must stay linearly walkable (block-tail pads skipped),
/// and aggregate statistics — BytesCopied, ObjectsCopied, per-site profiler
/// totals — must be identical to the serial engine's, since pretenuring
/// decisions are derived from them.
///
/// Note the harness may have a single CPU; GcThreads > 1 then exercises the
/// full protocol (CAS forwarding, block handout, stealing, termination)
/// under timesharing rather than true parallelism.
///
//===----------------------------------------------------------------------===//

#include "gc/ParallelEvacuator.h"

#include "gc/HeapVerifier.h"
#include "runtime/Mutator.h"
#include "support/WorkerPool.h"

#include <gtest/gtest.h>

#include <tuple>
#include <unordered_map>
#include <vector>

using namespace tilgc;

namespace {

//===----------------------------------------------------------------------===//
// Engine-level tests over raw spaces.
//===----------------------------------------------------------------------===//

constexpr size_t NumNodes = 30000;
constexpr uint32_t NodeFields = 3; // {next, cross, data}
constexpr uint32_t NodeMask = 0b011;

/// Builds a deterministic graph: a spine list where every node also holds a
/// cross edge to a pseudo-random earlier node (heavy sharing) and the last
/// node loops back to the first (a long cycle). Returns the spine head.
Word *buildGraph(Space &From) {
  std::vector<Word *> Nodes;
  Nodes.reserve(NumNodes);
  uint64_t Rng = 88172645463325252ULL;
  for (size_t I = 0; I < NumNodes; ++I) {
    Word *P = From.allocate(header::make(ObjectKind::Record, NodeFields,
                                         NodeMask),
                            meta::make(1 + static_cast<uint32_t>(I % 7), 0));
    assert(P && "test from-space too small");
    P[0] = P[1] = 0;
    P[2] = static_cast<Word>(I * 2 + 1);
    if (I > 0) {
      Nodes.back()[0] = reinterpret_cast<Word>(P);
      Rng ^= Rng << 13, Rng ^= Rng >> 7, Rng ^= Rng << 17;
      P[1] = reinterpret_cast<Word>(Nodes[Rng % I]);
    }
    Nodes.push_back(P);
  }
  Nodes.back()[0] = reinterpret_cast<Word>(Nodes.front());
  return Nodes.front();
}

/// Canonical, address-independent structure hash (first-visit numbering,
/// iterative so the 30k-deep spine cannot overflow the C++ stack).
uint64_t graphHash(Word *Root) {
  std::unordered_map<const Word *, uint64_t> Visited;
  uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&](uint64_t V) { Hash = (Hash ^ V) * 1099511628211ULL; };
  std::vector<Word *> Stack{Root};
  Visited.emplace(Root, 0);
  while (!Stack.empty()) {
    Word *P = Stack.back();
    Stack.pop_back();
    Mix(P[2]);
    for (unsigned F = 0; F < 2; ++F) {
      Word *Q = reinterpret_cast<Word *>(P[F]);
      if (!Q) {
        Mix(0x11);
        continue;
      }
      auto [It, Fresh] = Visited.emplace(Q, Visited.size());
      Mix(It->second);
      if (Fresh)
        Stack.push_back(Q);
    }
  }
  return Hash;
}

struct EngineResult {
  uint64_t Hash = 0;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0;
  size_t DestObjects = 0;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> Sites;
};

EngineResult evacuateWith(unsigned Threads) {
  Space From, To;
  size_t GraphBytes = NumNodes * (NodeFields + HeaderWords) * sizeof(Word);
  From.reserve(GraphBytes + 4096);
  To.reserve(GraphBytes +
             ParallelEvacuator::reserveSlackBytes(GraphBytes, Threads));
  Word *Root = buildGraph(From);
  Word RootSlot = reinterpret_cast<Word>(Root);

  HeapProfiler Prof;
  Evacuator::Config C;
  C.From = {&From, nullptr, nullptr};
  C.Dest = &To;
  C.Profiler = &Prof;
  C.CountSurvivedFirst = true;

  WorkerPool Pool(Threads);
  ParallelEvacuator E(C, Pool);
  E.addRoot(&RootSlot);
  E.run();

  EngineResult R;
  R.Hash = graphHash(reinterpret_cast<Word *>(RootSlot));
  R.BytesCopied = E.bytesCopied();
  R.ObjectsCopied = E.objectsCopied();
  To.walk([&](Word *, Word, bool) { ++R.DestObjects; });
  for (uint32_t S = 0; S < Prof.numSites(); ++S) {
    const SiteStats &SS = Prof.site(S);
    R.Sites.emplace_back(SS.CopiedBytes, SS.SurvivedFirstCount,
                         SS.DeathCount);
  }

  HeapVerifier V;
  V.addSpace(&To, "to");
  std::string Error;
  EXPECT_TRUE(V.verifyHeap(Error)) << Error;
  return R;
}

class ParallelEvacuatorEngine : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelEvacuatorEngine, MatchesSerialOnSharedCyclicGraph) {
  // Reference values from the serial engine.
  static const EngineResult Serial = [] {
    Space From, To;
    size_t GraphBytes = NumNodes * (NodeFields + HeaderWords) * sizeof(Word);
    From.reserve(GraphBytes + 4096);
    To.reserve(GraphBytes + 4096);
    Word *Root = buildGraph(From);
    Word RootSlot = reinterpret_cast<Word>(Root);
    HeapProfiler Prof;
    Evacuator::Config C;
    C.From = {&From, nullptr, nullptr};
    C.Dest = &To;
    C.Profiler = &Prof;
    C.CountSurvivedFirst = true;
    Evacuator E(C);
    E.forwardSlot(&RootSlot);
    E.drain();
    EngineResult R;
    R.Hash = graphHash(reinterpret_cast<Word *>(RootSlot));
    R.BytesCopied = E.bytesCopied();
    R.ObjectsCopied = E.objectsCopied();
    To.walk([&](Word *, Word, bool) { ++R.DestObjects; });
    for (uint32_t S = 0; S < Prof.numSites(); ++S) {
      const SiteStats &SS = Prof.site(S);
      R.Sites.emplace_back(SS.CopiedBytes, SS.SurvivedFirstCount,
                           SS.DeathCount);
    }
    return R;
  }();

  EngineResult R = evacuateWith(GetParam());
  EXPECT_EQ(R.Hash, Serial.Hash);
  EXPECT_EQ(R.BytesCopied, Serial.BytesCopied);
  EXPECT_EQ(R.ObjectsCopied, Serial.ObjectsCopied);
  EXPECT_EQ(R.ObjectsCopied, NumNodes);
  EXPECT_EQ(R.DestObjects, NumNodes) << "pads must be skipped, not traced";
  EXPECT_EQ(R.Sites, Serial.Sites);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEvacuatorEngine,
                         ::testing::Values(1u, 2u, 8u));

//===----------------------------------------------------------------------===//
// Collector-level determinism through the Mutator facade.
//===----------------------------------------------------------------------===//

uint32_t siteFor(unsigned I) {
  static const uint32_t Base = [] {
    uint32_t First = AllocSiteRegistry::global().define("par.site0");
    for (int K = 1; K < 5; ++K)
      AllocSiteRegistry::global().define("par.site" + std::to_string(K));
    return First;
  }();
  return Base + (I % 5);
}

uint32_t rootsKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "par.roots", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                    Trace::pointer()}));
  return K;
}

/// Deterministic mutator workload: builds linked lists with shared tails
/// across four root slots, mutates old cells through the write barrier
/// (including cycle-creating back-edges), drops roots, and forces minor and
/// major collections along the way.
uint64_t mutate(Mutator &M) {
  Frame F(M, rootsKey());
  uint64_t Rng = 0x9E3779B97F4A7C15ULL;
  auto Rand = [&] {
    Rng ^= Rng << 13, Rng ^= Rng >> 7, Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned I = 0; I < 6000; ++I) {
    unsigned R = 1 + Rand() % 4; // Frame slots are 1-based (0 is the key).
    // cons(I, F[R]) with a second pointer field sharing another root's list.
    Value Cell = M.allocRecord(siteFor(I), 3, 0b110);
    M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
    M.initField(Cell, 1, F.get(R));
    M.initField(Cell, 2, F.get(1 + Rand() % 4));
    F.set(R, Cell);
    if (I % 97 == 0) {
      // Barriered back-edge into an old cell: may create a cycle.
      Value Old = F.get(1 + R % 4);
      if (!Old.isNull())
        M.writeField(Old, 2, F.get(R), /*IsPointerField=*/true);
    }
    if (I % 211 == 0)
      F.set(1 + Rand() % 4, Value::null());
    if (I % 509 == 0)
      M.collect(/*Major=*/false);
    if (I % 1777 == 0)
      M.collect(/*Major=*/true);
  }
  M.collect(/*Major=*/true);

  // Address-independent hash over everything reachable from the frame.
  std::unordered_map<const Word *, uint64_t> Visited;
  uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&](uint64_t V) { Hash = (Hash ^ V) * 1099511628211ULL; };
  std::vector<Value> Stack;
  for (unsigned R = 1; R <= 4; ++R)
    Stack.push_back(F.get(R));
  while (!Stack.empty()) {
    Value V = Stack.back();
    Stack.pop_back();
    if (V.isNull()) {
      Mix(0x11);
      continue;
    }
    auto [It, Fresh] = Visited.emplace(V.asPtr(), Visited.size());
    Mix(It->second);
    if (!Fresh)
      continue;
    Mix(Mutator::getField(V, 0).bits());
    Stack.push_back(Mutator::getField(V, 1));
    Stack.push_back(Mutator::getField(V, 2));
  }
  return Hash;
}

struct RunOutcome {
  uint64_t Hash;
  uint64_t NumGC;
  uint64_t BytesCopied;
  uint64_t ObjectsCopied;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> Sites;
};

RunOutcome runWorkload(CollectorKind Kind, unsigned Threads,
                       unsigned PromoteAge) {
  // Configured so that only the workload's *explicit* collections trigger:
  // block-handout pad waste inflates space usage under parallel runs, and
  // an allocation-triggered (or pressure-chained) GC at a different point
  // would legitimately change the copy totals being compared. The tiny
  // target-liveness ratios keep the resize policy from shrinking spaces
  // down to where pads could shift the collection cadence.
  MutatorConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.BudgetBytes = 16u << 20;
  Cfg.NurseryLimitBytes = 512u << 10;
  Cfg.SemispaceTargetLiveness = 1e-6; // live/r always clamps to the max:
  Cfg.TenuredTargetLiveness = 1e-6;   // spaces never shrink, no auto GCs.
  Cfg.GcThreads = Threads;
  Cfg.PromoteAgeThreshold = PromoteAge;
  Cfg.EnableProfiling = true;
  Cfg.VerifyHeapAfterGC = true;
  Mutator M(Cfg);
  RunOutcome R;
  R.Hash = mutate(M);
  R.NumGC = M.gcStats().NumGC;
  R.BytesCopied = M.gcStats().BytesCopied;
  R.ObjectsCopied = M.gcStats().ObjectsCopied;
  const HeapProfiler *P = M.profiler();
  for (uint32_t S = 0; S < P->numSites(); ++S) {
    const SiteStats &SS = P->site(S);
    R.Sites.emplace_back(SS.CopiedBytes, SS.SurvivedFirstCount,
                         SS.DeathCount);
  }
  return R;
}

class ParallelCollector : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParallelCollector, SemispaceMatchesSerial) {
  static const RunOutcome Serial =
      runWorkload(CollectorKind::Semispace, 1, 1);
  RunOutcome R = runWorkload(CollectorKind::Semispace, GetParam(), 1);
  EXPECT_EQ(R.Hash, Serial.Hash);
  ASSERT_EQ(R.NumGC, Serial.NumGC) << "collection cadence diverged";
  EXPECT_EQ(R.BytesCopied, Serial.BytesCopied);
  EXPECT_EQ(R.ObjectsCopied, Serial.ObjectsCopied);
  EXPECT_EQ(R.Sites, Serial.Sites);
}

TEST_P(ParallelCollector, GenerationalMatchesSerial) {
  static const RunOutcome Serial =
      runWorkload(CollectorKind::Generational, 1, 1);
  RunOutcome R = runWorkload(CollectorKind::Generational, GetParam(), 1);
  EXPECT_EQ(R.Hash, Serial.Hash);
  ASSERT_EQ(R.NumGC, Serial.NumGC) << "collection cadence diverged";
  EXPECT_EQ(R.BytesCopied, Serial.BytesCopied);
  EXPECT_EQ(R.ObjectsCopied, Serial.ObjectsCopied);
  EXPECT_EQ(R.Sites, Serial.Sites);
}

TEST_P(ParallelCollector, AgedTenuringStructureSurvives) {
  // Under aged tenuring the parallel engine may promote early when a young
  // block grant fails, so copy totals can legitimately differ from the
  // serial run; the live structure must still be preserved exactly.
  static const uint64_t SerialHash =
      runWorkload(CollectorKind::Generational, 1, 3).Hash;
  EXPECT_EQ(runWorkload(CollectorKind::Generational, GetParam(), 3).Hash,
            SerialHash);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelCollector,
                         ::testing::Values(2u, 8u));

} // namespace
