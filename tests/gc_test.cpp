//===- tests/gc_test.cpp - Collector-level behavioral tests ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <gtest/gtest.h>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t siteGc() {
  static const uint32_t S = AllocSiteRegistry::global().define("gctest.site");
  return S;
}

uint32_t keyGc() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "gctest.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

} // namespace

TEST(AgedTenuringTest, SurvivorsStayYoungUntilThreshold) {
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.PromoteAgeThreshold = 3;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  F.set(1, consInt(M, siteGc(), 7, slot(F, 2)));
  auto &GC = static_cast<GenerationalCollector &>(M.collector());

  // Age 0 -> 1: stays young. Age 1 -> 2: stays young. Age 2 -> 3: tenured.
  M.collect(false);
  EXPECT_TRUE(GC.inNursery(F.get(1).asPtr())) << "age 1 must stay young";
  M.collect(false);
  EXPECT_TRUE(GC.inNursery(F.get(1).asPtr())) << "age 2 must stay young";
  M.collect(false);
  EXPECT_TRUE(GC.inTenured(F.get(1).asPtr()))
      << "age 3 reaches the threshold";
  EXPECT_EQ(headInt(F.get(1)), 7);
}

TEST(AgedTenuringTest, PromotionCreatedOldToYoungEdgeSurvives) {
  // The regression the heap verifier caught: promote a parent whose child
  // stays young; the edge exists in the old generation with no barrier
  // record. The next minor collection must still find the child.
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.PromoteAgeThreshold = 2;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  auto &GC = static_cast<GenerationalCollector &>(M.collector());

  // Parent ages to 1 (one collection), then points at a fresh age-0 child;
  // the next collection promotes the parent (age 2) while the child stays
  // young (age 1): a collector-created old->young edge.
  F.set(1, M.allocRecord(siteGc(), 1, 0b1));
  M.collect(false); // Parent age 1, still young.
  ASSERT_TRUE(GC.inNursery(F.get(1).asPtr()));
  F.set(2, consInt(M, siteGc(), 99, slot(F, 3)));
  M.writeField(F.get(1), 0, F.get(2), true);
  F.set(2, Value::null());
  M.collect(false); // Parent promoted; child copied back young.
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));
  Value Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  ASSERT_TRUE(GC.inNursery(Child.asPtr()));

  // Drop the stack reference to the child: the ONLY path is the untracked
  // old->young edge. The next minor collection must preserve it.
  M.collect(false);
  Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  EXPECT_EQ(headInt(Child), 99);
}

TEST(SemispaceTest, GrowsPastBudgetWhenLiveDemandsIt) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 64u << 10; // Far below the live set we will build.
  Mutator M(C);
  Frame F(M, keyGc());
  for (int I = 0; I < 10000; ++I) // ~320KB live.
    F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
  EXPECT_GT(M.gcStats().BudgetOverruns, 0u);
  EXPECT_EQ(mllib::length(F.get(1)), 10000u);
}

TEST(SemispaceTest, ResizesTowardTargetLiveness) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 32u << 20;
  C.SemispaceTargetLiveness = 0.5; // Spaces ~2x live: frequent GCs.
  Mutator M(C);
  Frame F(M, keyGc());
  // Small live set, lots of garbage: after the first collection the
  // spaces shrink toward 2x live, so collections keep happening even
  // though the budget would allow one huge space.
  for (int I = 0; I < 300000; ++I) {
    if (I % 3000 == 0)
      F.set(1, Value::null());
    F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
  }
  EXPECT_GT(M.gcStats().NumGC, 5u);
}

TEST(GenerationalTest, MajorCollectionsReclaimTenuredGarbage) {
  MutatorConfig C;
  C.BudgetBytes = 512u << 10;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  // Repeatedly build a list that survives one minor collection (promoted)
  // and then gets dropped: classic tenured garbage (the PIA pattern).
  for (int Round = 0; Round < 40; ++Round) {
    F.set(1, Value::null());
    for (int I = 0; I < 3000; ++I)
      F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
    M.collect(false); // Promote.
  }
  F.set(1, Value::null());
  EXPECT_GT(M.gcStats().NumMajorGC, 0u)
      << "tenured pressure must trigger major collections";
  // After a final major, live data is near zero again.
  M.collect(true);
  EXPECT_LT(M.collector().liveBytesAfterLastGC(), 64u << 10);
}

TEST(GenerationalTest, CardBarrierCoversLargeObjectSlots) {
  MutatorConfig C;
  C.BudgetBytes = 512u << 10;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  Mutator M(C);
  Frame F(M, keyGc());
  // A large pointer array lives in the LOS; mutate it to hold the only
  // reference to a young object, then collect.
  F.set(1, M.allocPtrArray(siteGc(), 2048));
  M.collect(false); // The array is no longer "new".
  F.set(2, consInt(M, siteGc(), 31337, slot(F, 3)));
  M.writeField(F.get(1), 100, F.get(2), true);
  F.set(2, Value::null());
  M.collect(false);
  Value Kept = Mutator::getField(F.get(1), 100);
  ASSERT_FALSE(Kept.isNull());
  EXPECT_EQ(headInt(Kept), 31337);
}

TEST(GenerationalTest, StubPopRestoresOriginalKey) {
  MutatorConfig C;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = true;
  C.MarkerPeriod = 2;
  Mutator M(C);
  Frame Outer(M, keyGc());

  // Push enough frames that several get marked, collect, then pop through
  // the stubs by returning normally.
  struct Helper {
    static uint64_t nest(Mutator &M, int N) {
      Frame F(M, keyGc());
      F.set(1, consInt(M, siteGc(), N, slot(F, 2)));
      if (N == 0) {
        M.collect(false); // Places markers across the deep stack.
        return 0;
      }
      return nest(M, N - 1) + static_cast<uint64_t>(headInt(F.get(1)));
    }
  };
  uint64_t Got = Helper::nest(M, 64);
  EXPECT_EQ(Got, 64ull * 65 / 2);
  MarkerManager *MM = M.collector().markerManager();
  ASSERT_NE(MM, nullptr);
  EXPECT_GT(MM->numStubPops(), 0u) << "pops must have gone through stubs";
  EXPECT_EQ(MM->numActiveMarkers(), 0u)
      << "all markers retired after unwinding";
}

TEST(GenerationalTest, SemispaceMarkersAlsoReuseDecodes) {
  // §7.1: generational stack collection with a non-generational collector.
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = true;
  Mutator M(C);

  struct Helper {
    static void deep(Mutator &M, int N) {
      Frame F(M, keyGc());
      F.set(1, consInt(M, siteGc(), N, slot(F, 2)));
      if (N > 0) {
        deep(M, N - 1);
        return;
      }
      for (int I = 0; I < 30000; ++I)
        F.set(3, consInt(M, siteGc(), I, slot(F, 2)));
    }
  };
  Helper::deep(M, 400);
  const GcStats &S = M.gcStats();
  EXPECT_GT(S.NumGC, 2u);
  EXPECT_GT(S.FramesReused, S.FramesScanned)
      << "deep stable prefix must be served from the cache";
}
