//===- tests/gc_test.cpp - Collector-level behavioral tests ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <tuple>
#include <utility>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t siteGc() {
  static const uint32_t S = AllocSiteRegistry::global().define("gctest.site");
  return S;
}

uint32_t keyGc() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "gctest.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

} // namespace

TEST(AgedTenuringTest, SurvivorsStayYoungUntilThreshold) {
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.PromoteAgeThreshold = 3;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  F.set(1, consInt(M, siteGc(), 7, slot(F, 2)));
  auto &GC = static_cast<GenerationalCollector &>(M.collector());

  // Age 0 -> 1: stays young. Age 1 -> 2: stays young. Age 2 -> 3: tenured.
  M.collect(false);
  EXPECT_TRUE(GC.inNursery(F.get(1).asPtr())) << "age 1 must stay young";
  M.collect(false);
  EXPECT_TRUE(GC.inNursery(F.get(1).asPtr())) << "age 2 must stay young";
  M.collect(false);
  EXPECT_TRUE(GC.inTenured(F.get(1).asPtr()))
      << "age 3 reaches the threshold";
  EXPECT_EQ(headInt(F.get(1)), 7);
}

TEST(AgedTenuringTest, PromotionCreatedOldToYoungEdgeSurvives) {
  // The regression the heap verifier caught: promote a parent whose child
  // stays young; the edge exists in the old generation with no barrier
  // record. The next minor collection must still find the child.
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.PromoteAgeThreshold = 2;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  auto &GC = static_cast<GenerationalCollector &>(M.collector());

  // Parent ages to 1 (one collection), then points at a fresh age-0 child;
  // the next collection promotes the parent (age 2) while the child stays
  // young (age 1): a collector-created old->young edge.
  F.set(1, M.allocRecord(siteGc(), 1, 0b1));
  M.collect(false); // Parent age 1, still young.
  ASSERT_TRUE(GC.inNursery(F.get(1).asPtr()));
  F.set(2, consInt(M, siteGc(), 99, slot(F, 3)));
  M.writeField(F.get(1), 0, F.get(2), true);
  F.set(2, Value::null());
  M.collect(false); // Parent promoted; child copied back young.
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));
  Value Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  ASSERT_TRUE(GC.inNursery(Child.asPtr()));

  // Drop the stack reference to the child: the ONLY path is the untracked
  // old->young edge. The next minor collection must preserve it.
  M.collect(false);
  Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  EXPECT_EQ(headInt(Child), 99);
}

TEST(SemispaceTest, GrowsPastBudgetWhenLiveDemandsIt) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 64u << 10; // Far below the live set we will build.
  Mutator M(C);
  Frame F(M, keyGc());
  for (int I = 0; I < 10000; ++I) // ~320KB live.
    F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
  EXPECT_GT(M.gcStats().BudgetOverruns, 0u);
  EXPECT_EQ(mllib::length(F.get(1)), 10000u);
}

TEST(SemispaceTest, ResizesTowardTargetLiveness) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 32u << 20;
  C.SemispaceTargetLiveness = 0.5; // Spaces ~2x live: frequent GCs.
  Mutator M(C);
  Frame F(M, keyGc());
  // Small live set, lots of garbage: after the first collection the
  // spaces shrink toward 2x live, so collections keep happening even
  // though the budget would allow one huge space.
  for (int I = 0; I < 300000; ++I) {
    if (I % 3000 == 0)
      F.set(1, Value::null());
    F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
  }
  EXPECT_GT(M.gcStats().NumGC, 5u);
}

TEST(GenerationalTest, MajorCollectionsReclaimTenuredGarbage) {
  MutatorConfig C;
  C.BudgetBytes = 512u << 10;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyGc());
  // Repeatedly build a list that survives one minor collection (promoted)
  // and then gets dropped: classic tenured garbage (the PIA pattern).
  for (int Round = 0; Round < 40; ++Round) {
    F.set(1, Value::null());
    for (int I = 0; I < 3000; ++I)
      F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
    M.collect(false); // Promote.
  }
  F.set(1, Value::null());
  EXPECT_GT(M.gcStats().NumMajorGC, 0u)
      << "tenured pressure must trigger major collections";
  // After a final major, live data is near zero again.
  M.collect(true);
  EXPECT_LT(M.collector().liveBytesAfterLastGC(), 64u << 10);
}

TEST(GenerationalTest, CardBarrierCoversLargeObjectSlots) {
  MutatorConfig C;
  C.BudgetBytes = 512u << 10;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  Mutator M(C);
  Frame F(M, keyGc());
  // A large pointer array lives in the LOS; mutate it to hold the only
  // reference to a young object, then collect.
  F.set(1, M.allocPtrArray(siteGc(), 2048));
  M.collect(false); // The array is no longer "new".
  F.set(2, consInt(M, siteGc(), 31337, slot(F, 3)));
  M.writeField(F.get(1), 100, F.get(2), true);
  F.set(2, Value::null());
  M.collect(false);
  Value Kept = Mutator::getField(F.get(1), 100);
  ASSERT_FALSE(Kept.isNull());
  EXPECT_EQ(headInt(Kept), 31337);
}

TEST(GenerationalTest, StubPopRestoresOriginalKey) {
  MutatorConfig C;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = true;
  C.MarkerPeriod = 2;
  Mutator M(C);
  Frame Outer(M, keyGc());

  // Push enough frames that several get marked, collect, then pop through
  // the stubs by returning normally.
  struct Helper {
    static uint64_t nest(Mutator &M, int N) {
      Frame F(M, keyGc());
      F.set(1, consInt(M, siteGc(), N, slot(F, 2)));
      if (N == 0) {
        M.collect(false); // Places markers across the deep stack.
        return 0;
      }
      return nest(M, N - 1) + static_cast<uint64_t>(headInt(F.get(1)));
    }
  };
  uint64_t Got = Helper::nest(M, 64);
  EXPECT_EQ(Got, 64ull * 65 / 2);
  MarkerManager *MM = M.collector().markerManager();
  ASSERT_NE(MM, nullptr);
  EXPECT_GT(MM->numStubPops(), 0u) << "pops must have gone through stubs";
  EXPECT_EQ(MM->numActiveMarkers(), 0u)
      << "all markers retired after unwinding";
}

TEST(GenerationalTest, SemispaceMarkersAlsoReuseDecodes) {
  // §7.1: generational stack collection with a non-generational collector.
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = true;
  Mutator M(C);

  struct Helper {
    static void deep(Mutator &M, int N) {
      Frame F(M, keyGc());
      F.set(1, consInt(M, siteGc(), N, slot(F, 2)));
      if (N > 0) {
        deep(M, N - 1);
        return;
      }
      for (int I = 0; I < 30000; ++I)
        F.set(3, consInt(M, siteGc(), I, slot(F, 2)));
    }
  };
  Helper::deep(M, 400);
  const GcStats &S = M.gcStats();
  EXPECT_GT(S.NumGC, 2u);
  EXPECT_GT(S.FramesReused, S.FramesScanned)
      << "deep stable prefix must be served from the cache";
}

//===----------------------------------------------------------------------===//
// Hybrid barrier: SSB until the flood heuristic trips, cards afterwards.
//===----------------------------------------------------------------------===//

TEST(HybridBarrierTest, FloodDegradesToCardsWithoutLosingPendingEntries) {
  MutatorConfig C;
  C.BudgetBytes = 512u << 10;
  C.Barrier = GenerationalCollector::BarrierKind::Hybrid;
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, keyGc());

  // A tenured pointer array to flood stores into.
  F.set(1, M.allocPtrArray(siteGc(), 256));
  M.collect(false);
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));
  ASSERT_FALSE(GC.hybridInCardMode());
  uint64_t Threshold = GC.hybridFloodThreshold();
  ASSERT_GT(Threshold, 0u);

  // A young child reachable ONLY through a pre-switch SSB entry: the switch
  // must replay it into a card mark or the child dies.
  F.set(2, consInt(M, siteGc(), 4242, slot(F, 3)));
  M.writeField(F.get(1), 7, F.get(2), /*IsPointerField=*/true);
  F.set(2, Value::null());

  // Peg-style flood: the same slot mutated far past the dirty-card
  // capacity of the whole tenured space.
  for (uint64_t I = 0; I <= Threshold; ++I)
    M.writeField(F.get(1), 100, Value::null(), /*IsPointerField=*/true);
  EXPECT_TRUE(GC.hybridInCardMode()) << "flood heuristic never tripped";
  EXPECT_EQ(GC.storeBuffer().size(), 0u) << "pending SSB not drained";
  EXPECT_EQ(M.gcStats().HybridSwitches, 1u);
  EXPECT_EQ(M.gcStats().HybridSwitchEpoch, M.gcStats().NumGC + 1);

  M.collect(false);
  Value Kept = Mutator::getField(F.get(1), 7);
  ASSERT_FALSE(Kept.isNull()) << "replayed SSB entry lost at the switch";
  EXPECT_EQ(headInt(Kept), 4242);
  EXPECT_GT(M.gcStats().CardsScanned, 0u) << "post-switch minors scan cards";

  // The switch is sticky: further stores keep dirtying cards, not the SSB.
  M.writeField(F.get(1), 100, Value::null(), /*IsPointerField=*/true);
  EXPECT_EQ(GC.storeBuffer().size(), 0u);
  EXPECT_TRUE(GC.hybridInCardMode());
  EXPECT_EQ(M.gcStats().HybridSwitches, 1u);
}

TEST(HybridBarrierTest, QuietWorkloadStaysPreciseSsb) {
  // The same moderate mutation pattern under Hybrid and plain SSB: the
  // hybrid must never switch and must record exactly the same entries.
  auto run = [](GenerationalCollector::BarrierKind B) {
    MutatorConfig C;
    C.BudgetBytes = 1u << 20;
    C.Barrier = B;
    Mutator M(C);
    Frame F(M, keyGc());
    for (int Round = 0; Round < 50; ++Round) {
      for (int I = 0; I < 500; ++I)
        F.set(1, consInt(M, siteGc(), I, slot(F, 1)));
      M.writeField(F.get(1), 1, Value::null(), /*IsPointerField=*/true);
      if (Round % 10 == 0)
        F.set(1, Value::null());
    }
    auto &GC = static_cast<GenerationalCollector &>(M.collector());
    EXPECT_FALSE(GC.hybridInCardMode());
    EXPECT_EQ(M.gcStats().HybridSwitchEpoch, 0u);
    if (B == GenerationalCollector::BarrierKind::Hybrid) {
      // The card table + crossing map are maintained from construction so
      // promotions preceding a potential switch are already covered.
      EXPECT_GT(M.gcStats().CrossingMapUpdates, 0u);
      EXPECT_EQ(M.gcStats().CardsScanned, 0u)
          << "pre-switch hybrid must process roots through the SSB";
    }
    return GC.storeBuffer().totalRecorded();
  };
  uint64_t Ssb = run(GenerationalCollector::BarrierKind::SequentialStoreBuffer);
  uint64_t Hybrid = run(GenerationalCollector::BarrierKind::Hybrid);
  ASSERT_GT(Ssb, 0u);
  EXPECT_EQ(Hybrid, Ssb);
}

//===----------------------------------------------------------------------===//
// Barrier differential: every workload computes the same checksum and
// derives the same site profile and pretenure set under every write-barrier
// kind and every GcThreads setting.
//===----------------------------------------------------------------------===//

namespace {

constexpr double BarrierDiffScale = 0.1;

/// The deterministic outcome of one profiled workload run. CopiedBytes is
/// carried too, but compared only between serial runs: parallel copy-block
/// padding shifts where major collections land, so lifetime copied-bytes is
/// engine-dependent across thread counts (the same reason GcEvent excludes
/// BytesPromoted from its deterministic slice).
struct RunOutcome {
  uint64_t Checksum = 0;
  uint64_t ProfiledAllocBytes = 0;
  uint64_t ProfiledCopiedBytes = 0;
  std::vector<std::pair<uint32_t, bool>> PretenureSet; // (site, no-scan)
};

RunOutcome profiledRun(size_t WIdx, GenerationalCollector::BarrierKind B,
                       unsigned Threads) {
  Workload &W = *allWorkloads()[WIdx];
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 1u << 20;
  C.Barrier = B;
  C.GcThreads = Threads;
  C.EnableProfiling = true;
  Mutator M(C);
  RunOutcome R;
  R.Checksum = W.run(M, BarrierDiffScale);
  const HeapProfiler *P = M.profiler();
  R.ProfiledAllocBytes = P->totalAllocBytes();
  R.ProfiledCopiedBytes = P->totalCopiedBytes();
  for (const PretenureDecision &D : P->derivePretenureSet())
    R.PretenureSet.emplace_back(D.SiteId, D.EliminateScan);
  return R;
}

const std::vector<RunOutcome> &serialSsbBaseline() {
  static const std::vector<RunOutcome> Baseline = [] {
    std::vector<RunOutcome> Out;
    for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx)
      Out.push_back(profiledRun(
          WIdx, GenerationalCollector::BarrierKind::SequentialStoreBuffer,
          1));
    return Out;
  }();
  return Baseline;
}

struct BarrierDiffCase {
  GenerationalCollector::BarrierKind Barrier;
  unsigned Threads;
  const char *Name;
};

class BarrierDifferential
    : public ::testing::TestWithParam<BarrierDiffCase> {};

} // namespace

TEST_P(BarrierDifferential, AllWorkloadsMatchSerialSsb) {
  const BarrierDiffCase &TC = GetParam();
  const std::vector<RunOutcome> &Baseline = serialSsbBaseline();
  ASSERT_EQ(Baseline.size(), allWorkloads().size());
  for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx) {
    Workload &W = *allWorkloads()[WIdx];
    ASSERT_EQ(Baseline[WIdx].Checksum, W.expected(BarrierDiffScale))
        << W.name() << ": baseline run is itself wrong";
    RunOutcome Got = profiledRun(WIdx, TC.Barrier, TC.Threads);
    EXPECT_EQ(Got.Checksum, Baseline[WIdx].Checksum)
        << W.name() << " under " << TC.Name;
    EXPECT_EQ(Got.ProfiledAllocBytes, Baseline[WIdx].ProfiledAllocBytes)
        << W.name() << " under " << TC.Name;
    if (TC.Threads == 1)
      EXPECT_EQ(Got.ProfiledCopiedBytes, Baseline[WIdx].ProfiledCopiedBytes)
          << W.name() << " under " << TC.Name;
    EXPECT_EQ(Got.PretenureSet, Baseline[WIdx].PretenureSet)
        << W.name() << " under " << TC.Name << ": pretenure set diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    BarriersByThreads, BarrierDifferential,
    ::testing::Values(
        BarrierDiffCase{
            GenerationalCollector::BarrierKind::SequentialStoreBuffer, 2,
            "ssb_t2"},
        BarrierDiffCase{
            GenerationalCollector::BarrierKind::SequentialStoreBuffer, 8,
            "ssb_t8"},
        BarrierDiffCase{
            GenerationalCollector::BarrierKind::FilteredStoreBuffer, 1,
            "filtered_t1"},
        BarrierDiffCase{
            GenerationalCollector::BarrierKind::FilteredStoreBuffer, 2,
            "filtered_t2"},
        BarrierDiffCase{
            GenerationalCollector::BarrierKind::FilteredStoreBuffer, 8,
            "filtered_t8"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::CardMarking, 1,
                        "cards_t1"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::CardMarking, 2,
                        "cards_t2"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::CardMarking, 8,
                        "cards_t8"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::Hybrid, 1,
                        "hybrid_t1"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::Hybrid, 2,
                        "hybrid_t2"},
        BarrierDiffCase{GenerationalCollector::BarrierKind::Hybrid, 8,
                        "hybrid_t8"}),
    [](const ::testing::TestParamInfo<BarrierDiffCase> &Info) {
      return std::string(Info.param.Name);
    });
