//===- tests/marker_edge_test.cpp - §5 corner cases -------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Corner cases of generational stack collection at the runtime level:
/// exceptions landing exactly on marked frames, raise storms, markers on
/// the topmost frame, and interleavings of growth/shrink around marker
/// positions.
///
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <gtest/gtest.h>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t siteEdge() {
  static const uint32_t S = AllocSiteRegistry::global().define("edge.site");
  return S;
}
uint32_t keyEdge() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "edge.frame", {Trace::pointer(), Trace::pointer()}));
  return K;
}

MutatorConfig markerConfig(unsigned Period) {
  MutatorConfig C;
  C.BudgetBytes = 256u << 10;
  C.UseStackMarkers = true;
  C.MarkerPeriod = Period;
  C.VerifyReuseInvariant = true;
  return C;
}

/// Pushes frames to depth N, collecting at the bottom, then raises to the
/// handler at depth HandlerAt.
void growCollectRaise(Mutator &M, int N, int HandlerAt, Value Payload) {
  Frame F(M, keyEdge());
  F.set(1, Payload);
  if (N == HandlerAt) {
    uint64_t H = M.pushHandler(F.base());
    try {
      growCollectRaise(M, N - 1, HandlerAt, F.get(1));
      FAIL() << "must raise";
    } catch (MLRaise &R) {
      ASSERT_EQ(R.HandlerId, H);
      // The payload list survived the unwind; verify reachability.
      EXPECT_EQ(headInt(R.Exn), 11);
    }
    return;
  }
  if (N <= 0) {
    M.collect(false); // Places markers along the whole chain.
    if (!F.get(1).isNull()) // Always true; keeps a visible return path.
      M.raise(F.get(1));
    return;
  }
  growCollectRaise(M, N - 1, HandlerAt, F.get(1));
}

} // namespace

TEST(MarkerEdgeTest, RaiseLandsOnAMarkedHandlerFrame) {
  // With period 4 and a deep chain, some handler depths land exactly on
  // marked frames; the unwind must resolve the stub key to size the
  // handler frame and keep its marker intact.
  for (int HandlerAt : {3, 4, 5, 7, 8, 16}) {
    Mutator M(markerConfig(4));
    Frame Top(M, keyEdge());
    Top.set(1, consInt(M, siteEdge(), 11, slot(Top, 2)));
    growCollectRaise(M, 40, HandlerAt, Top.get(1));
    // The runtime is still consistent: allocate and collect again.
    for (int I = 0; I < 2000; ++I)
      Top.set(2, consInt(M, siteEdge(), I, slot(Top, 2)));
    M.collect(true);
    EXPECT_EQ(headInt(Top.get(1)), 11);
  }
}

TEST(MarkerEdgeTest, RaiseStormKeepsWatermarkSound) {
  Mutator M(markerConfig(3));
  Frame Top(M, keyEdge());
  Top.set(1, consInt(M, siteEdge(), 42, slot(Top, 2)));

  struct Helper {
    static void storm(Mutator &M, int Round, SlotRef Keep) {
      Frame F(M, keyEdge());
      F.set(1, Keep.get());
      uint64_t H = M.pushHandler(F.base());
      try {
        Frame G(M, keyEdge());
        G.set(1, F.get(1));
        // Allocate enough to force collections at depth, then raise.
        for (int I = 0; I < 600; ++I)
          G.set(2, consInt(M, siteEdge(), I + Round, slot(G, 1)));
        M.raise(G.get(2));
      } catch (MLRaise &R) {
        if (R.HandlerId != H)
          throw;
        EXPECT_EQ(headInt(R.Exn), 599 + Round);
      }
    }
  };
  for (int Round = 0; Round < 200; ++Round)
    Helper::storm(M, Round, slot(Top, 1));
  EXPECT_EQ(M.raises(), 200u);
  EXPECT_EQ(headInt(Top.get(1)), 42);
  EXPECT_GT(M.gcStats().NumGC, 0u);
}

TEST(MarkerEdgeTest, MarkerOnTopFrameSurvivesImmediatePop) {
  // Period 1: every frame gets marked, including the topmost; popping it
  // immediately must go through the stub and restore nothing stale.
  Mutator M(markerConfig(1));
  Frame Top(M, keyEdge());
  for (int Round = 0; Round < 50; ++Round) {
    Frame F(M, keyEdge());
    F.set(1, consInt(M, siteEdge(), Round, slot(F, 2)));
    M.collect(false); // Marks every frame, including F.
    // F pops at scope exit -> stub.
  }
  MarkerManager *MM = M.collector().markerManager();
  ASSERT_NE(MM, nullptr);
  EXPECT_GT(MM->numStubPops(), 0u);
}

TEST(MarkerEdgeTest, GrowShrinkOscillationAroundMarkers) {
  // Oscillate the stack top around the marker period boundary; every
  // configuration must keep producing correct results.
  Mutator M(markerConfig(5));
  Frame Top(M, keyEdge());

  struct Helper {
    static int64_t tower(Mutator &M, int N, int CollectAt) {
      Frame F(M, keyEdge());
      F.set(1, consInt(M, siteEdge(), N, slot(F, 2)));
      if (N == CollectAt)
        M.collect(false);
      if (N == 0)
        return headInt(F.get(1));
      return tower(M, N - 1, CollectAt) + headInt(F.get(1));
    }
  };
  for (int Depth = 3; Depth < 24; ++Depth) {
    int64_t Got = Helper::tower(M, Depth, Depth / 2);
    EXPECT_EQ(Got, static_cast<int64_t>(Depth) * (Depth + 1) / 2);
  }
}

TEST(MarkerEdgeTest, AdaptivePlacementConvergesOnDeepStableStacks) {
  // §7.1: "a more dynamic policy of marker placement may achieve better
  // performance with fewer markers". On a deep stable stack the adaptive
  // period must reach fixed-period-quality reuse without hand tuning.
  MutatorConfig C = markerConfig(25);
  C.AdaptiveMarkerPlacement = true;
  Mutator M(C);

  struct Helper {
    static void deep(Mutator &M, int N) {
      Frame F(M, keyEdge());
      F.set(1, consInt(M, siteEdge(), N, slot(F, 2)));
      if (N > 0) {
        deep(M, N - 1);
        return;
      }
      for (int I = 0; I < 40000; ++I)
        F.set(2, consInt(M, siteEdge(), I, slot(F, 1)));
    }
  };
  Helper::deep(M, 600);
  const GcStats &S = M.gcStats();
  ASSERT_GT(S.NumGC, 5u);
  double Reuse = static_cast<double>(S.FramesReused) /
                 static_cast<double>(S.FramesReused + S.FramesScanned);
  EXPECT_GT(Reuse, 0.85) << "adaptive placement must converge to dense "
                            "marking near the stable top";
}

TEST(MLLibTest, ReverseAndCopyAndSum) {
  Mutator M;
  Frame F(M, keyEdge());
  for (int I = 5; I >= 1; --I)
    F.set(1, consInt(M, siteEdge(), I, slot(F, 1))); // [1..5]
  EXPECT_EQ(length(F.get(1)), 5u);
  EXPECT_EQ(sumInt(F.get(1)), 15);

  Value Copy = copyIntRec(M, siteEdge(), slot(F, 1));
  F.set(2, Copy);
  EXPECT_NE(F.get(1).asPtr(), F.get(2).asPtr());
  EXPECT_EQ(sumInt(F.get(2)), 15);
  EXPECT_EQ(headInt(F.get(2)), 1);

  Value Rev = reverseInt(M, siteEdge(), slot(F, 1), slot(F, 2));
  F.set(2, Rev);
  EXPECT_EQ(headInt(F.get(2)), 5);
  EXPECT_EQ(sumInt(F.get(2)), 15);
}

TEST(MLLibTest, EmptyListEdges) {
  Mutator M;
  Frame F(M, keyEdge());
  EXPECT_EQ(length(Value::null()), 0u);
  EXPECT_EQ(sumInt(Value::null()), 0);
  EXPECT_TRUE(copyIntRec(M, siteEdge(), slot(F, 1)).isNull());
  EXPECT_TRUE(reverseInt(M, siteEdge(), slot(F, 1), slot(F, 2)).isNull());
}
