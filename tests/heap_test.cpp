//===- tests/heap_test.cpp - Heap substrate unit tests ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/CardTable.h"
#include "heap/LargeObjectSpace.h"
#include "heap/Space.h"
#include "heap/StoreBuffer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace tilgc;

TEST(SpaceTest, BumpAllocationAndCapacity) {
  Space S;
  S.reserve(1024);
  EXPECT_EQ(S.usedBytes(), 0u);
  EXPECT_TRUE(S.empty());

  Word D = header::make(ObjectKind::Record, 2, 0b01);
  Word *P1 = S.allocate(D, meta::make(1, 0));
  ASSERT_NE(P1, nullptr);
  EXPECT_TRUE(S.contains(P1));
  EXPECT_EQ(descriptorOf(P1), D);
  EXPECT_EQ(S.usedBytes(), (2u + HeaderWords) * 8u);

  Word *P2 = S.allocate(D, meta::make(2, 0));
  ASSERT_NE(P2, nullptr);
  EXPECT_NE(P1, P2);
}

TEST(SpaceTest, AllocationFailsWhenFull) {
  Space S;
  S.reserve(64); // 8 words: room for one 2-field record (4 words) + part.
  Word D = header::make(ObjectKind::Record, 2, 0);
  EXPECT_NE(S.allocate(D, 0), nullptr);
  EXPECT_NE(S.allocate(D, 0), nullptr);
  EXPECT_EQ(S.allocate(D, 0), nullptr) << "third object must not fit";
}

TEST(SpaceTest, ResetEmptiesButKeepsCapacity) {
  Space S;
  S.reserve(1024);
  Word D = header::make(ObjectKind::Record, 2, 0);
  ASSERT_NE(S.allocate(D, 0), nullptr);
  size_t Cap = S.capacityBytes();
  S.reset();
  EXPECT_EQ(S.usedBytes(), 0u);
  EXPECT_EQ(S.capacityBytes(), Cap);
}

TEST(SpaceTest, WalkVisitsInAllocationOrder) {
  Space S;
  S.reserve(4096);
  Word D1 = header::make(ObjectKind::Record, 1, 0);
  Word D2 = header::make(ObjectKind::NonPtrArray, 7);
  Word *P1 = S.allocate(D1, meta::make(11, 0));
  Word *P2 = S.allocate(D2, meta::make(22, 0));

  std::vector<Word *> Seen;
  S.walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
    EXPECT_FALSE(Forwarded);
    (void)Descriptor;
    Seen.push_back(Payload);
  });
  EXPECT_EQ(Seen, (std::vector<Word *>{P1, P2}));
}

TEST(SpaceTest, WalkSeesThroughForwarding) {
  Space From, To;
  From.reserve(4096);
  To.reserve(4096);
  Word D = header::make(ObjectKind::NonPtrArray, 5);
  Word *Old = From.allocate(D, meta::make(7, 0));
  Word *Moved = To.allocate(D, meta::make(7, 0));
  descriptorOf(Old) = header::makeForward(Moved);
  // A second, unforwarded object after the forwarded one.
  Word *Second = From.allocate(header::make(ObjectKind::Record, 1, 0),
                               meta::make(8, 0));

  int Count = 0;
  From.walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
    ++Count;
    if (Payload == Old) {
      EXPECT_TRUE(Forwarded);
      EXPECT_EQ(header::length(Descriptor), 5u);
    } else {
      EXPECT_EQ(Payload, Second);
      EXPECT_FALSE(Forwarded);
    }
  });
  EXPECT_EQ(Count, 2);
}

TEST(StoreBufferTest, KeepsDuplicatesAndCounts) {
  StoreBuffer SSB;
  Word Slot1 = 0, Slot2 = 0;
  SSB.record(&Slot1);
  SSB.record(&Slot2);
  SSB.record(&Slot1); // Duplicate kept — the Peg pathology.
  EXPECT_EQ(SSB.size(), 3u);
  EXPECT_EQ(SSB.totalRecorded(), 3u);
  SSB.clear();
  EXPECT_EQ(SSB.size(), 0u);
  EXPECT_EQ(SSB.totalRecorded(), 3u) << "lifetime count survives clears";
}

TEST(LargeObjectSpaceTest, AllocateContainsMarkSweep) {
  LargeObjectSpace LOS;
  Word D = header::make(ObjectKind::NonPtrArray, 1024);
  Word *A = LOS.allocate(D, meta::make(1, 0));
  Word *B = LOS.allocate(D, meta::make(2, 0));
  EXPECT_TRUE(LOS.contains(A));
  EXPECT_TRUE(LOS.contains(B));
  EXPECT_EQ(LOS.objectCount(), 2u);
  EXPECT_EQ(LOS.liveBytes(), 2 * objectTotalBytes(D));

  EXPECT_TRUE(LOS.mark(A));
  EXPECT_FALSE(LOS.mark(A)) << "second mark reports already-marked";

  std::vector<Word *> Dead;
  LOS.sweep([&](Word *Payload, Word) { Dead.push_back(Payload); });
  EXPECT_EQ(Dead, (std::vector<Word *>{B}));
  EXPECT_TRUE(LOS.contains(A));
  EXPECT_FALSE(LOS.contains(B));
  EXPECT_EQ(LOS.liveBytes(), objectTotalBytes(D));

  // Marks were cleared by the sweep: everything dies now.
  Dead.clear();
  LOS.sweep([&](Word *Payload, Word) { Dead.push_back(Payload); });
  EXPECT_EQ(Dead, (std::vector<Word *>{A}));
  EXPECT_EQ(LOS.objectCount(), 0u);
}

TEST(CardTableTest, MarkAndScanDirtyFields) {
  Space S;
  S.reserve(64 * 1024);
  CardTable CT;
  CrossingMap CM;
  CT.attach(S);
  CM.attach(S);

  // Two pointer arrays far enough apart to live on different cards.
  Word DBig = header::make(ObjectKind::PtrArray, 256);
  Word *A = S.allocate(DBig, meta::make(1, 0));
  CM.recordObject(A - HeaderWords, objectTotalWords(DBig));
  Word *B = S.allocate(DBig, meta::make(2, 0));
  CM.recordObject(B - HeaderWords, objectTotalWords(DBig));
  for (unsigned I = 0; I < 256; ++I)
    A[I] = B[I] = 0;

  CT.mark(&A[3]);
  CT.mark(&B[200]);
  EXPECT_EQ(CT.numDirtyCards(), 2u);

  std::vector<Word *> Fields;
  CT.forEachDirtyField(S, CM, [&](Word *F) { Fields.push_back(F); });
  // Every visited field must be on a dirty card; the specific marked slots
  // must be included.
  EXPECT_NE(std::find(Fields.begin(), Fields.end(), &A[3]), Fields.end());
  EXPECT_NE(std::find(Fields.begin(), Fields.end(), &B[200]), Fields.end());
  // Fields from clean cards of other objects must not be visited; &B[0]
  // lies 200 slots (1600 bytes, >3 cards) before the marked one.
  EXPECT_EQ(std::find(Fields.begin(), Fields.end(), &B[0]), Fields.end());

  CT.clear();
  EXPECT_EQ(CT.numDirtyCards(), 0u);
}
