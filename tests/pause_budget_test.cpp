//===- tests/pause_budget_test.cpp - Pause-budget incremental major GC ----===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pause-budget SLO mode (Options::MaxPauseMicros): the mark phase of a
/// mark-compact major is sliced into allocation-safepoint increments with a
/// SATB deletion barrier filling the gaps between slices. Contracts proved
/// here:
///
///  * MaxPauseMicros = 0 (the default) is bit-identical to stock behavior:
///    all 11 workloads produce the same checksum AND the same deterministic
///    GcStats tuple, with zero incremental machinery engaged.
///  * A budgeted run is still correct: every workload's checksum matches
///    its reference, the heap verifies, and cycles actually run in slices
///    (many slices per cycle, majors complete through the finish path).
///  * Any full-collection demand arriving while a cycle is live (explicit
///    collect(true)) force-finishes the cycle instead of double-collecting.
///  * The tricolor invariant holds under a seeded mutation storm designed
///    to hide edges from an incremental marker: VerifyLevel >= 2 audits the
///    mark state between slices and fatalErrors on any lost object.
///  * Group mode: K mutators under a budget replay their thread-local SATB
///    backlogs at safepoint merges; totals and checksums stay exact.
///  * Supervision: a GC watchdog with WatchdogPolicy::Recover that barks
///    mid-cycle force-finishes the cycle (cooperative recovery), and the
///    run still completes correctly.
///
/// Suite names all contain "PauseBudget" so CI can run the whole plane with
/// --gtest_filter=*PauseBudget* on both the debug and NDEBUG binaries (this
/// file is linked into the resilience twin).
///
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "observe/EventRecorder.h"
#include "runtime/MutatorGroup.h"
#include "workloads/MLLib.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

using MajorGcKind = GenerationalCollector::MajorGcKind;

constexpr double PbScale = 0.1;

uint32_t sitePb() {
  static const uint32_t S = AllocSiteRegistry::global().define("pbtest.site");
  return S;
}

uint32_t keyPb() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "pbtest.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  return K;
}

GenerationalCollector &genGC(Mutator &M) {
  return static_cast<GenerationalCollector &>(M.collector());
}

MutatorConfig budgetConfig(uint32_t MaxPauseMicros) {
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.MaxPauseMicros = MaxPauseMicros;
  return C;
}

/// Every deterministic (thread-count independent, time-free) GcStats field.
/// The zero-budget differential compares this whole tuple: the incremental
/// mode must not perturb a single collection, copy, promotion, barrier, or
/// profile decision when it is off.
using StatsKey =
    std::tuple<uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t>;

StatsKey statsKey(const GcStats &S) {
  return {S.NumGC,
          S.NumMajorGC,
          S.BytesAllocated,
          S.ObjectsAllocated,
          S.RecordBytesAllocated,
          S.ArrayBytesAllocated,
          S.BytesCopied,
          S.ObjectsCopied,
          S.MaxLiveBytes,
          S.MaxFootprintBytes,
          S.MajorBytesMoved,
          S.FramesScanned,
          S.FramesReused,
          S.SlotsVisited,
          S.PlanWordsScanned,
          S.MaxFramesAtGC,
          S.FramesAtGCSum,
          S.NewFramesSum,
          S.FramesAtGCSamples,
          S.SSBEntriesProcessed,
          S.CardsScanned,
          S.CardSlotsVisited,
          S.CrossingMapUpdates,
          S.HybridSwitches,
          S.PretenuredBytes,
          S.PretenuredScannedBytes,
          S.PretenuredScanSkippedBytes};
}

struct ZeroRun {
  uint64_t Checksum = 0;
  StatsKey Stats;
};

ZeroRun zeroRun(size_t WIdx, bool ExplicitZero) {
  Workload &W = *allWorkloads()[WIdx];
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  if (ExplicitZero)
    C.MaxPauseMicros = 0;
  Mutator M(C);
  ZeroRun R;
  R.Checksum = W.run(M, PbScale);
  R.Stats = statsKey(M.gcStats());
  GenerationalCollector &GC = genGC(M);
  EXPECT_EQ(GC.incrementalCycles(), 0u) << W.name();
  EXPECT_EQ(GC.incrementalSlices(), 0u) << W.name();
  EXPECT_FALSE(GC.incrementalCycleLive()) << W.name();
  return R;
}

} // namespace

//===----------------------------------------------------------------------===//
// MaxPauseMicros = 0 is bit-identical to stock mark-compact.
//===----------------------------------------------------------------------===//

TEST(PauseBudgetDifferential, ZeroBudgetIsBitIdenticalOnAllWorkloads) {
  for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx) {
    Workload &W = *allWorkloads()[WIdx];
    ZeroRun Default = zeroRun(WIdx, /*ExplicitZero=*/false);
    ZeroRun Explicit = zeroRun(WIdx, /*ExplicitZero=*/true);
    ASSERT_EQ(Default.Checksum, W.expected(PbScale))
        << W.name() << ": stock run is itself wrong";
    EXPECT_EQ(Explicit.Checksum, Default.Checksum) << W.name();
    EXPECT_EQ(Explicit.Stats, Default.Stats)
        << W.name() << ": MaxPauseMicros=0 perturbed the deterministic "
        << "GcStats tuple — a disabled-mode path leaked into the stock run";
  }
}

//===----------------------------------------------------------------------===//
// Budgeted runs stay correct and genuinely slice the mark.
//===----------------------------------------------------------------------===//

TEST(PauseBudgetCorrectness, AllWorkloadsMatchChecksumsUnderBudget) {
  uint64_t TotalCycles = 0;
  uint64_t TotalSlices = 0;
  for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx) {
    Workload &W = *allWorkloads()[WIdx];
    Mutator M(budgetConfig(/*MaxPauseMicros=*/200));
    EXPECT_EQ(W.run(M, PbScale), W.expected(PbScale)) << W.name();
    std::string Err;
    EXPECT_TRUE(M.verifyHeap(Err)) << W.name() << ": " << Err;
    GenerationalCollector &GC = genGC(M);
    TotalCycles += GC.incrementalCycles();
    TotalSlices += GC.incrementalSlices();
  }
  // Across the suite the mode must have engaged: some workloads reach
  // tenured pressure and start cycles, and each cycle runs many bounded
  // slices rather than one monolithic mark.
  EXPECT_GT(TotalCycles, 0u) << "no workload ever started a cycle; the "
                                "start trigger is dead";
  EXPECT_GT(TotalSlices, 4 * TotalCycles)
      << "cycles ran but barely sliced; the slice schedule is dead";
}

TEST(PauseBudgetCorrectness, ExplicitMajorForceFinishesLiveCycle) {
  Mutator M(budgetConfig(/*MaxPauseMicros=*/100));
  GenerationalCollector &GC = genGC(M);
  Frame F(M, keyPb());
  // Grow a retained list until promotions push tenured occupancy over the
  // cycle-start threshold. The start trigger fires once tenured free space
  // drops below half the space (or three nursery-loads, whichever is
  // larger), well before the stock major threshold, so a live cycle is
  // observable well before any forced finish.
  int64_t I = 0;
  while (!GC.incrementalCycleLive() && I < 500000)
    F.set(1, consInt(M, sitePb(), I++, slot(F, 1)));
  ASSERT_TRUE(GC.incrementalCycleLive())
      << "retained churn never started a cycle";
  // The loop above exits the moment the cycle goes live, which is before a
  // stride of allocation has elapsed: drive more allocation so at least
  // one slice actually runs before the forced finish.
  for (int64_t Stop = I + 200000;
       GC.incrementalCycleLive() && GC.incrementalSlices() == 0 && I < Stop;)
    F.set(1, consInt(M, sitePb(), I++, slot(F, 1)));
  ASSERT_TRUE(GC.incrementalCycleLive())
      << "cycle finished on its own before the explicit major";
  EXPECT_GT(GC.incrementalSlices(), 0u);

  uint64_t MajorsBefore = M.gcStats().NumMajorGC;
  M.collect(/*Major=*/true);
  // The explicit full-collection demand routed through the finish path:
  // exactly one major completed and the cycle state tore down.
  EXPECT_FALSE(GC.incrementalCycleLive());
  EXPECT_EQ(M.gcStats().NumMajorGC, MajorsBefore + 1);
  EXPECT_EQ(GC.satbPending(), 0u);
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;

  // The list survived every slice, finish, and compaction.
  int64_t Expect = I - 1;
  Value Cell = F.get(1);
  for (int Steps = 0; Steps < 1000 && !Cell.isNull(); ++Steps) {
    EXPECT_EQ(headInt(Cell), Expect--);
    Cell = tail(Cell);
  }
}

//===----------------------------------------------------------------------===//
// Tricolor torture: seeded mutation between slices, audited at VerifyLevel 2.
//===----------------------------------------------------------------------===//

TEST(PauseBudgetTricolor, SeededMutationStormSurvivesSliceAudits) {
  MutatorConfig C = budgetConfig(/*MaxPauseMicros=*/50);
  C.VerifyLevel = 2; // audit the mark state after every slice
  Mutator M(C);
  GenerationalCollector &GC = genGC(M);
  Frame F(M, keyPb());
  // Deterministic xorshift storm: every shape an incremental marker can be
  // lied to with — overwrite edges below already-marked cells (the SATB
  // deletion-barrier case), drop roots whose referents were only reachable
  // from the snapshot (the root-snapshot case), and launder a pointer
  // through a store-then-sever chain (the young-mediator case).
  uint64_t Rng = 0x9E3779B97F4A7C15ULL;
  auto Rand = [&] {
    Rng ^= Rng << 13, Rng ^= Rng >> 7, Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned I = 0; I < 60000; ++I) {
    unsigned R = 1 + Rand() % 3;
    F.set(R, consInt(M, sitePb(), static_cast<int64_t>(I), slot(F, R)));
    switch (Rand() % 8) {
    case 0: // overwrite a tail: the old edge must be SATB-snapshotted
      if (!F.get(1).isNull() && !F.get(2).isNull())
        M.writeField(F.get(1), 1, F.get(2), /*IsPointerField=*/true);
      break;
    case 1: // drop a root outright
      F.set(1 + Rand() % 3, Value::null());
      break;
    case 2: // launder: store into an old cell, then sever the only root
      if (!F.get(2).isNull() && !F.get(3).isNull()) {
        M.writeField(F.get(2), 1, F.get(3), /*IsPointerField=*/true);
        F.set(3, Value::null());
      }
      break;
    case 3: // swap two roots through the frame (no barrier on stack moves)
      F.set(3, F.get(1));
      F.set(1, Value::null());
      break;
    default:
      break;
    }
  }
  // The audit fatalErrors on any lost object, so surviving the storm IS
  // the assertion; the counters prove the audit actually had cycles and
  // slices to check.
  EXPECT_GT(GC.incrementalCycles(), 0u);
  EXPECT_GT(GC.incrementalSlices(), GC.incrementalCycles());
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}

TEST(PauseBudgetTricolor, WorkloadsUnderSliceAuditsMatchChecksums) {
  // Three structurally different workloads, each fully audited between
  // slices. Small scale: the audit recomputes a reachability closure per
  // slice, so this is deliberately the expensive configuration.
  const double Scale = 0.04;
  const size_t Picks[] = {0, allWorkloads().size() / 2,
                          allWorkloads().size() - 1};
  for (size_t WIdx : Picks) {
    Workload &W = *allWorkloads()[WIdx];
    MutatorConfig C = budgetConfig(/*MaxPauseMicros=*/100);
    C.VerifyLevel = 2;
    Mutator M(C);
    EXPECT_EQ(W.run(M, Scale), W.expected(Scale)) << W.name();
    std::string Err;
    EXPECT_TRUE(M.verifyHeap(Err)) << W.name() << ": " << Err;
  }
}

//===----------------------------------------------------------------------===//
// Group mode: thread-local SATB backlogs merge at safepoints.
//===----------------------------------------------------------------------===//

TEST(PauseBudgetGroup, BudgetedGroupMatchesSerialTotals) {
  const double Scale = 0.04;
  const size_t Picks[] = {1, allWorkloads().size() - 2};
  for (unsigned K : {2u, 8u}) {
    for (size_t WIdx : Picks) {
      Workload &W = *allWorkloads()[WIdx];
      MutatorConfig C;
      C.Kind = CollectorKind::Generational;
      C.BudgetBytes = 4u << 20;
      C.MajorGc = MajorGcKind::MarkCompact;

      uint64_t SerialSum, SerialBytes;
      {
        Mutator SM(C);
        SerialSum = W.run(SM, Scale);
        SerialBytes = SM.gcStats().BytesAllocated;
      }
      ASSERT_EQ(SerialSum, W.expected(Scale)) << W.name();

      C.MaxPauseMicros = 150;
      MutatorGroup G(C, K);
      std::vector<uint64_t> Sums(K);
      G.run([&](Mutator &M, unsigned I) { Sums[I] = W.run(M, Scale); });
      for (unsigned I = 0; I < K; ++I)
        EXPECT_EQ(Sums[I], SerialSum)
            << W.name() << " K=" << K << " thread " << I;
      EXPECT_EQ(G.gcStats().BytesAllocated, K * SerialBytes)
          << W.name() << " K=" << K;
      std::string Err;
      EXPECT_TRUE(G.mutator(0).verifyHeap(Err)) << W.name() << ": " << Err;
    }
  }
}

//===----------------------------------------------------------------------===//
// Supervision: a Recover bark mid-cycle force-finishes cooperatively.
//===----------------------------------------------------------------------===//

TEST(PauseBudgetResilience, RecoverBarkForceFinishesCycle) {
  EventRecorder Rec;
  MutatorConfig C = budgetConfig(/*MaxPauseMicros=*/100);
  // An incremental cycle spans nursery epochs of mutator time, so its
  // wall-clock lifetime dwarfs any sane GC deadline: with the cycle
  // watchdog armed at start and a 1ms deadline, every cycle barks. Under
  // Recover the next slice must observe the latch and finish the cycle
  // stop-the-world rather than letting the SLO mode turn a hung cycle
  // into an unbounded one.
  C.GcDeadlineMicros = 1000;
  C.WatchdogEscalation = WatchdogPolicy::Recover;
  C.Observer = &Rec;
  Mutator M(C);
  GenerationalCollector &GC = genGC(M);
  Frame F(M, keyPb());
  for (int64_t I = 0; I < 300000; ++I) {
    F.set(1, consInt(M, sitePb(), I, slot(F, 1)));
    if (I % 64 == 0)
      F.set(2, F.get(1)); // retain a trailing window
    if (I % 4096 == 0)
      F.set(1, Value::null());
  }
  EXPECT_GT(GC.incrementalCycles(), 0u);
  EXPECT_GT(M.gcStats().NumMajorGC, 0u)
      << "no cycle ever finished: recover latch never honored";
  EXPECT_FALSE(Rec.barks().empty())
      << "1ms deadline across whole cycles never barked";
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}
