//===- tests/torture_test.cpp - Randomized GC torture ----------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property test: a random mutator builds, mutates and drops random object
/// graphs (records, pointer arrays, shared structure, cycles), interleaved
/// with forced minor/major collections. The canonical structure hash —
/// computed by traversal order, independent of object addresses — must be
/// identical before and after every collection, under every collector
/// configuration.
///
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <unordered_map>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr unsigned NumRoots = 12;

uint32_t tortureSite(unsigned I) {
  static const uint32_t Base = [] {
    uint32_t First = AllocSiteRegistry::global().define("torture.site0");
    for (int K = 1; K < 4; ++K)
      AllocSiteRegistry::global().define("torture.site" + std::to_string(K));
    return First;
  }();
  return Base + (I % 4);
}

uint32_t keyRoots() {
  static const uint32_t K = [] {
    std::vector<Trace> Slots;
    for (unsigned I = 0; I < NumRoots; ++I)
      Slots.push_back(Trace::pointer());
    return TraceTableRegistry::global().define(
        FrameLayout("torture.roots", std::move(Slots)));
  }();
  return K;
}

uint32_t keyHelper() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "torture.helper", {Trace::pointer(), Trace::pointer()}));
  return K;
}

/// Canonical, address-independent structure hash over all roots.
/// Objects are numbered in first-visit order; cycles terminate through the
/// visited map.
uint64_t structureHash(Frame &Roots) {
  std::unordered_map<const Word *, uint64_t> Visited;
  uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&](uint64_t V) { Hash = (Hash ^ V) * 1099511628211ULL; };

  struct Walker {
    std::unordered_map<const Word *, uint64_t> &Visited;
    decltype(Mix) &MixRef;

    void walk(Value V) { // NOLINT(misc-no-recursion)
      if (V.isNull()) {
        MixRef(0x11);
        return;
      }
      auto It = Visited.find(V.asPtr());
      if (It != Visited.end()) {
        MixRef(0x22);
        MixRef(It->second);
        return;
      }
      uint64_t Id = Visited.size();
      Visited.emplace(V.asPtr(), Id);
      Word Descriptor = descriptorOf(V.asPtr());
      MixRef(0x33);
      MixRef(static_cast<uint64_t>(header::kind(Descriptor)));
      MixRef(header::length(Descriptor));
      uint32_t Len = header::length(Descriptor);
      switch (header::kind(Descriptor)) {
      case ObjectKind::Record: {
        uint32_t Mask = header::ptrMask(Descriptor);
        for (uint32_t I = 0; I < Len; ++I) {
          if (Mask & (1u << I))
            walk(Value::fromBits(V.asPtr()[I]));
          else
            MixRef(V.asPtr()[I]);
        }
        break;
      }
      case ObjectKind::PtrArray:
        for (uint32_t I = 0; I < Len; ++I)
          walk(Value::fromBits(V.asPtr()[I]));
        break;
      case ObjectKind::NonPtrArray:
        for (uint32_t I = 0; I < Len; ++I)
          MixRef(V.asPtr()[I]);
        break;
      case ObjectKind::Pad:
        TILGC_UNREACHABLE("reachable value is a pad filler");
      }
    }
  };

  Walker W{Visited, Mix};
  for (unsigned I = 0; I < NumRoots; ++I) {
    Mix(0x44 + I);
    W.walk(Roots.get(1 + I));
  }
  return Hash;
}

/// One random mutation step against the root frame.
void mutateOnce(Mutator &M, Frame &Roots, Rng &R) {
  unsigned Op = static_cast<unsigned>(R.below(100));
  unsigned Dst = 1 + static_cast<unsigned>(R.below(NumRoots));
  unsigned Src = 1 + static_cast<unsigned>(R.below(NumRoots));

  if (Op < 40) {
    // Fresh record with a random mix of pointer/non-pointer fields drawn
    // from the roots.
    uint32_t Fields = 1 + static_cast<uint32_t>(R.below(4));
    uint32_t Mask = static_cast<uint32_t>(R.below(1u << Fields));
    Value Rec = M.allocRecord(tortureSite(Dst), Fields, Mask);
    for (uint32_t I = 0; I < Fields; ++I) {
      if (Mask & (1u << I)) {
        unsigned From = 1 + static_cast<unsigned>(R.below(NumRoots));
        M.initField(Rec, I, Roots.get(From));
      } else {
        M.initField(Rec, I, Value::fromInt(static_cast<int64_t>(R.next())));
      }
    }
    Roots.set(Dst, Rec);
    return;
  }
  if (Op < 55) {
    // Fresh pointer array seeded from the roots.
    uint32_t Len = 1 + static_cast<uint32_t>(R.below(6));
    Value Arr = M.allocPtrArray(tortureSite(Dst), Len);
    for (uint32_t I = 0; I < Len; ++I) {
      unsigned From = 1 + static_cast<unsigned>(R.below(NumRoots));
      M.initField(Arr, I, Roots.get(From));
    }
    Roots.set(Dst, Arr);
    return;
  }
  if (Op < 65) {
    // Occasionally a large array (large-object space under generational).
    uint32_t Len = 600 + static_cast<uint32_t>(R.below(800));
    Value Arr = M.allocNonPtrArray(tortureSite(Dst), Len);
    for (uint32_t I = 0; I < Len; I += 97)
      M.initField(Arr, I, Value::fromInt(static_cast<int64_t>(I)));
    Roots.set(Dst, Arr);
    return;
  }
  if (Op < 85) {
    // Barriered mutation of a random pointer field (may create cycles and
    // old->young references).
    Value Target = Roots.get(Dst);
    if (Target.isNull())
      return;
    Word Descriptor = descriptorOf(Target.asPtr());
    uint32_t Len = header::length(Descriptor);
    if (!Len)
      return;
    uint32_t I = static_cast<uint32_t>(R.below(Len));
    bool IsPtr = false;
    if (header::kind(Descriptor) == ObjectKind::PtrArray)
      IsPtr = true;
    else if (header::kind(Descriptor) == ObjectKind::Record)
      IsPtr = (header::ptrMask(Descriptor) >> I) & 1;
    if (!IsPtr)
      return;
    M.writeField(Target, I, Roots.get(Src), /*IsPointerField=*/true);
    return;
  }
  if (Op < 92) {
    Roots.set(Dst, Value::null()); // Drop a subgraph.
    return;
  }
  // Copy a root (sharing).
  Roots.set(Dst, Roots.get(Src));
}

/// Builds garbage from a nested frame, so collections see deeper stacks.
void churn(Mutator &M, Frame &Roots, Rng &R, int Depth) {
  if (Depth <= 0)
    return;
  Frame F(M, keyHelper());
  F.set(1, consInt(M, tortureSite(0), static_cast<int64_t>(R.next()),
                   slot(F, 2)));
  churn(M, Roots, R, Depth - 1);
}

struct TortureCase {
  const char *Name;
  MutatorConfig Config;
};

/// CI can raise the audit level for a whole suite run without recompiling
/// (e.g. TILGC_VERIFY_LEVEL=3 under the sanitizer jobs).
unsigned envVerifyLevel(unsigned Default) {
  if (const char *E = std::getenv("TILGC_VERIFY_LEVEL"))
    return static_cast<unsigned>(std::atoi(E));
  return Default;
}

std::vector<TortureCase> tortureConfigs() {
  std::vector<TortureCase> Cases;
  auto Add = [&](const char *Name, auto Tweak) {
    MutatorConfig C;
    C.Name = Name;
    C.BudgetBytes = 512u << 10; // Tight: constant collection pressure.
    C.VerifyLevel = envVerifyLevel(2);
    Tweak(C);
    Cases.push_back({Name, C});
  };
  Add("semispace", [](MutatorConfig &C) {
    C.Kind = CollectorKind::Semispace;
  });
  Add("semispace_markers", [](MutatorConfig &C) {
    C.Kind = CollectorKind::Semispace;
    C.UseStackMarkers = true;
  });
  Add("semispace_poison", [](MutatorConfig &C) {
    C.Kind = CollectorKind::Semispace;
    C.VerifyLevel = envVerifyLevel(3);
  });
  Add("generational", [](MutatorConfig &C) { (void)C; });
  Add("generational_poison", [](MutatorConfig &C) {
    C.VerifyLevel = envVerifyLevel(3);
  });
  Add("generational_mt4", [](MutatorConfig &C) { C.GcThreads = 4; });
  Add("generational_markers", [](MutatorConfig &C) {
    C.UseStackMarkers = true;
    C.VerifyReuseInvariant = true;
  });
  Add("generational_markers_n3", [](MutatorConfig &C) {
    C.UseStackMarkers = true;
    C.MarkerPeriod = 3;
    C.VerifyReuseInvariant = true;
  });
  Add("generational_aged2", [](MutatorConfig &C) {
    C.PromoteAgeThreshold = 2;
  });
  Add("generational_cards", [](MutatorConfig &C) {
    C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  });
  Add("generational_filtered", [](MutatorConfig &C) {
    C.Barrier = GenerationalCollector::BarrierKind::FilteredStoreBuffer;
  });
  return Cases;
}

class GcTorture
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t>> {};

} // namespace

TEST_P(GcTorture, StructureSurvivesCollections) {
  auto Configs = tortureConfigs();
  const TortureCase &TC = Configs[std::get<0>(GetParam())];
  uint64_t Seed = std::get<1>(GetParam());

  Mutator M(TC.Config);
  Rng R(Seed);
  Frame Roots(M, keyRoots());

  for (int Round = 0; Round < 60; ++Round) {
    int Mutations = 10 + static_cast<int>(R.below(40));
    for (int I = 0; I < Mutations; ++I)
      mutateOnce(M, Roots, R);
    if (R.chance(1, 3))
      churn(M, Roots, R, 5 + static_cast<int>(R.below(60)));

    uint64_t Before = structureHash(Roots);
    M.collect(/*Major=*/R.chance(1, 4));
    uint64_t After = structureHash(Roots);
    ASSERT_EQ(Before, After)
        << TC.Name << " seed " << Seed << " round " << Round;
  }
  EXPECT_GT(M.gcStats().NumGC, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GcTorture,
    ::testing::Combine(::testing::Range<size_t>(0, 11),
                       ::testing::Values(1u, 2u, 3u, 42u, 1998u)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, uint64_t>> &Info) {
      return std::string(tortureConfigs()[std::get<0>(Info.param)].Name) +
             "_seed" + std::to_string(std::get<1>(Info.param));
    });
