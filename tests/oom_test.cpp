//===- tests/oom_test.cpp - Structured OOM protocol --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-pressure acceptance suite: every workload driven past a tiny
/// hard heap limit must surface a *catchable* HeapExhausted carrying a
/// heap-state dump — never an assert, never a null dereference — and must
/// leave a heap the verifier still certifies. Compiled twice: into the
/// regular assert-enabled test binary and into the NDEBUG resilience binary
/// (tilgc_resilience_ndebug), because the protocol must hold in release
/// builds where asserts are erased.
///
//===----------------------------------------------------------------------===//

#include "gc/HeapError.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorGroup.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace tilgc;

namespace {

uint32_t oomSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("oom.list");
  return S;
}

uint32_t oomKey() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("oom.roots", {Trace::pointer(), Trace::pointer()}));
  return K;
}

/// Retains an ever-growing cons list until the collector throws. Returns
/// the caught exception's message + dump; fails the test on any other
/// outcome.
HeapExhausted exhaust(Mutator &M, Frame &F) {
  try {
    for (uint64_t I = 0;; ++I) {
      Value Cell = M.allocRecord(oomSite(), 2, 0b10);
      M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
      M.initField(Cell, 1, F.get(1));
      F.set(1, Cell);
      if (I > (64u << 20)) // Paranoia bound; the cap trips far earlier.
        break;
    }
  } catch (const HeapExhausted &E) {
    return E;
  }
  ADD_FAILURE() << "allocation loop never hit the hard limit";
  return HeapExhausted(0, OomStage::RetryAfterMinor, "");
}

void expectStructuredDump(const HeapExhausted &E, const char *CollectorTag) {
  std::string What = E.what();
  EXPECT_NE(What.find("heap exhausted"), std::string::npos) << What;
  EXPECT_NE(What.find("tilgc heap state"), std::string::npos) << What;
  // The dump names the collector, the spaces and the top allocation sites.
  EXPECT_NE(What.find(CollectorTag), std::string::npos) << What;
  EXPECT_NE(What.find("hard limit"), std::string::npos) << What;
  EXPECT_NE(What.find("oom.list"), std::string::npos) << What;
  EXPECT_GT(E.requestedBytes(), 0u);
}

MutatorConfig tinyConfig(CollectorKind Kind, const char *Name) {
  MutatorConfig C;
  C.Kind = Kind;
  C.Name = Name;
  C.BudgetBytes = 256u << 10;
  C.HardLimitBytes = 1u << 20;
  C.NurseryLimitBytes = 64u << 10;
  C.VerifyLevel = 1;
  return C;
}

} // namespace

TEST(OomProtocol, GenerationalThrowsCatchablyWithDump) {
  Mutator M(tinyConfig(CollectorKind::Generational, "gen-oom"));
  Frame F(M, oomKey());
  HeapExhausted E = exhaust(M, F);
  expectStructuredDump(E, "generational collector 'gen-oom'");
  EXPECT_GE(M.gcStats().HeapExhaustedThrows, 1u);

  // The failed request must not have corrupted anything: the heap walks
  // clean and the retained list is intact and readable.
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
  uint64_t Count = 0;
  for (Value V = F.get(1); !V.isNull(); V = Mutator::getField(V, 1))
    ++Count;
  EXPECT_GT(Count, 1000u);

  // Exhaustion is sticky under a hard cap (the copy reserve is part of the
  // footprint), but it must *stay* structured: a second attempt throws
  // again rather than crashing.
  HeapExhausted E2 = exhaust(M, F);
  EXPECT_NE(std::string(E2.what()).find("heap exhausted"),
            std::string::npos);
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

TEST(OomProtocol, SemispaceThrowsCatchablyWithDump) {
  Mutator M(tinyConfig(CollectorKind::Semispace, "semi-oom"));
  Frame F(M, oomKey());
  HeapExhausted E = exhaust(M, F);
  expectStructuredDump(E, "semispace collector 'semi-oom'");
  EXPECT_GE(M.gcStats().HeapExhaustedThrows, 1u);

  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
  uint64_t Count = 0;
  for (Value V = F.get(1); !V.isNull(); V = Mutator::getField(V, 1))
    ++Count;
  EXPECT_GT(Count, 1000u);
}

TEST(OomProtocol, MarkCompactCompletesWhereSemispaceReservationDies) {
  // The retired pre-flight workaround, proven structurally: a semispace
  // major needs from + to standing at once, so a budget whose space pair
  // overshoots the hard cap dies at the first major's pre-flight. The
  // compactor keeps ONE standing tenured space inside the same cap and
  // completes the same retention in place.
  auto config = [](GenerationalCollector::MajorGcKind K, const char *Name) {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.Name = Name;
    C.BudgetBytes = 1536u << 10; // Space pair 2x736K; single space 736K.
    C.HardLimitBytes = 1u << 20;
    C.NurseryLimitBytes = 64u << 10;
    C.VerifyLevel = 1;
    C.MajorGc = K;
    return C;
  };
  auto retain = [](Mutator &M, Frame &F, uint64_t Cells) {
    for (uint64_t I = 0; I < Cells; ++I) {
      Value Cell = M.allocRecord(oomSite(), 2, 0b10);
      M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
      M.initField(Cell, 1, F.get(1));
      F.set(1, Cell);
    }
    M.collect(/*Major=*/true);
  };
  constexpr uint64_t Cells = 12000; // ~384K retained.

  {
    Mutator M(config(GenerationalCollector::MajorGcKind::Semispace,
                     "pair-exceeds-cap"));
    Frame F(M, oomKey());
    try {
      retain(M, F, Cells);
      ADD_FAILURE() << "the 2x reservation fit under the cap";
    } catch (const HeapExhausted &E) {
      expectStructuredDump(E, "generational collector 'pair-exceeds-cap'");
    }
    std::string Error;
    EXPECT_TRUE(M.verifyHeap(Error)) << Error;
  }
  {
    Mutator M(config(GenerationalCollector::MajorGcKind::MarkCompact,
                     "compact-fits-cap"));
    Frame F(M, oomKey());
    retain(M, F, Cells); // Must NOT throw.
    EXPECT_GE(M.gcStats().NumMajorGC, 1u);
    EXPECT_EQ(M.gcStats().HeapExhaustedThrows, 0u);
    EXPECT_LE(M.gcStats().MaxFootprintBytes, size_t{1u << 20})
        << "the compactor's peak footprint breached the hard limit";
    uint64_t Count = 0;
    for (Value V = F.get(1); !V.isNull(); V = Mutator::getField(V, 1))
      ++Count;
    EXPECT_EQ(Count, Cells);
    std::string Error;
    EXPECT_TRUE(M.verifyHeap(Error)) << Error;
  }
}

TEST(OomProtocol, MarkCompactExhaustionIsNotSticky) {
  // Contrast with GenerationalThrowsCatchablyWithDump: the semispace
  // major's exhaustion is sticky (the copy reserve is part of the standing
  // footprint), but the compactor throws from the growth fallback with the
  // heap intact and nothing extra reserved — dropping data and retrying
  // must succeed.
  MutatorConfig C = tinyConfig(CollectorKind::Generational, "mc-retry");
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  Mutator M(C);
  Frame F(M, oomKey());
  HeapExhausted E = exhaust(M, F);
  expectStructuredDump(E, "generational collector 'mc-retry'");
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;

  // Drop the retained list: the live set is now tiny.
  F.set(1, Value::null());
  uint64_t ThrowsBefore = M.gcStats().HeapExhaustedThrows;
  M.collect(/*Major=*/true); // In-place compaction reclaims everything.
  for (uint64_t I = 0; I < 2000; ++I) { // ~64K: far under the cap.
    Value Cell = M.allocRecord(oomSite(), 2, 0b10);
    M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
    M.initField(Cell, 1, F.get(1));
    F.set(1, Cell);
  }
  EXPECT_EQ(M.gcStats().HeapExhaustedThrows, ThrowsBefore)
      << "retry after dropping data must not re-throw";
  uint64_t Count = 0;
  for (Value V = F.get(1); !V.isNull(); V = Mutator::getField(V, 1))
    ++Count;
  EXPECT_EQ(Count, 2000u);
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

TEST(OomProtocol, LargeObjectAllocationRespectsHardLimit) {
  Mutator M(tinyConfig(CollectorKind::Generational, "gen-los-oom"));
  Frame F(M, oomKey());
  try {
    for (uint64_t I = 0;; ++I) {
      // Over LargeObjectThresholdBytes: routed to the LOS.
      Value Arr = M.allocPtrArray(oomSite(), 2048);
      M.initField(Arr, 0, F.get(1));
      F.set(1, Arr);
      ASSERT_LT(I, 64u << 20);
    }
  } catch (const HeapExhausted &E) {
    expectStructuredDump(E, "generational collector");
  }
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

TEST(OomProtocol, ZeroHardLimitPreservesSoftBudgetGrowth) {
  // The paper's behavior: no hard limit means collections grow past the
  // budget (counting overruns) and never throw.
  MutatorConfig C = tinyConfig(CollectorKind::Generational, "gen-soft");
  C.HardLimitBytes = 0;
  Mutator M(C);
  Frame F(M, oomKey());
  for (uint64_t I = 0; I < 40000; ++I) {
    Value Cell = M.allocRecord(oomSite(), 2, 0b10);
    M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
    M.initField(Cell, 1, F.get(1));
    F.set(1, Cell);
  }
  EXPECT_EQ(M.gcStats().HeapExhaustedThrows, 0u);
  EXPECT_GT(M.gcStats().BudgetOverruns, 0u);
}

/// Every Table 1 workload, both collectors: under a tiny hard limit the run
/// either completes (then a retained allocation loop forces the limit) or
/// throws HeapExhausted — and in all cases the heap verifies clean after.
class WorkloadOom
    : public ::testing::TestWithParam<std::tuple<size_t, CollectorKind>> {};

TEST_P(WorkloadOom, StructuredFailurePastHardLimit) {
  const auto &Workloads = allWorkloads();
  Workload &W = *Workloads[std::get<0>(GetParam())];
  CollectorKind Kind = std::get<1>(GetParam());

  MutatorConfig C = tinyConfig(Kind, W.name());
  C.HardLimitBytes = 384u << 10;
  C.BudgetBytes = 128u << 10;
  Mutator M(C);
  bool Threw = false;
  try {
    uint64_t Sum = W.run(M, /*Scale=*/0.12);
    // Fit under the cap: the checksum must still be right, and a retained
    // loop must then hit the limit structurally.
    EXPECT_EQ(Sum, W.expected(0.12)) << W.name();
    Frame F(M, oomKey());
    HeapExhausted E = exhaust(M, F);
    EXPECT_NE(std::string(E.what()).find("tilgc heap state"),
              std::string::npos);
    Threw = true;
  } catch (const HeapExhausted &E) {
    EXPECT_NE(std::string(E.what()).find("tilgc heap state"),
              std::string::npos);
    Threw = true;
  } catch (const MLRaise &) {
    // Some workloads legitimately unwind through ML exceptions; the
    // allocation failure surfaced before a handler was reinstalled. The
    // heap must still be intact (checked below).
  }
  EXPECT_TRUE(Threw) << W.name() << ": never saw HeapExhausted";
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << W.name() << ": " << Error;
  EXPECT_GE(M.gcStats().HeapExhaustedThrows, Threw ? 1u : 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadOom,
    ::testing::Combine(::testing::Range<size_t>(0, 11),
                       ::testing::Values(CollectorKind::Generational,
                                         CollectorKind::Semispace)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, CollectorKind>>
           &Info) {
      std::string Name = allWorkloads()[std::get<0>(Info.param)]->name();
      for (char &Ch : Name)
        if (!isalnum(static_cast<unsigned char>(Ch)))
          Ch = '_';
      return Name + (std::get<1>(Info.param) == CollectorKind::Generational
                         ? "_gen"
                         : "_semi");
    });

TEST(OomProtocolDeath, UncaughtMLExceptionDiesStructurally) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        MutatorConfig C;
        C.Name = "uncaught-exn";
        Mutator M(C);
        Frame F(M, oomKey());
        M.raise(Value::fromInt(7)); // No handler installed.
      },
      "uncaught ML exception in mutator 'uncaught-exn'");
}

TEST(OomProtocolDeath, HostAllocationFailureDiesStructurally) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A reservation so large the host refuses it: the always-on fatal path
  // (not an NDEBUG-erased assert, not a null dereference).
  EXPECT_DEATH(
      {
        Space S;
        S.reserve(~size_t{0} / 2);
      },
      "space reservation of .* failed: host out of memory");
}

//===----------------------------------------------------------------------===//
// Multi-mutator exhaustion: a hard cap shared by K threads must surface a
// catchable HeapExhausted on EVERY thread (each unwinds through its own
// stop-the-world slow path) and leave a heap the verifier certifies.
// Compiled into the NDEBUG twin too: the protocol cannot lean on asserts.
//===----------------------------------------------------------------------===//

TEST(OomProtocolMultiMutator, HardCapUnwindsEveryThread) {
  MutatorConfig C = tinyConfig(CollectorKind::Generational, "mm-oom");
  C.HardLimitBytes = 2u << 20;
  const unsigned K = 3;
  MutatorGroup G(C, K);
  std::vector<int> Caught(K, 0);
  G.run([&](Mutator &M, unsigned I) {
    Frame F(M, oomKey());
    try {
      for (uint64_t J = 0;; ++J) {
        Value Cell = M.allocRecord(oomSite(), 2, 0b10);
        M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(J)));
        M.initField(Cell, 1, F.get(1));
        F.set(1, Cell);
        if (J > (64u << 20)) // Paranoia bound; the cap trips far earlier.
          break;
      }
    } catch (const HeapExhausted &E) {
      std::string What = E.what();
      if (What.find("heap exhausted") != std::string::npos &&
          What.find("tilgc heap state") != std::string::npos)
        Caught[I] = 1;
    }
    // Dropping this thread's list (Frame pops here) frees room, so the
    // remaining threads run on until the cap trips for each in turn.
  });
  for (unsigned I = 0; I < K; ++I)
    EXPECT_EQ(Caught[I], 1) << "thread " << I
                            << " did not catch a structured HeapExhausted";
  EXPECT_GE(G.gcStats().HeapExhaustedThrows, uint64_t(K));
  std::string Error;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Error)) << Error;
}
