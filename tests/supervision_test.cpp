//===- tests/supervision_test.cpp - Watchdog and engine failover ----------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-supervision acceptance suite:
///
///  * engine failover: a mark-/plan-phase fault under the mark-compact
///    major (injected or watchdog-detected) must abort the still-
///    mutation-free phase and finish the collection with a semispace
///    evacuation — bit-identical checksums to a clean semispace run on
///    every workload, VerifyLevel-2 audited, sticky-disabling the engine
///    after repeated consecutive failovers;
///  * watchdog barks: an expired GC-cycle or safepoint-rendezvous deadline
///    produces a structured diagnostic through GcObserver::onWatchdogBark
///    without abandoning (or deadlocking) the supervised window;
///  * the remaining post-PR-3 fault points: refused TLAB handouts degrade
///    to stopped allocation, a throwing card sweep degrades to a full
///    tenured walk, transient host reservation failures are absorbed by
///    bounded retry (persistent ones die with the structured message), and
///    HeapExhausted names the OOM-ladder stage it escalated from.
///
/// Like fault_injection_test.cpp, this file is also compiled into the
/// NDEBUG resilience binary and honors TILGC_VERIFY_LEVEL.
///
//===----------------------------------------------------------------------===//

#include "gc/GenerationalCollector.h"
#include "gc/HeapError.h"
#include "observe/EventRecorder.h"
#include "observe/GcTelemetry.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorGroup.h"
#include "support/FaultInjector.h"
#include "workloads/MLLib.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

/// Arms nothing; guarantees the global injector is clean before and after
/// each test regardless of how the test exits.
struct ScopedFaults {
  ScopedFaults() { FaultInjector::global().reset(); }
  ~ScopedFaults() { FaultInjector::global().reset(); }
};

unsigned envVerifyLevel(unsigned Default) {
  if (const char *E = std::getenv("TILGC_VERIFY_LEVEL"))
    return static_cast<unsigned>(std::atoi(E));
  return Default;
}

MutatorConfig supervConfig(const char *Name, unsigned GcThreads) {
  MutatorConfig C;
  C.Name = Name;
  C.BudgetBytes = 2u << 20;
  C.NurseryLimitBytes = 96u << 10; // Tight: many collections, some major.
  C.GcThreads = GcThreads;
  C.VerifyLevel = envVerifyLevel(1);
  return C;
}

uint32_t supervSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("superv.site");
  return S;
}

uint32_t supervKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "superv.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Engine failover: mark-compact aborts, semispace finishes.
//===----------------------------------------------------------------------===//

/// The headline acceptance criterion: with every mark-compact major's
/// mark/plan phase aborted by injection, all eleven workloads must compute
/// checksums bit-identical to a clean semispace run, under the VerifyLevel-2
/// reachability/completeness audit.
TEST(EngineFailover, AllWorkloadsMatchCleanSemispaceChecksum) {
  const double Scale = 0.07;
  uint64_t TotalFailovers = 0;
  for (const auto &W : allWorkloads()) {
    // Clean semispace baseline.
    MutatorConfig CS = supervConfig("superv-semi-baseline", 1);
    CS.MajorGc = GenerationalCollector::MajorGcKind::Semispace;
    CS.VerifyLevel = envVerifyLevel(2);
    uint64_t Baseline = 0;
    {
      Mutator M(CS);
      std::unique_ptr<Workload> L = makeWorkloadByName(W->name());
      Baseline = L->run(M, Scale);
      EXPECT_EQ(Baseline, L->expected(Scale)) << W->name();
    }

    // Mark-compact with every major's mark aborted at entry: each major
    // must fail over to the semispace evacuation mid-collection.
    ScopedFaults Guard;
    FaultInjector::global().arm(FaultPoint::MarkPlanThrow, 1,
                                FaultInjector::Forever);
    MutatorConfig CM = CS;
    CM.Name = "superv-mc-failover";
    CM.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
    Mutator M(CM);
    std::unique_ptr<Workload> L = makeWorkloadByName(W->name());
    uint64_t Sum = L->run(M, Scale);
    M.collect(/*Major=*/true); // Even quiet workloads exercise one failover.
    EXPECT_EQ(Sum, Baseline) << W->name();
    EXPECT_GE(M.gcStats().MajorEngineFailovers, 1u) << W->name();
    TotalFailovers += M.gcStats().MajorEngineFailovers;
    FaultInjector::global().reset(); // Verify with injection quiesced.
    std::string Error;
    EXPECT_TRUE(M.verifyHeap(Error)) << W->name() << ": " << Error;
  }
  EXPECT_GE(TotalFailovers, 11u);
}

TEST(EngineFailover, StickyDisableAfterConsecutiveFailovers) {
  ScopedFaults Guard;
  FaultInjector::global().arm(FaultPoint::MarkPlanThrow, 1,
                              FaultInjector::Forever);
  MutatorConfig C = supervConfig("superv-sticky", 1);
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, supervKey());
  F.set(1, Value::null());
  for (int I = 0; I < 2000; ++I)
    F.set(1, consInt(M, supervSite(), I, slot(F, 1)));

  EXPECT_FALSE(GC.markCompactDisabled());
  M.collect(/*Major=*/true);
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 1u);
  EXPECT_FALSE(GC.markCompactDisabled());
  M.collect(/*Major=*/true);
  M.collect(/*Major=*/true);
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 3u);
  EXPECT_TRUE(GC.markCompactDisabled())
      << "third consecutive failover must sticky-disable the engine";
  // Disabled engine goes straight to the fallback: no abort point is
  // crossed, so no further failover is counted.
  M.collect(/*Major=*/true);
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 3u);

  FaultInjector::global().reset();
  int64_t Want = 1999;
  for (Value V = F.get(1); !V.isNull(); V = tail(V))
    EXPECT_EQ(headInt(V), Want--);
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

TEST(EngineFailover, SuccessfulMajorResetsTheConsecutiveStreak) {
  ScopedFaults Guard;
  FaultInjector &FI = FaultInjector::global();
  MutatorConfig C = supervConfig("superv-streak", 1);
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, supervKey());
  F.set(1, Value::null());
  for (int I = 0; I < 500; ++I)
    F.set(1, consInt(M, supervSite(), I, slot(F, 1)));

  FI.arm(FaultPoint::MarkPlanThrow, 1, /*FireCount=*/2);
  M.collect(true);
  M.collect(true);
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 2u);
  M.collect(true); // Clean mark-compact major: streak back to zero.
  FI.reset();
  FI.arm(FaultPoint::MarkPlanThrow, 1, /*FireCount=*/1);
  M.collect(true);
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 3u);
  EXPECT_FALSE(GC.markCompactDisabled())
      << "three non-consecutive failovers must not sticky-disable";
  FI.reset();
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

/// Failover events are pinned in telemetry: the deterministic event slice
/// carries EngineFailover for exactly the aborted majors.
TEST(EngineFailover, EventSliceCarriesTheFailoverBit) {
  ScopedFaults Guard;
  FaultInjector::global().arm(FaultPoint::MarkPlanThrow, 1, /*FireCount=*/1);
  EventRecorder R;
  MutatorConfig C = supervConfig("superv-failover-event", 1);
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  C.Observer = &R;
  Mutator M(C);
  Frame F(M, supervKey());
  F.set(1, Value::null());
  for (int I = 0; I < 500; ++I)
    F.set(1, consInt(M, supervSite(), I, slot(F, 1)));
  M.collect(true); // Fails over (injected).
  M.collect(true); // Clean.
  unsigned FailoverEvents = 0;
  for (size_t I = 0; I < R.size(); ++I)
    if (R.event(I).EngineFailover) {
      ++FailoverEvents;
      EXPECT_EQ(R.event(I).Gen, GcGeneration::Major);
    }
  EXPECT_EQ(FailoverEvents, 1u);
}

//===----------------------------------------------------------------------===//
// Watchdog barks: structured diagnostics, no abandoned windows.
//===----------------------------------------------------------------------===//

/// A mutator that skips its safepoint poll past the rendezvous deadline
/// must produce a SafepointRendezvous bark — observer hook fired with park
/// progress — while the rendezvous still completes normally afterwards.
class SafepointNoShowBark : public ::testing::TestWithParam<unsigned> {};

TEST_P(SafepointNoShowBark, BarksWithoutDeadlockingTheRendezvous) {
  unsigned K = GetParam();
  const double Scale = 0.08;
  ScopedFaults Guard;
  // Each fire skips one park poll for ~5ms; the 1ms deadline expires
  // mid-rendezvous every time one lands inside a stop.
  FaultInjector::global().arm(FaultPoint::SafepointNoShow, 1,
                              /*FireCount=*/12);
  EventRecorder R;
  MutatorConfig C = supervConfig("superv-noshow", 1);
  C.SafepointDeadlineMicros = 1000;
  C.Observer = &R;
  Workload *W = findWorkload("Life");
  ASSERT_NE(W, nullptr);
  uint64_t Expected = W->expected(Scale);

  MutatorGroup G(C, K);
  std::vector<uint64_t> Sums(K, 0);
  G.run([&](Mutator &M, unsigned I) {
    std::unique_ptr<Workload> L = makeWorkloadByName("Life");
    Sums[I] = L->run(M, Scale);
  });
  for (unsigned I = 0; I < K; ++I)
    EXPECT_EQ(Sums[I], Expected) << "thread " << I << " of " << K;

  EXPECT_GE(FaultInjector::global().fired(FaultPoint::SafepointNoShow), 1u);
  bool SawRendezvousBark = false;
  for (const WatchdogBark &B : R.barks()) {
    if (B.What != WatchdogBark::Kind::SafepointRendezvous)
      continue;
    SawRendezvousBark = true;
    EXPECT_EQ(B.DeadlineMicros, 1000u);
    EXPECT_GE(B.ElapsedMicros, 1000u);
    // Expected is the count of threads *active at arm time* — at most
    // K-1, less when some workload threads already retired.
    EXPECT_LE(B.MutatorsExpected, K - 1);
    EXPECT_LE(B.MutatorsParked, B.MutatorsExpected);
    EXPECT_FALSE(B.Detail.empty());
  }
  EXPECT_TRUE(SawRendezvousBark);
  EXPECT_GT(G.gcStats().SafepointStops, 0u)
      << "every bark must still be followed by a completed rendezvous";
  FaultInjector::global().reset();
  std::string Error;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Error)) << Error;
}

INSTANTIATE_TEST_SUITE_P(Mutators, SafepointNoShowBark,
                         ::testing::Values(2u, 8u),
                         [](const ::testing::TestParamInfo<unsigned> &Info) {
                           return "k" + std::to_string(Info.param);
                         });

/// A GC cycle stalled past its deadline barks with the heap-state dump
/// captured at cycle entry and the live phase ordinal; under Report the
/// collection is never aborted.
TEST(Watchdog, GcCycleDeadlineBarkIsStructured) {
  const double Scale = 0.12;
  ScopedFaults Guard;
  // Two 20ms worker stalls stretch two collections far past the deadline.
  FaultInjector::global().arm(FaultPoint::WorkerStall, 1, /*FireCount=*/2);
  EventRecorder R;
  MutatorConfig C = supervConfig("superv-gcbark", 2);
  C.GcDeadlineMicros = 2000;
  C.WatchdogEscalation = WatchdogPolicy::Report;
  C.Observer = &R;
  Mutator M(C);
  Workload *W = findWorkload("Life");
  uint64_t Sum = W->run(M, Scale);
  EXPECT_EQ(Sum, W->expected(Scale));
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::WorkerStall), 1u);

  bool SawCycleBark = false;
  for (const WatchdogBark &B : R.barks()) {
    if (B.What != WatchdogBark::Kind::GcCycle)
      continue;
    SawCycleBark = true;
    EXPECT_EQ(B.Policy, WatchdogPolicy::Report);
    EXPECT_EQ(B.DeadlineMicros, 2000u);
    EXPECT_GE(B.ElapsedMicros, 2000u);
    EXPECT_NE(B.Detail.find("heap state"), std::string::npos)
        << "bark must carry the arm-time heap-state dump";
  }
  EXPECT_TRUE(SawCycleBark);
  // Report never recovers: no engine failover may have happened.
  EXPECT_EQ(M.gcStats().MajorEngineFailovers, 0u);
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

/// Watchdog-detected recovery: a stalled mark-compact mark phase is
/// aborted through the Recover latch (no injected throw) and the major
/// fails over, preserving the heap.
TEST(Watchdog, RecoverAbortsStalledMarkAndFailsOver) {
  ScopedFaults Guard;
  MutatorConfig C = supervConfig("superv-recover", 2);
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  C.GcDeadlineMicros = 5000;
  C.WatchdogEscalation = WatchdogPolicy::Recover;
  Mutator M(C);
  Frame F(M, supervKey());
  F.set(1, Value::null());
  for (int I = 0; I < 2000; ++I)
    F.set(1, consInt(M, supervSite(), I, slot(F, 1)));

  uint64_t Before = M.gcStats().MajorEngineFailovers;
  // The first parallel pass after arming is the major's mark: each worker
  // stalls 20ms, the 5ms deadline expires mid-mark, the supervisor latches
  // the recover flag, and the next abort point fails the major over to the
  // semispace evacuation. Bounded fires so the fallback isn't stalled too.
  FaultInjector::global().arm(FaultPoint::WorkerStall, 1, /*FireCount=*/4);
  M.collect(/*Major=*/true);
  FaultInjector::global().reset();
  EXPECT_GE(M.gcStats().MajorEngineFailovers, Before + 1);

  int64_t Want = 1999;
  for (Value V = F.get(1); !V.isNull(); V = tail(V))
    EXPECT_EQ(headInt(V), Want--);
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Remaining post-PR-3 fault points.
//===----------------------------------------------------------------------===//

/// Refused TLAB handouts must degrade to the stopped-allocation slow path,
/// not fail the allocation.
TEST(MultiMutatorFaults, TlabRefillRefusalDegradesToStoppedAllocation) {
  const double Scale = 0.08;
  ScopedFaults Guard;
  FaultInjector::global().arm(FaultPoint::TlabRefillFail, 1,
                              /*FireCount=*/4);
  MutatorConfig C = supervConfig("superv-tlab", 1);
  Workload *W = findWorkload("Life");
  uint64_t Expected = W->expected(Scale);
  MutatorGroup G(C, 2);
  std::vector<uint64_t> Sums(2, 0);
  G.run([&](Mutator &M, unsigned I) {
    std::unique_ptr<Workload> L = makeWorkloadByName("Life");
    Sums[I] = L->run(M, Scale);
  });
  EXPECT_EQ(Sums[0], Expected);
  EXPECT_EQ(Sums[1], Expected);
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::TlabRefillFail), 1u);
  FaultInjector::global().reset();
  std::string Error;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Error)) << Error;
}

/// A card sweep that throws mid-scan must degrade to the full tenured
/// walk: the collection completes and no old->young edge is lost.
TEST(CardSweepFaults, ThrowDegradesToFullTenuredWalk) {
  ScopedFaults Guard;
  MutatorConfig C = supervConfig("superv-cards", 1);
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  Mutator M(C);
  Frame F(M, supervKey());
  // Promote a list, then point a tenured cell at a young survivor so the
  // next minor depends on the card sweep for that edge.
  F.set(1, Value::null());
  for (int I = 0; I < 3000; ++I)
    F.set(1, consInt(M, supervSite(), I, slot(F, 1)));
  M.collect(false); // Promote-all: the list tenures.
  F.set(2, consInt(M, supervSite(), 777, slot(F, 3)));
  M.writeField(F.get(1), 1, F.get(2), /*IsPointerField=*/true);
  Value YoungRef = F.get(2);
  F.set(2, Value::null());
  (void)YoungRef;

  FaultInjector::global().arm(FaultPoint::CardSweepThrow, 1,
                              /*FireCount=*/1);
  M.collect(false); // Sweep throws; recovery walks the whole tenured space.
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::CardSweepThrow), 1u);
  EXPECT_GE(M.gcStats().CardSweepFaults, 1u);
  // The young cell reached only through the faulted sweep must survive.
  EXPECT_EQ(headInt(Mutator::getField(F.get(1), 1)), 777);
  FaultInjector::global().reset();
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

/// Transient host reservation failures are absorbed by the bounded
/// retry-with-backoff loop; the program observes nothing.
TEST(HostGrowFaults, TransientReservationFailureIsRetried) {
  const double Scale = 0.08;
  ScopedFaults Guard;
  // Three consecutive refusals: one fewer than the retry budget, so every
  // reservation eventually succeeds.
  FaultInjector::global().arm(FaultPoint::HostGrowFail, 1, /*FireCount=*/3);
  MutatorConfig C = supervConfig("superv-hostgrow", 1);
  Mutator M(C);
  Workload *W = findWorkload("Life");
  EXPECT_EQ(W->run(M, Scale), W->expected(Scale));
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::HostGrowFail), 3u);
  FaultInjector::global().reset();
  std::string Error;
  EXPECT_TRUE(M.verifyHeap(Error)) << Error;
}

TEST(HostGrowFaultsDeath, PersistentReservationFailureDiesStructured) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Every attempt refused, past the retry budget: must die with the
  // structured host-OOM message, never loop forever.
  EXPECT_DEATH(
      {
        FaultInjector::global().reset();
        FaultInjector::global().arm(FaultPoint::HostGrowFail, 1,
                                    FaultInjector::Forever);
        MutatorConfig C;
        C.Name = "superv-hostgrow-dead";
        C.BudgetBytes = 2u << 20;
        Mutator M(C);
      },
      "host out of memory");
}

/// HeapExhausted names the escalation-ladder stage that gave up, so a
/// post-mortem can tell a failed post-major retry from a hard-cap
/// preflight.
TEST(OomLadder, HeapExhaustedNamesTheLadderStage) {
  MutatorConfig C = supervConfig("superv-ladder", 1);
  C.HardLimitBytes = 1u << 20;
  Mutator M(C);
  Frame F(M, supervKey());
  F.set(1, Value::null());
  bool Threw = false;
  try {
    for (uint64_t I = 0; I < 1000000; ++I)
      F.set(1, consInt(M, supervSite(), static_cast<int64_t>(I), slot(F, 1)));
  } catch (const HeapExhausted &E) {
    Threw = true;
    std::string What = E.what();
    EXPECT_NE(What.find("ladder stage: "), std::string::npos) << What;
    EXPECT_NE(What.find("tilgc heap state"), std::string::npos) << What;
  }
  EXPECT_TRUE(Threw) << "a 1MB hard cap must exhaust under a retained list";
}
