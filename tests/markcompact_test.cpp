//===- tests/markcompact_test.cpp - Region mark-compact major GC -----------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region-structured mark-compact major collector: RegionManager overlay
/// unit tests, behavioral smoke tests for the in-place and growth-fallback
/// paths, the 11-workload differential against the serial semispace-major
/// baseline across GcThreads 1/2/8, the strictly-fewer-bytes-moved claim,
/// event-stream determinism, and VerifyLevel-3 / fault-injection torture
/// (this file is also linked into the NDEBUG resilience twin).
///
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "heap/RegionManager.h"
#include "observe/EventRecorder.h"
#include "support/FaultInjector.h"
#include "workloads/MLLib.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <utility>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

using MajorGcKind = GenerationalCollector::MajorGcKind;

uint32_t siteMc() {
  static const uint32_t S = AllocSiteRegistry::global().define("mctest.site");
  return S;
}

uint32_t keyMc() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "mctest.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// RegionManager overlay unit tests.
//===----------------------------------------------------------------------===//

TEST(RegionManagerTest, AttachSizesRegionSetToCapacity) {
  Space S;
  S.reserve(3 * RegionManager::RegionBytes + (16u << 10));
  RegionManager RM;
  RM.attach(S);
  ASSERT_TRUE(RM.boundTo(S));

  size_t CapWords = S.capacityBytes() / sizeof(Word);
  size_t Expect =
      (CapWords + RegionManager::RegionWords - 1) / RegionManager::RegionWords;
  ASSERT_EQ(RM.numRegions(), Expect);

  // Region extents tile the space exactly; only the tail may be short.
  size_t Sum = 0;
  for (size_t R = 0; R < RM.numRegions(); ++R) {
    size_t W = RM.regionCapacityWords(R);
    if (R + 1 < RM.numRegions()) {
      EXPECT_EQ(W, RegionManager::RegionWords);
    }
    EXPECT_EQ(RM.regionBegin(R), S.baseAddr() + R * RegionManager::RegionWords);
    EXPECT_EQ(RM.regionEnd(R), RM.regionBegin(R) + W);
    Sum += W;
  }
  EXPECT_EQ(Sum, CapWords);

  // Attribution is by address, region boundaries inclusive at the base.
  EXPECT_EQ(RM.regionOf(S.baseAddr()), 0u);
  EXPECT_EQ(RM.regionOf(S.baseAddr() + RegionManager::RegionWords), 1u);
  EXPECT_EQ(RM.regionOf(S.baseAddr() + RegionManager::RegionWords - 1), 0u);
}

TEST(RegionManagerTest, RebindAfterReReserveIsDetected) {
  Space S;
  S.reserve(2 * RegionManager::RegionBytes);
  RegionManager RM;
  RM.attach(S);
  ASSERT_TRUE(RM.boundTo(S));

  // Same space object, new reservation epoch: the overlay must know its
  // accounting is stale (this is the satellite-2 growth-fallback contract).
  S.release();
  S.reserve(4 * RegionManager::RegionBytes);
  EXPECT_FALSE(RM.boundTo(S));
  RM.attach(S);
  EXPECT_TRUE(RM.boundTo(S));
  EXPECT_EQ(RM.numRegions(),
            S.capacityBytes() / RegionManager::RegionBytes +
                (S.capacityBytes() % RegionManager::RegionBytes != 0));
}

TEST(RegionManagerTest, LivenessClassificationAndCandidates) {
  Space S;
  S.reserve(4 * RegionManager::RegionBytes);
  RegionManager RM;
  RM.attach(S);
  ASSERT_GE(RM.numRegions(), 4u);

  const Word *Base = S.baseAddr();
  size_t RW = RegionManager::RegionWords;
  // Region 0: dense (above the 0.75 default). Region 1: sparse. Region 2:
  // empty. Region 3: exactly at the threshold (>= compares dense).
  RM.addLive(Base + 10, (RW * 9) / 10);
  RM.addLive(Base + RW + 10, RW / 4);
  size_t Threshold = static_cast<size_t>(
      RegionManager::DefaultDenseFraction * static_cast<double>(RW));
  RM.addLive(Base + 3 * RW + 10, Threshold);

  size_t NumDense = RM.classify(RegionManager::DefaultDenseFraction);
  EXPECT_EQ(NumDense, 2u);
  EXPECT_TRUE(RM.isDense(0));
  EXPECT_FALSE(RM.isDense(1));
  EXPECT_FALSE(RM.isDense(2)) << "empty regions must always compact away";
  EXPECT_TRUE(RM.isDense(3));
  // Candidates = live but not dense: region 1 only (2 holds nothing).
  EXPECT_EQ(RM.numEvacuationCandidates(), 1u);

  // clearPlan keeps the binding but resets the accounting.
  RM.clearPlan();
  EXPECT_TRUE(RM.boundTo(S));
  EXPECT_EQ(RM.liveWords(0), 0u);
  EXPECT_EQ(RM.classify(RegionManager::DefaultDenseFraction), 0u);
  EXPECT_EQ(RM.numEvacuationCandidates(), 0u);
}

TEST(RegionManagerTest, WalkStartRecordsFirstHeaderOnly) {
  Space S;
  S.reserve(2 * RegionManager::RegionBytes);
  RegionManager RM;
  RM.attach(S);
  const Word *Base = S.baseAddr();
  EXPECT_EQ(RM.firstHeader(0), nullptr);
  RM.noteWalkStart(Base + 5);
  RM.noteWalkStart(Base + 9); // Later header in the same region: ignored.
  RM.noteWalkStart(Base + RegionManager::RegionWords + 3);
  EXPECT_EQ(RM.firstHeader(0), Base + 5);
  EXPECT_EQ(RM.firstHeader(1), Base + RegionManager::RegionWords + 3);
}

//===----------------------------------------------------------------------===//
// Behavioral smoke: the in-place compactor and the growth fallback.
//===----------------------------------------------------------------------===//

TEST(MarkCompactTest, InPlaceMajorPreservesLiveDataAndReclaims) {
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyMc());

  // The PIA pattern: promote garbage rounds, then one stable list.
  for (int Round = 0; Round < 20; ++Round) {
    F.set(1, Value::null());
    for (int I = 0; I < 2000; ++I)
      F.set(1, consInt(M, siteMc(), I, slot(F, 1)));
    M.collect(false); // Promote.
  }
  F.set(2, Value::null());
  for (int I = 0; I < 500; ++I)
    F.set(2, consInt(M, siteMc(), I, slot(F, 2)));
  F.set(1, Value::null());

  M.collect(true);
  EXPECT_GT(M.gcStats().NumMajorGC, 0u);
  EXPECT_EQ(mllib::length(F.get(2)), 500u);
  EXPECT_EQ(headInt(F.get(2)), 499);
  // Tenured garbage was actually reclaimed, not just marked.
  EXPECT_LT(M.collector().liveBytesAfterLastGC(), 128u << 10);

  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}

TEST(MarkCompactTest, GrowthFallbackPreservesLiveData) {
  // A live set that cannot fit the initial tenured reservation: the
  // compactor must take the transient evacuating-growth path (and rebind
  // the region overlay to the grown space) without losing anything.
  MutatorConfig C;
  C.BudgetBytes = 16u << 20;
  C.NurseryLimitBytes = 64u << 10;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyMc());
  for (int I = 0; I < 60000; ++I) // ~1.9MB live, all reachable.
    F.set(1, consInt(M, siteMc(), I, slot(F, 1)));
  M.collect(true);
  EXPECT_EQ(mllib::length(F.get(1)), 60000u);
  EXPECT_EQ(sumInt(F.get(1)), 60000ll * 59999 / 2);
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}

TEST(MarkCompactTest, AgedTenuringMatchesSemispaceMajorContract) {
  // Both major engines promote every young survivor regardless of age (the
  // semispace major sets no DestYoung); minors alone respect the threshold.
  // The compactor must reproduce both halves of that contract.
  for (MajorGcKind K : {MajorGcKind::Semispace, MajorGcKind::MarkCompact}) {
    MutatorConfig C;
    C.BudgetBytes = 1u << 20;
    C.MajorGc = K;
    C.PromoteAgeThreshold = 3;
    C.VerifyHeapAfterGC = true;
    Mutator M(C);
    Frame F(M, keyMc());
    F.set(1, consInt(M, siteMc(), 7, slot(F, 2)));
    auto &GC = static_cast<GenerationalCollector &>(M.collector());

    M.collect(false);
    EXPECT_TRUE(GC.inNursery(F.get(1).asPtr()))
        << "minor at age 1 must keep the object young";
    M.collect(true);
    EXPECT_TRUE(GC.inTenured(F.get(1).asPtr()))
        << "a major promotes all young survivors, whatever their age";
    EXPECT_EQ(headInt(F.get(1)), 7);
  }
}

TEST(MarkCompactTest, LargeObjectsSurviveAndDieAcrossCompaction) {
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.VerifyHeapAfterGC = true;
  Mutator M(C);
  Frame F(M, keyMc());

  F.set(1, M.allocPtrArray(siteMc(), 2048)); // LOS-resident.
  F.set(2, consInt(M, siteMc(), 123, slot(F, 3)));
  M.writeField(F.get(1), 17, F.get(2), /*IsPointerField=*/true);
  F.set(2, Value::null());
  M.collect(true); // LOS object marked through, child kept via its slot.
  Value Kept = Mutator::getField(F.get(1), 17);
  ASSERT_FALSE(Kept.isNull());
  EXPECT_EQ(headInt(Kept), 123);

  F.set(1, Value::null()); // Now LOS garbage: the mark-sweep must take it.
  uint64_t LiveBefore = M.collector().liveBytesAfterLastGC();
  M.collect(true);
  EXPECT_LT(M.collector().liveBytesAfterLastGC(), LiveBefore);
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}

TEST(MarkCompactTest, SlidCrossingMetadataKeepsOldToYoungEdge) {
  // Crossing-map rebuild after a slide: a tenured parent preceded by a
  // region of tenured garbage slides down during compaction; a subsequent
  // old->young store must still be findable through the rebuilt card and
  // crossing metadata at the parent's NEW address.
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  C.VerifyLevel = 2; // Pre-minor remembered-set completeness audit.
  Mutator M(C);
  Frame F(M, keyMc());
  auto &GC = static_cast<GenerationalCollector &>(M.collector());

  // Tenured garbage ahead of the parent, then drop the garbage.
  for (int I = 0; I < 8000; ++I)
    F.set(1, consInt(M, siteMc(), I, slot(F, 1)));
  F.set(2, M.allocRecord(siteMc(), 2, 0b11));
  M.collect(false); // Promote everything.
  ASSERT_TRUE(GC.inTenured(F.get(2).asPtr()));
  F.set(1, Value::null());
  M.collect(true); // Compaction slides the parent toward the base.
  ASSERT_TRUE(GC.inTenured(F.get(2).asPtr()));

  // The only path to the child is the post-slide old->young edge.
  F.set(3, consInt(M, siteMc(), 777, slot(F, 1)));
  M.writeField(F.get(2), 0, F.get(3), /*IsPointerField=*/true);
  F.set(3, Value::null());
  M.collect(false);
  Value Child = Mutator::getField(F.get(2), 0);
  ASSERT_FALSE(Child.isNull()) << "old->young edge lost after the slide";
  EXPECT_EQ(headInt(Child), 777);
}

//===----------------------------------------------------------------------===//
// The bytes-moved claim: against a retained stable prefix, the compactor
// moves strictly less than the evacuating semispace major, which re-copies
// every live tenured byte at every major.
//===----------------------------------------------------------------------===//

namespace {

struct MovedOutcome {
  uint64_t Checksum = 0;
  uint64_t MajorBytesMoved = 0;
  uint64_t NumMajorGC = 0;
  uint64_t MaxFootprint = 0;
};

constexpr double McDiffScale = 0.1;

MovedOutcome movedRun(size_t WIdx, MajorGcKind K) {
  Workload &W = *allWorkloads()[WIdx];
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = K;
  Mutator M(C);
  MovedOutcome R;
  {
    // A stable tenured prefix retained across the whole workload: the
    // population an evacuating major re-copies and a compactor leaves put.
    Frame F(M, keyMc());
    for (int I = 0; I < 3000; ++I)
      F.set(1, consInt(M, siteMc(), I, slot(F, 1)));
    M.collect(true); // Tenure the prefix.
    R.Checksum = W.run(M, McDiffScale);
    M.collect(true); // ">= 2 majors" holds even for quiet workloads.
    EXPECT_EQ(mllib::length(F.get(1)), 3000u) << W.name();
  }
  R.MajorBytesMoved = M.gcStats().MajorBytesMoved;
  R.NumMajorGC = M.gcStats().NumMajorGC;
  R.MaxFootprint = M.gcStats().MaxFootprintBytes;
  return R;
}

} // namespace

TEST(MarkCompactTest, MovesStrictlyFewerBytesThanSemispaceOnAllWorkloads) {
  for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx) {
    Workload &W = *allWorkloads()[WIdx];
    MovedOutcome SS = movedRun(WIdx, MajorGcKind::Semispace);
    MovedOutcome MC = movedRun(WIdx, MajorGcKind::MarkCompact);
    EXPECT_EQ(SS.Checksum, W.expected(McDiffScale)) << W.name();
    EXPECT_EQ(MC.Checksum, SS.Checksum) << W.name();
    ASSERT_GE(SS.NumMajorGC, 2u) << W.name();
    ASSERT_GE(MC.NumMajorGC, 2u) << W.name();
    EXPECT_LT(MC.MajorBytesMoved, SS.MajorBytesMoved)
        << W.name() << ": the compactor must move strictly fewer bytes";
    EXPECT_GT(MC.MajorBytesMoved, 0u)
        << W.name() << ": promotions during a major still count as moved";
  }
}

//===----------------------------------------------------------------------===//
// Differential: every workload computes the same checksum and derives the
// same site profile and pretenure set under both major-GC engines and every
// GcThreads setting (the gc_test.cpp barrier differential, rotated onto the
// MajorGc axis).
//===----------------------------------------------------------------------===//

namespace {

struct McRunOutcome {
  uint64_t Checksum = 0;
  uint64_t ProfiledAllocBytes = 0;
  uint64_t ProfiledCopiedBytes = 0;
  std::vector<std::pair<uint32_t, bool>> PretenureSet; // (site, no-scan)
};

McRunOutcome mcProfiledRun(size_t WIdx, MajorGcKind K, unsigned Threads) {
  Workload &W = *allWorkloads()[WIdx];
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = K;
  C.GcThreads = Threads;
  C.EnableProfiling = true;
  Mutator M(C);
  McRunOutcome R;
  R.Checksum = W.run(M, McDiffScale);
  const HeapProfiler *P = M.profiler();
  R.ProfiledAllocBytes = P->totalAllocBytes();
  R.ProfiledCopiedBytes = P->totalCopiedBytes();
  for (const PretenureDecision &D : P->derivePretenureSet())
    R.PretenureSet.emplace_back(D.SiteId, D.EliminateScan);
  return R;
}

const std::vector<McRunOutcome> &serialSemispaceBaseline() {
  static const std::vector<McRunOutcome> Baseline = [] {
    std::vector<McRunOutcome> Out;
    for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx)
      Out.push_back(mcProfiledRun(WIdx, MajorGcKind::Semispace, 1));
    return Out;
  }();
  return Baseline;
}

struct MajorDiffCase {
  MajorGcKind Major;
  unsigned Threads;
  const char *Name;
};

class MajorGcDifferential
    : public ::testing::TestWithParam<MajorDiffCase> {};

} // namespace

TEST_P(MajorGcDifferential, AllWorkloadsMatchSerialSemispaceMajor) {
  const MajorDiffCase &TC = GetParam();
  const std::vector<McRunOutcome> &Baseline = serialSemispaceBaseline();
  ASSERT_EQ(Baseline.size(), allWorkloads().size());
  for (size_t WIdx = 0; WIdx < allWorkloads().size(); ++WIdx) {
    Workload &W = *allWorkloads()[WIdx];
    ASSERT_EQ(Baseline[WIdx].Checksum, W.expected(McDiffScale))
        << W.name() << ": baseline run is itself wrong";
    McRunOutcome Got = mcProfiledRun(WIdx, TC.Major, TC.Threads);
    EXPECT_EQ(Got.Checksum, Baseline[WIdx].Checksum)
        << W.name() << " under " << TC.Name;
    EXPECT_EQ(Got.ProfiledAllocBytes, Baseline[WIdx].ProfiledAllocBytes)
        << W.name() << " under " << TC.Name;
    // Copied bytes are engine-dependent (the compactor's whole point is to
    // copy less), so unlike the barrier differential they are never compared
    // across the MajorGc axis — only the profile DERIVATIONS must agree.
    EXPECT_EQ(Got.PretenureSet, Baseline[WIdx].PretenureSet)
        << W.name() << " under " << TC.Name << ": pretenure set diverged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    MajorsByThreads, MajorGcDifferential,
    ::testing::Values(
        MajorDiffCase{MajorGcKind::Semispace, 2, "semispace_t2"},
        MajorDiffCase{MajorGcKind::Semispace, 8, "semispace_t8"},
        MajorDiffCase{MajorGcKind::MarkCompact, 1, "markcompact_t1"},
        MajorDiffCase{MajorGcKind::MarkCompact, 2, "markcompact_t2"},
        MajorDiffCase{MajorGcKind::MarkCompact, 8, "markcompact_t8"}),
    [](const ::testing::TestParamInfo<MajorDiffCase> &Info) {
      return std::string(Info.param.Name);
    });

//===----------------------------------------------------------------------===//
// Event-stream determinism: the deterministic GcEvent slice is bit-identical
// across GcThreads in mark-compact mode (observe_test.cpp's parallel
// determinism contract, extended to the new engine).
//===----------------------------------------------------------------------===//

namespace {

/// The deterministic event slice (mirrors observe_test.cpp's EventKey).
using McEventKey =
    std::tuple<uint64_t, int, int, uint64_t, uint64_t, uint64_t, uint64_t,
               uint64_t, uint64_t, uint64_t, uint64_t, bool>;

void mcChurn(Mutator &M) {
  Frame F(M, keyMc());
  uint64_t Rng = 0x9E3779B97F4A7C15ULL;
  auto Rand = [&] {
    Rng ^= Rng << 13, Rng ^= Rng >> 7, Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned I = 0; I < 5000; ++I) {
    unsigned R = 1 + Rand() % 2;
    F.set(R, consInt(M, siteMc(), static_cast<int64_t>(I), slot(F, R)));
    if (I % 97 == 0 && !F.get(1).isNull())
      M.writeField(F.get(1), 1, F.get(2), /*IsPointerField=*/true);
    if (I % 211 == 0)
      F.set(1 + Rand() % 2, Value::null());
    if (I % 509 == 0)
      M.collect(/*Major=*/false);
    if (I % 1777 == 0)
      M.collect(/*Major=*/true);
  }
  M.collect(/*Major=*/true);
}

std::vector<McEventKey> mcEventStream(unsigned Threads) {
  EventRecorder Rec;
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 16u << 20;
  Cfg.NurseryLimitBytes = 512u << 10;
  // Explicit collections only: resize targets far below live so pad-waste
  // differences across thread counts cannot shift the collection cadence.
  Cfg.TenuredTargetLiveness = 1e-6;
  Cfg.MajorGc = MajorGcKind::MarkCompact;
  Cfg.GcThreads = Threads;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);
  mcChurn(M);
  EXPECT_EQ(Rec.dropped(), 0u);
  std::vector<McEventKey> Keys;
  for (size_t I = 0; I < Rec.size(); ++I) {
    const GcEvent &E = Rec.event(I);
    Keys.emplace_back(E.Seq, static_cast<int>(E.Gen),
                      static_cast<int>(E.Trigger), E.BytesCopied,
                      E.ObjectsCopied, E.FramesAtGC, E.FramesScanned,
                      E.FramesReused, E.SsbEntriesProcessed, E.BytesPretenured,
                      E.CrossingMapUpdates, E.HybridSwitched);
  }
  return Keys;
}

} // namespace

TEST(MarkCompactTest, EventStreamDeterministicAcrossThreads) {
  std::vector<McEventKey> Serial = mcEventStream(1);
  ASSERT_GT(Serial.size(), 3u);
  EXPECT_EQ(mcEventStream(2), Serial);
  EXPECT_EQ(mcEventStream(8), Serial);
}

TEST(MarkCompactTest, MajorEventsCarryRegionCensus) {
  EventRecorder Rec;
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.Observer = &Rec;
  Mutator M(C);
  mcChurn(M);
  ASSERT_EQ(Rec.dropped(), 0u);
  uint64_t Majors = 0;
  for (size_t I = 0; I < Rec.size(); ++I) {
    const GcEvent &E = Rec.event(I);
    if (E.Gen != GcGeneration::Major)
      continue;
    ++Majors;
    EXPECT_GT(E.RegionsTotal, 0u) << "major event " << E.Seq;
    EXPECT_LE(E.RegionsDense + E.RegionsEvacuated, E.RegionsTotal)
        << "major event " << E.Seq;
    EXPECT_LE(E.BytesMoved, E.BytesCopied)
        << "moved bytes exceed marked-live in event " << E.Seq;
  }
  EXPECT_GT(Majors, 0u);
}

//===----------------------------------------------------------------------===//
// Torture: VerifyLevel 3 audits and injected worker faults. These also run
// in the NDEBUG resilience twin, proving the post-compact heap walks and the
// serial mark recovery survive assert-stripped builds.
//===----------------------------------------------------------------------===//

TEST(MarkCompactTortureTest, VerifyLevel3SurvivesChurn) {
  MutatorConfig C;
  C.BudgetBytes = 1u << 20;
  C.MajorGc = MajorGcKind::MarkCompact;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  C.VerifyLevel = 3; // Post-GC walks + poisoning with integrity checks.
  C.Name = "mc.verify3";
  Mutator M(C);
  mcChurn(M);
  std::string Err;
  EXPECT_TRUE(M.verifyHeap(Err)) << Err;
}

TEST(MarkCompactTortureTest, ParallelMarkRecoversFromWorkerFaults) {
  FaultInjector::global().reset();
  FaultInjector::global().arm(FaultPoint::WorkerThrow, 3,
                              FaultInjector::Forever);
  {
    MutatorConfig C;
    C.BudgetBytes = 1u << 20;
    C.MajorGc = MajorGcKind::MarkCompact;
    C.GcThreads = 4;
    C.VerifyLevel = 1;
    C.Name = "mc.workerthrow";
    Mutator M(C);
    Frame F(M, keyMc());
    for (int Round = 0; Round < 10; ++Round) {
      F.set(1, Value::null());
      for (int I = 0; I < 3000; ++I)
        F.set(1, consInt(M, siteMc(), I, slot(F, 1)));
      M.collect(Round % 2 == 0);
    }
    EXPECT_EQ(mllib::length(F.get(1)), 3000u);
    EXPECT_EQ(headInt(F.get(1)), 2999);
    // Faults fired during both evacuation (minors) and marking (majors);
    // every major that faulted must have recovered serially.
    const GcStats &S = M.gcStats();
    EXPECT_GT(S.MarkWorkerFaults + S.EvacWorkerFaults, 0u);
    EXPECT_EQ(S.MarkSerialRecoveries > 0, S.MarkWorkerFaults > 0);
    std::string Err;
    EXPECT_TRUE(M.verifyHeap(Err)) << Err;
  }
  FaultInjector::global().reset();
}
