//===- tests/multi_mutator_test.cpp - N mutators, one heap -----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-mutator runtime acceptance suite: K threads sharing one heap
/// must compute exactly the serial answers (checksums, allocation totals,
/// site profiles, derived pretenure sets), survive safepoint torture under
/// fault injection, and leave a heap the verifier certifies — TLAB pads
/// included. Test names matching *MultiMutator*/*Safepoint* are also run
/// under ThreadSanitizer in CI.
///
//===----------------------------------------------------------------------===//

#include "gc/HeapError.h"
#include "observe/GcObserver.h"
#include "observe/GcTelemetry.h"
#include "runtime/MutatorGroup.h"
#include "support/FaultInjector.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace tilgc;

namespace {

MutatorConfig groupConfig(const char *Name, CollectorKind Kind) {
  MutatorConfig C;
  C.Kind = Kind;
  C.Name = Name;
  C.BudgetBytes = 4u << 20; // Shared by every thread in the group.
  return C;
}

uint32_t mmKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "mm.test", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

/// Runs \p WorkloadName serially once and returns (checksum-ok, bytes,
/// objects) so the K-threaded runs can be compared against exact totals.
struct SerialBaseline {
  uint64_t Bytes;
  uint64_t Objects;
};

SerialBaseline serialBaseline(const char *WorkloadName,
                              const MutatorConfig &C, double Scale) {
  Mutator M(C);
  std::unique_ptr<Workload> W = makeWorkloadByName(WorkloadName);
  EXPECT_EQ(W->run(M, Scale), W->expected(Scale)) << WorkloadName;
  return SerialBaseline{M.gcStats().BytesAllocated,
                        M.gcStats().ObjectsAllocated};
}

/// K threads, each running a private instance of the workload: every
/// thread must get the serial checksum, and the merged group totals must
/// be exactly K times the serial totals.
void runDifferential(const char *WorkloadName, const MutatorConfig &C,
                     unsigned K, double Scale, const SerialBaseline &Serial) {
  std::unique_ptr<Workload> Ref = makeWorkloadByName(WorkloadName);
  ASSERT_NE(Ref, nullptr);
  uint64_t Want = Ref->expected(Scale);

  MutatorGroup G(C, K);
  std::vector<uint64_t> Sums(K, 0);
  G.run([&](Mutator &M, unsigned I) {
    std::unique_ptr<Workload> W = makeWorkloadByName(WorkloadName);
    Sums[I] = W->run(M, Scale);
  });
  for (unsigned I = 0; I < K; ++I)
    EXPECT_EQ(Sums[I], Want) << WorkloadName << " thread " << I << " of "
                             << K;
  EXPECT_EQ(G.gcStats().BytesAllocated, K * Serial.Bytes)
      << WorkloadName << " K=" << K;
  EXPECT_EQ(G.gcStats().ObjectsAllocated, K * Serial.Objects)
      << WorkloadName << " K=" << K;
  std::string Err;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Err)) << WorkloadName << ": " << Err;
}

} // namespace

//===----------------------------------------------------------------------===//
// Differential: all eleven workloads, K threads vs serial.
//===----------------------------------------------------------------------===//

TEST(MultiMutatorDifferential, GenerationalAllWorkloads) {
  const double Scale = 0.04;
  for (const auto &W : allWorkloads()) {
    MutatorConfig C = groupConfig("mm-diff-gen", CollectorKind::Generational);
    SerialBaseline S = serialBaseline(W->name(), C, Scale);
    for (unsigned K : {1u, 2u, 8u})
      runDifferential(W->name(), C, K, Scale, S);
  }
}

TEST(MultiMutatorDifferential, SemispaceAllWorkloads) {
  const double Scale = 0.04;
  for (const auto &W : allWorkloads()) {
    MutatorConfig C = groupConfig("mm-diff-semi", CollectorKind::Semispace);
    SerialBaseline S = serialBaseline(W->name(), C, Scale);
    runDifferential(W->name(), C, 2, Scale, S);
  }
}

TEST(MultiMutatorDifferential, BarrierAndMajorEngineMatrix) {
  const double Scale = 0.05;
  const char *Name = "Life";
  struct Cfg {
    GenerationalCollector::BarrierKind Barrier;
    GenerationalCollector::MajorGcKind Major;
  } Cfgs[] = {
      {GenerationalCollector::BarrierKind::SequentialStoreBuffer,
       GenerationalCollector::MajorGcKind::Semispace},
      {GenerationalCollector::BarrierKind::FilteredStoreBuffer,
       GenerationalCollector::MajorGcKind::Semispace},
      {GenerationalCollector::BarrierKind::CardMarking,
       GenerationalCollector::MajorGcKind::MarkCompact},
      {GenerationalCollector::BarrierKind::Hybrid,
       GenerationalCollector::MajorGcKind::MarkCompact},
  };
  for (const Cfg &K : Cfgs) {
    MutatorConfig C = groupConfig("mm-diff-matrix", CollectorKind::Generational);
    C.Barrier = K.Barrier;
    C.MajorGc = K.Major;
    C.NurseryLimitBytes = 128u << 10; // Constant collection pressure.
    C.VerifyLevel = 1;
    SerialBaseline S = serialBaseline(Name, C, Scale);
    runDifferential(Name, C, 4, Scale, S);
  }
}

//===----------------------------------------------------------------------===//
// Profiles and pretenure sets.
//===----------------------------------------------------------------------===//

TEST(MultiMutatorProfile, MergedProfileAndPretenureSetMatchSerial) {
  static const uint32_t LiveSite =
      AllocSiteRegistry::global().define("mm.prof.live");
  static const uint32_t DeadSite =
      AllocSiteRegistry::global().define("mm.prof.dead");
  const unsigned K = 4;
  const int LivePerThread = 16, DeadPerThread = 192;

  // Each thread retains LivePerThread records forever (cons list in slot
  // 1), churns DeadPerThread that die immediately, then collects — so
  // old% is 1.0 / ~0.0 per site regardless of thread interleaving.
  auto Body = [&](Mutator &M) {
    Frame F(M, mmKey());
    for (int I = 0; I < LivePerThread; ++I) {
      Value Cell = M.allocRecord(LiveSite, 2, 0b10);
      M.initField(Cell, 1, F.get(1));
      F.set(1, Cell);
      for (int J = 0; J < DeadPerThread / LivePerThread; ++J)
        F.set(2, M.allocRecord(DeadSite, 2, 0));
      F.set(2, Value::null());
    }
    M.collect(false);
  };

  MutatorConfig C = groupConfig("mm-profile", CollectorKind::Generational);
  C.EnableProfiling = true;

  Mutator Serial(C);
  for (unsigned R = 0; R < K; ++R)
    Body(Serial);

  MutatorGroup G(C, K);
  G.run([&](Mutator &M, unsigned) { Body(M); });

  HeapProfiler *GP = G.profiler();
  HeapProfiler *SP = Serial.profiler();
  ASSERT_NE(GP, nullptr);
  ASSERT_NE(SP, nullptr);

  // Allocation-side profile: exact equality per site.
  for (uint32_t Site : {LiveSite, DeadSite}) {
    EXPECT_EQ(GP->site(Site).AllocBytes, SP->site(Site).AllocBytes);
    EXPECT_EQ(GP->site(Site).AllocCount, SP->site(Site).AllocCount);
    EXPECT_EQ(GP->site(Site).AllocCount,
              uint64_t(K * (Site == LiveSite ? LivePerThread
                                             : DeadPerThread)));
  }
  EXPECT_EQ(GP->site(LiveSite).oldFraction(), 1.0);

  // Derived pretenure sets: identical site sets.
  auto SiteSet = [](const std::vector<PretenureDecision> &Ds) {
    std::set<uint32_t> S;
    for (const PretenureDecision &D : Ds)
      S.insert(D.SiteId);
    return S;
  };
  EXPECT_EQ(SiteSet(GP->derivePretenureSet(0.8, 8)),
            SiteSet(SP->derivePretenureSet(0.8, 8)));
  EXPECT_EQ(SiteSet(GP->derivePretenureSet(0.8, 8)).count(LiveSite), 1u);
}

//===----------------------------------------------------------------------===//
// TLAB machinery.
//===----------------------------------------------------------------------===//

TEST(MultiMutatorTlab, RefillsPadsAndExactTotals) {
  static const uint32_t Site = AllocSiteRegistry::global().define("mm.tlab");
  const unsigned K = 4;
  const int PerThread = 3000; // ~96 KB each: several TLAB refills + GCs.

  MutatorConfig C = groupConfig("mm-tlab", CollectorKind::Generational);
  C.NurseryLimitBytes = 96u << 10;
  C.VerifyLevel = 1; // Post-GC heap walks must step over TLAB pads.
  MutatorGroup G(C, K);
  G.run([&](Mutator &M, unsigned) {
    Frame F(M, mmKey());
    for (int I = 0; I < PerThread; ++I)
      F.set(1, M.allocRecord(Site, 2, 0));
  });

  const GcStats &S = G.gcStats();
  EXPECT_GT(S.TlabRefills, uint64_t(K)); // At least one refill per thread.
  EXPECT_GT(S.NumGC, 0u);
  EXPECT_GT(S.SafepointStops, 0u);
  EXPECT_EQ(S.SafepointStops, G.safepoint().stops());
  // Exact totals: every one of the K*PerThread records, nothing else from
  // this heap, and pads are accounted separately from object bytes.
  uint64_t ObjBytes = uint64_t(2 + HeaderWords) * sizeof(Word);
  EXPECT_EQ(S.ObjectsAllocated, uint64_t(K) * PerThread);
  EXPECT_EQ(S.BytesAllocated, uint64_t(K) * PerThread * ObjBytes);
  std::string Err;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Err)) << Err;
}

TEST(MultiMutatorTlab, SingleMutatorGroupKeepsSerialTotals) {
  // K=1 still runs the TLAB/safepoint machinery; totals must match a plain
  // serial mutator exactly.
  const double Scale = 0.08;
  MutatorConfig C = groupConfig("mm-k1", CollectorKind::Generational);
  SerialBaseline S = serialBaseline("Checksum", C, Scale);
  runDifferential("Checksum", C, 1, Scale, S);
}

//===----------------------------------------------------------------------===//
// Safepoint protocol.
//===----------------------------------------------------------------------===//

namespace {
struct ScopedFaults {
  ScopedFaults() { FaultInjector::global().reset(); }
  ~ScopedFaults() { FaultInjector::global().reset(); }
};
} // namespace

TEST(SafepointTorture, StallFaultStretchesRendezvousSafely) {
  ScopedFaults Guard;
  // Park attempts 10..510 sleep 1ms before parking: threads arrive at the
  // rendezvous maximally skewed while others block in allocation. Bounded
  // so the injected delay cannot exceed ~0.5s of the run.
  FaultInjector::global().arm(FaultPoint::SafepointStall, 10,
                              /*FireCount=*/500);
  const unsigned K = 4;
  const double Scale = 0.05;
  MutatorConfig C = groupConfig("safepoint-torture",
                                CollectorKind::Generational);
  C.NurseryLimitBytes = 64u << 10; // Frequent stops.
  C.VerifyLevel = 1;
  std::unique_ptr<Workload> Ref = makeWorkloadByName("Life");
  uint64_t Want = Ref->expected(Scale);

  MutatorGroup G(C, K);
  std::vector<uint64_t> Sums(K, 0);
  G.run([&](Mutator &M, unsigned I) {
    std::unique_ptr<Workload> W = makeWorkloadByName("Life");
    Sums[I] = W->run(M, Scale);
  });
  for (unsigned I = 0; I < K; ++I)
    EXPECT_EQ(Sums[I], Want) << "thread " << I;
  EXPECT_GT(G.safepoint().stops(), 0u);
  EXPECT_GE(FaultInjector::global().fired(FaultPoint::SafepointStall), 1u);
  std::string Err;
  EXPECT_TRUE(G.mutator(0).verifyHeap(Err)) << Err;
}

TEST(SafepointTelemetry, WaitPhaseHistogramAndStats) {
  struct Capture : GcObserver {
    std::vector<GcEvent> Events;
    void onGcEnd(const GcEvent &E) override { Events.push_back(E); }
  } Obs;

  const unsigned K = 2;
  MutatorConfig C = groupConfig("mm-telemetry", CollectorKind::Generational);
  C.NurseryLimitBytes = 64u << 10;
  C.Observer = &Obs;
  MutatorGroup G(C, K);
  G.run([&](Mutator &M, unsigned) {
    std::unique_ptr<Workload> W = makeWorkloadByName("Life");
    W->run(M, 0.05);
  });

  ASSERT_FALSE(Obs.Events.empty());
  bool SawWait = false, SawSpans = false;
  for (const GcEvent &E : Obs.Events) {
    uint64_t D = E.PhaseDurNs[static_cast<unsigned>(GcPhase::SafepointWait)];
    if (D > 0)
      SawWait = true;
    if (!E.MutatorSpans.empty()) {
      SawSpans = true;
      for (const GcWorkerSpan &Sp : E.MutatorSpans) {
        EXPECT_LT(Sp.Index, K);
        EXPECT_LE(Sp.BeginNs, Sp.EndNs);
      }
    }
    // The tested pause invariant must hold with the new phase: the event
    // window was extended back to the wait begin.
    EXPECT_LE(E.phaseTotalNs(), E.PauseNs);
  }
  EXPECT_TRUE(SawWait) << "no collection recorded a safepoint-wait phase";
  EXPECT_TRUE(SawSpans) << "no collection recorded mutator park spans";

  // Every stop recorded one rendezvous wait in the always-on histogram.
  const GcTelemetry &Tel = G.collector().telemetry();
  EXPECT_EQ(Tel.safepointHistogram().count(), G.safepoint().stops());
  EXPECT_EQ(G.gcStats().SafepointStops, G.safepoint().stops());
}

TEST(SafepointTelemetry, TraceExportCarriesMutatorTracks) {
  const char *Path = "mm_trace_test.json";
  {
    MutatorConfig C = groupConfig("mm-trace", CollectorKind::Generational);
    C.NurseryLimitBytes = 64u << 10;
    C.TraceOutPath = Path;
    MutatorGroup G(C, 2);
    G.run([&](Mutator &M, unsigned) {
      std::unique_ptr<Workload> W = makeWorkloadByName("Life");
      W->run(M, 0.05);
    });
  } // Group destruction writes the trace through the primary mutator.

  std::FILE *F = std::fopen(Path, "rb");
  ASSERT_NE(F, nullptr);
  std::string Json;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Json.append(Buf, N);
  std::fclose(F);
  std::remove(Path);

  EXPECT_NE(Json.find("safepoint park"), std::string::npos);
  EXPECT_NE(Json.find("\"mutator "), std::string::npos);
  EXPECT_NE(Json.find("safepoint-wait"), std::string::npos);
}
