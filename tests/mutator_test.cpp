//===- tests/mutator_test.cpp - Runtime + collector integration tests ------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <gtest/gtest.h>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t siteTest() {
  static const uint32_t S = AllocSiteRegistry::global().define("test.site");
  return S;
}

uint32_t keyTest() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "test.mutator",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

MutatorConfig smallConfig(CollectorKind Kind, bool Markers = false) {
  MutatorConfig C;
  C.Kind = Kind;
  C.BudgetBytes = 256u << 10; // Tiny: forces frequent collections.
  C.UseStackMarkers = Markers;
  return C;
}

/// Builds an int list 1..N and checks its contents after forcing GCs.
void buildAndCheckList(Mutator &M, int N) {
  Frame F(M, keyTest());
  for (int I = N; I >= 1; --I)
    F.set(1, consInt(M, siteTest(), I, slot(F, 1)));

  M.collect(/*Major=*/false);
  M.collect(/*Major=*/true);

  Value P = F.get(1);
  for (int I = 1; I <= N; ++I) {
    ASSERT_FALSE(P.isNull());
    EXPECT_EQ(headInt(P), I);
    P = tail(P);
  }
  EXPECT_TRUE(P.isNull());
}

} // namespace

TEST(MutatorTest, SemispacePreservesLists) {
  Mutator M(smallConfig(CollectorKind::Semispace));
  buildAndCheckList(M, 5000);
  EXPECT_GT(M.gcStats().NumGC, 0u);
}

TEST(MutatorTest, GenerationalPreservesLists) {
  Mutator M(smallConfig(CollectorKind::Generational));
  buildAndCheckList(M, 5000);
  EXPECT_GT(M.gcStats().NumGC, 0u);
}

TEST(MutatorTest, GenerationalWithMarkersPreservesLists) {
  Mutator M(smallConfig(CollectorKind::Generational, /*Markers=*/true));
  buildAndCheckList(M, 5000);
}

TEST(MutatorTest, SemispaceWithMarkersPreservesLists) {
  Mutator M(smallConfig(CollectorKind::Semispace, /*Markers=*/true));
  buildAndCheckList(M, 5000);
}

TEST(MutatorTest, SharedStructureIsPreservedNotDuplicated) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  // Two records sharing a tail: after GC they must still share.
  F.set(1, consInt(M, siteTest(), 7, slot(F, 3)));
  F.set(2, consPtr(M, siteTest(), slot(F, 1), slot(F, 3)));
  F.set(3, consPtr(M, siteTest(), slot(F, 1), slot(F, 3)));
  M.collect(true);
  EXPECT_EQ(head(F.get(2)).asPtr(), head(F.get(3)).asPtr())
      << "shared substructure must stay shared after copying";
  EXPECT_EQ(headInt(head(F.get(2))), 7);
}

TEST(MutatorTest, CyclicStructuresSurvive) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  Value A = M.allocRecord(siteTest(), 2, 0b11);
  F.set(1, A);
  Value B = M.allocRecord(siteTest(), 2, 0b11);
  F.set(2, B);
  M.writeField(F.get(1), 0, F.get(2), true);
  M.writeField(F.get(2), 0, F.get(1), true);
  M.collect(false);
  M.collect(true);
  // A -> B -> A.
  EXPECT_EQ(Mutator::getField(Mutator::getField(F.get(1), 0), 0).asPtr(),
            F.get(1).asPtr());
}

TEST(MutatorTest, WriteBarrierCatchesOldToYoungPointers) {
  MutatorConfig C = smallConfig(CollectorKind::Generational);
  Mutator M(C);
  Frame F(M, keyTest());
  // Make an old object.
  F.set(1, M.allocRecord(siteTest(), 2, 0b11));
  M.collect(false); // Promotes it.
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));
  // Young object, stored into the old one (barriered write).
  F.set(2, consInt(M, siteTest(), 99, slot(F, 3)));
  M.writeField(F.get(1), 0, F.get(2), true);
  F.set(2, Value::null()); // Heap reference only through the old object.
  M.collect(false);
  Value Young = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Young.isNull());
  EXPECT_EQ(headInt(Young), 99);
  EXPECT_TRUE(GC.inTenured(Young.asPtr())) << "survivor must be promoted";
}

TEST(MutatorTest, MissingBarrierWouldLoseData) {
  // Sanity-check the test above is meaningful: initField on an *old* object
  // is the unbarriered path, and the new-large-object/pretenured-region
  // scans do not cover ordinary tenured records, so this would be unsound —
  // which is exactly why Mutator documents initField as fresh-objects-only.
  // (No assertion here; this test documents the contract.)
  SUCCEED();
}

TEST(MutatorTest, LargeArraysGoToLOS) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  F.set(1, M.allocNonPtrArray(siteTest(), 4096)); // 32KB > threshold.
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  EXPECT_TRUE(GC.inLOS(F.get(1).asPtr()));
  Word *Payload = F.get(1).asPtr();
  M.collect(false);
  EXPECT_EQ(F.get(1).asPtr(), Payload) << "large objects never move";
  // Unreachable large objects are swept at major collections.
  F.set(1, Value::null());
  M.collect(true);
  EXPECT_EQ(GC.largeObjectSpace().objectCount(), 0u);
}

TEST(MutatorTest, LargePtrArrayKeepsYoungReferents) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  F.set(1, M.allocPtrArray(siteTest(), 1024)); // In the LOS.
  F.set(2, consInt(M, siteTest(), 5, slot(F, 3)));
  // Initializing store into a fresh large object: no barrier, covered by
  // the new-large-object scan.
  M.initField(F.get(1), 10, F.get(2));
  F.set(2, Value::null());
  M.collect(false);
  Value Kept = Mutator::getField(F.get(1), 10);
  ASSERT_FALSE(Kept.isNull());
  EXPECT_EQ(headInt(Kept), 5);
}

TEST(MutatorTest, RegistersAreRoots) {
  // A frame layout that declares r2 to hold a pointer.
  static const uint32_t KReg = TraceTableRegistry::global().define(
      FrameLayout("test.reg", {Trace::nonPointer()},
                  {RegAction{2, Trace::pointer()}}));
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  F.set(3, Value::null());
  Frame FR(M, KReg);
  M.setRegister(2, consInt(M, siteTest(), 123, slot(F, 3)));
  M.collect(false);
  M.collect(true);
  EXPECT_EQ(headInt(M.getRegister(2)), 123);
}

TEST(MutatorTest, ExceptionsUnwindToHandler) {
  Mutator M(smallConfig(CollectorKind::Generational, /*Markers=*/true));
  Frame F(M, keyTest());
  F.set(1, consInt(M, siteTest(), 1, slot(F, 2)));

  uint64_t H = M.pushHandler(F.base());
  bool Caught = false;
  try {
    // Deep recursion, then raise.
    struct Helper {
      static void deep(Mutator &M, int N, SlotRef Exn) {
        Frame G(M, keyTest());
        G.set(1, Exn.get());
        if (N <= 0) {
          if (!G.get(1).isNull()) // Always true; visible return path.
            M.raise(G.get(1));
          return;
        }
        deep(M, N - 1, slot(G, 1));
      }
    };
    Helper::deep(M, 200, slot(F, 1));
    FAIL() << "raise must not return";
  } catch (MLRaise &R) {
    ASSERT_EQ(R.HandlerId, H);
    Caught = true;
    F.set(2, R.Exn);
  }
  ASSERT_TRUE(Caught);
  EXPECT_EQ(M.stack().topFrameBase(), F.base())
      << "shadow stack must be unwound to the handler frame";
  EXPECT_EQ(headInt(F.get(2)), 1);
  EXPECT_EQ(M.raises(), 1u);
  // The heap still works after the unwind.
  buildAndCheckList(M, 1000);
}

TEST(MutatorTest, ExceptionsInterleavedWithCollections) {
  Mutator M(smallConfig(CollectorKind::Generational, /*Markers=*/true));
  Frame F(M, keyTest());

  struct Helper {
    static void deep(Mutator &M, int N, int RaiseAt) {
      Frame G(M, keyTest());
      // Allocate on the way down so collections interleave with depth.
      G.set(1, consInt(M, siteTest(), N, slot(G, 2)));
      if (N == RaiseAt)
        M.raise(G.get(1));
      if (N > 0)
        deep(M, N - 1, RaiseAt);
    }
  };

  for (int Round = 0; Round < 50; ++Round) {
    uint64_t H = M.pushHandler(F.base());
    try {
      Helper::deep(M, 300, Round * 3);
      M.popHandler(H);
    } catch (MLRaise &R) {
      ASSERT_EQ(R.HandlerId, H);
      F.set(1, R.Exn);
      EXPECT_EQ(headInt(F.get(1)), Round * 3);
    }
  }
  EXPECT_GT(M.gcStats().NumGC, 0u);
}

TEST(MutatorTest, PointerUpdatesAreCounted) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  F.set(1, M.allocRecord(siteTest(), 2, 0b11));
  for (int I = 0; I < 10; ++I)
    M.writeField(F.get(1), 0, Value::null(), true);
  M.writeField(F.get(1), 1, Value::null(), true);
  EXPECT_EQ(M.pointerUpdates(), 11u);
}

TEST(MutatorTest, StatsTrackAllocationSplit) {
  Mutator M(smallConfig(CollectorKind::Generational));
  Frame F(M, keyTest());
  F.set(1, M.allocRecord(siteTest(), 2, 0));
  F.set(2, M.allocNonPtrArray(siteTest(), 100));
  const GcStats &S = M.gcStats();
  EXPECT_EQ(S.ObjectsAllocated, 2u);
  EXPECT_EQ(S.RecordBytesAllocated, (2u + HeaderWords) * 8u);
  EXPECT_EQ(S.ArrayBytesAllocated, (100u + HeaderWords) * 8u);
  EXPECT_EQ(S.BytesAllocated,
            S.RecordBytesAllocated + S.ArrayBytesAllocated);
}

TEST(MutatorTest, DeepStacksWithMarkersAcrossManyCollections) {
  // The central §5 scenario: a deep stack that stays put while the top
  // churns; minor collections must reuse the deep prefix.
  Mutator M(smallConfig(CollectorKind::Generational, /*Markers=*/true));
  Frame F(M, keyTest());

  struct Helper {
    /// Builds a deep stack, then at the bottom loops allocating garbage to
    /// force many collections.
    static uint64_t deep(Mutator &M, int N) {
      Frame G(M, keyTest());
      G.set(1, consInt(M, siteTest(), N, slot(G, 2)));
      if (N > 0)
        return deep(M, N - 1) + static_cast<uint64_t>(headInt(G.get(1)));
      uint64_t Sum = 0;
      for (int I = 0; I < 20000; ++I) {
        G.set(3, consInt(M, siteTest(), I, slot(G, 4)));
        Sum += static_cast<uint64_t>(headInt(G.get(3)));
      }
      return Sum;
    }
  };

  uint64_t Got = Helper::deep(M, 500);
  uint64_t WantTop = 500ull * 501 / 2;
  uint64_t WantLoop = 19999ull * 20000 / 2;
  EXPECT_EQ(Got, WantTop + WantLoop);

  const GcStats &S = M.gcStats();
  EXPECT_GT(S.NumGC, 5u);
  EXPECT_GT(S.FramesReused, S.FramesScanned)
      << "with a stable deep stack, most frames must be reused";
}
