//===- tests/stack_test.cpp - Stack substrate unit tests -------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/ShadowStack.h"
#include "stack/StackMarkers.h"
#include "stack/StackScanner.h"
#include "stack/TraceTable.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace tilgc;

namespace {

/// Test frame layouts, registered once.
struct Keys {
  uint32_t Plain;      // 2 pointer slots + 1 non-pointer.
  uint32_t SavesR3;    // slot 1 saves register 3; defines r3 = pointer.
  uint32_t DefinesR3NonPtr; // defines r3 = non-pointer.
  uint32_t Poly;       // slot 1 = type desc (ptr), slot 2 = compute(slot 1).

  static const Keys &get() {
    static Keys K = [] {
      auto &Reg = TraceTableRegistry::global();
      Keys K;
      K.Plain = Reg.define(FrameLayout(
          "test.plain",
          {Trace::pointer(), Trace::pointer(), Trace::nonPointer()}));
      K.SavesR3 = Reg.define(FrameLayout(
          "test.savesR3", {Trace::calleeSave(3)},
          {RegAction{3, Trace::pointer()}}));
      K.DefinesR3NonPtr = Reg.define(FrameLayout(
          "test.definesR3NonPtr", {Trace::nonPointer()},
          {RegAction{3, Trace::nonPointer()}}));
      K.Poly = Reg.define(FrameLayout(
          "test.poly", {Trace::pointer(), Trace::computeFromSlot(1)}));
      return K;
    }();
    return K;
  }
};

bool containsSlot(const std::vector<Word *> &Roots, Word *Slot) {
  return std::find(Roots.begin(), Roots.end(), Slot) != Roots.end();
}

} // namespace

TEST(ShadowStackTest, PushPopAndSlots) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  size_t F1 = S.pushFrame(K.Plain, 4);
  EXPECT_EQ(S.frameCount(), 1u);
  EXPECT_EQ(S.keyOf(F1), K.Plain);
  S.slot(F1, 1) = 42;
  EXPECT_EQ(S.slot(F1, 1), 42u);
  EXPECT_EQ(S.slot(F1, 2), 0u) << "slots are zeroed on push";

  size_t F2 = S.pushFrame(K.Plain, 4);
  EXPECT_EQ(S.topFrameBase(), F2);
  S.popFrame(F2);
  EXPECT_EQ(S.topFrameBase(), F1);
  S.popFrame(F1);
  EXPECT_TRUE(S.empty());
}

TEST(ShadowStackTest, WaterMarkTracksMinimumFrames) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  size_t F1 = S.pushFrame(K.Plain, 4);
  size_t F2 = S.pushFrame(K.Plain, 4);
  S.resetWaterMark();
  EXPECT_EQ(S.minFramesSinceMark(), 2u);
  S.popFrame(F2);
  size_t F3 = S.pushFrame(K.Plain, 4);
  EXPECT_EQ(S.minFramesSinceMark(), 1u);
  S.popFrame(F3);
  S.popFrame(F1);
  EXPECT_EQ(S.minFramesSinceMark(), 0u);
}

TEST(ScannerTest, PointerSlotsBecomeRoots) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  RegisterFile Regs;
  alignas(8) Word FakeObj[4] = {header::make(ObjectKind::Record, 2, 0),
                                meta::make(1, 0), 0, 0};

  size_t F = S.pushFrame(K.Plain, 4);
  S.slot(F, 1) = reinterpret_cast<Word>(&FakeObj[2]);
  // Slot 2 stays null: null pointer slots are not reported.
  S.slot(F, 3) = 777; // Non-pointer slot: never a root.

  RootSet Roots;
  ScanStats Stats;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);
  EXPECT_EQ(Roots.FreshSlotRoots.size(), 1u);
  EXPECT_TRUE(containsSlot(Roots.FreshSlotRoots, S.slotAddress(F, 1)));
  EXPECT_TRUE(Roots.ReusedSlotRoots.empty());
  EXPECT_EQ(Stats.FramesScanned, 1u);
}

TEST(ScannerTest, CalleeSaveChainsThroughRegisterState) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  RegisterFile Regs;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};
  Word PtrBits = reinterpret_cast<Word>(&FakeObj[2]);

  // Bottom frame defines r3 as a pointer; the frame above saves r3 into a
  // slot; the top frame redefines r3 as a non-pointer.
  size_t FBottom = S.pushFrame(K.SavesR3, 2);
  S.slot(FBottom, 1) = 999; // r3 not a pointer below the bottom frame.
  size_t FMid = S.pushFrame(K.SavesR3, 2);
  S.slot(FMid, 1) = PtrBits; // Saved caller r3: IS a pointer here.
  size_t FTop = S.pushFrame(K.DefinesR3NonPtr, 2);
  S.slot(FTop, 1) = 123;
  Regs[3] = PtrBits; // Live register value...

  RootSet Roots;
  ScanStats Stats;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);

  // Bottom frame's callee-save slot: r3 state below it is non-pointer
  // (initial state), so NOT a root even though it holds a word.
  EXPECT_FALSE(containsSlot(Roots.FreshSlotRoots, S.slotAddress(FBottom, 1)));
  // Middle frame's slot saved r3 *after* the bottom frame defined it as a
  // pointer: IS a root.
  EXPECT_TRUE(containsSlot(Roots.FreshSlotRoots, S.slotAddress(FMid, 1)));
  // ...but the top frame redefined r3 as non-pointer, so the register file
  // itself contributes no root.
  EXPECT_TRUE(Roots.RegRoots.empty());
}

TEST(ScannerTest, TopFrameRegisterPointerIsARoot) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  RegisterFile Regs;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  size_t F = S.pushFrame(K.SavesR3, 2); // Defines r3 = pointer.
  (void)F;
  Regs[3] = reinterpret_cast<Word>(&FakeObj[2]);

  RootSet Roots;
  ScanStats Stats;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);
  ASSERT_EQ(Roots.RegRoots.size(), 1u);
  EXPECT_EQ(Roots.RegRoots[0], 3u);
}

TEST(ScannerTest, ComputeTraceConsultsTypeDescriptor) {
  const Keys &K = Keys::get();
  ShadowStack S(1024);
  RegisterFile Regs;
  // Type descriptors: one-field records; field 0 != 0 means "pointer".
  alignas(8) Word DescPtr[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(0, 0), 1};
  alignas(8) Word DescNonPtr[3] = {header::make(ObjectKind::Record, 1, 0),
                                   meta::make(0, 0), 0};
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  size_t F1 = S.pushFrame(K.Poly, 3);
  S.slot(F1, 1) = reinterpret_cast<Word>(&DescPtr[2]);
  S.slot(F1, 2) = reinterpret_cast<Word>(&FakeObj[2]);
  size_t F2 = S.pushFrame(K.Poly, 3);
  S.slot(F2, 1) = reinterpret_cast<Word>(&DescNonPtr[2]);
  S.slot(F2, 2) = 424242; // Untraced: descriptor says non-pointer.

  RootSet Roots;
  ScanStats Stats;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);
  EXPECT_TRUE(containsSlot(Roots.FreshSlotRoots, S.slotAddress(F1, 2)));
  EXPECT_FALSE(containsSlot(Roots.FreshSlotRoots, S.slotAddress(F2, 2)));
  EXPECT_EQ(Stats.ComputesResolved, 2u);
}

namespace {

/// Pushes \p N plain frames, each with a distinct non-null "pointer".
std::vector<size_t> pushPlainFrames(ShadowStack &S, unsigned N,
                                    Word *FakePayload) {
  const Keys &K = Keys::get();
  std::vector<size_t> Bases;
  for (unsigned I = 0; I < N; ++I) {
    size_t F = S.pushFrame(K.Plain, 4);
    S.slot(F, 1) = reinterpret_cast<Word>(FakePayload);
    Bases.push_back(F);
  }
  return Bases;
}

} // namespace

TEST(MarkerTest, SecondScanReusesUnchangedFrames) {
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(/*Period=*/10);
  ScanCache Cache;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  pushPlainFrames(S, 50, &FakeObj[2]);

  RootSet Roots;
  ScanStats S1;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S1);
  EXPECT_EQ(S1.FramesScanned, 50u);
  EXPECT_EQ(S1.FramesReused, 0u);
  EXPECT_EQ(S1.MarkersPlaced, 5u) << "every 10th frame marked";
  EXPECT_EQ(Roots.FreshSlotRoots.size(), 50u);

  // Nothing popped: the highest marker is at frame index 49 (base of the
  // 50th frame), so 49 frames are reusable.
  ScanStats S2;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S2);
  EXPECT_EQ(S2.FramesReused, 49u);
  EXPECT_EQ(S2.FramesScanned, 1u);
  EXPECT_EQ(Roots.ReusedSlotRoots.size(), 49u);
  EXPECT_EQ(Roots.FreshSlotRoots.size(), 1u);
}

TEST(MarkerTest, StubPopShrinksReuse) {
  const Keys &K = Keys::get();
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(10);
  ScanCache Cache;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  std::vector<size_t> Bases = pushPlainFrames(S, 50, &FakeObj[2]);
  RootSet Roots;
  ScanStats S1;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S1);

  // Pop down to 25 frames. Frames 29, 39, 49 carry markers (indices with
  // (i+1)%10==0); popping them goes through the stub.
  for (unsigned I = 50; I > 25; --I) {
    size_t Base = Bases[I - 1];
    if (S.keyOf(Base) == StubKey) {
      uint32_t Orig = Markers.onStubPop(Base);
      EXPECT_EQ(Orig, K.Plain);
      S.setKey(Base, Orig);
    }
    S.popFrame(Base);
  }
  // Regrow to 40 frames.
  pushPlainFrames(S, 15, &FakeObj[2]);

  ScanStats S2;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S2);
  // Highest intact marker is at frame index 19 (base Bases[19]); frames
  // 0..18 are reusable, 19..39 rescanned.
  EXPECT_EQ(S2.FramesReused, 19u);
  EXPECT_EQ(S2.FramesScanned, 21u);
  EXPECT_EQ(Roots.ReusedSlotRoots.size() + Roots.FreshSlotRoots.size(), 40u);
}

TEST(MarkerTest, ExceptionUnwindUpdatesWatermark) {
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(/*Period=*/3); // Markers at frame indices 2, 5, 8...
  ScanCache Cache;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  std::vector<size_t> Bases = pushPlainFrames(S, 50, &FakeObj[2]);
  RootSet Roots;
  ScanStats S1;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S1);

  // An exception jumps from the top straight to frame index 5: the
  // intervening markers never see their stubs run; onUnwind retires them
  // and records the watermark M.
  Markers.onUnwind(Bases[5]);
  S.unwindTo(Bases[5], 4);

  ScanStats S2;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S2);
  // min(M, intact markers) = base of frame 5: frames 0..4 reusable, the
  // handler frame itself is rescanned.
  EXPECT_EQ(S2.FramesReused, 5u);
  EXPECT_EQ(S2.FramesScanned, 1u);
}

TEST(MarkerTest, NoIntactMarkerMeansNoReuse) {
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(/*Period=*/10); // Only markers at indices 9, 19...
  ScanCache Cache;
  alignas(8) Word FakeObj[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(1, 0), 0};

  std::vector<size_t> Bases = pushPlainFrames(S, 12, &FakeObj[2]);
  RootSet Roots;
  ScanStats S1;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S1);

  // Raise past the only marker (index 9) down to frame 3. With no intact
  // marker left, nothing can vouch for frames below M — pops there would
  // be invisible — so the boundary must collapse to zero.
  Markers.onUnwind(Bases[3]);
  S.unwindTo(Bases[3], 4);

  ScanStats S2;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S2);
  EXPECT_EQ(S2.FramesReused, 0u);
  EXPECT_EQ(S2.FramesScanned, 4u);
}

TEST(MarkerTest, ReuseBoundaryIsSoundAfterMixedPopsAndPushes) {
  const Keys &K = Keys::get();
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(5);
  ScanCache Cache;
  alignas(8) Word ObjA[3] = {header::make(ObjectKind::Record, 1, 0),
                             meta::make(1, 0), 0};
  alignas(8) Word ObjB[3] = {header::make(ObjectKind::Record, 1, 0),
                             meta::make(2, 0), 0};

  std::vector<size_t> Bases = pushPlainFrames(S, 20, &ObjA[2]);
  RootSet Roots;
  ScanStats S1;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S1);

  // Pop three frames (through the marker at index 19) and re-push frames
  // that point at ObjB instead.
  for (unsigned I = 20; I > 17; --I) {
    size_t Base = Bases[I - 1];
    if (S.keyOf(Base) == StubKey)
      S.setKey(Base, Markers.onStubPop(Base));
    S.popFrame(Base);
  }
  pushPlainFrames(S, 3, &ObjB[2]);

  ScanStats S2;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, S2);

  // Every root that the scan reports must reflect the *current* stack: the
  // three new frames' roots must point at ObjB.
  unsigned BCount = 0;
  auto CountB = [&](const std::vector<Word *> &List) {
    for (Word *Slot : List)
      if (*Slot == reinterpret_cast<Word>(&ObjB[2]))
        ++BCount;
  };
  CountB(Roots.FreshSlotRoots);
  CountB(Roots.ReusedSlotRoots);
  EXPECT_EQ(BCount, 3u);
  EXPECT_EQ(Roots.FreshSlotRoots.size() + Roots.ReusedSlotRoots.size(), 20u);
  (void)K;
}
