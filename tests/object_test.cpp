//===- tests/object_test.cpp - Object model unit tests ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "object/Object.h"

#include <gtest/gtest.h>

#include <vector>

using namespace tilgc;

TEST(ValueTest, IntRoundTrip) {
  EXPECT_EQ(Value::fromInt(0).asInt(), 0);
  EXPECT_EQ(Value::fromInt(-1).asInt(), -1);
  EXPECT_EQ(Value::fromInt(123456789).asInt(), 123456789);
  EXPECT_EQ(Value::fromInt(INT64_MIN).asInt(), INT64_MIN);
}

TEST(ValueTest, DoubleRoundTrip) {
  EXPECT_DOUBLE_EQ(Value::fromDouble(0.0).asDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::fromDouble(-3.25).asDouble(), -3.25);
  EXPECT_DOUBLE_EQ(Value::fromDouble(1e300).asDouble(), 1e300);
}

TEST(ValueTest, PointerRoundTripAndNull) {
  Word Storage[4] = {};
  Value P = Value::fromPtr(&Storage[2]);
  EXPECT_EQ(P.asPtr(), &Storage[2]);
  EXPECT_FALSE(P.isNull());
  EXPECT_TRUE(Value::null().isNull());
}

TEST(HeaderTest, DescriptorRoundTrip) {
  Word D = header::make(ObjectKind::Record, 3, 0b101);
  EXPECT_FALSE(header::isForwarded(D));
  EXPECT_EQ(header::kind(D), ObjectKind::Record);
  EXPECT_EQ(header::length(D), 3u);
  EXPECT_EQ(header::ptrMask(D), 0b101u);

  Word A = header::make(ObjectKind::NonPtrArray, 1u << 20);
  EXPECT_EQ(header::kind(A), ObjectKind::NonPtrArray);
  EXPECT_EQ(header::length(A), 1u << 20);
  EXPECT_EQ(header::ptrMask(A), 0u);
}

TEST(HeaderTest, ForwardingRoundTrip) {
  alignas(8) Word Target[4] = {};
  Word F = header::makeForward(&Target[2]);
  EXPECT_TRUE(header::isForwarded(F));
  EXPECT_EQ(header::forwardTarget(F), &Target[2]);
}

TEST(HeaderTest, SizesAccountForHeader) {
  Word D = header::make(ObjectKind::PtrArray, 5);
  EXPECT_EQ(objectTotalWords(D), 5u + HeaderWords);
  EXPECT_EQ(objectPayloadBytes(D), 40u);
  EXPECT_EQ(objectTotalBytes(D), (5u + HeaderWords) * 8u);
}

TEST(MetaTest, SiteBirthAgeRoundTrip) {
  Word M = meta::make(0xDEADBEEF, 12345);
  EXPECT_EQ(meta::site(M), 0xDEADBEEFu);
  EXPECT_EQ(meta::birthKB(M), 12345u);
  EXPECT_EQ(meta::age(M), 0u);

  Word M1 = meta::withBumpedAge(M);
  EXPECT_EQ(meta::age(M1), 1u);
  EXPECT_EQ(meta::site(M1), 0xDEADBEEFu);
  EXPECT_EQ(meta::birthKB(M1), 12345u);

  // Age saturates.
  Word MSat = M;
  for (int I = 0; I < 10; ++I)
    MSat = meta::withBumpedAge(MSat);
  EXPECT_EQ(meta::age(MSat), meta::MaxAge);
}

namespace {

std::vector<unsigned> pointerFieldIndices(Word *Payload) {
  std::vector<unsigned> Indices;
  forEachPointerField(Payload, [&](Word *Field) {
    Indices.push_back(static_cast<unsigned>(Field - Payload));
  });
  return Indices;
}

} // namespace

TEST(TraceFieldsTest, RecordUsesMask) {
  alignas(8) Word Obj[2 + 4];
  Obj[0] = header::make(ObjectKind::Record, 4, 0b1010);
  Obj[1] = meta::make(1, 0);
  EXPECT_EQ(pointerFieldIndices(Obj + 2), (std::vector<unsigned>{1, 3}));
}

TEST(TraceFieldsTest, PtrArrayVisitsEverything) {
  alignas(8) Word Obj[2 + 3];
  Obj[0] = header::make(ObjectKind::PtrArray, 3);
  Obj[1] = meta::make(1, 0);
  EXPECT_EQ(pointerFieldIndices(Obj + 2), (std::vector<unsigned>{0, 1, 2}));
}

TEST(TraceFieldsTest, NonPtrArrayVisitsNothing) {
  alignas(8) Word Obj[2 + 3];
  Obj[0] = header::make(ObjectKind::NonPtrArray, 3);
  Obj[1] = meta::make(1, 0);
  EXPECT_TRUE(pointerFieldIndices(Obj + 2).empty());
}
