//===- tests/workload_test.cpp - Benchmark correctness under all configs ---===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every benchmark must compute the same (validated) answer under every
/// collector configuration — a collector bug shows up as a wrong checksum.
/// Parameterized over (workload × collector config) at a reduced scale.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <string>

using namespace tilgc;

namespace {

struct ConfigCase {
  const char *Name;
  MutatorConfig Config;
};

std::vector<ConfigCase> testConfigs() {
  std::vector<ConfigCase> Cases;
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Semispace;
    C.BudgetBytes = 1u << 20;
    Cases.push_back({"semispace", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Semispace;
    C.BudgetBytes = 1u << 20;
    C.UseStackMarkers = true;
    Cases.push_back({"semispace_markers", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    Cases.push_back({"generational", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    C.UseStackMarkers = true;
    C.VerifyReuseInvariant = true;
    Cases.push_back({"generational_markers", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    C.UseStackMarkers = true;
    C.MarkerPeriod = 3;
    C.VerifyReuseInvariant = true;
    Cases.push_back({"generational_markers_period3", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    C.PromoteAgeThreshold = 3;
    C.VerifyHeapAfterGC = true;
    Cases.push_back({"generational_aged", C});
  }
  {
    // Regression config for the promotion-created old->young edges bug:
    // tiny budget + aged tenuring + heap verification after every GC.
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 200u << 10;
    C.PromoteAgeThreshold = 2;
    C.VerifyHeapAfterGC = true;
    Cases.push_back({"generational_aged_tiny_verified", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    Cases.push_back({"generational_cards", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 1u << 20;
    C.EnableProfiling = true;
    C.VerifyHeapAfterGC = true;
    Cases.push_back({"generational_profiled", C});
  }
  {
    MutatorConfig C;
    C.Kind = CollectorKind::Generational;
    C.BudgetBytes = 16u << 20; // Roomy: few collections.
    Cases.push_back({"generational_roomy", C});
  }
  return Cases;
}

struct CaseId {
  size_t WorkloadIdx;
  size_t ConfigIdx;
};

class WorkloadCorrectness
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

} // namespace

TEST_P(WorkloadCorrectness, ChecksumMatchesReference) {
  size_t WIdx = std::get<0>(GetParam());
  size_t CIdx = std::get<1>(GetParam());
  const auto &Workloads = allWorkloads();
  if (WIdx >= Workloads.size())
    GTEST_SKIP() << "workload index beyond registry";
  auto Configs = testConfigs();
  Workload &W = *Workloads[WIdx];
  const ConfigCase &CC = Configs[CIdx];

  const double Scale = 0.12; // Keep the full matrix fast.
  Mutator M(CC.Config);
  uint64_t Got = W.run(M, Scale);
  uint64_t Want = W.expected(Scale);
  EXPECT_EQ(Got, Want) << W.name() << " under " << CC.Name;
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, WorkloadCorrectness,
    ::testing::Combine(::testing::Range<size_t>(0, 11),
                       ::testing::Range<size_t>(0, 10)),
    [](const ::testing::TestParamInfo<std::tuple<size_t, size_t>> &Info) {
      size_t WIdx = std::get<0>(Info.param);
      size_t CIdx = std::get<1>(Info.param);
      const auto &Workloads = allWorkloads();
      std::string Name = WIdx < Workloads.size()
                             ? Workloads[WIdx]->name()
                             : "pending" + std::to_string(WIdx);
      // gtest parameter names must be ASCII alphanumeric ('Gröbner'!).
      std::string Clean;
      for (char C : Name)
        if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
            (C >= '0' && C <= '9'))
          Clean += C;
      return Clean + "_" + testConfigs()[CIdx].Name;
    });
