//===- tests/observe_test.cpp - Telemetry-plane tests ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The telemetry plane's invariants, bottom up:
///
///  * Timer misuse is tolerated-and-counted in every build mode (this file
///    is also compiled into the NDEBUG twin binary): nested starts keep the
///    outer region, unmatched stops are no-ops, seconds() reads live.
///  * PauseHistogram bucket math, percentile estimates and merging.
///  * StoreBuffer's shrink policy bounds retention after an SSB flood.
///  * Per-collection GcEvents: phase times fit inside the pause, histogram
///    counts sum to NumGC, triggers classify correctly, and the
///    deterministic event fields are identical across GcThreads — the
///    telemetry twin of the parallel-evacuator determinism suite.
///  * The chrome://tracing exporter emits valid JSON with per-worker
///    tracks, and the recorder's ring stays bounded.
///
//===----------------------------------------------------------------------===//

#include "observe/EventRecorder.h"
#include "observe/GcTelemetry.h"
#include "observe/PauseHistogram.h"
#include "observe/TraceExporter.h"

#include "heap/StoreBuffer.h"
#include "runtime/Mutator.h"
#include "support/FaultInjector.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

using namespace tilgc;

namespace {

//===----------------------------------------------------------------------===//
// Timer misuse discipline (support/Timer.h).
//===----------------------------------------------------------------------===//

void spinFor(double Seconds) {
  Timer T;
  T.start();
  while (T.seconds() < Seconds) {
  }
}

TEST(TimerMisuse, NestedStartPreservesOuterRegion) {
  Timer T;
  T.start();
  spinFor(2e-4);
  T.start(); // Misuse: must NOT restart the region.
  EXPECT_EQ(T.misuses(), 1u);
  EXPECT_EQ(T.depth(), 2u);
  T.stop(); // Inner stop: unwinds the nest, accumulates nothing yet.
  EXPECT_TRUE(T.isRunning());
  T.stop();
  EXPECT_FALSE(T.isRunning());
  // The accumulated region spans the outer start, so it contains the spin.
  EXPECT_GE(T.seconds(), 2e-4);
  EXPECT_EQ(T.misuses(), 1u);
}

TEST(TimerMisuse, StopAtZeroIsCountedNoOp) {
  Timer T;
  T.stop();
  T.stop();
  EXPECT_EQ(T.misuses(), 2u);
  EXPECT_EQ(T.seconds(), 0.0);
  EXPECT_FALSE(T.isRunning());
  // The timer still works normally afterwards.
  T.start();
  T.stop();
  EXPECT_EQ(T.misuses(), 2u);
}

TEST(TimerMisuse, SecondsReadsLiveWhileRunning) {
  Timer T;
  T.start();
  spinFor(2e-4);
  double Mid = T.seconds(); // Old behavior returned a stale 0 here.
  EXPECT_GE(Mid, 2e-4);
  T.stop();
  EXPECT_GE(T.seconds(), Mid);
}

TEST(TimerMisuse, ResetWhileRunningCountedAndRestarts) {
  Timer T;
  T.start();
  spinFor(2e-4);
  T.reset();
  EXPECT_EQ(T.misuses(), 1u);
  EXPECT_TRUE(T.isRunning()); // Depth preserved; region restarted at now.
  T.stop();
  EXPECT_LT(T.seconds(), 2e-4);
}

//===----------------------------------------------------------------------===//
// PauseHistogram.
//===----------------------------------------------------------------------===//

TEST(PauseHistogramTest, BucketEdges) {
  EXPECT_EQ(PauseHistogram::bucketFor(0), 0u);
  EXPECT_EQ(PauseHistogram::bucketFor(1), 1u);
  EXPECT_EQ(PauseHistogram::bucketFor(2), 1u);
  EXPECT_EQ(PauseHistogram::bucketFor(3), 1u);
  EXPECT_EQ(PauseHistogram::bucketFor(4), 2u);
  EXPECT_EQ(PauseHistogram::bucketFor(1023), 9u);
  EXPECT_EQ(PauseHistogram::bucketFor(1024), 10u);
  EXPECT_EQ(PauseHistogram::bucketFor(~0ull), 63u);
  // Every value maps to a bucket whose inclusive upper edge contains it.
  for (uint64_t V : {0ull, 1ull, 7ull, 4096ull, 123456789ull, ~0ull})
    EXPECT_GE(PauseHistogram::upperEdgeNs(PauseHistogram::bucketFor(V)), V);
}

TEST(PauseHistogramTest, PercentilesAndExtremes) {
  PauseHistogram H;
  EXPECT_EQ(H.p99Ns(), 0u);
  // 99 fast pauses and one slow outlier.
  for (int I = 0; I < 99; ++I)
    H.record(1000);
  H.record(1u << 20);
  EXPECT_EQ(H.count(), 100u);
  EXPECT_EQ(H.minNs(), 1000u);
  EXPECT_EQ(H.maxNs(), 1u << 20);
  // p50 lands in the 1000ns bucket: the estimate is its upper edge, which
  // is within the bucket's 2x resolution of the true value.
  EXPECT_GE(H.p50Ns(), 1000u);
  EXPECT_LT(H.p50Ns(), 2048u);
  // p99 is the 99th sample (still fast); p100 via percentileNs hits max.
  EXPECT_LT(H.p99Ns(), 2048u);
  EXPECT_EQ(H.percentileNs(1.0), 1u << 20);
  EXPECT_EQ(H.meanNs(), (99u * 1000u + (1u << 20)) / 100u);
}

TEST(PauseHistogramTest, MergeCombinesCountsAndExtremes) {
  PauseHistogram A, B;
  A.record(100);
  A.record(200);
  B.record(50);
  B.record(1u << 30);
  A.merge(B);
  EXPECT_EQ(A.count(), 4u);
  EXPECT_EQ(A.minNs(), 50u);
  EXPECT_EQ(A.maxNs(), 1u << 30);
  EXPECT_EQ(A.sumNs(), 100u + 200u + 50u + (1u << 30));
}

TEST(PauseHistogramTest, RankEdgesReportExactExtremes) {
  // Regression: percentileNs used to widen the rank-1 and rank-Count
  // samples to their bucket's inclusive upper edge, so p50 of {512, 2048}
  // came back 1023 and p100 came back 4095 — a bench comparing "p99 <=
  // budget" would then fail on runs that were actually inside budget.
  PauseHistogram H;
  H.record(512);
  H.record(2048);
  EXPECT_EQ(H.count(), 2u);
  EXPECT_EQ(H.p50Ns(), 512u);                // rank 1 == tracked min, exact
  EXPECT_EQ(H.p99Ns(), 2048u);               // rank Count == tracked max
  EXPECT_EQ(H.percentileNs(1.0), 2048u);
  // The common bench shape — one major ran — must report the sample
  // itself at every quantile, not its bucket edge.
  PauseHistogram One;
  One.record(777777);
  EXPECT_EQ(One.p50Ns(), 777777u);
  EXPECT_EQ(One.p90Ns(), 777777u);
  EXPECT_EQ(One.p99Ns(), 777777u);
  // Interior ranks still estimate via bucket edges (2x resolution).
  PauseHistogram M;
  for (int I = 0; I < 10; ++I)
    M.record(1000);
  M.record(5000);
  M.record(900000);
  EXPECT_GE(M.p50Ns(), 1000u);
  EXPECT_LT(M.p50Ns(), 2048u);
  EXPECT_EQ(M.percentileNs(1.0), 900000u);
}

//===----------------------------------------------------------------------===//
// StoreBuffer shrink policy.
//===----------------------------------------------------------------------===//

TEST(StoreBufferShrink, RetentionDecaysAfterFlood) {
  StoreBuffer SSB;
  Word Dummy = 0;
  // A Peg-style flood pins a large backing capacity...
  for (int I = 0; I < 200000; ++I)
    SSB.record(&Dummy);
  SSB.clear();
  size_t FloodCap = SSB.capacityEntries();
  ASSERT_GE(FloodCap, 200000u);

  // ...then quiet epochs (a handful of entries per collection). After
  // ShrinkAfterClears consecutive low-fill clears, one halving step.
  for (unsigned C = 0; C < StoreBuffer::ShrinkAfterClears; ++C) {
    EXPECT_EQ(SSB.capacityEntries(), FloodCap) << "shrank too early";
    for (int I = 0; I < 8; ++I)
      SSB.record(&Dummy);
    SSB.clear();
  }
  EXPECT_EQ(SSB.shrinks(), 1u);
  EXPECT_LE(SSB.capacityEntries(), FloodCap / 2 + 1);

  // Kept-quiet buffers decay geometrically to the floor and stop there.
  for (int Round = 0; Round < 200; ++Round)
    SSB.clear();
  EXPECT_GE(SSB.capacityEntries(), StoreBuffer::ShrinkFloorEntries / 2);
  EXPECT_LE(SSB.capacityEntries(), StoreBuffer::ShrinkFloorEntries * 2);
  uint64_t Shrinks = SSB.shrinks();
  for (int Round = 0; Round < 50; ++Round)
    SSB.clear();
  EXPECT_EQ(SSB.shrinks(), Shrinks) << "shrank below the floor";

  // One refill resets the streak: no shrink on the next few clears.
  for (int I = 0; I < 300000; ++I)
    SSB.record(&Dummy);
  SSB.clear();
  size_t Cap = SSB.capacityEntries();
  SSB.clear();
  EXPECT_EQ(SSB.capacityEntries(), Cap);
}

TEST(StoreBufferShrink, HighFillNeverShrinks) {
  StoreBuffer SSB;
  Word Dummy = 0;
  for (int I = 0; I < 100000; ++I)
    SSB.record(&Dummy);
  SSB.clear();
  size_t Cap = SSB.capacityEntries();
  // Refilling to >= 25% every epoch keeps the capacity pinned.
  for (int Round = 0; Round < 64; ++Round) {
    for (size_t I = 0; I < Cap / 2; ++I)
      SSB.record(&Dummy);
    SSB.clear();
  }
  EXPECT_EQ(SSB.capacityEntries(), Cap);
  EXPECT_EQ(SSB.shrinks(), 0u);
}

TEST(StoreBufferShrink, DisableShrinkLatchesOffDecay) {
  // Regression: after the hybrid barrier switches to card marking the SSB
  // is drained once per minor and then sits near-empty forever, which the
  // decay policy read as "quiet epochs" — it kept halving a buffer that
  // the next flood-shaped phase would have to regrow while switched. The
  // switch now latches shrinking off; quiet clears must not decay it.
  StoreBuffer SSB;
  Word Dummy = 0;
  for (int I = 0; I < 200000; ++I)
    SSB.record(&Dummy);
  SSB.clear();
  size_t FloodCap = SSB.capacityEntries();
  SSB.disableShrink();
  for (unsigned C = 0; C < StoreBuffer::ShrinkAfterClears * 4; ++C) {
    for (int I = 0; I < 4; ++I)
      SSB.record(&Dummy);
    SSB.clear();
  }
  EXPECT_EQ(SSB.shrinks(), 0u) << "latched-off buffer still decayed";
  EXPECT_EQ(SSB.capacityEntries(), FloodCap);
}

//===----------------------------------------------------------------------===//
// GcTelemetry unit behavior.
//===----------------------------------------------------------------------===//

TEST(GcTelemetryUnit, DisarmedCollectionsStillFeedHistograms) {
  GcTelemetry Tel;
  EXPECT_FALSE(Tel.armed());
  Tel.beginCollection(GcGeneration::Minor, GcTrigger::Explicit, 1);
  EXPECT_EQ(Tel.currentEvent(), nullptr); // Event plane is off.
  Tel.endCollection();
  EXPECT_EQ(Tel.histogram(GcGeneration::Minor).count(), 1u);
  EXPECT_EQ(Tel.histogram(GcGeneration::Major).count(), 0u);
}

TEST(GcTelemetryUnit, ArmedEventCarriesPhasesWithinPause) {
  GcTelemetry Tel;
  EventRecorder Rec;
  Tel.addObserver(&Rec);
  ASSERT_TRUE(Tel.armed());

  Tel.beginCollection(GcGeneration::Major, GcTrigger::SpaceFull, 7);
  ASSERT_NE(Tel.currentEvent(), nullptr);
  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::StackScan);
    spinFor(1e-4);
  }
  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
    spinFor(1e-4);
  }
  // Re-entering a phase accumulates rather than overwrites.
  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
    spinFor(1e-4);
  }
  Tel.endCollection();

  ASSERT_EQ(Rec.size(), 1u);
  const GcEvent &E = Rec.event(0);
  EXPECT_EQ(E.Seq, 7u);
  EXPECT_EQ(E.Gen, GcGeneration::Major);
  EXPECT_EQ(E.Trigger, GcTrigger::SpaceFull);
  EXPECT_GT(E.PauseNs, 0u);
  EXPECT_GT(E.PhaseDurNs[unsigned(GcPhase::StackScan)], 0u);
  EXPECT_GT(E.PhaseDurNs[unsigned(GcPhase::Copy)],
            E.PhaseDurNs[unsigned(GcPhase::StackScan)]);
  EXPECT_LE(E.phaseTotalNs(), E.PauseNs);
  // Phase scopes outside a collection are no-ops, not corruption.
  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Resize);
  }
  EXPECT_EQ(Rec.size(), 1u);
}

TEST(EventRecorderTest, RingIsBoundedOldestFirst) {
  EventRecorder Rec(4);
  GcTelemetry Tel;
  Tel.addObserver(&Rec);
  for (uint64_t S = 1; S <= 6; ++S) {
    Tel.beginCollection(GcGeneration::Minor, GcTrigger::Explicit, S);
    Tel.endCollection();
  }
  EXPECT_EQ(Rec.size(), 4u);
  EXPECT_EQ(Rec.dropped(), 2u);
  for (size_t I = 0; I < 4; ++I)
    EXPECT_EQ(Rec.event(I).Seq, 3 + I) << "ring order broken at " << I;
}

//===----------------------------------------------------------------------===//
// Collector-level invariants through the Mutator facade.
//===----------------------------------------------------------------------===//

uint32_t obsSite(unsigned I) {
  static const uint32_t Base = [] {
    uint32_t First = AllocSiteRegistry::global().define("obs.site0");
    for (int K = 1; K < 4; ++K)
      AllocSiteRegistry::global().define("obs.site" + std::to_string(K));
    return First;
  }();
  return Base + (I % 4);
}

uint32_t obsRootsKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "obs.roots", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                    Trace::pointer()}));
  return K;
}

/// Deterministic churn: linked lists across four roots, barriered
/// back-edges, periodic explicit minor/major collections.
void churn(Mutator &M, unsigned Iters = 5000) {
  Frame F(M, obsRootsKey());
  uint64_t Rng = 0x9E3779B97F4A7C15ULL;
  auto Rand = [&] {
    Rng ^= Rng << 13, Rng ^= Rng >> 7, Rng ^= Rng << 17;
    return Rng;
  };
  for (unsigned I = 0; I < Iters; ++I) {
    unsigned R = 1 + Rand() % 4;
    Value Cell = M.allocRecord(obsSite(I), 3, 0b110);
    M.initField(Cell, 0, Value::fromInt(static_cast<int64_t>(I)));
    M.initField(Cell, 1, F.get(R));
    M.initField(Cell, 2, F.get(1 + Rand() % 4));
    F.set(R, Cell);
    if (I % 97 == 0) {
      Value Old = F.get(1 + R % 4);
      if (!Old.isNull())
        M.writeField(Old, 2, F.get(R), /*IsPointerField=*/true);
    }
    if (I % 211 == 0)
      F.set(1 + Rand() % 4, Value::null());
    if (I % 509 == 0)
      M.collect(/*Major=*/false);
    if (I % 1777 == 0)
      M.collect(/*Major=*/true);
  }
  M.collect(/*Major=*/true);
}

/// Explicit-collections-only config (see parallel_evacuator_test.cpp: pad
/// waste must not shift the collection cadence across thread counts).
MutatorConfig explicitOnlyConfig(CollectorKind Kind, unsigned Threads) {
  MutatorConfig Cfg;
  Cfg.Kind = Kind;
  Cfg.BudgetBytes = 16u << 20;
  Cfg.NurseryLimitBytes = 512u << 10;
  Cfg.SemispaceTargetLiveness = 1e-6;
  Cfg.TenuredTargetLiveness = 1e-6;
  Cfg.GcThreads = Threads;
  return Cfg;
}

TEST(ObserveInvariants, HistogramCountsSumToNumGC) {
  for (CollectorKind Kind :
       {CollectorKind::Generational, CollectorKind::Semispace}) {
    MutatorConfig Cfg;
    Cfg.Kind = Kind;
    Cfg.BudgetBytes = 4u << 20;
    Mutator M(Cfg);
    churn(M);
    const GcStats &S = M.gcStats();
    ASSERT_GT(S.NumGC, 0u);
    const GcTelemetry &Tel = M.telemetry();
    EXPECT_EQ(Tel.histogram(GcGeneration::Minor).count() +
                  Tel.histogram(GcGeneration::Major).count(),
              S.NumGC);
    EXPECT_EQ(Tel.histogram(GcGeneration::Major).count(), S.NumMajorGC);
    // The collectors drive the split timers correctly: no misuse, ever.
    EXPECT_EQ(S.timerMisuses(), 0u);
    // Stack scan and copy happen inside the GC window.
    EXPECT_GE(S.gcSeconds() + 1e-3, S.stackSeconds() + S.copySeconds());
  }
}

TEST(ObserveInvariants, EventStreamCompleteAndPhasesFit) {
  EventRecorder Rec;
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 4u << 20;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);
  churn(M);
  const GcStats &S = M.gcStats();
  ASSERT_EQ(Rec.size() + Rec.dropped(), S.NumGC)
      << "every collection must emit exactly one event";
  uint64_t PrevSeq = 0;
  uint64_t Majors = 0;
  for (size_t I = 0; I < Rec.size(); ++I) {
    const GcEvent &E = Rec.event(I);
    EXPECT_GT(E.Seq, PrevSeq) << "events out of order";
    PrevSeq = E.Seq;
    EXPECT_GT(E.EndNs, E.BeginNs);
    EXPECT_LE(E.phaseTotalNs(), E.PauseNs)
        << "phase times exceed the pause in event " << E.Seq;
    // Every collection scans the stack and stamps the depth.
    EXPECT_GT(E.PhaseDurNs[unsigned(GcPhase::StackScan)], 0u);
    EXPECT_GT(E.FramesAtGC, 0u);
    EXPECT_EQ(E.FramesScanned + E.FramesReused, E.FramesAtGC);
    Majors += E.Gen == GcGeneration::Major;
  }
  EXPECT_EQ(Majors, S.NumMajorGC);
}

TEST(ObserveInvariants, TriggersClassifyAllocationVsExplicit) {
  // Semispace under allocation pressure: SpaceFull triggers, then one
  // explicit full collection at the end.
  EventRecorder Rec;
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Semispace;
  Cfg.BudgetBytes = 256u << 10;
  Cfg.Observer = &Rec;
  {
    Mutator M(Cfg);
    Frame F(M, obsRootsKey());
    for (unsigned I = 0; I < 20000; ++I)
      F.set(1, M.allocRecord(obsSite(I), 3, 0b110));
    M.collect(/*Major=*/true);
  }
  ASSERT_GE(Rec.size(), 2u);
  bool SawSpaceFull = false;
  for (size_t I = 0; I + 1 < Rec.size(); ++I) {
    EXPECT_EQ(Rec.event(I).Trigger, GcTrigger::SpaceFull);
    SawSpaceFull = true;
  }
  EXPECT_TRUE(SawSpaceFull);
  EXPECT_EQ(Rec.event(Rec.size() - 1).Trigger, GcTrigger::Explicit);

  // Generational under the same pressure: nursery-full minors.
  EventRecorder GenRec;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 4u << 20;
  Cfg.Observer = &GenRec;
  {
    Mutator M(Cfg);
    Frame F(M, obsRootsKey());
    for (unsigned I = 0; I < 40000; ++I)
      F.set(1, M.allocRecord(obsSite(I), 3, 0b110));
  }
  ASSERT_GE(GenRec.size(), 1u);
  bool SawNurseryFull = false;
  for (size_t I = 0; I < GenRec.size(); ++I)
    SawNurseryFull |= GenRec.event(I).Trigger == GcTrigger::NurseryFull;
  EXPECT_TRUE(SawNurseryFull);
}

TEST(ObserveInvariants, LosPressureMajorsKeepFrameAveragesPinned) {
  // Large-object churn forces LOS-pressure majors — a collection path that
  // historically could skew avgFramesAtGC when the denominator was NumGC
  // instead of the number of stack samples actually taken.
  EventRecorder Rec;
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 2u << 20;
  Cfg.LargeObjectThresholdBytes = 4096;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);
  {
    Frame F(M, obsRootsKey());
    for (unsigned I = 0; I < 600; ++I)
      F.set(1, M.allocNonPtrArray(obsSite(I), 2048)); // 16KB -> LOS.
  }
  const GcStats &S = M.gcStats();
  ASSERT_GT(S.NumMajorGC, 0u);
  bool SawLosPressure = false;
  for (size_t I = 0; I < Rec.size(); ++I)
    SawLosPressure |=
        Rec.event(I).Trigger == GcTrigger::LargeObjectPressure;
  EXPECT_TRUE(SawLosPressure) << "workload failed to trigger LOS majors";
  // Numerator and denominator come from the same sampling sites.
  EXPECT_EQ(S.FramesAtGCSamples, S.NumGC);
  ASSERT_GT(S.FramesAtGCSamples, 0u);
  EXPECT_DOUBLE_EQ(S.avgFramesAtGC(),
                   static_cast<double>(S.FramesAtGCSum) /
                       static_cast<double>(S.FramesAtGCSamples));
  EXPECT_GT(S.avgFramesAtGC(), 0.0);
  EXPECT_LE(S.avgNewFramesAtGC(), S.avgFramesAtGC());
}

TEST(ObserveAudits, PretenureFlipsCarryEvidence) {
  EventRecorder Rec;
  std::vector<PretenureDecision> Decisions;
  PretenureDecision D{obsSite(0), /*EliminateScan=*/false};
  D.OldFraction = 0.93;
  D.OldCutoff = 0.8;
  D.AllocBytes = 123456;
  D.AllocCount = 789;
  D.SurvivedFirstCount = 700;
  Decisions.push_back(D);

  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.Pretenure = Decisions;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);

  ASSERT_EQ(Rec.audits().size(), 1u)
      << "construction-time flips must reach observers registered via "
         "MutatorConfig";
  const PretenureAudit &A = Rec.audits()[0];
  EXPECT_EQ(A.SiteId, obsSite(0));
  EXPECT_TRUE(A.Pretenured);
  EXPECT_FALSE(A.EliminateScan);
  EXPECT_DOUBLE_EQ(A.OldFraction, 0.93);
  EXPECT_DOUBLE_EQ(A.Threshold, 0.8);
  EXPECT_EQ(A.AllocBytes, 123456u);
  EXPECT_EQ(A.AllocCount, 789u);
  EXPECT_EQ(A.SurvivedFirstGC, 700u);

  // And the per-collection pretenured-bytes delta shows up in events.
  {
    Frame F(M, obsRootsKey());
    for (unsigned I = 0; I < 64; ++I)
      F.set(1, M.allocRecord(obsSite(0), 3, 0b110));
    M.collect(/*Major=*/false);
  }
  ASSERT_GE(Rec.size(), 1u);
  EXPECT_GT(Rec.event(Rec.size() - 1).BytesPretenured, 0u);
}

//===----------------------------------------------------------------------===//
// Event-stream determinism across GcThreads (TSan job runs *Parallel*).
//===----------------------------------------------------------------------===//

/// The deterministic slice of an event (GcEvent's field-by-field contract;
/// timing, worker spans, BytesPromoted — which includes parallel block
/// padding — and DirtyCards/CardsScanned — whose card population depends on
/// object placement — are excluded).
using EventKey = std::tuple<uint64_t, int, int, uint64_t, uint64_t, uint64_t,
                            uint64_t, uint64_t, uint64_t, uint64_t, uint64_t,
                            bool>;

std::vector<EventKey>
eventStream(CollectorKind Kind, unsigned Threads,
            GenerationalCollector::BarrierKind Barrier =
                GenerationalCollector::BarrierKind::SequentialStoreBuffer) {
  EventRecorder Rec;
  MutatorConfig Cfg = explicitOnlyConfig(Kind, Threads);
  Cfg.Barrier = Barrier;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);
  churn(M);
  EXPECT_EQ(Rec.dropped(), 0u);
  std::vector<EventKey> Keys;
  for (size_t I = 0; I < Rec.size(); ++I) {
    const GcEvent &E = Rec.event(I);
    Keys.emplace_back(E.Seq, int(E.Gen), int(E.Trigger), E.BytesCopied,
                      E.ObjectsCopied, E.FramesAtGC, E.FramesScanned,
                      E.FramesReused, E.SsbEntriesProcessed,
                      E.BytesPretenured, E.CrossingMapUpdates,
                      E.HybridSwitched);
  }
  return Keys;
}

class ObserveParallelDeterminism : public ::testing::TestWithParam<unsigned> {
};

TEST_P(ObserveParallelDeterminism, GenerationalEventStreamMatchesSerial) {
  static const std::vector<EventKey> Serial =
      eventStream(CollectorKind::Generational, 1);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(eventStream(CollectorKind::Generational, GetParam()), Serial);
}

TEST_P(ObserveParallelDeterminism, SemispaceEventStreamMatchesSerial) {
  static const std::vector<EventKey> Serial =
      eventStream(CollectorKind::Semispace, 1);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(eventStream(CollectorKind::Semispace, GetParam()), Serial);
}

TEST_P(ObserveParallelDeterminism, CardMarkingEventStreamMatchesSerial) {
  // CrossingMapUpdates (promoted-object recordings) and the card-mode
  // SsbEntriesProcessed (LOS side-buffer only) must be thread-invariant.
  static const std::vector<EventKey> Serial = eventStream(
      CollectorKind::Generational, 1,
      GenerationalCollector::BarrierKind::CardMarking);
  ASSERT_FALSE(Serial.empty());
  EXPECT_EQ(eventStream(CollectorKind::Generational, GetParam(),
                        GenerationalCollector::BarrierKind::CardMarking),
            Serial);
}

INSTANTIATE_TEST_SUITE_P(Threads, ObserveParallelDeterminism,
                         ::testing::Values(1u, 2u, 8u));

TEST(ObserveCardFields, SerialRerunsReproduceCardCounters) {
  // DirtyCards/CardsScanned are engine-dependent across thread counts but
  // must still be reproducible run-to-run on the same engine.
  auto CardCounters = [](unsigned Threads) {
    EventRecorder Rec;
    MutatorConfig Cfg =
        explicitOnlyConfig(CollectorKind::Generational, Threads);
    Cfg.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    Cfg.Observer = &Rec;
    Mutator M(Cfg);
    churn(M);
    std::vector<std::pair<uint64_t, uint64_t>> Out;
    for (size_t I = 0; I < Rec.size(); ++I)
      Out.emplace_back(Rec.event(I).DirtyCards, Rec.event(I).CardsScanned);
    return Out;
  };
  auto A = CardCounters(1);
  ASSERT_FALSE(A.empty());
  bool SawDirty = false;
  for (const auto &P : A)
    SawDirty |= P.first > 0;
  EXPECT_TRUE(SawDirty) << "churn's barriered stores never dirtied a card";
  EXPECT_EQ(CardCounters(1), A);
}

TEST(ObserveHybrid, SwitchLatchAppearsOnExactlyOneEvent) {
  EventRecorder Rec;
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 1u << 20;
  Cfg.Barrier = GenerationalCollector::BarrierKind::Hybrid;
  Cfg.Observer = &Rec;
  Mutator M(Cfg);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  {
    Frame F(M, obsRootsKey());
    F.set(1, M.allocPtrArray(obsSite(0), 256));
    M.collect(/*Major=*/false); // Tenure the flood target.
    ASSERT_FALSE(GC.hybridInCardMode());
    for (uint64_t I = 0; I <= GC.hybridFloodThreshold(); ++I)
      M.writeField(F.get(1), 9, Value::null(), /*IsPointerField=*/true);
    ASSERT_TRUE(GC.hybridInCardMode());
    M.collect(/*Major=*/false); // First post-switch event.
    M.collect(/*Major=*/false); // Latch must not stick to later events.
  }
  unsigned Switched = 0;
  for (size_t I = 0; I < Rec.size(); ++I)
    Switched += Rec.event(I).HybridSwitched;
  EXPECT_EQ(Switched, 1u);
  // The switch event is the first collection after the flood, and it scans
  // the replayed dirty cards.
  const GcEvent *SwitchEv = nullptr;
  for (size_t I = 0; I < Rec.size(); ++I)
    if (Rec.event(I).HybridSwitched)
      SwitchEv = &Rec.event(I);
  ASSERT_NE(SwitchEv, nullptr);
  EXPECT_GT(SwitchEv->DirtyCards, 0u);
  EXPECT_GT(SwitchEv->CardsScanned, 0u);
  EXPECT_EQ(M.gcStats().HybridSwitches, 1u);
}

//===----------------------------------------------------------------------===//
// Trace export.
//===----------------------------------------------------------------------===//

/// Minimal recursive-descent JSON validator — enough to prove the exporter
/// emits well-formed JSON without a library dependency (CI additionally
/// round-trips a trace file through python3 -m json.tool).
class JsonChecker {
public:
  explicit JsonChecker(const std::string &S) : S(S) {}
  bool valid() {
    skipWs();
    return value() && (skipWs(), Pos == S.size());
  }

private:
  bool value() {
    if (Pos >= S.size())
      return false;
    switch (S[Pos]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }
  bool object() {
    ++Pos; // '{'
    skipWs();
    if (peek() == '}')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (peek() != ':')
        return false;
      ++Pos;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}')
        return ++Pos, true;
      return false;
    }
  }
  bool array() {
    ++Pos; // '['
    skipWs();
    if (peek() == ']')
      return ++Pos, true;
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']')
        return ++Pos, true;
      return false;
    }
  }
  bool string() {
    if (peek() != '"')
      return false;
    ++Pos;
    while (Pos < S.size() && S[Pos] != '"') {
      if (S[Pos] == '\\') {
        ++Pos;
        if (Pos >= S.size())
          return false;
      }
      ++Pos;
    }
    if (Pos >= S.size())
      return false;
    ++Pos;
    return true;
  }
  bool number() {
    size_t Start = Pos;
    if (peek() == '-')
      ++Pos;
    while (Pos < S.size() && (std::isdigit(static_cast<unsigned char>(S[Pos])) ||
                              S[Pos] == '.' || S[Pos] == 'e' ||
                              S[Pos] == 'E' || S[Pos] == '+' || S[Pos] == '-'))
      ++Pos;
    return Pos > Start;
  }
  bool literal(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(Pos, N, L) != 0)
      return false;
    Pos += N;
    return true;
  }
  char peek() const { return Pos < S.size() ? S[Pos] : '\0'; }
  void skipWs() {
    while (Pos < S.size() &&
           (S[Pos] == ' ' || S[Pos] == '\n' || S[Pos] == '\t' ||
            S[Pos] == '\r'))
      ++Pos;
  }

  const std::string &S;
  size_t Pos = 0;
};

TEST(TraceExport, RendersValidJsonWithWorkerTracks) {
  EventRecorder Rec;
  MutatorConfig Cfg = explicitOnlyConfig(CollectorKind::Generational, 4);
  Cfg.Observer = &Rec;
  {
    Mutator M(Cfg);
    churn(M);
  }
  ASSERT_GT(Rec.size(), 0u);
  std::string Json = TraceExporter::render(Rec);
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json.substr(0, 400);
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("minor gc #"), std::string::npos);
  EXPECT_NE(Json.find("major gc #"), std::string::npos);
  EXPECT_NE(Json.find("stack-scan"), std::string::npos);
  // GcThreads = 4 with an armed plane: per-worker tracks present.
  EXPECT_NE(Json.find("evac worker 0"), std::string::npos);
  EXPECT_NE(Json.find("evac worker 3"), std::string::npos);
}

TEST(TraceExport, MutatorWritesTraceFileAtDestruction) {
  std::string Path = ::testing::TempDir() + "tilgc_trace_test.json";
  std::remove(Path.c_str());
  {
    MutatorConfig Cfg;
    Cfg.Kind = CollectorKind::Generational;
    Cfg.BudgetBytes = 4u << 20;
    Cfg.TraceOutPath = Path;
    Mutator M(Cfg);
    ASSERT_NE(M.traceRecorder(), nullptr);
    churn(M, 2000);
  }
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr) << "trace file not written: " << Path;
  std::string Contents;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Contents.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  ASSERT_FALSE(Contents.empty());
  JsonChecker Checker(Contents);
  EXPECT_TRUE(Checker.valid());
  EXPECT_NE(Contents.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, CardConfigEmitsCardScanPhaseAndCounters) {
  EventRecorder Rec;
  MutatorConfig Cfg = explicitOnlyConfig(CollectorKind::Generational, 1);
  Cfg.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  Cfg.Observer = &Rec;
  {
    Mutator M(Cfg);
    churn(M, 2000);
  }
  std::string Json = TraceExporter::render(Rec);
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json.substr(0, 400);
  EXPECT_NE(Json.find("card-scan"), std::string::npos)
      << "card-mode minors must stamp the card-scan phase";
  EXPECT_NE(Json.find("\"dirty_cards\""), std::string::npos);
  EXPECT_NE(Json.find("\"cards_scanned\""), std::string::npos);
  EXPECT_NE(Json.find("\"crossing_map_updates\""), std::string::npos);
  EXPECT_NE(Json.find("\"hybrid_switched\""), std::string::npos);
}

TEST(TraceExport, SupervisionPinsFailoverBitAndWatchdogInstants) {
  FaultInjector::global().reset();
  EventRecorder Rec;
  MutatorConfig Cfg = explicitOnlyConfig(CollectorKind::Generational, 2);
  Cfg.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  Cfg.GcDeadlineMicros = 2000;
  Cfg.WatchdogEscalation = WatchdogPolicy::Report;
  Cfg.Observer = &Rec;
  {
    Mutator M(Cfg);
    churn(M, 2000);
    // Retain enough live data that the majors below have parallel mark
    // work (a near-empty heap marks serially and WorkerStall never fires).
    Frame F(M, obsRootsKey());
    F.set(1, Value::null());
    for (int I = 0; I < 2000; ++I) {
      Value Cell = M.allocRecord(obsSite(static_cast<unsigned>(I)), 3, 0b110);
      M.initField(Cell, 0, Value::fromInt(I));
      M.initField(Cell, 1, F.get(1));
      F.set(1, Cell);
    }
    // One injected mark abort: that major (and only it) pins the
    // deterministic EngineFailover bit.
    FaultInjector::global().arm(FaultPoint::MarkPlanThrow, 1,
                                /*FireCount=*/1);
    M.collect(/*Major=*/true);
    // One stalled major: 20ms worker stalls past the 2ms deadline produce
    // a watchdog-bark instant; Report leaves the collection alone.
    FaultInjector::global().arm(FaultPoint::WorkerStall, 1, /*FireCount=*/2);
    M.collect(/*Major=*/true);
    FaultInjector::global().reset();
    EXPECT_EQ(M.gcStats().MajorEngineFailovers, 1u);
  }
  unsigned FailoverEvents = 0;
  for (size_t I = 0; I < Rec.size(); ++I)
    FailoverEvents += Rec.event(I).EngineFailover;
  EXPECT_EQ(FailoverEvents, 1u);
  EXPECT_FALSE(Rec.barks().empty());

  std::string Json = TraceExporter::render(Rec);
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json.substr(0, 400);
  EXPECT_NE(Json.find("\"engine_failover\":true"), std::string::npos)
      << "the failed-over major must export the failover bit";
  EXPECT_NE(Json.find("\"engine_failover\":false"), std::string::npos);
  EXPECT_NE(Json.find("watchdog bark"), std::string::npos)
      << "an expired deadline must export an instant event";
  EXPECT_NE(Json.find("\"kind\":\"gc-cycle\""), std::string::npos);
  EXPECT_NE(Json.find("\"deadline_us\":2000"), std::string::npos);
}

TEST(TraceExport, EscapesBarkDetailAndNamesProcess) {
  // Regression: the exporter spliced WatchdogBark::Detail — multi-line
  // free-form text with embedded quotes from the heap-state dump — into
  // the JSON verbatim, so any bark with a quote or control character
  // produced a file chrome://tracing refused to load. It also dropped the
  // session name, leaving every trace labeled as an anonymous process.
  EventRecorder Rec;
  WatchdogBark B;
  B.What = WatchdogBark::Kind::GcCycle;
  B.Seq = 7;
  B.DeadlineMicros = 1000;
  B.ElapsedMicros = 2500;
  B.WhenNs = 42;
  B.Detail = "heap \"state\":\n\ttenured=3\\4 used\x01";
  Rec.onWatchdogBark(B);

  std::string Json = TraceExporter::render(Rec, "bench \"run\" #1");
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid()) << Json.substr(0, 400);
  // Quotes, backslashes and C0 controls arrive escaped, never raw.
  EXPECT_NE(Json.find("heap \\\"state\\\":"), std::string::npos);
  EXPECT_NE(Json.find("\\n\\ttenured=3\\\\4"), std::string::npos);
  EXPECT_NE(Json.find("\\u0001"), std::string::npos);
  EXPECT_EQ(Json.find('\x01'), std::string::npos)
      << "raw control byte leaked into the trace";
  // The session name labels the process track, escaped like any string.
  EXPECT_NE(Json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(Json.find("bench \\\"run\\\" #1"), std::string::npos);
}

TEST(TraceExport, SerialTraceHasNoWorkerTracks) {
  EventRecorder Rec;
  MutatorConfig Cfg = explicitOnlyConfig(CollectorKind::Generational, 1);
  Cfg.Observer = &Rec;
  {
    Mutator M(Cfg);
    churn(M, 2000);
  }
  std::string Json = TraceExporter::render(Rec);
  JsonChecker Checker(Json);
  EXPECT_TRUE(Checker.valid());
  EXPECT_EQ(Json.find("evac worker"), std::string::npos);
}

} // namespace
