//===- tests/scan_plan_test.cpp - Compiled scan-plan tests -----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-scan-plan differential suite:
///
///  * unit tests of ScanPlan::compile (bitmask bits, side lists, register
///    transition masks, the duplicate-definition interpreter fallback);
///  * raw-scanner differentials: identical stacks scanned interpretively and
///    through compiled plans must yield the same root set, register roots
///    and semantic counters, with and without stack markers;
///  * whole-workload differentials: every Table 1 benchmark, compiled vs
///    interpretive, must produce the same checksum, collection cadence,
///    copy totals, scan counters and per-site profile (and therefore the
///    same derived pretenure set);
///  * thread-count differentials: a controlled deep-stack workload must
///    produce the same canonical heap hash and totals across GcThreads
///    {1, 2, 8} x {compiled, interpretive};
///  * the checked TraceTableRegistry lookup (aborts on bad keys in every
///    build mode) and container capacity reuse.
///
//===----------------------------------------------------------------------===//

#include "stack/ScanPlan.h"

#include "heap/StoreBuffer.h"
#include "profile/AllocSite.h"
#include "runtime/Mutator.h"
#include "stack/StackScanner.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <unordered_map>
#include <vector>

using namespace tilgc;

namespace {

//===----------------------------------------------------------------------===//
// Plan compilation.
//===----------------------------------------------------------------------===//

/// Test layouts, registered once.
struct Keys {
  uint32_t Mixed; ///< 20 ptr + 20 nonptr + 2 callee-save + 2 compute.
  uint32_t Wide;  ///< 70 pointer slots: bitmask spans two words.
  uint32_t Dup;   ///< Defines r5 twice: forces the interpreter fallback.
  uint32_t Defs;  ///< Unique defs: r1 = ptr, r2 = nonptr, r3 = compute.

  static const Keys &get() {
    static Keys K = [] {
      auto &Reg = TraceTableRegistry::global();
      Keys K;

      // Slots 1..20 pointer, 21..40 non-pointer, 41 saves r6, 42 saves r7,
      // 43 = compute(slot 1), 44 = compute(slot 2).
      std::vector<Trace> Mixed;
      for (int I = 0; I < 20; ++I)
        Mixed.push_back(Trace::pointer());
      for (int I = 0; I < 20; ++I)
        Mixed.push_back(Trace::nonPointer());
      Mixed.push_back(Trace::calleeSave(6));
      Mixed.push_back(Trace::calleeSave(7));
      Mixed.push_back(Trace::computeFromSlot(1));
      Mixed.push_back(Trace::computeFromSlot(2));
      K.Mixed = Reg.define(FrameLayout("plan.mixed", Mixed,
                                       {RegAction{6, Trace::pointer()},
                                        RegAction{7, Trace::pointer()}}));

      K.Wide = Reg.define(
          FrameLayout("plan.wide", std::vector<Trace>(70, Trace::pointer())));

      K.Dup = Reg.define(FrameLayout("plan.dup", {Trace::pointer()},
                                     {RegAction{5, Trace::pointer()},
                                      RegAction{5, Trace::nonPointer()}}));

      K.Defs = Reg.define(FrameLayout("plan.defs",
                                      {Trace::pointer(), Trace::nonPointer()},
                                      {RegAction{1, Trace::pointer()},
                                       RegAction{2, Trace::nonPointer()},
                                       RegAction{3, Trace::computeFromReg(4)}}));
      return K;
    }();
    return K;
  }
};

TEST(ScanPlanTest, PointerBitmaskMatchesLayout) {
  const Keys &K = Keys::get();
  ScanPlan P =
      ScanPlan::compile(TraceTableRegistry::global().lookup(K.Mixed));
  ASSERT_EQ(P.NumSlots, 45u);
  ASSERT_EQ(P.PtrWords.size(), 1u);
  // Bit 0 (the key slot) must never be set; slots 1..20 are pointers.
  uint64_t Want = 0;
  for (uint32_t S = 1; S <= 20; ++S)
    Want |= uint64_t{1} << S;
  EXPECT_EQ(P.PtrWords[0], Want);

  ASSERT_EQ(P.CalleeSaves.size(), 2u);
  EXPECT_EQ(P.CalleeSaves[0].Slot, 41u);
  EXPECT_EQ(P.CalleeSaves[0].Reg, 6u);
  EXPECT_EQ(P.CalleeSaves[1].Slot, 42u);
  EXPECT_EQ(P.CalleeSaves[1].Reg, 7u);
  ASSERT_EQ(P.Computes.size(), 2u);
  EXPECT_EQ(P.Computes[0].Slot, 43u);
  EXPECT_EQ(P.Computes[1].Slot, 44u);

  EXPECT_FALSE(P.RegDefsNeedInterp);
  EXPECT_EQ(P.RegSetMask, (1u << 6) | (1u << 7));
  EXPECT_EQ(P.RegClearMask, 0u);
  EXPECT_TRUE(P.ComputeRegDefs.empty());
}

TEST(ScanPlanTest, WideFrameSpansTwoWords) {
  const Keys &K = Keys::get();
  ScanPlan P = ScanPlan::compile(TraceTableRegistry::global().lookup(K.Wide));
  ASSERT_EQ(P.NumSlots, 71u);
  ASSERT_EQ(P.PtrWords.size(), 2u);
  EXPECT_EQ(P.PtrWords[0], ~uint64_t{1}) << "slots 1..63 set, key bit clear";
  uint64_t Want = 0;
  for (uint32_t S = 64; S <= 70; ++S)
    Want |= uint64_t{1} << (S - 64);
  EXPECT_EQ(P.PtrWords[1], Want);
}

TEST(ScanPlanTest, RegisterTransitionMasks) {
  const Keys &K = Keys::get();
  ScanPlan P = ScanPlan::compile(TraceTableRegistry::global().lookup(K.Defs));
  EXPECT_FALSE(P.RegDefsNeedInterp);
  EXPECT_EQ(P.RegSetMask, 1u << 1);
  EXPECT_EQ(P.RegClearMask, 1u << 2);
  ASSERT_EQ(P.ComputeRegDefs.size(), 1u);
  EXPECT_EQ(P.ComputeRegDefs[0].Reg, 3u);
}

TEST(ScanPlanTest, DuplicateRegDefFallsBackToInterpreter) {
  const Keys &K = Keys::get();
  const FrameLayout &L = TraceTableRegistry::global().lookup(K.Dup);
  ScanPlan P = ScanPlan::compile(L);
  EXPECT_TRUE(P.RegDefsNeedInterp);
  EXPECT_EQ(P.RegSetMask, 0u);
  EXPECT_EQ(P.RegClearMask, 0u);
  EXPECT_TRUE(P.ComputeRegDefs.empty());
  ASSERT_EQ(P.InterpRegDefs.size(), 2u);
  EXPECT_EQ(P.InterpRegDefs[0].Reg, 5u);
  EXPECT_EQ(P.InterpRegDefs[1].Reg, 5u);
}

TEST(ScanPlanTest, CacheCompilesEachKeyOnce) {
  const Keys &K = Keys::get();
  ScanPlanCache &Cache = ScanPlanCache::global();
  const ScanPlan &P1 = Cache.plan(K.Mixed);
  size_t After = Cache.compiledCount();
  const ScanPlan &P2 = Cache.plan(K.Mixed);
  EXPECT_EQ(&P1, &P2) << "memoized plan must be stable";
  EXPECT_EQ(Cache.compiledCount(), After) << "no recompilation";
}

//===----------------------------------------------------------------------===//
// Checked registry lookup (satellite: fail loudly in release builds too).
//===----------------------------------------------------------------------===//

TEST(TraceTableDeathTest, UnknownKeyAbortsLoudly) {
  EXPECT_DEATH_IF_SUPPORTED(
      (void)TraceTableRegistry::global().lookup(0xDEADBEEFu),
      "not a registered trace table");
  EXPECT_DEATH_IF_SUPPORTED((void)TraceTableRegistry::global().lookup(StubKey),
                            "stub key leaked");
}

//===----------------------------------------------------------------------===//
// Raw-scanner differentials.
//===----------------------------------------------------------------------===//

/// Fake heap objects for pointer slots, and type descriptors for computes.
/// Static storage: the same addresses appear in every stack built by
/// buildStack, so root *values* identify slots across stacks.
Word FakeObjs[128];
Word DescYes[1] = {1}; ///< Compute descriptor: value IS a pointer.
Word DescNo[1] = {0};  ///< Compute descriptor: value is NOT a pointer.

/// Builds a deterministic stack of \p Depth frames cycling through the
/// Mixed / Wide / Dup layouts, filling pointer slots with distinct fake
/// object addresses and compute-described slots alternately pointer /
/// non-pointer.
void buildStack(ShadowStack &S, size_t Depth) {
  const Keys &K = Keys::get();
  for (size_t F = 0; F < Depth; ++F) {
    switch (F % 3) {
    case 0: {
      size_t B = S.pushFrame(K.Mixed, 45);
      for (uint32_t Slot = 1; Slot <= 20; ++Slot)
        if ((F + Slot) % 3 != 0) // Leave some pointer slots null.
          S.slot(B, Slot) =
              reinterpret_cast<Word>(&FakeObjs[(F * 7 + Slot) % 128]);
      for (uint32_t Slot = 21; Slot <= 40; ++Slot)
        S.slot(B, Slot) = 0x1000 + F * 64 + Slot; // Non-pointer garbage.
      S.slot(B, 41) = reinterpret_cast<Word>(&FakeObjs[(F * 11) % 128]);
      S.slot(B, 42) = reinterpret_cast<Word>(&FakeObjs[(F * 13) % 128]);
      // Slots 1 and 2 are the computes' type descriptors; overwrite them
      // with descriptor pointers (they are Pointer slots, still roots).
      S.slot(B, 1) = reinterpret_cast<Word>(F % 2 ? DescYes : DescNo);
      S.slot(B, 2) = reinterpret_cast<Word>(F % 2 ? DescNo : DescYes);
      S.slot(B, 43) = reinterpret_cast<Word>(&FakeObjs[(F * 17) % 128]);
      S.slot(B, 44) = reinterpret_cast<Word>(&FakeObjs[(F * 19) % 128]);
      break;
    }
    case 1: {
      size_t B = S.pushFrame(K.Wide, 71);
      for (uint32_t Slot = 1; Slot <= 70; ++Slot)
        if ((F + Slot) % 4 != 0)
          S.slot(B, Slot) =
              reinterpret_cast<Word>(&FakeObjs[(F * 5 + Slot) % 128]);
      break;
    }
    case 2: {
      size_t B = S.pushFrame(K.Dup, 2);
      S.slot(B, 1) = reinterpret_cast<Word>(&FakeObjs[(F * 3) % 128]);
      break;
    }
    }
  }
}

/// The multiset of root slot *contents* — address-independent, so it can be
/// compared across distinct stacks.
std::vector<Word> rootValues(const RootSet &Roots) {
  std::vector<Word> V;
  for (const Word *Slot : Roots.FreshSlotRoots)
    V.push_back(*Slot);
  for (const Word *Slot : Roots.ReusedSlotRoots)
    V.push_back(*Slot);
  std::sort(V.begin(), V.end());
  return V;
}

TEST(ScanDifferentialTest, MarkerlessScanYieldsIdenticalRoots) {
  ShadowStack S(1u << 16);
  buildStack(S, 40);
  RegisterFile Regs;

  RootSet InterpRoots, PlanRoots;
  ScanStats InterpStats, PlanStats;
  // Markerless scans are stack-read-only: the same stack can be scanned in
  // both modes back to back.
  StackScanner::scan(S, Regs, nullptr, nullptr, InterpRoots, InterpStats,
                     /*CompiledPlans=*/false);
  StackScanner::scan(S, Regs, nullptr, nullptr, PlanRoots, PlanStats,
                     /*CompiledPlans=*/true);

  EXPECT_EQ(rootValues(InterpRoots), rootValues(PlanRoots));
  EXPECT_EQ(InterpRoots.FreshSlotRoots.size(), PlanRoots.FreshSlotRoots.size());
  EXPECT_EQ(InterpRoots.RegRoots, PlanRoots.RegRoots);

  // Semantic counters are bit-identical.
  EXPECT_EQ(InterpStats.FramesScanned, PlanStats.FramesScanned);
  EXPECT_EQ(InterpStats.FramesReused, PlanStats.FramesReused);
  EXPECT_EQ(InterpStats.ComputesResolved, PlanStats.ComputesResolved);
  EXPECT_EQ(InterpStats.MarkersPlaced, PlanStats.MarkersPlaced);

  // SlotsVisited is the interpreted-slot count: the compiled mode visits
  // only the side lists. This stack mixes heavily pointer/non-pointer
  // frames, so the reduction must be at least 4x.
  EXPECT_EQ(PlanStats.PlanWordsScanned, 14u * 1 + 13u * 2 + 13u * 1)
      << "one bitmask word per Mixed/Dup frame, two per Wide frame";
  EXPECT_GT(InterpStats.SlotsVisited, 4 * PlanStats.SlotsVisited)
      << "compiled mode must eliminate at least 4x of the slot visits";
}

/// One marker-mode scan sequence: scan, push more frames, scan again (the
/// second scan replays the cached prefix). Returns per-scan root values and
/// the stats of both scans.
struct MarkerRun {
  std::vector<Word> Roots1, Roots2;
  ScanStats Stats1, Stats2;
};

MarkerRun runMarkerSequence(bool CompiledPlans) {
  ShadowStack S(1u << 16);
  RegisterFile Regs;
  MarkerManager Markers(7);
  ScanCache Cache;
  MarkerRun R;

  buildStack(S, 40);
  RootSet Roots;
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, R.Stats1,
                     CompiledPlans);
  R.Roots1 = rootValues(Roots);

  buildStack(S, 10); // Grow the stack; frames below the markers unchanged.
  StackScanner::scan(S, Regs, &Markers, &Cache, Roots, R.Stats2,
                     CompiledPlans);
  R.Roots2 = rootValues(Roots);
  return R;
}

TEST(ScanDifferentialTest, MarkeredScansMatchAcrossModes) {
  MarkerRun Interp = runMarkerSequence(false);
  MarkerRun Plan = runMarkerSequence(true);

  EXPECT_EQ(Interp.Roots1, Plan.Roots1);
  EXPECT_EQ(Interp.Roots2, Plan.Roots2);
  EXPECT_EQ(Interp.Stats1.FramesScanned, Plan.Stats1.FramesScanned);
  EXPECT_EQ(Interp.Stats1.MarkersPlaced, Plan.Stats1.MarkersPlaced);
  EXPECT_EQ(Interp.Stats2.FramesScanned, Plan.Stats2.FramesScanned);
  EXPECT_EQ(Interp.Stats2.FramesReused, Plan.Stats2.FramesReused);
  EXPECT_GT(Interp.Stats2.FramesReused, 0u)
      << "the second scan must actually replay cached frames";
  EXPECT_EQ(Interp.Stats2.MarkersPlaced, Plan.Stats2.MarkersPlaced);
  EXPECT_EQ(Interp.Stats1.ComputesResolved, Plan.Stats1.ComputesResolved);
  EXPECT_EQ(Interp.Stats2.ComputesResolved, Plan.Stats2.ComputesResolved);
  EXPECT_GT(Interp.Stats1.SlotsVisited, 4 * Plan.Stats1.SlotsVisited);
}

//===----------------------------------------------------------------------===//
// Whole-workload differentials (Table 1, serial).
//===----------------------------------------------------------------------===//

struct WorkloadOutcome {
  uint64_t Checksum;
  uint64_t NumGC;
  uint64_t BytesCopied;
  uint64_t ObjectsCopied;
  uint64_t FramesScanned;
  uint64_t FramesReused;
  uint64_t SlotsVisited;
  uint64_t SSBEntriesProcessed;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t, uint64_t>> Sites;
  std::vector<std::pair<uint32_t, bool>> PretenureSet;
};

WorkloadOutcome runWorkloadOnce(Workload &W, bool CompiledPlans,
                                bool UseMarkers, double Scale) {
  // GcThreads = 1: parallel block-handout pad waste varies run to run,
  // which can legitimately shift allocation-triggered collection cadence;
  // the thread-count differential below pins its budgets instead.
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 1u << 20;
  Cfg.UseStackMarkers = UseMarkers;
  Cfg.CompiledScanPlans = CompiledPlans;
  Cfg.EnableProfiling = true;
  Mutator M(Cfg);

  WorkloadOutcome R;
  R.Checksum = W.run(M, Scale);
  const GcStats &St = M.gcStats();
  R.NumGC = St.NumGC;
  R.BytesCopied = St.BytesCopied;
  R.ObjectsCopied = St.ObjectsCopied;
  R.FramesScanned = St.FramesScanned;
  R.FramesReused = St.FramesReused;
  R.SlotsVisited = St.SlotsVisited;
  R.SSBEntriesProcessed = St.SSBEntriesProcessed;
  const HeapProfiler *P = M.profiler();
  for (uint32_t S = 0; S < P->numSites(); ++S) {
    const SiteStats &SS = P->site(S);
    R.Sites.emplace_back(SS.AllocBytes, SS.CopiedBytes,
                         SS.SurvivedFirstCount, SS.DeathCount);
  }
  for (const PretenureDecision &D : P->derivePretenureSet(0.8))
    R.PretenureSet.emplace_back(D.SiteId, D.EliminateScan);
  return R;
}

class WorkloadScanDifferential : public ::testing::TestWithParam<size_t> {};

TEST_P(WorkloadScanDifferential, CompiledMatchesInterpretive) {
  const auto &Workloads = allWorkloads();
  ASSERT_LT(GetParam(), Workloads.size());
  Workload &W = *Workloads[GetParam()];
  const double Scale = 0.12;

  for (bool UseMarkers : {false, true}) {
    WorkloadOutcome I = runWorkloadOnce(W, false, UseMarkers, Scale);
    WorkloadOutcome C = runWorkloadOnce(W, true, UseMarkers, Scale);
    SCOPED_TRACE(std::string(W.name()) +
                 (UseMarkers ? " (markers)" : " (no markers)"));

    EXPECT_EQ(I.Checksum, W.expected(Scale));
    EXPECT_EQ(C.Checksum, I.Checksum);
    EXPECT_EQ(C.NumGC, I.NumGC);
    EXPECT_EQ(C.BytesCopied, I.BytesCopied);
    EXPECT_EQ(C.ObjectsCopied, I.ObjectsCopied);
    EXPECT_EQ(C.FramesScanned, I.FramesScanned);
    EXPECT_EQ(C.FramesReused, I.FramesReused);
    EXPECT_EQ(C.SSBEntriesProcessed, I.SSBEntriesProcessed);
    EXPECT_LE(C.SlotsVisited, I.SlotsVisited)
        << "compiled mode can only reduce interpreted slot visits";
    EXPECT_EQ(C.Sites, I.Sites) << "per-site profiles must be identical";
    EXPECT_EQ(C.PretenureSet, I.PretenureSet)
        << "pretenuring decisions must not depend on the scan mode";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadScanDifferential,
    ::testing::Range<size_t>(0, 11),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      const auto &Workloads = allWorkloads();
      std::string Name = Info.param < Workloads.size()
                             ? Workloads[Info.param]->name()
                             : "pending" + std::to_string(Info.param);
      std::string Clean;
      for (char C : Name)
        if ((C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
            (C >= '0' && C <= '9'))
          Clean += C;
      return Clean;
    });

//===----------------------------------------------------------------------===//
// Thread-count differential (controlled workload, pinned budgets).
//===----------------------------------------------------------------------===//

uint32_t diffSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("plan.diff");
  return S;
}

uint32_t diffFrameKey() {
  // A frame with real scan structure: two pointer locals, a callee-save of
  // r2, a non-pointer counter, and a compute described by slot 1.
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "plan.diff",
      {Trace::pointer(), Trace::pointer(), Trace::calleeSave(2),
       Trace::nonPointer(), Trace::computeFromSlot(1)},
      {RegAction{2, Trace::pointer()}}));
  return K;
}

uint32_t diffRootsKey() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("plan.diffroots", {Trace::pointer()}));
  return K;
}

/// Deep-recursion workload: each level conses onto a list threaded through
/// frame slots, collections fire at fixed depths (explicitly — the pinned
/// budgets prevent any allocation-triggered GC), and unchanged lower frames
/// get reused by the marker machinery.
Value diffRecurse(Mutator &M, unsigned Depth, Value Tail) {
  Frame F(M, diffFrameKey());
  F.set(1, M.allocTypeDesc(true));
  F.set(2, Tail);
  Value Cell = M.allocRecord(diffSite(), 2, 0b10);
  M.initField(Cell, 0, Value::fromInt(Depth));
  M.initField(Cell, 1, F.get(2));
  F.set(2, Cell);
  F.set(5, F.get(2)); // The compute slot: described as pointer by slot 1.
  if (Depth % 40 == 0)
    M.collect(/*Major=*/false);
  if (Depth % 170 == 0)
    M.collect(/*Major=*/true);
  if (Depth == 0)
    return F.get(2); // Read from the slot after the collects above.
  return diffRecurse(M, Depth - 1, F.get(2));
}

/// Runs the recursion under a root frame, survives a final major
/// collection, and hashes the resulting list address-independently.
uint64_t diffMutate(Mutator &M) {
  Frame F(M, diffRootsKey());
  // No allocation happens between the deepest frame's slot read and this
  // store, so the returned Value is not stale.
  F.set(1, diffRecurse(M, 400, Value::null()));
  M.collect(/*Major=*/true);

  uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&](uint64_t V) { Hash = (Hash ^ V) * 1099511628211ULL; };
  for (Value V = F.get(1); !V.isNull(); V = Mutator::getField(V, 1))
    Mix(static_cast<uint64_t>(Mutator::getField(V, 0).bits()));
  return Hash;
}

struct DiffOutcome {
  uint64_t Hash;
  uint64_t NumGC;
  uint64_t BytesCopied;
  uint64_t ObjectsCopied;
  uint64_t FramesScanned;
  uint64_t FramesReused;
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> Sites;
};

DiffOutcome runDiffWorkload(unsigned Threads, bool CompiledPlans) {
  // Pinned budgets (see parallel_evacuator_test): only explicit collections
  // fire, so the cadence cannot shift with thread count or root order.
  MutatorConfig Cfg;
  Cfg.Kind = CollectorKind::Generational;
  Cfg.BudgetBytes = 16u << 20;
  Cfg.SemispaceTargetLiveness = 1e-6;
  Cfg.TenuredTargetLiveness = 1e-6;
  Cfg.UseStackMarkers = true;
  Cfg.MarkerPeriod = 11;
  Cfg.CompiledScanPlans = CompiledPlans;
  Cfg.GcThreads = Threads;
  Cfg.EnableProfiling = true;
  Cfg.VerifyHeapAfterGC = true;
  Cfg.VerifyReuseInvariant = true;
  Mutator M(Cfg);

  DiffOutcome R;
  R.Hash = diffMutate(M);
  const GcStats &St = M.gcStats();
  R.NumGC = St.NumGC;
  R.BytesCopied = St.BytesCopied;
  R.ObjectsCopied = St.ObjectsCopied;
  R.FramesScanned = St.FramesScanned;
  R.FramesReused = St.FramesReused;
  const HeapProfiler *P = M.profiler();
  for (uint32_t S = 0; S < P->numSites(); ++S) {
    const SiteStats &SS = P->site(S);
    R.Sites.emplace_back(SS.CopiedBytes, SS.SurvivedFirstCount,
                         SS.DeathCount);
  }
  return R;
}

class ScanPlanThreads : public ::testing::TestWithParam<unsigned> {};

TEST_P(ScanPlanThreads, CompiledMatchesInterpretiveAtEveryThreadCount) {
  static const DiffOutcome Baseline = runDiffWorkload(1, false);
  ASSERT_GT(Baseline.FramesReused, 0u)
      << "the controlled workload must exercise frame reuse";

  for (bool CompiledPlans : {false, true}) {
    DiffOutcome R = runDiffWorkload(GetParam(), CompiledPlans);
    SCOPED_TRACE(CompiledPlans ? "compiled" : "interpretive");
    EXPECT_EQ(R.Hash, Baseline.Hash);
    ASSERT_EQ(R.NumGC, Baseline.NumGC) << "collection cadence diverged";
    EXPECT_EQ(R.BytesCopied, Baseline.BytesCopied);
    EXPECT_EQ(R.ObjectsCopied, Baseline.ObjectsCopied);
    EXPECT_EQ(R.FramesScanned, Baseline.FramesScanned);
    EXPECT_EQ(R.FramesReused, Baseline.FramesReused);
    EXPECT_EQ(R.Sites, Baseline.Sites);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ScanPlanThreads,
                         ::testing::Values(1u, 2u, 8u));

//===----------------------------------------------------------------------===//
// Capacity reuse (satellite).
//===----------------------------------------------------------------------===//

TEST(CapacityReuseTest, RootSetClearKeepsCapacity) {
  RootSet R;
  R.reserve(512);
  size_t CapFresh = R.FreshSlotRoots.capacity();
  ASSERT_GE(CapFresh, 512u);
  Word Dummy = 0;
  for (int I = 0; I < 400; ++I)
    R.FreshSlotRoots.push_back(&Dummy);
  R.clear();
  EXPECT_TRUE(R.FreshSlotRoots.empty());
  EXPECT_EQ(R.FreshSlotRoots.capacity(), CapFresh);
}

TEST(CapacityReuseTest, StoreBufferClearKeepsCapacity) {
  StoreBuffer SSB;
  SSB.reserve(256);
  size_t Cap = SSB.entries().capacity();
  ASSERT_GE(Cap, 256u);
  Word Dummy = 0;
  for (int I = 0; I < 200; ++I)
    SSB.record(&Dummy); // Duplicates preserved by design.
  EXPECT_EQ(SSB.size(), 200u);
  EXPECT_EQ(SSB.totalRecorded(), 200u);
  SSB.clear();
  EXPECT_EQ(SSB.size(), 0u);
  EXPECT_EQ(SSB.entries().capacity(), Cap);
  EXPECT_EQ(SSB.totalRecorded(), 200u) << "lifetime count survives clears";
}

} // namespace
