//===- tests/evacuator_test.cpp - Copy-engine unit tests --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Evacuator.h"

#include "stack/RegisterFile.h"
#include "stack/ShadowStack.h"
#include "stack/StackScanner.h"

#include <gtest/gtest.h>

using namespace tilgc;

namespace {

Word *mkRecord(Space &S, uint32_t Fields, uint32_t Mask, uint32_t Site = 1) {
  Word *P = S.allocate(header::make(ObjectKind::Record, Fields, Mask),
                       meta::make(Site, 0));
  for (uint32_t I = 0; I < Fields; ++I)
    P[I] = 0;
  return P;
}

} // namespace

TEST(EvacuatorTest, CopiesReachableGraphOnce) {
  Space From, To;
  From.reserve(8192);
  To.reserve(8192);
  // A -> B, A -> C, B -> C (C shared).
  Word *C = mkRecord(From, 1, 0);
  C[0] = 777;
  Word *B = mkRecord(From, 1, 0b1);
  B[0] = reinterpret_cast<Word>(C);
  Word *A = mkRecord(From, 2, 0b11);
  A[0] = reinterpret_cast<Word>(B);
  A[1] = reinterpret_cast<Word>(C);

  Word Root = reinterpret_cast<Word>(A);
  Evacuator::Config Cfg;
  Cfg.From = {&From, nullptr, nullptr};
  Cfg.Dest = &To;
  Evacuator E(Cfg);
  E.forwardSlot(&Root);
  E.drain();

  EXPECT_EQ(E.objectsCopied(), 3u);
  Word *NA = reinterpret_cast<Word *>(Root);
  ASSERT_TRUE(To.contains(NA));
  Word *NB = reinterpret_cast<Word *>(NA[0]);
  Word *NC1 = reinterpret_cast<Word *>(NA[1]);
  Word *NC2 = reinterpret_cast<Word *>(NB[0]);
  EXPECT_EQ(NC1, NC2) << "shared object must be copied once";
  EXPECT_EQ(NC1[0], 777u);
}

TEST(EvacuatorTest, CyclesTerminate) {
  Space From, To;
  From.reserve(4096);
  To.reserve(4096);
  Word *A = mkRecord(From, 1, 0b1);
  Word *B = mkRecord(From, 1, 0b1);
  A[0] = reinterpret_cast<Word>(B);
  B[0] = reinterpret_cast<Word>(A);

  Word Root = reinterpret_cast<Word>(A);
  Evacuator::Config Cfg;
  Cfg.From = {&From, nullptr, nullptr};
  Cfg.Dest = &To;
  Evacuator E(Cfg);
  E.forwardSlot(&Root);
  E.drain();
  EXPECT_EQ(E.objectsCopied(), 2u);
  Word *NA = reinterpret_cast<Word *>(Root);
  Word *NB = reinterpret_cast<Word *>(NA[0]);
  EXPECT_EQ(reinterpret_cast<Word *>(NB[0]), NA);
}

TEST(EvacuatorTest, AgedPolicySplitsByAge) {
  Space From, Old, Young;
  From.reserve(8192);
  Old.reserve(8192);
  Young.reserve(8192);
  Word *Fresh = mkRecord(From, 1, 0); // Age 0 -> young.
  Word *Aged = From.allocate(header::make(ObjectKind::Record, 1, 0),
                             meta::withBumpedAge(meta::make(1, 0)));
  Aged[0] = 0; // Age 1, threshold 2 -> promoted.

  Word R1 = reinterpret_cast<Word>(Fresh);
  Word R2 = reinterpret_cast<Word>(Aged);
  Evacuator::Config Cfg;
  Cfg.From = {&From, nullptr, nullptr};
  Cfg.Dest = &Old;
  Cfg.DestYoung = &Young;
  Cfg.PromoteAgeThreshold = 2;
  Evacuator E(Cfg);
  E.forwardSlot(&R1);
  E.forwardSlot(&R2);
  E.drain();

  EXPECT_TRUE(Young.contains(reinterpret_cast<Word *>(R1)));
  EXPECT_TRUE(Old.contains(reinterpret_cast<Word *>(R2)));
  // Ages were bumped in the copies.
  EXPECT_EQ(meta::age(metaOf(reinterpret_cast<Word *>(R1))), 1u);
  EXPECT_EQ(meta::age(metaOf(reinterpret_cast<Word *>(R2))), 2u);
}

TEST(EvacuatorTest, CrossGenSlotsAreReported) {
  Space From, Old, Young;
  From.reserve(8192);
  Old.reserve(8192);
  Young.reserve(8192);
  // Parent (age 1, promoted) points at child (age 0, stays young).
  Word *Child = mkRecord(From, 1, 0);
  Word *Parent = From.allocate(header::make(ObjectKind::Record, 1, 0b1),
                               meta::withBumpedAge(meta::make(1, 0)));
  Parent[0] = reinterpret_cast<Word>(Child);

  Word Root = reinterpret_cast<Word>(Parent);
  std::vector<Word *> Cross;
  Evacuator::Config Cfg;
  Cfg.From = {&From, nullptr, nullptr};
  Cfg.Dest = &Old;
  Cfg.DestYoung = &Young;
  Cfg.PromoteAgeThreshold = 2;
  Cfg.CrossGenOut = &Cross;
  Evacuator E(Cfg);
  E.forwardSlot(&Root);
  E.drain();

  Word *NewParent = reinterpret_cast<Word *>(Root);
  ASSERT_TRUE(Old.contains(NewParent));
  ASSERT_TRUE(Young.contains(reinterpret_cast<Word *>(NewParent[0])));
  // The promoted parent's field is exactly the reported old->young slot.
  ASSERT_EQ(Cross.size(), 1u);
  EXPECT_EQ(Cross[0], &NewParent[0]);
}

TEST(EvacuatorTest, MajorTraceMarksAndScansLOS) {
  Space From, To;
  From.reserve(8192);
  To.reserve(8192);
  LargeObjectSpace LOS;
  // LOS array points at a from-space record; a from-space root points at
  // the LOS array.
  Word *Rec = mkRecord(From, 1, 0);
  Rec[0] = 31415;
  Word *Arr = LOS.allocate(header::make(ObjectKind::PtrArray, 4),
                           meta::make(2, 0));
  for (int I = 0; I < 4; ++I)
    Arr[I] = 0;
  Arr[2] = reinterpret_cast<Word>(Rec);

  Word Root = reinterpret_cast<Word>(Arr);
  Evacuator::Config Cfg;
  Cfg.From = {&From, nullptr, nullptr};
  Cfg.Dest = &To;
  Cfg.LOS = &LOS;
  Cfg.TraceLOS = true;
  Evacuator E(Cfg);
  E.forwardSlot(&Root);
  E.drain();

  EXPECT_EQ(reinterpret_cast<Word *>(Root), Arr) << "LOS objects never move";
  Word *NewRec = reinterpret_cast<Word *>(Arr[2]);
  ASSERT_TRUE(To.contains(NewRec));
  EXPECT_EQ(NewRec[0], 31415u);
  // The array was marked: it survives the sweep; an unmarked sibling dies.
  Word *Dead = LOS.allocate(header::make(ObjectKind::NonPtrArray, 4),
                            meta::make(3, 0));
  (void)Dead;
  int Swept = 0;
  LOS.sweep([&](Word *, Word) { ++Swept; });
  EXPECT_EQ(Swept, 1);
  EXPECT_TRUE(LOS.contains(Arr));
}

TEST(ScannerExtraTest, ComputeFromRegisterOnTopFrame) {
  static const uint32_t Key = TraceTableRegistry::global().define(FrameLayout(
      "scan.regcompute", {Trace::computeFromReg(5)}));
  ShadowStack S(1024);
  RegisterFile Regs;
  alignas(8) Word DescPtr[3] = {header::make(ObjectKind::Record, 1, 0),
                                meta::make(0, 0), 1};
  alignas(8) Word Obj[3] = {header::make(ObjectKind::Record, 1, 0),
                            meta::make(1, 0), 0};

  size_t F = S.pushFrame(Key, 2);
  Regs[5] = reinterpret_cast<Word>(&DescPtr[2]); // "pointer" descriptor.
  S.slot(F, 1) = reinterpret_cast<Word>(&Obj[2]);

  RootSet Roots;
  ScanStats Stats;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);
  ASSERT_EQ(Roots.FreshSlotRoots.size(), 1u);
  EXPECT_EQ(Roots.FreshSlotRoots[0], S.slotAddress(F, 1));

  // Flip the descriptor to "non-pointer": the slot is no longer a root.
  DescPtr[2] = 0;
  StackScanner::scan(S, Regs, nullptr, nullptr, Roots, Stats);
  EXPECT_TRUE(Roots.FreshSlotRoots.empty());
}
