//===- tests/crossing_map_test.cpp - Crossing-map remembered set ----------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object-start crossing map that makes card scanning O(dirty cards):
///
///  * encoding units: boundary starts, card-straddling objects, objects
///    strictly inside one card, back-skip chains longer than one entry can
///    express, and the attach/epoch rebinding contract;
///  * collector-level: the per-collection card-scan cost is bounded by the
///    dirty-card count (not live tenured data), the map survives tenured
///    growth across majors (the card-table rebind regression), and parallel
///    promotion maintains it identically to the serial engine.
///
//===----------------------------------------------------------------------===//

#include "heap/CardTable.h"
#include "heap/CrossingMap.h"
#include "heap/Space.h"
#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <gtest/gtest.h>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t cmSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("cm.site");
  return S;
}

uint32_t cmKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "cm.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  return K;
}

} // namespace

//===----------------------------------------------------------------------===//
// Encoding units (raw Space + CrossingMap, no collector).
//===----------------------------------------------------------------------===//

TEST(CrossingMapUnit, FreshMapKnowsNothing) {
  Space S;
  S.reserve(64 * 1024);
  CrossingMap CM;
  CM.attach(S);
  ASSERT_GT(CM.numCards(), 0u);
  for (size_t C = 0; C < CM.numCards(); ++C)
    EXPECT_EQ(CM.objectStartCovering(C), nullptr);
}

TEST(CrossingMapUnit, StraddlersResolveAndInteriorObjectsRecordNothing) {
  Space S;
  S.reserve(64 * 1024);
  CrossingMap CM;
  CM.attach(S);

  // A: 100-element array (102 total words): covers the first word of cards
  // 0 (its own header) and 1 (word 64 is payload), not card 2 (word 128).
  Word DA = header::make(ObjectKind::NonPtrArray, 100);
  Word *A = S.allocate(DA, meta::make(1, 0));
  const Word *HA = A - HeaderWords;
  CM.recordObject(HA, objectTotalWords(DA));
  EXPECT_EQ(CM.objectStartCovering(0), HA);
  EXPECT_EQ(CM.objectStartCovering(1), HA);
  EXPECT_EQ(CM.objectStartCovering(2), nullptr);

  // B: 8 total words at [102, 110) — strictly inside card 1, covers no
  // card's first word, must record nothing.
  Word DB = header::make(ObjectKind::NonPtrArray, 6);
  Word *B = S.allocate(DB, meta::make(2, 0));
  CM.recordObject(B - HeaderWords, objectTotalWords(DB));
  EXPECT_EQ(CM.objectStartCovering(1), HA) << "interior object clobbered A";
  EXPECT_EQ(CM.objectStartCovering(2), nullptr);

  // C: starts mid-card-1 at word 110 and spans into card 2: card 2's entry
  // becomes a direct in-previous-card offset.
  Word DC = header::make(ObjectKind::NonPtrArray, 30);
  Word *C = S.allocate(DC, meta::make(3, 0));
  const Word *HC = C - HeaderWords;
  CM.recordObject(HC, objectTotalWords(DC));
  EXPECT_EQ(CM.objectStartCovering(2), HC);
  EXPECT_EQ(CM.objectStartCovering(1), HA) << "C must not touch card 1";
}

TEST(CrossingMapUnit, BackSkipChainsResolvePastMaxSkip) {
  // One object spanning ~400 cards: entries past MaxSkip (191 cards) clamp
  // and chain, so resolution takes more than one hop.
  constexpr size_t SpanCards = 400;
  Space S;
  S.reserve((SpanCards + 8) * CrossingMap::CardBytes);
  CrossingMap CM;
  CM.attach(S);

  uint32_t Len = static_cast<uint32_t>(SpanCards * CrossingMap::CardWords);
  Word D = header::make(ObjectKind::NonPtrArray, Len);
  Word *A = S.allocate(D, meta::make(1, 0));
  ASSERT_NE(A, nullptr);
  const Word *HA = A - HeaderWords;
  CM.recordObject(HA, objectTotalWords(D));

  size_t First = CM.cardOf(HA);
  size_t Last = CM.cardOf(HA + objectTotalWords(D) - 1);
  ASSERT_GT(Last - First, static_cast<size_t>(CrossingMap::MaxSkip));
  for (size_t C = First; C <= Last; ++C)
    ASSERT_EQ(CM.objectStartCovering(C), HA) << "card " << C;
}

TEST(CrossingMapUnit, PadFillersCoverTheirCards) {
  // Parallel evacuation retires partially-filled blocks with pad headers;
  // the pads are recorded like objects so their cards still resolve.
  Space S;
  S.reserve(64 * 1024);
  CrossingMap CM;
  CM.attach(S);

  Word DA = header::make(ObjectKind::NonPtrArray, 30);
  Word *A = S.allocate(DA, meta::make(1, 0));
  CM.recordObject(A - HeaderWords, objectTotalWords(DA));

  // Simulate a 200-word pad directly after A (spans cards 0..3).
  Word *PadAt = A + 30;
  *PadAt = header::makePad(200);
  CM.recordObject(PadAt, 200);
  EXPECT_EQ(CM.objectStartCovering(1), PadAt);
  EXPECT_EQ(CM.objectStartCovering(2), PadAt);
  EXPECT_EQ(CM.objectStartCovering(3), PadAt);
  EXPECT_EQ(CM.objectStartCovering(0), A - HeaderWords);
}

TEST(CrossingMapUnit, RebindContractTracksReserveEpoch) {
  Space S;
  S.reserve(8 * 1024);
  CrossingMap CM;
  CM.attach(S);
  EXPECT_TRUE(CM.boundTo(S));

  // Re-reserving the space (even at the same size, even if the allocator
  // hands back the same address) bumps the epoch: the map must notice.
  S.release();
  S.reserve(8 * 1024);
  EXPECT_FALSE(CM.boundTo(S)) << "stale bind after re-reserve undetected";
  CM.attach(S);
  EXPECT_TRUE(CM.boundTo(S));
  EXPECT_EQ(CM.objectStartCovering(0), nullptr) << "attach must reset";
}

//===----------------------------------------------------------------------===//
// Collector-level behavior.
//===----------------------------------------------------------------------===//

namespace {

/// Builds a list of \p N cells and promotes it into the tenured generation
/// (slot 1 holds the list).
void buildPromotedList(Mutator &M, Frame &F, int N) {
  F.set(1, Value::null());
  for (int I = 0; I < N; ++I)
    F.set(1, consInt(M, cmSite(), I, slot(F, 1)));
  M.collect(false); // Promote-all: the whole list tenures.
}

} // namespace

TEST(CrossingMapGc, ScanCostBoundedByDirtyCardsNotLiveData) {
  MutatorConfig C;
  C.BudgetBytes = 16u << 20;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, cmKey());

  // ~40k cells ≈ 1.25MB of live tenured data spanning thousands of cards.
  buildPromotedList(M, F, 40000);
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));
  ASSERT_GT(M.gcStats().CrossingMapUpdates, 0u)
      << "promotion must feed the crossing map";
  M.collect(false); // Quiesce: no dirty cards pending.

  const GcStats &S = M.gcStats();
  uint64_t CardsBefore = S.CardsScanned;
  uint64_t SlotsBefore = S.CardSlotsVisited;

  // One old->young store -> one dirty card. The scan must touch that card
  // (plus at most a neighbor for a straddling run), not the ~2500 cards of
  // live tenured data.
  F.set(2, consInt(M, cmSite(), 777, slot(F, 3)));
  M.writeField(F.get(1), 1, F.get(2), /*IsPointerField=*/true);
  F.set(2, Value::null());
  ASSERT_EQ(GC.cardTable().numDirtyCards(), 1u);
  M.collect(false);

  EXPECT_LE(S.CardsScanned - CardsBefore, 2u)
      << "card scan walked clean cards";
  EXPECT_LE(S.CardSlotsVisited - SlotsBefore, 2 * CrossingMap::CardWords)
      << "card scan visited fields outside the dirty run";
  // And the store was not lost: the new head reaches the old list.
  EXPECT_EQ(headInt(tail(F.get(1))), 777);
}

TEST(CrossingMapGc, CardRebindSurvivesTenuredGrowthBoundary) {
  // Regression for stale card/crossing-map binds: grow the tenured space
  // through several majors (re-reserving its backing), then prove an
  // old->young store recorded *after* the growth still protects its child.
  MutatorConfig C;
  C.BudgetBytes = 256u << 10; // Tiny: growth majors happen quickly.
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  C.VerifyLevel = 2; // Remembered-set completeness audit every minor.
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, cmKey());

  // A tenured parent record with one pointer field.
  F.set(1, M.allocRecord(cmSite(), 1, 0b1));
  M.collect(false);
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));

  // Churn promoted garbage until the tenured space has grown (majors
  // re-reserve the semispaces).
  uint64_t MajorsBefore = M.gcStats().NumMajorGC;
  for (int Round = 0; Round < 30 && M.gcStats().NumMajorGC < MajorsBefore + 2;
       ++Round) {
    F.set(2, Value::null());
    for (int I = 0; I < 4000; ++I)
      F.set(2, consInt(M, cmSite(), I, slot(F, 2)));
    M.collect(false);
  }
  F.set(2, Value::null());
  ASSERT_GE(M.gcStats().NumMajorGC, MajorsBefore + 2)
      << "workload failed to force tenured growth";
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));

  // Mutate across the growth boundary: the dirty card must land in the
  // *current* table/map bind, and the next minor must find the child.
  F.set(2, consInt(M, cmSite(), 31337, slot(F, 3)));
  M.writeField(F.get(1), 0, F.get(2), /*IsPointerField=*/true);
  F.set(2, Value::null());
  M.collect(false);
  Value Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  EXPECT_EQ(headInt(Child), 31337);
}

TEST(CrossingMapGc, CardRebindSurvivesMarkCompactGrowthBoundary) {
  // The mark-compact twin of the growth-boundary regression above, now with
  // the RegionManager in the rebind chain: each growth fallback releases
  // the old tenured reservation and re-attaches the region overlay, the
  // card table and the crossing map to the grown space (a fresh reserve
  // epoch), and in-place majors in between rebuild crossing metadata after
  // every slide. Grow the region set across two majors, then prove an
  // old->young store recorded after the last rebind still protects its
  // child through the next minor's card scan.
  MutatorConfig C;
  C.BudgetBytes = 256u << 10; // Tiny: growth majors happen quickly.
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  C.VerifyLevel = 2; // Remembered-set completeness audit every minor.
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, cmKey());

  // A tenured parent record with one pointer field.
  F.set(1, M.allocRecord(cmSite(), 1, 0b1));
  M.collect(false);
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));

  // Retain a growing prefix so in-place compaction cannot keep absorbing
  // the pressure: the tenured space must actually grow (re-reserving its
  // backing and re-attaching the region overlay) across at least two
  // majors.
  uint64_t MajorsBefore = M.gcStats().NumMajorGC;
  for (int Round = 0; Round < 30 && M.gcStats().NumMajorGC < MajorsBefore + 2;
       ++Round) {
    for (int I = 0; I < 2000; ++I)
      F.set(2, consInt(M, cmSite(), I, slot(F, 2)));
    M.collect(false);
  }
  ASSERT_GE(M.gcStats().NumMajorGC, MajorsBefore + 2)
      << "workload failed to force tenured growth";
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));

  // Mutate across the growth boundary: the dirty card must land in the
  // *current* table/map bind, and the next minor must find the child.
  F.set(3, consInt(M, cmSite(), 31337, slot(F, 3)));
  M.writeField(F.get(1), 0, F.get(3), /*IsPointerField=*/true);
  F.set(3, Value::null());
  M.collect(false);
  Value Child = Mutator::getField(F.get(1), 0);
  ASSERT_FALSE(Child.isNull());
  EXPECT_EQ(headInt(Child), 31337);
  // The retained prefix survived every slide and rebind too.
  EXPECT_GE(mllib::length(F.get(2)), 2000u);
}

namespace {

class CrossingMapParallel : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(CrossingMapParallel, PromotionMaintainsMapUnderParallelEvacuation) {
  // Parallel evacuation promotes with per-worker copy blocks and pad
  // fillers; every dirty card over that layout must still resolve to an
  // object start (the debug scan asserts on Unknown below the frontier).
  MutatorConfig C;
  C.BudgetBytes = 16u << 20;
  C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
  C.GcThreads = GetParam();
  C.VerifyLevel = 2;
  Mutator M(C);
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  Frame F(M, cmKey());

  // A promoted list of pointer-headed cells (head starts null).
  F.set(1, Value::null());
  F.set(3, Value::null());
  for (int I = 0; I < 20000; ++I)
    F.set(1, consPtr(M, cmSite(), slot(F, 3), slot(F, 1)));
  M.collect(false);
  ASSERT_TRUE(GC.inTenured(F.get(1).asPtr()));

  // Dirty many scattered cards: hang a fresh young child off every 97th
  // cell, then drop all stack paths to the children.
  int Hung = 0;
  {
    Value P = F.get(1);
    for (int I = 0; !P.isNull(); P = tail(P), ++I) {
      if (I % 97 == 0) {
        F.set(2, P); // P survives the allocation below via the slot.
        F.set(3, consInt(M, cmSite(), 1000 + I, slot(F, 4)));
        P = F.get(2);
        M.writeField(P, 0, F.get(3), /*IsPointerField=*/true);
        ++Hung;
      }
    }
  }
  F.set(2, Value::null());
  F.set(3, Value::null());
  ASSERT_GT(GC.cardTable().numDirtyCards(), 8u);
  M.collect(false);

  // Every child survived through its card alone, with its payload intact.
  int Found = 0;
  {
    int I = 0;
    for (Value P = F.get(1); !P.isNull(); P = tail(P), ++I) {
      Value H = head(P);
      if (I % 97 == 0) {
        ASSERT_FALSE(H.isNull()) << "child lost at cell " << I;
        EXPECT_EQ(headInt(H), 1000 + I);
        ++Found;
      } else {
        EXPECT_TRUE(H.isNull());
      }
    }
  }
  EXPECT_EQ(Found, Hung);
}

INSTANTIATE_TEST_SUITE_P(Threads, CrossingMapParallel,
                         ::testing::Values(2u, 8u));
