//===- tests/support_test.cpp - Support + verifier unit tests --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"
#include "support/Random.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace tilgc;

TEST(RandomTest, DeterministicAcrossInstances) {
  Rng A(123), B(123);
  for (int I = 0; I < 1000; ++I)
    ASSERT_EQ(A.next(), B.next());
}

TEST(RandomTest, BelowStaysInRange) {
  Rng R(7);
  for (int I = 0; I < 10000; ++I) {
    uint64_t V = R.below(17);
    ASSERT_LT(V, 17u);
  }
}

TEST(RandomTest, RangeIsInclusive) {
  Rng R(7);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 10000; ++I) {
    int64_t V = R.range(-2, 2);
    ASSERT_GE(V, -2);
    ASSERT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, RealInUnitInterval) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double D = R.real();
    ASSERT_GE(D, 0.0);
    ASSERT_LT(D, 1.0);
  }
}

TEST(FormatTest, Helpers) {
  EXPECT_EQ(formatSeconds(1.234), "1.23");
  EXPECT_EQ(formatBytes(1048576), "1048576");
  EXPECT_EQ(formatBytesHuman(512), "0KB");
  EXPECT_EQ(formatBytesHuman(2048), "2KB");
  EXPECT_EQ(formatBytesHuman(3 * 1024 * 1024), "3.0MB");
  EXPECT_EQ(formatBytesHuman(64u << 20), "64MB");
  EXPECT_EQ(formatPercent(0.5), "50.00%");
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
}

TEST(TimerTest, AccumulatesAcrossStartStop) {
  Timer T;
  T.start();
  T.stop();
  double First = T.seconds();
  T.start();
  T.stop();
  EXPECT_GE(T.seconds(), First);
  T.reset();
  EXPECT_EQ(T.seconds(), 0.0);
}

TEST(TimerTest, PauseExcludesRegion) {
  Timer T;
  T.start();
  {
    TimerPause P(T);
    EXPECT_FALSE(T.isRunning());
  }
  EXPECT_TRUE(T.isRunning());
  T.stop();
}

TEST(HeapVerifierTest, AcceptsAWellFormedSpace) {
  Space S;
  S.reserve(4096);
  Word *A = S.allocate(header::make(ObjectKind::Record, 2, 0b10), 0);
  Word *B = S.allocate(header::make(ObjectKind::Record, 1, 0), 0);
  A[0] = 5;
  A[1] = reinterpret_cast<Word>(B);
  B[0] = 6;

  HeapVerifier V;
  V.addSpace(&S, "test");
  std::string Error;
  EXPECT_TRUE(V.verifyHeap(Error)) << Error;
}

TEST(HeapVerifierTest, RejectsWildPointer) {
  Space S;
  S.reserve(4096);
  Word *A = S.allocate(header::make(ObjectKind::Record, 1, 0b1), 0);
  alignas(8) static Word Outside[4] = {};
  A[0] = reinterpret_cast<Word>(&Outside[2]);

  HeapVerifier V;
  V.addSpace(&S, "test");
  std::string Error;
  EXPECT_FALSE(V.verifyHeap(Error));
  EXPECT_NE(Error.find("outside the live heap"), std::string::npos) << Error;
}

TEST(HeapVerifierTest, RejectsMisalignedPointer) {
  Space S;
  S.reserve(4096);
  Word *A = S.allocate(header::make(ObjectKind::Record, 1, 0b1), 0);
  A[0] = reinterpret_cast<Word>(A) + 1;

  HeapVerifier V;
  V.addSpace(&S, "test");
  std::string Error;
  EXPECT_FALSE(V.verifyHeap(Error));
  EXPECT_NE(Error.find("misaligned"), std::string::npos) << Error;
}

TEST(HeapVerifierTest, RejectsPointerToForwardedObject) {
  Space S, To;
  S.reserve(4096);
  To.reserve(4096);
  Word *A = S.allocate(header::make(ObjectKind::Record, 1, 0b1), 0);
  Word *B = S.allocate(header::make(ObjectKind::Record, 1, 0), 0);
  Word *BMoved = To.allocate(header::make(ObjectKind::Record, 1, 0), 0);
  A[0] = reinterpret_cast<Word>(B);
  descriptorOf(B) = header::makeForward(BMoved);

  // Only S is "live": A's field still points at the forwarded B.
  HeapVerifier V;
  V.addSpace(&S, "test");
  std::string Error;
  EXPECT_FALSE(V.verifyHeap(Error));
}
