
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/evacuator_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/evacuator_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/evacuator_test.cpp.o.d"
  "/root/repo/tests/gc_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/gc_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/gc_test.cpp.o.d"
  "/root/repo/tests/heap_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/heap_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/heap_test.cpp.o.d"
  "/root/repo/tests/marker_edge_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/marker_edge_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/marker_edge_test.cpp.o.d"
  "/root/repo/tests/mutator_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/mutator_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/mutator_test.cpp.o.d"
  "/root/repo/tests/object_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/object_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/object_test.cpp.o.d"
  "/root/repo/tests/profile_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/profile_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/profile_test.cpp.o.d"
  "/root/repo/tests/stack_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/stack_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/stack_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/torture_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/torture_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/torture_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/tilgc_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/tilgc_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tilgc.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/tilgc_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
