file(REMOVE_RECURSE
  "CMakeFiles/tilgc_tests.dir/evacuator_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/evacuator_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/gc_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/gc_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/heap_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/heap_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/marker_edge_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/marker_edge_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/mutator_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/mutator_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/object_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/object_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/profile_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/profile_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/stack_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/stack_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/support_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/support_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/torture_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/torture_test.cpp.o.d"
  "CMakeFiles/tilgc_tests.dir/workload_test.cpp.o"
  "CMakeFiles/tilgc_tests.dir/workload_test.cpp.o.d"
  "tilgc_tests"
  "tilgc_tests.pdb"
  "tilgc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilgc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
