# Empty dependencies file for tilgc_tests.
# This may be replaced when dependencies are built.
