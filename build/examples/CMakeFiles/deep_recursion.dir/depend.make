# Empty dependencies file for deep_recursion.
# This may be replaced when dependencies are built.
