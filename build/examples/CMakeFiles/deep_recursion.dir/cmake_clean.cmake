file(REMOVE_RECURSE
  "CMakeFiles/deep_recursion.dir/deep_recursion.cpp.o"
  "CMakeFiles/deep_recursion.dir/deep_recursion.cpp.o.d"
  "deep_recursion"
  "deep_recursion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_recursion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
