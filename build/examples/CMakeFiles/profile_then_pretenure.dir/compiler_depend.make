# Empty compiler generated dependencies file for profile_then_pretenure.
# This may be replaced when dependencies are built.
