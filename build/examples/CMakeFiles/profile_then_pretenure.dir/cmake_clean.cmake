file(REMOVE_RECURSE
  "CMakeFiles/profile_then_pretenure.dir/profile_then_pretenure.cpp.o"
  "CMakeFiles/profile_then_pretenure.dir/profile_then_pretenure.cpp.o.d"
  "profile_then_pretenure"
  "profile_then_pretenure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_then_pretenure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
