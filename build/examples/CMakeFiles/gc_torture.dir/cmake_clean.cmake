file(REMOVE_RECURSE
  "CMakeFiles/gc_torture.dir/gc_torture.cpp.o"
  "CMakeFiles/gc_torture.dir/gc_torture.cpp.o.d"
  "gc_torture"
  "gc_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
