# Empty dependencies file for gc_torture.
# This may be replaced when dependencies are built.
