# Empty dependencies file for table6_pretenuring.
# This may be replaced when dependencies are built.
