file(REMOVE_RECURSE
  "CMakeFiles/table6_pretenuring.dir/table6_pretenuring.cpp.o"
  "CMakeFiles/table6_pretenuring.dir/table6_pretenuring.cpp.o.d"
  "table6_pretenuring"
  "table6_pretenuring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_pretenuring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
