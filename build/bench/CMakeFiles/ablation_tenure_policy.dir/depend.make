# Empty dependencies file for ablation_tenure_policy.
# This may be replaced when dependencies are built.
