file(REMOVE_RECURSE
  "CMakeFiles/ablation_tenure_policy.dir/ablation_tenure_policy.cpp.o"
  "CMakeFiles/ablation_tenure_policy.dir/ablation_tenure_policy.cpp.o.d"
  "ablation_tenure_policy"
  "ablation_tenure_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tenure_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
