# Empty dependencies file for table2_allocation.
# This may be replaced when dependencies are built.
