file(REMOVE_RECURSE
  "CMakeFiles/table2_allocation.dir/table2_allocation.cpp.o"
  "CMakeFiles/table2_allocation.dir/table2_allocation.cpp.o.d"
  "table2_allocation"
  "table2_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
