file(REMOVE_RECURSE
  "CMakeFiles/table4_generational.dir/table4_generational.cpp.o"
  "CMakeFiles/table4_generational.dir/table4_generational.cpp.o.d"
  "table4_generational"
  "table4_generational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_generational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
