# Empty dependencies file for table4_generational.
# This may be replaced when dependencies are built.
