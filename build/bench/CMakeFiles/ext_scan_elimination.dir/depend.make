# Empty dependencies file for ext_scan_elimination.
# This may be replaced when dependencies are built.
