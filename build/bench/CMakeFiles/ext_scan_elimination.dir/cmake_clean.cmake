file(REMOVE_RECURSE
  "CMakeFiles/ext_scan_elimination.dir/ext_scan_elimination.cpp.o"
  "CMakeFiles/ext_scan_elimination.dir/ext_scan_elimination.cpp.o.d"
  "ext_scan_elimination"
  "ext_scan_elimination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scan_elimination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
