file(REMOVE_RECURSE
  "CMakeFiles/table3_semispace.dir/table3_semispace.cpp.o"
  "CMakeFiles/table3_semispace.dir/table3_semispace.cpp.o.d"
  "table3_semispace"
  "table3_semispace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_semispace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
