# Empty compiler generated dependencies file for table3_semispace.
# This may be replaced when dependencies are built.
