# Empty compiler generated dependencies file for table7_relative.
# This may be replaced when dependencies are built.
