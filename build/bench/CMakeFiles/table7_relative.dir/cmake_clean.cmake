file(REMOVE_RECURSE
  "CMakeFiles/table7_relative.dir/table7_relative.cpp.o"
  "CMakeFiles/table7_relative.dir/table7_relative.cpp.o.d"
  "table7_relative"
  "table7_relative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_relative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
