file(REMOVE_RECURSE
  "../lib/libtilgc_bench_harness.a"
  "../lib/libtilgc_bench_harness.pdb"
  "CMakeFiles/tilgc_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/tilgc_bench_harness.dir/Harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilgc_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
