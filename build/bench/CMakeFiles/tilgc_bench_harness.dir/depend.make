# Empty dependencies file for tilgc_bench_harness.
# This may be replaced when dependencies are built.
