file(REMOVE_RECURSE
  "../lib/libtilgc_bench_harness.a"
)
