# Empty compiler generated dependencies file for ablation_marker_period.
# This may be replaced when dependencies are built.
