file(REMOVE_RECURSE
  "CMakeFiles/ablation_marker_period.dir/ablation_marker_period.cpp.o"
  "CMakeFiles/ablation_marker_period.dir/ablation_marker_period.cpp.o.d"
  "ablation_marker_period"
  "ablation_marker_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_marker_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
