# Empty compiler generated dependencies file for table5_stack_markers.
# This may be replaced when dependencies are built.
