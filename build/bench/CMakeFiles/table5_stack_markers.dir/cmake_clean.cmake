file(REMOVE_RECURSE
  "CMakeFiles/table5_stack_markers.dir/table5_stack_markers.cpp.o"
  "CMakeFiles/table5_stack_markers.dir/table5_stack_markers.cpp.o.d"
  "table5_stack_markers"
  "table5_stack_markers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_stack_markers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
