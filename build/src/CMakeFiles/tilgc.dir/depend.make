# Empty dependencies file for tilgc.
# This may be replaced when dependencies are built.
