
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/Collector.cpp" "src/CMakeFiles/tilgc.dir/gc/Collector.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/gc/Collector.cpp.o.d"
  "/root/repo/src/gc/Evacuator.cpp" "src/CMakeFiles/tilgc.dir/gc/Evacuator.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/gc/Evacuator.cpp.o.d"
  "/root/repo/src/gc/GenerationalCollector.cpp" "src/CMakeFiles/tilgc.dir/gc/GenerationalCollector.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/gc/GenerationalCollector.cpp.o.d"
  "/root/repo/src/gc/HeapVerifier.cpp" "src/CMakeFiles/tilgc.dir/gc/HeapVerifier.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/gc/HeapVerifier.cpp.o.d"
  "/root/repo/src/gc/SemispaceCollector.cpp" "src/CMakeFiles/tilgc.dir/gc/SemispaceCollector.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/gc/SemispaceCollector.cpp.o.d"
  "/root/repo/src/heap/LargeObjectSpace.cpp" "src/CMakeFiles/tilgc.dir/heap/LargeObjectSpace.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/heap/LargeObjectSpace.cpp.o.d"
  "/root/repo/src/heap/Space.cpp" "src/CMakeFiles/tilgc.dir/heap/Space.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/heap/Space.cpp.o.d"
  "/root/repo/src/profile/AllocSite.cpp" "src/CMakeFiles/tilgc.dir/profile/AllocSite.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/profile/AllocSite.cpp.o.d"
  "/root/repo/src/profile/HeapProfiler.cpp" "src/CMakeFiles/tilgc.dir/profile/HeapProfiler.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/profile/HeapProfiler.cpp.o.d"
  "/root/repo/src/runtime/Mutator.cpp" "src/CMakeFiles/tilgc.dir/runtime/Mutator.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/runtime/Mutator.cpp.o.d"
  "/root/repo/src/stack/ShadowStack.cpp" "src/CMakeFiles/tilgc.dir/stack/ShadowStack.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/stack/ShadowStack.cpp.o.d"
  "/root/repo/src/stack/StackScanner.cpp" "src/CMakeFiles/tilgc.dir/stack/StackScanner.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/stack/StackScanner.cpp.o.d"
  "/root/repo/src/stack/TraceTable.cpp" "src/CMakeFiles/tilgc.dir/stack/TraceTable.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/stack/TraceTable.cpp.o.d"
  "/root/repo/src/support/Table.cpp" "src/CMakeFiles/tilgc.dir/support/Table.cpp.o" "gcc" "src/CMakeFiles/tilgc.dir/support/Table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
