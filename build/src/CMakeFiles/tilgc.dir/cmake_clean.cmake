file(REMOVE_RECURSE
  "CMakeFiles/tilgc.dir/gc/Collector.cpp.o"
  "CMakeFiles/tilgc.dir/gc/Collector.cpp.o.d"
  "CMakeFiles/tilgc.dir/gc/Evacuator.cpp.o"
  "CMakeFiles/tilgc.dir/gc/Evacuator.cpp.o.d"
  "CMakeFiles/tilgc.dir/gc/GenerationalCollector.cpp.o"
  "CMakeFiles/tilgc.dir/gc/GenerationalCollector.cpp.o.d"
  "CMakeFiles/tilgc.dir/gc/HeapVerifier.cpp.o"
  "CMakeFiles/tilgc.dir/gc/HeapVerifier.cpp.o.d"
  "CMakeFiles/tilgc.dir/gc/SemispaceCollector.cpp.o"
  "CMakeFiles/tilgc.dir/gc/SemispaceCollector.cpp.o.d"
  "CMakeFiles/tilgc.dir/heap/LargeObjectSpace.cpp.o"
  "CMakeFiles/tilgc.dir/heap/LargeObjectSpace.cpp.o.d"
  "CMakeFiles/tilgc.dir/heap/Space.cpp.o"
  "CMakeFiles/tilgc.dir/heap/Space.cpp.o.d"
  "CMakeFiles/tilgc.dir/profile/AllocSite.cpp.o"
  "CMakeFiles/tilgc.dir/profile/AllocSite.cpp.o.d"
  "CMakeFiles/tilgc.dir/profile/HeapProfiler.cpp.o"
  "CMakeFiles/tilgc.dir/profile/HeapProfiler.cpp.o.d"
  "CMakeFiles/tilgc.dir/runtime/Mutator.cpp.o"
  "CMakeFiles/tilgc.dir/runtime/Mutator.cpp.o.d"
  "CMakeFiles/tilgc.dir/stack/ShadowStack.cpp.o"
  "CMakeFiles/tilgc.dir/stack/ShadowStack.cpp.o.d"
  "CMakeFiles/tilgc.dir/stack/StackScanner.cpp.o"
  "CMakeFiles/tilgc.dir/stack/StackScanner.cpp.o.d"
  "CMakeFiles/tilgc.dir/stack/TraceTable.cpp.o"
  "CMakeFiles/tilgc.dir/stack/TraceTable.cpp.o.d"
  "CMakeFiles/tilgc.dir/support/Table.cpp.o"
  "CMakeFiles/tilgc.dir/support/Table.cpp.o.d"
  "libtilgc.a"
  "libtilgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
