file(REMOVE_RECURSE
  "libtilgc.a"
)
