# Empty dependencies file for tilgc_workloads.
# This may be replaced when dependencies are built.
