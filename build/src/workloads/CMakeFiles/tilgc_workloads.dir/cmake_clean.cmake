file(REMOVE_RECURSE
  "CMakeFiles/tilgc_workloads.dir/Checksum.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Checksum.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Color.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Color.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/FFT.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/FFT.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Grobner.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Grobner.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/KnuthBendix.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/KnuthBendix.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Lexgen.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Lexgen.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Life.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Life.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/MLLib.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/MLLib.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Nqueen.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Nqueen.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/PIA.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/PIA.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Peg.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Peg.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Registry.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/tilgc_workloads.dir/Simple.cpp.o"
  "CMakeFiles/tilgc_workloads.dir/Simple.cpp.o.d"
  "libtilgc_workloads.a"
  "libtilgc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilgc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
