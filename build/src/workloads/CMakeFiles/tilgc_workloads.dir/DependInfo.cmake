
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Checksum.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Checksum.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Checksum.cpp.o.d"
  "/root/repo/src/workloads/Color.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Color.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Color.cpp.o.d"
  "/root/repo/src/workloads/FFT.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/FFT.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/FFT.cpp.o.d"
  "/root/repo/src/workloads/Grobner.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Grobner.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Grobner.cpp.o.d"
  "/root/repo/src/workloads/KnuthBendix.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/KnuthBendix.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/KnuthBendix.cpp.o.d"
  "/root/repo/src/workloads/Lexgen.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Lexgen.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Lexgen.cpp.o.d"
  "/root/repo/src/workloads/Life.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Life.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Life.cpp.o.d"
  "/root/repo/src/workloads/MLLib.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/MLLib.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/MLLib.cpp.o.d"
  "/root/repo/src/workloads/Nqueen.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Nqueen.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Nqueen.cpp.o.d"
  "/root/repo/src/workloads/PIA.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/PIA.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/PIA.cpp.o.d"
  "/root/repo/src/workloads/Peg.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Peg.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Peg.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/Simple.cpp" "src/workloads/CMakeFiles/tilgc_workloads.dir/Simple.cpp.o" "gcc" "src/workloads/CMakeFiles/tilgc_workloads.dir/Simple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tilgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
