file(REMOVE_RECURSE
  "libtilgc_workloads.a"
)
