//===- bench/table6_pretenuring.cpp - Paper Table 6 --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 6: the generational collector with stack markers AND
// profile-driven pretenuring, for the four benchmarks whose heap profiles
// justify it (Knuth-Bendix, Lexgen, Nqueen, Simple), at k = 1.5, 2, 4.
// Each program is first profiled; sites with old% >= 80% are pretenured.
// Expected shapes: GC time drops (paper: 33%, 27%, 50%, 12%), copied bytes
// drop sharply, client time is roughly unchanged.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Table 6: markers + profile-driven pretenuring", Scale);

  const char *Targets[] = {"Knuth-Bendix", "Lexgen", "Nqueen", "Simple"};
  const double Ks[3] = {1.5, 2.0, 4.0};

  Table Times("Pretenuring: times and decreases (paper Table 6, top)");
  Times.setHeader({"Program", "Total k=1.5", "Total k=2", "Total k=4",
                   "GC k=1.5", "GC k=2", "GC k=4", "GC dec k=4",
                   "Client dec k=4", "Total dec k=4"});
  Table Space("Pretenuring: collections and copying (bottom)");
  Space.setHeader({"Program", "GCs k=1.5", "GCs k=2", "GCs k=4",
                   "Copied k=1.5", "Copied k=2", "Copied k=4",
                   "Copied dec k=4", "Pretenured k=4"});

  for (const char *Name : Targets) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    std::vector<PretenureDecision> Pretenure =
        profilePretenureSet(*W, Scale, /*KeepScanElimination=*/false);

    Measurement Base[3], Pre[3];
    for (int I = 0; I < 3; ++I) {
      MutatorConfig C =
          configFor(CollectorKind::Generational, Ks[I], *W, Scale);
      C.UseStackMarkers = true;
      Base[I] = runWorkloadAveraged(*W, C, Scale, Reps);
      C.Pretenure = Pretenure;
      Pre[I] = runWorkloadAveraged(*W, C, Scale, Reps);
    }
    auto Dec = [](double From, double To) {
      return From > 0 ? 100.0 * (From - To) / From : 0.0;
    };
    Times.addRow(
        {Name, checked(Pre[0], sec(Pre[0].TotalSec)),
         checked(Pre[1], sec(Pre[1].TotalSec)),
         checked(Pre[2], sec(Pre[2].TotalSec)), sec(Pre[0].GcSec),
         sec(Pre[1].GcSec), sec(Pre[2].GcSec),
         formatString("%.0f%%", Dec(Base[2].GcSec, Pre[2].GcSec)),
         formatString("%.0f%%", Dec(Base[2].ClientSec, Pre[2].ClientSec)),
         formatString("%.0f%%", Dec(Base[2].TotalSec, Pre[2].TotalSec))});
    Space.addRow(
        {Name, formatString("%llu", (unsigned long long)Pre[0].NumGC),
         formatString("%llu", (unsigned long long)Pre[1].NumGC),
         formatString("%llu", (unsigned long long)Pre[2].NumGC),
         formatBytes(Pre[0].BytesCopied), formatBytes(Pre[1].BytesCopied),
         formatBytes(Pre[2].BytesCopied),
         formatString("%.0f%%", Dec(static_cast<double>(Base[2].BytesCopied),
                                    static_cast<double>(Pre[2].BytesCopied))),
         formatBytesHuman(Pre[2].PretenuredBytes)});
  }
  Times.print(stdout);
  Space.print(stdout);
  std::printf("Decreases are relative to markers-only at the same k.\n");
  return 0;
}
