//===- bench/Harness.h - Shared experiment harness --------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared machinery for the table/figure benchmarks: timed workload runs,
/// the paper's k*Min memory-budget protocol ("we choose various multiples
/// (designated k) of this minimal value ... where the collector is
/// permitted k*Min memory", Min = 2 * max live data), and profile-derived
/// pretenure sets.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_BENCH_HARNESS_H
#define TILGC_BENCH_HARNESS_H

#include "workloads/Workload.h"

#include <cstdint>
#include <string>
#include <vector>

namespace tilgc {
namespace bench {

/// Everything a table column might need from one run.
struct Measurement {
  double TotalSec = 0;
  double GcSec = 0;
  double ClientSec = 0;
  double StackSec = 0;
  double CopySec = 0;
  uint64_t NumGC = 0;
  uint64_t NumMajorGC = 0;
  uint64_t BytesAllocated = 0;
  uint64_t RecordBytes = 0;
  uint64_t ArrayBytes = 0;
  uint64_t BytesCopied = 0;
  /// Bytes physically relocated by major collections alone (semispace: all
  /// copied bytes; mark-compact: slid runs + promotions only).
  uint64_t MajorBytesMoved = 0;
  uint64_t MaxLiveBytes = 0;
  /// Reserved-space high-water mark across the run (nursery + tenured
  /// space(s) + LOS): the standing-footprint cost of the collector mode.
  uint64_t MaxFootprintBytes = 0;
  uint64_t MaxFrames = 0;
  double AvgFrames = 0;
  double AvgNewFrames = 0;
  uint64_t FramesScanned = 0;
  uint64_t FramesReused = 0;
  uint64_t SSBProcessed = 0;
  /// Card-barrier columns (CardMarking/Hybrid; zero under pure SSB).
  uint64_t CardsScanned = 0;
  uint64_t CardSlotsVisited = 0;
  uint64_t CrossingMapUpdates = 0;
  uint64_t HybridSwitchEpoch = 0; ///< 0 = hybrid never degraded to cards.
  uint64_t PointerUpdates = 0;
  uint64_t PretenuredBytes = 0;
  uint64_t PretenuredScannedBytes = 0;
  uint64_t PretenuredSkippedBytes = 0;
  /// Pause-time percentiles from the collector's always-on histograms
  /// (microseconds; semispace collections all count as major). From the
  /// first run when averaging — percentile shape, not a mean.
  double MinorPauseP50Us = 0;
  double MinorPauseP99Us = 0;
  double MajorPauseP50Us = 0;
  double MajorPauseP99Us = 0;
  double MaxPauseUs = 0;
  bool Valid = false;
};

/// Runs \p W once under \p Config and validates the result.
Measurement runWorkload(Workload &W, const MutatorConfig &Config,
                        double Scale);

/// Runs \p W \p Repeats times and reports arithmetic-mean times (the
/// paper: "data from ten runs were collected and the arithmetic mean is
/// reported"); counters are deterministic and come from the first run.
Measurement runWorkloadAveraged(Workload &W, const MutatorConfig &Config,
                                double Scale, int Repeats);

/// Repeat count from argv ("--reps=N"); defaults to \p Default.
int repsFromArgs(int Argc, char **Argv, int Default);

/// The paper's Min: "twice the maximum amount of live data a program has
/// during execution". Measured with a semispace run (every collection is
/// full, so live data is sampled accurately); cached per (workload, scale).
uint64_t minBytesFor(Workload &W, double Scale);

/// A config implementing the k*Min protocol.
MutatorConfig configFor(CollectorKind Kind, double K, Workload &W,
                        double Scale);

/// Profiles \p W (one run with the heap profiler attached) and derives the
/// pretenure set at the paper's 80% old-fraction cutoff. When
/// \p KeepScanElimination is false, the §7.2 scan-elimination bits are
/// cleared (Table 6 measures pretenuring alone).
std::vector<PretenureDecision>
profilePretenureSet(Workload &W, double Scale, bool KeepScanElimination);

/// Scale from argv ("--scale=X" or a bare number); defaults to 1.0.
double scaleFromArgs(int Argc, char **Argv);

/// Prints the standard header line for a bench binary.
void printBanner(const char *Title, double Scale);

/// Machine/build metadata as a JSON object string (no trailing newline):
/// hardware concurrency, build type, pointer width. Benchmarks embed it in
/// their JSON output so results carry the context needed to judge them.
std::string machineMetaJson();

/// "12.3us"-style pause cell from a microseconds figure.
std::string pauseUs(double Us);

/// "0.123" helper used across tables.
std::string sec(double Seconds);

/// Flags an invalid (checksum-mismatched) run in a cell.
std::string checked(const Measurement &M, std::string Cell);

} // namespace bench
} // namespace tilgc

#endif // TILGC_BENCH_HARNESS_H
