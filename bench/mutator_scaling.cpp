//===- bench/mutator_scaling.cpp - Multi-mutator allocation scaling ---------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Beyond the paper: allocation-throughput scaling of the multi-mutator
// runtime (TLABs + stop-the-world safepoints) at 1/2/4/8 mutator threads,
// across both collectors and both major engines. Each thread runs a private
// instance of the Checksum workload; throughput is total allocated bytes
// over wall time, and validity means every thread computed the serial
// checksum. Emits BENCH_mutators.json for machine consumption.
//
// Speedups are only meaningful on a multi-core host: on a single CPU the
// mutator counts > 1 timeshare one core through the safepoint protocol, so
// expect flat-to-slower there, not scaling (speedup_reliable=false).
//
// --mutators=N restricts the sweep to a single thread count (CI smoke).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "runtime/MutatorGroup.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

using namespace tilgc;
using namespace tilgc::bench;

namespace {

struct EngineCase {
  const char *Name;
  CollectorKind Kind;
  GenerationalCollector::MajorGcKind Major;
};

struct Run {
  double WallSec = 0;
  uint64_t Bytes = 0;
  uint64_t NumGC = 0;
  uint64_t TlabRefills = 0;
  uint64_t TlabPadBytes = 0;
  uint64_t SafepointStops = 0;
  double SafepointWaitMs = 0;
  bool Valid = false;
};

Run runGroup(const EngineCase &E, unsigned Mutators, double Scale, int Reps) {
  std::unique_ptr<Workload> Ref = makeWorkloadByName("Checksum");
  uint64_t Want = Ref->expected(Scale);

  Run Best;
  for (int R = 0; R < Reps; ++R) {
    MutatorConfig C = configFor(E.Kind, 4.0, *Ref, Scale);
    C.Name = E.Name;
    C.MajorGc = E.Major;
    // The budget is shared: scale it with the thread count so per-thread
    // GC pressure matches the single-mutator baseline.
    C.BudgetBytes *= Mutators;

    Timer T;
    T.start();
    MutatorGroup G(C, Mutators);
    std::vector<uint64_t> Sums(Mutators, 0);
    G.run([&](Mutator &M, unsigned I) {
      std::unique_ptr<Workload> W = makeWorkloadByName("Checksum");
      Sums[I] = W->run(M, Scale);
    });
    T.stop();

    Run Res;
    Res.WallSec = T.seconds();
    const GcStats &S = G.gcStats();
    Res.Bytes = S.BytesAllocated;
    Res.NumGC = S.NumGC;
    Res.TlabRefills = S.TlabRefills;
    Res.TlabPadBytes = S.TlabPadBytes;
    Res.SafepointStops = S.SafepointStops;
    Res.SafepointWaitMs = static_cast<double>(S.SafepointWaitNs) / 1e6;
    Res.Valid = true;
    for (uint64_t Sum : Sums)
      Res.Valid = Res.Valid && Sum == Want;
    if (R == 0 || Res.WallSec < Best.WallSec)
      Best = Res;
  }
  return Best;
}

// The single-threaded paper runtime, no group, no TLABs: the reference
// against which the M=1 group run prices the TLAB fast path (descriptor
// check + bump through a thread-local block instead of a direct space
// bump).
double runSerialMbs(const EngineCase &E, double Scale, int Reps) {
  std::unique_ptr<Workload> Ref = makeWorkloadByName("Checksum");
  double Best = 0;
  for (int R = 0; R < Reps; ++R) {
    MutatorConfig C = configFor(E.Kind, 4.0, *Ref, Scale);
    C.Name = E.Name;
    C.MajorGc = E.Major;
    Timer T;
    T.start();
    Mutator M(C);
    std::unique_ptr<Workload> W = makeWorkloadByName("Checksum");
    (void)W->run(M, Scale);
    T.stop();
    double Mbs = T.seconds() > 0
                     ? static_cast<double>(M.gcStats().BytesAllocated) / 1e6 /
                           T.seconds()
                     : 0.0;
    if (Mbs > Best)
      Best = Mbs;
  }
  return Best;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  unsigned Only = 0;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--mutators=", 11) == 0)
      Only = static_cast<unsigned>(std::atoi(Argv[I] + 11));

  printBanner("Multi-mutator allocation scaling (beyond the paper), k = 4",
              Scale);
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("# Host has %u hardware thread(s); mutator counts above that\n"
              "# timeshare cores through the safepoint protocol — they\n"
              "# exercise the machinery, not scaling.\n\n",
              Cores);

  const EngineCase Cases[] = {
      {"gen-semispace-major", CollectorKind::Generational,
       GenerationalCollector::MajorGcKind::Semispace},
      {"gen-markcompact-major", CollectorKind::Generational,
       GenerationalCollector::MajorGcKind::MarkCompact},
      // MajorGc is ignored by the semispace collector; listed for the
      // record layout only.
      {"semispace", CollectorKind::Semispace,
       GenerationalCollector::MajorGcKind::Semispace},
  };
  const unsigned Muts[] = {1, 2, 4, 8};

  Table Times("Allocation throughput by mutator threads (MB/s, speedup vs 1)");
  Times.setHeader({"Engine", "Serial", "M=1", "M=2", "M=4", "M=8", "x2", "x4",
                   "x8", "Stops M=8"});

  std::FILE *Json = std::fopen("BENCH_mutators.json", "w");
  if (Json)
    std::fprintf(Json, "{\"meta\": %s,\n \"runs\": [\n",
                 machineMetaJson().c_str());
  bool FirstRecord = true;

  for (const EngineCase &E : Cases) {
    Run R[4];
    double Mbs[4] = {0, 0, 0, 0};
    // Serial reference only in full-sweep mode: the --mutators=N smoke is
    // about the group machinery, not the fast-path price.
    double SerialMbs = Only ? 0.0 : runSerialMbs(E, Scale, Reps);
    for (int I = 0; I < 4; ++I) {
      if (Only && Muts[I] != Only)
        continue;
      R[I] = runGroup(E, Muts[I], Scale, Reps);
      Mbs[I] = R[I].WallSec > 0
                   ? static_cast<double>(R[I].Bytes) / 1e6 / R[I].WallSec
                   : 0.0;
    }
    auto Speedup = [&](int I) {
      return Mbs[0] > 0 && Mbs[I] > 0 ? Mbs[I] / Mbs[0] : 0.0;
    };
    auto Cell = [&](int I) {
      if (Only && Muts[I] != Only)
        return std::string("-");
      std::string S = formatString("%.1f", Mbs[I]);
      return R[I].Valid ? S : S + " !";
    };
    Times.addRow({E.Name,
                  Only ? std::string("-") : formatString("%.1f", SerialMbs),
                  Cell(0), Cell(1), Cell(2), Cell(3),
                  formatString("%.2f", Speedup(1)),
                  formatString("%.2f", Speedup(2)),
                  formatString("%.2f", Speedup(3)),
                  formatString("%llu",
                               (unsigned long long)R[3].SafepointStops)});
    if (Json) {
      for (int I = 0; I < 4; ++I) {
        if (Only && Muts[I] != Only)
          continue;
        std::fprintf(
            Json,
            "%s  {\"engine\": \"%s\", \"mutators\": %u, \"k\": 4.0,\n"
            "   \"wall_sec\": %.6f, \"bytes_allocated\": %llu,\n"
            "   \"alloc_mb_per_sec\": %.2f, \"num_gc\": %llu,\n"
            "   \"tlab_refills\": %llu, \"tlab_pad_bytes\": %llu,\n"
            "   \"safepoint_stops\": %llu, \"safepoint_wait_ms\": %.3f,\n"
            "   \"speedup\": %.4f, \"speedup_reliable\": %s,\n"
            "   \"serial_mb_per_sec\": %.2f, \"valid\": %s}",
            FirstRecord ? "" : ",\n", E.Name, Muts[I], R[I].WallSec,
            (unsigned long long)R[I].Bytes, Mbs[I],
            (unsigned long long)R[I].NumGC,
            (unsigned long long)R[I].TlabRefills,
            (unsigned long long)R[I].TlabPadBytes,
            (unsigned long long)R[I].SafepointStops, R[I].SafepointWaitMs,
            Speedup(I),
            // More mutators than hardware threads timeshare cores; the
            // numbers exercise the protocol, not scaling.
            Cores != 0 && Muts[I] <= Cores ? "true" : "false", SerialMbs,
            R[I].Valid ? "true" : "false");
        FirstRecord = false;
      }
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]}\n");
    std::fclose(Json);
    std::printf("\nwrote BENCH_mutators.json\n");
  }
  Times.print(stdout);
  return 0;
}
