//===- bench/table4_generational.cpp - Paper Table 4 -------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 4: the generational collector at k = 1.5, 2 and 4.
// Expected shapes vs Table 3: generational wins broadly; Knuth-Bendix is
// k-insensitive (survivors stay live, no major collections); PIA improves
// sharply with k (its tenured data dies quickly); FFT's GC time nearly
// vanishes (large arrays sit in the mark-sweep space).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Table 4: generational collector, k in {1.5, 2, 4}", Scale);

  const double Ks[3] = {1.5, 2.0, 4.0};

  Table Times("Generational: times (paper Table 4, top)");
  Times.setHeader({"Program", "Total k=1.5", "Total k=2", "Total k=4",
                   "GC k=1.5", "GC k=2", "GC k=4", "Client k=1.5",
                   "Client k=2", "Client k=4"});
  Table Space("Generational: collections, copying, frame depth (bottom)");
  Space.setHeader({"Program", "GCs k=1.5", "GCs k=2", "GCs k=4",
                   "Majors k=4", "Copied k=1.5", "Copied k=2", "Copied k=4",
                   "Peak k=1.5", "Peak k=4",
                   "Avg Frames", "Minor p99 k=4", "Major p99 k=4"});

  for (const auto &W : allWorkloads()) {
    Measurement M[3];
    for (int I = 0; I < 3; ++I)
      M[I] = runWorkloadAveraged(
          *W, configFor(CollectorKind::Generational, Ks[I], *W, Scale),
          Scale, Reps);
    Times.addRow({W->name(), checked(M[0], sec(M[0].TotalSec)),
                  checked(M[1], sec(M[1].TotalSec)),
                  checked(M[2], sec(M[2].TotalSec)), sec(M[0].GcSec),
                  sec(M[1].GcSec), sec(M[2].GcSec), sec(M[0].ClientSec),
                  sec(M[1].ClientSec), sec(M[2].ClientSec)});
    Space.addRow({W->name(),
                  formatString("%llu", (unsigned long long)M[0].NumGC),
                  formatString("%llu", (unsigned long long)M[1].NumGC),
                  formatString("%llu", (unsigned long long)M[2].NumGC),
                  formatString("%llu", (unsigned long long)M[2].NumMajorGC),
                  formatBytes(M[0].BytesCopied), formatBytes(M[1].BytesCopied),
                  formatBytes(M[2].BytesCopied),
                  formatBytes(M[0].MaxFootprintBytes),
                  formatBytes(M[2].MaxFootprintBytes),
                  formatString("%.1f", M[2].AvgFrames),
                  pauseUs(M[2].MinorPauseP99Us),
                  pauseUs(M[2].MajorPauseP99Us)});
  }
  Times.print(stdout);
  Space.print(stdout);
  return 0;
}
