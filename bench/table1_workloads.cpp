//===- bench/table1_workloads.cpp - Paper Table 1 --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 1: the benchmark catalogue. Our "lines" column reports
// both the original SML program's size (from the paper) and this
// reproduction's C++ translation-unit size is left to `wc` — the paper
// column is what the table carried.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Table 1: benchmark programs", Scale);

  Table T("Benchmark programs (paper Table 1)");
  T.setHeader({"Program", "paper lines", "Description"});
  for (const auto &W : allWorkloads())
    T.addRow({W->name(), formatString("%u", W->paperLines()),
              W->description()});
  T.print(stdout);
  return 0;
}
