//===- bench/pause_budget.cpp - Pause-budget SLO compliance ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Beyond the paper: the pause-budget mode (Options::MaxPauseMicros) slices
// MarkCompact's mark phase into allocation-safepoint increments, trading a
// little float for a bounded major-GC p99. This bench is the SLO gate: for
// every workload x mutator count x budget it runs the workload under the
// budget and reports the major-track pause percentiles (slices, plus the
// rare stop-the-world finish, all land in the Major histogram — the p99 is
// over exactly the pauses a latency-sensitive client would see).
//
// Emits BENCH_pause.json; CI asserts p99_ns <= budget_ns for every gated
// record. Single-mutator records are gated — that is the configuration the
// SLO is defined over. Multi-mutator records are reported but ungated:
// under MutatorGroup every collection (slice or not) runs inside a
// stop-the-world rendezvous, so the recorded pause is dominated by
// time-to-safepoint — how long the slowest thread takes to reach a poll
// point — which no amount of mark slicing can bound (FFT's long
// poll-free array loops already push the *stock* multi-mutator p99 to
// tens of milliseconds). The zero-budget baseline column shows what the
// same heap pays for monolithic majors, i.e. what the budget bought.
//
// --mutators=N restricts the sweep to one mutator count (CI smoke).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "gc/GenerationalCollector.h"
#include "observe/GcTelemetry.h"
#include "runtime/MutatorGroup.h"
#include "support/Table.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace tilgc;
using namespace tilgc::bench;

namespace {

struct Run {
  double WallSec = 0;
  uint64_t P50Ns = 0;
  uint64_t P99Ns = 0;
  uint64_t MaxNs = 0;
  uint64_t NumMajor = 0;
  uint64_t Cycles = 0;
  uint64_t Slices = 0;
  bool Valid = false;
};

Run harvest(Mutator &M, double WallSec, bool Valid) {
  Run R;
  R.WallSec = WallSec;
  const PauseHistogram &H = M.telemetry().histogram(GcGeneration::Major);
  R.P50Ns = H.p50Ns();
  R.P99Ns = H.p99Ns();
  R.MaxNs = H.maxNs();
  R.NumMajor = M.gcStats().NumMajorGC;
  auto &GC = static_cast<GenerationalCollector &>(M.collector());
  R.Cycles = GC.incrementalCycles();
  R.Slices = GC.incrementalSlices();
  R.Valid = Valid;
  return R;
}

Run runCase(Workload &W, unsigned Mutators, uint32_t BudgetUs, double Scale) {
  // The paper's k*Min protocol at the standard k = 4.0 (the same multiple
  // the other beyond-the-paper benches use). Majors still happen — the
  // incremental cycles need real tenured pressure — but the heap is not so
  // tight that a full collection fires every few nursery-loads: under that
  // regime finishes are a double-digit percentage of all major-track
  // pauses and no slicing policy can keep the p99 on a slice.
  MutatorConfig C = configFor(CollectorKind::Generational, 4.0, W, Scale);
  C.Name = W.name();
  C.MajorGc = GenerationalCollector::MajorGcKind::MarkCompact;
  C.MaxPauseMicros = BudgetUs;
  uint64_t Want = W.expected(Scale);

  if (Mutators == 1) {
    // The gated configuration: the plain single-mutator runtime, where
    // slices fire straight from the allocation slow path.
    Timer T;
    T.start();
    Mutator M(C);
    uint64_t Sum = W.run(M, Scale);
    T.stop();
    return harvest(M, T.seconds(), Sum == Want);
  }

  // Shared budget scales with the thread count so per-thread GC pressure
  // matches the single-mutator run (the mutator_scaling convention).
  C.BudgetBytes *= Mutators;
  Timer T;
  T.start();
  MutatorGroup G(C, Mutators);
  std::vector<uint64_t> Sums(Mutators, 0);
  G.run([&](Mutator &M, unsigned I) {
    std::unique_ptr<Workload> Private = makeWorkloadByName(W.name());
    Sums[I] = Private->run(M, Scale);
  });
  T.stop();
  bool Valid = true;
  for (uint64_t Sum : Sums)
    Valid = Valid && Sum == Want;
  return harvest(G.mutator(0), T.seconds(), Valid);
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  unsigned Only = 0;
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--mutators=", 11) == 0)
      Only = static_cast<unsigned>(std::atoi(Argv[I] + 11));

  printBanner("Pause-budget SLO: major-GC p99 vs MaxPauseMicros, k = 4.0",
              Scale);

  const uint32_t BudgetsUs[] = {200, 1000};
  const unsigned Muts[] = {1, 2, 8};

  Table Tab("Major-track pause p99 (us) by budget and mutator count");
  Tab.setHeader({"Workload", "M", "stock p99", "b=200us p99", "b=1000us p99",
                 "cycles", "slices"});

  std::FILE *Json = std::fopen("BENCH_pause.json", "w");
  if (Json)
    std::fprintf(Json, "{\"meta\": %s,\n \"runs\": [\n",
                 machineMetaJson().c_str());
  bool FirstRecord = true;
  unsigned Violations = 0;

  for (const std::unique_ptr<Workload> &WP : allWorkloads()) {
    Workload &W = *WP;
    for (unsigned M : Muts) {
      if (Only && M != Only)
        continue;
      // Stock baseline (budget 0): the monolithic-major p99 this heap pays
      // without the SLO mode. Reported for the table, never gated.
      Run Stock = runCase(W, M, 0, Scale);
      Run Budgeted[2];
      for (int B = 0; B < 2; ++B) {
        Budgeted[B] = runCase(W, M, BudgetsUs[B], Scale);
        uint64_t BudgetNs = static_cast<uint64_t>(BudgetsUs[B]) * 1000;
        bool Gated = M == 1;
        if (Gated && Budgeted[B].P99Ns > BudgetNs)
          ++Violations;
        if (Json) {
          std::fprintf(
              Json,
              "%s  {\"workload\": \"%s\", \"mutators\": %u, \"k\": 4.0,\n"
              "   \"gated\": %s, \"budget_us\": %u, \"budget_ns\": %llu,\n"
              "   \"p50_ns\": %llu, \"p99_ns\": %llu, \"max_pause_ns\": "
              "%llu,\n"
              "   \"stock_p99_ns\": %llu, \"num_major\": %llu,\n"
              "   \"cycles\": %llu, \"slices\": %llu,\n"
              "   \"wall_sec\": %.6f, \"valid\": %s}",
              FirstRecord ? "" : ",\n", W.name(), M, Gated ? "true" : "false",
              BudgetsUs[B], (unsigned long long)BudgetNs,
              (unsigned long long)Budgeted[B].P50Ns,
              (unsigned long long)Budgeted[B].P99Ns,
              (unsigned long long)Budgeted[B].MaxNs,
              (unsigned long long)Stock.P99Ns,
              (unsigned long long)Budgeted[B].NumMajor,
              (unsigned long long)Budgeted[B].Cycles,
              (unsigned long long)Budgeted[B].Slices, Budgeted[B].WallSec,
              Budgeted[B].Valid ? "true" : "false");
          FirstRecord = false;
        }
      }
      auto Cell = [](const Run &R) {
        std::string S = pauseUs(static_cast<double>(R.P99Ns) / 1e3);
        return R.Valid ? S : S + " !";
      };
      Tab.addRow({W.name(), formatString("%u", M), Cell(Stock),
                  Cell(Budgeted[0]), Cell(Budgeted[1]),
                  formatString("%llu",
                               (unsigned long long)Budgeted[0].Cycles),
                  formatString("%llu",
                               (unsigned long long)Budgeted[0].Slices)});
    }
  }

  if (Json) {
    std::fprintf(Json, "\n]}\n");
    std::fclose(Json);
    std::printf("wrote BENCH_pause.json\n");
  }
  Tab.print(stdout);
  if (Violations)
    std::printf(
        "\n%u gated record(s) exceeded their budget (p99_ns > budget_ns)\n",
        Violations);
  else
    std::printf("\nall gated records met their budget (p99_ns <= budget_ns)\n");
  return 0;
}
