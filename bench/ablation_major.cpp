//===- bench/ablation_major.cpp - Major-collection engines -------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Beyond the paper: the region-structured mark-compact major against the
// paper's evacuating semispace major, every workload at k = 4 —
//
//   semispace  the paper's engine: from/to tenured pair, every major
//              copies every live tenured byte, ~2x standing footprint;
//   compact    parallel mark + region-granular sliding compaction: one
//              standing tenured space, dense regions pinned in place,
//              only sparse regions' objects (and promotions) move.
//
// The claims this table substantiates: the compactor moves strictly fewer
// bytes per major and holds a strictly lower peak footprint, at the cost
// of marking work that shows up in major pause percentiles. Also emits
// BENCH_major.json for machine consumption. An optional bare workload-name
// argument restricts the run (CI smoke: ablation_major PIA --scale=0.1).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

#include <cctype>
#include <cstdio>
#include <cstring>

using namespace tilgc;
using namespace tilgc::bench;

namespace {

struct Engine {
  const char *Name;
  GenerationalCollector::MajorGcKind Kind;
};

constexpr Engine Engines[] = {
    {"semispace", GenerationalCollector::MajorGcKind::Semispace},
    {"compact", GenerationalCollector::MajorGcKind::MarkCompact},
};
constexpr int NumEngines = 2;

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  // A bare non-numeric argument names a single workload to run.
  const char *Only = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (Argv[I][0] != '-' &&
        !std::isdigit(static_cast<unsigned char>(Argv[I][0])))
      Only = Argv[I];
  printBanner("Ablation: major-collection engines (semispace/compact), "
              "k = 4",
              Scale);

  Table T("Major-GC engine ablation (beyond the paper)");
  T.setHeader({"Program", "majors ss", "majors mc", "moved ss", "moved mc",
               "moved", "peak ss", "peak mc", "peak", "major p99 ss",
               "major p99 mc"});

  std::FILE *Json = std::fopen("BENCH_major.json", "w");
  if (Json)
    std::fprintf(Json, "{\"meta\": %s,\n \"runs\": [\n",
                 machineMetaJson().c_str());
  bool FirstRecord = true;

  for (const auto &W : allWorkloads()) {
    if (Only && std::strcmp(Only, W->name()) != 0)
      continue;
    Measurement M[NumEngines];
    for (int I = 0; I < NumEngines; ++I) {
      MutatorConfig C =
          configFor(CollectorKind::Generational, 4.0, *W, Scale);
      C.MajorGc = Engines[I].Kind;
      M[I] = runWorkload(*W, C, Scale);
    }
    const Measurement &SS = M[0], &MC = M[1];
    auto Ratio = [](uint64_t Num, uint64_t Den) {
      return Den ? formatString("%.2fx", static_cast<double>(Num) /
                                             static_cast<double>(Den))
                 : std::string("-");
    };
    T.addRow({W->name(),
              formatString("%llu", (unsigned long long)SS.NumMajorGC),
              formatString("%llu", (unsigned long long)MC.NumMajorGC),
              checked(SS, formatBytes(SS.MajorBytesMoved)),
              checked(MC, formatBytes(MC.MajorBytesMoved)),
              Ratio(MC.MajorBytesMoved, SS.MajorBytesMoved),
              formatBytes(SS.MaxFootprintBytes),
              formatBytes(MC.MaxFootprintBytes),
              Ratio(MC.MaxFootprintBytes, SS.MaxFootprintBytes),
              pauseUs(SS.MajorPauseP99Us), pauseUs(MC.MajorPauseP99Us)});
    if (Json) {
      for (int I = 0; I < NumEngines; ++I) {
        std::fprintf(
            Json,
            "%s  {\"workload\": \"%s\", \"major_gc\": \"%s\", \"k\": 4.0,\n"
            "   \"gc_sec\": %.6f, \"total_sec\": %.6f,\n"
            "   \"num_gc\": %llu, \"num_major_gc\": %llu,\n"
            "   \"bytes_copied\": %llu, \"major_bytes_moved\": %llu,\n"
            "   \"max_live_bytes\": %llu, \"max_footprint_bytes\": %llu,\n"
            "   \"major_p50_us\": %.1f, \"major_p99_us\": %.1f,\n"
            "   \"valid\": %s}",
            FirstRecord ? "" : ",\n", W->name(), Engines[I].Name, M[I].GcSec,
            M[I].TotalSec, (unsigned long long)M[I].NumGC,
            (unsigned long long)M[I].NumMajorGC,
            (unsigned long long)M[I].BytesCopied,
            (unsigned long long)M[I].MajorBytesMoved,
            (unsigned long long)M[I].MaxLiveBytes,
            (unsigned long long)M[I].MaxFootprintBytes,
            M[I].MajorPauseP50Us, M[I].MajorPauseP99Us,
            M[I].Valid ? "true" : "false");
        FirstRecord = false;
      }
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]}\n");
    std::fclose(Json);
    std::printf("wrote BENCH_major.json\n");
  }
  T.print(stdout);
  std::printf("'moved' = bytes physically relocated by major collections "
              "(mc/ss ratio); 'peak' = reserved-footprint high-water mark. "
              "The compactor should move less and stand smaller.\n");
  return 0;
}
