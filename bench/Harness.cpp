//===- bench/Harness.cpp - Shared experiment harness -----------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

using namespace tilgc;
using namespace tilgc::bench;

Measurement bench::runWorkload(Workload &W, const MutatorConfig &Config,
                               double Scale) {
  Mutator M(Config);
  Timer Total;
  Total.start();
  uint64_t Got = W.run(M, Scale);
  Total.stop();

  Measurement R;
  const GcStats &S = M.gcStats();
  R.TotalSec = Total.seconds();
  R.GcSec = S.gcSeconds();
  R.ClientSec = R.TotalSec - R.GcSec;
  R.StackSec = S.stackSeconds();
  R.CopySec = S.copySeconds();
  R.NumGC = S.NumGC;
  R.NumMajorGC = S.NumMajorGC;
  R.BytesAllocated = S.BytesAllocated;
  R.RecordBytes = S.RecordBytesAllocated;
  R.ArrayBytes = S.ArrayBytesAllocated;
  R.BytesCopied = S.BytesCopied;
  R.MajorBytesMoved = S.MajorBytesMoved;
  R.MaxLiveBytes = S.MaxLiveBytes;
  R.MaxFootprintBytes = S.MaxFootprintBytes;
  R.MaxFrames = S.MaxFramesAtGC;
  R.AvgFrames = S.avgFramesAtGC();
  R.AvgNewFrames = S.avgNewFramesAtGC();
  R.FramesScanned = S.FramesScanned;
  R.FramesReused = S.FramesReused;
  R.SSBProcessed = S.SSBEntriesProcessed;
  R.CardsScanned = S.CardsScanned;
  R.CardSlotsVisited = S.CardSlotsVisited;
  R.CrossingMapUpdates = S.CrossingMapUpdates;
  R.HybridSwitchEpoch = S.HybridSwitchEpoch;
  R.PointerUpdates = M.pointerUpdates();
  R.PretenuredBytes = S.PretenuredBytes;
  R.PretenuredScannedBytes = S.PretenuredScannedBytes;
  R.PretenuredSkippedBytes = S.PretenuredScanSkippedBytes;
  const PauseHistogram &Minor =
      M.telemetry().histogram(GcGeneration::Minor);
  const PauseHistogram &Major =
      M.telemetry().histogram(GcGeneration::Major);
  R.MinorPauseP50Us = static_cast<double>(Minor.p50Ns()) / 1e3;
  R.MinorPauseP99Us = static_cast<double>(Minor.p99Ns()) / 1e3;
  R.MajorPauseP50Us = static_cast<double>(Major.p50Ns()) / 1e3;
  R.MajorPauseP99Us = static_cast<double>(Major.p99Ns()) / 1e3;
  R.MaxPauseUs =
      static_cast<double>(std::max(Minor.maxNs(), Major.maxNs())) / 1e3;
  R.Valid = Got == W.expected(Scale);
  return R;
}

Measurement bench::runWorkloadAveraged(Workload &W,
                                       const MutatorConfig &Config,
                                       double Scale, int Repeats) {
  Measurement Sum = runWorkload(W, Config, Scale);
  for (int R = 1; R < Repeats; ++R) {
    Measurement M = runWorkload(W, Config, Scale);
    Sum.TotalSec += M.TotalSec;
    Sum.GcSec += M.GcSec;
    Sum.ClientSec += M.ClientSec;
    Sum.StackSec += M.StackSec;
    Sum.CopySec += M.CopySec;
    Sum.Valid = Sum.Valid && M.Valid;
  }
  double Inv = 1.0 / Repeats;
  Sum.TotalSec *= Inv;
  Sum.GcSec *= Inv;
  Sum.ClientSec *= Inv;
  Sum.StackSec *= Inv;
  Sum.CopySec *= Inv;
  return Sum;
}

int bench::repsFromArgs(int Argc, char **Argv, int Default) {
  for (int I = 1; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--reps=", 7) == 0)
      return std::atoi(Argv[I] + 7);
  return Default;
}

uint64_t bench::minBytesFor(Workload &W, double Scale) {
  // Cache per (workload, scale).
  static std::map<std::pair<const Workload *, double>, uint64_t> Cache;
  auto Key = std::make_pair(static_cast<const Workload *>(&W), Scale);
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return It->second;

  // Semispace sized by a tight liveness target: every collection is full
  // and happens every ~2x-live bytes of allocation, so MaxLive is sampled
  // at a resolution proportional to the live set itself.
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 1u << 30;
  C.SemispaceTargetLiveness = 0.33;
  Mutator M(C);
  (void)W.run(M, Scale);
  uint64_t MaxLive = M.gcStats().MaxLiveBytes;
  if (MaxLive < 16u << 10)
    MaxLive = 16u << 10; // Floor: the paper's tiniest live sets are ~16KB.
  uint64_t Min = 2 * MaxLive;
  Cache.emplace(Key, Min);
  return Min;
}

MutatorConfig bench::configFor(CollectorKind Kind, double K, Workload &W,
                               double Scale) {
  MutatorConfig C;
  C.Kind = Kind;
  C.BudgetBytes =
      static_cast<size_t>(K * static_cast<double>(minBytesFor(W, Scale)));
  return C;
}

std::vector<PretenureDecision>
bench::profilePretenureSet(Workload &W, double Scale,
                           bool KeepScanElimination) {
  MutatorConfig C = configFor(CollectorKind::Generational, 4.0, W, Scale);
  C.EnableProfiling = true;
  Mutator M(C);
  (void)W.run(M, Scale);
  std::vector<PretenureDecision> Decisions =
      M.profiler()->derivePretenureSet(/*OldCutoff=*/0.8);
  if (!KeepScanElimination)
    for (PretenureDecision &D : Decisions)
      D.EliminateScan = false;
  return Decisions;
}

double bench::scaleFromArgs(int Argc, char **Argv) {
  for (int I = 1; I < Argc; ++I) {
    const char *Arg = Argv[I];
    if (std::strncmp(Arg, "--scale=", 8) == 0)
      return std::atof(Arg + 8);
    double V = std::atof(Arg);
    if (V > 0)
      return V;
  }
  // Default: large enough that per-collection times dominate timer noise.
  return 2.0;
}

void bench::printBanner(const char *Title, double Scale) {
  std::printf("### %s (scale %.2f)\n", Title, Scale);
  std::printf("# Reproduction of Cheng/Harper/Lee, PLDI'98. Absolute times\n"
              "# differ from the paper's DEC Alpha; the shapes are the\n"
              "# experiment. Memory protocol: budget = k * Min, Min = 2 *\n"
              "# max live data (measured by a calibration run).\n\n");
}

std::string bench::machineMetaJson() {
#ifdef TILGC_BUILD_TYPE
  const char *Build = TILGC_BUILD_TYPE[0] ? TILGC_BUILD_TYPE : "unspecified";
#else
  const char *Build = "unspecified";
#endif
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "{\"hardware_concurrency\": %u, \"build_type\": \"%s\", "
                "\"pointer_bits\": %u, \"asserts\": %s}",
                std::thread::hardware_concurrency(), Build,
                unsigned(sizeof(void *) * 8),
#ifdef NDEBUG
                "false"
#else
                "true"
#endif
  );
  return Buf;
}

std::string bench::pauseUs(double Us) {
  char Buf[32];
  if (Us >= 1000.0)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Us / 1000.0);
  else
    std::snprintf(Buf, sizeof(Buf), "%.0fus", Us);
  return Buf;
}

std::string bench::sec(double Seconds) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Seconds);
  return Buf;
}

std::string bench::checked(const Measurement &M, std::string Cell) {
  if (!M.Valid)
    Cell += " (!)";
  return Cell;
}
