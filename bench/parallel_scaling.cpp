//===- bench/parallel_scaling.cpp - Parallel evacuation scaling --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Beyond the paper: sweeps GcThreads over the Table-4 workloads (k = 4,
// generational collector) and reports the copy-phase and total-GC speedup
// of the work-stealing ParallelEvacuator against the serial engine. Also
// emits BENCH_parallel.json for machine consumption.
//
// Speedups are only meaningful on a multi-core host: on a single CPU the
// thread counts > 1 still exercise the full parallel protocol but timeshare
// one core, so expect slowdown there, not scaling.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

#include <cstdio>
#include <thread>

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Parallel evacuation scaling (beyond the paper), k = 4", Scale);
  unsigned Cores = std::thread::hardware_concurrency();
  std::printf("# Host has %u hardware thread(s); speedups above that count\n"
              "# (and all speedups on a 1-CPU host) measure timesharing\n"
              "# overhead of the parallel protocol, not scaling.\n\n",
              Cores);

  const unsigned Threads[] = {1, 2, 4, 8};
  constexpr int NumT = 4;

  Table Times("Copy-phase seconds by GcThreads (speedup vs serial)");
  Times.setHeader({"Program", "Copy T=1", "Copy T=2", "Copy T=4", "Copy T=8",
                   "GC T=1", "GC T=8", "Copy x2", "Copy x4", "Copy x8"});

  std::FILE *Json = std::fopen("BENCH_parallel.json", "w");
  if (Json)
    std::fprintf(Json, "{\"meta\": %s,\n \"runs\": [\n",
                 machineMetaJson().c_str());
  bool FirstRecord = true;

  for (const auto &W : allWorkloads()) {
    Measurement M[NumT];
    for (int I = 0; I < NumT; ++I) {
      MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W, Scale);
      C.GcThreads = Threads[I];
      M[I] = runWorkloadAveraged(*W, C, Scale, Reps);
    }
    auto Speedup = [&](int I) {
      return M[I].CopySec > 0 ? M[0].CopySec / M[I].CopySec : 0.0;
    };
    Times.addRow({W->name(), sec(M[0].CopySec), sec(M[1].CopySec),
                  sec(M[2].CopySec), checked(M[3], sec(M[3].CopySec)),
                  sec(M[0].GcSec), sec(M[3].GcSec),
                  formatString("%.2f", Speedup(1)),
                  formatString("%.2f", Speedup(2)),
                  formatString("%.2f", Speedup(3))});
    if (Json) {
      for (int I = 0; I < NumT; ++I) {
        std::fprintf(
            Json,
            "%s  {\"workload\": \"%s\", \"threads\": %u, \"k\": 4.0,\n"
            "   \"copy_sec\": %.6f, \"gc_sec\": %.6f, \"total_sec\": %.6f,\n"
            "   \"bytes_copied\": %llu, \"num_gc\": %llu,\n"
            "   \"minor_p99_us\": %.1f, \"major_p99_us\": %.1f,\n"
            "   \"copy_speedup\": %.4f, \"gc_speedup\": %.4f,"
            " \"speedup_reliable\": %s, \"valid\": %s}",
            FirstRecord ? "" : ",\n", W->name(), Threads[I],
            M[I].CopySec, M[I].GcSec, M[I].TotalSec,
            (unsigned long long)M[I].BytesCopied,
            (unsigned long long)M[I].NumGC,
            M[I].MinorPauseP99Us, M[I].MajorPauseP99Us,
            M[I].CopySec > 0 ? M[0].CopySec / M[I].CopySec : 0.0,
            M[I].GcSec > 0 ? M[0].GcSec / M[I].GcSec : 0.0,
            // Speedups measured with more workers than hardware threads
            // timeshare cores: they exercise the protocol, not scaling.
            Cores != 0 && Threads[I] <= Cores ? "true" : "false",
            M[I].Valid ? "true" : "false");
        FirstRecord = false;
      }
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]}\n");
    std::fclose(Json);
    std::printf("\nwrote BENCH_parallel.json\n");
  }
  Times.print(stdout);
  return 0;
}
