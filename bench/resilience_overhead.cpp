//===- bench/resilience_overhead.cpp - Resilience cost (google-benchmark) -===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Guardrail for the memory-pressure resilience machinery: the structured
// OOM ladder, the disarmed fault injector and VerifyLevel=0 must add
// nothing measurable to the allocation fast path or the collection loop,
// and the higher audit levels must have a knowable, bounded price. Run
// against micro_gc/micro_scan baselines after touching any of those paths;
// EXPERIMENTS.md records the reference numbers.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "support/FaultInjector.h"
#include "workloads/MLLib.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t site() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("resilience.site");
  return S;
}

uint32_t key() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "resilience.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

MutatorConfig config(unsigned VerifyLevel) {
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 8u << 20;
  C.NurseryLimitBytes = 256u << 10;
  C.VerifyLevel = VerifyLevel;
  return C;
}

/// The allocation fast path with the injector disarmed — the common case
/// every production allocation pays. Must match micro_gc's
/// BM_AllocRecordGenerational: the only new instructions are one relaxed
/// load + predicted-untaken branch per Space block handout, not per
/// allocation.
void BM_AllocDisarmedInjector(benchmark::State &State) {
  FaultInjector::global().reset();
  Mutator M(config(0));
  Frame F(M, key());
  for (auto _ : State) {
    F.set(1, M.allocRecord(site(), 2, 0b10));
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocDisarmedInjector);

/// The allocation fast path with the watchdog disarmed (deadline 0, the
/// default). Supervision must be free when it is off: the supervisor
/// thread is never started, arm()/disarm() are never called, and the
/// live-phase atomic is never stored. Any delta against
/// BM_AllocDisarmedInjector is a regression.
void BM_AllocDisarmedWatchdog(benchmark::State &State) {
  FaultInjector::global().reset();
  MutatorConfig C = config(0);
  C.GcDeadlineMicros = 0;        // Explicit: supervision disarmed.
  C.SafepointDeadlineMicros = 0;
  Mutator M(C);
  Frame F(M, key());
  for (auto _ : State) {
    F.set(1, M.allocRecord(site(), 2, 0b10));
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocDisarmedWatchdog);

/// Allocation churn with the GC-cycle watchdog armed at a generous
/// deadline that never expires: prices the per-collection arm/disarm pair
/// (one mutex lock + condvar notify each) and the relaxed live-phase
/// stores — nothing per allocation.
void BM_ChurnArmedWatchdog(benchmark::State &State) {
  MutatorConfig C = config(0);
  C.GcDeadlineMicros = static_cast<uint64_t>(State.range(0));
  Mutator M(C);
  Frame F(M, key());
  uint64_t I = 0;
  for (auto _ : State) {
    F.set(1, consInt(M, site(), static_cast<int64_t>(I), slot(F, 1)));
    if ((++I & 0x3FF) == 0)
      F.set(1, Value::null()); // Bound the live list; keep GCs minor-ish.
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ChurnArmedWatchdog)->Arg(0)->Arg(10000000);

/// Allocation churn with live data and periodic collections at each audit
/// level. Level 0 is the production configuration and the zero-overhead
/// guardrail; level 1 walks the heap after every GC; level 2 adds the
/// pre-minor remembered-set audit; level 3 adds from-space poisoning and
/// poison-integrity sweeps.
void BM_ChurnAtVerifyLevel(benchmark::State &State) {
  Mutator M(config(static_cast<unsigned>(State.range(0))));
  Frame F(M, key());
  uint64_t I = 0;
  for (auto _ : State) {
    F.set(1, consInt(M, site(), static_cast<int64_t>(I), slot(F, 1)));
    if ((++I & 0x3FF) == 0)
      F.set(1, Value::null()); // Bound the live list; keep GCs minor-ish.
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ChurnAtVerifyLevel)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

/// Full-collection cost at each audit level over a fixed retained graph —
/// isolates the per-GC verifier price from mutator noise.
void BM_MajorGcAtVerifyLevel(benchmark::State &State) {
  Mutator M(config(static_cast<unsigned>(State.range(0))));
  Frame F(M, key());
  for (int I = 0; I < 20000; ++I)
    F.set(1, consInt(M, site(), I, slot(F, 1)));
  for (auto _ : State)
    M.collect(/*Major=*/true);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_MajorGcAtVerifyLevel)->Arg(0)->Arg(1)->Arg(3);

/// The hard-cap pre-flight arithmetic, priced: same churn as level 0 but
/// with a (never-hit) hard limit installed, so every collection runs the
/// peak-footprint check.
void BM_ChurnWithHardLimit(benchmark::State &State) {
  MutatorConfig C = config(0);
  C.HardLimitBytes = 1u << 30; // Generous: the ladder never escalates.
  Mutator M(C);
  Frame F(M, key());
  uint64_t I = 0;
  for (auto _ : State) {
    F.set(1, consInt(M, site(), static_cast<int64_t>(I), slot(F, 1)));
    if ((++I & 0x3FF) == 0)
      F.set(1, Value::null());
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ChurnWithHardLimit);

} // namespace

int main(int Argc, char **Argv) {
  // Tolerate the harness-wide flags the table benches accept.
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--scale=", 8) == 0 ||
        std::strncmp(Argv[I], "--reps=", 7) == 0)
      continue;
    Args.push_back(Argv[I]);
  }
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
