//===- bench/table2_allocation.cpp - Paper Table 2 --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 2: allocation characteristics of the benchmarks —
// total allocation, max live data, record/array split, stack depth at
// collections (max and average), new frames per collection, and the
// number of barriered pointer updates. Measured under the generational
// collector at k = 4 (the configuration the paper instruments).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Table 2: allocation characteristics", Scale);

  Table T("Allocation characteristics (paper Table 2)");
  T.setHeader({"Program", "Total Alloc", "Max Live", "Records", "Arrays",
               "Max(Avg) Frames", "New Frames", "Ptr Updates"});
  for (const auto &W : allWorkloads()) {
    MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W, Scale);
    Measurement M = runWorkload(*W, C, Scale);
    uint64_t MaxLive = minBytesFor(*W, Scale) / 2;
    T.addRow({W->name(), checked(M, formatBytesHuman(M.BytesAllocated)),
              formatBytesHuman(MaxLive), formatBytesHuman(M.RecordBytes),
              formatBytesHuman(M.ArrayBytes),
              formatString("%llu(%.1f)",
                           static_cast<unsigned long long>(M.MaxFrames),
                           M.AvgFrames),
              formatString("%.1f", M.AvgNewFrames),
              formatString("%llu",
                           static_cast<unsigned long long>(M.PointerUpdates))});
  }
  T.print(stdout);
  return 0;
}
