//===- bench/ablation_tenure_policy.cpp - Tenure policy ablation -------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper (§7.2): "In some systems, objects in the nursery are not
// immediately promoted but are copied/compacted back to the nursery ...
// Since objects that are tenured are copied several times before being
// promoted, pretenuring in such systems is likely to yield an even greater
// benefit than in the system we studied." This ablation builds that
// system: an aged-tenuring policy (promote after N minor collections) and
// measures pretenuring's benefit under both policies.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Ablation: promote-all vs aged tenuring, +/- pretenuring, "
              "k = 4",
              Scale);

  Table T("Tenure-policy ablation (paper §7.2 prediction)");
  T.setHeader({"Program", "policy", "GC", "copied", "GC +pre", "copied +pre",
               "copied dec"});

  for (const char *Name : {"Knuth-Bendix", "Lexgen", "Nqueen", "Simple"}) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    std::vector<PretenureDecision> Pre =
        profilePretenureSet(*W, Scale, /*KeepScanElimination=*/false);

    for (unsigned Threshold : {1u, 2u, 3u}) {
      MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W,
                                  Scale);
      C.PromoteAgeThreshold = Threshold;
      Measurement A = runWorkload(*W, C, Scale);
      C.Pretenure = Pre;
      Measurement B = runWorkload(*W, C, Scale);
      double Dec =
          A.BytesCopied
              ? 100.0 * (static_cast<double>(A.BytesCopied) -
                         static_cast<double>(B.BytesCopied)) /
                    static_cast<double>(A.BytesCopied)
              : 0.0;
      T.addRow({Name,
                Threshold == 1 ? "promote-all"
                               : formatString("aged(%u)", Threshold),
                checked(A, sec(A.GcSec)), formatBytes(A.BytesCopied),
                checked(B, sec(B.GcSec)), formatBytes(B.BytesCopied),
                formatString("%.0f%%", Dec)});
    }
    T.addSeparator();
  }
  T.print(stdout);
  std::printf("Expected: the aged policies copy survivors repeatedly, so "
              "pretenuring removes more copying there (paper §7.2).\n");
  return 0;
}
