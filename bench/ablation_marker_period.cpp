//===- bench/ablation_marker_period.cpp - Marker period sweep ----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper: "n is a parameter best chosen to balance the gains of
// information reuse against the cost of the bookkeeping. ... Our tests use
// a value of n = 25." This ablation sweeps n over the deep-stack programs
// and reports GC time, the frame-reuse rate, and stub activity.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Ablation: stack-marker period n (paper §5), k = 4", Scale);

  const unsigned Periods[] = {5, 10, 25, 50, 100, 200};

  for (const char *Name : {"Knuth-Bendix", "Color", "Lexgen"}) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    Table T(formatString("%s: marker period sweep", Name));
    T.setHeader({"n", "GC", "stack", "frames scanned", "frames reused",
                 "reused%"});

    MutatorConfig Base = configFor(CollectorKind::Generational, 4.0, *W,
                                   Scale);
    Measurement Off = runWorkload(*W, Base, Scale);
    T.addRow({"off", checked(Off, sec(Off.GcSec)), sec(Off.StackSec),
              formatString("%llu", (unsigned long long)Off.FramesScanned),
              "0", "0.0%"});

    auto AddRow = [&](const char *Label, const MutatorConfig &C) {
      Measurement M = runWorkload(*W, C, Scale);
      double Reused =
          100.0 * static_cast<double>(M.FramesReused) /
          static_cast<double>(M.FramesReused + M.FramesScanned + 1);
      T.addRow({Label, checked(M, sec(M.GcSec)), sec(M.StackSec),
                formatString("%llu", (unsigned long long)M.FramesScanned),
                formatString("%llu", (unsigned long long)M.FramesReused),
                formatString("%.1f%%", Reused)});
    };
    for (unsigned N : Periods) {
      MutatorConfig C = Base;
      C.UseStackMarkers = true;
      C.MarkerPeriod = N;
      AddRow(formatString("%u", N).c_str(), C);
    }
    {
      // §7.1: "a more dynamic policy of marker placement".
      MutatorConfig C = Base;
      C.UseStackMarkers = true;
      C.AdaptiveMarkerPlacement = true;
      AddRow("adaptive", C);
    }
    T.print(stdout);
  }
  return 0;
}
