//===- bench/micro_gc.cpp - Microbenchmarks (google-benchmark) ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Microbenchmarks for the primitive costs behind the tables: allocation
// sequences, write-barrier flavors, and the stack-scan cost as a function
// of depth — with and without generational stack collection, which is the
// per-collection cost Table 5 aggregates.
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "workloads/MLLib.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t microSite() {
  static const uint32_t S = AllocSiteRegistry::global().define("micro.site");
  return S;
}

uint32_t microKey() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "micro.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

MutatorConfig genConfig() {
  MutatorConfig C;
  C.Kind = CollectorKind::Generational;
  C.BudgetBytes = 64u << 20;
  return C;
}

void BM_AllocRecordGenerational(benchmark::State &State) {
  Mutator M(genConfig());
  Frame F(M, microKey());
  for (auto _ : State) {
    F.set(1, M.allocRecord(microSite(), 2, 0b10));
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocRecordGenerational);

void BM_AllocRecordSemispace(benchmark::State &State) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 64u << 20;
  Mutator M(C);
  Frame F(M, microKey());
  for (auto _ : State) {
    F.set(1, M.allocRecord(microSite(), 2, 0b10));
    benchmark::DoNotOptimize(F.get(1).bits());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AllocRecordSemispace);

void BM_ConsCell(benchmark::State &State) {
  Mutator M(genConfig());
  Frame F(M, microKey());
  for (auto _ : State)
    F.set(1, consInt(M, microSite(), 42, slot(F, 2)));
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ConsCell);

template <GenerationalCollector::BarrierKind Kind>
void BM_WriteBarrier(benchmark::State &State) {
  MutatorConfig C = genConfig();
  C.Barrier = Kind;
  Mutator M(C);
  Frame F(M, microKey());
  // An old (promoted) target so the barrier has real work to remember.
  F.set(1, M.allocPtrArray(microSite(), 16));
  M.collect(false);
  uint32_t I = 0;
  for (auto _ : State) {
    M.writeField(F.get(1), I & 15, Value::null(), true);
    ++I;
    if ((I & 0xFFFF) == 0)
      M.collect(false); // Drain the remembered set periodically.
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(
    BM_WriteBarrier<GenerationalCollector::BarrierKind::SequentialStoreBuffer>)
    ->Name("BM_WriteBarrierSSB");
BENCHMARK(BM_WriteBarrier<GenerationalCollector::BarrierKind::CardMarking>)
    ->Name("BM_WriteBarrierCards");
BENCHMARK(
    BM_WriteBarrier<GenerationalCollector::BarrierKind::FilteredStoreBuffer>)
    ->Name("BM_WriteBarrierFilteredSSB");
// Note: the drain interval (64K stores) exceeds the hybrid flood threshold,
// so this measures the post-switch (card-mode) fast path after warmup.
BENCHMARK(BM_WriteBarrier<GenerationalCollector::BarrierKind::Hybrid>)
    ->Name("BM_WriteBarrierHybrid");

/// Copy-phase cost: a semispace collection copies the whole live list every
/// iteration, so this times the serial evacuator's hot loop (from-space
/// test + copy + scan) with nothing else in the way. The profiled variant
/// exercises the per-field profiler branch in the scan loop.
void evacuateLiveList(benchmark::State &State, bool Profiled) {
  MutatorConfig C;
  C.Kind = CollectorKind::Semispace;
  C.BudgetBytes = 64u << 20;
  C.EnableProfiling = Profiled;
  Mutator M(C);
  Frame F(M, microKey());
  int N = static_cast<int>(State.range(0));
  for (int I = 0; I < N; ++I)
    F.set(1, consInt(M, microSite(), I, slot(F, 1)));
  uint64_t Before = M.gcStats().BytesCopied;
  for (auto _ : State)
    M.collect(false);
  State.SetBytesProcessed(
      static_cast<int64_t>(M.gcStats().BytesCopied - Before));
}

void BM_EvacuateLiveList(benchmark::State &State) {
  evacuateLiveList(State, false);
}
BENCHMARK(BM_EvacuateLiveList)->Arg(20000)->Arg(100000);

void BM_EvacuateLiveListProfiled(benchmark::State &State) {
  evacuateLiveList(State, true);
}
BENCHMARK(BM_EvacuateLiveListProfiled)->Arg(20000)->Arg(100000);

/// Builds a stack Depth frames deep, then measures minor collections (the
/// per-GC stack-scan cost Table 5 aggregates). With markers the scan cost
/// should become independent of depth.
void scanAtDepth(benchmark::State &State, bool Markers) {
  MutatorConfig C = genConfig();
  C.UseStackMarkers = Markers;
  Mutator M(C);
  int Depth = static_cast<int>(State.range(0));

  // Recursive builder with a pointer local per frame.
  struct Builder {
    static void deep(Mutator &M, benchmark::State &State, int N) {
      Frame F(M, microKey());
      F.set(1, consInt(M, microSite(), N, slot(F, 2)));
      if (N > 0) {
        deep(M, State, N - 1);
        return;
      }
      for (auto _ : State)
        M.collect(false);
    }
  };
  Builder::deep(M, State, Depth);
  State.SetItemsProcessed(State.iterations());
}

void BM_StackScanFull(benchmark::State &State) { scanAtDepth(State, false); }
BENCHMARK(BM_StackScanFull)->Arg(10)->Arg(100)->Arg(1000)->Arg(4000);

void BM_StackScanMarkers(benchmark::State &State) {
  scanAtDepth(State, true);
}
BENCHMARK(BM_StackScanMarkers)->Arg(10)->Arg(100)->Arg(1000)->Arg(4000);

} // namespace

int main(int Argc, char **Argv) {
  // Tolerate the harness-wide flags the table benches accept.
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--scale=", 8) == 0 ||
        std::strncmp(Argv[I], "--reps=", 7) == 0)
      continue;
    Args.push_back(Argv[I]);
  }
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
