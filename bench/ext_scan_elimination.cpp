//===- bench/ext_scan_elimination.cpp - Paper §7.2 extension -----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Reproduces the §7.2 experiment: pretenured sites whose objects provably
// reference only other pretenured objects (P(s) ⊆ S) need not be scanned
// for young pointers at all. The paper did this analysis by hand for
// Nqueen and cut its GC time by a further 80%; our profiler records
// referent-site edges during profiled collections, automating the check —
// the "automated system for detecting such sites" the paper calls for.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "profile/AllocSite.h"
#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("§7.2 extension: scan elimination for closed pretenured sites",
              Scale);

  Table T("Scan elimination (paper §7.2; Nqueen plus the Table 6 set)");
  T.setHeader({"Program", "GC pre", "GC pre+elim", "GC dec", "scanned",
               "skipped", "closed sites"});

  for (const char *Name : {"Nqueen", "Knuth-Bendix", "Lexgen", "Simple"}) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    std::vector<PretenureDecision> Plain =
        profilePretenureSet(*W, Scale, /*KeepScanElimination=*/false);
    std::vector<PretenureDecision> Elim =
        profilePretenureSet(*W, Scale, /*KeepScanElimination=*/true);

    int Closed = 0;
    for (const PretenureDecision &D : Elim)
      if (D.EliminateScan)
        ++Closed;

    MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W, Scale);
    C.UseStackMarkers = true;
    C.Pretenure = Plain;
    Measurement A = runWorkload(*W, C, Scale);
    C.Pretenure = Elim;
    Measurement B = runWorkload(*W, C, Scale);

    double Dec = A.GcSec > 0 ? 100.0 * (A.GcSec - B.GcSec) / A.GcSec : 0.0;
    T.addRow({Name, checked(A, sec(A.GcSec)), checked(B, sec(B.GcSec)),
              formatString("%.0f%%", Dec),
              formatBytesHuman(B.PretenuredScannedBytes),
              formatBytesHuman(B.PretenuredSkippedBytes),
              formatString("%d", Closed)});
  }
  T.print(stdout);
  std::printf("'closed sites' = pretenured sites s with P(s) within the "
              "pretenured set, detected from profiled referent edges.\n");
  return 0;
}
