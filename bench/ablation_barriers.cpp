//===- bench/ablation_barriers.cpp - Write-barrier backends ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper attributes Peg's high GC cost to the sequential store buffer:
// "The simple sequential store list records a mutated site repeatedly,
// causing a great overhead in root processing. A more realistic approach
// such as card-marking would probably ameliorate most of the problems."
// This ablation builds that fix and measures it: Peg (and controls) under
// four barrier backends at k = 4 —
//
//   ssb     the paper's unconditional, duplicate-keeping store buffer;
//   filt    the conditional (filtering) store buffer;
//   cards   card marking over the crossing-map remembered set
//           (O(dirty cards) scanning);
//   hybrid  starts as ssb, degrades to cards when the flood heuristic
//           trips — Peg should switch, the controls should not.
//
// Also emits BENCH_barriers.json for machine consumption. An optional bare
// workload-name argument restricts the run (CI smoke: ablation_barriers
// Peg --scale=0.1).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

#include <cctype>
#include <cstdio>
#include <cstring>

using namespace tilgc;
using namespace tilgc::bench;

namespace {

struct Backend {
  const char *Name;
  GenerationalCollector::BarrierKind Kind;
};

constexpr Backend Backends[] = {
    {"ssb", GenerationalCollector::BarrierKind::SequentialStoreBuffer},
    {"filt", GenerationalCollector::BarrierKind::FilteredStoreBuffer},
    {"cards", GenerationalCollector::BarrierKind::CardMarking},
    {"hybrid", GenerationalCollector::BarrierKind::Hybrid},
};
constexpr int NumBackends = 4;

/// Remembered-set slots the collector actually processed: precise SSB
/// entries plus fields visited by dirty-card scans.
uint64_t slotsProcessed(const Measurement &M) {
  return M.SSBProcessed + M.CardSlotsVisited;
}

} // namespace

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  // A bare non-numeric argument names a single workload to run.
  const char *Only = nullptr;
  for (int I = 1; I < Argc; ++I)
    if (Argv[I][0] != '-' &&
        !std::isdigit(static_cast<unsigned char>(Argv[I][0])))
      Only = Argv[I];
  printBanner("Ablation: write-barrier backends (ssb/filt/cards/hybrid), "
              "k = 4",
              Scale);

  Table T("Write-barrier ablation (paper §4 discussion of Peg)");
  T.setHeader({"Program", "updates", "GC ssb", "GC filt", "GC cards",
               "GC hyb", "slots ssb", "slots cards", "hyb switch",
               "best dec"});

  std::FILE *Json = std::fopen("BENCH_barriers.json", "w");
  if (Json)
    std::fprintf(Json, "{\"meta\": %s,\n \"runs\": [\n",
                 machineMetaJson().c_str());
  bool FirstRecord = true;

  for (const char *Name : {"Peg", "Life", "Lexgen", "Color"}) {
    if (Only && std::strcmp(Only, Name) != 0)
      continue;
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    Measurement M[NumBackends];
    for (int I = 0; I < NumBackends; ++I) {
      MutatorConfig C =
          configFor(CollectorKind::Generational, 4.0, *W, Scale);
      C.Barrier = Backends[I].Kind;
      M[I] = runWorkload(*W, C, Scale);
    }
    const Measurement &A = M[0]; // ssb baseline
    double Best = A.GcSec;
    for (int I = 1; I < NumBackends; ++I)
      Best = M[I].GcSec < Best ? M[I].GcSec : Best;
    double Dec = A.GcSec > 0 ? 100.0 * (A.GcSec - Best) / A.GcSec : 0.0;
    const Measurement &H = M[3]; // hybrid
    T.addRow({Name,
              formatString("%llu", (unsigned long long)A.PointerUpdates),
              checked(A, sec(A.GcSec)), checked(M[1], sec(M[1].GcSec)),
              checked(M[2], sec(M[2].GcSec)), checked(H, sec(H.GcSec)),
              formatString("%llu", (unsigned long long)slotsProcessed(A)),
              formatString("%llu",
                           (unsigned long long)slotsProcessed(M[2])),
              H.HybridSwitchEpoch
                  ? formatString("gc#%llu",
                                 (unsigned long long)H.HybridSwitchEpoch)
                  : "never",
              formatString("%.0f%%", Dec)});
    if (Json) {
      for (int I = 0; I < NumBackends; ++I) {
        std::fprintf(
            Json,
            "%s  {\"workload\": \"%s\", \"barrier\": \"%s\", \"k\": 4.0,\n"
            "   \"gc_sec\": %.6f, \"total_sec\": %.6f,\n"
            "   \"pointer_updates\": %llu, \"ssb_entries\": %llu,\n"
            "   \"cards_scanned\": %llu, \"card_slots_visited\": %llu,\n"
            "   \"crossing_map_updates\": %llu,\n"
            "   \"hybrid_switch_epoch\": %llu,\n"
            "   \"minor_p50_us\": %.1f, \"minor_p99_us\": %.1f,\n"
            "   \"valid\": %s}",
            FirstRecord ? "" : ",\n", Name, Backends[I].Name, M[I].GcSec,
            M[I].TotalSec, (unsigned long long)M[I].PointerUpdates,
            (unsigned long long)M[I].SSBProcessed,
            (unsigned long long)M[I].CardsScanned,
            (unsigned long long)M[I].CardSlotsVisited,
            (unsigned long long)M[I].CrossingMapUpdates,
            (unsigned long long)M[I].HybridSwitchEpoch,
            M[I].MinorPauseP50Us, M[I].MinorPauseP99Us,
            M[I].Valid ? "true" : "false");
        FirstRecord = false;
      }
    }
  }
  if (Json) {
    std::fprintf(Json, "\n]}\n");
    std::fclose(Json);
    std::printf("wrote BENCH_barriers.json\n");
  }
  T.print(stdout);
  std::printf("'slots' = remembered-set slots processed at collections "
              "(SSB entries + card-scan fields); 'hyb switch' = collection "
              "at which the hybrid degraded to cards.\n");
  return 0;
}
