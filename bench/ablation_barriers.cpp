//===- bench/ablation_barriers.cpp - SSB vs card marking ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// The paper attributes Peg's high GC cost to the sequential store buffer:
// "The simple sequential store list records a mutated site repeatedly,
// causing a great overhead in root processing. A more realistic approach
// such as card-marking would probably ameliorate most of the problems."
// This ablation builds that fix and measures it: Peg (and controls) under
// SSB vs card marking at k = 4.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Ablation: SSB vs card-marking write barrier, k = 4", Scale);

  Table T("Write-barrier ablation (paper §4 discussion of Peg)");
  T.setHeader({"Program", "updates", "GC ssb", "slots ssb", "GC filt",
               "slots filt", "GC cards", "slots cards", "best dec"});

  for (const char *Name : {"Peg", "Life", "Lexgen", "Color"}) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W, Scale);
    Measurement A = runWorkload(*W, C, Scale);
    C.Barrier = GenerationalCollector::BarrierKind::FilteredStoreBuffer;
    Measurement F = runWorkload(*W, C, Scale);
    C.Barrier = GenerationalCollector::BarrierKind::CardMarking;
    Measurement B = runWorkload(*W, C, Scale);

    double Best = F.GcSec < B.GcSec ? F.GcSec : B.GcSec;
    double Dec = A.GcSec > 0 ? 100.0 * (A.GcSec - Best) / A.GcSec : 0.0;
    T.addRow({Name,
              formatString("%llu", (unsigned long long)A.PointerUpdates),
              checked(A, sec(A.GcSec)),
              formatString("%llu", (unsigned long long)A.SSBProcessed),
              checked(F, sec(F.GcSec)),
              formatString("%llu", (unsigned long long)F.SSBProcessed),
              checked(B, sec(B.GcSec)),
              formatString("%llu", (unsigned long long)B.SSBProcessed),
              formatString("%.0f%%", Dec)});
  }
  T.print(stdout);
  std::printf("'slots' = remembered-set slots processed at collections; "
              "filt = filtering (conditional) store buffer.\n");
  return 0;
}
