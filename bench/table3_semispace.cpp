//===- bench/table3_semispace.cpp - Paper Table 3 ---------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 3: time and space usage of the semispace collector at
// k = 1.5, 2 and 4 — Total/GC/Client times, number of collections, and
// bytes copied. Expected shapes: GC time falls roughly with 1/k for
// short-lived-data programs (Checksum, FFT) and faster for long-lived-data
// programs (Gröbner, Knuth-Bendix); client time is k-insensitive.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Table 3: semispace collector, k in {1.5, 2, 4}", Scale);

  const double Ks[3] = {1.5, 2.0, 4.0};

  Table Times("Semispace: times (paper Table 3, top)");
  Times.setHeader({"Program", "Total k=1.5", "Total k=2", "Total k=4",
                   "GC k=1.5", "GC k=2", "GC k=4", "Client k=1.5",
                   "Client k=2", "Client k=4"});
  Table Space("Semispace: collections and copying (paper Table 3, bottom)");
  Space.setHeader({"Program", "GCs k=1.5", "GCs k=2", "GCs k=4",
                   "Copied k=1.5", "Copied k=2", "Copied k=4",
                   "Peak k=1.5", "Peak k=4",
                   "p50 k=4", "p99 k=4", "Max k=4"});

  for (const auto &W : allWorkloads()) {
    Measurement M[3];
    for (int I = 0; I < 3; ++I)
      M[I] = runWorkloadAveraged(
          *W, configFor(CollectorKind::Semispace, Ks[I], *W, Scale), Scale,
          Reps);
    Times.addRow({W->name(), checked(M[0], sec(M[0].TotalSec)),
                  checked(M[1], sec(M[1].TotalSec)),
                  checked(M[2], sec(M[2].TotalSec)), sec(M[0].GcSec),
                  sec(M[1].GcSec), sec(M[2].GcSec), sec(M[0].ClientSec),
                  sec(M[1].ClientSec), sec(M[2].ClientSec)});
    Space.addRow({W->name(),
                  formatString("%llu", (unsigned long long)M[0].NumGC),
                  formatString("%llu", (unsigned long long)M[1].NumGC),
                  formatString("%llu", (unsigned long long)M[2].NumGC),
                  formatBytes(M[0].BytesCopied), formatBytes(M[1].BytesCopied),
                  formatBytes(M[2].BytesCopied),
                  formatBytes(M[0].MaxFootprintBytes),
                  formatBytes(M[2].MaxFootprintBytes),
                  pauseUs(M[2].MajorPauseP50Us), pauseUs(M[2].MajorPauseP99Us),
                  pauseUs(M[2].MaxPauseUs)});
  }
  Times.print(stdout);
  Space.print(stdout);
  return 0;
}
