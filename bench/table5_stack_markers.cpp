//===- bench/table5_stack_markers.cpp - Paper Table 5 ------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 5: the GC cost breakdown (root processing vs copying)
// of the generational collector at k = 4, without and with generational
// stack collection (§5). Expected shapes: stack scanning dominates GC for
// the deep-stack programs (Knuth-Bendix, Color, Lexgen, Nqueen); markers
// cut their GC time drastically (paper: 67.5%, 74.3%, 13%) and cost about
// nothing elsewhere. Frame reuse counters make the effect machine-checkable
// independent of timing noise.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Table 5: GC breakdown without/with stack markers, k = 4",
              Scale);

  Table T("GC cost split (paper Table 5)");
  T.setHeader({"Program", "GC", "stack", "copy", "stack%", "GC'", "stack'",
               "copy'", "stack%'", "GC% dec", "reused%"});

  for (const auto &W : allWorkloads()) {
    MutatorConfig Plain = configFor(CollectorKind::Generational, 4.0, *W,
                                    Scale);
    MutatorConfig Marked = Plain;
    Marked.UseStackMarkers = true;

    Measurement A = runWorkloadAveraged(*W, Plain, Scale, Reps);
    Measurement B = runWorkloadAveraged(*W, Marked, Scale, Reps);

    auto Pct = [](double Num, double Den) {
      return Den > 0 ? 100.0 * Num / Den : 0.0;
    };
    double Dec = A.GcSec > 0 ? 100.0 * (A.GcSec - B.GcSec) / A.GcSec : 0.0;
    double ReusedPct =
        Pct(static_cast<double>(B.FramesReused),
            static_cast<double>(B.FramesReused + B.FramesScanned));

    T.addRow({W->name(), checked(A, sec(A.GcSec)), sec(A.StackSec),
              sec(A.CopySec),
              formatString("%.1f%%", Pct(A.StackSec, A.GcSec)),
              checked(B, sec(B.GcSec)), sec(B.StackSec), sec(B.CopySec),
              formatString("%.1f%%", Pct(B.StackSec, B.GcSec)),
              formatString("%.1f%%", Dec),
              formatString("%.1f%%", ReusedPct)});
  }
  T.print(stdout);
  std::printf("GC'/stack'/copy' = with stack markers (n = 25). reused%% = "
              "share of frames served from the scan cache.\n");
  return 0;
}
