//===- bench/micro_scan.cpp - Stack-scan microbenchmarks ----------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Isolates pass 2 of the stack scan — the per-collection cost Tables 5 and 7
// aggregate — and measures the compiled-ScanPlan rewrite against the paper's
// interpretive trace-table walk (DESIGN.md "Beyond the paper: compiled scan
// plans"). Four frame shapes bracket the design space:
//
//   allptr   every slot a Pointer trace: the bitmask's best case (one
//            countr_zero loop over dense words);
//   nonptr   every slot NonPointer: the bitmask's *other* best case (the
//            whole frame is one zero-word test, the interpreter still
//            switches on every slot);
//   mixed    20 ptr + 20 nonptr + 2 callee-save + 2 compute: the shape the
//            ISSUE's >= 4x slot-visit acceptance bound is stated over;
//   compute  half the slots runtime-resolved: the worst case, since Compute
//            traces stay interpretive in both modes.
//
// Each shape runs interpreted vs compiled, without markers (every frame
// rescanned, as in the baseline collectors) and with markers + scan cache
// (steady-state generational stack collection, where only frames above the
// reuse boundary pay either cost). Counters report the per-scan work terms:
// slots_visited is the interpreted-slot count the plan compiler eliminates,
// plan_words the bitmask words it pays instead.
//
//===----------------------------------------------------------------------===//

#include "stack/StackScanner.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

using namespace tilgc;

namespace {

/// Referents for pointer slots and type descriptors for compute slots; all
/// static, so stacks can be rebuilt cheaply and nothing ever moves.
Word FakeObjs[256];
Word DescPtr[1] = {1};
Word DescNonPtr[1] = {0};

struct ScanKeys {
  uint32_t AllPtr;  ///< 40 pointer slots.
  uint32_t NonPtr;  ///< 40 non-pointer slots.
  uint32_t Mixed;   ///< 20 ptr + 20 nonptr + 2 callee-save + 2 compute.
  uint32_t Compute; ///< 6 descriptor slots + 6 compute slots.

  static const ScanKeys &get() {
    static ScanKeys K = [] {
      auto &Reg = TraceTableRegistry::global();
      ScanKeys K;
      K.AllPtr = Reg.define(FrameLayout(
          "micro.allptr", std::vector<Trace>(40, Trace::pointer())));
      K.NonPtr = Reg.define(FrameLayout(
          "micro.nonptr", std::vector<Trace>(40, Trace::nonPointer())));

      std::vector<Trace> Mixed;
      for (int I = 0; I < 20; ++I)
        Mixed.push_back(Trace::pointer());
      for (int I = 0; I < 20; ++I)
        Mixed.push_back(Trace::nonPointer());
      Mixed.push_back(Trace::calleeSave(6));
      Mixed.push_back(Trace::calleeSave(7));
      Mixed.push_back(Trace::computeFromSlot(1));
      Mixed.push_back(Trace::computeFromSlot(2));
      K.Mixed = Reg.define(FrameLayout("micro.mixed", Mixed,
                                       {RegAction{6, Trace::pointer()},
                                        RegAction{7, Trace::pointer()}}));

      std::vector<Trace> Comp(6, Trace::pointer());
      for (unsigned S = 1; S <= 6; ++S)
        Comp.push_back(Trace::computeFromSlot(S));
      K.Compute = Reg.define(FrameLayout("micro.compute", Comp));
      return K;
    }();
    return K;
  }
};

/// Pushes \p Depth frames of layout \p Key, populating pointer slots with
/// fake referents and descriptor slots so Compute traces resolve both ways.
void buildStack(ShadowStack &S, uint32_t Key, size_t Depth) {
  const ScanKeys &K = ScanKeys::get();
  uint32_t NumSlots = TraceTableRegistry::global().lookup(Key).numSlots();
  for (size_t F = 0; F < Depth; ++F) {
    size_t B = S.pushFrame(Key, NumSlots);
    if (Key == K.NonPtr) {
      for (uint32_t Slot = 1; Slot < NumSlots; ++Slot)
        S.slot(B, Slot) = 0x1000 + F + Slot;
      continue;
    }
    for (uint32_t Slot = 1; Slot < NumSlots; ++Slot)
      S.slot(B, Slot) =
          reinterpret_cast<Word>(&FakeObjs[(F * 7 + Slot) % 256]);
    if (Key == K.Mixed) {
      for (uint32_t Slot = 21; Slot <= 40; ++Slot)
        S.slot(B, Slot) = 0x1000 + F + Slot;
      S.slot(B, 1) = reinterpret_cast<Word>(F % 2 ? DescPtr : DescNonPtr);
      S.slot(B, 2) = reinterpret_cast<Word>(F % 2 ? DescNonPtr : DescPtr);
    } else if (Key == K.Compute) {
      for (uint32_t Slot = 1; Slot <= 6; ++Slot)
        S.slot(B, Slot) =
            reinterpret_cast<Word>((F + Slot) % 2 ? DescPtr : DescNonPtr);
    }
  }
}

/// One scan benchmark: \p Key at depth State.range(0), compiled or
/// interpretive, optionally under markers + scan cache (steady state: the
/// first, marker-placing scan runs outside the timed loop).
void runScanBench(benchmark::State &State, uint32_t Key, bool Compiled,
                  bool Markers) {
  ShadowStack Stack;
  RegisterFile Regs;
  buildStack(Stack, Key, static_cast<size_t>(State.range(0)));

  MarkerManager MM(25);
  ScanCache Cache;
  MarkerManager *MMp = Markers ? &MM : nullptr;
  ScanCache *Cachep = Markers ? &Cache : nullptr;

  RootSet Roots;
  Roots.reserve(4096);
  if (Markers) {
    ScanStats Warm;
    StackScanner::scan(Stack, Regs, MMp, Cachep, Roots, Warm, Compiled);
  }

  uint64_t Slots = 0, PlanWords = 0, Frames = 0, NumRoots = 0;
  for (auto _ : State) {
    ScanStats Stats;
    StackScanner::scan(Stack, Regs, MMp, Cachep, Roots, Stats, Compiled);
    benchmark::DoNotOptimize(Roots.FreshSlotRoots.data());
    benchmark::DoNotOptimize(Roots.ReusedSlotRoots.data());
    Slots += Stats.SlotsVisited;
    PlanWords += Stats.PlanWordsScanned;
    Frames += Stats.FramesScanned + Stats.FramesReused;
    NumRoots += Roots.FreshSlotRoots.size() + Roots.ReusedSlotRoots.size();
  }

  double N = static_cast<double>(State.iterations());
  State.counters["slots_visited"] =
      benchmark::Counter(static_cast<double>(Slots) / N);
  State.counters["plan_words"] =
      benchmark::Counter(static_cast<double>(PlanWords) / N);
  State.counters["roots"] =
      benchmark::Counter(static_cast<double>(NumRoots) / N);
  State.SetItemsProcessed(static_cast<int64_t>(Frames));
}

#define SCAN_BENCH(Shape, Field)                                               \
  void BM_Scan_##Shape##_Interp(benchmark::State &S) {                         \
    runScanBench(S, ScanKeys::get().Field, false, false);                      \
  }                                                                            \
  BENCHMARK(BM_Scan_##Shape##_Interp)->Arg(100)->Arg(1000)->Arg(4000);        \
  void BM_Scan_##Shape##_Compiled(benchmark::State &S) {                       \
    runScanBench(S, ScanKeys::get().Field, true, false);                       \
  }                                                                            \
  BENCHMARK(BM_Scan_##Shape##_Compiled)->Arg(100)->Arg(1000)->Arg(4000);      \
  void BM_Scan_##Shape##_Markers_Interp(benchmark::State &S) {                 \
    runScanBench(S, ScanKeys::get().Field, false, true);                       \
  }                                                                            \
  BENCHMARK(BM_Scan_##Shape##_Markers_Interp)->Arg(1000);                      \
  void BM_Scan_##Shape##_Markers_Compiled(benchmark::State &S) {               \
    runScanBench(S, ScanKeys::get().Field, true, true);                        \
  }                                                                            \
  BENCHMARK(BM_Scan_##Shape##_Markers_Compiled)->Arg(1000);

SCAN_BENCH(AllPtr, AllPtr)
SCAN_BENCH(NonPtr, NonPtr)
SCAN_BENCH(Mixed, Mixed)
SCAN_BENCH(Compute, Compute)

#undef SCAN_BENCH

} // namespace

int main(int Argc, char **Argv) {
  // Tolerate the harness-wide flags the table benches accept.
  std::vector<char *> Args;
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], "--scale=", 8) == 0 ||
        std::strncmp(Argv[I], "--reps=", 7) == 0)
      continue;
    Args.push_back(Argv[I]);
  }
  int N = static_cast<int>(Args.size());
  benchmark::Initialize(&N, Args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
