//===- bench/table7_relative.cpp - Paper Table 7 -----------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Table 7: relative GC time at k = 4 across the four
// techniques — semispace (= 100), generational, generational + stack
// markers, generational + markers + pretenuring — as both numbers and the
// paper's bar chart (rendered in ASCII).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Table.h"

#include <string>

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  int Reps = repsFromArgs(Argc, Argv, 3);
  printBanner("Table 7: relative GC time at k = 4", Scale);

  Table T("Relative GC time, semispace = 100 (paper Table 7)");
  T.setHeader({"Program", "semispace", "gen", "gen+markers",
               "gen+markers+pretenure"});

  std::string Chart;
  for (const auto &W : allWorkloads()) {
    MutatorConfig Semi = configFor(CollectorKind::Semispace, 4.0, *W, Scale);
    MutatorConfig Gen = configFor(CollectorKind::Generational, 4.0, *W,
                                  Scale);
    MutatorConfig Marked = Gen;
    Marked.UseStackMarkers = true;
    MutatorConfig Pre = Marked;
    Pre.Pretenure = profilePretenureSet(*W, Scale, false);

    Measurement MS = runWorkloadAveraged(*W, Semi, Scale, Reps);
    Measurement MG = runWorkloadAveraged(*W, Gen, Scale, Reps);
    Measurement MM = runWorkloadAveraged(*W, Marked, Scale, Reps);
    Measurement MP = runWorkloadAveraged(*W, Pre, Scale, Reps);

    auto Rel = [&](const Measurement &M) {
      return MS.GcSec > 0 ? 100.0 * M.GcSec / MS.GcSec : 0.0;
    };
    T.addRow({W->name(), "100.0", formatString("%.1f", Rel(MG)),
              formatString("%.1f", Rel(MM)), formatString("%.1f", Rel(MP))});

    // ASCII bars (40 chars = 100%).
    auto Bar = [&](const char *Tag, double Pct) {
      int N = static_cast<int>(Pct * 0.4 + 0.5);
      if (N > 60)
        N = 60;
      std::string Line = formatString("  %-22s %6.1f |", Tag, Pct);
      Line.append(static_cast<size_t>(N), '#');
      Line += "\n";
      return Line;
    };
    Chart += formatString("%s\n", W->name());
    Chart += Bar("semispace", 100.0);
    Chart += Bar("gen", Rel(MG));
    Chart += Bar("gen+markers", Rel(MM));
    Chart += Bar("gen+markers+pretenure", Rel(MP));
  }
  T.print(stdout);
  std::fputs(Chart.c_str(), stdout);
  return 0;
}
