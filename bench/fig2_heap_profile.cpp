//===- bench/fig2_heap_profile.cpp - Paper Figure 2 --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
// Regenerates Figure 2: the heap-profile reports for Knuth-Bendix and
// Nqueen — per allocation site, the alloc%, alloc size/count, old%
// (fraction surviving their first collection), average death age, and
// copied%. Expected shape: strongly bimodal — the bulk-allocation sites
// have old% ~ 0 while a few sites with old% > 80% carry almost all copied
// bytes ("targeted sites comprise 99.04% copied and 5.65% allocated" for
// Nqueen in the paper).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

using namespace tilgc;
using namespace tilgc::bench;

int main(int Argc, char **Argv) {
  double Scale = scaleFromArgs(Argc, Argv);
  printBanner("Figure 2: heap profiles (Knuth-Bendix, Nqueen)", Scale);

  for (const char *Name : {"Knuth-Bendix", "Nqueen"}) {
    Workload *W = findWorkload(Name);
    if (!W)
      continue;
    MutatorConfig C = configFor(CollectorKind::Generational, 4.0, *W, Scale);
    C.EnableProfiling = true;
    Mutator M(C);
    (void)W->run(M, Scale);
    M.profiler()->report(stdout, Name, /*DisplayCutoffPercent=*/1.0,
                         /*OldCutoff=*/0.8);
  }
  return 0;
}
