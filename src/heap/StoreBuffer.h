//===- heap/StoreBuffer.h - Sequential store buffer ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's write barrier: a sequential store buffer (Appel 1989). The
/// mutator unconditionally appends the address of every mutated pointer slot;
/// the collector filters the buffer at each collection. Duplicates are NOT
/// removed — that is precisely the pathology the paper observes on Peg
/// (2.97M pointer updates flooding root processing), and the card-table
/// variant in heap/CardTable.h exists to demonstrate the suggested fix.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_STOREBUFFER_H
#define TILGC_HEAP_STOREBUFFER_H

#include "object/Object.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// An unconditional, duplicate-keeping log of mutated pointer slots.
class StoreBuffer {
public:
  /// Records that the pointer slot at \p Slot was updated.
  void record(Word *Slot) {
    Entries.push_back(Slot);
    ++TotalRecorded;
  }

  const std::vector<Word *> &entries() const { return Entries; }

  /// Discards the logged entries (called after each collection). Keeps the
  /// capacity: the buffer refills to a similar size every mutator epoch,
  /// and duplicate-keeping semantics (the Peg pathology) are unchanged —
  /// only the reallocation churn goes away.
  void clear() { Entries.clear(); }

  /// Pre-sizes the log (the collector calls this once at startup).
  void reserve(size_t NumEntries) { Entries.reserve(NumEntries); }

  /// Number of entries currently pending.
  size_t size() const { return Entries.size(); }

  /// Lifetime count of recorded updates (Table 2's "Number of Pointer
  /// Updates" column).
  uint64_t totalRecorded() const { return TotalRecorded; }

private:
  std::vector<Word *> Entries;
  uint64_t TotalRecorded = 0;
};

} // namespace tilgc

#endif // TILGC_HEAP_STOREBUFFER_H
