//===- heap/StoreBuffer.h - Sequential store buffer ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's write barrier: a sequential store buffer (Appel 1989). The
/// mutator unconditionally appends the address of every mutated pointer slot;
/// the collector filters the buffer at each collection. Duplicates are NOT
/// removed — that is precisely the pathology the paper observes on Peg
/// (2.97M pointer updates flooding root processing). The card-table
/// variant in heap/CardTable.h implements the suggested fix, and the
/// Hybrid barrier watches this buffer's size to degrade to cards
/// automatically when it floods (replaying pending entries at the switch).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_STOREBUFFER_H
#define TILGC_HEAP_STOREBUFFER_H

#include "object/Object.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// An unconditional, duplicate-keeping log of mutated pointer slots.
class StoreBuffer {
public:
  /// Shrink policy floor: capacity never drops below this, so steady-state
  /// workloads (the collector pre-sizes to exactly this) never reallocate.
  static constexpr size_t ShrinkFloorEntries = 4096;
  /// Consecutive low-fill clears before one halving step.
  static constexpr unsigned ShrinkAfterClears = 8;

  /// Records that the pointer slot at \p Slot was updated.
  void record(Word *Slot) {
    Entries.push_back(Slot);
    ++TotalRecorded;
  }

  const std::vector<Word *> &entries() const { return Entries; }

  /// Discards the logged entries (called after each collection).
  ///
  /// Capacity is kept across clears so a buffer that refills to a similar
  /// size every mutator epoch never reallocates — but not forever: one
  /// Peg-style flood (millions of entries ≈ tens of MB) used to pin the
  /// high-water allocation for the process lifetime. After
  /// ShrinkAfterClears consecutive collections below 25% fill the capacity
  /// is halved (never below ShrinkFloorEntries), so the retained memory
  /// decays geometrically once the flood subsides. Duplicate-keeping
  /// semantics are unchanged — this touches only the backing allocation.
  void clear() {
    if (ShrinkDisabled) {
      Entries.clear();
      return;
    }
    bool LowFill = Entries.capacity() > ShrinkFloorEntries &&
                   Entries.size() < Entries.capacity() / 4;
    Entries.clear();
    if (!LowFill) {
      LowFillClears = 0;
      return;
    }
    if (++LowFillClears < ShrinkAfterClears)
      return;
    size_t NewCap = Entries.capacity() / 2;
    if (NewCap < ShrinkFloorEntries)
      NewCap = ShrinkFloorEntries;
    std::vector<Word *> Fresh;
    Fresh.reserve(NewCap);
    Entries.swap(Fresh);
    LowFillClears = 0;
    ++ShrinkCount;
  }

  /// Pre-sizes the log (the collector calls this once at startup).
  void reserve(size_t NumEntries) { Entries.reserve(NumEntries); }

  /// Number of entries currently pending.
  size_t size() const { return Entries.size(); }

  /// Current backing capacity in entries (shrink-policy introspection).
  size_t capacityEntries() const { return Entries.capacity(); }

  /// Times the shrink policy halved the backing allocation.
  uint64_t shrinks() const { return ShrinkCount; }

  /// Lifetime count of recorded updates (Table 2's "Number of Pointer
  /// Updates" column).
  uint64_t totalRecorded() const { return TotalRecorded; }

  /// Latches the shrink heuristic off. The Hybrid barrier calls this at its
  /// sticky SSB->card switch: the buffer will never refill past that point,
  /// so every later clear() would count as a low-fill clear and the policy
  /// would churn the capacity of a permanently idle buffer.
  void disableShrink() { ShrinkDisabled = true; }

private:
  std::vector<Word *> Entries;
  uint64_t TotalRecorded = 0;
  uint64_t ShrinkCount = 0;
  unsigned LowFillClears = 0;
  bool ShrinkDisabled = false;
};

/// SATB (snapshot-at-the-beginning) deletion buffer for the incremental
/// major-mark mode: while incremental marking is live, the write barrier
/// records the OLD pointer value of every overwritten slot, so an edge
/// that existed in the marking snapshot can never be hidden from the
/// tracer by a mutator store (no black-to-white-unrecorded edge survives a
/// slice boundary). Values, not slots: the slot's new content is covered
/// by root re-scanning at cycle finish.
class SatbBuffer {
public:
  void record(Word OldBits) { Values.push_back(OldBits); }

  bool empty() const { return Values.empty(); }
  size_t size() const { return Values.size(); }
  const std::vector<Word> &values() const { return Values; }

  void clear() { Values.clear(); }
  void reserve(size_t NumValues) { Values.reserve(NumValues); }

private:
  std::vector<Word> Values;
};

} // namespace tilgc

#endif // TILGC_HEAP_STOREBUFFER_H
