//===- heap/Space.h - Bump-pointer allocation space ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A contiguous bump-pointer space. Semispace collectors own two of these;
/// the generational collector owns one for the nursery and two for the
/// tenured generation. Spaces are linearly walkable, which the Cheney scan,
/// the profiler's death sweep, and the heap verifier all rely on.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_SPACE_H
#define TILGC_HEAP_SPACE_H

#include "object/Object.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>

namespace tilgc {

/// A contiguous block of words with bump-pointer allocation.
class Space {
public:
  Space() = default;
  ~Space() { release(); }

  Space(const Space &) = delete;
  Space &operator=(const Space &) = delete;

  /// Allocates backing storage for \p Bytes (rounded up to a word multiple).
  /// Any previous storage (and its contents) is discarded.
  void reserve(size_t Bytes);

  /// Frees the backing storage.
  void release();

  /// Allocates an object with \p PayloadWords payload words and installs the
  /// header. Returns the payload pointer, or nullptr if the space is full
  /// (past its soft limit, if one is set).
  Word *allocate(Word Descriptor, Word Meta) {
    uint32_t Total = objectTotalWords(Descriptor);
    if (TILGC_UNLIKELY(Next + Total > SoftLimit))
      return nullptr;
    if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
        FaultInjector::global().shouldFire(FaultPoint::SpaceAllocNull))
      return nullptr;
    Word *Payload = Next + HeaderWords;
    Next[0] = Descriptor;
    Next[1] = Meta;
    Next += Total;
    return Payload;
  }

  /// Atomically carves a block of up to \p MaxWords (at least \p MinWords)
  /// off the allocation frontier. This is the parallel evacuator's handout
  /// API: workers bump-allocate privately inside their block, so only the
  /// block grant itself is contended. Returns false when fewer than
  /// \p MinWords remain below the soft limit. Safe against concurrent
  /// allocateBlock/returnBlockTail calls; NOT against concurrent allocate().
  bool allocateBlock(size_t MinWords, size_t MaxWords, Word *&BlockBegin,
                     Word *&BlockEnd) {
    if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
        FaultInjector::global().shouldFire(FaultPoint::SpaceBlockHandout))
      return false;
    std::atomic_ref<Word *> ANext(Next);
    Word *Cur = ANext.load(std::memory_order_relaxed);
    size_t Take;
    do {
      size_t Avail = Cur < SoftLimit ? static_cast<size_t>(SoftLimit - Cur) : 0;
      if (Avail < MinWords)
        return false;
      Take = Avail < MaxWords ? Avail : MaxWords;
    } while (!ANext.compare_exchange_weak(Cur, Cur + Take,
                                          std::memory_order_relaxed));
    BlockBegin = Cur;
    BlockEnd = Cur + Take;
    return true;
  }

  /// Tries to give back the unused tail [\p Unused, \p BlockEnd) of the most
  /// recently granted block. Succeeds only if the block is still the last
  /// grant (frontier == BlockEnd); otherwise the caller must pad the tail.
  bool returnBlockTail(Word *Unused, Word *BlockEnd) {
    std::atomic_ref<Word *> ANext(Next);
    Word *Expected = BlockEnd;
    return ANext.compare_exchange_strong(Expected, Unused,
                                         std::memory_order_relaxed);
  }

  /// True if \p P points into this space's storage.
  bool contains(const Word *P) const { return P >= Base && P < Limit; }

  /// Raw bounds, for callers that cache them across a tight loop (the
  /// evacuator's per-slot from-space test).
  const Word *baseAddr() const { return Base; }
  const Word *limitAddr() const { return Limit; }

  /// Empties the space (objects become garbage; storage is retained).
  void reset() { Next = Base; }

  /// Caps allocation at \p Bytes without releasing storage — how the
  /// semispace collector shrinks a space that still holds live data (the
  /// paper's r'/r resize with a factor below 1). Cleared by reserve().
  void setSoftLimitBytes(size_t Bytes) {
    size_t Words = Bytes / sizeof(Word);
    SoftLimit = Base + Words > Limit ? Limit : Base + Words;
    if (SoftLimit < Next)
      SoftLimit = Next;
  }

  size_t capacityBytes() const {
    return static_cast<size_t>(Limit - Base) * sizeof(Word);
  }
  size_t usedBytes() const {
    return static_cast<size_t>(Next - Base) * sizeof(Word);
  }
  /// usedBytes via a relaxed atomic frontier read — for advisory checks
  /// made while other threads may be CASing block grants (the pause-budget
  /// slice-due test on the TLAB refill path). A stale value only shifts a
  /// slice by one refill.
  size_t usedBytesRelaxed() const {
    std::atomic_ref<Word *> ANext(const_cast<Word *&>(Next));
    return static_cast<size_t>(ANext.load(std::memory_order_relaxed) - Base) *
           sizeof(Word);
  }
  size_t freeBytes() const { return capacityBytes() - usedBytes(); }
  bool empty() const { return Next == Base; }

  /// The poison word written over evacuated from-space (VerifyLevel >= 3 or
  /// the FromSpacePoison fault point). Deliberately misaligned (low bits
  /// 0b101) so a leaked stale read trips the verifier's alignment check and
  /// faults loudly if dereferenced.
  static constexpr Word PoisonPattern = 0xDEADDEADDEADDEADULL;

  /// Fills the unallocated region [frontier, limit) with PoisonPattern.
  /// After reset() this poisons the whole space.
  void poisonFreeSpace() { std::fill(Next, Limit, PoisonPattern); }

  /// Checks the unallocated region is still wholly poisoned; returns the
  /// address of the first clobbered word, or nullptr if intact. Detects
  /// writes through stale pointers into a space believed empty.
  const Word *findPoisonViolation() const {
    for (const Word *P = Next; P < Limit; ++P)
      if (TILGC_UNLIKELY(*P != PoisonPattern))
        return P;
    return nullptr;
  }

  /// First object payload (for linear walks).
  Word *firstPayload() const { return Base + HeaderWords; }
  /// One-past-the-end allocation frontier.
  Word *frontier() const { return Next; }

  /// Rewinds (or advances) the allocation frontier to \p NewFrontier — the
  /// in-place compactor's epilogue: after sliding live objects toward the
  /// base and padding the gaps, the space's walkable extent ends exactly at
  /// the compaction cursor. The caller guarantees [Base, NewFrontier) is a
  /// well-formed object sequence.
  void setFrontier(Word *NewFrontier) {
    assert(NewFrontier >= Base && NewFrontier <= Limit &&
           "frontier outside the reserved space");
    Next = NewFrontier;
    if (SoftLimit < Next)
      SoftLimit = Next;
  }

  /// Monotonic count of reserve()/release() calls. Side tables bound to
  /// this space (CardTable, CrossingMap) capture it at attach time and
  /// compare it later, turning a stale attach after a re-reserve into a
  /// loud assertion instead of silent marks against a freed base address.
  uint64_t reserveEpoch() const { return ReserveEpoch; }

  /// Walks every object in allocation order, invoking
  /// \p Fn(PayloadPtr, LiveDescriptor, IsForwarded). For forwarded objects
  /// the descriptor is fetched from the copy so the walk can still compute
  /// sizes (the profiler's death sweep walks a from-space after a copy).
  /// Pad fillers left by the parallel evacuator are skipped silently.
  template <typename FnT> void walk(FnT Fn) const {
    Word *P = Base;
    while (P < Next) {
      Word Raw = P[0];
      if (TILGC_UNLIKELY(header::isPad(Raw))) {
        P += header::padWords(Raw);
        continue;
      }
      Word *Payload = P + HeaderWords;
      Word Descriptor = Raw;
      bool Forwarded = header::isForwarded(Descriptor);
      if (Forwarded)
        Descriptor = descriptorOf(header::forwardTarget(Descriptor));
      Fn(Payload, Descriptor, Forwarded);
      P += objectTotalWords(Descriptor);
    }
    assert(P == Next && "object walk overran the frontier");
  }

private:
  Word *Base = nullptr;
  Word *Next = nullptr;
  Word *Limit = nullptr;
  Word *SoftLimit = nullptr;
  uint64_t ReserveEpoch = 0;
};

} // namespace tilgc

#endif // TILGC_HEAP_SPACE_H
