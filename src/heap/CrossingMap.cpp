//===- heap/CrossingMap.cpp - Object-start crossing map ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/CrossingMap.h"

using namespace tilgc;

void CrossingMap::attach(const Space &S) {
  Base = S.baseAddr();
  Epoch = S.reserveEpoch();
  size_t Cards = (S.capacityBytes() + CardBytes - 1) / CardBytes;
  Entries.assign(Cards, Unknown);
}
