//===- heap/LargeObjectSpace.cpp - Mark-sweep large-object space ---------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/LargeObjectSpace.h"

#include "support/Fatal.h"

#include <atomic>
#include <cstdlib>

using namespace tilgc;

LargeObjectSpace::~LargeObjectSpace() {
  for (const Entry &E : Objects)
    releaseBlock(E.Payload);
}

Word *LargeObjectSpace::allocate(Word Descriptor, Word Meta) {
  uint32_t Total = objectTotalWords(Descriptor);
  Word *Block = static_cast<Word *>(std::malloc(Total * sizeof(Word)));
  if (TILGC_UNLIKELY(!Block))
    fatalError("large-object allocation of %zu bytes failed: host out of "
               "memory (LOS holds %zu objects, %zu live bytes)",
               Total * sizeof(Word), Objects.size(), (size_t)LiveBytes);
  Word *Payload = Block + HeaderWords;
  Block[0] = Descriptor;
  Block[1] = Meta;
  Index.emplace(Payload, Objects.size());
  Objects.push_back(Entry{Payload, /*Marked=*/false});
  LiveBytes += objectTotalBytes(Descriptor);
  return Payload;
}

bool LargeObjectSpace::mark(Word *Payload) {
  auto It = Index.find(Payload);
  assert(It != Index.end() && "marking an object not in the LOS");
  Entry &E = Objects[It->second];
  // Atomic test-and-set: during a parallel major trace several workers may
  // race to mark the same object; exactly one must win (and scan it). The
  // Index itself is read-only during a trace, so the lookup needs no lock.
  std::atomic_ref<uint8_t> AMark(E.Marked);
  return AMark.exchange(1, std::memory_order_acq_rel) == 0;
}

void LargeObjectSpace::releaseBlock(Word *Payload) {
  std::free(Payload - HeaderWords);
}
