//===- heap/LargeObjectSpace.cpp - Mark-sweep large-object space ---------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/LargeObjectSpace.h"

#include <cstdlib>

using namespace tilgc;

LargeObjectSpace::~LargeObjectSpace() {
  for (const Entry &E : Objects)
    releaseBlock(E.Payload);
}

Word *LargeObjectSpace::allocate(Word Descriptor, Word Meta) {
  uint32_t Total = objectTotalWords(Descriptor);
  Word *Block = static_cast<Word *>(std::malloc(Total * sizeof(Word)));
  assert(Block && "out of host memory");
  Word *Payload = Block + HeaderWords;
  Block[0] = Descriptor;
  Block[1] = Meta;
  Index.emplace(Payload, Objects.size());
  Objects.push_back(Entry{Payload, /*Marked=*/false});
  LiveBytes += objectTotalBytes(Descriptor);
  return Payload;
}

bool LargeObjectSpace::mark(Word *Payload) {
  auto It = Index.find(Payload);
  assert(It != Index.end() && "marking an object not in the LOS");
  Entry &E = Objects[It->second];
  if (E.Marked)
    return false;
  E.Marked = true;
  return true;
}

void LargeObjectSpace::releaseBlock(Word *Payload) {
  std::free(Payload - HeaderWords);
}
