//===- heap/LargeObjectSpace.h - Mark-sweep large-object space -*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's large-array region: "Large arrays are not allocated in the
/// nursery and promoted to the tenured area; instead, they reside in a
/// region managed by a mark-sweep algorithm." Objects here are individually
/// heap-allocated blocks, never move, are treated as tenured by minor
/// collections (initializing pointer stores go through the write barrier),
/// and are marked and swept during major collections.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_LARGEOBJECTSPACE_H
#define TILGC_HEAP_LARGEOBJECTSPACE_H

#include "object/Object.h"

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace tilgc {

/// Individually-allocated, non-moving objects managed by mark-sweep.
class LargeObjectSpace {
public:
  LargeObjectSpace() = default;
  ~LargeObjectSpace();
  LargeObjectSpace(const LargeObjectSpace &) = delete;
  LargeObjectSpace &operator=(const LargeObjectSpace &) = delete;

  /// Allocates a large object and installs its header. Never fails short of
  /// host OOM (budget policy is the collector's job).
  Word *allocate(Word Descriptor, Word Meta);

  /// True if \p Payload is the payload of a live large object.
  bool contains(const Word *Payload) const {
    return Index.count(Payload) != 0;
  }

  /// Marks the object at \p Payload live; returns false if already marked.
  /// Thread-safe against concurrent mark() calls (atomic test-and-set); the
  /// parallel evacuator relies on exactly one marker winning.
  bool mark(Word *Payload);

  /// Whether the object at \p Payload currently carries a mark bit (the
  /// pause-budget mode's SATB filter and tricolor audit read mid-cycle mark
  /// state; outside a marking window every bit is clear).
  bool isMarked(const Word *Payload) const {
    auto It = Index.find(Payload);
    return It != Index.end() && Objects[It->second].Marked;
  }

  /// Frees every unmarked object and clears mark bits.
  /// Invokes \p OnDead(Payload, Descriptor) for each freed object before it
  /// is released (the profiler records deaths here).
  template <typename FnT> void sweep(FnT OnDead) {
    size_t Kept = 0;
    for (size_t I = 0; I < Objects.size(); ++I) {
      Entry &E = Objects[I];
      if (E.Marked) {
        E.Marked = false;
        Index[E.Payload] = Kept;
        Objects[Kept++] = E;
        continue;
      }
      OnDead(E.Payload, descriptorOf(E.Payload));
      LiveBytes -= objectTotalBytes(descriptorOf(E.Payload));
      Index.erase(E.Payload);
      releaseBlock(E.Payload);
    }
    Objects.resize(Kept);
  }

  /// Clears every mark bit without freeing anything. Used when a major
  /// collection aborts mid-mark (engine failover): the partial mark must
  /// not be consumed by a sweep — unmarked-but-live objects would be
  /// freed — so the failover evacuation starts from clean bits and
  /// re-marks via its own LOS trace.
  void clearMarks() {
    for (Entry &E : Objects)
      E.Marked = false;
  }

  /// Walks all live large objects: \p Fn(Payload, Descriptor).
  template <typename FnT> void walk(FnT Fn) const {
    for (const Entry &E : Objects)
      Fn(E.Payload, descriptorOf(E.Payload));
  }

  /// Total footprint (headers + payloads) of live large objects.
  size_t liveBytes() const { return LiveBytes; }

  size_t objectCount() const { return Objects.size(); }

private:
  struct Entry {
    Word *Payload;
    uint8_t Marked; ///< uint8_t (not bool) so mark() can atomic_ref it.
  };

  void releaseBlock(Word *Payload);

  std::vector<Entry> Objects;
  /// Payload -> index into Objects; used by contains()/mark().
  std::unordered_map<const Word *, size_t> Index;
  size_t LiveBytes = 0;
};

} // namespace tilgc

#endif // TILGC_HEAP_LARGEOBJECTSPACE_H
