//===- heap/Space.cpp - Bump-pointer allocation space --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/Space.h"

#include "support/Fatal.h"
#include "support/FaultInjector.h"

#include <chrono>
#include <cstdlib>
#include <thread>

using namespace tilgc;

void Space::reserve(size_t Bytes) {
  release();
  size_t Words = (Bytes + sizeof(Word) - 1) / sizeof(Word);
  if (Words == 0)
    Words = HeaderWords;
  // Host allocation failure gets a bounded retry with exponential backoff
  // before the structured fatal: a transient spike (another process, a
  // concurrent GC in a sibling heap) may clear within milliseconds, and a
  // heap-growth request is already a slow path. HostGrowFail injects the
  // failure deterministically so the retry ladder is torture-testable.
  static constexpr unsigned MaxAttempts = 4;
  for (unsigned Attempt = 0;; ++Attempt) {
    bool Injected = TILGC_UNLIKELY(FaultInjector::enabled()) &&
                    FaultInjector::global().shouldFire(FaultPoint::HostGrowFail);
    Base = Injected ? nullptr
                    : static_cast<Word *>(std::malloc(Words * sizeof(Word)));
    if (TILGC_LIKELY(Base != nullptr))
      break;
    if (Attempt + 1 >= MaxAttempts)
      fatalError("space reservation of %zu bytes failed: host out of memory "
                 "(%u attempts with backoff)",
                 Words * sizeof(Word), MaxAttempts);
    std::this_thread::sleep_for(std::chrono::milliseconds(1u << Attempt));
  }
  assert((reinterpret_cast<uintptr_t>(Base) & 7) == 0 &&
         "space must be word-aligned");
  Next = Base;
  Limit = Base + Words;
  SoftLimit = Limit;
  ++ReserveEpoch;
}

void Space::release() {
  std::free(Base);
  Base = Next = Limit = SoftLimit = nullptr;
  ++ReserveEpoch;
}
