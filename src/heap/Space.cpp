//===- heap/Space.cpp - Bump-pointer allocation space --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "heap/Space.h"

#include "support/Fatal.h"

#include <cstdlib>

using namespace tilgc;

void Space::reserve(size_t Bytes) {
  release();
  size_t Words = (Bytes + sizeof(Word) - 1) / sizeof(Word);
  if (Words == 0)
    Words = HeaderWords;
  Base = static_cast<Word *>(std::malloc(Words * sizeof(Word)));
  if (TILGC_UNLIKELY(!Base))
    fatalError("space reservation of %zu bytes failed: host out of memory",
               Words * sizeof(Word));
  assert((reinterpret_cast<uintptr_t>(Base) & 7) == 0 &&
         "space must be word-aligned");
  Next = Base;
  Limit = Base + Words;
  SoftLimit = Limit;
  ++ReserveEpoch;
}

void Space::release() {
  std::free(Base);
  Base = Next = Limit = SoftLimit = nullptr;
  ++ReserveEpoch;
}
