//===- heap/RegionManager.h - Region overlay over a tenured space -*- C++ -*-=//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A region-granular overlay over one contiguous tenured Space. The
/// mark-compact major collector partitions the space into fixed-size,
/// card-aligned regions, accounts marked-live bytes per region during the
/// planning walk, and classifies each region as dense (left in place, card
/// and crossing metadata rebuilt) or sparse (its live objects slide toward
/// the base). Like CardTable and CrossingMap, the overlay binds to a
/// specific (base address, reserve epoch) pair so a stale attach after the
/// space is re-reserved — e.g. the growth-fallback path that swaps in a
/// larger tenured space — trips an assertion instead of silently
/// mis-attributing liveness.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_REGIONMANAGER_H
#define TILGC_HEAP_REGIONMANAGER_H

#include "heap/CrossingMap.h"
#include "heap/Space.h"
#include "object/Object.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace tilgc {

/// Fixed-size region overlay with per-region liveness accounting.
class RegionManager {
public:
  /// Region granularity. A multiple of the card size so region boundaries
  /// never split a card between two regions' metadata rebuilds.
  static constexpr size_t RegionBytes = 64u * 1024;
  static constexpr size_t RegionWords = RegionBytes / sizeof(Word);
  static_assert(RegionBytes % CrossingMap::CardBytes == 0,
                "regions must be card-aligned");

  /// Live-bytes fraction at or above which a region is dense: its objects
  /// stay in place during compaction (moving them would churn nearly a full
  /// region of bytes to reclaim almost nothing).
  static constexpr double DefaultDenseFraction = 0.75;

  /// Binds the overlay to \p S, sizing the region set to the space's current
  /// capacity. The final region may be short when the capacity is not a
  /// region multiple. Clears all per-region accounting.
  void attach(const Space &S) {
    Base = S.baseAddr();
    Epoch = S.reserveEpoch();
    size_t Words = S.capacityBytes() / sizeof(Word);
    NumRegions = (Words + RegionWords - 1) / RegionWords;
    TailWords = NumRegions ? Words - (NumRegions - 1) * RegionWords : 0;
    LiveWords.assign(NumRegions, 0);
    FirstHeader.assign(NumRegions, nullptr);
    Dense.assign(NumRegions, 0);
  }

  /// True if the overlay was attached to \p S's current reservation. The
  /// same base address with a different epoch means the space was released
  /// and re-reserved since attach — the overlay's accounting is stale.
  bool boundTo(const Space &S) const {
    return Base == S.baseAddr() && Epoch == S.reserveEpoch();
  }

  size_t numRegions() const { return NumRegions; }

  /// Region index owning address \p P (attribution is by header address: an
  /// object belongs to the region containing its header, even when its
  /// payload spills into following regions).
  size_t regionOf(const Word *P) const {
    assert(P >= Base && "address below the attached space");
    size_t R = static_cast<size_t>(P - Base) / RegionWords;
    assert(R < NumRegions && "address beyond the attached space");
    return R;
  }

  const Word *regionBegin(size_t R) const { return Base + R * RegionWords; }
  const Word *regionEnd(size_t R) const {
    return regionBegin(R) + regionCapacityWords(R);
  }
  size_t regionCapacityWords(size_t R) const {
    assert(R < NumRegions);
    return R + 1 == NumRegions ? TailWords : RegionWords;
  }

  /// Resets per-region plan state (liveness, first headers, density) without
  /// rebinding. Called at the start of every mark-compact planning walk.
  void clearPlan() {
    LiveWords.assign(NumRegions, 0);
    FirstHeader.assign(NumRegions, nullptr);
    Dense.assign(NumRegions, 0);
  }

  /// Records the first header encountered in \p Header's region during an
  /// address-ordered walk (pads and dead objects included — it is a walk
  /// resumption point, not a liveness fact).
  void noteWalkStart(const Word *Header) {
    size_t R = regionOf(Header);
    if (!FirstHeader[R])
      FirstHeader[R] = Header;
  }

  /// Accounts \p TotalWords of marked-live data to \p Header's region.
  void addLive(const Word *Header, size_t TotalWords) {
    LiveWords[regionOf(Header)] += TotalWords;
  }

  size_t liveWords(size_t R) const { return LiveWords[R]; }

  /// First header at or after the region's start (nullptr when no object
  /// header lies inside the region — e.g. one large object spans it whole).
  const Word *firstHeader(size_t R) const { return FirstHeader[R]; }

  /// Classifies every region against \p DenseFraction; returns the count of
  /// dense regions. Call after the liveness accounting pass is complete.
  size_t classify(double DenseFraction) {
    size_t NumDense = 0;
    for (size_t R = 0; R < NumRegions; ++R) {
      Dense[R] = LiveWords[R] >=
                 static_cast<size_t>(DenseFraction *
                                     static_cast<double>(regionCapacityWords(R)));
      // An empty region is trivially "dense" by the test above only when its
      // capacity rounds to zero; guard so empty regions always compact away.
      if (LiveWords[R] == 0)
        Dense[R] = 0;
      NumDense += Dense[R];
    }
    return NumDense;
  }

  bool isDense(size_t R) const { return Dense[R] != 0; }

  /// Regions that hold at least one live object and are not dense — the
  /// evacuation candidates whose objects slide during compaction.
  size_t numEvacuationCandidates() const {
    size_t N = 0;
    for (size_t R = 0; R < NumRegions; ++R)
      N += (LiveWords[R] > 0 && !Dense[R]);
    return N;
  }

private:
  const Word *Base = nullptr;
  uint64_t Epoch = 0;
  size_t NumRegions = 0;
  size_t TailWords = 0;
  std::vector<size_t> LiveWords;
  std::vector<const Word *> FirstHeader;
  std::vector<uint8_t> Dense;
};

} // namespace tilgc

#endif // TILGC_HEAP_REGIONMANAGER_H
