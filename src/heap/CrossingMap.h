//===- heap/CrossingMap.h - Object-start crossing map -----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-per-card object-start table: for each card of a tenured space,
/// records where the object covering the card's first word begins, so a
/// dirty-card scan can start walking at an object header instead of at the
/// space base. This is what makes card processing O(dirty cards) rather
/// than O(live tenured data) — the production technique (JikesRVM/MMTk,
/// HotSpot's BlockOffsetTable) the paper alludes to when it suggests
/// card-marking for Peg.
///
/// Encoding, per card C (entry E = Entries[C]):
///   0..63   The covering object's header starts E words BEFORE the card
///           boundary (0 = exactly at the boundary). One card holds
///           CardBytes / sizeof(Word) = 64 words, so any start inside the
///           previous card is expressible directly.
///   64..254 Back-skip: the start is at least one full card back; subtract
///           (E - 63) cards and look again. Skips chain, so an object
///           spanning thousands of cards resolves in O(span / 191) hops.
///   255     Unknown — no recorded object covers this card's first word.
///           Below the frontier of a bump-allocated space this means a
///           maintenance bug (objects are contiguous), and scan paths
///           assert on it.
///
/// Thread-safety: recordObject writes only the entries whose first word the
/// object (or pad filler) covers. Parallel-evacuation copy blocks never
/// overlap, and CAS losers retract their speculative allocation before any
/// recording happens, so every entry byte has exactly one writer; distinct
/// bytes are race-free, and the pool join publishes the writes before the
/// next collection reads them.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_CROSSINGMAP_H
#define TILGC_HEAP_CROSSINGMAP_H

#include "heap/Space.h"
#include "object/Object.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace tilgc {

/// Object-start offset table covering one bump-pointer space.
class CrossingMap {
public:
  /// Bytes per card; must match CardTable::CardBytes (statically checked in
  /// CardTable.h, which includes this header).
  static constexpr size_t CardBytes = 512;
  /// Words per card.
  static constexpr size_t CardWords = CardBytes / sizeof(Word);
  static_assert(CardWords == 64, "encoding assumes 64-word cards");

  /// Largest back-skip one entry can express, in cards.
  static constexpr unsigned MaxSkip = 254 - 63;
  /// "No object recorded for this card" sentinel.
  static constexpr uint8_t Unknown = 255;

  /// (Re)binds the map to \p S, covering its current capacity, and resets
  /// every entry to Unknown. Must be called whenever the covered space's
  /// backing storage is re-reserved.
  void attach(const Space &S);

  /// True if the map is bound to \p S's current backing storage.
  bool boundTo(const Space &S) const {
    return Base == S.baseAddr() && Epoch == S.reserveEpoch();
  }

  /// True if \p P points into the covered range.
  bool covers(const Word *P) const {
    return P >= Base && cardOf(P) < Entries.size();
  }

  /// Records an object (or pad filler) whose header starts at \p Header and
  /// spans \p TotalWords words (header included). Updates the entry of
  /// every card whose first word the object covers. An object strictly
  /// inside one card covers no card-first word and records nothing.
  void recordObject(const Word *Header, size_t TotalWords) {
    assert(covers(Header) && "recording an object outside the covered space");
    size_t C0 = cardOf(Header);
    size_t Off = wordInCard(Header);
    // First card whose first word the object covers.
    size_t D = Off == 0 ? C0 : C0 + 1;
    size_t CLast = cardOf(Header + TotalWords - 1);
    if (D > CLast)
      return;
    Entries[D] = static_cast<uint8_t>(Off == 0 ? 0 : CardWords - Off);
    for (size_t C = D + 1; C <= CLast; ++C) {
      size_t Skip = C - D;
      if (Skip > MaxSkip)
        Skip = MaxSkip;
      Entries[C] = static_cast<uint8_t>(63 + Skip);
    }
  }

  /// Returns the header of the object covering \p Card's first word, or
  /// nullptr if no object has been recorded there (Unknown). Chains through
  /// back-skip entries.
  const Word *objectStartCovering(size_t Card) const {
    assert(Card < Entries.size() && "card index out of range");
    for (;;) {
      uint8_t E = Entries[Card];
      if (E == Unknown)
        return nullptr;
      if (E < CardWords)
        return cardBoundary(Card) - E;
      size_t Skip = static_cast<size_t>(E) - 63;
      assert(Card >= Skip && "back-skip chain underflows the space base");
      Card -= Skip;
    }
  }

  size_t numCards() const { return Entries.size(); }

  /// First word of card \p Card.
  const Word *cardBoundary(size_t Card) const {
    return Base + Card * CardWords;
  }

  size_t cardOf(const Word *P) const {
    return static_cast<size_t>(P - Base) / CardWords;
  }

private:
  size_t wordInCard(const Word *P) const {
    return static_cast<size_t>(P - Base) % CardWords;
  }

  const Word *Base = nullptr;
  uint64_t Epoch = 0;
  std::vector<uint8_t> Entries;
};

} // namespace tilgc

#endif // TILGC_HEAP_CROSSINGMAP_H
