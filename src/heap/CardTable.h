//===- heap/CardTable.h - Card-marking remembered set -----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Card-marking write barrier (Sobalvarro 1988), the alternative the paper
/// suggests for Peg's sequential-store-buffer pathology: "A more realistic
/// approach such as card-marking would probably ameliorate most of the
/// problems." Cards deduplicate repeated updates to the same region, so the
/// per-collection root-processing cost is bounded by the number of dirty
/// cards rather than by the mutation count.
///
/// Simplification (documented in DESIGN.md): dirty-card processing walks the
/// tenured space's objects linearly and filters by the dirty bitmap rather
/// than maintaining a crossing map. The cost is O(live tenured data) per
/// minor collection, which is the same asymptotic cost the paper already
/// accepts for pretenured-region scanning and is negligible for the
/// benchmark that motivates the ablation (Peg's live data is tiny, while
/// its SSB sees millions of entries).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_CARDTABLE_H
#define TILGC_HEAP_CARDTABLE_H

#include "heap/Space.h"
#include "object/Object.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// Dirty-card bitmap covering one bump-pointer space.
class CardTable {
public:
  /// Bytes per card.
  static constexpr size_t CardBytes = 512;

  /// (Re)binds the table to \p S, covering its current capacity, and
  /// clears all marks. Must be called whenever the covered space's backing
  /// storage is re-reserved.
  void attach(const Space &S) {
    Base = S.firstPayload() - HeaderWords;
    size_t Cards = (S.capacityBytes() + CardBytes - 1) / CardBytes;
    Dirty.assign(Cards, 0);
  }

  /// True if \p Slot lies in the covered space.
  bool covers(const Word *Slot) const {
    return Slot >= Base && cardOf(Slot) < Dirty.size();
  }

  /// Marks the card containing \p Slot.
  void mark(const Word *Slot) {
    assert(covers(Slot) && "marking a slot outside the covered space");
    Dirty[cardOf(Slot)] = 1;
    ++MarksRecorded;
  }

  void clear() { Dirty.assign(Dirty.size(), 0); }

  /// Invokes \p Fn with the address of every pointer field of every object
  /// in \p S whose field address lies in a dirty card.
  template <typename FnT> void forEachDirtyField(const Space &S, FnT Fn) {
    S.walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
      assert(!Forwarded && "dirty-card scan during evacuation");
      (void)Forwarded;
      uint32_t Len = header::length(Descriptor);
      size_t FirstCard = cardOf(Payload);
      size_t LastCard = Len ? cardOf(Payload + Len - 1) : FirstCard;
      bool AnyDirty = false;
      for (size_t Card = FirstCard; Card <= LastCard; ++Card) {
        if (Dirty[Card]) {
          AnyDirty = true;
          break;
        }
      }
      if (!AnyDirty)
        return;
      forEachPointerField(Payload, [&](Word *Field) {
        if (Dirty[cardOf(Field)])
          Fn(Field);
      });
    });
  }

  size_t numDirtyCards() const {
    size_t N = 0;
    for (uint8_t D : Dirty)
      N += D;
    return N;
  }

  uint64_t marksRecorded() const { return MarksRecorded; }

private:
  size_t cardOf(const Word *P) const {
    return static_cast<size_t>(reinterpret_cast<const char *>(P) -
                               reinterpret_cast<const char *>(Base)) /
           CardBytes;
  }

  const Word *Base = nullptr;
  std::vector<uint8_t> Dirty;
  uint64_t MarksRecorded = 0;
};

} // namespace tilgc

#endif // TILGC_HEAP_CARDTABLE_H
