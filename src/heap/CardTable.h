//===- heap/CardTable.h - Card-marking remembered set -----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Card-marking write barrier (Sobalvarro 1988), the alternative the paper
/// suggests for Peg's sequential-store-buffer pathology: "A more realistic
/// approach such as card-marking would probably ameliorate most of the
/// problems." Cards deduplicate repeated updates to the same region, so the
/// per-collection root-processing cost is bounded by the number of dirty
/// cards rather than by the mutation count.
///
/// Beyond the paper: crossing-map remembered set (see DESIGN.md). Dirty-card
/// processing pairs the bitmap with a CrossingMap so a scan coalesces each
/// maximal dirty run, jumps straight to the object covering the run's first
/// word, and walks forward only until the run ends — visiting just the
/// pointer fields that lie inside dirty cards (large pointer arrays are
/// clipped to the run). The cost per minor collection is O(dirty cards),
/// independent of live tenured data, which is what lets card marking scale
/// to big tenured heaps and makes the adaptive SSB→card hybrid barrier
/// worthwhile.
///
/// Cards are deliberately NOT the channel for the pause-budget mode's
/// snapshot-at-the-beginning barrier: a dirty card records *where* a store
/// happened (for the next minor's old→young scan), but the deletion
/// barrier needs the *severed old value* at the moment of the overwrite —
/// by the time a card sweep revisits the slot, the snapshot edge is gone.
/// satbRecord is its own dedup'd value buffer on the write path, live only
/// while an incremental cycle is marking.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_HEAP_CARDTABLE_H
#define TILGC_HEAP_CARDTABLE_H

#include "heap/CrossingMap.h"
#include "heap/Space.h"
#include "object/Object.h"
#include "support/FaultInjector.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// Thrown when FaultPoint::CardSweepThrow fires mid-sweep. The collector
/// recovers by discarding the partial card scan and degrading to a full
/// tenured-space walk for that collection (duplicate field emissions are
/// harmless: minor-root processing tolerates repeated slots, exactly as it
/// does for SSB duplicates).
struct CardSweepFault {};

/// Dirty-card bitmap covering one bump-pointer space.
class CardTable {
public:
  /// Bytes per card.
  static constexpr size_t CardBytes = 512;
  static_assert(CardBytes == CrossingMap::CardBytes,
                "card table and crossing map must agree on card geometry");

  /// (Re)binds the table to \p S, covering its current capacity, and
  /// clears all marks. Must be called whenever the covered space's backing
  /// storage is re-reserved.
  void attach(const Space &S) {
    Base = S.firstPayload() - HeaderWords;
    Epoch = S.reserveEpoch();
    size_t Cards = (S.capacityBytes() + CardBytes - 1) / CardBytes;
    Dirty.assign(Cards, 0);
    NumDirty = 0;
  }

  /// True if the table is bound to \p S's current backing storage.
  bool boundTo(const Space &S) const {
    return Base == S.baseAddr() && Epoch == S.reserveEpoch();
  }

  /// True if \p Slot lies in the covered space.
  bool covers(const Word *Slot) const {
    return Slot >= Base && cardOf(Slot) < Dirty.size();
  }

  /// Marks the card containing \p Slot.
  void mark(const Word *Slot) {
    assert(covers(Slot) && "marking a slot outside the covered space");
    size_t C = cardOf(Slot);
    if (!Dirty[C]) {
      Dirty[C] = 1;
      ++NumDirty;
    }
    ++MarksRecorded;
  }

  void clear() {
    Dirty.assign(Dirty.size(), 0);
    NumDirty = 0;
  }

  /// Scans the dirty cards in [\p CardBegin, \p CardEnd), invoking \p Fn
  /// with the address of every pointer field lying in a dirty card. Uses
  /// \p CM to find the object covering each dirty run's first word, then
  /// walks objects forward (skipping pad fillers), clipping pointer-array
  /// element iteration to the run so the work done is proportional to the
  /// dirty cards scanned, never to live tenured data. \p CardsScanned and
  /// \p SlotsVisited accumulate the dirty cards walked and pointer fields
  /// examined. Any card-aligned partition of [0, numCards()) emits the
  /// same fields in the same order as one full scan: a run split at a
  /// partition boundary re-walks the straddling object, but the range
  /// checks keep every field in exactly one partition.
  template <typename FnT>
  void scanDirtyCardRange(const Space &S, const CrossingMap &CM,
                          size_t CardBegin, size_t CardEnd,
                          uint64_t &CardsScanned, uint64_t &SlotsVisited,
                          FnT Fn) const {
    assert(boundTo(S) && "card table stale after a space re-reserve");
    assert(CM.boundTo(S) && "crossing map stale after a space re-reserve");
    Word *SpaceBase = S.firstPayload() - HeaderWords;
    Word *Frontier = S.frontier();
    for (size_t C = CardBegin; C < CardEnd;) {
      if (!Dirty[C]) {
        ++C;
        continue;
      }
      size_t RunBegin = C;
      while (C < CardEnd && Dirty[C])
        ++C;
      size_t RunEnd = C;
      if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
          FaultInjector::global().shouldFire(FaultPoint::CardSweepThrow))
        throw CardSweepFault{};
      CardsScanned += RunEnd - RunBegin;
      Word *RunLo = SpaceBase + RunBegin * CrossingMap::CardWords;
      Word *RunHi = SpaceBase + RunEnd * CrossingMap::CardWords;
      if (RunHi > Frontier)
        RunHi = Frontier;
      if (RunLo >= Frontier)
        continue; // Dirty card past the frontier: stale mark, nothing to scan.
      const Word *Start = CM.objectStartCovering(RunBegin);
      assert(Start && "no crossing-map entry for a dirty card below the "
                      "frontier (maintenance bug)");
      // Release-mode fallback: walk from the space base. Correct, just slow.
      Word *P = Start ? SpaceBase + (Start - S.baseAddr()) : SpaceBase;
      while (P < RunHi) {
        Word Raw = P[0];
        if (TILGC_UNLIKELY(header::isPad(Raw))) {
          P += header::padWords(Raw);
          continue;
        }
        assert(!header::isForwarded(Raw) && "dirty-card scan during evacuation");
        Word *Payload = P + HeaderWords;
        switch (header::kind(Raw)) {
        case ObjectKind::Record: {
          uint32_t Mask = header::ptrMask(Raw);
          while (Mask) {
            unsigned I = static_cast<unsigned>(__builtin_ctz(Mask));
            Word *Field = &Payload[I];
            if (Field >= RunLo && Field < RunHi) {
              ++SlotsVisited;
              Fn(Field);
            }
            Mask &= Mask - 1;
          }
          break;
        }
        case ObjectKind::PtrArray: {
          Word *Lo = Payload > RunLo ? Payload : RunLo;
          Word *Hi = Payload + header::length(Raw);
          if (Hi > RunHi)
            Hi = RunHi;
          for (Word *Field = Lo; Field < Hi; ++Field) {
            ++SlotsVisited;
            Fn(Field);
          }
          break;
        }
        case ObjectKind::NonPtrArray:
          break;
        case ObjectKind::Pad:
          TILGC_UNREACHABLE("pad descriptor escaped the pad check");
        }
        P += objectTotalWords(Raw);
      }
    }
  }

  /// Full-table scan: every pointer field in every dirty card, via \p CM.
  template <typename FnT>
  void forEachDirtyField(const Space &S, const CrossingMap &CM, FnT Fn) const {
    uint64_t Cards = 0, Slots = 0;
    scanDirtyCardRange(S, CM, 0, Dirty.size(), Cards, Slots, Fn);
  }

  size_t numCards() const { return Dirty.size(); }

  size_t numDirtyCards() const { return NumDirty; }

  uint64_t marksRecorded() const { return MarksRecorded; }

  size_t cardOf(const Word *P) const {
    return static_cast<size_t>(reinterpret_cast<const char *>(P) -
                               reinterpret_cast<const char *>(Base)) /
           CardBytes;
  }

private:
  const Word *Base = nullptr;
  uint64_t Epoch = 0;
  std::vector<uint8_t> Dirty;
  size_t NumDirty = 0;
  uint64_t MarksRecorded = 0;
};

} // namespace tilgc

#endif // TILGC_HEAP_CARDTABLE_H
