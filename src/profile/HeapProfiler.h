//===- profile/HeapProfiler.h - Lifetime heap profiling ---------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heap profiler of paper §6. During a profiled run the collector
/// reports, per allocation site: bytes/objects allocated, bytes copied,
/// objects surviving their first collection, and object ages at death
/// (found by sweeping the allocation area for dead objects after each
/// collection). From the profile we derive:
///
///  * the pretenure set — sites whose old% is at least a cutoff (80% in the
///    paper's experiments), and
///  * the §7.2 scan-elimination set — pretenured sites s whose referent
///    sites P(s) are all pretenured, so objects from s can never hold young
///    pointers at a minor collection and need not be scanned at all.
///
/// The report format mirrors the paper's Figure 2.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_PROFILE_HEAPPROFILER_H
#define TILGC_PROFILE_HEAPPROFILER_H

#include "profile/AllocSite.h"

#include <cstdint>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

namespace tilgc {

/// Per-site lifetime statistics.
struct SiteStats {
  uint64_t AllocBytes = 0;
  uint64_t AllocCount = 0;
  uint64_t CopiedBytes = 0;
  uint64_t SurvivedFirstCount = 0;
  uint64_t DeathCount = 0;
  /// Sum over dead objects of (death stamp - birth stamp) in KB of
  /// cumulative allocation — the paper's "avg age" divides this by deaths.
  uint64_t DeathAgeKBSum = 0;
  /// Sites of objects referenced by this site's objects, observed during
  /// collections (used by the scan-elimination analysis).
  std::set<uint32_t> ReferentSites;

  /// Fraction of this site's objects that survived their first collection.
  double oldFraction() const {
    return AllocCount ? static_cast<double>(SurvivedFirstCount) /
                            static_cast<double>(AllocCount)
                      : 0.0;
  }
  double avgDeathAgeKB() const {
    return DeathCount ? static_cast<double>(DeathAgeKBSum) /
                            static_cast<double>(DeathCount)
                      : 0.0;
  }
};

/// Derived pretenuring decisions (see gc/GenerationalCollector), carrying
/// the promotion-rate evidence that justified each one so the decision can
/// be audited at runtime (the telemetry plane's onPretenureDecision hook).
/// The evidence fields default to zero: hand-written decisions (tests,
/// ablation configs) stay two-field aggregates.
struct PretenureDecision {
  uint32_t SiteId;
  bool EliminateScan; ///< §7.2: referents are all pretenured too.
  // --- Evidence (filled by derivePretenureSet) -------------------------
  double OldFraction = 0.0;  ///< Observed survive-first fraction.
  double OldCutoff = 0.0;    ///< The cutoff the fraction was tested against.
  uint64_t AllocBytes = 0;   ///< Profiled bytes allocated at the site.
  uint64_t AllocCount = 0;   ///< Profiled allocations at the site.
  uint64_t SurvivedFirstCount = 0; ///< Objects surviving their first GC.
};

/// Accumulates per-site statistics during a profiled run.
class HeapProfiler {
public:
  void onAlloc(uint32_t Site, uint64_t Bytes) {
    SiteStats &S = statsFor(Site);
    S.AllocBytes += Bytes;
    S.AllocCount += 1;
  }

  void onCopy(uint32_t Site, uint64_t Bytes) {
    statsFor(Site).CopiedBytes += Bytes;
  }

  void onSurviveFirst(uint32_t Site) {
    statsFor(Site).SurvivedFirstCount += 1;
  }

  void onDeath(uint32_t Site, uint64_t AgeKB) {
    SiteStats &S = statsFor(Site);
    S.DeathCount += 1;
    S.DeathAgeKBSum += AgeKB;
  }

  void onReferent(uint32_t FromSite, uint32_t ToSite) {
    statsFor(FromSite).ReferentSites.insert(ToSite);
  }

  /// Forgets all statistics (benches reset between runs).
  void reset() { Stats.clear(); }

  /// Accumulates \p Other into this profiler: counters add, referent-site
  /// sets union. The parallel evacuator gives each worker a private scratch
  /// profiler and merges them after the join, so a profiled parallel run
  /// derives exactly the same pretenure set as a serial one.
  void mergeFrom(const HeapProfiler &Other);

  const SiteStats &site(uint32_t Id) const;
  size_t numSites() const { return Stats.size(); }

  /// Total bytes allocated / copied across all sites.
  uint64_t totalAllocBytes() const;
  uint64_t totalCopiedBytes() const;

  /// Sites whose old% is at least \p OldCutoff (paper default 0.8) and that
  /// allocated at least \p MinObjects objects (noise floor). For each, also
  /// decides scan elimination by the closed-referent-set fixpoint of §7.2.
  std::vector<PretenureDecision>
  derivePretenureSet(double OldCutoff = 0.8, uint64_t MinObjects = 8) const;

  /// Writes a Figure-2-style report: sites with alloc% or copied% above
  /// \p DisplayCutoffPercent, plus the summary footer.
  void report(std::FILE *Out, const std::string &Title,
              double DisplayCutoffPercent = 1.0,
              double OldCutoff = 0.8) const;

  /// Saves/loads the profile as a line-oriented text file so a profiling
  /// run can feed a later pretenured run.
  bool save(const std::string &Path) const;
  bool load(const std::string &Path);

private:
  SiteStats &statsFor(uint32_t Site) {
    if (Site >= Stats.size())
      Stats.resize(Site + 1);
    return Stats[Site];
  }

  std::vector<SiteStats> Stats;
};

} // namespace tilgc

#endif // TILGC_PROFILE_HEAPPROFILER_H
