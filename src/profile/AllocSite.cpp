//===- profile/AllocSite.cpp - Allocation-site registry -------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/AllocSite.h"

using namespace tilgc;

AllocSiteRegistry &AllocSiteRegistry::global() {
  static AllocSiteRegistry Registry;
  return Registry;
}

AllocSiteRegistry::AllocSiteRegistry() {
  // Id 0 is the runtime's own site (type descriptors and friends).
  Names.push_back("<runtime>");
  NumSites.store(1, std::memory_order_release);
}

uint32_t AllocSiteRegistry::define(std::string Name) {
  std::lock_guard<std::mutex> L(DefineMutex);
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.push_back(std::move(Name));
  NumSites.store(Id + 1, std::memory_order_release);
  return Id;
}

uint32_t AllocSiteRegistry::lookup(const std::string &Name) const {
  uint32_t N = size();
  for (uint32_t I = 0; I < N; ++I)
    if (Names[I] == Name)
      return I;
  return UINT32_MAX;
}
