//===- profile/AllocSite.cpp - Allocation-site registry -------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/AllocSite.h"

using namespace tilgc;

AllocSiteRegistry &AllocSiteRegistry::global() {
  static AllocSiteRegistry Registry;
  return Registry;
}

AllocSiteRegistry::AllocSiteRegistry() {
  // Id 0 is the runtime's own site (type descriptors and friends).
  Names.push_back("<runtime>");
}

uint32_t AllocSiteRegistry::define(std::string Name) {
  uint32_t Id = static_cast<uint32_t>(Names.size());
  Names.push_back(std::move(Name));
  return Id;
}

uint32_t AllocSiteRegistry::lookup(const std::string &Name) const {
  for (uint32_t I = 0; I < Names.size(); ++I)
    if (Names[I] == Name)
      return I;
  return UINT32_MAX;
}
