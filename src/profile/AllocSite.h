//===- profile/AllocSite.h - Allocation-site registry -----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Allocation sites. The paper's profiling build modifies the compiler so
/// that "an allocation site identifier is prepended to each allocated
/// object"; here every allocation names its site explicitly and the id is
/// stored in the object's metadata header word. Sites are registered once
/// per program point (function-local statics in workload code).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_PROFILE_ALLOCSITE_H
#define TILGC_PROFILE_ALLOCSITE_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

namespace tilgc {

/// Process-wide table of allocation sites.
///
/// Thread-safety: sites register lazily through function-local statics in
/// workload code, and multi-mutator runs execute per-thread workload
/// instances concurrently — so define() takes a mutex, storage is a deque
/// (no element ever moves), and the published count is a release store the
/// lock-free readers acquire. Single-threaded cost: one atomic load where
/// a plain size() load was.
class AllocSiteRegistry {
public:
  static AllocSiteRegistry &global();

  /// Registers a site named \p Name and returns its id. Call once per
  /// program point (use a function-local static). Thread-safe.
  uint32_t define(std::string Name);

  const std::string &name(uint32_t Id) const {
    assert(Id < size() && "unknown allocation site");
    return Names[Id];
  }

  /// Like name(), but tolerates ids this process never registered (e.g. a
  /// profile file written by a different binary).
  const std::string &nameOrUnknown(uint32_t Id) const {
    static const std::string Unknown = "<unknown>";
    return Id < size() ? Names[Id] : Unknown;
  }

  /// Returns the id of the site named \p Name, or UINT32_MAX if absent.
  uint32_t lookup(const std::string &Name) const;

  uint32_t size() const {
    return NumSites.load(std::memory_order_acquire);
  }

private:
  AllocSiteRegistry();
  std::deque<std::string> Names;
  std::atomic<uint32_t> NumSites{0};
  std::mutex DefineMutex;
};

/// The reserved site id for allocations the runtime itself performs
/// (type descriptors, etc.).
inline constexpr uint32_t RuntimeSiteId = 0;

} // namespace tilgc

#endif // TILGC_PROFILE_ALLOCSITE_H
