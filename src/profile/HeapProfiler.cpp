//===- profile/HeapProfiler.cpp - Lifetime heap profiling -----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "profile/HeapProfiler.h"

#include "support/Table.h"

#include <algorithm>
#include <cinttypes>
#include <unordered_set>

using namespace tilgc;

const SiteStats &HeapProfiler::site(uint32_t Id) const {
  static const SiteStats Empty;
  if (Id >= Stats.size())
    return Empty;
  return Stats[Id];
}

uint64_t HeapProfiler::totalAllocBytes() const {
  uint64_t Total = 0;
  for (const SiteStats &S : Stats)
    Total += S.AllocBytes;
  return Total;
}

void HeapProfiler::mergeFrom(const HeapProfiler &Other) {
  for (uint32_t Id = 0; Id < Other.Stats.size(); ++Id) {
    const SiteStats &From = Other.Stats[Id];
    SiteStats &To = statsFor(Id);
    To.AllocBytes += From.AllocBytes;
    To.AllocCount += From.AllocCount;
    To.CopiedBytes += From.CopiedBytes;
    To.SurvivedFirstCount += From.SurvivedFirstCount;
    To.DeathCount += From.DeathCount;
    To.DeathAgeKBSum += From.DeathAgeKBSum;
    To.ReferentSites.insert(From.ReferentSites.begin(),
                            From.ReferentSites.end());
  }
}

uint64_t HeapProfiler::totalCopiedBytes() const {
  uint64_t Total = 0;
  for (const SiteStats &S : Stats)
    Total += S.CopiedBytes;
  return Total;
}

std::vector<PretenureDecision>
HeapProfiler::derivePretenureSet(double OldCutoff, uint64_t MinObjects) const {
  // Step 1: the pretenure set S = sites whose old% >= cutoff.
  std::unordered_set<uint32_t> Chosen;
  for (uint32_t Id = 0; Id < Stats.size(); ++Id) {
    const SiteStats &S = Stats[Id];
    if (S.AllocCount >= MinObjects && S.oldFraction() >= OldCutoff)
      Chosen.insert(Id);
  }

  // Step 2 (§7.2): scan elimination for sites s with P(s) ⊆ S. Removing a
  // site from S (we never do) would invalidate others, but adding never
  // does, so a single pass over the recorded referent sets suffices.
  std::vector<PretenureDecision> Decisions;
  for (uint32_t Id : Chosen) {
    bool Closed = true;
    for (uint32_t Ref : Stats[Id].ReferentSites) {
      if (!Chosen.count(Ref)) {
        Closed = false;
        break;
      }
    }
    PretenureDecision D{Id, Closed};
    const SiteStats &S = Stats[Id];
    D.OldFraction = S.oldFraction();
    D.OldCutoff = OldCutoff;
    D.AllocBytes = S.AllocBytes;
    D.AllocCount = S.AllocCount;
    D.SurvivedFirstCount = S.SurvivedFirstCount;
    Decisions.push_back(D);
  }
  std::sort(Decisions.begin(), Decisions.end(),
            [](const PretenureDecision &A, const PretenureDecision &B) {
              return A.SiteId < B.SiteId;
            });
  return Decisions;
}

void HeapProfiler::report(std::FILE *Out, const std::string &Title,
                          double DisplayCutoffPercent,
                          double OldCutoff) const {
  uint64_t TotalAlloc = totalAllocBytes();
  uint64_t TotalCopied = totalCopiedBytes();
  double AllocDen = TotalAlloc ? static_cast<double>(TotalAlloc) : 1.0;
  double CopiedDen = TotalCopied ? static_cast<double>(TotalCopied) : 1.0;

  std::fprintf(Out, "================ %s ================\n", Title.c_str());
  std::fprintf(Out,
               "%-28s %7s %12s %10s %7s %9s %12s %8s %13s\n",
               "site", "alloc%", "alloc size", "alloc cnt", "%old",
               "avg age", "copied size", "copied%", "copied/alloc");

  // Display order: bulk allocators first (by alloc bytes), like Figure 2.
  std::vector<uint32_t> Order;
  for (uint32_t Id = 0; Id < Stats.size(); ++Id)
    Order.push_back(Id);
  std::sort(Order.begin(), Order.end(), [&](uint32_t A, uint32_t B) {
    return Stats[A].AllocBytes > Stats[B].AllocBytes;
  });

  size_t Shown = 0;
  for (uint32_t Id : Order) {
    const SiteStats &S = Stats[Id];
    double AllocPct = 100.0 * static_cast<double>(S.AllocBytes) / AllocDen;
    double CopiedPct = 100.0 * static_cast<double>(S.CopiedBytes) / CopiedDen;
    if (AllocPct <= DisplayCutoffPercent && CopiedPct <= DisplayCutoffPercent)
      continue;
    ++Shown;
    const std::string &Name = AllocSiteRegistry::global().nameOrUnknown(Id);
    bool Targeted = S.oldFraction() >= OldCutoff;
    std::fprintf(Out,
                 "%-28s %6.2f%% %12" PRIu64 " %10" PRIu64
                 " %6.2f %9.1f %12" PRIu64 " %7.2f%% %12.2f%s\n",
                 Name.c_str(), AllocPct, S.AllocBytes, S.AllocCount,
                 100.0 * S.oldFraction(), S.avgDeathAgeKB(), S.CopiedBytes,
                 CopiedPct,
                 S.AllocBytes ? static_cast<double>(S.CopiedBytes) /
                                    static_cast<double>(S.AllocBytes)
                              : 0.0,
                 Targeted ? "  <--" : "");
  }

  // Footer: the paper's summary lines.
  uint64_t TargetAlloc = 0, TargetCopied = 0;
  size_t NumSitesWithAllocs = 0;
  for (const SiteStats &S : Stats) {
    if (S.AllocCount == 0)
      continue;
    ++NumSitesWithAllocs;
    if (S.oldFraction() >= OldCutoff) {
      TargetAlloc += S.AllocBytes;
      TargetCopied += S.CopiedBytes;
    }
  }
  std::fprintf(Out, "---------- heap profile end : short ----------\n");
  std::fprintf(Out, "Showing only entries with alloc %% > %.2f\n",
               DisplayCutoffPercent);
  std::fprintf(Out, "   or with copy %% > %.2f\n", DisplayCutoffPercent);
  std::fprintf(Out, "%zu of %zu entries displayed.\n", Shown,
               NumSitesWithAllocs);
  std::fprintf(Out, "Using a (%% old) cutoff of %.0f%%,\n", 100.0 * OldCutoff);
  std::fprintf(Out,
               "targeted sites comprise %.2f%% copied and %.2f%% allocated.\n",
               100.0 * static_cast<double>(TargetCopied) / CopiedDen,
               100.0 * static_cast<double>(TargetAlloc) / AllocDen);
  std::fputc('\n', Out);
}

bool HeapProfiler::save(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  for (uint32_t Id = 0; Id < Stats.size(); ++Id) {
    const SiteStats &S = Stats[Id];
    if (S.AllocCount == 0)
      continue;
    std::fprintf(F,
                 "site %" PRIu32 " %s %" PRIu64 " %" PRIu64 " %" PRIu64
                 " %" PRIu64 " %" PRIu64 " %" PRIu64,
                 Id, AllocSiteRegistry::global().nameOrUnknown(Id).c_str(),
                 S.AllocBytes, S.AllocCount, S.CopiedBytes,
                 S.SurvivedFirstCount, S.DeathCount, S.DeathAgeKBSum);
    for (uint32_t Ref : S.ReferentSites)
      std::fprintf(F, " %" PRIu32, Ref);
    std::fputc('\n', F);
  }
  std::fclose(F);
  return true;
}

bool HeapProfiler::load(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "r");
  if (!F)
    return false;
  reset();
  char Name[256];
  uint32_t Id;
  SiteStats S;
  // Line format: "site <id> <name> <allocB> <allocN> <copiedB> <survN>
  // <deathN> <ageSum> <ref>*".
  while (std::fscanf(F,
                     "site %" SCNu32 " %255s %" SCNu64 " %" SCNu64 " %" SCNu64
                     " %" SCNu64 " %" SCNu64 " %" SCNu64,
                     &Id, Name, &S.AllocBytes, &S.AllocCount, &S.CopiedBytes,
                     &S.SurvivedFirstCount, &S.DeathCount,
                     &S.DeathAgeKBSum) == 8) {
    SiteStats &Dest = statsFor(Id);
    Dest = S;
    Dest.ReferentSites.clear();
    // Referent ids follow until end of line.
    int C;
    uint32_t Ref;
    while ((C = std::fgetc(F)) == ' ') {
      if (std::fscanf(F, "%" SCNu32, &Ref) == 1)
        Dest.ReferentSites.insert(Ref);
      else
        break;
    }
    if (C != '\n' && C != EOF)
      std::ungetc(C, F);
  }
  std::fclose(F);
  return true;
}
