//===- support/Timer.h - Accumulating wall-clock timers -------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulating timers used to split execution time into the paper's
/// Total / GC / Client and GC-stack / GC-copy buckets. The paper used UNIX
/// virtual timers; we use steady_clock, which preserves the shapes the
/// evaluation cares about.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_TIMER_H
#define TILGC_SUPPORT_TIMER_H

#include <cassert>
#include <chrono>
#include <cstdint>

namespace tilgc {

/// An accumulating stopwatch. start()/stop() pairs add elapsed time into a
/// running total; nesting is not allowed (assert-checked).
class Timer {
public:
  void start() {
    assert(!Running && "Timer already running");
    Running = true;
    Begin = Clock::now();
  }

  void stop() {
    assert(Running && "Timer not running");
    Running = false;
    AccumulatedNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - Begin)
                         .count();
  }

  /// Total accumulated time in seconds.
  double seconds() const {
    assert(!Running && "read while running");
    return static_cast<double>(AccumulatedNs) * 1e-9;
  }

  /// Resets the accumulated total to zero.
  void reset() {
    assert(!Running && "reset while running");
    AccumulatedNs = 0;
  }

  bool isRunning() const { return Running; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  int64_t AccumulatedNs = 0;
  bool Running = false;
};

/// RAII region that accumulates into a Timer.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

/// RAII region that *pauses* a running Timer (e.g. to exclude GC time from a
/// client timer).
class TimerPause {
public:
  explicit TimerPause(Timer &T) : T(T), WasRunning(T.isRunning()) {
    if (WasRunning)
      T.stop();
  }
  ~TimerPause() {
    if (WasRunning)
      T.start();
  }
  TimerPause(const TimerPause &) = delete;
  TimerPause &operator=(const TimerPause &) = delete;

private:
  Timer &T;
  bool WasRunning;
};

} // namespace tilgc

#endif // TILGC_SUPPORT_TIMER_H
