//===- support/Timer.h - Accumulating wall-clock timers -------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Accumulating timers used to split execution time into the paper's
/// Total / GC / Client and GC-stack / GC-copy buckets. The paper used UNIX
/// virtual timers; we use steady_clock, which preserves the shapes the
/// evaluation cares about.
///
/// Misuse discipline: the checks here used to be assert-only, which meant
/// an NDEBUG build silently *discarded* accumulated time on a double
/// start() and returned a stale total from seconds() mid-region.
/// Consistent with the project's removal of NDEBUG-erased checks, misuse
/// is now tolerated-and-counted in every build mode:
///
///  * start() on a running timer nests (a depth counter); the original
///    start point — and therefore the accumulated total — is preserved,
///    and the misuse is counted.
///  * stop() at depth zero is a counted no-op; an inner stop() just
///    unwinds one nesting level (only the outermost stop accumulates).
///  * seconds() is a live read: while running it includes the elapsed
///    time of the open region instead of returning a stale total.
///  * reset() while running is counted, zeroes the total and restarts
///    the open region at now (the depth is preserved).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_TIMER_H
#define TILGC_SUPPORT_TIMER_H

#include "support/Compiler.h"

#include <chrono>
#include <cstdint>

namespace tilgc {

/// An accumulating stopwatch with counted misuse tolerance (see the file
/// comment).
class Timer {
public:
  void start() {
    if (TILGC_UNLIKELY(Depth != 0)) {
      ++Depth;
      ++MisuseCount;
      return; // Keep the outer region's start point.
    }
    Depth = 1;
    Begin = Clock::now();
  }

  void stop() {
    if (TILGC_UNLIKELY(Depth == 0)) {
      ++MisuseCount;
      return;
    }
    if (--Depth != 0)
      return; // Inner stop of a (misused) nest: outermost stop accumulates.
    AccumulatedNs += std::chrono::duration_cast<std::chrono::nanoseconds>(
                         Clock::now() - Begin)
                         .count();
  }

  /// Total accumulated time in seconds — a live read: an open region
  /// contributes its elapsed time so far.
  double seconds() const {
    int64_t Ns = AccumulatedNs;
    if (TILGC_UNLIKELY(Depth != 0))
      Ns += std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 Begin)
                .count();
    return static_cast<double>(Ns) * 1e-9;
  }

  /// Resets the accumulated total to zero. Counted as misuse while
  /// running; the open region restarts at now.
  void reset() {
    if (TILGC_UNLIKELY(Depth != 0)) {
      ++MisuseCount;
      Begin = Clock::now();
    }
    AccumulatedNs = 0;
  }

  bool isRunning() const { return Depth != 0; }

  /// Current start/stop nesting depth (1 while properly running).
  unsigned depth() const { return Depth; }

  /// Lifetime count of tolerated misuses: nested starts, unmatched stops,
  /// and resets while running. Surfaced as GcStats::timerMisuses().
  uint64_t misuses() const { return MisuseCount; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Begin;
  int64_t AccumulatedNs = 0;
  unsigned Depth = 0;
  uint64_t MisuseCount = 0;
};

/// RAII region that accumulates into a Timer.
class TimerScope {
public:
  explicit TimerScope(Timer &T) : T(T) { T.start(); }
  ~TimerScope() { T.stop(); }
  TimerScope(const TimerScope &) = delete;
  TimerScope &operator=(const TimerScope &) = delete;

private:
  Timer &T;
};

/// RAII region that *pauses* a running Timer (e.g. to exclude GC time from a
/// client timer).
class TimerPause {
public:
  explicit TimerPause(Timer &T) : T(T), WasRunning(T.isRunning()) {
    if (WasRunning)
      T.stop();
  }
  ~TimerPause() {
    if (WasRunning)
      T.start();
  }
  TimerPause(const TimerPause &) = delete;
  TimerPause &operator=(const TimerPause &) = delete;

private:
  Timer &T;
  bool WasRunning;
};

} // namespace tilgc

#endif // TILGC_SUPPORT_TIMER_H
