//===- support/FaultInjector.h - Deterministic fault injection --*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, deterministic fault injector for torturing the collector's
/// failure paths (MMTk/JikesRVM harness tradition). Each named injection
/// point counts its dynamic crossings; an armed point fires on a configured
/// crossing window [FireAt, FireAt + FireCount). Arming from a seed maps
/// (seed, point) through splitMix64 so a one-word seed reproduces an entire
/// fault schedule.
///
/// Cost discipline: every instrumented site guards itself with
/// `TILGC_UNLIKELY(FaultInjector::enabled())` — a single relaxed atomic
/// load of a global flag that is false in production — so the disarmed
/// injector adds one well-predicted branch to the paths it watches and
/// nothing else. Crossings are only counted while some point is armed,
/// which also keeps the schedule deterministic for a given armed set.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_FAULTINJECTOR_H
#define TILGC_SUPPORT_FAULTINJECTOR_H

#include "support/Compiler.h"
#include "support/Random.h"

#include <atomic>
#include <cstdint>

namespace tilgc {

/// Named injection points, wired through heap/ and gc/.
enum class FaultPoint : unsigned {
  /// Space::allocate returns null on a mutator-path allocation, driving the
  /// collector's OOM escalation ladder. Suppressed while a collection is in
  /// progress (ScopedGcPhase) so evacuation copy destinations are exercised
  /// via SpaceBlockHandout instead.
  SpaceAllocNull,
  /// Space::allocateBlock refuses the handout, starving a parallel
  /// evacuation worker of copy space.
  SpaceBlockHandout,
  /// A parallel evacuation worker sleeps mid-drain, skewing the
  /// termination protocol's timing.
  WorkerStall,
  /// A parallel evacuation worker throws mid-drain; the evacuator must
  /// degrade to a serial recovery drain instead of deadlocking.
  WorkerThrow,
  /// Collectors poison evacuated from-space regardless of VerifyLevel, so
  /// any stale from-space read trips the misaligned-pointer check.
  FromSpacePoison,
  /// A mutator thread sleeps just before parking at a safepoint poll,
  /// stretching the rendezvous window while the other threads sit stopped
  /// (multi-mutator torture).
  SafepointStall,
  /// The MarkCompact controlling thread throws out of the MARK or PLAN
  /// phase (both still mutation-free); the generational collector must
  /// fail over to a semispace major for that collection.
  MarkPlanThrow,
  /// The dirty-card sweep throws mid-run; the collector must recover by
  /// degrading to a full tenured-space walk (the pre-crossing-map
  /// behavior) for that minor collection.
  CardSweepThrow,
  /// Mutator::refillTlab pretends the nursery refused the block handout,
  /// forcing the mutator onto the stop-the-world slow allocation path.
  TlabRefillFail,
  /// A mutator skips its safepoint poll entirely and keeps running for a
  /// bounded interval — the watchdog's canonical prey: the rendezvous
  /// stretches far past any reasonable deadline but must still complete.
  SafepointNoShow,
  /// Space::reserve sees the host allocator fail; the space must retry
  /// with bounded backoff before escalating to the structured fatal.
  HostGrowFail,
};

/// Anchors the per-point array size to the enum: extending FaultPoint
/// without updating this alias fails the static_asserts below and the
/// -Wswitch check in pointName, so the name table and counters can never
/// silently desync.
inline constexpr FaultPoint LastFaultPoint = FaultPoint::HostGrowFail;

class FaultInjector {
public:
  static constexpr unsigned NumPoints =
      static_cast<unsigned>(LastFaultPoint) + 1;
  static_assert(NumPoints == 11,
                "FaultPoint changed: update LastFaultPoint, pointName, and "
                "the torture matrices that enumerate points");
  /// FireCount value meaning "once triggered, fire on every crossing".
  static constexpr uint64_t Forever = ~static_cast<uint64_t>(0);

  /// The process-wide injector instance.
  static FaultInjector &global();

  /// One relaxed load; false unless some point is armed. Gate every
  /// instrumented site on this (under TILGC_UNLIKELY) before touching
  /// per-point state.
  static bool enabled() {
    return AnyArmed.load(std::memory_order_relaxed);
  }

  /// Arms \p P to fire on crossings [FireAt, FireAt + FireCount).
  /// Crossings are 1-based: FireAt == 1 fires on the first crossing.
  void arm(FaultPoint P, uint64_t FireAt, uint64_t FireCount = 1);

  /// Arms \p P at a crossing derived deterministically from \p Seed,
  /// uniform in [1, Window].
  void armFromSeed(FaultPoint P, uint64_t Seed, uint64_t Window,
                   uint64_t FireCount = 1);

  void disarm(FaultPoint P);

  /// Disarms every point and zeroes all counters.
  void reset();

  /// Counts a crossing of \p P and reports whether the fault fires there.
  /// Only call behind enabled(); crossings of SpaceAllocNull inside a
  /// collection phase neither count nor fire.
  bool shouldFire(FaultPoint P);

  /// Dynamic crossings counted while armed (diagnostics / tests).
  uint64_t crossings(FaultPoint P) const {
    return Points[index(P)].Crossings.load(std::memory_order_relaxed);
  }

  /// Times \p P actually fired.
  uint64_t fired(FaultPoint P) const {
    return Points[index(P)].Fired.load(std::memory_order_relaxed);
  }

  /// Human-readable point name for diagnostics.
  static const char *pointName(FaultPoint P);

  /// RAII marker for "a collection is running": SpaceAllocNull is a
  /// mutator-path fault, and a copy destination running dry mid-evacuation
  /// is a different (terminal) failure, so alloc-null injection is
  /// suppressed while any collector phase is live.
  class ScopedGcPhase {
  public:
    ScopedGcPhase() { GcDepth.fetch_add(1, std::memory_order_relaxed); }
    ~ScopedGcPhase() { GcDepth.fetch_sub(1, std::memory_order_relaxed); }
    ScopedGcPhase(const ScopedGcPhase &) = delete;
    ScopedGcPhase &operator=(const ScopedGcPhase &) = delete;
  };

private:
  struct Point {
    std::atomic<bool> Armed{false};
    std::atomic<uint64_t> FireAt{0};
    std::atomic<uint64_t> FireCount{0};
    std::atomic<uint64_t> Crossings{0};
    std::atomic<uint64_t> Fired{0};
  };

  static unsigned index(FaultPoint P) { return static_cast<unsigned>(P); }
  void recomputeAnyArmed();

  Point Points[NumPoints];
  static std::atomic<bool> AnyArmed;
  static std::atomic<int> GcDepth;
};

} // namespace tilgc

#endif // TILGC_SUPPORT_FAULTINJECTOR_H
