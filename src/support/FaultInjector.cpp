//===- support/FaultInjector.cpp - Deterministic fault injection ----------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

using namespace tilgc;

std::atomic<bool> FaultInjector::AnyArmed{false};
std::atomic<int> FaultInjector::GcDepth{0};

FaultInjector &FaultInjector::global() {
  static FaultInjector FI;
  return FI;
}

void FaultInjector::arm(FaultPoint P, uint64_t FireAt, uint64_t FireCount) {
  Point &Pt = Points[index(P)];
  Pt.FireAt.store(FireAt, std::memory_order_relaxed);
  Pt.FireCount.store(FireCount, std::memory_order_relaxed);
  Pt.Crossings.store(0, std::memory_order_relaxed);
  Pt.Fired.store(0, std::memory_order_relaxed);
  Pt.Armed.store(true, std::memory_order_release);
  recomputeAnyArmed();
}

void FaultInjector::armFromSeed(FaultPoint P, uint64_t Seed, uint64_t Window,
                                uint64_t FireCount) {
  if (Window == 0)
    Window = 1;
  uint64_t State = Seed ^ (0x9e3779b97f4a7c15ULL * (index(P) + 1));
  uint64_t Mixed = splitMix64(State);
  arm(P, 1 + Mixed % Window, FireCount);
}

void FaultInjector::disarm(FaultPoint P) {
  Points[index(P)].Armed.store(false, std::memory_order_release);
  recomputeAnyArmed();
}

void FaultInjector::reset() {
  for (unsigned I = 0; I < NumPoints; ++I) {
    Point &Pt = Points[I];
    Pt.Armed.store(false, std::memory_order_relaxed);
    Pt.FireAt.store(0, std::memory_order_relaxed);
    Pt.FireCount.store(0, std::memory_order_relaxed);
    Pt.Crossings.store(0, std::memory_order_relaxed);
    Pt.Fired.store(0, std::memory_order_relaxed);
  }
  AnyArmed.store(false, std::memory_order_release);
}

bool FaultInjector::shouldFire(FaultPoint P) {
  // Mutator-path alloc faults must not perturb (or be perturbed by)
  // collection-internal allocation; see ScopedGcPhase.
  if (P == FaultPoint::SpaceAllocNull &&
      GcDepth.load(std::memory_order_relaxed) > 0)
    return false;

  Point &Pt = Points[index(P)];
  uint64_t Crossing = Pt.Crossings.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!Pt.Armed.load(std::memory_order_acquire))
    return false;

  uint64_t FireAt = Pt.FireAt.load(std::memory_order_relaxed);
  uint64_t FireCount = Pt.FireCount.load(std::memory_order_relaxed);
  if (Crossing < FireAt)
    return false;
  if (FireCount != Forever && Crossing >= FireAt + FireCount)
    return false;
  Pt.Fired.fetch_add(1, std::memory_order_relaxed);
  return true;
}

const char *FaultInjector::pointName(FaultPoint P) {
  // Exhaustive by construction: no default, so -Wswitch flags any enum
  // entry missing a name, and the trailing return is unreachable.
  switch (P) {
  case FaultPoint::SpaceAllocNull:
    return "space-alloc-null";
  case FaultPoint::SpaceBlockHandout:
    return "space-block-handout";
  case FaultPoint::WorkerStall:
    return "worker-stall";
  case FaultPoint::WorkerThrow:
    return "worker-throw";
  case FaultPoint::FromSpacePoison:
    return "from-space-poison";
  case FaultPoint::SafepointStall:
    return "safepoint-stall";
  case FaultPoint::MarkPlanThrow:
    return "mark-plan-throw";
  case FaultPoint::CardSweepThrow:
    return "card-sweep-throw";
  case FaultPoint::TlabRefillFail:
    return "tlab-refill-fail";
  case FaultPoint::SafepointNoShow:
    return "safepoint-no-show";
  case FaultPoint::HostGrowFail:
    return "host-grow-fail";
  }
  return "unknown";
}

void FaultInjector::recomputeAnyArmed() {
  bool Any = false;
  for (unsigned I = 0; I < NumPoints; ++I)
    Any |= Points[I].Armed.load(std::memory_order_relaxed);
  AnyArmed.store(Any, std::memory_order_release);
}
