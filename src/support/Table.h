//===- support/Table.h - Column-aligned table printing --------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small column-aligned table printer used by the benchmark harnesses to
/// regenerate the paper's tables. Rows are buffered, column widths computed,
/// and the result written to a FILE* (we avoid <iostream> per the LLVM
/// coding standard).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_TABLE_H
#define TILGC_SUPPORT_TABLE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace tilgc {

/// Printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats \p Seconds with two decimal places (the paper's convention).
std::string formatSeconds(double Seconds);

/// Formats a byte count as an exact integer (the paper reports copied bytes
/// exactly).
std::string formatBytes(uint64_t Bytes);

/// Formats a byte count in a human-friendly unit (KB/MB), as Table 2 does.
std::string formatBytesHuman(uint64_t Bytes);

/// Formats a ratio as a percentage with two decimal places.
std::string formatPercent(double Fraction);

/// Buffered column-aligned table writer.
class Table {
public:
  explicit Table(std::string Title) : Title(std::move(Title)) {}

  /// Sets the header row.
  void setHeader(std::vector<std::string> Columns);

  /// Appends a data row; the column count must match the header.
  void addRow(std::vector<std::string> Columns);

  /// Inserts a horizontal separator line at the current position.
  void addSeparator();

  /// Renders the table to \p Out (defaults used by benches: stdout).
  void print(std::FILE *Out) const;

private:
  std::string Title;
  std::vector<std::string> Header;
  /// Each row is either a list of cells or empty (separator marker).
  std::vector<std::vector<std::string>> Rows;
  std::vector<bool> RowIsSeparator;
};

} // namespace tilgc

#endif // TILGC_SUPPORT_TABLE_H
