//===- support/Compiler.h - Portable compiler helpers ---------*- C++ -*-===//
//
// Part of the tilgc project: a reproduction of "Generational Stack
// Collection and Profile-Driven Pretenuring" (Cheng, Harper, Lee, PLDI'98).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portable macros used throughout the library: unreachable markers
/// and branch-prediction hints.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_COMPILER_H
#define TILGC_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

namespace tilgc {

/// Reports an internal invariant violation and aborts.
///
/// Used by TILGC_UNREACHABLE; not intended to be called directly.
[[noreturn]] inline void reportUnreachable(const char *Msg, const char *File,
                                           unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace tilgc

/// Marks a point in the program that must never be executed.
#define TILGC_UNREACHABLE(msg)                                                 \
  ::tilgc::reportUnreachable(msg, __FILE__, __LINE__)

#if defined(__GNUC__) || defined(__clang__)
#define TILGC_LIKELY(x) (__builtin_expect(!!(x), 1))
#define TILGC_UNLIKELY(x) (__builtin_expect(!!(x), 0))
#else
#define TILGC_LIKELY(x) (x)
#define TILGC_UNLIKELY(x) (x)
#endif

#endif // TILGC_SUPPORT_COMPILER_H
