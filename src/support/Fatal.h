//===- support/Fatal.h - Always-on fatal runtime errors ---------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// fatalError: the termination path for runtime invariants that must hold in
/// every build mode. Unlike assert, this survives NDEBUG; unlike
/// TILGC_UNREACHABLE, it carries a printf-formatted diagnostic so a crash in
/// production names the space, the byte counts, and the phase that died.
/// Use it for conditions the environment can violate (host OOM, heap
/// corruption discovered mid-collection); keep assert for algorithmic
/// invariants that only a code bug can break.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_FATAL_H
#define TILGC_SUPPORT_FATAL_H

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace tilgc {

[[noreturn]] inline void fatalErrorV(const char *Fmt, va_list Ap) {
  std::fputs("tilgc fatal error: ", stderr);
  std::vfprintf(stderr, Fmt, Ap);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
[[noreturn]] inline void
fatalError(const char *Fmt, ...) {
  va_list Ap;
  va_start(Ap, Fmt);
  fatalErrorV(Fmt, Ap);
}

} // namespace tilgc

#endif // TILGC_SUPPORT_FATAL_H
