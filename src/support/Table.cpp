//===- support/Table.cpp - Column-aligned table printing -----------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdarg>

using namespace tilgc;

std::string tilgc::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Needed >= 0 && "bad format string");
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string tilgc::formatSeconds(double Seconds) {
  return formatString("%.2f", Seconds);
}

std::string tilgc::formatBytes(uint64_t Bytes) {
  return formatString("%llu", static_cast<unsigned long long>(Bytes));
}

std::string tilgc::formatBytesHuman(uint64_t Bytes) {
  if (Bytes >= 10 * 1024 * 1024)
    return formatString("%lluMB",
                        static_cast<unsigned long long>(Bytes >> 20));
  if (Bytes >= 1024 * 1024)
    return formatString("%.1fMB", static_cast<double>(Bytes) / (1024 * 1024));
  return formatString("%lluKB", static_cast<unsigned long long>(Bytes >> 10));
}

std::string tilgc::formatPercent(double Fraction) {
  return formatString("%.2f%%", Fraction * 100.0);
}

void Table::setHeader(std::vector<std::string> Columns) {
  Header = std::move(Columns);
}

void Table::addRow(std::vector<std::string> Columns) {
  assert((Header.empty() || Columns.size() == Header.size()) &&
         "row width must match header");
  Rows.push_back(std::move(Columns));
  RowIsSeparator.push_back(false);
}

void Table::addSeparator() {
  Rows.emplace_back();
  RowIsSeparator.push_back(true);
}

void Table::print(std::FILE *Out) const {
  size_t NumCols = Header.size();
  for (const auto &Row : Rows)
    if (Row.size() > NumCols)
      NumCols = Row.size();

  std::vector<size_t> Widths(NumCols, 0);
  auto Widen = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I)
      if (Row[I].size() > Widths[I])
        Widths[I] = Row[I].size();
  };
  Widen(Header);
  for (const auto &Row : Rows)
    Widen(Row);

  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;

  auto PrintRule = [&] {
    for (size_t I = 0; I < Total; ++I)
      std::fputc('-', Out);
    std::fputc('\n', Out);
  };
  auto PrintRow = [&](const std::vector<std::string> &Row) {
    for (size_t I = 0; I < Row.size(); ++I) {
      // Left-align the first column (program names), right-align the rest.
      if (I == 0)
        std::fprintf(Out, "%-*s  ", static_cast<int>(Widths[I]),
                     Row[I].c_str());
      else
        std::fprintf(Out, "%*s  ", static_cast<int>(Widths[I]),
                     Row[I].c_str());
    }
    std::fputc('\n', Out);
  };

  if (!Title.empty())
    std::fprintf(Out, "== %s ==\n", Title.c_str());
  if (!Header.empty()) {
    PrintRow(Header);
    PrintRule();
  }
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (RowIsSeparator[I])
      PrintRule();
    else
      PrintRow(Rows[I]);
  }
  std::fputc('\n', Out);
}
