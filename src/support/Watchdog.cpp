//===- support/Watchdog.cpp - GC/safepoint deadline supervisor ------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Watchdog.h"

#include "support/Fatal.h"
#include "support/FaultInjector.h"

using namespace tilgc;

const char *tilgc::watchdogPolicyName(WatchdogPolicy P) {
  switch (P) {
  case WatchdogPolicy::Report:
    return "report";
  case WatchdogPolicy::Recover:
    return "recover";
  case WatchdogPolicy::Fatal:
    return "fatal";
  }
  return "unknown";
}

const char *tilgc::watchdogBarkKindName(WatchdogBark::Kind K) {
  switch (K) {
  case WatchdogBark::Kind::GcCycle:
    return "gc-cycle";
  case WatchdogBark::Kind::SafepointRendezvous:
    return "safepoint-rendezvous";
  }
  return "unknown";
}

Watchdog::~Watchdog() {
  {
    std::lock_guard<std::mutex> L(M);
    Exiting = true;
    Cv.notify_all();
  }
  if (ThreadStarted)
    Thread.join();
}

void Watchdog::ensureThreadLocked() {
  if (ThreadStarted)
    return;
  Thread = std::thread([this] { threadMain(); });
  ThreadStarted = true;
}

void Watchdog::arm(WatchdogBark Proto_, uint64_t DeadlineMicros, FillFn Fill_,
                   DispatchFn Dispatch_) {
  if (DeadlineMicros == 0)
    return;
  std::lock_guard<std::mutex> L(M);
  ensureThreadLocked();
  ++Gen;
  ArmedNow = true;
  Barked = false;
  Proto = std::move(Proto_);
  Proto.DeadlineMicros = DeadlineMicros;
  DeadlineUs = DeadlineMicros;
  Fill = std::move(Fill_);
  Dispatch = std::move(Dispatch_);
  ArmTime = std::chrono::steady_clock::now();
  Cv.notify_all();
}

void Watchdog::disarm() {
  std::unique_lock<std::mutex> L(M);
  if (!ArmedNow && !DispatchInFlight)
    return;
  ArmedNow = false;
  ++Gen;
  Cv.notify_all();
  // Callback captures (collector, coordinator state) may die right after
  // we return; wait out any bark that is mid-dispatch.
  IdleCv.wait(L, [this] { return !DispatchInFlight; });
  Fill = nullptr;
  Dispatch = nullptr;
}

void Watchdog::threadMain() {
  std::unique_lock<std::mutex> L(M);
  while (!Exiting) {
    if (!ArmedNow || Barked) {
      Cv.wait(L, [this] { return Exiting || (ArmedNow && !Barked); });
      continue;
    }
    uint64_t MyGen = Gen;
    auto Expiry = ArmTime + std::chrono::microseconds(DeadlineUs);
    Cv.wait_until(L, Expiry,
                  [this, MyGen] { return Exiting || Gen != MyGen; });
    if (Exiting || Gen != MyGen)
      continue; // Window closed (or re-armed) before the deadline.
    if (std::chrono::steady_clock::now() < Expiry)
      continue; // Spurious wake; loop re-waits on the same window.

    // Deadline expired with the window still open: bark once.
    Barked = true;
    DispatchInFlight = true;
    WatchdogBark B = Proto;
    B.ElapsedMicros = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - ArmTime)
            .count());
    FillFn MyFill = Fill;
    DispatchFn MyDispatch = Dispatch;
    L.unlock();

    if (B.Policy != WatchdogPolicy::Report)
      Recover.store(true, std::memory_order_relaxed);
    if (FaultInjector::enabled()) {
      B.Detail += "\nfault-injection progress (crossings/fired):";
      FaultInjector &FI = FaultInjector::global();
      for (unsigned I = 0; I < FaultInjector::NumPoints; ++I) {
        FaultPoint P = static_cast<FaultPoint>(I);
        uint64_t C = FI.crossings(P);
        if (C == 0)
          continue;
        B.Detail += "\n  ";
        B.Detail += FaultInjector::pointName(P);
        B.Detail += ": " + std::to_string(C) + "/" +
                    std::to_string(FI.fired(P));
      }
    }
    if (MyFill)
      MyFill(B);
    if (MyDispatch)
      MyDispatch(B);
    NumBarks.fetch_add(1, std::memory_order_relaxed);
    if (B.Policy == WatchdogPolicy::Fatal)
      fatalError("watchdog deadline expired: %s seq=%llu after %llu us "
                 "(deadline %llu us)\n%s",
                 watchdogBarkKindName(B.What),
                 static_cast<unsigned long long>(B.Seq),
                 static_cast<unsigned long long>(B.ElapsedMicros),
                 static_cast<unsigned long long>(B.DeadlineMicros),
                 B.Detail.c_str());

    L.lock();
    DispatchInFlight = false;
    IdleCv.notify_all();
  }
}
