//===- support/WorkerPool.h - Work-stealing thread pool ---------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel collector's thread substrate, split in two pieces:
///
///  * WorkStealingDeque — a bounded Chase-Lev deque (Chase & Lev 2005) with
///    the C11 memory-order discipline of Lê et al., "Correct and Efficient
///    Work-Stealing for Weak Memory Models" (PPoPP 2013). The owner pushes
///    and pops at the bottom; thieves CAS the top. Items are 16-byte PODs
///    stored as per-field relaxed atomics: a thief may read a torn or stale
///    cell, but the subsequent top-CAS fails in exactly those interleavings,
///    so the value is discarded before use.
///
///  * WorkerPool — a fixed set of persistent threads parked on a condition
///    variable between collections, so a parallel GC pays a wakeup (not a
///    thread spawn) per cycle. The caller participates as worker 0, which
///    keeps GcThreads == N meaning N CPUs busy, not N+1.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_WORKERPOOL_H
#define TILGC_SUPPORT_WORKERPOOL_H

#include <array>
#include <atomic>
#include <bit>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace tilgc {

/// Bounded single-owner work-stealing deque of 16-byte POD items.
/// push()/pop() are owner-only; steal() may be called by any thread.
template <typename T> class WorkStealingDeque {
  static_assert(std::is_trivially_copyable_v<T> &&
                    sizeof(T) == 2 * sizeof(uintptr_t),
                "items are stored as two per-field atomics");

public:
  /// \p CapacityLog2: the deque holds up to 2^CapacityLog2 items; push()
  /// reports failure when full (the GC degrades to scanning inline).
  explicit WorkStealingDeque(unsigned CapacityLog2 = 13)
      : Mask((size_t{1} << CapacityLog2) - 1),
        Cells(size_t{1} << CapacityLog2) {}

  WorkStealingDeque(const WorkStealingDeque &) = delete;
  WorkStealingDeque &operator=(const WorkStealingDeque &) = delete;

  // Lê et al. publish with standalone fences (release fence + relaxed
  // bottom store in push; seq_cst fences in pop/steal). The orders below
  // move that strength onto the Bottom/Top operations themselves — a
  // release Bottom store in push, seq_cst for the pop/steal race on the
  // last element. This is at least as strong (the fence proof carries
  // over), costs one extra mfence per pop on x86, and — unlike standalone
  // fences, which ThreadSanitizer does not model — keeps the
  // span-publication happens-before edge visible to TSan.

  /// Owner only. Returns false when the deque is full.
  bool push(T Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t Tp = Top.load(std::memory_order_acquire);
    if (B - Tp > static_cast<int64_t>(Mask))
      return false;
    store(B, Item);
    // Release-publishes the cell AND the heap words any pushed span points
    // at: a thief's acquire read of Bottom is the only edge ordering the
    // owner's plain object writes before the thief's scan.
    Bottom.store(B + 1, std::memory_order_release);
    return true;
  }

  /// Owner only. LIFO; returns false when empty.
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Bottom.store(B, std::memory_order_seq_cst);
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    if (Tp > B) {
      // Already empty: restore.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    Out = load(B);
    if (Tp == B) {
      // Last item: race the thieves for it.
      bool Won = Top.compare_exchange_strong(Tp, Tp + 1,
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed);
      Bottom.store(B + 1, std::memory_order_relaxed);
      return Won;
    }
    return true;
  }

  /// Any thread. FIFO; returns false when empty or on a lost race (callers
  /// retry or move to the next victim).
  bool steal(T &Out) {
    int64_t Tp = Top.load(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_seq_cst);
    if (Tp >= B)
      return false;
    T Item = load(Tp);
    if (!Top.compare_exchange_strong(Tp, Tp + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return false;
    Out = Item;
    return true;
  }

  bool maybeNonEmpty() const {
    return Bottom.load(std::memory_order_relaxed) >
           Top.load(std::memory_order_relaxed);
  }

private:
  struct Cell {
    std::atomic<uintptr_t> Lo{0};
    std::atomic<uintptr_t> Hi{0};
  };

  void store(int64_t Index, T Item) {
    auto Halves = std::bit_cast<std::array<uintptr_t, 2>>(Item);
    Cell &C = Cells[static_cast<size_t>(Index) & Mask];
    C.Lo.store(Halves[0], std::memory_order_relaxed);
    C.Hi.store(Halves[1], std::memory_order_relaxed);
  }

  T load(int64_t Index) const {
    const Cell &C = Cells[static_cast<size_t>(Index) & Mask];
    std::array<uintptr_t, 2> Halves = {
        C.Lo.load(std::memory_order_relaxed),
        C.Hi.load(std::memory_order_relaxed)};
    return std::bit_cast<T>(Halves);
  }

  std::atomic<int64_t> Top{0};
  std::atomic<int64_t> Bottom{0};
  size_t Mask;
  std::vector<Cell> Cells;
};

/// A fixed crew of persistent worker threads. runOnAll(Fn) invokes
/// Fn(WorkerIndex) on every worker — index 0 on the calling thread — and
/// returns when all have finished. Not reentrant.
class WorkerPool {
public:
  /// Spawns \p NumWorkers - 1 threads (the caller is worker 0).
  explicit WorkerPool(unsigned NumWorkers);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  unsigned numWorkers() const { return Workers; }

  /// Runs \p Fn(I) for every worker index I in [0, numWorkers()).
  /// Fn must be safe to invoke concurrently with itself.
  void runOnAll(const std::function<void(unsigned)> &Fn);

private:
  void threadMain(unsigned Index);

  unsigned Workers;
  std::vector<std::thread> Threads;

  std::mutex M;
  std::condition_variable WakeCV;  ///< Signals a new job generation.
  std::condition_variable DoneCV;  ///< Signals the last helper finishing.
  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Generation = 0;
  unsigned Unfinished = 0;
  bool ShuttingDown = false;
};

} // namespace tilgc

#endif // TILGC_SUPPORT_WORKERPOOL_H
