//===- support/Random.h - Deterministic pseudo-random numbers -*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable PRNGs used by workloads and property tests.
/// SplitMix64 seeds Xoshiro256**; both are tiny and reproducible across
/// platforms, unlike std::mt19937's distribution wrappers.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_RANDOM_H
#define TILGC_SUPPORT_RANDOM_H

#include <cassert>
#include <cstdint>

namespace tilgc {

/// SplitMix64 step: returns the next state-mixed value for \p State.
inline uint64_t splitMix64(uint64_t &State) {
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

/// Xoshiro256** generator with convenience helpers for bounded draws.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x1998'0615'0c3cULL) {
    uint64_t S = Seed;
    for (uint64_t &Word : State)
      Word = splitMix64(S);
  }

  /// Returns the next 64 random bits.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t below(uint64_t Bound) {
    assert(Bound > 0 && "below() requires a positive bound");
    // Multiply-shift bounded draw (Lemire); bias is negligible for our use.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(next()) * Bound) >> 64);
  }

  /// Returns a value uniformly distributed in [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "range() requires Lo <= Hi");
    return Lo + static_cast<int64_t>(below(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability \p Num / \p Den.
  bool chance(uint64_t Num, uint64_t Den) { return below(Den) < Num; }

  /// Returns a double uniformly distributed in [0, 1).
  double real() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

private:
  static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

  uint64_t State[4];
};

} // namespace tilgc

#endif // TILGC_SUPPORT_RANDOM_H
