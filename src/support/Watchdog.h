//===- support/Watchdog.h - GC/safepoint deadline supervisor ----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deadline supervisor for the two windows where the runtime can hang
/// without making progress: a GC cycle and a safepoint rendezvous. The
/// owner arms the watchdog when a window opens and disarms it when the
/// window closes; if the deadline expires first, the supervisor thread
/// "barks": it assembles a structured stall diagnostic (a WatchdogBark)
/// from data that is safe to read cross-thread, hands it to a dispatch
/// callback (which fans out to GcObserver::onWatchdogBark and the trace
/// export), and escalates per the configured policy.
///
/// Cost discipline (mirrors support/FaultInjector.h):
///  - Deadline 0 means the watchdog is never constructed-with-a-thread and
///    arm()/disarm() are never called: zero cost on every path.
///  - When configured, the cost is one mutex lock + condvar notify per
///    armed window (per GC cycle / per rendezvous) — nothing per
///    allocation, nothing per object.
///
/// Threading contract: arm() and disarm() are called by the window's owner
/// (the collecting thread or the stopping mutator). The fill and dispatch
/// callbacks run ON THE SUPERVISOR THREAD while the owner is still stalled
/// inside the window, so they may only read std::atomic state, state
/// captured into the Bark prototype at arm time, or state they can
/// try_lock. disarm() blocks until any in-flight bark dispatch finishes,
/// so callback captures outlive the bark.
///
/// Escalation ladder (WatchdogPolicy): Report always happens (the bark is
/// dispatched); Recover additionally latches recoverRequested(), which
/// cooperative code — the MarkCompact abort points — polls to abandon a
/// still-mutation-free phase; Fatal terminates with the diagnostic after
/// dispatch. Recovery is cooperative: a thread that never reaches an abort
/// point (or a mutator that never polls) cannot be recovered, only
/// reported or killed.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_SUPPORT_WATCHDOG_H
#define TILGC_SUPPORT_WATCHDOG_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace tilgc {

/// What the supervisor does after dispatching a bark.
enum class WatchdogPolicy : uint8_t {
  Report,  ///< Diagnostic only.
  Recover, ///< Diagnostic + latch recoverRequested() for cooperative abort.
  Fatal,   ///< Diagnostic, then fatalError with the stall summary.
};

const char *watchdogPolicyName(WatchdogPolicy P);

/// The structured stall diagnostic delivered to GcObserver::onWatchdogBark.
/// Static fields are captured at arm time on the window owner's thread;
/// live fields (Phase, park counts, Detail additions) are filled on the
/// supervisor thread at expiry from atomics or try-locked state.
struct WatchdogBark {
  enum class Kind : uint8_t { GcCycle, SafepointRendezvous };

  Kind What = Kind::GcCycle;
  /// GC sequence number (GcCycle) or stop-the-world ordinal (rendezvous).
  uint64_t Seq = 0;
  uint64_t DeadlineMicros = 0;
  uint64_t ElapsedMicros = 0;
  /// GcTelemetry::nowNs() at the bark (for the trace-export instant).
  uint64_t WhenNs = 0;
  /// Live GcPhase as a raw ordinal (GcEvent.h's GcPhase); 255 = none
  /// published. Raw so support/ need not include observe/.
  uint8_t PhaseOrdinal = 255;
  /// Rendezvous progress (SafepointRendezvous barks): threads parked vs
  /// threads the stop is waiting for.
  uint32_t MutatorsParked = 0;
  uint32_t MutatorsExpected = 0;
  WatchdogPolicy Policy = WatchdogPolicy::Report;
  /// Human-readable stall summary: the heap-state dump captured when the
  /// window opened, per-mutator park state, and fault-injection progress
  /// counters (the per-point crossing counts double as drain-progress
  /// markers under torture).
  std::string Detail;
};

const char *watchdogBarkKindName(WatchdogBark::Kind K);

/// One supervisor thread watching one window at a time. GC cycles and
/// safepoint rendezvous never overlap within an owner (the rendezvous
/// completes before the stopped-world collection begins), so the GC plane
/// and the safepoint plane each own a single-slot instance.
class Watchdog {
public:
  /// Fills live fields of the bark; runs on the supervisor thread.
  using FillFn = std::function<void(WatchdogBark &)>;
  /// Delivers the completed bark (observer fan-out, trace export); runs on
  /// the supervisor thread.
  using DispatchFn = std::function<void(const WatchdogBark &)>;

  Watchdog() = default;
  ~Watchdog();
  Watchdog(const Watchdog &) = delete;
  Watchdog &operator=(const Watchdog &) = delete;

  /// Opens a supervised window: if disarm() does not arrive within
  /// \p DeadlineMicros, the supervisor fills and dispatches \p Proto, then
  /// escalates per Proto.Policy. The supervisor thread is started lazily
  /// on the first arm. At most one bark fires per armed window.
  void arm(WatchdogBark Proto, uint64_t DeadlineMicros, FillFn Fill,
           DispatchFn Dispatch);

  /// Closes the window. Blocks until any in-flight bark dispatch returns,
  /// so resources captured by the callbacks stay valid for their lifetime.
  void disarm();

  /// Total barks dispatched (tests / diagnostics). Relaxed.
  uint64_t barks() const { return NumBarks.load(std::memory_order_relaxed); }

  /// Whether a supervised window is currently open (tests / diagnostics:
  /// the incremental-cycle tests assert the one-arm-per-cycle discipline).
  bool armed() const {
    std::lock_guard<std::mutex> L(const_cast<std::mutex &>(M));
    return ArmedNow;
  }

  /// True after a bark under WatchdogPolicy::Recover (or stricter) until
  /// cleared. Cooperative abort points poll this through recoverFlag().
  bool recoverRequested() const {
    return Recover.load(std::memory_order_relaxed);
  }
  void clearRecoverRequest() {
    Recover.store(false, std::memory_order_relaxed);
  }
  /// Stable address of the recover latch, for handing to MarkCompact's
  /// abort points without a Watchdog dependency.
  const std::atomic<bool> *recoverFlag() const { return &Recover; }

private:
  void threadMain();
  void ensureThreadLocked();

  std::mutex M;
  std::condition_variable Cv;
  std::condition_variable IdleCv;
  bool Exiting = false;
  bool ThreadStarted = false;
  std::thread Thread;

  // Armed-window state, all guarded by M. Gen distinguishes windows so a
  // bark racing a disarm/re-arm can tell its window already closed.
  uint64_t Gen = 0;
  bool ArmedNow = false;
  bool Barked = false;
  bool DispatchInFlight = false;
  WatchdogBark Proto;
  uint64_t DeadlineUs = 0;
  FillFn Fill;
  DispatchFn Dispatch;
  std::chrono::steady_clock::time_point ArmTime;

  std::atomic<uint64_t> NumBarks{0};
  std::atomic<bool> Recover{false};
};

} // namespace tilgc

#endif // TILGC_SUPPORT_WATCHDOG_H
