//===- support/WorkerPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

#include <cassert>

using namespace tilgc;

WorkerPool::WorkerPool(unsigned NumWorkers)
    : Workers(NumWorkers < 1 ? 1 : NumWorkers) {
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::threadMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *MyJob;
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCV.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      MyJob = Job;
    }
    (*MyJob)(Index);
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Unfinished == 0)
        DoneCV.notify_one();
    }
  }
}

void WorkerPool::runOnAll(const std::function<void(unsigned)> &Fn) {
  if (Workers == 1) {
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    assert(Unfinished == 0 && "runOnAll is not reentrant");
    Job = &Fn;
    Unfinished = Workers - 1;
    ++Generation;
  }
  WakeCV.notify_all();
  Fn(0);
  {
    std::unique_lock<std::mutex> Lock(M);
    DoneCV.wait(Lock, [&] { return Unfinished == 0; });
    Job = nullptr;
  }
}
