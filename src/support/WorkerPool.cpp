//===- support/WorkerPool.cpp - Work-stealing thread pool ------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"

#include <cassert>

using namespace tilgc;

WorkerPool::WorkerPool(unsigned NumWorkers)
    : Workers(NumWorkers < 1 ? 1 : NumWorkers) {
  Threads.reserve(Workers - 1);
  for (unsigned I = 1; I < Workers; ++I)
    Threads.emplace_back([this, I] { threadMain(I); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    ShuttingDown = true;
  }
  WakeCV.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void WorkerPool::threadMain(unsigned Index) {
  uint64_t SeenGeneration = 0;
  for (;;) {
    const std::function<void(unsigned)> *MyJob;
    {
      std::unique_lock<std::mutex> Lock(M);
      WakeCV.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      MyJob = Job;
    }
    // An exception escaping the job must not skip the Unfinished
    // decrement: runOnAll would wait forever and the whole pool (plus the
    // caller's collection) would deadlock. Jobs are expected to contain
    // their own failures (the evacuator converts worker faults into a
    // serial-recovery pass); an escape here is swallowed after the
    // accounting.
    try {
      (*MyJob)(Index);
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> Lock(M);
      if (--Unfinished == 0)
        DoneCV.notify_one();
    }
  }
}

void WorkerPool::runOnAll(const std::function<void(unsigned)> &Fn) {
  if (Workers == 1) {
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> Lock(M);
    assert(Unfinished == 0 && "runOnAll is not reentrant");
    Job = &Fn;
    Unfinished = Workers - 1;
    ++Generation;
  }
  WakeCV.notify_all();
  // If the caller's own slice throws, still wait for the helpers: they
  // hold a pointer to Fn, which dies when this frame unwinds.
  try {
    Fn(0);
  } catch (...) {
    {
      std::unique_lock<std::mutex> Lock(M);
      DoneCV.wait(Lock, [&] { return Unfinished == 0; });
      Job = nullptr;
    }
    throw;
  }
  {
    std::unique_lock<std::mutex> Lock(M);
    DoneCV.wait(Lock, [&] { return Unfinished == 0; });
    Job = nullptr;
  }
}
