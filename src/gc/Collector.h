//===- gc/Collector.h - Collector interface ---------------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract collector interface the mutator allocates through, plus the
/// environment (stack, registers, optional profiler) collectors scan.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_COLLECTOR_H
#define TILGC_GC_COLLECTOR_H

#include "gc/GcStats.h"
#include "gc/HeapError.h"
#include "heap/Space.h"
#include "object/Object.h"
#include "observe/GcTelemetry.h"
#include "profile/HeapProfiler.h"
#include "stack/RegisterFile.h"
#include "stack/ShadowStack.h"
#include "stack/StackMarkers.h"
#include "stack/StackScanner.h"
#include "support/Fatal.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tilgc {

/// What a collector needs from the mutator: the root sources, the optional
/// profiler, and any telemetry observers. Non-owning.
struct CollectorEnv {
  ShadowStack *Stack = nullptr;
  RegisterFile *Regs = nullptr;
  HeapProfiler *Profiler = nullptr;
  /// Registered before construction so observers see construction-time
  /// telemetry too (pretenure-flip audits fire from the generational
  /// collector's constructor).
  std::vector<GcObserver *> Observers;
};

/// One additional mutator thread's root sources (multi-mutator runtime).
/// The primary context stays in CollectorEnv so single-mutator behavior is
/// untouched; extra contexts are scanned after it, in registration order.
struct MutatorContext {
  ShadowStack *Stack = nullptr;
  RegisterFile *Regs = nullptr;
};

/// Abstract copying collector.
class Collector {
public:
  explicit Collector(const CollectorEnv &Env) : Env(Env) {
    assert(Env.Stack && Env.Regs && "collector needs stack and registers");
    for (GcObserver *O : Env.Observers)
      Tel.addObserver(O);
  }
  virtual ~Collector();

  Collector(const Collector &) = delete;
  Collector &operator=(const Collector &) = delete;

  /// Allocates an object of \p LenWords payload words with a zeroed payload
  /// and returns its payload pointer. May trigger a collection, which moves
  /// objects: callers must re-read any heap pointers from frame slots after
  /// this returns.
  virtual Word *allocate(ObjectKind Kind, uint32_t LenWords, uint32_t PtrMask,
                         uint32_t SiteId) = 0;

  /// Write barrier: the mutator calls this with the address of every
  /// mutated pointer slot (semispace: no-op; generational: SSB append).
  virtual void writeBarrier(Word *Slot) = 0;

  /// Forces a collection. \p Major requests a full collection where the
  /// distinction exists.
  virtual void collect(bool Major) = 0;

  /// Live bytes after the most recent collection.
  virtual uint64_t liveBytesAfterLastGC() const = 0;

  /// The stack-marker manager, if generational stack collection is enabled.
  virtual MarkerManager *markerManager() { return nullptr; }

  /// Runs a full heap audit now (outside any collection): object headers,
  /// pointer validity, no stale forwarding pointers, no leaked from-space
  /// poison. Returns true if the heap is sound; otherwise fills \p Error.
  /// Usable after catching HeapExhausted to confirm the failed request left
  /// the heap intact.
  virtual bool verifyHeapNow(std::string &Error) const = 0;

  /// Multi-line heap-state description: per-space occupancy, GC counts, and
  /// the top live allocation sites. Attached to HeapExhausted and printed
  /// by terminal failures.
  std::string heapStateDump() const;

  GcStats &stats() { return Stats; }
  const GcStats &stats() const { return Stats; }

  /// The per-collector telemetry plane: always-on pause histograms plus
  /// armed-only event assembly and observer dispatch.
  GcTelemetry &telemetry() { return Tel; }
  const GcTelemetry &telemetry() const { return Tel; }

  /// Cumulative allocation in KB; objects record this at birth so the
  /// profiler can compute death ages.
  uint64_t allocStampKB() const { return Stats.BytesAllocated >> 10; }

  // --- Mutator inline-allocation fast path ------------------------------
  //
  // The mutator may bump-allocate directly into a collector-designated
  // space, bypassing the virtual allocate() call, as long as it performs
  // the same metadata/accounting steps through the wrappers below and
  // falls back to allocate() whenever the bump fails or the conditions
  // change. Any collection invalidates the mutator's cached space (it
  // re-validates against stats().NumGC).

  /// Whether allocations from \p SiteId may use the inline fast path at
  /// all (generational pretenuring routes some sites elsewhere).
  virtual bool siteAllowsInlineAlloc(uint32_t SiteId) const {
    (void)SiteId;
    return false;
  }

  /// The space the mutator may bump-allocate into, or null if there is
  /// none. \p MaxBytes receives the exclusive object-size bound for the
  /// fast path (objects at least that big take the slow path).
  virtual Space *inlineAllocSpace(size_t &MaxBytes) {
    MaxBytes = 0;
    return nullptr;
  }

  /// The space a mutator-group TLAB refill may carve blocks from, or null
  /// to force the refill through the stop-the-world slow path. Defaults to
  /// the inline-alloc space; the pause-budget incremental mode overrides
  /// this so TLABs stay live between slices while the single-mutator
  /// inline path is disabled for per-allocation slice polling.
  virtual Space *tlabAllocSpace(size_t &MaxBytes) {
    return inlineAllocSpace(MaxBytes);
  }

  // --- SATB deletion barrier (pause-budget incremental marking) ---------
  //
  // While an incremental major-mark cycle is live, the mutator must report
  // the OLD value of every overwritten pointer slot BEFORE the store, so a
  // snapshot edge cannot be hidden from the tracer between slices. The
  // flag is a plain bool read on the write-barrier path: single-threaded
  // mutation, or stop-the-world transitions in the group runtime.

  /// Whether SATB recording is currently required (incremental mark live).
  bool satbLive() const { return SatbMarkingLive; }

  /// Records the old value of an overwritten pointer slot. Only called
  /// when satbLive(); default ignores it (non-incremental collectors).
  virtual void satbRecord(Word OldBits) { (void)OldBits; }

  /// Registers an additional mutator thread's stack and registers as root
  /// sources (multi-mutator runtime). The world must be stopped (or not
  /// yet started) around every collection involving these; stack markers
  /// are rejected because the scan cache memoizes exactly one stack.
  void registerExtraContext(ShadowStack *Stack, RegisterFile *Regs) {
    if (markerManager())
      fatalError("multi-mutator mode is incompatible with stack markers: "
                 "the scan cache covers a single stack");
    assert(Stack && Regs && "extra context needs stack and registers");
    ExtraContexts.push_back(MutatorContext{Stack, Regs});
  }

  /// Metadata word for a new object (public face of makeMeta, for the
  /// mutator fast path).
  Word objectMeta(uint32_t SiteId) const { return makeMeta(SiteId); }

  /// Allocation accounting (public face of accountAllocation, for the
  /// mutator fast path).
  void noteAllocated(ObjectKind Kind, Word Descriptor, uint32_t SiteId) {
    accountAllocation(Kind, Descriptor, SiteId);
  }

protected:
  /// Terminal rung of the OOM escalation ladder: records the failure and
  /// throws HeapExhausted carrying heapStateDump() and the ladder stage
  /// reached. Only call between collections (the heap must be intact for
  /// the dump walk).
  [[noreturn]] void throwHeapExhausted(uint64_t RequestedBytes,
                                       OomStage Stage);

  /// Collector-specific lines of heapStateDump (name, budget, per-space
  /// occupancy).
  virtual void appendHeapState(std::string &Out) const = 0;

  /// Enumerates every live object (payload + live descriptor) for the
  /// dump's per-site live-bytes histogram.
  virtual void forEachLiveObject(
      const std::function<void(Word *Payload, Word Descriptor)> &Fn) const = 0;

  /// Builds the metadata header word for a new object.
  Word makeMeta(uint32_t SiteId) const {
    return meta::make(SiteId, allocStampKB());
  }

  /// Common per-allocation accounting (+ profiler hook).
  void accountAllocation(ObjectKind Kind, Word Descriptor, uint32_t SiteId) {
    uint64_t Bytes = objectTotalBytes(Descriptor);
    Stats.BytesAllocated += Bytes;
    Stats.ObjectsAllocated += 1;
    if (Kind == ObjectKind::Record)
      Stats.RecordBytesAllocated += Bytes;
    else
      Stats.ArrayBytesAllocated += Bytes;
    if (Env.Profiler)
      Env.Profiler->onAlloc(SiteId, Bytes);
  }

  /// Per-collection stack metrics (frame depth, Table 2's new frames).
  /// Every call bumps FramesAtGCSamples alongside the sums, so the Table 2
  /// averages stay correct even if some future collection path skips this
  /// sampling (see GcStats::FramesAtGCSamples). With extra contexts
  /// registered, depths sum across every mutator's stack.
  void accountStackAtGC() {
    uint64_t Frames = Env.Stack->frameCount();
    uint64_t NewFrames = Frames - Env.Stack->minFramesSinceMark();
    Env.Stack->resetWaterMark();
    for (const MutatorContext &C : ExtraContexts) {
      uint64_t F = C.Stack->frameCount();
      Frames += F;
      NewFrames += F - C.Stack->minFramesSinceMark();
      C.Stack->resetWaterMark();
    }
    Stats.FramesAtGCSum += Frames;
    Stats.FramesAtGCSamples += 1;
    if (Frames > Stats.MaxFramesAtGC)
      Stats.MaxFramesAtGC = Frames;
    Stats.NewFramesSum += NewFrames;
    if (GcEvent *Ev = Tel.currentEvent())
      Ev->FramesAtGC = Frames;
  }

  /// Profiler death sweep of an evacuated space: every non-forwarded object
  /// died; record its age.
  void sweepDeaths(const Space &From) {
    if (!Env.Profiler)
      return;
    uint64_t NowKB = allocStampKB();
    From.walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
      if (Forwarded)
        return;
      (void)Descriptor;
      Word Meta = metaOf(Payload);
      Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
    });
  }

  /// Materializes the register roots as slot addresses in RegRootAddrs so
  /// they can travel through the batched root pipeline as one span.
  void gatherRegRoots() {
    RegRootAddrs.clear();
    for (unsigned R : Roots.RegRoots)
      RegRootAddrs.push_back(&(*Env.Regs)[R]);
  }

  /// Scans every registered extra mutator context (multi-mutator runtime):
  /// fresh slot roots append to Roots.FreshSlotRoots, register roots
  /// append to RegRootAddrs after the primary context's, both in
  /// registration (= thread-index) order, so root handoff stays
  /// deterministic for a fixed thread count. No markers/cache — the reuse
  /// optimization is primary-context only. Call after gatherRegRoots().
  /// No-op when no extra contexts exist, keeping single-mode scans
  /// byte-identical.
  void scanExtraContexts(bool CompiledPlans) {
    for (const MutatorContext &C : ExtraContexts) {
      ScanStats S;
      StackScanner::scan(*C.Stack, *C.Regs, nullptr, nullptr, ExtraRoots, S,
                         CompiledPlans);
      Stats.FramesScanned += S.FramesScanned;
      Stats.SlotsVisited += S.SlotsVisited;
      Stats.PlanWordsScanned += S.PlanWordsScanned;
      LastScan.FramesScanned += S.FramesScanned;
      Roots.FreshSlotRoots.insert(Roots.FreshSlotRoots.end(),
                                  ExtraRoots.FreshSlotRoots.begin(),
                                  ExtraRoots.FreshSlotRoots.end());
      for (unsigned R : ExtraRoots.RegRoots)
        RegRootAddrs.push_back(&(*C.Regs)[R]);
    }
  }

  /// Whether \p Slot lives in any registered mutator's stack or register
  /// file (primary or extra) — the aged-tenuring filter that keeps stack
  /// slots out of the cross-generation remembered set.
  bool mutatorOwnsSlot(const Word *Slot) const {
    if (Env.Stack->ownsSlot(Slot) || Env.Regs->ownsSlot(Slot))
      return true;
    for (const MutatorContext &C : ExtraContexts)
      if (C.Stack->ownsSlot(Slot) || C.Regs->ownsSlot(Slot))
        return true;
    return false;
  }

  /// See satbLive(). Set/cleared by the incremental major-mark cycle.
  bool SatbMarkingLive = false;

  CollectorEnv Env;
  GcStats Stats;
  GcTelemetry Tel;
  RootSet Roots;
  ScanStats LastScan;
  /// Scratch for gatherRegRoots (capacity-reusing, at most NumRegisters).
  std::vector<Word *> RegRootAddrs;
  /// Additional mutator threads' root sources, in thread-index order.
  std::vector<MutatorContext> ExtraContexts;
  /// Scratch RootSet for scanExtraContexts (StackScanner::scan clears its
  /// output at entry, so one reusable instance serves every context).
  RootSet ExtraRoots;
};

} // namespace tilgc

#endif // TILGC_GC_COLLECTOR_H
