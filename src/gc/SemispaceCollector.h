//===- gc/SemispaceCollector.h - Cheney semispace collector -----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's first baseline: a semispace collector (Fenichel & Yochelson
/// 1969) using Cheney's algorithm, with the resizing strategy of §2.1:
/// after a collection with observed liveness ratio r', the heap is resized
/// by r'/r toward a target liveness ratio of r = 0.10, clamped to the
/// memory budget k*Min.
///
/// Generational stack collection is optional here too (§7.1: "can also be
/// used with non-generational collectors"): reused frames skip re-decoding,
/// though their roots must still be processed since every object moves.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_SEMISPACECOLLECTOR_H
#define TILGC_GC_SEMISPACECOLLECTOR_H

#include "gc/Collector.h"
#include "heap/Space.h"

#include <memory>

namespace tilgc {

class WorkerPool;

/// Two-space copying collector.
class SemispaceCollector : public Collector {
public:
  struct Options {
    /// Total memory budget (both semispaces together): the paper's k*Min.
    size_t BudgetBytes = 64u << 20;
    /// Hard cap on total heap footprint (both semispaces). 0 = unlimited
    /// (the paper's soft-budget behavior). When set, the collector throws a
    /// catchable HeapExhausted instead of growing past it.
    size_t HardLimitBytes = 0;
    /// Target liveness ratio r (paper: 0.10).
    double TargetLiveness = 0.10;
    /// Generational stack collection (§7.1).
    bool UseStackMarkers = false;
    unsigned MarkerPeriod = 25;
    bool AdaptiveMarkerPlacement = false;
    /// Scan stack frames through compiled ScanPlans (pointer bitmasks)
    /// instead of interpreting trace tables slot by slot. Same roots; false
    /// restores the paper's interpretive scan for comparison.
    bool CompiledScanPlans = true;
    /// Leveled heap invariant auditing: 0 = off; 1 = post-GC heap walk;
    /// 3 = + from-space poisoning with integrity checks. (Level 2's
    /// remembered-set audit is generational-only; here it equals 1.)
    unsigned VerifyLevel = 0;
    /// Name for diagnostics (heap dumps, fatal errors).
    std::string Name;
    /// Evacuation threads. 1 = the serial engine (bit-identical paper
    /// reproduction); >1 = the work-stealing ParallelEvacuator.
    unsigned GcThreads = 1;
  };

  SemispaceCollector(const CollectorEnv &Env, const Options &Opts);
  ~SemispaceCollector() override;

  Word *allocate(ObjectKind Kind, uint32_t LenWords, uint32_t PtrMask,
                 uint32_t SiteId) override;
  void writeBarrier(Word *Slot) override { (void)Slot; }
  void collect(bool Major) override;
  uint64_t liveBytesAfterLastGC() const override { return LiveBytes; }
  MarkerManager *markerManager() override {
    return Opts.UseStackMarkers ? &Markers : nullptr;
  }
  bool verifyHeapNow(std::string &Error) const override {
    return runVerifier(Error);
  }

  /// Mutator fast path: everything bump-allocates into the active space.
  bool siteAllowsInlineAlloc(uint32_t SiteId) const override {
    (void)SiteId;
    return true;
  }
  Space *inlineAllocSpace(size_t &MaxBytes) override {
    MaxBytes = ~size_t{0}; // No large-object space: no size bound.
    return Active;
  }

private:
  /// Runs one collection, guaranteeing at least \p NeedBytes of free space
  /// afterwards (growing past the budget if unavoidable — unless a hard
  /// limit is set, in which case it throws HeapExhausted *before* moving
  /// anything). \p Trigger is recorded in the telemetry event.
  void collectInternal(size_t NeedBytes, GcTrigger Trigger);

  /// Whether this collection should poison the evacuated from-space.
  bool shouldPoison() const;

  /// Samples Stats.MaxFootprintBytes against both semispace capacities.
  void noteFootprint();

  /// Builds the verifier over the active space and runs it.
  bool runVerifier(std::string &Error) const;

  /// VerifyLevel >= 1 post-collection validation; aborts on corruption.
  void maybeVerifyHeap() const;

  // Collector heap-dump hooks.
  void appendHeapState(std::string &Out) const override;
  void forEachLiveObject(
      const std::function<void(Word *, Word)> &Fn) const override;

  Options Opts;
  Space SpaceA, SpaceB;
  Space *Active = &SpaceA;
  Space *Inactive = &SpaceB;
  uint64_t LiveBytes = 0;
  /// True while Inactive sits idle fully poisoned (checked for wild writes
  /// at the next collection's entry).
  bool InactivePoisonValid = false;
  MarkerManager Markers;
  ScanCache Cache;
  /// Present only when Opts.GcThreads > 1.
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace tilgc

#endif // TILGC_GC_SEMISPACECOLLECTOR_H
