//===- gc/HeapVerifier.cpp - Post-collection heap validation ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/HeapVerifier.h"

#include "support/Table.h"

using namespace tilgc;

bool HeapVerifier::validPayload(const Word *P) const {
  for (const Entry &E : Spaces) {
    if (!E.S->contains(P))
      continue;
    // Must lie within the allocated (used) part, past a header.
    return P >= E.S->firstPayload() && P <= E.S->frontier();
  }
  return LOS && LOS->contains(const_cast<Word *>(P));
}

bool HeapVerifier::validPointer(Word Bits, std::string &Error) const {
  if (!Bits)
    return true;
  if (TILGC_UNLIKELY(HasPoison && Bits == Poison)) {
    Error = formatString("slot holds from-space poison %llx: a stale "
                         "reference leaked through a collection",
                         (unsigned long long)Bits);
    return false;
  }
  if (Bits & 7) {
    Error = formatString("misaligned pointer %llx",
                         (unsigned long long)Bits);
    return false;
  }
  const Word *P = reinterpret_cast<const Word *>(Bits);
  if (!validPayload(P)) {
    Error = formatString("pointer %llx outside the live heap",
                         (unsigned long long)Bits);
    return false;
  }
  Word Descriptor = P[-2];
  if (header::isForwarded(Descriptor)) {
    Error = formatString("pointer %llx targets a forwarded object",
                         (unsigned long long)Bits);
    return false;
  }
  if (header::length(Descriptor) > (1u << 28)) {
    Error = formatString("pointer %llx targets an insane descriptor %llx",
                         (unsigned long long)Bits,
                         (unsigned long long)Descriptor);
    return false;
  }
  return true;
}

bool HeapVerifier::checkObject(Word *Payload, const char *Where,
                               std::string &Error) const {
  Word Descriptor = descriptorOf(Payload);
  if (header::isForwarded(Descriptor)) {
    Error = formatString("%s: live space holds a forwarded object at %p",
                         Where, (void *)Payload);
    return false;
  }
  bool OK = true;
  forEachPointerField(Payload, [&](Word *Field) {
    if (!OK)
      return;
    std::string Inner;
    if (!validPointer(*Field, Inner)) {
      Error = formatString("%s: object %p field %d: %s", Where,
                           (void *)Payload,
                           static_cast<int>(Field - Payload), Inner.c_str());
      OK = false;
    }
  });
  return OK;
}

bool HeapVerifier::verifyHeap(std::string &Error) const {
  for (const Entry &E : Spaces) {
    bool OK = true;
    E.S->walk([&](Word *Payload, Word, bool Forwarded) {
      if (!OK)
        return;
      if (Forwarded) {
        Error = formatString("%s: forwarded object in live space at %p",
                             E.Name, (void *)Payload);
        OK = false;
        return;
      }
      OK = checkObject(Payload, E.Name, Error);
    });
    if (!OK)
      return false;
  }
  if (LOS) {
    bool OK = true;
    LOS->walk([&](Word *Payload, Word) {
      if (OK)
        OK = checkObject(Payload, "LOS", Error);
    });
    if (!OK)
      return false;
  }
  return true;
}
