//===- gc/Collector.cpp - Collector interface ------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

#include "gc/HeapError.h"
#include "profile/AllocSite.h"
#include "support/Table.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

using namespace tilgc;

// Out-of-line virtual anchor.
Collector::~Collector() = default;

std::string Collector::heapStateDump() const {
  std::string Out;
  Out += "=== tilgc heap state ===\n";
  Out += formatString(
      "collections: %llu (%llu major) | allocated %llu bytes in %llu objects "
      "| budget overruns %llu\n",
      (unsigned long long)Stats.NumGC, (unsigned long long)Stats.NumMajorGC,
      (unsigned long long)Stats.BytesAllocated,
      (unsigned long long)Stats.ObjectsAllocated,
      (unsigned long long)Stats.BudgetOverruns);
  appendHeapState(Out);

  // Per-site live bytes, from object metadata — available even without the
  // profiler enabled.
  struct SiteLive {
    uint32_t Site;
    uint64_t Bytes;
    uint64_t Objects;
  };
  std::unordered_map<uint32_t, SiteLive> BySite;
  forEachLiveObject([&](Word *Payload, Word Descriptor) {
    uint32_t Site = meta::site(metaOf(Payload));
    SiteLive &S = BySite.try_emplace(Site, SiteLive{Site, 0, 0}).first->second;
    S.Bytes += objectTotalBytes(Descriptor);
    S.Objects += 1;
  });
  std::vector<SiteLive> Sites;
  Sites.reserve(BySite.size());
  for (const auto &KV : BySite)
    Sites.push_back(KV.second);
  std::sort(Sites.begin(), Sites.end(),
            [](const SiteLive &A, const SiteLive &B) {
              return A.Bytes != B.Bytes ? A.Bytes > B.Bytes : A.Site < B.Site;
            });
  Out += "top live allocation sites:\n";
  size_t Shown = 0;
  for (const SiteLive &S : Sites) {
    if (Shown++ == 8) {
      Out += formatString("  ... and %zu more sites\n", Sites.size() - 8);
      break;
    }
    Out += formatString(
        "  %-28s %10llu bytes in %llu objects\n",
        AllocSiteRegistry::global().nameOrUnknown(S.Site).c_str(),
        (unsigned long long)S.Bytes, (unsigned long long)S.Objects);
  }
  if (Sites.empty())
    Out += "  (no live objects)\n";
  return Out;
}

void Collector::throwHeapExhausted(uint64_t RequestedBytes, OomStage Stage) {
  ++Stats.HeapExhaustedThrows;
  throw HeapExhausted(RequestedBytes, Stage, heapStateDump());
}
