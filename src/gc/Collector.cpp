//===- gc/Collector.cpp - Collector interface ------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Collector.h"

using namespace tilgc;

// Out-of-line virtual anchor.
Collector::~Collector() = default;
