//===- gc/ParallelEvacuator.cpp - Work-stealing copy engine ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/ParallelEvacuator.h"

#include "observe/GcTelemetry.h"
#include "support/Fatal.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

using namespace tilgc;

namespace {
/// Thrown by a worker that must abandon the pass (injected fault, or a
/// failed copy-block handout). Caught in workerMain; the abandoned work is
/// finished by run()'s single-threaded serial recovery.
struct WorkerFault {};
} // namespace

ParallelEvacuator::ParallelEvacuator(const Config &C, WorkerPool &Pool)
    : C(C), Pool(Pool) {
  assert(C.Dest && "evacuation needs a destination");
  assert(!C.TraceLOS || C.LOS);
  assert((C.DestYoung == nullptr) == (C.PromoteAgeThreshold <= 1) &&
         "aged tenuring needs a young destination and vice versa");
  for (Space *S : C.From) {
    if (!S)
      continue;
    FromLo[NumFrom] = S->baseAddr();
    FromHi[NumFrom] = S->limitAddr();
    ++NumFrom;
  }
  unsigned N = Pool.numWorkers();
  Workers.reserve(N);
  for (unsigned I = 0; I < N; ++I) {
    auto W = std::make_unique<Worker>();
    W->Old.S = C.Dest;
    W->Young.S = C.DestYoung;
    W->Seed = I * 2654435761u + 97u;
    if (C.Profiler)
      W->Prof = std::make_unique<HeapProfiler>();
    Workers.push_back(std::move(W));
  }
}

ParallelEvacuator::~ParallelEvacuator() = default;

Word *ParallelEvacuator::localAllocate(Worker &W, LocalAlloc &LA,
                                       Word Descriptor, Word Meta,
                                       uint32_t Total) {
  if (TILGC_UNLIKELY(!LA.BlockBegin || LA.Alloc + Total > LA.BlockEnd)) {
    retireBlock(W, LA);
    size_t MaxW = Total > BlockWords ? Total : BlockWords;
    if (!LA.S->allocateBlock(Total, MaxW, LA.BlockBegin, LA.BlockEnd)) {
      LA.BlockBegin = LA.BlockEnd = LA.Alloc = LA.Scan = nullptr;
      return nullptr;
    }
    LA.Alloc = LA.Scan = LA.BlockBegin;
  }
  Word *P = LA.Alloc;
  LA.Alloc += Total;
  P[0] = Descriptor;
  P[1] = Meta;
  return P + HeaderWords;
}

/// Publishes any unscanned tail, then returns or pads the unused words so
/// the destination stays linearly walkable.
void ParallelEvacuator::retireBlock(Worker &W, LocalAlloc &LA) {
  if (!LA.BlockBegin)
    return;
  if (LA.Scan < LA.Alloc)
    publishSpan(W, Span{LA.Scan, LA.Alloc});
  if (LA.Alloc < LA.BlockEnd &&
      !LA.S->returnBlockTail(LA.Alloc, LA.BlockEnd)) {
    uint32_t PadW = static_cast<uint32_t>(LA.BlockEnd - LA.Alloc);
    LA.Alloc[0] = header::makePad(PadW);
    // Pad fillers are recorded in the crossing map (a dirty-card scan must
    // be able to step over them from a card-first word) but deliberately
    // not counted: pad geometry varies with thread count.
    if (C.CrossDest && LA.S == C.Dest)
      C.CrossDest->recordObject(LA.Alloc, PadW);
  }
  LA.BlockBegin = LA.BlockEnd = LA.Alloc = LA.Scan = nullptr;
}

void ParallelEvacuator::publishSpan(Worker &W, Span S) {
  if (!W.Deque.push(S))
    W.Overflow.push_back(S);
}

Word *ParallelEvacuator::copy(Worker &W, Word *P) {
  std::atomic_ref<Word> ADesc(descriptorOf(P));
  Word Descriptor = ADesc.load(std::memory_order_acquire);
  if (header::isForwarded(Descriptor))
    return header::forwardTarget(Descriptor);

  Word Meta = metaOf(P);
  unsigned OldAge = meta::age(Meta);
  Word NewMeta = meta::withBumpedAge(Meta);

  LocalAlloc *LA = &W.Old;
  if (C.DestYoung && OldAge + 1 < C.PromoteAgeThreshold)
    LA = &W.Young;

  uint32_t Total = objectTotalWords(Descriptor);
  Word *NewPayload = localAllocate(W, *LA, Descriptor, NewMeta, Total);
  if (TILGC_UNLIKELY(!NewPayload) && LA == &W.Young) {
    // Young destination exhausted under parallel block handout: promote
    // early. The object is still copied exactly once; only its target
    // generation differs from the serial aged-tenuring policy.
    LA = &W.Old;
    NewPayload = localAllocate(W, *LA, Descriptor, NewMeta, Total);
  }
  if (TILGC_UNLIKELY(!NewPayload)) {
    if (InRecovery)
      // The recovery drain has no one left to hand work to: this is a
      // genuine OOM in the middle of an evacuation, terminal in every
      // build mode.
      fatalError("destination space overflowed during serial recovery of a "
                 "parallel evacuation (used=%zu cap=%zu, need %u bytes); "
                 "collection cannot complete",
                 LA->S->usedBytes(), LA->S->capacityBytes(), Total * 8);
    // Starved of copy blocks (a genuinely full space, or the
    // SpaceBlockHandout fault point): abandon this worker rather than
    // deadlocking the termination protocol; serial recovery retries.
    throw WorkerFault{};
  }
  uint32_t Len = header::length(Descriptor);
  std::memcpy(NewPayload, P, static_cast<size_t>(Len) * sizeof(Word));

  // Copy-then-publish: the release CAS makes header + payload visible to
  // any thread that acquires the forwarding word.
  Word Fwd = header::makeForward(NewPayload);
  if (!ADesc.compare_exchange_strong(Descriptor, Fwd,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
    LA->Alloc -= Total; // Retract the losing speculative copy.
    assert(header::isForwarded(Descriptor) && "CAS lost to a non-forward");
    return header::forwardTarget(Descriptor);
  }

  uint64_t Bytes = objectTotalBytes(Descriptor);
  W.BytesCopied += Bytes;
  ++W.ObjectsCopied;
  // Only the CAS winner records: losers retracted their speculative copy
  // above, so every crossing-map entry byte has exactly one writer.
  if (TILGC_UNLIKELY(C.CrossDest != nullptr) && LA == &W.Old) {
    C.CrossDest->recordObject(NewPayload - HeaderWords, Total);
    ++W.CrossingUpdates;
  }
  if (W.Prof) {
    uint32_t Site = meta::site(Meta);
    W.Prof->onCopy(Site, Bytes);
    if (C.CountSurvivedFirst && OldAge == 0)
      W.Prof->onSurviveFirst(Site);
  }
  return NewPayload;
}

void ParallelEvacuator::forwardSlot(Worker &W, Word *Slot) {
  // Slot words are accessed atomically: duplicate SSB entries may race two
  // workers onto the same slot (both store the same forwarded target).
  // Release/acquire, not relaxed: a worker that reads an already-updated
  // slot may dereference the target's header (the profiler's referent-site
  // lookup) without ever touching the forwarding word, so the slot itself
  // must carry the copier's happens-before edge.
  std::atomic_ref<Word> ASlot(*Slot);
  Word Bits = ASlot.load(std::memory_order_acquire);
  if (!Bits)
    return;
  Word *P = reinterpret_cast<Word *>(Bits);
  if (inFromSpace(P)) {
    Word *Target = copy(W, P);
    ASlot.store(reinterpret_cast<Word>(Target), std::memory_order_release);
    if (C.CrossGenOut && C.DestYoung->contains(Target) &&
        !C.DestYoung->contains(Slot) && !inFromSpace(Slot))
      W.CrossGen.push_back(Slot);
    return;
  }
  if (C.TraceLOS && C.LOS->contains(P) && C.LOS->mark(P)) {
    Word *Begin = P - HeaderWords;
    publishSpan(W, Span{Begin, Begin + objectTotalWords(descriptorOf(P))});
  }
}

void ParallelEvacuator::scanObject(Worker &W, Word *Payload) {
  uint32_t Site = W.Prof ? meta::site(metaOf(Payload)) : 0;
  forEachPointerField(Payload, [&](Word *Field) {
    forwardSlot(W, Field);
    if (W.Prof) {
      Word Bits = std::atomic_ref<Word>(*Field).load(std::memory_order_acquire);
      if (Bits)
        W.Prof->onReferent(
            Site, meta::site(metaOf(reinterpret_cast<Word *>(Bits))));
    }
  });
}

void ParallelEvacuator::scanSpan(Worker &W, Span S) {
  Word *P = S.Begin;
  while (P < S.End) {
    // If scanObject faults, everything from this object to the span end is
    // still gray; recovery rescans it (a partially scanned object rescans
    // safely — forwarding is idempotent).
    W.Pending = Span{P, S.End};
    Word *Payload = P + HeaderWords;
    P += objectTotalWords(descriptorOf(Payload));
    scanObject(W, Payload);
  }
  W.Pending = Span{nullptr, nullptr};
  assert(P == S.End && "span scan overran its end");
}

/// Scans a bounded batch of the worker's own gray backlog, carving a span
/// for thieves first when the backlog is long. Returns false if there was
/// nothing to scan.
bool ParallelEvacuator::scanLocalBatch(Worker &W, LocalAlloc &LA) {
  if (LA.Scan >= LA.Alloc)
    return false;
  if (static_cast<size_t>(LA.Alloc - LA.Scan) > 2 * SpanWords) {
    Word *B = LA.Scan;
    while (B < LA.Alloc && static_cast<size_t>(B - LA.Scan) < SpanWords)
      B += objectTotalWords(descriptorOf(B + HeaderWords));
    if (W.Deque.push(Span{LA.Scan, B}))
      LA.Scan = B; // Deque full: keep the backlog local and scan on.
  }
  int Budget = 64;
  while (Budget-- > 0 && LA.Scan < LA.Alloc) {
    Word *Begin = LA.Scan;
    Word *Payload = Begin + HeaderWords;
    // Advance before scanning: scanning can retire this block (publishing
    // [Scan, Alloc)), and the cursor must already be past this object. The
    // in-flight object itself is therefore outside every published span
    // and outside [Scan, Alloc) — Pending keeps it reachable for recovery
    // if the scan faults.
    LA.Scan += objectTotalWords(descriptorOf(Payload));
    W.Pending = Span{Begin, Begin + objectTotalWords(descriptorOf(Payload))};
    scanObject(W, Payload);
  }
  W.Pending = Span{nullptr, nullptr};
  return true;
}

bool ParallelEvacuator::scanStep(Worker &W) {
  if (scanLocalBatch(W, W.Old))
    return true;
  if (C.DestYoung && scanLocalBatch(W, W.Young))
    return true;
  if (!W.Overflow.empty()) {
    Span S = W.Overflow.back();
    W.Overflow.pop_back();
    scanSpan(W, S);
    return true;
  }
  Span S;
  if (W.Deque.pop(S)) {
    scanSpan(W, S);
    return true;
  }
  return false;
}

bool ParallelEvacuator::trySteal(Worker &W, unsigned Index, Span &Out) {
  unsigned N = static_cast<unsigned>(Workers.size());
  if (N <= 1)
    return false;
  W.Seed = W.Seed * 1664525u + 1013904223u;
  unsigned Start = W.Seed % N;
  for (unsigned I = 0; I < N; ++I) {
    unsigned V = (Start + I) % N;
    if (V == Index)
      continue;
    if (Workers[V]->Deque.steal(Out))
      return true;
  }
  return false;
}

void ParallelEvacuator::forwardRootRange(Worker &W, size_t Begin,
                                         size_t End) {
  if (Begin >= End)
    return;
  // Locate the span containing Begin, then walk spans forwarding each
  // overlapping slice.
  size_t SI = static_cast<size_t>(
      std::upper_bound(SpanOffsets.begin(), SpanOffsets.end(), Begin) -
      SpanOffsets.begin() - 1);
  for (; SI < RootSpans.size() && SpanOffsets[SI] < End; ++SI) {
    size_t Lo = std::max(Begin, SpanOffsets[SI]) - SpanOffsets[SI];
    size_t Hi = std::min(End, SpanOffsets[SI + 1]) - SpanOffsets[SI];
    Word *const *Slots = RootSpans[SI].Slots;
    for (size_t I = Lo; I < Hi; ++I) {
      // Cursor before the forward: if it faults, this slot still needs
      // doing (the recovery drain resumes from RootCursor inclusive).
      W.RootCursor = SpanOffsets[SI] + I;
      forwardSlot(W, Slots[I]);
    }
  }
  W.RootCursor = End;
}

void ParallelEvacuator::faultCheck() {
  FaultInjector &FI = FaultInjector::global();
  if (TILGC_UNLIKELY(FI.shouldFire(FaultPoint::WorkerStall)))
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  if (TILGC_UNLIKELY(FI.shouldFire(FaultPoint::WorkerThrow)))
    throw WorkerFault{};
}

void ParallelEvacuator::workerMain(unsigned Index) {
  if (TILGC_UNLIKELY(StampWorkers))
    Workers[Index]->TelBeginNs = GcTelemetry::nowNs();
  try {
    workerBody(Index);
  } catch (...) {
    Workers[Index]->Faulted = true;
    // A faulted worker abandons its in-flight work — unforwarded root
    // slice, pending span, local gray backlog, overflow list, deque — to
    // the post-join serial recovery and leaves the termination protocol.
    // Every throwing site runs while the worker is active, so one
    // decrement rebalances NumActive; the remaining workers keep stealing
    // (including from the faulted deque) and terminate normally.
    NumFaults.fetch_add(1, std::memory_order_relaxed);
    NumActive.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (TILGC_UNLIKELY(StampWorkers))
    Workers[Index]->TelEndNs = GcTelemetry::nowNs();
}

void ParallelEvacuator::workerBody(unsigned Index) {
  Worker &W = *Workers[Index];
  if (TILGC_UNLIKELY(FaultInjector::enabled()))
    faultCheck();
  forwardRootRange(W, W.RootBegin, W.RootEnd);
  for (;;) {
    if (TILGC_UNLIKELY(FaultInjector::enabled()))
      faultCheck();
    if (scanStep(W))
      continue;
    // Out of local work: go idle and scavenge. A worker re-activates
    // before touching stolen work, so NumActive == 0 implies every deque
    // and every local backlog is empty — global termination.
    NumActive.fetch_sub(1, std::memory_order_acq_rel);
    Span S;
    for (;;) {
      if (trySteal(W, Index, S)) {
        NumActive.fetch_add(1, std::memory_order_acq_rel);
        scanSpan(W, S);
        break;
      }
      if (NumActive.load(std::memory_order_acquire) == 0)
        return;
      std::this_thread::yield();
    }
  }
}

/// Scans a worker's unscanned local gray range [Scan, Alloc) with \p R's
/// copy context. For R itself this is the ordinary Cheney loop: copies can
/// retire R's block (nulling the cursors — hence the null guard) and open a
/// fresh one, whose gray objects this same loop then drains.
bool ParallelEvacuator::drainLocalGray(Worker &R, LocalAlloc &LA) {
  bool Any = false;
  while (LA.Scan && LA.Scan < LA.Alloc) {
    Word *Payload = LA.Scan + HeaderWords;
    LA.Scan += objectTotalWords(descriptorOf(Payload));
    Any = true;
    scanObject(R, Payload);
  }
  return Any;
}

void ParallelEvacuator::serialRecover() {
  InRecovery = true;
  Worker &R = *Workers[0];
  // Finish every abandoned root slice first. Re-forwarding slots a healthy
  // worker already processed is harmless: the slot just re-adopts the
  // installed forwarding target.
  for (std::unique_ptr<Worker> &WP : Workers) {
    size_t Cursor = WP->RootCursor;
    size_t End = WP->RootEnd;
    if (Cursor < End)
      forwardRootRange(R, Cursor, End);
  }
  // Drain every worker's leftovers to a fixed point. All of it funnels
  // through R's copy context; work R copies lands in R's own backlog and
  // is picked up by the same passes.
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (std::unique_ptr<Worker> &WP : Workers) {
      Worker &W = *WP;
      if (W.Pending.Begin) {
        Span S = W.Pending;
        W.Pending = Span{nullptr, nullptr};
        scanSpan(R, S);
        Progress = true;
      }
      if (drainLocalGray(R, W.Old))
        Progress = true;
      if (drainLocalGray(R, W.Young))
        Progress = true;
      while (!W.Overflow.empty()) {
        Span S = W.Overflow.back();
        W.Overflow.pop_back();
        scanSpan(R, S);
        Progress = true;
      }
      // steal(), not pop(): safe from a foreign thread, and with the
      // workers joined it fails only on a genuinely empty deque.
      Span S;
      while (W.Deque.steal(S)) {
        scanSpan(R, S);
        Progress = true;
      }
    }
  }
  InRecovery = false;
}

void ParallelEvacuator::run() {
  unsigned N = static_cast<unsigned>(Workers.size());
  // addRoot singles form one final span after the explicit spans, so the
  // concatenation order — and therefore the worker partition — matches the
  // order the roots were handed in.
  if (!Roots.empty())
    RootSpans.push_back(RootSpan{Roots.data(), Roots.size()});
  SpanOffsets.resize(RootSpans.size() + 1);
  SpanOffsets[0] = 0;
  for (size_t I = 0; I < RootSpans.size(); ++I)
    SpanOffsets[I + 1] = SpanOffsets[I] + RootSpans[I].Count;
  size_t NumRoots = SpanOffsets.back();
  for (unsigned I = 0; I < N; ++I) {
    Workers[I]->RootBegin = NumRoots * I / N;
    Workers[I]->RootEnd = NumRoots * (I + 1) / N;
    Workers[I]->RootCursor = Workers[I]->RootBegin;
  }
  NumActive.store(N, std::memory_order_relaxed);
  NumFaults.store(0, std::memory_order_relaxed);
  // Decide worker stamping once, before the pool starts: workers read
  // StampWorkers as a plain bool, so it must not change mid-pass.
  StampWorkers = C.Telemetry && C.Telemetry->currentEvent() != nullptr;
  Pool.runOnAll([this](unsigned I) { workerMain(I); });

  // Faulted workers left work behind; finish it single-threaded before the
  // merge (the join above makes all their writes visible here).
  if (TILGC_UNLIKELY(NumFaults.load(std::memory_order_relaxed) > 0))
    serialRecover();

  for (std::unique_ptr<Worker> &WP : Workers) {
    Worker &W = *WP;
    // Always-on post-condition: every gray object was scanned. A violation
    // here means the termination/recovery protocol lost work — continuing
    // would hand the mutator a heap with unforwarded from-space pointers.
    if (TILGC_UNLIKELY(!(W.Overflow.empty() && W.Old.Scan == W.Old.Alloc &&
                         W.Young.Scan == W.Young.Alloc && !W.Pending.Begin)))
      fatalError("parallel evacuation finished with unscanned gray work "
                 "(worker %zu, faults=%u)",
                 static_cast<size_t>(&WP - Workers.data()),
                 NumFaults.load(std::memory_order_relaxed));
    retireBlock(W, W.Old);
    retireBlock(W, W.Young);
    TotalBytesCopied += W.BytesCopied;
    TotalObjectsCopied += W.ObjectsCopied;
    TotalCrossingUpdates += W.CrossingUpdates;
    if (C.Profiler && W.Prof)
      C.Profiler->mergeFrom(*W.Prof);
    if (C.CrossGenOut)
      C.CrossGenOut->insert(C.CrossGenOut->end(), W.CrossGen.begin(),
                            W.CrossGen.end());
  }

  // Telemetry merge, on the controlling thread after the join: per-worker
  // spans into the in-flight event, one onWorkerFault per faulted worker.
  if (TILGC_UNLIKELY(StampWorkers)) {
    if (GcEvent *Ev = C.Telemetry->currentEvent()) {
      for (unsigned I = 0; I < N; ++I) {
        Worker &W = *Workers[I];
        GcWorkerSpan S;
        S.Index = I;
        S.BeginNs = W.TelBeginNs;
        S.EndNs = W.TelEndNs;
        S.BytesCopied = W.BytesCopied;
        S.ObjectsCopied = W.ObjectsCopied;
        S.Faulted = W.Faulted;
        Ev->WorkerSpans.push_back(S);
      }
    }
    for (unsigned I = 0; I < N; ++I)
      if (Workers[I]->Faulted)
        C.Telemetry->noteWorkerFault(I);
  }
}
