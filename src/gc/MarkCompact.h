//===- gc/MarkCompact.h - Region mark-compact major engine ------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mark-compact engine behind the region-structured tenured space
/// (beyond the paper; after the MMTk mature-space design). One major
/// collection runs four phases:
///
///  1. MARK — parallel trace over the existing WorkerPool: per-worker
///     private mark stacks with grey overflow published to Chase-Lev deques,
///     the same active-count termination protocol as the parallel
///     evacuator. Marks land in side bitmaps (young spaces + tenured) and
///     in the LOS mark bits.
///  2. PLAN — a serial, mutation-free walk of the tenured space: per-region
///     liveness accounting (RegionManager), dense/sparse classification,
///     a break table of contiguous slide runs (dense regions pin in place,
///     sparse regions' objects slide toward the base), pad gaps in front of
///     pinned runs, and promotion targets for every marked young object
///     appended after the compacted tenured content. The plan writes
///     nothing, so the caller can still abandon it (grow the space, or
///     throw a structured HeapExhausted) with the heap intact.
///  3. FIXUP — every pointer field of every live object (tenured, young,
///     LOS) plus every root slot is rewritten through the break table /
///     young forwarding headers. Tenured fixup is parallel over region
///     stripes when a pool is available.
///  4. COMPACT — slide runs memmove downward in address order (targets
///     never overrun un-consumed sources), pad gaps are stamped, young
///     survivors are copied to their promotion targets, the frontier is
///     rewound, and the crossing map is rebuilt over the new layout.
///
/// Because nothing moves unless the plan fits, compaction needs no to-space
/// reservation — the PR-3 pre-flight hard-cap check (and its sticky
/// exhaustion) is retired on this path.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_MARKCOMPACT_H
#define TILGC_GC_MARKCOMPACT_H

#include "heap/CrossingMap.h"
#include "heap/LargeObjectSpace.h"
#include "heap/RegionManager.h"
#include "heap/Space.h"
#include "object/Object.h"
#include "profile/HeapProfiler.h"
#include "support/WorkerPool.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace tilgc {

class GcTelemetry;

/// Thrown out of mark() / plannedTenuredBytes() when the engine aborts a
/// still-mutation-free phase: either FaultPoint::MarkPlanThrow fired, or
/// the watchdog requested recovery through Config::AbortFlag. The caller
/// (GenerationalCollector) catches this and fails over to a semispace
/// major for that collection; nothing in the heap has been mutated, only
/// private bitmaps and (possibly) LOS mark bits — which the failover
/// clears via LargeObjectSpace::clearMarks before re-tracing.
struct MarkPlanFault {};

/// A side mark bitmap over one Space: one bit per heap word, set at the
/// object's header word. testAndSet is atomic so parallel mark workers race
/// benignly — exactly one claims each object.
class MarkBitmap {
public:
  void attach(const Space &S) {
    Base = S.baseAddr();
    NumWords = S.capacityBytes() / sizeof(Word);
    Bits.assign((NumWords + 63) / 64, 0);
  }

  bool covers(const Word *P) const {
    return P >= Base && static_cast<size_t>(P - Base) < NumWords;
  }

  /// Atomically sets the bit for \p Header; true if this call set it.
  bool testAndSet(const Word *Header) {
    size_t I = index(Header);
    uint64_t Bit = uint64_t(1) << (I & 63);
    std::atomic_ref<uint64_t> Cell(Bits[I >> 6]);
    if (Cell.load(std::memory_order_relaxed) & Bit)
      return false;
    return (Cell.fetch_or(Bit, std::memory_order_relaxed) & Bit) == 0;
  }

  bool test(const Word *Header) const {
    size_t I = index(Header);
    return (Bits[I >> 6] >> (I & 63)) & 1;
  }

private:
  size_t index(const Word *P) const {
    assert(covers(P) && "mark outside the attached space");
    return static_cast<size_t>(P - Base);
  }

  const Word *Base = nullptr;
  size_t NumWords = 0;
  std::vector<uint64_t> Bits;
};

/// One mark-and-compact pass over {young spaces, tenured, LOS}. Usage:
/// addRootSpan() for every root span, mark(), plannedTenuredBytes() — then
/// either compact() (optionally preceded by forEachDeadTenured for the
/// profiler's death sweep) or abandon the object (nothing was mutated).
class MarkCompact {
public:
  struct Config {
    /// Young spaces whose survivors promote (null entries ignored).
    std::array<Space *, 2> Young = {nullptr, nullptr};
    /// The tenured space being compacted in place.
    Space *Tenured = nullptr;
    /// Region overlay bound to Tenured (liveness plan state lives here).
    RegionManager *Regions = nullptr;
    /// Large-object space: marked during the trace, fields fixed up,
    /// never moved. Sweeping is the caller's job (marks are left set).
    LargeObjectSpace *LOS = nullptr;
    /// Optional profiling hooks, applied with evacuator-identical semantics
    /// (onSurviveFirst for age-0 survivors, onReferent for every non-null
    /// field of every live object, onCopy only for physically moved bytes).
    HeapProfiler *Profiler = nullptr;
    /// Optional telemetry plane for phase scopes and worker spans.
    GcTelemetry *Telemetry = nullptr;
    /// When set, rebuilt over the compacted tenured layout (pads recorded
    /// but not counted, mirroring the evacuator).
    CrossingMap *CrossDest = nullptr;
    /// Parallel marking/fixup when set; serial otherwise.
    WorkerPool *Pool = nullptr;
    /// Live fraction at or above which a region pins in place.
    double DenseFraction = RegionManager::DefaultDenseFraction;
    /// Watchdog recover latch: when non-null and set, the engine's abort
    /// points throw MarkPlanFault while the phase is still mutation-free.
    /// Null (the default, and whenever no watchdog is configured) costs one
    /// well-predicted branch per abort point — never per object scanned.
    const std::atomic<bool> *AbortFlag = nullptr;
  };

  explicit MarkCompact(const Config &C);

  /// Registers a span of root slots. Used twice: read during mark, and
  /// rewritten during fixup.
  void addRootSpan(Word *const *Slots, size_t Count);

  /// Traces the heap from the registered roots. Parallel when configured;
  /// worker faults (fault-injection) recover via a serial re-trace.
  void mark();

  /// Runs the planning walk (idempotent, mutation-free) and returns the
  /// compacted tenured extent in bytes — live tenured data plus pad gaps
  /// plus promoted young survivors. The caller compares this against the
  /// space capacity to decide compact-in-place vs grow.
  size_t plannedTenuredBytes();

  /// Visits the payload of every unmarked (dead) tenured object. Valid
  /// after mark() and only before compact() — compaction destroys dead
  /// objects. The profiler's death sweep for the generation that no longer
  /// gets evacuated.
  template <typename FnT> void forEachDeadTenured(FnT Fn) const {
    assert(Phase >= MarkDone && Phase < CompactDone);
    const Word *P = C.Tenured->baseAddr();
    const Word *End = C.Tenured->frontier();
    while (P < End) {
      Word Raw = *P;
      if (TILGC_UNLIKELY(header::isPad(Raw))) {
        P += header::padWords(Raw);
        continue;
      }
      assert(!header::isForwarded(Raw));
      if (!TenuredBits.test(P))
        Fn(const_cast<Word *>(P) + HeaderWords);
      P += objectTotalWords(Raw);
    }
  }

  /// The hard pre-commit barrier: the last point where this collection can
  /// still be abandoned. Re-checks the injector and the watchdog's abort
  /// latch and throws MarkPlanFault if either wants out; once compact()
  /// runs, forwarding installs and memmoves mutate the heap and the phase
  /// cannot be abandoned, so abort requests arriving later are ignored.
  void preCommitCheck() { abortPoint(); }

  // --- Incremental marking (pause-budget mode) --------------------------
  //
  // An alternative front half to mark(): beginIncremental() attaches the
  // bitmaps and one serial mark worker without tracing anything; seeds
  // arrive via markSeed() and bounded grey-draining runs through
  // markStep(), interleaved with mutator execution across many slices.
  // Young pointers are dropped (neither marked nor queued) until
  // enableYoungMarking(): every young object is a cycle-era allocation
  // (the nursery was empty when the cycle began and minors empty it
  // again), so the cycle treats young as allocate-black and seeds the
  // whole young population at finish — which also guarantees the grey set
  // never holds a pointer a minor collection could move.
  // finishIncrementalMark() closes the phase exactly like mark(), so
  // plannedTenuredBytes()/preCommitCheck()/compact() run unchanged.

  /// Starts an incremental mark: bitmaps attached, serial worker created,
  /// young-pointer marking disabled, nothing traced yet.
  void beginIncremental();

  /// Marks (and queues for scanning) the object at \p Bits if it is not
  /// already marked. Ignores null and — until enableYoungMarking() —
  /// young pointers.
  void markSeed(Word Bits);

  /// Drains grey work for at most \p BudgetNs wall-clock. Returns true
  /// when no grey work remains (the slice finished the current closure).
  bool markStep(uint64_t BudgetNs);

  /// Re-enables young-pointer marking for the cycle-finishing collection.
  void enableYoungMarking() { IncSkipYoung = false; }

  /// Closes the incremental mark (grey set must be drained): merges the
  /// LOS live list and flips the phase to MarkDone.
  void finishIncrementalMark();

  /// Whether the tenured object at \p Payload is already marked — the
  /// SATB buffer's already-black filter. False for anything outside the
  /// tenured space (LOS values are deduped at seed time instead).
  bool incrementalMarked(const Word *Payload) const {
    const Word *H = Payload - HeaderWords;
    return TenuredBits.covers(H) && TenuredBits.test(H);
  }

  /// Visits every grey payload (marked but not yet scanned) — the
  /// tricolor audit's pending-scan set. Incremental (serial) mode only.
  template <typename FnT> void forEachGrey(FnT Fn) const {
    if (Workers.empty())
      return;
    for (Word *P : Workers[0]->Local)
      Fn(P);
  }

  /// Executes the plan: profiler/aging pass, young forwarding installs,
  /// pointer fixup, slides, pads, frontier rewind, young survivor copies,
  /// crossing-map rebuild. After this the young spaces hold forwarded
  /// headers (so Collector::sweepDeaths still works) and the tenured space
  /// is compact.
  void compact();

  /// Marked live bytes/objects across young + tenured (excludes LOS) —
  /// the same population the semispace major reports as copied, so the
  /// deterministic GcEvent slice stays bit-identical across modes.
  uint64_t markedLiveBytes() const { return MarkedLiveBytes; }
  uint64_t markedObjects() const { return MarkedObjects; }

  /// Physically relocated bytes/objects (slid tenured runs + promoted young
  /// survivors) — the pause-work metric the compactor exists to shrink.
  uint64_t bytesMoved() const { return BytesMoved; }
  uint64_t objectsMoved() const { return ObjectsMoved; }

  uint64_t crossingMapUpdates() const { return CrossingUpdates; }
  unsigned workerFaults() const { return NumFaults; }
  bool serialRecovered() const { return Recovered; }

  size_t regionsTotal() const { return C.Regions->numRegions(); }
  size_t regionsDense() const { return NumDense; }
  size_t regionsEvacuated() const { return NumEvacuated; }

private:
  /// 16-byte POD for the Chase-Lev deque (its cells are two machine words).
  struct MarkItem {
    Word *Payload;
    uintptr_t Unused;
  };

  struct Worker {
    WorkStealingDeque<MarkItem> Deque;
    std::vector<Word *> Local;   ///< Private mark stack (deque-full overflow
                                 ///< simply stays here).
    std::vector<Word *> LOSLive; ///< LOS payloads this worker marked first.
    uint64_t MarkedBytes = 0;     ///< Telemetry only (thread-dependent).
    uint64_t Marked = 0;
    uint64_t TelBeginNs = 0, TelEndNs = 0;
    bool Faulted = false;
    unsigned Seed = 0;
    size_t RootBegin = 0, RootEnd = 0;
  };

  /// A break-table run: live objects occupying [OldBegin, OldEnd) slide
  /// down by DeltaWords (0 for pinned/prefix runs). Runs are contiguous
  /// live words — merging across a dead gap would drag garbage along.
  struct MoveRun {
    Word *OldBegin;
    Word *OldEnd;
    size_t DeltaWords;
  };

  /// A gap in the compacted layout (in new coordinates) stamped with a pad
  /// filler so the space stays linearly walkable.
  struct PadGap {
    Word *Begin;
    size_t Words;
  };

  /// A young survivor's promotion: copied to NewPayload during compact().
  struct YoungMove {
    Word *OldPayload;
    Word *NewPayload;
    Word Descriptor; ///< Saved before the forwarding install clobbers it.
  };

  void markObject(Word *Payload, Worker &W);
  void scanObject(Word *Payload, Worker &W);
  bool popLocal(Worker &W, Word *&Payload);
  void maybePublish(Worker &W);
  bool stealAny(Worker &W, Word *&Payload);
  void workerMain(unsigned Index);
  void workerBody(Worker &W);
  void serialMark();
  void serialRecoverMark();
  void faultCheck(Worker &W);
  void abortPoint();

  void applyAgingAndProfile();
  Word *fixupPointer(Word *P) const;
  void fixupFields(Word Descriptor, Word *Payload) const;
  void fixupTenured();
  void fixupTenuredRange(const Word *Begin, const Word *End) const;
  void fixupRoots();
  void performMoves();

  Config C;
  MarkBitmap YoungBits[2];
  MarkBitmap TenuredBits;
  std::vector<std::pair<Word *const *, size_t>> RootSpans;
  size_t TotalRootSlots = 0;

  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<int> NumActive{0};
  std::atomic<unsigned> NumFaults{0};
  bool Parallel = false;
  bool Recovered = false;
  /// Incremental mode: drop young pointers during slices (see
  /// beginIncremental). Always false on the stock mark() path.
  bool IncSkipYoung = false;

  std::vector<Word *> LOSLive; ///< Merged, sorted, deduped after mark.
  std::vector<MoveRun> Runs;
  std::vector<PadGap> PadGaps;
  std::vector<YoungMove> YoungMoves;
  Word *FinalFrontier = nullptr;

  uint64_t MarkedLiveBytes = 0;
  uint64_t MarkedObjects = 0;
  uint64_t BytesMoved = 0;
  uint64_t ObjectsMoved = 0;
  uint64_t CrossingUpdates = 0;
  size_t NumDense = 0;
  size_t NumEvacuated = 0;

  enum PhaseState { Fresh, MarkDone, PlanDone, CompactDone };
  PhaseState Phase = Fresh;
};

} // namespace tilgc

#endif // TILGC_GC_MARKCOMPACT_H
