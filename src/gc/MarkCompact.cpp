//===- gc/MarkCompact.cpp - Region mark-compact major engine --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/MarkCompact.h"

#include "observe/GcTelemetry.h"
#include "support/FaultInjector.h"
#include "support/Fatal.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_set>

using namespace tilgc;

namespace {

/// Thrown by the WorkerThrow fault point inside a mark worker; caught in
/// workerMain. Same shape as the parallel evacuator's injected fault.
struct MarkFault {};

/// Local mark stack size above which a worker publishes grey work for
/// thieves, and how many (oldest — closest to the roots, so likely the
/// widest subtrees) it publishes at a time.
constexpr size_t PublishThreshold = 128;
constexpr size_t PublishChunk = 32;

/// Phase scope against an optional telemetry plane.
struct OptPhase {
  GcTelemetry *T;
  GcPhase P;
  OptPhase(GcTelemetry *T, GcPhase P) : T(T), P(P) {
    if (T)
      T->enterPhase(P);
  }
  ~OptPhase() {
    if (T)
      T->exitPhase(P);
  }
  OptPhase(const OptPhase &) = delete;
  OptPhase &operator=(const OptPhase &) = delete;
};

} // namespace

MarkCompact::MarkCompact(const Config &C) : C(C) {
  assert(C.Tenured && "mark-compact needs a tenured space");
  assert(C.Regions && "mark-compact needs the region overlay");
}

void MarkCompact::addRootSpan(Word *const *Slots, size_t Count) {
  assert(Phase == Fresh && "roots must be registered before mark()");
  if (!Count)
    return;
  RootSpans.push_back({Slots, Count});
  TotalRootSlots += Count;
}

//===----------------------------------------------------------------------===//
// Mark
//===----------------------------------------------------------------------===//

void MarkCompact::faultCheck(Worker &W) {
  (void)W;
  if (!Parallel || TILGC_LIKELY(!FaultInjector::enabled()))
    return;
  auto &FI = FaultInjector::global();
  if (FI.shouldFire(FaultPoint::WorkerStall))
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  if (FI.shouldFire(FaultPoint::WorkerThrow))
    throw MarkFault{};
}

// Engine-level abort point, controlling thread only (workers signal faults
// via MarkFault and are recovered serially; MarkPlanFault abandons the whole
// engine). Every call site is in a still-mutation-free phase — the caller's
// failover contract depends on that.
void MarkCompact::abortPoint() {
  if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
      FaultInjector::global().shouldFire(FaultPoint::MarkPlanThrow))
    throw MarkPlanFault{};
  if (TILGC_UNLIKELY(C.AbortFlag != nullptr) &&
      C.AbortFlag->load(std::memory_order_relaxed))
    throw MarkPlanFault{};
}

void MarkCompact::markObject(Word *Payload, Worker &W) {
  const Word *H = Payload - HeaderWords;
  for (unsigned I = 0; I < 2; ++I) {
    Space *Y = C.Young[I];
    if (Y && Y->contains(Payload)) {
      if (TILGC_UNLIKELY(IncSkipYoung))
        return; // Incremental slices: young is allocate-black, seeded at
                // finish — and a grey young pointer would go stale at the
                // next minor collection.
      if (YoungBits[I].testAndSet(H))
        W.Local.push_back(Payload);
      return;
    }
  }
  if (C.Tenured->contains(Payload)) {
    if (TenuredBits.testAndSet(H))
      W.Local.push_back(Payload);
    return;
  }
  assert(C.LOS && C.LOS->contains(Payload) &&
         "traced pointer outside every space");
  if (C.LOS->mark(Payload)) {
    W.LOSLive.push_back(Payload);
    W.Local.push_back(Payload);
  }
}

void MarkCompact::scanObject(Word *Payload, Worker &W) {
  faultCheck(W);
  Word Descriptor = descriptorOf(Payload);
  W.MarkedBytes += objectTotalBytes(Descriptor);
  ++W.Marked;
  forEachPointerFieldWith(Descriptor, Payload, [&](Word *F) {
    if (Word V = *F)
      markObject(reinterpret_cast<Word *>(V), W);
  });
  maybePublish(W);
}

bool MarkCompact::popLocal(Worker &W, Word *&Payload) {
  if (!W.Local.empty()) {
    Payload = W.Local.back();
    W.Local.pop_back();
    return true;
  }
  MarkItem It;
  if (W.Deque.pop(It)) {
    Payload = It.Payload;
    return true;
  }
  return false;
}

void MarkCompact::maybePublish(Worker &W) {
  if (!Parallel || W.Local.size() <= PublishThreshold)
    return;
  size_t Pushed = 0;
  while (Pushed < PublishChunk &&
         W.Deque.push(MarkItem{W.Local[Pushed], 0}))
    ++Pushed;
  W.Local.erase(W.Local.begin(),
                W.Local.begin() + static_cast<ptrdiff_t>(Pushed));
}

bool MarkCompact::stealAny(Worker &W, Word *&Payload) {
  unsigned N = static_cast<unsigned>(Workers.size());
  for (unsigned K = 0; K < N; ++K) {
    unsigned V = (W.Seed + K) % N;
    Worker &Victim = *Workers[V];
    if (&Victim == &W)
      continue;
    MarkItem It;
    if (Victim.Deque.steal(It)) {
      W.Seed = V;
      Payload = It.Payload;
      return true;
    }
  }
  ++W.Seed;
  return false;
}

void MarkCompact::workerBody(Worker &W) {
  // Forward this worker's contiguous chunk of the flattened root index
  // space.
  size_t Pos = 0;
  for (const auto &Span : RootSpans) {
    Word *const *Slots = Span.first;
    size_t Count = Span.second;
    if (Pos + Count > W.RootBegin && Pos < W.RootEnd) {
      size_t B = W.RootBegin > Pos ? W.RootBegin - Pos : 0;
      size_t E = std::min(Count, W.RootEnd - Pos);
      for (size_t I = B; I < E; ++I) {
        faultCheck(W);
        if (Word V = *Slots[I])
          markObject(reinterpret_cast<Word *>(V), W);
      }
    }
    Pos += Count;
    if (Pos >= W.RootEnd)
      break;
  }

  // Drain-and-steal with the evacuator's active-count termination: a worker
  // only deactivates with its private stack and deque drained, and a thief
  // reactivates itself for every stolen item, so the count can only reach
  // zero when no grey work exists anywhere.
  Word *P;
  for (;;) {
    while (popLocal(W, P))
      scanObject(P, W);
    NumActive.fetch_sub(1, std::memory_order_acq_rel);
    for (;;) {
      if (stealAny(W, P)) {
        NumActive.fetch_add(1, std::memory_order_acq_rel);
        scanObject(P, W);
        break;
      }
      if (NumActive.load(std::memory_order_acquire) == 0)
        return;
      std::this_thread::yield();
    }
  }
}

void MarkCompact::workerMain(unsigned Index) {
  Worker &W = *Workers[Index];
  W.TelBeginNs = GcTelemetry::nowNs();
  try {
    workerBody(W);
  } catch (MarkFault &) {
    // Abandon this worker's grey work (the serial recovery re-traces from
    // the roots); rebalance the active count so the others terminate.
    W.Faulted = true;
    NumFaults.fetch_add(1, std::memory_order_relaxed);
    NumActive.fetch_sub(1, std::memory_order_acq_rel);
  }
  W.TelEndNs = GcTelemetry::nowNs();
}

void MarkCompact::serialMark() {
  Worker &W = *Workers[0];
  for (const auto &Span : RootSpans)
    for (size_t I = 0; I < Span.second; ++I)
      if (Word V = *Span.first[I])
        markObject(reinterpret_cast<Word *>(V), W);
  Word *P;
  uint64_t Scanned = 0;
  while (popLocal(W, P)) {
    // Bounded watchdog-recovery latency without a per-object cost: one
    // abort check per 1024 objects scanned.
    if (TILGC_UNLIKELY((++Scanned & 1023) == 0))
      abortPoint();
    scanObject(P, W);
  }
  LOSLive = std::move(W.LOSLive);
}

void MarkCompact::serialRecoverMark() {
  // A faulted worker dropped grey objects that are marked but never
  // scanned, so a testAndSet-gated re-trace would skip their children. The
  // recovery runs a fresh traversal with private visited sets, promoting
  // every reachable object into the real bitmaps / LOS marks and rebuilding
  // the LOS live list from scratch (discarding the per-worker lists, which
  // may now be incomplete).
  MarkBitmap RecYoung[2];
  MarkBitmap RecTenured;
  for (unsigned I = 0; I < 2; ++I)
    if (C.Young[I])
      RecYoung[I].attach(*C.Young[I]);
  RecTenured.attach(*C.Tenured);
  std::unordered_set<const Word *> RecLOS;
  std::vector<Word *> Stack;
  std::vector<Word *> NewLOSLive;

  auto Visit = [&](Word *P) {
    const Word *H = P - HeaderWords;
    for (unsigned I = 0; I < 2; ++I) {
      if (C.Young[I] && C.Young[I]->contains(P)) {
        if (RecYoung[I].testAndSet(H)) {
          YoungBits[I].testAndSet(H);
          Stack.push_back(P);
        }
        return;
      }
    }
    if (C.Tenured->contains(P)) {
      if (RecTenured.testAndSet(H)) {
        TenuredBits.testAndSet(H);
        Stack.push_back(P);
      }
      return;
    }
    assert(C.LOS && C.LOS->contains(P));
    if (RecLOS.insert(P).second) {
      C.LOS->mark(P);
      NewLOSLive.push_back(P);
      Stack.push_back(P);
    }
  };

  for (const auto &Span : RootSpans)
    for (size_t I = 0; I < Span.second; ++I)
      if (Word V = *Span.first[I])
        Visit(reinterpret_cast<Word *>(V));
  while (!Stack.empty()) {
    Word *P = Stack.back();
    Stack.pop_back();
    forEachPointerField(P, [&](Word *F) {
      if (Word V = *F)
        Visit(reinterpret_cast<Word *>(V));
    });
  }
  LOSLive = std::move(NewLOSLive);
}

void MarkCompact::mark() {
  assert(Phase == Fresh);
  OptPhase Scope(C.Telemetry, GcPhase::Mark);
  abortPoint(); // Crossing 1: abort before anything (even LOS bits) is set.
  for (unsigned I = 0; I < 2; ++I)
    if (C.Young[I])
      YoungBits[I].attach(*C.Young[I]);
  TenuredBits.attach(*C.Tenured);
  assert(C.Regions->boundTo(*C.Tenured) &&
         "region overlay attached to a stale reservation");

  Parallel = C.Pool != nullptr;
  unsigned N = Parallel ? C.Pool->numWorkers() : 1;
  Workers.clear();
  for (unsigned I = 0; I < N; ++I) {
    Workers.push_back(std::make_unique<Worker>());
    Workers.back()->Seed = I + 1;
  }

  if (!Parallel) {
    serialMark();
  } else {
    size_t PerWorker = (TotalRootSlots + N - 1) / N;
    for (unsigned I = 0; I < N; ++I) {
      Worker &W = *Workers[I];
      W.RootBegin = std::min<size_t>(I * PerWorker, TotalRootSlots);
      W.RootEnd = std::min<size_t>((I + 1) * PerWorker, TotalRootSlots);
    }
    NumActive.store(static_cast<int>(N), std::memory_order_relaxed);
    C.Pool->runOnAll([this](unsigned I) { workerMain(I); });

    if (C.Telemetry) {
      if (GcEvent *E = C.Telemetry->currentEvent()) {
        for (unsigned I = 0; I < N; ++I) {
          Worker &W = *Workers[I];
          GcWorkerSpan S;
          S.Index = I;
          S.BeginNs = W.TelBeginNs;
          S.EndNs = W.TelEndNs;
          S.BytesCopied = W.MarkedBytes;
          S.ObjectsCopied = W.Marked;
          S.Faulted = W.Faulted;
          E->WorkerSpans.push_back(S);
        }
      }
      for (unsigned I = 0; I < N; ++I)
        if (Workers[I]->Faulted)
          C.Telemetry->noteWorkerFault(I);
    }

    // A watchdog recover-request that landed while the pool ran is honored
    // here, before the serial re-trace: the heap is still unmutated, and
    // the failover re-traces from the roots anyway.
    abortPoint();
    if (NumFaults.load(std::memory_order_relaxed)) {
      serialRecoverMark();
      Recovered = true;
    } else {
      for (unsigned I = 0; I < N; ++I) {
        Worker &W = *Workers[I];
        if (!W.Local.empty() || W.Deque.maybeNonEmpty())
          fatalError("grey work survived mark termination (worker %u)", I);
        LOSLive.insert(LOSLive.end(), W.LOSLive.begin(), W.LOSLive.end());
      }
    }
  }
  Workers.clear();

  // Deterministic order for the fixup / profiler passes, and a dedupe
  // backstop: the fixup is not idempotent, so each LOS object must appear
  // exactly once.
  std::sort(LOSLive.begin(), LOSLive.end());
  LOSLive.erase(std::unique(LOSLive.begin(), LOSLive.end()), LOSLive.end());
  // Last mark-phase crossing: aborting here exercises the failover path
  // where LOS mark bits are already set and must be cleared (not swept).
  abortPoint();
  Phase = MarkDone;
}

//===----------------------------------------------------------------------===//
// Incremental mark (pause-budget mode)
//===----------------------------------------------------------------------===//

void MarkCompact::beginIncremental() {
  assert(Phase == Fresh && "incremental mark must start on a fresh engine");
  for (unsigned I = 0; I < 2; ++I)
    if (C.Young[I])
      YoungBits[I].attach(*C.Young[I]);
  TenuredBits.attach(*C.Tenured);
  assert(C.Regions->boundTo(*C.Tenured) &&
         "region overlay attached to a stale reservation");
  // Slices mark serially: the grey stack must persist across slices, and
  // the deque/termination protocol buys nothing for bounded increments.
  // C.Pool is still honored by the finish's parallel tenured fixup.
  Parallel = false;
  Workers.clear();
  Workers.push_back(std::make_unique<Worker>());
  Workers.back()->Seed = 1;
  IncSkipYoung = true;
}

void MarkCompact::markSeed(Word Bits) {
  assert(Phase == Fresh && !Workers.empty() &&
         "markSeed outside an incremental mark");
  if (!Bits)
    return;
  markObject(reinterpret_cast<Word *>(Bits), *Workers[0]);
}

bool MarkCompact::markStep(uint64_t BudgetNs) {
  assert(Phase == Fresh && !Workers.empty() &&
         "markStep outside an incremental mark");
  Worker &W = *Workers[0];
  uint64_t Start = GcTelemetry::nowNs();
  Word *P;
  uint64_t Scanned = 0;
  // No abortPoint here: an injected MarkPlanThrow mid-slice could not be
  // failed over (the heap keeps running between slices), so fault crossings
  // stay confined to the finishing collection's plan/pre-commit points.
  while (popLocal(W, P)) {
    scanObject(P, W);
    if (TILGC_UNLIKELY((++Scanned & 63) == 0) &&
        GcTelemetry::nowNs() - Start >= BudgetNs)
      return W.Local.empty(); // Serial: nothing is ever published to the
                              // deque, so the private stack is the grey set.
  }
  return true;
}

void MarkCompact::finishIncrementalMark() {
  assert(Phase == Fresh && !Workers.empty() &&
         "finishIncrementalMark outside an incremental mark");
  Worker &W = *Workers[0];
  assert(W.Local.empty() && "grey work pending at incremental-mark finish");
  LOSLive = std::move(W.LOSLive);
  Workers.clear();
  // Deterministic order + dedupe backstop, exactly as mark()'s tail.
  std::sort(LOSLive.begin(), LOSLive.end());
  LOSLive.erase(std::unique(LOSLive.begin(), LOSLive.end()), LOSLive.end());
  Phase = MarkDone;
}

//===----------------------------------------------------------------------===//
// Plan
//===----------------------------------------------------------------------===//

size_t MarkCompact::plannedTenuredBytes() {
  assert(Phase >= MarkDone);
  Word *Base = C.Tenured->firstPayload() - HeaderWords;
  if (Phase >= PlanDone)
    return static_cast<size_t>(FinalFrontier - Base) * sizeof(Word);
  OptPhase Scope(C.Telemetry, GcPhase::Compact);
  abortPoint(); // PLAN writes nothing; aborting it is always safe.

  C.Regions->clearPlan();
  Word *End = C.Tenured->frontier();

  // Pass 1: per-region liveness accounting (attribution by header address)
  // and walk-start headers for the parallel fixup stripes.
  for (Word *P = Base; P < End;) {
    Word Raw = *P;
    C.Regions->noteWalkStart(P);
    if (TILGC_UNLIKELY(header::isPad(Raw))) {
      P += header::padWords(Raw);
      continue;
    }
    assert(!header::isForwarded(Raw));
    size_t Total = objectTotalWords(Raw);
    if (TenuredBits.test(P)) {
      C.Regions->addLive(P, Total);
      MarkedLiveBytes += Total * sizeof(Word);
      ++MarkedObjects;
    }
    P += Total;
  }
  NumDense = C.Regions->classify(C.DenseFraction);
  NumEvacuated = C.Regions->numEvacuationCandidates();

  // Pass 2: break table. Live objects in dense regions pin (Delta 0, with a
  // pad gap stamped in front when the cursor trails them); everything else
  // slides down to the cursor. The cursor can never overrun a live object:
  // every placement target is at or below the object's old address, so
  // after placing an object of size S ending at Target + S <= H + S, the
  // next live header (at >= H + S in address order) is still ahead.
  Word *Cursor = Base;
  for (Word *P = Base; P < End;) {
    Word Raw = *P;
    if (TILGC_UNLIKELY(header::isPad(Raw))) {
      P += header::padWords(Raw);
      continue;
    }
    size_t Total = objectTotalWords(Raw);
    if (TenuredBits.test(P)) {
      bool Pinned = C.Regions->isDense(C.Regions->regionOf(P));
      Word *Target = Pinned ? P : Cursor;
      assert(Target <= P && "compaction cursor overran a live object");
      if (Pinned && Cursor < P)
        PadGaps.push_back({Cursor, static_cast<size_t>(P - Cursor)});
      size_t Delta = static_cast<size_t>(P - Target);
      if (!Runs.empty() && Runs.back().OldEnd == P &&
          Runs.back().DeltaWords == Delta)
        Runs.back().OldEnd = P + Total;
      else
        Runs.push_back({P, P + Total, Delta});
      if (Delta) {
        BytesMoved += Total * sizeof(Word);
        ++ObjectsMoved;
      }
      Cursor = Target + Total;
    }
    P += Total;
  }

  // Pass 3: promotion targets for marked young survivors, appended after
  // the compacted tenured content.
  for (unsigned S = 0; S < 2; ++S) {
    if (!C.Young[S])
      continue;
    Space &Y = *C.Young[S];
    Word *YEnd = Y.frontier();
    for (Word *P = Y.firstPayload() - HeaderWords; P < YEnd;) {
      Word Raw = *P;
      if (TILGC_UNLIKELY(header::isPad(Raw))) {
        P += header::padWords(Raw);
        continue;
      }
      assert(!header::isForwarded(Raw));
      size_t Total = objectTotalWords(Raw);
      if (YoungBits[S].test(P)) {
        YoungMoves.push_back({P + HeaderWords, Cursor + HeaderWords, Raw});
        MarkedLiveBytes += Total * sizeof(Word);
        ++MarkedObjects;
        BytesMoved += Total * sizeof(Word);
        ++ObjectsMoved;
        Cursor += Total;
      }
      P += Total;
    }
  }

  FinalFrontier = Cursor;
  Phase = PlanDone;
  return static_cast<size_t>(Cursor - Base) * sizeof(Word);
}

//===----------------------------------------------------------------------===//
// Compact
//===----------------------------------------------------------------------===//

void MarkCompact::applyAgingAndProfile() {
  HeapProfiler *Prof = C.Profiler;

  // Live tenured objects: survive-first accounting and the age bump the
  // evacuator would have applied on copy (in place here — the memmove
  // carries the bumped meta along).
  Word *Base = C.Tenured->firstPayload() - HeaderWords;
  Word *End = C.Tenured->frontier();
  for (Word *P = Base; P < End;) {
    Word Raw = *P;
    if (TILGC_UNLIKELY(header::isPad(Raw))) {
      P += header::padWords(Raw);
      continue;
    }
    size_t Total = objectTotalWords(Raw);
    if (TenuredBits.test(P)) {
      Word *Payload = P + HeaderWords;
      Word Meta = metaOf(Payload);
      if (Prof) {
        uint32_t Site = meta::site(Meta);
        if (meta::age(Meta) == 0)
          Prof->onSurviveFirst(Site);
        forEachPointerFieldWith(Raw, Payload, [&](Word *F) {
          if (Word V = *F)
            Prof->onReferent(
                Site, meta::site(metaOf(reinterpret_cast<Word *>(V))));
        });
      }
      metaOf(Payload) = meta::withBumpedAge(Meta);
    }
    P += Total;
  }

  // Copy accounting covers only physically moved bytes — the whole point of
  // the compactor. (Pretenure derivation never reads copied bytes, so the
  // profile-driven decisions stay bit-identical across major-GC modes.)
  if (Prof) {
    for (const MoveRun &R : Runs) {
      if (!R.DeltaWords)
        continue;
      for (Word *P = R.OldBegin; P < R.OldEnd;) {
        Word *Payload = P + HeaderWords;
        Prof->onCopy(meta::site(metaOf(Payload)), objectTotalBytes(*P));
        P += objectTotalWords(*P);
      }
    }
  }

  // Young survivors: evacuator-identical hooks, reading fields and metas at
  // the old location (nothing has moved yet).
  if (Prof) {
    for (const YoungMove &M : YoungMoves) {
      Word Meta = metaOf(M.OldPayload);
      uint32_t Site = meta::site(Meta);
      Prof->onCopy(Site, objectTotalBytes(M.Descriptor));
      if (meta::age(Meta) == 0)
        Prof->onSurviveFirst(Site);
      forEachPointerFieldWith(M.Descriptor, M.OldPayload, [&](Word *F) {
        if (Word V = *F)
          Prof->onReferent(Site,
                           meta::site(metaOf(reinterpret_cast<Word *>(V))));
      });
    }
  }

  // LOS objects contribute referent edges only — the evacuator never ages
  // or copy-counts them either.
  if (Prof) {
    for (Word *P : LOSLive) {
      uint32_t Site = meta::site(metaOf(P));
      forEachPointerField(P, [&](Word *F) {
        if (Word V = *F)
          Prof->onReferent(Site,
                           meta::site(metaOf(reinterpret_cast<Word *>(V))));
      });
    }
  }
}

Word *MarkCompact::fixupPointer(Word *P) const {
  for (unsigned I = 0; I < 2; ++I) {
    if (C.Young[I] && C.Young[I]->contains(P)) {
      Word D = descriptorOf(P);
      assert(header::isForwarded(D) &&
             "live field points to an unmarked young object");
      return header::forwardTarget(D);
    }
  }
  if (C.Tenured->contains(P)) {
    const Word *H = P - HeaderWords;
    size_t Lo = 0, Hi = Runs.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Runs[Mid].OldEnd <= H)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    assert(Lo < Runs.size() && Runs[Lo].OldBegin <= H &&
           "live field points to an unmarked tenured object");
    return P - Runs[Lo].DeltaWords;
  }
  return P; // LOS objects never move.
}

void MarkCompact::fixupFields(Word Descriptor, Word *Payload) const {
  forEachPointerFieldWith(Descriptor, Payload, [&](Word *F) {
    if (Word V = *F)
      *F = reinterpret_cast<Word>(
          fixupPointer(reinterpret_cast<Word *>(V)));
  });
}

void MarkCompact::fixupTenuredRange(const Word *Begin, const Word *End) const {
  const Word *P = Begin;
  while (P < End) {
    Word Raw = *P;
    if (TILGC_UNLIKELY(header::isPad(Raw))) {
      P += header::padWords(Raw);
      continue;
    }
    size_t Total = objectTotalWords(Raw);
    if (TenuredBits.test(P))
      fixupFields(Raw, const_cast<Word *>(P) + HeaderWords);
    P += Total;
  }
}

void MarkCompact::fixupTenured() {
  size_t NumRegions = C.Regions->numRegions();
  const Word *Frontier = C.Tenured->frontier();
  // Region stripes parallelize cleanly: every object is owned by the region
  // holding its header, and workers only write fields of objects they own.
  if (C.Pool && NumRegions >= 2 * C.Pool->numWorkers()) {
    std::atomic<size_t> NextRegion{0};
    C.Pool->runOnAll([&](unsigned) {
      for (;;) {
        size_t R = NextRegion.fetch_add(1, std::memory_order_relaxed);
        if (R >= NumRegions)
          return;
        const Word *First = C.Regions->firstHeader(R);
        if (!First)
          continue;
        const Word *End = std::min(C.Regions->regionEnd(R), Frontier);
        fixupTenuredRange(First, End);
      }
    });
  } else {
    fixupTenuredRange(C.Tenured->baseAddr(), Frontier);
  }
}

void MarkCompact::fixupRoots() {
#ifndef NDEBUG
  // The tenured rewrite is not idempotent (a rewritten pointer is again a
  // tenured address), so a slot listed twice would be shifted twice.
  {
    std::vector<Word *> Slots;
    Slots.reserve(TotalRootSlots);
    for (const auto &Span : RootSpans)
      for (size_t I = 0; I < Span.second; ++I)
        Slots.push_back(Span.first[I]);
    std::sort(Slots.begin(), Slots.end());
    assert(std::adjacent_find(Slots.begin(), Slots.end()) == Slots.end() &&
           "duplicate root slot would be fixed up twice");
  }
#endif
  for (const auto &Span : RootSpans)
    for (size_t I = 0; I < Span.second; ++I) {
      Word *Slot = Span.first[I];
      if (Word V = *Slot)
        *Slot = reinterpret_cast<Word>(
            fixupPointer(reinterpret_cast<Word *>(V)));
    }
}

void MarkCompact::performMoves() {
  // Ascending run order: each run's target end never overruns the next
  // run's un-consumed source (target <= old address for every object).
  for (const MoveRun &R : Runs) {
    if (!R.DeltaWords)
      continue;
    std::memmove(R.OldBegin - R.DeltaWords, R.OldBegin,
                 static_cast<size_t>(R.OldEnd - R.OldBegin) * sizeof(Word));
  }
  // Gaps in front of pinned runs become pad fillers so the space stays
  // linearly walkable. Written after the moves: every gap's source bytes
  // have been consumed by then.
  for (const PadGap &G : PadGaps) {
    assert(G.Words <= UINT32_MAX);
    *G.Begin = header::makePad(static_cast<uint32_t>(G.Words));
  }
}

void MarkCompact::compact() {
  assert(Phase == PlanDone && "plan before compacting");

  {
    OptPhase Scope(C.Telemetry, GcPhase::Compact);
    applyAgingAndProfile();
    // Install young forwarding headers (fields at the old locations stay
    // intact — only the descriptor word is clobbered, and YoungMove saved
    // it).
    for (const YoungMove &M : YoungMoves)
      descriptorOf(M.OldPayload) = header::makeForward(M.NewPayload);
  }

  {
    OptPhase Scope(C.Telemetry, GcPhase::Fixup);
    fixupTenured();
    for (const YoungMove &M : YoungMoves)
      fixupFields(M.Descriptor, M.OldPayload);
    for (Word *P : LOSLive)
      fixupFields(descriptorOf(P), P);
    fixupRoots();
  }

  {
    OptPhase Scope(C.Telemetry, GcPhase::Compact);
    performMoves();
    // Promote young survivors into the tail of the compacted space. Fields
    // were already rewritten at the old location; the age bump mirrors the
    // evacuator's copy path.
    for (const YoungMove &M : YoungMoves) {
      Word *NewHeader = M.NewPayload - HeaderWords;
      NewHeader[0] = M.Descriptor;
      NewHeader[1] = meta::withBumpedAge(metaOf(M.OldPayload));
      std::memcpy(M.NewPayload, M.OldPayload,
                  static_cast<size_t>(header::length(M.Descriptor)) *
                      sizeof(Word));
    }
    C.Tenured->setFrontier(FinalFrontier);

    // Rebuild the crossing map over the new layout. Pads are recorded (a
    // dirty-card scan must step over them from a card's first word) but not
    // counted, mirroring the evacuator.
    if (C.CrossDest) {
      C.CrossDest->attach(*C.Tenured);
      Word *Base = C.Tenured->firstPayload() - HeaderWords;
      for (Word *P = Base; P < FinalFrontier;) {
        Word Raw = *P;
        uint32_t Total;
        if (TILGC_UNLIKELY(header::isPad(Raw))) {
          Total = header::padWords(Raw);
        } else {
          Total = objectTotalWords(Raw);
          ++CrossingUpdates;
        }
        C.CrossDest->recordObject(P, Total);
        P += Total;
      }
    }
  }
  Phase = CompactDone;
}
