//===- gc/SemispaceCollector.cpp - Cheney semispace collector -------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/SemispaceCollector.h"

#include "gc/Evacuator.h"
#include "gc/ParallelEvacuator.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cstring>

using namespace tilgc;

SemispaceCollector::SemispaceCollector(const CollectorEnv &Env,
                                       const Options &Opts)
    : Collector(Env), Opts(Opts), Markers(Opts.MarkerPeriod) {
  Markers.setAdaptive(Opts.AdaptiveMarkerPlacement);
  size_t PerSpace =
      std::clamp<size_t>(Opts.BudgetBytes / 2, 16u << 10, 4u << 20);
  SpaceA.reserve(PerSpace);
  SpaceB.reserve(PerSpace);
  // Root-side containers live for the collector's lifetime; reserving here
  // means steady-state collections never grow them.
  Roots.reserve(1024);
  Cache.reserve(256, 1024);
  RegRootAddrs.reserve(NumRegisters);
  if (Opts.GcThreads > 1)
    Pool = std::make_unique<WorkerPool>(Opts.GcThreads);
}

SemispaceCollector::~SemispaceCollector() = default;

Word *SemispaceCollector::allocate(ObjectKind Kind, uint32_t LenWords,
                                   uint32_t PtrMask, uint32_t SiteId) {
  Word Descriptor = header::make(Kind, LenWords, PtrMask);
  Word Meta = makeMeta(SiteId);
  Word *Payload = Active->allocate(Descriptor, Meta);
  if (TILGC_UNLIKELY(!Payload)) {
    collectInternal(objectTotalBytes(Descriptor));
    // Remake the metadata: the birth stamp may have ticked past a KB
    // boundary, and more importantly the collection consumed the old one.
    Meta = makeMeta(SiteId);
    Payload = Active->allocate(Descriptor, Meta);
    assert(Payload && "allocation failed after forced growth");
  }
  accountAllocation(Kind, Descriptor, SiteId);
  std::memset(Payload, 0, static_cast<size_t>(LenWords) * sizeof(Word));
  return Payload;
}

void SemispaceCollector::collect(bool Major) {
  (void)Major; // Semispace collections are always full collections.
  collectInternal(0);
}

void SemispaceCollector::collectInternal(size_t NeedBytes) {
  TimerScope GcScope(Stats.GcTime);
  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  accountStackAtGC();

  // Root scan.
  {
    TimerScope StackScope(Stats.StackTime);
    LastScan = ScanStats();
    bool UseMarkers = Opts.UseStackMarkers;
    StackScanner::scan(*Env.Stack, *Env.Regs, UseMarkers ? &Markers : nullptr,
                       UseMarkers ? &Cache : nullptr, Roots, LastScan,
                       Opts.CompiledScanPlans);
    Stats.FramesScanned += LastScan.FramesScanned;
    Stats.FramesReused += LastScan.FramesReused;
    Stats.SlotsVisited += LastScan.SlotsVisited;
    Stats.PlanWordsScanned += LastScan.PlanWordsScanned;
    gatherRegRoots();
  }

  // Make sure the to-space can absorb the worst case (everything live)
  // plus the allocation that triggered us. The parallel engine needs slack
  // for per-worker block-tail padding on top of that.
  size_t WorstCase = Active->usedBytes() + NeedBytes;
  if (Pool)
    WorstCase += ParallelEvacuator::reserveSlackBytes(Active->usedBytes(),
                                                      Opts.GcThreads);
  if (Inactive->capacityBytes() < WorstCase) {
    if (WorstCase * 2 > Opts.BudgetBytes)
      ++Stats.BudgetOverruns;
    Inactive->reserve(WorstCase);
  }

  // Copy phase. Every object moves, so reused stack roots are processed
  // too — the marker win here is only the avoided re-decoding.
  {
    TimerScope CopyScope(Stats.CopyTime);
    Evacuator::Config C;
    C.From = {Active, nullptr, nullptr};
    C.Dest = Inactive;
    C.Profiler = Env.Profiler;
    C.CountSurvivedFirst = true;
    // Batched root pipeline: whole spans, in the serial engine's order.
    if (Pool) {
      ParallelEvacuator E(C, *Pool);
      E.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
      E.addRootSpan(Roots.ReusedSlotRoots.data(),
                    Roots.ReusedSlotRoots.size());
      E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.run();
      Stats.BytesCopied += E.bytesCopied();
      Stats.ObjectsCopied += E.objectsCopied();
    } else {
      Evacuator E(C);
      E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                        Roots.FreshSlotRoots.size());
      E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                        Roots.ReusedSlotRoots.size());
      E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.drain();
      Stats.BytesCopied += E.bytesCopied();
      Stats.ObjectsCopied += E.objectsCopied();
    }
  }

  sweepDeaths(*Active);

  LiveBytes = Inactive->usedBytes();
  if (LiveBytes > Stats.MaxLiveBytes)
    Stats.MaxLiveBytes = LiveBytes;

  // Swap and resize. Resizing toward r = TargetLiveness means sizing each
  // semispace at live/r; the empty space is resized now, the full one
  // catches up at the next collection.
  std::swap(Active, Inactive);
  size_t Desired = static_cast<size_t>(
      static_cast<double>(LiveBytes) / Opts.TargetLiveness);
  size_t MinSize = LiveBytes + NeedBytes + (4u << 10);
  size_t MaxSize = std::max<size_t>(Opts.BudgetBytes / 2, MinSize);
  Desired = std::clamp(Desired, MinSize, MaxSize);
  Inactive->reserve(Desired);
  // Shrink the live space too (soft limit): a factor below 1 must take
  // effect even though the storage cannot be reallocated under the data.
  Active->setSoftLimitBytes(Desired);
}
