//===- gc/SemispaceCollector.cpp - Cheney semispace collector -------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/SemispaceCollector.h"

#include "gc/Evacuator.h"
#include "gc/HeapVerifier.h"
#include "gc/ParallelEvacuator.h"
#include "support/Fatal.h"
#include "support/Table.h"
#include "support/WorkerPool.h"

#include <algorithm>
#include <cstring>

using namespace tilgc;

SemispaceCollector::SemispaceCollector(const CollectorEnv &Env,
                                       const Options &Opts)
    : Collector(Env), Opts(Opts), Markers(Opts.MarkerPeriod) {
  Markers.setAdaptive(Opts.AdaptiveMarkerPlacement);
  size_t PerSpace =
      std::clamp<size_t>(Opts.BudgetBytes / 2, 16u << 10, 4u << 20);
  SpaceA.reserve(PerSpace);
  SpaceB.reserve(PerSpace);
  // Root-side containers live for the collector's lifetime; reserving here
  // means steady-state collections never grow them.
  Roots.reserve(1024);
  Cache.reserve(256, 1024);
  RegRootAddrs.reserve(NumRegisters);
  if (Opts.GcThreads > 1)
    Pool = std::make_unique<WorkerPool>(Opts.GcThreads);
  noteFootprint();
}

void SemispaceCollector::noteFootprint() {
  size_t F = SpaceA.capacityBytes() + SpaceB.capacityBytes();
  if (F > Stats.MaxFootprintBytes)
    Stats.MaxFootprintBytes = F;
}

SemispaceCollector::~SemispaceCollector() = default;

Word *SemispaceCollector::allocate(ObjectKind Kind, uint32_t LenWords,
                                   uint32_t PtrMask, uint32_t SiteId) {
  Word Descriptor = header::make(Kind, LenWords, PtrMask);
  Word Meta = makeMeta(SiteId);
  Word *Payload = Active->allocate(Descriptor, Meta);
  if (TILGC_UNLIKELY(!Payload)) {
    collectInternal(objectTotalBytes(Descriptor), GcTrigger::SpaceFull);
    // Remake the metadata: the birth stamp may have ticked past a KB
    // boundary, and more importantly the collection consumed the old one.
    Meta = makeMeta(SiteId);
    Payload = Active->allocate(Descriptor, Meta);
    // Terminal rung of the OOM ladder (the collection either grew the heap
    // or was stopped by the hard cap and threw already): a catchable,
    // structured failure in every build mode.
    if (TILGC_UNLIKELY(!Payload))
      throwHeapExhausted(objectTotalBytes(Descriptor),
                         OomStage::RetryAfterMajor);
  }
  accountAllocation(Kind, Descriptor, SiteId);
  std::memset(Payload, 0, static_cast<size_t>(LenWords) * sizeof(Word));
  return Payload;
}

void SemispaceCollector::collect(bool Major) {
  (void)Major; // Semispace collections are always full collections.
  collectInternal(0, GcTrigger::Explicit);
}

void SemispaceCollector::collectInternal(size_t NeedBytes, GcTrigger Trigger) {
  TimerScope GcScope(Stats.GcTime);
  FaultInjector::ScopedGcPhase GcPhase;

  // Inactive has sat idle since the last collection; if it was left
  // poisoned, any clobbered word is a wild write through a stale pointer.
  if (TILGC_UNLIKELY(InactivePoisonValid)) {
    if (const Word *Bad = Inactive->findPoisonViolation())
      fatalError("from-space poison clobbered at %p before semispace GC "
                 "#%llu (holds %llx): wild write through a stale pointer",
                 (const void *)Bad, (unsigned long long)(Stats.NumGC + 1),
                 (unsigned long long)*Bad);
    InactivePoisonValid = false;
  }

  // Worst case the to-space must absorb: everything live plus the
  // allocation that triggered us (plus per-worker block-tail padding
  // slack in parallel mode).
  size_t WorstCase = Active->usedBytes() + NeedBytes;
  if (Pool)
    WorstCase += ParallelEvacuator::reserveSlackBytes(Active->usedBytes(),
                                                      Opts.GcThreads);

  // Hard-cap pre-flight, BEFORE any object moves: if the peak footprint of
  // this collection (to-space grown to the worst case if it needs growing)
  // exceeds the cap, refuse catchably while the heap is still intact and
  // verifiable. Unconditional when a cap is set — the post-collection
  // resize's MinSize floor may legally pre-provision a to-space the cap
  // cannot absorb, and this check is where that breach becomes a throw
  // instead of unbounded ratcheting growth.
  if (TILGC_UNLIKELY(Opts.HardLimitBytes) &&
      Active->capacityBytes() +
              std::max(Inactive->capacityBytes(), WorstCase) >
          Opts.HardLimitBytes)
    throwHeapExhausted(NeedBytes ? NeedBytes : WorstCase,
                       OomStage::HardCapPreflight);

  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  Tel.beginCollection(GcGeneration::Major, Trigger, Stats.NumGC);
  accountStackAtGC();

  // Root scan.
  {
    TimerScope StackScope(Stats.StackTime);
    GcTelemetry::PhaseScope PS(Tel, GcPhase::StackScan);
    LastScan = ScanStats();
    bool UseMarkers = Opts.UseStackMarkers;
    StackScanner::scan(*Env.Stack, *Env.Regs, UseMarkers ? &Markers : nullptr,
                       UseMarkers ? &Cache : nullptr, Roots, LastScan,
                       Opts.CompiledScanPlans);
    Stats.FramesScanned += LastScan.FramesScanned;
    Stats.FramesReused += LastScan.FramesReused;
    Stats.SlotsVisited += LastScan.SlotsVisited;
    Stats.PlanWordsScanned += LastScan.PlanWordsScanned;
    gatherRegRoots();
    scanExtraContexts(Opts.CompiledScanPlans);
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->FramesScanned = LastScan.FramesScanned;
      Ev->FramesReused = LastScan.FramesReused;
    }
  }

  if (Inactive->capacityBytes() < WorstCase) {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Resize);
    if (WorstCase * 2 > Opts.BudgetBytes)
      ++Stats.BudgetOverruns;
    Inactive->reserve(WorstCase);
  }
  noteFootprint();

  // Copy phase. Every object moves, so reused stack roots are processed
  // too — the marker win here is only the avoided re-decoding.
  {
    TimerScope CopyScope(Stats.CopyTime);
    Evacuator::Config C;
    C.From = {Active, nullptr, nullptr};
    C.Dest = Inactive;
    C.Profiler = Env.Profiler;
    C.CountSurvivedFirst = true;
    C.Telemetry = &Tel;
    // Batched root pipeline: whole spans, in the serial engine's order.
    if (Pool) {
      ParallelEvacuator E(C, *Pool);
      {
        GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
        E.addRootSpan(Roots.FreshSlotRoots.data(),
                      Roots.FreshSlotRoots.size());
        E.addRootSpan(Roots.ReusedSlotRoots.data(),
                      Roots.ReusedSlotRoots.size());
        E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      }
      {
        GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
        E.run();
      }
      Stats.BytesCopied += E.bytesCopied();
      Stats.ObjectsCopied += E.objectsCopied();
      Stats.MajorBytesMoved += E.bytesCopied();
      Stats.EvacWorkerFaults += E.workerFaults();
      if (E.workerFaults())
        ++Stats.EvacSerialRecoveries;
      if (GcEvent *Ev = Tel.currentEvent()) {
        Ev->BytesCopied = E.bytesCopied();
        Ev->ObjectsCopied = E.objectsCopied();
        Ev->Workers = Opts.GcThreads;
        Ev->WorkerFaults = E.workerFaults();
        Ev->SerialRecovery = E.workerFaults() > 0;
      }
    } else {
      Evacuator E(C);
      {
        GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
        E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                          Roots.FreshSlotRoots.size());
        E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                          Roots.ReusedSlotRoots.size());
        E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      }
      {
        GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
        E.drain();
      }
      Stats.BytesCopied += E.bytesCopied();
      Stats.ObjectsCopied += E.objectsCopied();
      Stats.MajorBytesMoved += E.bytesCopied();
      if (GcEvent *Ev = Tel.currentEvent()) {
        Ev->BytesCopied = E.bytesCopied();
        Ev->ObjectsCopied = E.objectsCopied();
      }
    }
  }

  sweepDeaths(*Active);

  LiveBytes = Inactive->usedBytes();
  if (LiveBytes > Stats.MaxLiveBytes)
    Stats.MaxLiveBytes = LiveBytes;

  // Swap and resize. Resizing toward r = TargetLiveness means sizing each
  // semispace at live/r; the empty space is resized now, the full one
  // catches up at the next collection.
  {
    GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);
    std::swap(Active, Inactive);
    size_t Desired = static_cast<size_t>(
        static_cast<double>(LiveBytes) / Opts.TargetLiveness);
    size_t MinSize = LiveBytes + NeedBytes + (4u << 10);
    size_t MaxSize = std::max<size_t>(Opts.BudgetBytes / 2, MinSize);
    Desired = std::clamp(Desired, MinSize, MaxSize);
    // Under a hard cap, never reserve an empty space the cap could not
    // absorb — but never below MinSize (this collection already succeeded;
    // the next one's pre-flight throws if MinSize itself breaches the cap).
    if (TILGC_UNLIKELY(Opts.HardLimitBytes)) {
      size_t Room = Opts.HardLimitBytes > Active->capacityBytes()
                        ? Opts.HardLimitBytes - Active->capacityBytes()
                        : 0;
      Desired = std::clamp(Desired, MinSize, std::max(Room, MinSize));
    }
    Inactive->reserve(Desired);
    noteFootprint();
    // Shrink the live space too (soft limit): a factor below 1 must take
    // effect even though the storage cannot be reallocated under the data.
    Active->setSoftLimitBytes(Desired);

    if (TILGC_UNLIKELY(shouldPoison())) {
      Inactive->poisonFreeSpace();
      InactivePoisonValid = true;
    }
  }
  maybeVerifyHeap();
  Tel.endCollection();
}

bool SemispaceCollector::shouldPoison() const {
  if (Opts.VerifyLevel >= 3)
    return true;
  return TILGC_UNLIKELY(FaultInjector::enabled()) &&
         FaultInjector::global().shouldFire(FaultPoint::FromSpacePoison);
}

bool SemispaceCollector::runVerifier(std::string &Error) const {
  HeapVerifier V;
  V.addSpace(Active, "active");
  V.setPoisonPattern(Space::PoisonPattern);
  return V.verifyHeap(Error);
}

void SemispaceCollector::maybeVerifyHeap() const {
  if (TILGC_LIKELY(Opts.VerifyLevel < 1))
    return;
  std::string Error;
  if (!runVerifier(Error))
    fatalError("heap verification failed after semispace GC #%llu: %s",
               (unsigned long long)Stats.NumGC, Error.c_str());
}

void SemispaceCollector::appendHeapState(std::string &Out) const {
  Out += formatString("semispace collector '%s': budget %zu bytes, ",
                      Opts.Name.empty() ? "<unnamed>" : Opts.Name.c_str(),
                      Opts.BudgetBytes);
  Out += Opts.HardLimitBytes
             ? formatString("hard limit %zu bytes\n", Opts.HardLimitBytes)
             : std::string("no hard limit\n");
  Out += formatString("  %-12s %10zu / %10zu bytes used\n", "active",
                      Active->usedBytes(), Active->capacityBytes());
  Out += formatString("  %-12s %10zu / %10zu bytes used\n", "inactive",
                      Inactive->usedBytes(), Inactive->capacityBytes());
}

void SemispaceCollector::forEachLiveObject(
    const std::function<void(Word *, Word)> &Fn) const {
  Active->walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
    if (!Forwarded)
      Fn(Payload, Descriptor);
  });
}
