//===- gc/GenerationalCollector.cpp - Two-generation collector ------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/GenerationalCollector.h"

#include "gc/Evacuator.h"
#include "gc/HeapVerifier.h"
#include "gc/ParallelEvacuator.h"
#include "support/WorkerPool.h"

#include <cstdio>

#include <algorithm>
#include <cstring>

using namespace tilgc;

GenerationalCollector::GenerationalCollector(const CollectorEnv &Env,
                                             const Options &Opts)
    : Collector(Env), Opts(Opts), Markers(Opts.MarkerPeriod) {
  Markers.setAdaptive(Opts.AdaptiveMarkerPlacement);
  size_t NurserySize = std::clamp<size_t>(Opts.BudgetBytes / 4, 8u << 10,
                                          Opts.NurseryLimitBytes);
  NurseryA.reserve(NurserySize);
  if (AgedTenuring())
    NurseryB.reserve(NurserySize);

  size_t NurseryFoot = NurserySize * (AgedTenuring() ? 2 : 1);
  size_t TenuredSize =
      Opts.BudgetBytes > NurseryFoot ? (Opts.BudgetBytes - NurseryFoot) / 2 : 0;
  TenuredSize = std::max(TenuredSize, NurserySize + (16u << 10));
  TenuredA.reserve(TenuredSize);
  TenuredB.reserve(TenuredSize);

  for (const PretenureDecision &Dec : Opts.Pretenure) {
    if (Dec.SiteId >= PretenureFlag.size())
      PretenureFlag.resize(Dec.SiteId + 1, 0);
    PretenureFlag[Dec.SiteId] = Dec.EliminateScan ? 2 : 1;
  }

  if (Opts.Barrier == BarrierKind::CardMarking)
    Cards.attach(*TenuredFrom);
  if (Opts.GcThreads > 1)
    Pool = std::make_unique<WorkerPool>(Opts.GcThreads);

  // Root-side containers live for the collector's lifetime; reserving here
  // means steady-state collections never grow them. (SSB entries between
  // collections are workload-dependent; 4096 covers the bench workloads'
  // common case and the vector grows past it once, keeping the capacity.)
  Roots.reserve(1024);
  Cache.reserve(256, 1024);
  RegRootAddrs.reserve(NumRegisters);
  SSB.reserve(4096);
  RootBatch.reserve(1024);
  MinorCrossGen.reserve(256);
}

GenerationalCollector::~GenerationalCollector() = default;

size_t GenerationalCollector::footprintBytes() const {
  return NurseryFrom->capacityBytes() * (AgedTenuring() ? 2 : 1) +
         TenuredFrom->capacityBytes() + TenuredTo->capacityBytes() +
         LOS.liveBytes();
}

Word *GenerationalCollector::allocate(ObjectKind Kind, uint32_t LenWords,
                                      uint32_t PtrMask, uint32_t SiteId) {
  Word Descriptor = header::make(Kind, LenWords, PtrMask);
  uint64_t Total = objectTotalBytes(Descriptor);
  size_t PayloadBytes = static_cast<size_t>(LenWords) * sizeof(Word);

  // Large arrays live in the mark-sweep region (paper §2.1). Collect
  // *before* allocating: a collection after the fact would reclaim the
  // still-unreachable newborn.
  if (Kind != ObjectKind::Record && Total >= Opts.LargeObjectThresholdBytes) {
    if (footprintBytes() + Total > Opts.BudgetBytes &&
        LOSAllocSinceGC + Total >= Opts.BudgetBytes / 8) {
      TimerScope Gc(Stats.GcTime);
      doMajor(0);
    }
    Word *Payload = LOS.allocate(Descriptor, makeMeta(SiteId));
    NewLargeObjects.push_back(Payload);
    LOSAllocSinceGC += Total;
    accountAllocation(Kind, Descriptor, SiteId);
    std::memset(Payload, 0, PayloadBytes);
    return Payload;
  }

  // Pretenured sites allocate directly into the tenured generation (§6).
  if (SiteId < PretenureFlag.size() && PretenureFlag[SiteId]) {
    Word *Payload = TenuredFrom->allocate(Descriptor, makeMeta(SiteId));
    if (TILGC_UNLIKELY(!Payload)) {
      {
        TimerScope Gc(Stats.GcTime);
        doMajor(Total);
      }
      Payload = TenuredFrom->allocate(Descriptor, makeMeta(SiteId));
      assert(Payload && "tenured generation full after major collection");
    }
    notePretenuredRun(Payload, Descriptor, PretenureFlag[SiteId] == 2);
    Stats.PretenuredBytes += Total;
    accountAllocation(Kind, Descriptor, SiteId);
    std::memset(Payload, 0, PayloadBytes);
    return Payload;
  }

  // Everything else: the nursery.
  Word *Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
  if (TILGC_UNLIKELY(!Payload)) {
    {
      TimerScope Gc(Stats.GcTime);
      doMinor(0);
    }
    Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
    if (TILGC_UNLIKELY(!Payload)) {
      // Aged tenuring can leave the nursery nearly full of young
      // survivors; a major collection promotes them all.
      assert(AgedTenuring() && "nursery still full after a minor GC");
      {
        TimerScope Gc(Stats.GcTime);
        doMajor(0);
      }
      Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
      assert(Payload && "object exceeds nursery capacity");
    }
  }
  accountAllocation(Kind, Descriptor, SiteId);
  std::memset(Payload, 0, PayloadBytes);
  return Payload;
}

void GenerationalCollector::writeBarrier(Word *Slot) {
  switch (Opts.Barrier) {
  case BarrierKind::SequentialStoreBuffer:
    SSB.record(Slot);
    return;
  case BarrierKind::FilteredStoreBuffer: {
    // Conditional barrier: record only genuine old->young stores. Costs
    // two range tests per pointer store; collections see few entries.
    if (inNursery(Slot))
      return;
    Word Bits = *Slot;
    if (!Bits || !inNursery(reinterpret_cast<Word *>(Bits)))
      return;
    SSB.record(Slot);
    return;
  }
  case BarrierKind::CardMarking:
    // Young-object slots need no remembering; tenured slots dirty a card;
    // large-object slots go to a small side buffer.
    if (inNursery(Slot))
      return;
    if (TenuredFrom->contains(Slot)) {
      Cards.mark(Slot);
      return;
    }
    LOSDirtySlots.push_back(Slot);
    return;
  }
  TILGC_UNREACHABLE("bad barrier kind");
}

void GenerationalCollector::collect(bool Major) {
  TimerScope Gc(Stats.GcTime);
  if (Major)
    doMajor(0);
  else
    doMinor(0);
}

void GenerationalCollector::scanStackForRoots() {
  TimerScope T(Stats.StackTime);
  LastScan = ScanStats();
  bool UseMarkers = Opts.UseStackMarkers;
  StackScanner::scan(*Env.Stack, *Env.Regs, UseMarkers ? &Markers : nullptr,
                     UseMarkers ? &Cache : nullptr, Roots, LastScan,
                     Opts.CompiledScanPlans);
  Stats.FramesScanned += LastScan.FramesScanned;
  Stats.FramesReused += LastScan.FramesReused;
  Stats.SlotsVisited += LastScan.SlotsVisited;
  Stats.PlanWordsScanned += LastScan.PlanWordsScanned;
  gatherRegRoots();
}

void GenerationalCollector::notePretenuredRun(Word *Payload, Word Descriptor,
                                              bool NoScan) {
  Word *Begin = Payload - HeaderWords;
  Word *End = Begin + objectTotalWords(Descriptor);
  if (!Runs.empty() && Runs.back().End == Begin &&
      Runs.back().NoScan == NoScan) {
    Runs.back().End = End;
    return;
  }
  Runs.push_back(Run{Begin, End, NoScan});
}

template <typename SlotFn>
void GenerationalCollector::forEachOldToYoungRoot(SlotFn Fn) {
  // Write-barrier output.
  if (Opts.Barrier != BarrierKind::CardMarking) {
    for (Word *Slot : SSB.entries()) {
      // Slots inside young objects are covered by the copy scan itself;
      // the paper's collector filters them the same way.
      if (inNursery(Slot))
        continue;
      Fn(Slot);
      ++Stats.SSBEntriesProcessed;
    }
  } else {
    Cards.forEachDirtyField(*TenuredFrom, [&](Word *Field) {
      Fn(Field);
      ++Stats.SSBEntriesProcessed;
    });
    for (Word *Slot : LOSDirtySlots) {
      Fn(Slot);
      ++Stats.SSBEntriesProcessed;
    }
  }

  // The pretenured region (§6): "we remember the area of the older
  // generation that has been directly allocated into and scan this region
  // ... a win over copying since copying objects is slower than only
  // scanning them." §7.2 scan-eliminated runs are skipped outright.
  for (const Run &R : Runs) {
    uint64_t Bytes =
        static_cast<uint64_t>(R.End - R.Begin) * sizeof(Word);
    if (R.NoScan) {
      Stats.PretenuredScanSkippedBytes += Bytes;
      continue;
    }
    Stats.PretenuredScannedBytes += Bytes;
    Word *P = R.Begin;
    while (P < R.End) {
      Word *Payload = P + HeaderWords;
      Word Descriptor = descriptorOf(Payload);
      forEachPointerField(Payload, [&](Word *Field) { Fn(Field); });
      P += objectTotalWords(Descriptor);
    }
  }

  // Large objects allocated since the last collection: their initializing
  // stores bypassed the barrier, so scan them like the pretenured region.
  for (Word *Payload : NewLargeObjects)
    forEachPointerField(Payload, [&](Word *Field) { Fn(Field); });
}

void GenerationalCollector::doMinor(size_t NeedTenuredBytes) {
  // The tenured generation must be able to absorb every survivor — plus,
  // in parallel mode, the block-tail padding the handout can waste.
  size_t MinorNeed = NurseryFrom->usedBytes() + NeedTenuredBytes;
  if (Pool)
    MinorNeed += ParallelEvacuator::reserveSlackBytes(
        NurseryFrom->usedBytes(), Opts.GcThreads);
  if (TenuredFrom->freeBytes() < MinorNeed) {
    doMajor(NeedTenuredBytes);
    return;
  }

  ++Stats.NumGC;
  accountStackAtGC();
  scanStackForRoots();

  Evacuator::Config C;
  C.From = {NurseryFrom, nullptr, nullptr};
  C.Dest = TenuredFrom;
  if (AgedTenuring()) {
    C.DestYoung = NurseryTo;
    C.PromoteAgeThreshold = Opts.PromoteAgeThreshold;
    MinorCrossGen.clear();
    C.CrossGenOut = &MinorCrossGen;
  }
  C.LOS = &LOS;
  C.TraceLOS = false;
  C.Profiler = Env.Profiler;
  C.CountSurvivedFirst = true;

  // Batched root pipeline: gather the heap-side roots (barrier output,
  // pretenured regions, new large objects) into one contiguous span, then
  // hand whole spans to the engine in the serial order — stack, registers,
  // the §5 reused-frame policy, promotion-created cross-generation slots,
  // heap batch. Every gathered slot address is stable during a minor
  // collection (the slots live outside the nursery), so gather-then-forward
  // is equivalent to forwarding during enumeration.
  {
    TimerScope T(Stats.StackTime); // Root gathering.
    RootBatch.clear();
    forEachOldToYoungRoot([&](Word *Slot) { RootBatch.push_back(Slot); });
  }

  // Promote-all + markers: roots in unchanged frames were redirected to
  // the tenured generation by the previous collection and cannot point
  // into the nursery — skip them entirely (the heart of §5). Under aged
  // tenuring young survivors keep moving, so they must be processed.
  bool ProcessReused = !Opts.UseStackMarkers || AgedTenuring();
  if (!ProcessReused && TILGC_UNLIKELY(Opts.VerifyReuseInvariant)) {
    // Debug mode: check the invariant behind the skip — a root in an
    // unchanged frame can never point into the nursery. (Off by default:
    // the check is O(reused roots), the very cost §5 eliminates.)
    for (Word *Slot : Roots.ReusedSlotRoots) {
      assert((!*Slot || !inNursery(reinterpret_cast<Word *>(*Slot))) &&
             "reused stack root points into the nursery");
      (void)Slot;
    }
  }

  if (Pool) {
    ParallelEvacuator E(C, *Pool);
    {
      TimerScope T(Stats.StackTime); // Root hand-off.
      E.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
      E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      if (ProcessReused)
        E.addRootSpan(Roots.ReusedSlotRoots.data(),
                      Roots.ReusedSlotRoots.size());
      E.addRootSpan(CrossGenSlots.data(), CrossGenSlots.size());
      E.addRootSpan(RootBatch.data(), RootBatch.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      E.run();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
  } else {
    Evacuator E(C);
    {
      TimerScope T(Stats.StackTime); // Root processing.
      E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                        Roots.FreshSlotRoots.size());
      E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      if (ProcessReused)
        E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                          Roots.ReusedSlotRoots.size());
      E.forwardRootSpan(CrossGenSlots.data(), CrossGenSlots.size());
      E.forwardRootSpan(RootBatch.data(), RootBatch.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      E.drain();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
  }

  if (AgedTenuring()) {
    // Keep only real heap slots: stack slots and registers are rescanned
    // from scratch every collection and their storage gets reused.
    CrossGenSlots.clear();
    for (Word *Slot : MinorCrossGen)
      if (!Env.Stack->ownsSlot(Slot) && !Env.Regs->ownsSlot(Slot))
        CrossGenSlots.push_back(Slot);
  }

  sweepDeaths(*NurseryFrom);
  NurseryFrom->reset();
  if (AgedTenuring())
    std::swap(NurseryFrom, NurseryTo);

  SSB.clear();
  Cards.clear();
  LOSDirtySlots.clear();
  Runs.clear();
  NewLargeObjects.clear();

  LiveBytes = TenuredFrom->usedBytes() + LOS.liveBytes() +
              (AgedTenuring() ? NurseryFrom->usedBytes() : 0);
  // (MaxLiveBytes is only sampled after *full* collections: after a minor
  // one the tenured generation still holds promoted-but-dead data.)

  maybeVerifyHeap("minor");

  // Tenured pressure: if the next nursery-load might not fit, collect the
  // old generation now.
  if (TenuredFrom->freeBytes() < NurseryFrom->capacityBytes())
    doMajor(0);
}

void GenerationalCollector::maybeVerifyHeap(const char *Phase) const {
  if (TILGC_LIKELY(!Opts.VerifyHeapAfterGC))
    return;
  HeapVerifier V;
  V.addSpace(TenuredFrom, "tenured");
  V.addSpace(NurseryFrom, "nursery");
  if (AgedTenuring())
    V.addSpace(NurseryTo, "nursery-to");
  V.setLOS(&LOS);
  std::string Error;
  if (!V.verifyHeap(Error)) {
    std::fprintf(stderr, "heap verification failed after %s GC #%llu: %s\n",
                 Phase, (unsigned long long)Stats.NumGC, Error.c_str());
    std::abort();
  }
}

void GenerationalCollector::doMajor(size_t NeedTenuredBytes) {
  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  accountStackAtGC();
  scanStackForRoots();

  size_t Incoming = TenuredFrom->usedBytes() + NurseryFrom->usedBytes() +
                    (AgedTenuring() ? NurseryTo->usedBytes() : 0);
  size_t Reserve = Incoming + NeedTenuredBytes;
  if (Pool)
    Reserve += ParallelEvacuator::reserveSlackBytes(Incoming, Opts.GcThreads);
  if (TenuredTo->capacityBytes() < Reserve)
    TenuredTo->reserve(Reserve);

  Evacuator::Config C;
  C.From = {NurseryFrom, AgedTenuring() ? NurseryTo : nullptr, TenuredFrom};
  C.Dest = TenuredTo;
  C.LOS = &LOS;
  C.TraceLOS = true;
  C.Profiler = Env.Profiler;
  C.CountSurvivedFirst = true;

  // Everything moves in a major collection: reused roots are processed,
  // the saving is only the avoided re-decoding of unchanged frames.
  if (Pool) {
    ParallelEvacuator E(C, *Pool);
    {
      TimerScope T(Stats.StackTime);
      E.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
      E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.addRootSpan(Roots.ReusedSlotRoots.data(),
                    Roots.ReusedSlotRoots.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      E.run();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
  } else {
    Evacuator E(C);
    {
      TimerScope T(Stats.StackTime);
      E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                        Roots.FreshSlotRoots.size());
      E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                        Roots.ReusedSlotRoots.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      E.drain();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
  }

  // Sweep the large-object space and account deaths.
  uint64_t NowKB = allocStampKB();
  LOS.sweep([&](Word *Payload, Word Descriptor) {
    (void)Descriptor;
    if (Env.Profiler) {
      Word Meta = metaOf(Payload);
      Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
    }
  });
  sweepDeaths(*NurseryFrom);
  if (AgedTenuring())
    sweepDeaths(*NurseryTo);
  sweepDeaths(*TenuredFrom);

  NurseryFrom->reset();
  if (AgedTenuring())
    NurseryTo->reset();
  SSB.clear();
  LOSDirtySlots.clear();
  Runs.clear();
  NewLargeObjects.clear();
  CrossGenSlots.clear(); // A major promotes everything: no old->young left.

  std::swap(TenuredFrom, TenuredTo);
  LiveBytes = TenuredFrom->usedBytes() + LOS.liveBytes();
  if (LiveBytes > Stats.MaxLiveBytes)
    Stats.MaxLiveBytes = LiveBytes;

  // Resize the now-empty to-space toward the target liveness ratio within
  // the memory budget (the live space's capacity catches up next major).
  size_t NurseryFoot =
      NurseryFrom->capacityBytes() * (AgedTenuring() ? 2 : 1);
  size_t Desired = static_cast<size_t>(static_cast<double>(LiveBytes) /
                                       Opts.TenuredTargetLiveness);
  size_t MinSize = TenuredFrom->usedBytes() + NurseryFrom->capacityBytes() +
                   NeedTenuredBytes + (16u << 10);
  size_t MaxSize = MinSize;
  size_t NonTenured = NurseryFoot + LOS.liveBytes();
  if (Opts.BudgetBytes > NonTenured + 2 * MinSize)
    MaxSize = (Opts.BudgetBytes - NonTenured) / 2;
  else
    ++Stats.BudgetOverruns;
  Desired = std::clamp(Desired, MinSize, MaxSize);
  TenuredTo->reserve(Desired);

  if (Opts.Barrier == BarrierKind::CardMarking)
    Cards.attach(*TenuredFrom);
  LOSAllocSinceGC = 0;
  maybeVerifyHeap("major");
}
