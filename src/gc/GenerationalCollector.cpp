//===- gc/GenerationalCollector.cpp - Two-generation collector ------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/GenerationalCollector.h"

#include "gc/Evacuator.h"
#include "gc/HeapVerifier.h"
#include "gc/MarkCompact.h"
#include "gc/ParallelEvacuator.h"
#include "support/Fatal.h"
#include "support/Table.h"
#include "support/WorkerPool.h"

#include <cstdio>

#include <algorithm>
#include <cstring>
#include <unordered_set>

using namespace tilgc;

GenerationalCollector::GenerationalCollector(const CollectorEnv &Env,
                                             const Options &Opts)
    : Collector(Env), Opts(Opts), Markers(Opts.MarkerPeriod) {
  Markers.setAdaptive(Opts.AdaptiveMarkerPlacement);
  size_t NurserySize = std::clamp<size_t>(Opts.BudgetBytes / 4, 8u << 10,
                                          Opts.NurseryLimitBytes);
  NurseryA.reserve(NurserySize);
  if (AgedTenuring())
    NurseryB.reserve(NurserySize);

  size_t NurseryFoot = NurserySize * (AgedTenuring() ? 2 : 1);
  size_t TenuredSize =
      Opts.BudgetBytes > NurseryFoot ? (Opts.BudgetBytes - NurseryFoot) / 2 : 0;
  TenuredSize = std::max(TenuredSize, NurserySize + (16u << 10));
  TenuredA.reserve(TenuredSize);
  if (Opts.MajorGc == MajorGcKind::Semispace) {
    TenuredB.reserve(TenuredSize);
  } else {
    // Mark-compact keeps a single standing tenured space: TenuredB stays
    // unreserved (capacity 0) until a growth fallback transiently needs it,
    // and the region overlay binds to the live space from the start.
    Regions.attach(TenuredA);
  }

  for (const PretenureDecision &Dec : Opts.Pretenure) {
    if (Dec.SiteId >= PretenureFlag.size())
      PretenureFlag.resize(Dec.SiteId + 1, 0);
    PretenureFlag[Dec.SiteId] = Dec.EliminateScan ? 2 : 1;
  }

  // Pretenuring audit: each PretenureFlag flip is reported with the
  // promotion-rate evidence behind it (observers register via CollectorEnv
  // before construction, so they see these).
  if (TILGC_UNLIKELY(Tel.armed())) {
    for (const PretenureDecision &Dec : Opts.Pretenure) {
      PretenureAudit A;
      A.SiteId = Dec.SiteId;
      A.Pretenured = true;
      A.EliminateScan = Dec.EliminateScan;
      A.OldFraction = Dec.OldFraction;
      A.Threshold = Dec.OldCutoff;
      A.AllocBytes = Dec.AllocBytes;
      A.AllocCount = Dec.AllocCount;
      A.SurvivedFirstGC = Dec.SurvivedFirstCount;
      Tel.notePretenureDecision(A);
    }
  }

  if (usesCardBarrier()) {
    // Hybrid attaches from construction too: promotions recorded while the
    // barrier is still in SSB mode must be resolvable once it degrades.
    Cards.attach(*TenuredFrom);
    CrossMap.attach(*TenuredFrom);
    recomputeHybridThreshold();
  }
  if (Opts.GcThreads > 1)
    Pool = std::make_unique<WorkerPool>(Opts.GcThreads);
  if (Opts.GcDeadlineMicros)
    // Bark diagnostics read the in-flight phase from a relaxed atomic the
    // telemetry plane only publishes when someone is watching.
    Tel.enableLivePhase();

  // Root-side containers live for the collector's lifetime; reserving here
  // means steady-state collections never grow them. (SSB entries between
  // collections are workload-dependent; 4096 covers the bench workloads'
  // common case and the vector grows past it once, keeping the capacity.)
  Roots.reserve(1024);
  Cache.reserve(256, 1024);
  RegRootAddrs.reserve(NumRegisters);
  SSB.reserve(4096);
  RootBatch.reserve(1024);
  MinorCrossGen.reserve(256);
  noteFootprint();
}

GenerationalCollector::~GenerationalCollector() = default;

size_t GenerationalCollector::footprintBytes() const {
  return NurseryFrom->capacityBytes() * (AgedTenuring() ? 2 : 1) +
         TenuredFrom->capacityBytes() + TenuredTo->capacityBytes() +
         LOS.liveBytes();
}

void GenerationalCollector::noteFootprint() {
  size_t F = footprintBytes();
  if (F > Stats.MaxFootprintBytes)
    Stats.MaxFootprintBytes = F;
}

Word *GenerationalCollector::allocate(ObjectKind Kind, uint32_t LenWords,
                                      uint32_t PtrMask, uint32_t SiteId) {
  // Pause-budget mode: with a cycle live every allocation passes through
  // here (the inline fast path is disabled), making allocation the slice
  // safepoint — exactly the paper's safe-point discipline, reused.
  if (TILGC_UNLIKELY(IncCycleLive))
    incrementalTick();

  Word Descriptor = header::make(Kind, LenWords, PtrMask);
  uint64_t Total = objectTotalBytes(Descriptor);
  size_t PayloadBytes = static_cast<size_t>(LenWords) * sizeof(Word);

  // Large arrays live in the mark-sweep region (paper §2.1). Collect
  // *before* allocating: a collection after the fact would reclaim the
  // still-unreachable newborn.
  if (Kind != ObjectKind::Record && Total >= Opts.LargeObjectThresholdBytes) {
    bool Collected = false;
    if (footprintBytes() + Total > Opts.BudgetBytes &&
        LOSAllocSinceGC + Total >= Opts.BudgetBytes / 8) {
      TimerScope Gc(Stats.GcTime);
      if (TILGC_UNLIKELY(incrementalModeActive()) && !IncCycleLive &&
          !Opts.UseStackMarkers) {
        // Budget mode: soft LOS pressure opens a cycle instead of paying a
        // stop-the-world major here; the reclaim arrives at the cycle's
        // finish (the footprint may overshoot the soft budget until then —
        // the same trade the paper's soft k*Min budget already makes).
        // Marker configurations skip this site: snapshotting roots here
        // needs a mid-epoch stack scan, which only a markerless scan can
        // do without breaking the §5 reuse invariant.
        startIncrementalCycle(/*RescanRoots=*/true);
        IncTrigger = GcTrigger::LargeObjectPressure;
      } else if (!IncCycleLive) {
        doMajor(0, GcTrigger::LargeObjectPressure);
        Collected = true;
      }
      // A live cycle is already collecting toward this pressure: let the
      // slices run rather than forcing the finish for a soft threshold.
    }
    // LOS backing storage comes straight from the host, so the hard cap is
    // enforced here rather than by a failing space. One major collection
    // may free dead large objects before the ladder gives up.
    if (TILGC_UNLIKELY(Opts.HardLimitBytes &&
                       footprintBytes() + Total > Opts.HardLimitBytes)) {
      if (!Collected) {
        TimerScope Gc(Stats.GcTime);
        doMajor(0, GcTrigger::LargeObjectPressure);
      }
      if (footprintBytes() + Total > Opts.HardLimitBytes)
        throwHeapExhausted(Total, OomStage::RetryAfterMajor);
    }
    Word *Payload = LOS.allocate(Descriptor, makeMeta(SiteId));
    NewLargeObjects.push_back(Payload);
    // Large objects born during an incremental cycle are allocated black:
    // they postdate the snapshot, so the finish seeds them rather than
    // relying on a mark bit the slices never set.
    if (TILGC_UNLIKELY(IncCycleLive)) {
      IncNewLOS.push_back(Payload);
      IncLosBytesSinceSlice += Total;
    }
    LOSAllocSinceGC += Total;
    noteFootprint();
    accountAllocation(Kind, Descriptor, SiteId);
    std::memset(Payload, 0, PayloadBytes);
    return Payload;
  }

  // Pretenured sites allocate directly into the tenured generation (§6).
  if (SiteId < PretenureFlag.size() && PretenureFlag[SiteId]) {
    Word *Payload = TenuredFrom->allocate(Descriptor, makeMeta(SiteId));
    if (TILGC_UNLIKELY(!Payload)) {
      {
        TimerScope Gc(Stats.GcTime);
        doMajor(Total, GcTrigger::PretenuredSiteFull);
      }
      Payload = TenuredFrom->allocate(Descriptor, makeMeta(SiteId));
      if (TILGC_UNLIKELY(!Payload))
        throwHeapExhausted(Total, OomStage::RetryAfterMajor);
    }
    notePretenuredRun(Payload, Descriptor, PretenureFlag[SiteId] == 2);
    if (usesCardBarrier()) {
      CrossMap.recordObject(Payload - HeaderWords,
                            objectTotalWords(Descriptor));
      ++Stats.CrossingMapUpdates;
    }
    Stats.PretenuredBytes += Total;
    accountAllocation(Kind, Descriptor, SiteId);
    std::memset(Payload, 0, PayloadBytes);
    return Payload;
  }

  // Everything else: the nursery, behind the OOM escalation ladder —
  // retry after a minor, retry after a major (which reserves tenured room
  // and may grow under the hard cap), then a tenured-fallback last resort,
  // then a catchable HeapExhausted. Active in every build mode.
  Word *Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
  if (TILGC_UNLIKELY(!Payload)) {
    {
      TimerScope Gc(Stats.GcTime);
      doMinor(0, GcTrigger::NurseryFull);
    }
    Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
    if (TILGC_UNLIKELY(!Payload)) {
      // Aged tenuring can leave the nursery nearly full of young
      // survivors; a major collection promotes them all. doMajor(Total)
      // also reserves tenured room for the object in case it never fits
      // the nursery at all.
      {
        TimerScope Gc(Stats.GcTime);
        doMajor(Total, GcTrigger::OomLadder);
      }
      Payload = NurseryFrom->allocate(Descriptor, makeMeta(SiteId));
      if (TILGC_UNLIKELY(!Payload)) {
        // The object exceeds even an empty nursery: fall back to the
        // tenured generation, registered like a pretenured run so its
        // initializing stores are scanned at the next minor collection.
        Payload = TenuredFrom->allocate(Descriptor, makeMeta(SiteId));
        if (TILGC_UNLIKELY(!Payload))
          throwHeapExhausted(Total, OomStage::TenuredFallback);
        notePretenuredRun(Payload, Descriptor, /*NoScan=*/false);
        if (usesCardBarrier()) {
          CrossMap.recordObject(Payload - HeaderWords,
                                objectTotalWords(Descriptor));
          ++Stats.CrossingMapUpdates;
        }
      }
    }
  }
  accountAllocation(Kind, Descriptor, SiteId);
  std::memset(Payload, 0, PayloadBytes);
  return Payload;
}

void GenerationalCollector::writeBarrier(Word *Slot) {
  switch (Opts.Barrier) {
  case BarrierKind::SequentialStoreBuffer:
    SSB.record(Slot);
    return;
  case BarrierKind::FilteredStoreBuffer: {
    // Conditional barrier: record only genuine old->young stores. Costs
    // two range tests per pointer store; collections see few entries.
    if (inNursery(Slot))
      return;
    Word Bits = *Slot;
    if (!Bits || !inNursery(reinterpret_cast<Word *>(Bits)))
      return;
    SSB.record(Slot);
    return;
  }
  case BarrierKind::CardMarking:
    // Young-object slots need no remembering; tenured slots dirty a card;
    // large-object slots go to a small side buffer.
    if (inNursery(Slot))
      return;
    if (TenuredFrom->contains(Slot)) {
      Cards.mark(Slot);
      return;
    }
    LOSDirtySlots.push_back(Slot);
    return;
  case BarrierKind::Hybrid:
    if (TILGC_LIKELY(!HybridCardMode)) {
      // SSB mode: record unconditionally (identical cost and totals to the
      // plain SSB), then test the flood heuristic. The comparison against
      // the card capacity is the insight: once the pending SSB holds more
      // entries than the dirtiest possible card table, precise slots have
      // stopped paying for themselves.
      SSB.record(Slot);
      if (TILGC_UNLIKELY(SSB.size() >= HybridFloodEntries))
        hybridSwitchToCards();
      return;
    }
    if (inNursery(Slot))
      return;
    if (TenuredFrom->contains(Slot)) {
      Cards.mark(Slot);
      return;
    }
    LOSDirtySlots.push_back(Slot);
    return;
  }
  TILGC_UNREACHABLE("bad barrier kind");
}

void GenerationalCollector::hybridSwitchToCards() {
  // Replay the pending SSB into the card/side-buffer representation, then
  // flip modes for good. Young-object slots are dropped (the minor scan
  // covers them); the replay preserves exactly the information the card
  // branch of the barrier would have captured.
  for (Word *Slot : SSB.entries()) {
    if (inNursery(Slot))
      continue;
    if (TenuredFrom->contains(Slot)) {
      Cards.mark(Slot);
      continue;
    }
    LOSDirtySlots.push_back(Slot);
  }
  SSB.clear();
  // The barrier never records into the SSB again, so from here on every
  // collection clears an empty buffer. Without the latch each of those
  // clears counts as a low-fill clear and the shrink policy halves the
  // flood-sized capacity step by step — each halving allocating a fresh
  // half-size backing next to the old one, a transient 1.5x-flood spike
  // repeated every ShrinkAfterClears collections, all for a buffer that is
  // permanently idle. Latch the policy off instead.
  SSB.disableShrink();
  HybridCardMode = true;
  HybridSwitchedSinceGC = true;
  ++Stats.HybridSwitches;
  if (Stats.HybridSwitchEpoch == 0)
    Stats.HybridSwitchEpoch = Stats.NumGC + 1;
}

void GenerationalCollector::collect(bool Major) {
  TimerScope Gc(Stats.GcTime);
  if (Major)
    doMajor(0, GcTrigger::Explicit);
  else
    doMinor(0, GcTrigger::Explicit);
}

void GenerationalCollector::scanStackForRoots() {
  TimerScope T(Stats.StackTime);
  GcTelemetry::PhaseScope PS(Tel, GcPhase::StackScan);
  LastScan = ScanStats();
  bool UseMarkers = Opts.UseStackMarkers;
  StackScanner::scan(*Env.Stack, *Env.Regs, UseMarkers ? &Markers : nullptr,
                     UseMarkers ? &Cache : nullptr, Roots, LastScan,
                     Opts.CompiledScanPlans);
  Stats.FramesScanned += LastScan.FramesScanned;
  Stats.FramesReused += LastScan.FramesReused;
  Stats.SlotsVisited += LastScan.SlotsVisited;
  Stats.PlanWordsScanned += LastScan.PlanWordsScanned;
  gatherRegRoots();
  scanExtraContexts(Opts.CompiledScanPlans);
  if (GcEvent *Ev = Tel.currentEvent()) {
    Ev->FramesScanned = LastScan.FramesScanned;
    Ev->FramesReused = LastScan.FramesReused;
  }
}

void GenerationalCollector::notePretenuredRun(Word *Payload, Word Descriptor,
                                              bool NoScan) {
  Word *Begin = Payload - HeaderWords;
  Word *End = Begin + objectTotalWords(Descriptor);
  if (!Runs.empty() && Runs.back().End == Begin &&
      Runs.back().NoScan == NoScan) {
    Runs.back().End = End;
    return;
  }
  Runs.push_back(Run{Begin, End, NoScan});
}

/// All dirty cards → \p Fn, in card order. When a worker pool exists and
/// the dirty count justifies the fork/join, the card range is partitioned
/// into per-worker stripes scanned concurrently into private scratch
/// vectors, which are then drained serially in stripe order — the same
/// field sequence a serial full scan emits (a dirty run split at a stripe
/// boundary re-walks the straddling object, but scanDirtyCardRange's range
/// checks keep each field in exactly one stripe). Fn itself always runs on
/// the controlling thread.
template <typename SlotFn>
void GenerationalCollector::sweepDirtyCards(SlotFn Fn) {
  size_t NumCards = Cards.numCards();
  uint64_t CardsScanned = 0, SlotsVisited = 0;
  bool Faulted = false;
  if (Pool && Cards.numDirtyCards() >= ParallelSweepMinDirtyCards) {
    unsigned N = Pool->numWorkers();
    SweepScratch.resize(N);
    std::vector<uint64_t> WCards(N, 0), WSlots(N, 0);
    std::vector<uint8_t> WFault(N, 0);
    Pool->runOnAll([&](unsigned I) {
      SweepScratch[I].clear();
      size_t Begin = NumCards * I / N;
      size_t End = NumCards * (I + 1) / N;
      // Exceptions must not cross the pool boundary (runOnAll joins, it
      // does not transport); a faulted stripe is flagged and the sweep
      // degrades to the full-walk fallback below.
      try {
        Cards.scanDirtyCardRange(*TenuredFrom, CrossMap, Begin, End,
                                 WCards[I], WSlots[I], [&](Word *F) {
                                   SweepScratch[I].push_back(F);
                                 });
      } catch (const CardSweepFault &) {
        WFault[I] = 1;
      }
    });
    for (unsigned I = 0; I < N; ++I) {
      CardsScanned += WCards[I];
      SlotsVisited += WSlots[I];
      if (WFault[I])
        Faulted = true;
    }
    if (!Faulted)
      for (unsigned I = 0; I < N; ++I)
        for (Word *F : SweepScratch[I])
          Fn(F);
  } else {
    try {
      Cards.scanDirtyCardRange(*TenuredFrom, CrossMap, 0, NumCards,
                               CardsScanned, SlotsVisited, Fn);
    } catch (const CardSweepFault &) {
      Faulted = true;
    }
  }
  Stats.CardsScanned += CardsScanned;
  Stats.CardSlotsVisited += SlotsVisited;
  if (TILGC_UNLIKELY(Faulted)) {
    // Degraded completeness: a throwing sweep may have emitted only part
    // of the dirty-card field set, so re-derive the whole remembered set
    // from first principles — every pointer field of every tenured object.
    // Duplicates with fields already emitted are harmless (forwarding is
    // idempotent, same as duplicate SSB entries); the cost is one tenured
    // walk, paid only on the faulted collection.
    ++Stats.CardSweepFaults;
    TenuredFrom->walk([&](Word *Payload, Word, bool) {
      forEachPointerField(Payload, [&](Word *Field) { Fn(Field); });
    });
  }
}

template <typename SlotFn>
void GenerationalCollector::forEachOldToYoungRoot(SlotFn Fn) {
  // Write-barrier output. (Phase scopes live here, as siblings, so phase
  // durations never nest and their sum stays below the pause; both scopes
  // are no-ops outside a collection, e.g. under the pre-minor audit.)
  if (!cardModeActive()) {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::SsbFilter);
    for (Word *Slot : SSB.entries()) {
      // Slots inside young objects are covered by the copy scan itself;
      // the paper's collector filters them the same way.
      if (inNursery(Slot))
        continue;
      Fn(Slot);
      ++Stats.SSBEntriesProcessed;
    }
  } else {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::CardScan);
    // Card-scan fields are accounted as CardsScanned/CardSlotsVisited, not
    // SSB entries: the emitted set depends on object placement, which the
    // parallel evacuator makes engine-dependent, and SsbEntriesProcessed
    // must stay in the deterministic event slice. The LOS side buffer is
    // precise barrier output and counts.
    sweepDirtyCards(Fn);
    for (Word *Slot : LOSDirtySlots) {
      Fn(Slot);
      ++Stats.SSBEntriesProcessed;
    }
  }

  GcTelemetry::PhaseScope PS(Tel, GcPhase::SsbFilter);
  // The pretenured region (§6): "we remember the area of the older
  // generation that has been directly allocated into and scan this region
  // ... a win over copying since copying objects is slower than only
  // scanning them." §7.2 scan-eliminated runs are skipped outright.
  for (const Run &R : Runs) {
    uint64_t Bytes =
        static_cast<uint64_t>(R.End - R.Begin) * sizeof(Word);
    if (R.NoScan) {
      Stats.PretenuredScanSkippedBytes += Bytes;
      continue;
    }
    Stats.PretenuredScannedBytes += Bytes;
    Word *P = R.Begin;
    while (P < R.End) {
      Word *Payload = P + HeaderWords;
      Word Descriptor = descriptorOf(Payload);
      forEachPointerField(Payload, [&](Word *Field) { Fn(Field); });
      P += objectTotalWords(Descriptor);
    }
  }

  // Large objects allocated since the last collection: their initializing
  // stores bypassed the barrier, so scan them like the pretenured region.
  for (Word *Payload : NewLargeObjects)
    forEachPointerField(Payload, [&](Word *Field) { Fn(Field); });
}

void GenerationalCollector::doMinor(size_t NeedTenuredBytes,
                                    GcTrigger Trigger) {
  FaultInjector::ScopedGcPhase GcPhase;
  if (TILGC_UNLIKELY(effectiveVerifyLevel() >= 2))
    auditRememberedSets();

  // The tenured generation must be able to absorb every survivor — plus,
  // in parallel mode, the block-tail padding the handout can waste.
  size_t MinorNeed = NurseryFrom->usedBytes() + NeedTenuredBytes;
  if (Pool)
    MinorNeed += ParallelEvacuator::reserveSlackBytes(
        NurseryFrom->usedBytes(), Opts.GcThreads);
  if (TenuredFrom->freeBytes() < MinorNeed) {
    // The minor never starts: the chained major is the whole collection
    // (and the only telemetry event).
    doMajor(NeedTenuredBytes, GcTrigger::TenuredPressure);
    return;
  }

  ++Stats.NumGC;
  Tel.beginCollection(GcGeneration::Minor, Trigger, Stats.NumGC);
  // Arms the GC-cycle watchdog (no-op with a zero deadline). The scope
  // covers a tenured-pressure chained major too (armGcWatchdog is
  // depth-counted), so one deadline bounds the whole pause the mutator
  // observes.
  GcWatchScope WatchScope(*this);
  accountStackAtGC();
  scanStackForRoots();

  // Pause-budget cycle live: capture the outgoing old-generation edges of
  // *every* young object before evacuation, including ones about to die.
  // This closes the SATB young-mediator hole — a tenured object reachable
  // at snapshot time only through a young object could otherwise be lost if
  // the mutator stored its pointer into an already-black object (the
  // barrier filters young values) and the young mediator then died here.
  // Promote-all keeps all young objects in NurseryFrom at minor entry, so
  // walking it alone is complete. Cost: one descriptor-driven pass over a
  // nursery that is about to be evacuated anyway.
  if (TILGC_UNLIKELY(IncCycleLive)) {
    TimerScope T(Stats.CopyTime);
    GcTelemetry::PhaseScope PS(Tel, GcPhase::IncrementalMark);
    NurseryFrom->walk([&](Word *Payload, Word Descriptor, bool) {
      forEachPointerFieldWith(Descriptor, Payload,
                              [&](Word *Field) { IncMC->markSeed(*Field); });
    });
  }

  Evacuator::Config C;
  C.From = {NurseryFrom, nullptr, nullptr};
  C.Dest = TenuredFrom;
  if (AgedTenuring()) {
    C.DestYoung = NurseryTo;
    C.PromoteAgeThreshold = Opts.PromoteAgeThreshold;
    MinorCrossGen.clear();
    C.CrossGenOut = &MinorCrossGen;
  }
  C.LOS = &LOS;
  C.TraceLOS = false;
  C.Profiler = Env.Profiler;
  C.CountSurvivedFirst = true;
  C.Telemetry = &Tel;
  if (usesCardBarrier())
    C.CrossDest = &CrossMap;

  // Batched root pipeline: gather the heap-side roots (barrier output,
  // pretenured regions, new large objects) into one contiguous span, then
  // hand whole spans to the engine in the serial order — stack, registers,
  // the §5 reused-frame policy, promotion-created cross-generation slots,
  // heap batch. Every gathered slot address is stable during a minor
  // collection (the slots live outside the nursery), so gather-then-forward
  // is equivalent to forwarding during enumeration.
  uint64_t SsbBefore = Stats.SSBEntriesProcessed;
  uint64_t CardsBefore = Stats.CardsScanned;
  uint64_t DirtyBefore = Cards.numDirtyCards();
  {
    TimerScope T(Stats.StackTime); // Root gathering (phases inside).
    RootBatch.clear();
    forEachOldToYoungRoot([&](Word *Slot) { RootBatch.push_back(Slot); });
  }
  if (GcEvent *Ev = Tel.currentEvent()) {
    Ev->SsbEntriesProcessed = Stats.SSBEntriesProcessed - SsbBefore;
    Ev->DirtyCards = DirtyBefore;
    Ev->CardsScanned = Stats.CardsScanned - CardsBefore;
  }

  // Promote-all + markers: roots in unchanged frames were redirected to
  // the tenured generation by the previous collection and cannot point
  // into the nursery — skip them entirely (the heart of §5). Under aged
  // tenuring young survivors keep moving, so they must be processed.
  bool ProcessReused = !Opts.UseStackMarkers || AgedTenuring();
  if (!ProcessReused && TILGC_UNLIKELY(Opts.VerifyReuseInvariant)) {
    // Debug mode: check the invariant behind the skip — a root in an
    // unchanged frame can never point into the nursery. (Off by default:
    // the check is O(reused roots), the very cost §5 eliminates.)
    for (Word *Slot : Roots.ReusedSlotRoots) {
      assert((!*Slot || !inNursery(reinterpret_cast<Word *>(*Slot))) &&
             "reused stack root points into the nursery");
      (void)Slot;
    }
  }

  uint64_t TenuredUsedBefore = TenuredFrom->usedBytes();
  if (Pool) {
    ParallelEvacuator E(C, *Pool);
    {
      TimerScope T(Stats.StackTime); // Root hand-off.
      GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
      E.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
      E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      if (ProcessReused)
        E.addRootSpan(Roots.ReusedSlotRoots.data(),
                      Roots.ReusedSlotRoots.size());
      E.addRootSpan(CrossGenSlots.data(), CrossGenSlots.size());
      E.addRootSpan(RootBatch.data(), RootBatch.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
      E.run();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
    Stats.CrossingMapUpdates += E.crossingMapUpdates();
    Stats.EvacWorkerFaults += E.workerFaults();
    if (E.workerFaults())
      ++Stats.EvacSerialRecoveries;
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->BytesCopied = E.bytesCopied();
      Ev->ObjectsCopied = E.objectsCopied();
      Ev->Workers = Opts.GcThreads;
      Ev->WorkerFaults = E.workerFaults();
      Ev->SerialRecovery = E.workerFaults() > 0;
    }
  } else {
    Evacuator E(C);
    {
      TimerScope T(Stats.StackTime); // Root processing.
      GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
      E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                        Roots.FreshSlotRoots.size());
      E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      if (ProcessReused)
        E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                          Roots.ReusedSlotRoots.size());
      E.forwardRootSpan(CrossGenSlots.data(), CrossGenSlots.size());
      E.forwardRootSpan(RootBatch.data(), RootBatch.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
      E.drain();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
    Stats.CrossingMapUpdates += E.crossingMapUpdates();
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->BytesCopied = E.bytesCopied();
      Ev->ObjectsCopied = E.objectsCopied();
    }
  }

  if (AgedTenuring()) {
    // Keep only real heap slots: stack slots and registers are rescanned
    // from scratch every collection and their storage gets reused.
    CrossGenSlots.clear();
    for (Word *Slot : MinorCrossGen)
      if (!mutatorOwnsSlot(Slot))
        CrossGenSlots.push_back(Slot);
  }

  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Resize);
    sweepDeaths(*NurseryFrom);
    NurseryFrom->reset();
    if (TILGC_UNLIKELY(shouldPoison()))
      NurseryFrom->poisonFreeSpace();
    if (AgedTenuring())
      std::swap(NurseryFrom, NurseryTo);

    SSB.clear();
    Cards.clear();
    LOSDirtySlots.clear();
    Runs.clear();
    NewLargeObjects.clear();
  }

  LiveBytes = TenuredFrom->usedBytes() + LOS.liveBytes() +
              (AgedTenuring() ? NurseryFrom->usedBytes() : 0);
  // (MaxLiveBytes is only sampled after *full* collections: after a minor
  // one the tenured generation still holds promoted-but-dead data.)

  maybeVerifyHeap("minor");

  if (GcEvent *Ev = Tel.currentEvent()) {
    // Promote-all minors put every survivor in the tenured generation;
    // under aged tenuring (or parallel pad waste) the tenured used-delta is
    // the truthful figure either way.
    Ev->BytesPromoted = TenuredFrom->usedBytes() - TenuredUsedBefore;
    Ev->BytesPretenured = Stats.PretenuredBytes - PretenuredBytesAtLastGC;
    Ev->CrossingMapUpdates = Stats.CrossingMapUpdates - CrossingUpdatesAtLastGC;
    Ev->HybridSwitched = HybridSwitchedSinceGC;
  }
  PretenuredBytesAtLastGC = Stats.PretenuredBytes;
  CrossingUpdatesAtLastGC = Stats.CrossingMapUpdates;
  HybridSwitchedSinceGC = false;
  Tel.endCollection();

  // Tenured pressure: if the next nursery-load might not fit, collect the
  // old generation now (a separate telemetry event — the minor's is
  // closed). In pause-budget mode the cycle starts early — once tenured
  // free space drops below half the space (or three nursery-loads,
  // whichever is larger) — so the slices cover roughly the second half of
  // every inter-major period. The long runway is what keeps finishes rare
  // relative to slices: high-promotion workloads can eat a nursery-load
  // of tenured headroom in a single minor, and a small heap's whole
  // tenured space is only a handful of nursery-loads, so a threshold
  // keyed to the nursery alone leaves near-sliceless cycles whose
  // stop-the-world finishes dominate the pause profile. An already-live
  // cycle that still hits the stock threshold is out of runway and is
  // force-finished via doMajor.
  if (TILGC_UNLIKELY(IncCycleLive)) {
    // The nursery is empty again: re-anchor the slice schedule so the next
    // epoch gets its full complement of slices.
    IncSliceStrideBytes = incrementalStrideBytes();
    IncNextSliceNurseryBytes = IncSliceStrideBytes;
    if (TenuredFrom->freeBytes() < NurseryFrom->capacityBytes())
      doMajor(0, GcTrigger::TenuredPressure); // force-finishes the cycle
  } else if (TILGC_UNLIKELY(incrementalModeActive()) &&
             TenuredFrom->freeBytes() <
                 std::max<size_t>(3 * NurseryFrom->capacityBytes(),
                                  TenuredFrom->capacityBytes() / 2)) {
    startIncrementalCycle(/*RescanRoots=*/false);
  } else if (TenuredFrom->freeBytes() < NurseryFrom->capacityBytes()) {
    doMajor(0, GcTrigger::TenuredPressure);
  }
}

bool GenerationalCollector::shouldPoison() const {
  if (effectiveVerifyLevel() >= 3)
    return true;
  return TILGC_UNLIKELY(FaultInjector::enabled()) &&
         FaultInjector::global().shouldFire(FaultPoint::FromSpacePoison);
}

bool GenerationalCollector::runVerifier(std::string &Error) const {
  HeapVerifier V;
  V.addSpace(TenuredFrom, "tenured");
  V.addSpace(NurseryFrom, "nursery");
  if (AgedTenuring())
    V.addSpace(NurseryTo, "nursery-to");
  V.setLOS(&LOS);
  V.setPoisonPattern(Space::PoisonPattern);
  return V.verifyHeap(Error);
}

void GenerationalCollector::maybeVerifyHeap(const char *Phase) const {
  if (TILGC_LIKELY(effectiveVerifyLevel() < 1))
    return;
  std::string Error;
  if (!runVerifier(Error))
    fatalError("heap verification failed after %s GC #%llu: %s", Phase,
               (unsigned long long)Stats.NumGC, Error.c_str());
}

void GenerationalCollector::auditRememberedSets() {
  // The covered set: exactly the slots the upcoming minor collection will
  // process as heap-side roots (barrier output, scanned pretenured runs,
  // new large objects) plus the promotion-created cross-generation slots.
  // forEachOldToYoungRoot is reused so the audit can never drift from the
  // collector; the stat counters it bumps are restored (the audit is an
  // observer, not a collection).
  std::unordered_set<const Word *> Covered;
  uint64_t SavedSSB = Stats.SSBEntriesProcessed;
  uint64_t SavedScanned = Stats.PretenuredScannedBytes;
  uint64_t SavedSkipped = Stats.PretenuredScanSkippedBytes;
  uint64_t SavedCards = Stats.CardsScanned;
  uint64_t SavedCardSlots = Stats.CardSlotsVisited;
  forEachOldToYoungRoot([&](Word *Slot) { Covered.insert(Slot); });
  Stats.SSBEntriesProcessed = SavedSSB;
  Stats.PretenuredScannedBytes = SavedScanned;
  Stats.PretenuredScanSkippedBytes = SavedSkipped;
  Stats.CardsScanned = SavedCards;
  Stats.CardSlotsVisited = SavedCardSlots;
  for (Word *Slot : CrossGenSlots)
    Covered.insert(Slot);

  auto CheckFields = [&](Word *Payload, const char *Where) {
    forEachPointerField(Payload, [&](Word *Field) {
      Word Bits = *Field;
      if (!Bits)
        return;
      if (!inNursery(reinterpret_cast<const Word *>(Bits)))
        return;
      if (Covered.count(Field))
        return;
      fatalError("remembered-set audit failed before minor GC #%llu: %s "
                 "slot %p holds young pointer %llx not covered by the "
                 "write barrier, the cross-generation set, or a scanned "
                 "pretenured run",
                 (unsigned long long)(Stats.NumGC + 1), Where, (void *)Field,
                 (unsigned long long)Bits);
    });
  };
  TenuredFrom->walk([&](Word *Payload, Word, bool Forwarded) {
    assert(!Forwarded && "forwarded object between collections");
    (void)Forwarded;
    CheckFields(Payload, "tenured");
  });
  LOS.walk([&](Word *Payload, Word) { CheckFields(Payload, "LOS"); });
}

void GenerationalCollector::doMajor(size_t NeedTenuredBytes,
                                    GcTrigger Trigger) {
  // A live pause-budget cycle owns the major machinery: any demand for a
  // full collection — tenured pressure, the OOM ladder, an explicit
  // collect(), the LOS hard limit — completes the in-flight mark and runs
  // the stock compaction on top of it instead of starting a second major.
  if (TILGC_UNLIKELY(IncCycleLive)) {
    finishIncrementalCycle(NeedTenuredBytes, Trigger);
    return;
  }
  if (Opts.MajorGc == MajorGcKind::MarkCompact)
    doMajorMarkCompact(NeedTenuredBytes, Trigger);
  else
    doMajorSemispace(NeedTenuredBytes, Trigger);
}

void GenerationalCollector::doMajorSemispace(size_t NeedTenuredBytes,
                                             GcTrigger Trigger) {
  FaultInjector::ScopedGcPhase GcPhase;

  // TenuredTo has sat idle since the last major; if it was left poisoned,
  // any clobbered word is a wild write through a stale pointer.
  if (TILGC_UNLIKELY(TenuredToPoisonValid)) {
    if (const Word *Bad = TenuredTo->findPoisonViolation())
      fatalError("from-space poison clobbered at %p before major GC #%llu "
                 "(holds %llx): wild write through a stale pointer",
                 (const void *)Bad, (unsigned long long)(Stats.NumGC + 1),
                 (unsigned long long)*Bad);
    TenuredToPoisonValid = false;
  }

  size_t Incoming = TenuredFrom->usedBytes() + NurseryFrom->usedBytes() +
                    (AgedTenuring() ? NurseryTo->usedBytes() : 0);
  size_t Reserve = Incoming + NeedTenuredBytes;
  if (Pool)
    Reserve += ParallelEvacuator::reserveSlackBytes(Incoming, Opts.GcThreads);

  // Hard-cap pre-flight, BEFORE any object moves: if the peak footprint of
  // this collection (to-space grown to the worst case if it needs growing)
  // exceeds the cap, refuse catchably while the heap is still intact and
  // verifiable. Unconditional when a cap is set — the post-major resize's
  // MinSize floor may legally pre-provision a to-space the cap cannot
  // absorb, and this check is where that breach becomes a throw instead of
  // unbounded ratcheting growth.
  if (TILGC_UNLIKELY(Opts.HardLimitBytes)) {
    size_t ToCap = std::max(TenuredTo->capacityBytes(), Reserve);
    size_t Peak = footprintBytes() - TenuredTo->capacityBytes() + ToCap;
    if (Peak > Opts.HardLimitBytes)
      throwHeapExhausted(NeedTenuredBytes ? NeedTenuredBytes : Reserve,
                         OomStage::HardCapPreflight);
  }

  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  Tel.beginCollection(GcGeneration::Major, Trigger, Stats.NumGC);
  GcWatchScope WatchScope(*this);
  accountStackAtGC();
  scanStackForRoots();

  evacuateMajorInto(Reserve);

  {
    GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);

    // Resize the now-empty to-space toward the target liveness ratio within
    // the memory budget (the live space's capacity catches up next major).
    size_t NurseryFoot =
        NurseryFrom->capacityBytes() * (AgedTenuring() ? 2 : 1);
    size_t Desired = static_cast<size_t>(static_cast<double>(LiveBytes) /
                                         Opts.TenuredTargetLiveness);
    size_t MinSize = TenuredFrom->usedBytes() + NurseryFrom->capacityBytes() +
                     NeedTenuredBytes + (16u << 10);
    size_t MaxSize = MinSize;
    size_t NonTenured = NurseryFoot + LOS.liveBytes();
    if (Opts.BudgetBytes > NonTenured + 2 * MinSize)
      MaxSize = (Opts.BudgetBytes - NonTenured) / 2;
    else
      ++Stats.BudgetOverruns;
    Desired = std::clamp(Desired, MinSize, MaxSize);
    // Under a hard cap, never reserve a to-space the cap could not absorb at
    // the next major — but never below MinSize either (this allocation
    // already succeeded; if MinSize itself breaches the cap, the next
    // major's pre-flight throws before moving anything).
    if (TILGC_UNLIKELY(Opts.HardLimitBytes)) {
      size_t Standing = NonTenured + TenuredFrom->capacityBytes();
      size_t Room =
          Opts.HardLimitBytes > Standing ? Opts.HardLimitBytes - Standing : 0;
      Desired = std::clamp(Desired, MinSize, std::max(Room, MinSize));
    }
    TenuredTo->reserve(Desired);
    noteFootprint();

    if (TILGC_UNLIKELY(shouldPoison())) {
      NurseryFrom->poisonFreeSpace();
      if (AgedTenuring())
        NurseryTo->poisonFreeSpace();
      TenuredTo->poisonFreeSpace();
      TenuredToPoisonValid = true;
    }

    if (usesCardBarrier()) {
      // The card table re-attaches to the (swapped-in) live space; the
      // crossing map was attached to it before evacuation and stays.
      Cards.attach(*TenuredFrom);
      recomputeHybridThreshold();
      assert(CrossMap.boundTo(*TenuredFrom) &&
             "crossing map lost the tenured swap");
    }
    LOSAllocSinceGC = 0;
  }
  maybeVerifyHeap("major");

  if (GcEvent *Ev = Tel.currentEvent()) {
    Ev->BytesPretenured = Stats.PretenuredBytes - PretenuredBytesAtLastGC;
    Ev->CrossingMapUpdates = Stats.CrossingMapUpdates - CrossingUpdatesAtLastGC;
    Ev->HybridSwitched = HybridSwitchedSinceGC;
  }
  PretenuredBytesAtLastGC = Stats.PretenuredBytes;
  CrossingUpdatesAtLastGC = Stats.CrossingMapUpdates;
  HybridSwitchedSinceGC = false;
  Tel.endCollection();
  noteFootprint();
}

void GenerationalCollector::evacuateMajorInto(size_t ReserveBytes) {
  if (TenuredTo->capacityBytes() < ReserveBytes) {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::Resize);
    TenuredTo->reserve(ReserveBytes);
  }
  noteFootprint();
  // Rebind the crossing map to the destination (after any growth above):
  // promotions recorded during this evacuation must survive the swap, so
  // the map is NOT re-attached afterwards — it already covers the new
  // TenuredFrom.
  if (usesCardBarrier())
    CrossMap.attach(*TenuredTo);

  Evacuator::Config C;
  C.From = {NurseryFrom, AgedTenuring() ? NurseryTo : nullptr, TenuredFrom};
  C.Dest = TenuredTo;
  C.LOS = &LOS;
  C.TraceLOS = true;
  C.Profiler = Env.Profiler;
  C.CountSurvivedFirst = true;
  C.Telemetry = &Tel;
  if (usesCardBarrier())
    C.CrossDest = &CrossMap;

  // Everything moves in a major collection: reused roots are processed,
  // the saving is only the avoided re-decoding of unchanged frames.
  if (Pool) {
    ParallelEvacuator E(C, *Pool);
    {
      TimerScope T(Stats.StackTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
      E.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
      E.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.addRootSpan(Roots.ReusedSlotRoots.data(),
                    Roots.ReusedSlotRoots.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
      E.run();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
    Stats.CrossingMapUpdates += E.crossingMapUpdates();
    Stats.MajorBytesMoved += E.bytesCopied();
    Stats.EvacWorkerFaults += E.workerFaults();
    if (E.workerFaults())
      ++Stats.EvacSerialRecoveries;
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->BytesCopied = E.bytesCopied();
      Ev->ObjectsCopied = E.objectsCopied();
      Ev->BytesMoved = E.bytesCopied();
      Ev->Workers = Opts.GcThreads;
      Ev->WorkerFaults = E.workerFaults();
      Ev->SerialRecovery = E.workerFaults() > 0;
    }
  } else {
    Evacuator E(C);
    {
      TimerScope T(Stats.StackTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
      E.forwardRootSpan(Roots.FreshSlotRoots.data(),
                        Roots.FreshSlotRoots.size());
      E.forwardRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
      E.forwardRootSpan(Roots.ReusedSlotRoots.data(),
                        Roots.ReusedSlotRoots.size());
    }
    {
      TimerScope T(Stats.CopyTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::Copy);
      E.drain();
    }
    Stats.BytesCopied += E.bytesCopied();
    Stats.ObjectsCopied += E.objectsCopied();
    Stats.CrossingMapUpdates += E.crossingMapUpdates();
    Stats.MajorBytesMoved += E.bytesCopied();
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->BytesCopied = E.bytesCopied();
      Ev->ObjectsCopied = E.objectsCopied();
      Ev->BytesMoved = E.bytesCopied();
    }
  }

  {
    GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);

    // Sweep the large-object space and account deaths.
    uint64_t NowKB = allocStampKB();
    LOS.sweep([&](Word *Payload, Word Descriptor) {
      (void)Descriptor;
      if (Env.Profiler) {
        Word Meta = metaOf(Payload);
        Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
      }
    });
    sweepDeaths(*NurseryFrom);
    if (AgedTenuring())
      sweepDeaths(*NurseryTo);
    sweepDeaths(*TenuredFrom);

    NurseryFrom->reset();
    if (AgedTenuring())
      NurseryTo->reset();
    SSB.clear();
    LOSDirtySlots.clear();
    Runs.clear();
    NewLargeObjects.clear();
    CrossGenSlots.clear(); // A major promotes everything: no old->young left.

    std::swap(TenuredFrom, TenuredTo);
    LiveBytes = TenuredFrom->usedBytes() + LOS.liveBytes();
    if (LiveBytes > Stats.MaxLiveBytes)
      Stats.MaxLiveBytes = LiveBytes;
  }
}

void GenerationalCollector::doMajorMarkCompact(size_t NeedTenuredBytes,
                                               GcTrigger Trigger) {
  FaultInjector::ScopedGcPhase GcPhase;

  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  Tel.beginCollection(GcGeneration::Major, Trigger, Stats.NumGC);
  GcWatchScope WatchScope(*this);
  noteFootprint();
  accountStackAtGC();
  scanStackForRoots();

  // After FailoverStickyLimit consecutive failovers the mark-compact engine
  // is not trusted with another attempt: every later major runs the
  // semispace fallback directly (same roots, same observable results).
  if (TILGC_UNLIKELY(McStickyDisabled)) {
    runMajorEvacuationFallback(NeedTenuredBytes);
    finishMajorEvent();
    return;
  }

  bool FailedOver = false;
  {
  MarkCompact::Config MCC;
  MCC.Young = {NurseryFrom, AgedTenuring() ? NurseryTo : nullptr};
  MCC.Tenured = TenuredFrom;
  MCC.Regions = &Regions;
  MCC.LOS = &LOS;
  MCC.Profiler = Env.Profiler;
  MCC.Telemetry = &Tel;
  if (usesCardBarrier())
    MCC.CrossDest = &CrossMap;
  MCC.Pool = Pool.get();
  if (Opts.GcDeadlineMicros && Opts.WatchdogEscalation != WatchdogPolicy::Report)
    // Watchdog-requested recovery: mark/plan abort points poll this latch
    // and throw MarkPlanFault, which the handler below turns into an
    // engine failover.
    MCC.AbortFlag = WD.recoverFlag();
  MarkCompact M(MCC);

  {
    TimerScope T(Stats.StackTime);
    GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
    // Majors process reused roots too: everything moves, so the §5 saving
    // is only the avoided re-decoding of unchanged frames.
    M.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
    M.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
    M.addRootSpan(Roots.ReusedSlotRoots.data(), Roots.ReusedSlotRoots.size());
  }
  try {
  {
    TimerScope T(Stats.CopyTime);
    M.mark(); // Mark phase scope inside.
  }
  Stats.MarkWorkerFaults += M.workerFaults();
  if (M.serialRecovered())
    ++Stats.MarkSerialRecoveries;

  completeMarkedMajor(M, NeedTenuredBytes);
  ConsecutiveMcFailovers = 0;
  } catch (const MarkPlanFault &) {
    // Engine failover: the mark/plan phases are mutation-free, so the heap
    // is exactly as the mutator left it. Abandon the mark-compact attempt
    // and finish this collection with a semispace evacuation instead.
    ++Stats.MajorEngineFailovers;
    if (++ConsecutiveMcFailovers >= Opts.FailoverStickyLimit)
      McStickyDisabled = true;
    if (GcEvent *Ev = Tel.currentEvent())
      Ev->EngineFailover = true;
    // The aborted mark may have left a partial LOS mark set; clear it
    // WITHOUT sweeping (an unmarked-but-live object must not be freed).
    // The fallback evacuation re-marks live LOS objects via its own trace.
    LOS.clearMarks();
    FailedOver = true;
  }
  } // MarkCompact engine scope: bitmaps and plan state released here.

  if (TILGC_UNLIKELY(FailedOver))
    runMajorEvacuationFallback(NeedTenuredBytes);

  finishMajorEvent();
}

/// Completes a major collection whose mark phase already ran: consumes the
/// plan, compacts in place or grows through an evacuating swap, sweeps, and
/// rebinds the card/crossing overlays. Factored out of doMajorMarkCompact
/// so the pause-budget finish can run the identical completion on top of an
/// incrementally-built mark. The plan/pre-commit fault points live here, so
/// this may throw MarkPlanFault — callers own the failover.
void GenerationalCollector::completeMarkedMajor(MarkCompact &M,
                                                size_t NeedTenuredBytes) {
  // Decide in place vs grow while nothing has moved. The floor leaves the
  // next minor collection's worst case (a full nursery plus parallel block
  // slack) so compaction does not immediately pressure-chain into another
  // major.
  size_t Planned = M.plannedTenuredBytes();
  size_t MinorHeadroom = NurseryFrom->capacityBytes();
  if (Pool)
    MinorHeadroom += ParallelEvacuator::reserveSlackBytes(
        NurseryFrom->capacityBytes(), Opts.GcThreads);
  size_t Floor = Planned + NeedTenuredBytes + MinorHeadroom + (16u << 10);

  if (Floor <= TenuredFrom->capacityBytes()) {
    // Hard pre-commit barrier: the last point where this collection can
    // still be abandoned. compact() begins destructive memmoves; past this
    // line abort requests are ignored and the engine must finish.
    M.preCommitCheck();
    // In-place compaction: nothing is reserved and the footprint can only
    // shrink, so there is no hard-cap pre-flight on this path — the
    // unconditional pre-flight (and its sticky exhaustion) was only ever a
    // semispace-reservation workaround.
    uint64_t NowKB = allocStampKB();
    if (Env.Profiler)
      M.forEachDeadTenured([&](Word *Payload) {
        Word Meta = metaOf(Payload);
        Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
      });
    {
      TimerScope T(Stats.CopyTime);
      M.compact(); // Fixup + Compact phase scopes inside.
    }
    Stats.BytesCopied += M.markedLiveBytes();
    Stats.ObjectsCopied += M.markedObjects();
    Stats.MajorBytesMoved += M.bytesMoved();
    Stats.CrossingMapUpdates += M.crossingMapUpdates();
    if (GcEvent *Ev = Tel.currentEvent()) {
      Ev->BytesCopied = M.markedLiveBytes();
      Ev->ObjectsCopied = M.markedObjects();
      Ev->BytesMoved = M.bytesMoved();
      Ev->RegionsTotal = static_cast<uint32_t>(M.regionsTotal());
      Ev->RegionsDense = static_cast<uint32_t>(M.regionsDense());
      Ev->RegionsEvacuated = static_cast<uint32_t>(M.regionsEvacuated());
      Ev->Workers = Opts.GcThreads;
      Ev->WorkerFaults = M.workerFaults();
      Ev->SerialRecovery = M.serialRecovered();
    }
    {
      GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);
      // The mark left exactly the live set's LOS bits set — what the sweep
      // consumes. Tenured deaths were reported via forEachDeadTenured above
      // (compaction destroys them); young deaths go through the
      // forwarding-based sweep as usual.
      LOS.sweep([&](Word *Payload, Word Descriptor) {
        (void)Descriptor;
        if (Env.Profiler) {
          Word Meta = metaOf(Payload);
          Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
        }
      });
      sweepDeaths(*NurseryFrom);
      if (AgedTenuring())
        sweepDeaths(*NurseryTo);

      NurseryFrom->reset();
      if (AgedTenuring())
        NurseryTo->reset();
      SSB.clear();
      LOSDirtySlots.clear();
      Runs.clear();
      NewLargeObjects.clear();
      CrossGenSlots.clear(); // A major promotes everything.

      LiveBytes = TenuredFrom->usedBytes() + LOS.liveBytes();
      if (LiveBytes > Stats.MaxLiveBytes)
        Stats.MaxLiveBytes = LiveBytes;

      if (TILGC_UNLIKELY(shouldPoison())) {
        NurseryFrom->poisonFreeSpace();
        if (AgedTenuring())
          NurseryTo->poisonFreeSpace();
        // The reclaimed tail past the rewound frontier is the mark-compact
        // analog of evacuated from-space. Promotions legally consume it, so
        // it never arms the TenuredToPoisonValid wild-write check.
        TenuredFrom->poisonFreeSpace();
      }

      if (usesCardBarrier()) {
        // No old->young edges survive a major, so re-attaching (which
        // clears every card) is correct — same as the semispace swap. The
        // crossing map was rebuilt over the compacted layout by compact().
        Cards.attach(*TenuredFrom);
        recomputeHybridThreshold();
        assert(CrossMap.boundTo(*TenuredFrom) &&
               "crossing map lost the compaction");
      }
      LOSAllocSinceGC = 0;
    }
  } else {
    // The plan does not fit: grow through one evacuating swap, releasing
    // the old space afterwards so the 2x reservation is transient rather
    // than standing. The LOS is swept first — the mark is complete, and
    // the evacuation's TraceLOS re-marking needs clean mark bits.
    {
      GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);
      uint64_t NowKB = allocStampKB();
      LOS.sweep([&](Word *Payload, Word Descriptor) {
        (void)Descriptor;
        if (Env.Profiler) {
          Word Meta = metaOf(Payload);
          Env.Profiler->onDeath(meta::site(Meta), NowKB - meta::birthKB(Meta));
        }
      });
    }

    size_t Desired = static_cast<size_t>(
        static_cast<double>(M.markedLiveBytes() + LOS.liveBytes()) /
        Opts.TenuredTargetLiveness);
    size_t NurseryFoot =
        NurseryFrom->capacityBytes() * (AgedTenuring() ? 2 : 1);
    size_t NonTenured = NurseryFoot + LOS.liveBytes();
    size_t MaxSize = Floor;
    // Only one tenured space stands in mark-compact mode, so the budget
    // share is the full remainder rather than half of it.
    if (Opts.BudgetBytes > NonTenured + Floor)
      MaxSize = Opts.BudgetBytes - NonTenured;
    else
      ++Stats.BudgetOverruns;
    Desired = std::clamp(Desired, Floor, std::max(MaxSize, Floor));
    if (TILGC_UNLIKELY(Opts.HardLimitBytes)) {
      // The transient evacuation peak is the standing footprint plus the
      // new reservation (TenuredTo's capacity is 0 in this mode).
      size_t Standing = footprintBytes();
      size_t Room =
          Opts.HardLimitBytes > Standing ? Opts.HardLimitBytes - Standing : 0;
      if (Floor > Room) {
        // Catchable refusal with the heap intact: nothing has moved, the
        // LOS sweep only freed garbage and cleared mark bits, and no state
        // is sticky — a retry after the mutator drops data can succeed.
        Tel.endCollection();
        throwHeapExhausted(NeedTenuredBytes ? NeedTenuredBytes : Floor,
                           OomStage::HardCapPreflight);
      }
      Desired = std::clamp(Desired, Floor, std::max(Room, Floor));
    }

    if (GcEvent *Ev = Tel.currentEvent()) {
      // The census of the abandoned plan explains why the space grew
      // (captured before the region overlay re-binds to the grown space).
      Ev->RegionsTotal = static_cast<uint32_t>(M.regionsTotal());
      Ev->RegionsDense = static_cast<uint32_t>(M.regionsDense());
      Ev->RegionsEvacuated = static_cast<uint32_t>(M.regionsEvacuated());
    }

    evacuateMajorInto(Desired);

    {
      GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);
      // Drop the swap's source: mark-compact keeps one standing tenured
      // space, so the old reservation is released rather than recycled.
      TenuredTo->release();
      // Fresh reservation, fresh epoch: the region overlay must re-bind to
      // the grown space (the crossing map was attached to it before the
      // evacuation and stays).
      Regions.attach(*TenuredFrom);

      if (TILGC_UNLIKELY(shouldPoison())) {
        NurseryFrom->poisonFreeSpace();
        if (AgedTenuring())
          NurseryTo->poisonFreeSpace();
        TenuredFrom->poisonFreeSpace();
      }
      if (usesCardBarrier()) {
        Cards.attach(*TenuredFrom);
        recomputeHybridThreshold();
        assert(CrossMap.boundTo(*TenuredFrom) &&
               "crossing map lost the tenured swap");
      }
      LOSAllocSinceGC = 0;
    }
  }
}

/// Closes out a major collection event: verification, deterministic event
/// fields, telemetry end, footprint sample. Shared by the mark-compact
/// paths (success, failover, sticky fallback).
void GenerationalCollector::finishMajorEvent() {
  maybeVerifyHeap("major");

  if (GcEvent *Ev = Tel.currentEvent()) {
    Ev->BytesPretenured = Stats.PretenuredBytes - PretenuredBytesAtLastGC;
    Ev->CrossingMapUpdates = Stats.CrossingMapUpdates - CrossingUpdatesAtLastGC;
    Ev->HybridSwitched = HybridSwitchedSinceGC;
  }
  PretenuredBytesAtLastGC = Stats.PretenuredBytes;
  CrossingUpdatesAtLastGC = Stats.CrossingMapUpdates;
  HybridSwitchedSinceGC = false;
  Tel.endCollection();
  noteFootprint();
}

void GenerationalCollector::runMajorEvacuationFallback(size_t NeedTenuredBytes) {
  // Semispace-for-this-collection: one evacuating swap through a transient
  // to-space (TenuredTo stands at capacity 0 in mark-compact mode),
  // released afterwards so the 2x reservation never becomes standing. The
  // reservation leaves the next minor's worst case so the fallback does not
  // immediately pressure-chain into another major.
  size_t Incoming = TenuredFrom->usedBytes() + NurseryFrom->usedBytes() +
                    (AgedTenuring() ? NurseryTo->usedBytes() : 0);
  size_t MinorHeadroom = NurseryFrom->capacityBytes();
  if (Pool)
    MinorHeadroom += ParallelEvacuator::reserveSlackBytes(
        NurseryFrom->capacityBytes(), Opts.GcThreads);
  size_t Reserve = Incoming + NeedTenuredBytes + MinorHeadroom + (16u << 10);
  if (Pool)
    Reserve += ParallelEvacuator::reserveSlackBytes(Incoming, Opts.GcThreads);

  // Hard-cap pre-flight before anything moves: refuse catchably with the
  // heap intact (the aborted mark mutated nothing).
  if (TILGC_UNLIKELY(Opts.HardLimitBytes)) {
    size_t Standing = footprintBytes();
    size_t Room =
        Opts.HardLimitBytes > Standing ? Opts.HardLimitBytes - Standing : 0;
    if (Reserve > Room) {
      Tel.endCollection();
      throwHeapExhausted(NeedTenuredBytes ? NeedTenuredBytes : Reserve,
                         OomStage::HardCapPreflight);
    }
  }

  evacuateMajorInto(Reserve);

  {
    GcTelemetry::PhaseScope ResizePS(Tel, GcPhase::Resize);
    // Drop the swap's source and re-bind the region overlay to the live
    // space — also discarding any partial mark/plan state the aborted
    // engine left in the overlay.
    TenuredTo->release();
    Regions.attach(*TenuredFrom);

    if (TILGC_UNLIKELY(shouldPoison())) {
      NurseryFrom->poisonFreeSpace();
      if (AgedTenuring())
        NurseryTo->poisonFreeSpace();
      TenuredFrom->poisonFreeSpace();
    }
    if (usesCardBarrier()) {
      Cards.attach(*TenuredFrom);
      recomputeHybridThreshold();
      assert(CrossMap.boundTo(*TenuredFrom) &&
             "crossing map lost the failover swap");
    }
    LOSAllocSinceGC = 0;
  }
}

void GenerationalCollector::armGcWatchdog() {
  if (TILGC_LIKELY(Opts.GcDeadlineMicros == 0))
    return;
  if (WatchDepth++ > 0)
    return; // Chained collection: the outer window keeps ticking.
  WD.clearRecoverRequest();
  WatchdogBark Proto;
  Proto.What = WatchdogBark::Kind::GcCycle;
  Proto.Seq = Stats.NumGC;
  Proto.DeadlineMicros = Opts.GcDeadlineMicros;
  Proto.Policy = Opts.WatchdogEscalation;
  // Captured on this (the collecting) thread while the heap is quiescent;
  // the supervisor must not walk spaces that are in motion at expiry.
  Proto.Detail = "heap state at cycle entry:\n";
  appendHeapState(Proto.Detail);
  GcTelemetry *T = &Tel;
  WD.arm(
      std::move(Proto), Opts.GcDeadlineMicros,
      [T](WatchdogBark &B) {
        B.WhenNs = GcTelemetry::nowNs();
        B.PhaseOrdinal = T->livePhaseOrdinal();
      },
      [T](const WatchdogBark &B) { T->noteWatchdogBark(B); });
}

void GenerationalCollector::disarmGcWatchdog() {
  if (TILGC_LIKELY(Opts.GcDeadlineMicros == 0))
    return;
  if (--WatchDepth > 0)
    return;
  WD.disarm();
}

void GenerationalCollector::appendHeapState(std::string &Out) const {
  Out += formatString("generational collector '%s': budget %zu bytes, ",
                      Opts.Name.empty() ? "<unnamed>" : Opts.Name.c_str(),
                      Opts.BudgetBytes);
  Out += Opts.HardLimitBytes
             ? formatString("hard limit %zu bytes\n", Opts.HardLimitBytes)
             : std::string("no hard limit\n");
  auto Line = [&](const char *Name, const Space &S) {
    Out += formatString("  %-12s %10zu / %10zu bytes used\n", Name,
                        S.usedBytes(), S.capacityBytes());
  };
  Line("nursery", *NurseryFrom);
  if (AgedTenuring())
    Line("nursery-to", *NurseryTo);
  Line("tenured", *TenuredFrom);
  Line("tenured-to", *TenuredTo);
  Out += formatString("  %-12s %10zu live bytes in %zu objects\n", "LOS",
                      LOS.liveBytes(), LOS.objectCount());
  Out += formatString("  pending: %zu SSB entries, %zu pretenured runs, %zu "
                      "new large objects\n",
                      SSB.size(), Runs.size(), NewLargeObjects.size());
}

void GenerationalCollector::forEachLiveObject(
    const std::function<void(Word *, Word)> &Fn) const {
  auto WalkSpace = [&](const Space &S) {
    S.walk([&](Word *Payload, Word Descriptor, bool Forwarded) {
      if (!Forwarded)
        Fn(Payload, Descriptor);
    });
  };
  WalkSpace(*NurseryFrom);
  if (AgedTenuring())
    WalkSpace(*NurseryTo);
  WalkSpace(*TenuredFrom);
  LOS.walk([&](Word *Payload, Word Descriptor) { Fn(Payload, Descriptor); });
}

//===----------------------------------------------------------------------===//
// Pause-budget incremental major cycle (Opts.MaxPauseMicros > 0)
//===----------------------------------------------------------------------===//
//
// The stock major collection is one stop-the-world MARK + COMPACT pause.
// In pause-budget mode the MARK phase is sliced into bounded increments run
// at allocation safepoints, interleaved with mutator execution; the COMPACT
// half stays stop-the-world at the cycle's finishing collection (slicing a
// sliding compaction would need read barriers the runtime does not have).
// Correctness is snapshot-at-the-beginning: the cycle marks everything
// reachable when it began, a deletion barrier (satbRecord) preserves edges
// the mutator overwrites mid-cycle, and everything allocated or promoted
// during the cycle is treated as live (allocate-black, materialized as
// finish-time seeds). The one-cycle float this retains is collected by the
// next cycle — the same trade every SATB collector makes.

void GenerationalCollector::startIncrementalCycle(bool RescanRoots) {
  assert(!IncCycleLive && "nested incremental cycles");
  assert(incrementalModeActive() && "cycle start outside budget mode");

  if (RescanRoots) {
    // Mid-epoch call site (LOS soft pressure): the last collection's root
    // scan is stale. Only legal without markers — see the caller.
    assert(!Opts.UseStackMarkers && "mid-epoch marker scan would break §5");
    scanStackForRoots();
  }

  MarkCompact::Config MCC;
  MCC.Young = {NurseryFrom, AgedTenuring() ? NurseryTo : nullptr};
  MCC.Tenured = TenuredFrom;
  MCC.Regions = &Regions;
  MCC.LOS = &LOS;
  MCC.Profiler = Env.Profiler;
  MCC.Telemetry = &Tel;
  if (usesCardBarrier())
    MCC.CrossDest = &CrossMap;
  MCC.Pool = Pool.get();
  // No AbortFlag: slices poll the watchdog's recover request themselves and
  // answer it with a stop-the-world finish, not an engine abort — the
  // accumulated mark is exactly what makes the finish fast.
  IncMC = std::make_unique<MarkCompact>(MCC);
  IncMC->beginIncremental();

  IncCycleLive = true;
  SatbMarkingLive = true;
  ++IncCycleCount;
  IncTrigger = GcTrigger::TenuredPressure;
  // Everything the old generation gains after this point (promotions,
  // pretenured allocation, tenured fallback) is cycle-era: seeded at finish
  // rather than traced by slices, so slices never race the frontier.
  IncTenuredDeltaFrom = TenuredFrom->frontier();
  IncNewLOS.clear();
  // Cycle-long watchdog hold: one deadline bounds the whole cycle, slices
  // and finish nest inside it (armGcWatchdog is depth-counted). A Recover
  // bark is answered at the next slice.
  armGcWatchdog();

  // Snapshot the roots. SATB only covers heap stores (writeField); stack
  // and register mutations have no barrier, so an object reachable *only*
  // from the stack at snapshot time must be seeded now — the mutator may
  // launder its pointer into an already-black heap object and then drop
  // the stack slot, and the finish rescan would miss it.
  {
    GcTelemetry::PhaseScope PS(Tel, GcPhase::IncrementalMark);
    for (Word *Slot : Roots.FreshSlotRoots)
      IncMC->markSeed(*Slot);
    for (Word *Slot : RegRootAddrs)
      IncMC->markSeed(*Slot);
    for (Word *Slot : Roots.ReusedSlotRoots)
      IncMC->markSeed(*Slot);
  }

  // First slice after one stride of allocation; see incrementalStrideBytes
  // for how the stride is sized against the pause SLO.
  IncSliceStrideBytes = incrementalStrideBytes();
  IncLosBytesSinceSlice = 0;
  IncNextSliceNurseryBytes = NurseryFrom->usedBytes() + IncSliceStrideBytes;
}

void GenerationalCollector::incrementalTick() {
  if (!incrementalSliceDue())
    return;
  TimerScope Gc(Stats.GcTime);
  FaultInjector::ScopedGcPhase InGc;
  runIncrementalSlice();
}

void GenerationalCollector::runIncrementalSlice() {
  ++Stats.NumGC; // Invalidates mutator fast-path epochs; NumMajorGC is
                 // bumped once, by the finishing collection.
  ++IncSliceCount;
  Tel.beginCollection(GcGeneration::Major, IncTrigger, Stats.NumGC);
  GcWatchScope WatchScope(*this);
  {
    TimerScope T(Stats.CopyTime);
    GcTelemetry::PhaseScope PS(Tel, GcPhase::IncrementalMark);
    uint64_t SliceBeginNs = GcTelemetry::nowNs();
    // The deletion-barrier backlog first: its entries are exactly the
    // snapshot edges the mutator severed since the last slice.
    for (Word Bits : Satb.values())
      IncMC->markSeed(Bits);
    Satb.clear();
    // Budget half the pause for the whole slice: the histogram's
    // percentile reports bucket upper edges (2x resolution), so a
    // half-budget target keeps the reported p99 under the full budget.
    // The SATB drain above already spent part of it; the grey-drain gets
    // the remainder, with a floor so marking always advances even behind
    // a mutation storm.
    uint64_t HalfNs = static_cast<uint64_t>(Opts.MaxPauseMicros) * 1000 / 2;
    uint64_t SpentNs = GcTelemetry::nowNs() - SliceBeginNs;
    IncMC->markStep(SpentNs < HalfNs ? HalfNs - SpentNs : HalfNs / 16 + 1);
  }
  if (TILGC_UNLIKELY(effectiveVerifyLevel() >= 2))
    auditTricolorInvariant();
  Tel.endCollection();
  // Re-arm both pacing legs relative to the current fill so every slice
  // costs one stride of fresh allocation.
  IncSliceStrideBytes = incrementalStrideBytes();
  IncNextSliceNurseryBytes = NurseryFrom->usedBytes() + IncSliceStrideBytes;
  IncLosBytesSinceSlice = 0;

  // Watchdog Recover escalation: the supervisor decided the cycle has
  // overstayed its deadline. Fall back to the stop-the-world completion —
  // the mark accumulated so far is kept, not discarded.
  if (TILGC_UNLIKELY(WD.recoverRequested())) {
    WD.clearRecoverRequest();
    finishIncrementalCycle(0, IncTrigger);
  }
}

void GenerationalCollector::finishIncrementalCycle(size_t NeedTenuredBytes,
                                                   GcTrigger Trigger) {
  assert(IncCycleLive && "finish without a live cycle");
  FaultInjector::ScopedGcPhase InGc;

  ++Stats.NumGC;
  ++Stats.NumMajorGC;
  Tel.beginCollection(GcGeneration::Major, Trigger, Stats.NumGC);
  GcWatchScope WatchScope(*this);
  // Unconditional teardown at scope exit: normal completion, engine
  // failover, and the grow path's catchable HeapExhausted refusal all
  // leave the collector cycle-free with the SATB barrier lowered.
  struct CycleTeardown {
    GenerationalCollector &C;
    ~CycleTeardown() { C.clearIncrementalState(); }
  } Teardown{*this};
  noteFootprint();
  accountStackAtGC();
  scanStackForRoots();

  MarkCompact &M = *IncMC;
  bool FailedOver = false;
  {
    TimerScope T(Stats.StackTime);
    GcTelemetry::PhaseScope PS(Tel, GcPhase::RootHandoff);
    // The spans feed the fixup's root-slot rewriting (marking consumes the
    // *values*, seeded below — markStep never touches the spans).
    M.addRootSpan(Roots.FreshSlotRoots.data(), Roots.FreshSlotRoots.size());
    M.addRootSpan(RegRootAddrs.data(), RegRootAddrs.size());
    M.addRootSpan(Roots.ReusedSlotRoots.data(), Roots.ReusedSlotRoots.size());
  }
  try {
    {
      TimerScope T(Stats.CopyTime);
      GcTelemetry::PhaseScope PS(Tel, GcPhase::IncrementalMark);
      // Close the snapshot: fresh roots, the deletion-barrier backlog, and
      // every cycle-era allocation (all young objects, the tenured delta,
      // large objects born mid-cycle), then drain to empty. Dead cycle-era
      // objects ride along as the cycle's one-epoch float.
      M.enableYoungMarking();
      for (Word *Slot : Roots.FreshSlotRoots)
        M.markSeed(*Slot);
      for (Word *Slot : RegRootAddrs)
        M.markSeed(*Slot);
      for (Word *Slot : Roots.ReusedSlotRoots)
        M.markSeed(*Slot);
      for (Word Bits : Satb.values())
        M.markSeed(Bits);
      Satb.clear();
      auto SeedAll = [&](const Space &S) {
        S.walk([&](Word *Payload, Word, bool Forwarded) {
          if (!Forwarded)
            M.markSeed(reinterpret_cast<Word>(Payload));
        });
      };
      SeedAll(*NurseryFrom);
      if (AgedTenuring())
        SeedAll(*NurseryTo);
      TenuredFrom->walk([&](Word *Payload, Word, bool Forwarded) {
        if (!Forwarded && Payload - HeaderWords >= IncTenuredDeltaFrom)
          M.markSeed(reinterpret_cast<Word>(Payload));
      });
      for (Word *Payload : IncNewLOS)
        M.markSeed(reinterpret_cast<Word>(Payload));
      M.markStep(~0ull);
      M.finishIncrementalMark();
    }
    Stats.MarkWorkerFaults += M.workerFaults();
    if (M.serialRecovered())
      ++Stats.MarkSerialRecoveries;

    completeMarkedMajor(M, NeedTenuredBytes);
    ConsecutiveMcFailovers = 0;
  } catch (const MarkPlanFault &) {
    // Plan/pre-commit fault: same failover contract as the stock path —
    // nothing has moved, so the semispace evacuation finishes the
    // collection (and with it the cycle; the incremental mark is lost).
    ++Stats.MajorEngineFailovers;
    if (++ConsecutiveMcFailovers >= Opts.FailoverStickyLimit)
      McStickyDisabled = true;
    if (GcEvent *Ev = Tel.currentEvent())
      Ev->EngineFailover = true;
    LOS.clearMarks();
    FailedOver = true;
  }

  if (TILGC_UNLIKELY(FailedOver))
    runMajorEvacuationFallback(NeedTenuredBytes);

  finishMajorEvent();
}

void GenerationalCollector::satbRecord(Word OldBits) {
  // Tolerates a stale call (group-mode buffers may replay just after a
  // finish tore the cycle down in the same stop-the-world window).
  if (TILGC_UNLIKELY(!IncCycleLive) || !OldBits)
    return;
  Word *P = reinterpret_cast<Word *>(OldBits);
  // Young values need no record: the pre-minor sweep captures every young
  // object's outgoing edges before it can die, and the finish seeds the
  // survivors wholesale.
  if (inNursery(P))
    return;
  // Already black or grey: the snapshot edge is preserved by the mark.
  if (IncMC->incrementalMarked(P) || LOS.isMarked(P))
    return;
  Satb.record(OldBits);
}

void GenerationalCollector::clearIncrementalState() {
  if (!IncCycleLive)
    return;
  IncCycleLive = false;
  SatbMarkingLive = false;
  IncMC.reset();
  Satb.clear();
  IncNewLOS.clear();
  IncTenuredDeltaFrom = nullptr;
  IncNextSliceNurseryBytes = 0;
  IncSliceStrideBytes = 0;
  IncLosBytesSinceSlice = 0;
  disarmGcWatchdog(); // Releases the cycle-long hold taken at start.
}

void GenerationalCollector::auditTricolorInvariant() {
  // Markerless scans cannot resolve stub keys on a marker-bearing stack,
  // and a marker-updating scan between collections would re-anchor frames
  // without redirecting their roots (breaking the §5 reuse invariant), so
  // the audit runs only in markerless configurations.
  if (Opts.UseStackMarkers)
    return;

  // Actual roots right now, via scratch state (the collection-time Roots
  // member must survive untouched for the eventual finish).
  std::vector<Word> RootVals;
  RootSet ARoots;
  auto Harvest = [&](ShadowStack &Stack, RegisterFile &Regs) {
    ScanStats AStats;
    StackScanner::scan(Stack, Regs, nullptr, nullptr, ARoots, AStats,
                       Opts.CompiledScanPlans);
    for (Word *Slot : ARoots.FreshSlotRoots)
      RootVals.push_back(*Slot);
    for (Word *Slot : ARoots.ReusedSlotRoots)
      RootVals.push_back(*Slot);
    for (unsigned R : ARoots.RegRoots)
      RootVals.push_back(Regs[R]);
  };
  Harvest(*Env.Stack, *Env.Regs);
  for (const MutatorContext &C : ExtraContexts)
    Harvest(*C.Stack, *C.Regs);

  auto IsMarked = [&](Word *P) {
    return IncMC->incrementalMarked(P) || LOS.isMarked(P);
  };
  auto InTenuredDelta = [&](Word *P) {
    return TenuredFrom->contains(P) && P - HeaderWords >= IncTenuredDeltaFrom;
  };
  std::unordered_set<const Word *> Grey;
  IncMC->forEachGrey([&](Word *P) { Grey.insert(P); });
  std::unordered_set<const Word *> NewLosSet(IncNewLOS.begin(),
                                             IncNewLOS.end());

  // Simulate the finish drain: seeds are what the finish would seed; the
  // expansion stops at black objects (marked and already scanned — the
  // finish will not rescan them). Visited is therefore exactly the set of
  // objects the finish would still scan given today's mark state.
  std::unordered_set<const Word *> Visited;
  std::vector<Word *> Work;
  auto Consider = [&](Word Bits) {
    if (!Bits)
      return;
    Word *P = reinterpret_cast<Word *>(Bits);
    if (Visited.count(P))
      return;
    if (!Grey.count(P) && IsMarked(P))
      return; // black: retained, but its fields will not be rescanned
    Visited.insert(P);
    Work.push_back(P);
  };
  for (Word Bits : RootVals)
    Consider(Bits);
  for (Word Bits : Satb.values())
    Consider(Bits);
  IncMC->forEachGrey(
      [&](Word *P) { Consider(reinterpret_cast<Word>(P)); });
  auto ConsiderSpace = [&](const Space &S) {
    S.walk([&](Word *Payload, Word, bool Forwarded) {
      if (!Forwarded)
        Consider(reinterpret_cast<Word>(Payload));
    });
  };
  ConsiderSpace(*NurseryFrom);
  if (AgedTenuring())
    ConsiderSpace(*NurseryTo);
  TenuredFrom->walk([&](Word *Payload, Word, bool Forwarded) {
    if (!Forwarded && InTenuredDelta(Payload))
      Consider(reinterpret_cast<Word>(Payload));
  });
  for (Word *Payload : IncNewLOS)
    Consider(reinterpret_cast<Word>(Payload));
  while (!Work.empty()) {
    Word *P = Work.back();
    Work.pop_back();
    forEachPointerField(P, [&](Word *F) { Consider(*F); });
  }

  // Ground truth: the full reachable closure from the actual roots,
  // expanding through everything. Every member must be retained by the
  // finish — already marked, or young/delta/new-LOS (seeded wholesale), or
  // in the simulated scan set. A miss is a lost snapshot edge: the
  // white-behind-black state the SATB barrier exists to prevent.
  std::unordered_set<const Word *> Reach;
  std::vector<Word *> RWork;
  auto Expand = [&](Word Bits) {
    if (!Bits)
      return;
    Word *P = reinterpret_cast<Word *>(Bits);
    if (Reach.insert(P).second)
      RWork.push_back(P);
  };
  for (Word Bits : RootVals)
    Expand(Bits);
  while (!RWork.empty()) {
    Word *P = RWork.back();
    RWork.pop_back();
    forEachPointerField(P, [&](Word *F) { Expand(*F); });
  }
  for (const Word *CP : Reach) {
    Word *P = const_cast<Word *>(CP);
    if (Visited.count(P) || inNursery(P) || InTenuredDelta(P) ||
        NewLosSet.count(P) || IsMarked(P))
      continue;
    fatalError("tilgc: tricolor invariant violated: live object %p is "
               "unreachable by the finishing collection (cycle %llu, after "
               "%llu slices): lost SATB record",
               static_cast<void *>(P),
               static_cast<unsigned long long>(IncCycleCount),
               static_cast<unsigned long long>(IncSliceCount));
  }
}
