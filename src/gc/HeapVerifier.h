//===- gc/HeapVerifier.h - Post-collection heap validation ------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Debug validation of the whole heap: every object in every live space
/// must have a sane (non-forwarded) descriptor, and every pointer field,
/// stack root and register root must point at the payload of a valid
/// object in a live space. Used by tests and by the collectors' optional
/// post-GC verification.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_HEAPVERIFIER_H
#define TILGC_GC_HEAPVERIFIER_H

#include "heap/LargeObjectSpace.h"
#include "heap/Space.h"
#include "object/Object.h"

#include <string>
#include <vector>

namespace tilgc {

class ShadowStack;
class RegisterFile;

/// Collects the address ranges that constitute the live heap and checks
/// object/pointer integrity over them.
class HeapVerifier {
public:
  void addSpace(const Space *S, const char *Name) {
    Spaces.push_back({S, Name});
  }
  void setLOS(const LargeObjectSpace *L) { LOS = L; }

  /// Treat \p Pattern as from-space poison: a pointer slot holding it is
  /// reported as a leaked stale reference (a sharper message than the
  /// misalignment error the pattern would otherwise trip).
  void setPoisonPattern(Word Pattern) {
    Poison = Pattern;
    HasPoison = true;
  }

  /// Walks every object in every space (and the LOS): descriptors must be
  /// valid and every non-null pointer field must target a valid payload.
  /// Returns true on success; on failure, fills \p Error.
  bool verifyHeap(std::string &Error) const;

  /// Checks that a single value is null or a valid object payload.
  bool validPointer(Word Bits, std::string &Error) const;

private:
  struct Entry {
    const Space *S;
    const char *Name;
  };

  bool validPayload(const Word *P) const;
  bool checkObject(Word *Payload, const char *Where,
                   std::string &Error) const;

  std::vector<Entry> Spaces;
  const LargeObjectSpace *LOS = nullptr;
  Word Poison = 0;
  bool HasPoison = false;
};

} // namespace tilgc

#endif // TILGC_GC_HEAPVERIFIER_H
