//===- gc/GcStats.h - Collector statistics ----------------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters and timers reported by the collectors. These back every column
/// of the paper's tables: Total/GC/Client times, NumGC, bytes copied, the
/// GC-stack/GC-copy split of Table 5, and Table 2's allocation
/// characteristics.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_GCSTATS_H
#define TILGC_GC_GCSTATS_H

#include "support/Timer.h"

#include <cstdint>

namespace tilgc {

/// Accumulated collector statistics.
struct GcStats {
  // Collection counts.
  uint64_t NumGC = 0;
  uint64_t NumMajorGC = 0;

  // Allocation accounting (bytes include the two-word headers).
  uint64_t BytesAllocated = 0;
  uint64_t ObjectsAllocated = 0;
  uint64_t RecordBytesAllocated = 0;
  uint64_t ArrayBytesAllocated = 0;

  // Copy accounting.
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0;

  // Live-data accounting (sampled after each collection).
  uint64_t MaxLiveBytes = 0;

  /// Reserved-footprint high-water (all spaces' capacities + live LOS
  /// bytes), sampled at collection boundaries and LOS growth — the peak the
  /// hard cap actually constrains. The mark-compact major's reason to
  /// exist: it needs no to-space reservation, so this stays near 1× live.
  uint64_t MaxFootprintBytes = 0;

  /// Bytes physically relocated by major collections (semispace majors:
  /// everything copied; mark-compact majors: slid runs + promoted
  /// survivors only). The pause-work metric EXPERIMENTS.md tracks.
  uint64_t MajorBytesMoved = 0;

  // Stack-scan accounting.
  uint64_t FramesScanned = 0;
  uint64_t FramesReused = 0;
  uint64_t SlotsVisited = 0;
  uint64_t PlanWordsScanned = 0; ///< Compiled-scan bitmask words tested.
  uint64_t MaxFramesAtGC = 0;
  uint64_t FramesAtGCSum = 0; ///< Numerator of the average stack depth.
  uint64_t NewFramesSum = 0;  ///< Table 2's "New Frames in Stack" numerator.
  /// Collections that contributed to FramesAtGCSum/NewFramesSum — the
  /// denominator of the Table 2 averages. Historically those averages
  /// divided by NumGC, which silently skews the moment any collection
  /// path stops sampling the stack (e.g. an LOS-triggered major); a
  /// dedicated sample count pins numerator and denominator together.
  uint64_t FramesAtGCSamples = 0;

  // Write-barrier accounting.
  uint64_t SSBEntriesProcessed = 0;

  // Card-marking / crossing-map accounting (CardMarking and Hybrid
  // barriers; all zero under pure SSB configurations).
  uint64_t CardsScanned = 0;      ///< Dirty cards walked across all scans.
  uint64_t CardSlotsVisited = 0;  ///< Pointer fields examined in card scans.
  uint64_t CrossingMapUpdates = 0; ///< Objects recorded in the crossing map.
  uint64_t HybridSwitches = 0;    ///< Hybrid barrier SSB→card degradations.
  /// Collection number (NumGC at the time, 1-based) of the first hybrid
  /// switch; 0 when the flood heuristic never tripped.
  uint64_t HybridSwitchEpoch = 0;

  // Pretenuring accounting.
  uint64_t PretenuredBytes = 0;
  uint64_t PretenuredScannedBytes = 0;
  uint64_t PretenuredScanSkippedBytes = 0;

  /// Times the collector exceeded its k*Min budget and grew anyway.
  uint64_t BudgetOverruns = 0;

  // Multi-mutator runtime accounting (all zero in single-mutator mode).
  uint64_t SafepointStops = 0;  ///< Stop-the-world rendezvous completed.
  uint64_t SafepointWaitNs = 0; ///< Total time stoppers waited for parks.
  uint64_t TlabRefills = 0;     ///< TLAB block handouts from the nursery.
  uint64_t TlabPadBytes = 0;    ///< Bytes padded in retired TLAB tails.

  // OOM-protocol and fault-resilience accounting.
  uint64_t HeapExhaustedThrows = 0; ///< Terminal ladder failures surfaced.
  uint64_t EvacWorkerFaults = 0;    ///< Parallel-evacuation workers faulted.
  uint64_t EvacSerialRecoveries = 0; ///< Evacuations finished by serial drain.
  uint64_t MarkWorkerFaults = 0;    ///< Parallel-mark workers faulted.
  uint64_t MarkSerialRecoveries = 0; ///< Marks finished by a serial re-trace.
  /// Majors where a mark-/plan-phase fault (injected or watchdog-detected)
  /// aborted the MarkCompact engine and a semispace evacuation finished the
  /// collection instead.
  uint64_t MajorEngineFailovers = 0;
  /// Dirty-card sweeps that threw and degraded to a full tenured walk.
  uint64_t CardSweepFaults = 0;

  // Time split. StackTime and CopyTime accumulate inside GcTime regions;
  // the remainder of GcTime is bookkeeping (resizing, sweeping).
  Timer GcTime;
  Timer StackTime;
  Timer CopyTime;

  double gcSeconds() const { return GcTime.seconds(); }
  double stackSeconds() const { return StackTime.seconds(); }
  double copySeconds() const { return CopyTime.seconds(); }

  double avgFramesAtGC() const {
    return FramesAtGCSamples ? static_cast<double>(FramesAtGCSum) /
                                   static_cast<double>(FramesAtGCSamples)
                             : 0.0;
  }
  double avgNewFramesAtGC() const {
    return FramesAtGCSamples ? static_cast<double>(NewFramesSum) /
                                   static_cast<double>(FramesAtGCSamples)
                             : 0.0;
  }

  /// Tolerated timer misuses across the three split timers (see
  /// support/Timer.h's misuse discipline).
  uint64_t timerMisuses() const {
    return GcTime.misuses() + StackTime.misuses() + CopyTime.misuses();
  }
};

} // namespace tilgc

#endif // TILGC_GC_GCSTATS_H
