//===- gc/HeapError.h - Structured heap exhaustion error --------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HeapExhausted: the terminal rung of the OOM escalation ladder. Thrown by
/// a collector when an allocation cannot be satisfied even after a minor
/// collection, a major collection, and bounded growth under the configured
/// hard limit. Carries a heap-state dump (per-space occupancy, GC counts,
/// top live allocation sites) captured at the point of failure. The heap is
/// left intact and verifiable: the ladder refuses *before* moving objects,
/// never halfway through a copy, so a mutator may catch this, release
/// roots, and continue.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_HEAPERROR_H
#define TILGC_GC_HEAPERROR_H

#include <cstdint>
#include <exception>
#include <string>
#include <utility>

namespace tilgc {

/// How far up the OOM escalation ladder the collector climbed before giving
/// up; carried by HeapExhausted so caught exhaustion is diagnosable without
/// a debugger.
enum class OomStage : uint8_t {
  /// A retry after a minor collection still failed (and no major was
  /// applicable — semispace collectors have a single generation).
  RetryAfterMinor,
  /// A retry after a full major collection still failed.
  RetryAfterMajor,
  /// Even the last-resort direct tenured allocation failed.
  TenuredFallback,
  /// A pre-flight check refused to start a copying major: its transient
  /// to-space peak would overrun the hard limit (heap left untouched).
  HardCapPreflight,
};

inline const char *oomStageName(OomStage S) {
  switch (S) {
  case OomStage::RetryAfterMinor:
    return "retry-after-minor";
  case OomStage::RetryAfterMajor:
    return "retry-after-major";
  case OomStage::TenuredFallback:
    return "tenured-fallback";
  case OomStage::HardCapPreflight:
    return "hard-cap-preflight";
  }
  return "unknown";
}

class HeapExhausted : public std::exception {
public:
  HeapExhausted(uint64_t RequestedBytes, OomStage StageReached,
                std::string HeapDump)
      : Requested(RequestedBytes), Stage(StageReached),
        Dump(std::move(HeapDump)) {
    Message = "tilgc: heap exhausted: cannot satisfy a request for " +
              std::to_string(Requested) +
              " bytes within the configured hard limit (ladder stage: " +
              oomStageName(Stage) + ")\n" + Dump;
  }

  const char *what() const noexcept override { return Message.c_str(); }

  /// Bytes the failing request asked for.
  uint64_t requestedBytes() const { return Requested; }

  /// The escalation-ladder stage at which the collector gave up.
  OomStage stageReached() const { return Stage; }

  /// The heap-state dump captured when the ladder gave up.
  const std::string &heapDump() const { return Dump; }

private:
  uint64_t Requested;
  OomStage Stage;
  std::string Dump;
  std::string Message;
};

} // namespace tilgc

#endif // TILGC_GC_HEAPERROR_H
