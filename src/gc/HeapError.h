//===- gc/HeapError.h - Structured heap exhaustion error --------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// HeapExhausted: the terminal rung of the OOM escalation ladder. Thrown by
/// a collector when an allocation cannot be satisfied even after a minor
/// collection, a major collection, and bounded growth under the configured
/// hard limit. Carries a heap-state dump (per-space occupancy, GC counts,
/// top live allocation sites) captured at the point of failure. The heap is
/// left intact and verifiable: the ladder refuses *before* moving objects,
/// never halfway through a copy, so a mutator may catch this, release
/// roots, and continue.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_HEAPERROR_H
#define TILGC_GC_HEAPERROR_H

#include <cstdint>
#include <exception>
#include <string>
#include <utility>

namespace tilgc {

class HeapExhausted : public std::exception {
public:
  HeapExhausted(uint64_t RequestedBytes, std::string HeapDump)
      : Requested(RequestedBytes), Dump(std::move(HeapDump)) {
    Message = "tilgc: heap exhausted: cannot satisfy a request for " +
              std::to_string(Requested) +
              " bytes within the configured hard limit\n" + Dump;
  }

  const char *what() const noexcept override { return Message.c_str(); }

  /// Bytes the failing request asked for.
  uint64_t requestedBytes() const { return Requested; }

  /// The heap-state dump captured when the ladder gave up.
  const std::string &heapDump() const { return Dump; }

private:
  uint64_t Requested;
  std::string Dump;
  std::string Message;
};

} // namespace tilgc

#endif // TILGC_GC_HEAPERROR_H
