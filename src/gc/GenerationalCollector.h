//===- gc/GenerationalCollector.h - Two-generation collector ----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's generational collector (§2.1) with all of the paper's
/// optional machinery:
///
///  * two generations: a nursery bounded by the secondary cache size (512K)
///    and a tenured generation resized toward a target liveness of 0.3;
///  * immediate promotion of all minor-collection survivors (the default),
///    or the aged-tenuring ablation of §7.2 where survivors bounce between
///    nursery semispaces until they have survived PromoteAgeThreshold minor
///    collections;
///  * a sequential store buffer write barrier (or the card-marking
///    alternative suggested for Peg);
///  * a mark-sweep large-object space for big arrays;
///  * generational stack collection (§5): stack markers + scan cache, so
///    minor collections skip unchanged frames entirely;
///  * profile-driven pretenuring (§6): objects from designated sites are
///    allocated directly into the tenured generation; the freshly
///    pretenured region is remembered and scanned for young pointers at the
///    next collection — except for §7.2 scan-eliminated sites, whose
///    objects provably reference only pretenured data.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_GENERATIONALCOLLECTOR_H
#define TILGC_GC_GENERATIONALCOLLECTOR_H

#include "gc/Collector.h"
#include "heap/CardTable.h"
#include "heap/LargeObjectSpace.h"
#include "heap/RegionManager.h"
#include "heap/Space.h"
#include "heap/StoreBuffer.h"
#include "support/Watchdog.h"

#include <algorithm>
#include <memory>
#include <vector>

namespace tilgc {

class Evacuator;
class MarkCompact;
class WorkerPool;

/// Two-generation copying collector with LOS, SSB/cards, stack markers,
/// pretenuring and tenure-policy options.
class GenerationalCollector : public Collector {
public:
  /// The paper's SSB (unconditional, duplicate-keeping), the card table
  /// it suggests for Peg, a filtering SSB that tests for an actual
  /// old->young store before recording (the classic conditional barrier
  /// the paper's §9 lists under "write barrier techniques"), or the
  /// adaptive hybrid that starts as an SSB and degrades to card marking
  /// when a flood heuristic trips (Peg's 2.97M updates get card behaviour
  /// automatically; quiet workloads keep the SSB's precise slots).
  enum class BarrierKind {
    SequentialStoreBuffer,
    CardMarking,
    FilteredStoreBuffer,
    Hybrid,
  };

  /// How major collections reclaim the tenured generation. Semispace is
  /// the paper's engine: evacuate everything into a standing to-space
  /// reservation (2× peak footprint, O(live) bytes moved every major).
  /// MarkCompact is the region-structured engine beyond the paper: parallel
  /// mark, per-region liveness, and an in-place slide that leaves dense
  /// regions pinned — no to-space reservation, and only sparse regions'
  /// bytes move.
  enum class MajorGcKind {
    Semispace,
    MarkCompact,
  };

  struct Options {
    /// Total memory budget: the paper's k*Min.
    size_t BudgetBytes = 64u << 20;
    /// Hard cap on total heap footprint. 0 = unlimited (the paper's
    /// behavior: the k*Min budget is soft, overruns are counted but never
    /// fatal). When set, the OOM escalation ladder throws a catchable
    /// HeapExhausted instead of growing past it.
    size_t HardLimitBytes = 0;
    /// Nursery bound (paper: the 512K secondary cache; "for benchmarking
    /// reasons the nursery is sometimes made significantly smaller" — the
    /// budget clamps it further).
    size_t NurseryLimitBytes = 512u << 10;
    /// Tenured-generation resize target (paper: 0.3).
    double TenuredTargetLiveness = 0.3;
    /// Arrays at least this big go to the large-object space.
    size_t LargeObjectThresholdBytes = 4096;
    /// Generational stack collection (§5).
    bool UseStackMarkers = false;
    unsigned MarkerPeriod = 25;
    /// §7.1 dynamic marker placement: adapt the period to the observed
    /// fresh-frame count per collection.
    bool AdaptiveMarkerPlacement = false;
    /// Scan stack frames through compiled ScanPlans (pointer bitmasks)
    /// instead of interpreting trace tables slot by slot. Same roots; false
    /// restores the paper's interpretive scan for comparison.
    bool CompiledScanPlans = true;
    /// Write barrier flavor.
    BarrierKind Barrier = BarrierKind::SequentialStoreBuffer;
    /// 1 = promote-all (the paper's collector); N>1 = survivors are
    /// promoted only after N minor collections (ablation, §7.2 discussion).
    unsigned PromoteAgeThreshold = 1;
    /// Profile-derived pretenuring decisions (§6); empty disables.
    std::vector<PretenureDecision> Pretenure;
    /// Debug: at each minor collection, assert that every skipped (reused)
    /// stack root points outside the nursery. Costs O(reused roots).
    bool VerifyReuseInvariant = false;
    /// Debug: walk and validate the whole heap after every collection.
    /// Legacy toggle, folded into the effective VerifyLevel as level >= 1.
    bool VerifyHeapAfterGC = false;
    /// Leveled heap invariant auditing (active in every build mode):
    ///   0 = off;
    ///   1 = post-GC heap walk (headers, pointer validity, no stale
    ///       forwarding pointers);
    ///   2 = + pre-minor remembered-set completeness audit (every
    ///       tenured/LOS slot holding a young pointer must be covered by
    ///       the barrier output, the cross-generation set, or a scanned
    ///       pretenured run — §7.2 NoScan runs deliberately excluded);
    ///   3 = + from-space poisoning after evacuation with poison-integrity
    ///       and poison-leak checks.
    /// Levels >= 2 cost O(live tenured data) per minor collection.
    unsigned VerifyLevel = 0;
    /// Name for diagnostics (heap dumps, fatal errors).
    std::string Name;
    /// Evacuation threads. 1 = the serial engine (bit-identical paper
    /// reproduction); >1 = the work-stealing ParallelEvacuator.
    unsigned GcThreads = 1;
    /// Major-collection engine. Semispace keeps the paper reproduction
    /// bit-identical; MarkCompact trades it for ~1× footprint and
    /// move-only-what-pays compaction.
    MajorGcKind MajorGc = MajorGcKind::Semispace;
    /// GC-cycle watchdog deadline in microseconds; 0 (the default) leaves
    /// the supervisor disarmed and free on every path. When set, a
    /// supervisor thread barks (GcObserver::onWatchdogBark + trace
    /// instant) if any single collection outlives the deadline, then
    /// escalates per WatchdogEscalation.
    uint64_t GcDeadlineMicros = 0;
    /// Safepoint-rendezvous watchdog deadline in microseconds; 0 =
    /// disarmed. Consumed by the multi-mutator runtime (MutatorGroup /
    /// SafepointCoordinator); carried here so one options struct describes
    /// the whole supervision policy.
    uint64_t SafepointDeadlineMicros = 0;
    /// What a watchdog bark escalates to. Report: diagnostic only.
    /// Recover: additionally request a cooperative abort — a mark-/plan-
    /// phase abort in MarkCompact fails the major over to a semispace
    /// evacuation. Fatal: terminate with the stall diagnostic.
    WatchdogPolicy WatchdogEscalation = WatchdogPolicy::Recover;
    /// After this many consecutive major-engine failovers, MarkCompact is
    /// sticky-disabled and every later major runs the semispace fallback
    /// (the MMTk lesson: when a plan keeps failing, switch plans).
    unsigned FailoverStickyLimit = 3;
    /// Pause-budget SLO mode: when non-zero (and MajorGc == MarkCompact),
    /// major collections run incrementally — the MARK phase is sliced into
    /// increments of at most this many microseconds, scheduled at
    /// allocation safepoints, with an SATB deletion barrier keeping the
    /// trace sound between slices. The cycle is finished by one
    /// stop-the-world collection when tenured pressure (or any forced
    /// major) demands it. 0 (the default) disables the mode entirely:
    /// every incremental path is gated off and results are bit-identical
    /// to stock MarkCompact.
    uint64_t MaxPauseMicros = 0;
  };

  GenerationalCollector(const CollectorEnv &Env, const Options &Opts);
  ~GenerationalCollector() override;

  Word *allocate(ObjectKind Kind, uint32_t LenWords, uint32_t PtrMask,
                 uint32_t SiteId) override;
  void writeBarrier(Word *Slot) override;
  void collect(bool Major) override;
  uint64_t liveBytesAfterLastGC() const override { return LiveBytes; }
  MarkerManager *markerManager() override {
    return Opts.UseStackMarkers ? &Markers : nullptr;
  }
  bool verifyHeapNow(std::string &Error) const override {
    return runVerifier(Error);
  }

  /// Introspection for tests.
  bool inNursery(const Word *P) const {
    return NurseryFrom->contains(P) ||
           (AgedTenuring() && NurseryTo->contains(P));
  }
  bool inTenured(const Word *P) const { return TenuredFrom->contains(P); }
  bool inLOS(const Word *P) const { return LOS.contains(P); }
  const LargeObjectSpace &largeObjectSpace() const { return LOS; }
  const StoreBuffer &storeBuffer() const { return SSB; }
  const CardTable &cardTable() const { return Cards; }
  const CrossingMap &crossingMap() const { return CrossMap; }
  size_t nurseryCapacity() const { return NurseryFrom->capacityBytes(); }

  /// Hybrid-barrier flood heuristic: the barrier degrades SSB→cards when
  /// the pending SSB grows past HybridFloodFactor × the covered space's
  /// card count (an SSB already denser than the dirtiest possible card
  /// table has lost its precision advantage).
  static constexpr uint64_t HybridFloodFactor = 4;
  /// True once the Hybrid barrier has degraded to card marking (sticky for
  /// the collector's lifetime; always false for other barrier kinds).
  bool hybridInCardMode() const { return HybridCardMode; }
  /// Current SSB-entry count that trips the hybrid switch.
  uint64_t hybridFloodThreshold() const { return HybridFloodEntries; }

  /// Mutator fast path: non-pretenured sites bump-allocate into the
  /// nursery; pretenured sites (and large arrays, via the size bound) take
  /// the full allocate() path.
  bool siteAllowsInlineAlloc(uint32_t SiteId) const override {
    return SiteId >= PretenureFlag.size() || PretenureFlag[SiteId] == 0;
  }
  Space *inlineAllocSpace(size_t &MaxBytes) override {
    MaxBytes = Opts.LargeObjectThresholdBytes;
    // While an incremental cycle is live every allocation must reach
    // allocate() so the slice scheduler can run: disabling the fast path
    // (the mutator re-validates per GC epoch, and every slice bumps the
    // epoch) is what makes allocation the slice safepoint.
    if (TILGC_UNLIKELY(IncCycleLive))
      return nullptr;
    return NurseryFrom;
  }
  Space *tlabAllocSpace(size_t &MaxBytes) override {
    MaxBytes = Opts.LargeObjectThresholdBytes;
    // Group runtime: TLABs stay live during an incremental cycle (a
    // per-allocation poll would serialize every thread through the stop-
    // the-world path); instead a refill fails exactly when a slice is due,
    // funneling one thread into allocateStopped -> one slice per stop.
    if (TILGC_UNLIKELY(IncCycleLive) && incrementalSliceDue())
      return nullptr;
    return NurseryFrom;
  }

  /// SATB deletion barrier (pause-budget incremental mode): records the
  /// old value of an overwritten pointer slot unless it is null, young
  /// (young objects are allocate-black for the cycle and never traced
  /// between slices), or already marked.
  void satbRecord(Word OldBits) override;

  /// The GC-cycle supervisor (tests / diagnostics; idle unless
  /// Opts.GcDeadlineMicros is set).
  Watchdog &gcWatchdog() { return WD; }

  /// Incremental-cycle introspection (tests / diagnostics).
  bool incrementalCycleLive() const { return IncCycleLive; }
  uint64_t incrementalSlices() const { return IncSliceCount; }
  uint64_t incrementalCycles() const { return IncCycleCount; }
  size_t satbPending() const { return Satb.size(); }
  /// True once FailoverStickyLimit consecutive failovers disabled the
  /// mark-compact engine for this collector's lifetime.
  bool markCompactDisabled() const { return McStickyDisabled; }

private:
  bool AgedTenuring() const { return Opts.PromoteAgeThreshold > 1; }

  /// One minor collection; may chain into a major one under tenured
  /// pressure. \p NeedTenuredBytes is extra tenured room the caller
  /// requires afterwards; \p Trigger is recorded in the telemetry event.
  void doMinor(size_t NeedTenuredBytes, GcTrigger Trigger);
  void doMajor(size_t NeedTenuredBytes, GcTrigger Trigger);
  /// The paper's semispace evacuation major (Opts.MajorGc == Semispace).
  void doMajorSemispace(size_t NeedTenuredBytes, GcTrigger Trigger);
  /// The region mark-compact major (Opts.MajorGc == MarkCompact). Compacts
  /// in place when the marked-live plan fits; otherwise falls back to one
  /// evacuating grow-and-swap (releasing the old space afterwards, so the
  /// 2× reservation is transient rather than standing).
  void doMajorMarkCompact(size_t NeedTenuredBytes, GcTrigger Trigger);
  /// Shared semispace-evacuation body: grows TenuredTo to at least \p
  /// ReserveBytes, evacuates {nursery spaces, TenuredFrom} into it (serial
  /// or parallel), merges stats/telemetry, sweeps deaths, swaps the tenured
  /// spaces and clears collection-scoped state. Used by the semispace major
  /// and the mark-compact growth fallback.
  void evacuateMajorInto(size_t ReserveBytes);
  /// Samples Stats.MaxFootprintBytes against the current footprint.
  void noteFootprint();

  /// Closes out a major collection event (verify, deterministic event
  /// fields, endCollection, footprint) — shared by the mark-compact
  /// success/failover/sticky paths.
  void finishMajorEvent();

  /// Semispace-for-this-collection failover/fallback body: hard-cap
  /// pre-flight, evacuating swap, transient to-space released, region
  /// overlay re-bound. Used when a MarkPlanFault aborts the mark-compact
  /// engine and for every major after a sticky disable.
  void runMajorEvacuationFallback(size_t NeedTenuredBytes);

  /// Arms/disarms the per-cycle GC watchdog (no-ops when
  /// Opts.GcDeadlineMicros == 0).
  void armGcWatchdog();
  void disarmGcWatchdog();

  /// RAII window for the GC-cycle watchdog: one collection event.
  class GcWatchScope {
  public:
    explicit GcWatchScope(GenerationalCollector &C) : C(C) {
      C.armGcWatchdog();
    }
    ~GcWatchScope() { C.disarmGcWatchdog(); }
    GcWatchScope(const GcWatchScope &) = delete;
    GcWatchScope &operator=(const GcWatchScope &) = delete;

  private:
    GenerationalCollector &C;
  };

  /// Scans the stack into Roots, accounting time and counters.
  void scanStackForRoots();

  /// Enumerates write-barrier output, remembered pretenured regions and
  /// new large objects — the minor collection's heap-side roots — into
  /// \p Fn(Word *Slot). Shared by the serial path (Fn forwards the slot
  /// immediately) and the parallel one (Fn queues it as a root batch).
  template <typename SlotFn> void forEachOldToYoungRoot(SlotFn Fn);

  /// True for the barrier kinds that maintain the card table + crossing
  /// map (CardMarking always; Hybrid from construction, so promotions that
  /// precede a switch are already covered when the switch happens).
  bool usesCardBarrier() const {
    return Opts.Barrier == BarrierKind::CardMarking ||
           Opts.Barrier == BarrierKind::Hybrid;
  }
  /// True while stores actually dirty cards (CardMarking, or Hybrid after
  /// its flood switch).
  bool cardModeActive() const {
    return Opts.Barrier == BarrierKind::CardMarking || HybridCardMode;
  }
  /// Recomputes the hybrid flood threshold from the covered space's card
  /// count (called whenever the card table re-attaches).
  void recomputeHybridThreshold() {
    HybridFloodEntries = HybridFloodFactor * Cards.numCards();
  }
  /// The Hybrid barrier's SSB→card degradation: replays pending SSB
  /// entries into card marks (or the LOS side buffer) and flips the
  /// barrier into card mode for the rest of the collector's lifetime.
  void hybridSwitchToCards();
  /// Scans all dirty cards into \p Fn, striping across the worker pool
  /// when the dirty count justifies it. Emission order is identical to a
  /// serial full scan for any stripe partition.
  template <typename SlotFn> void sweepDirtyCards(SlotFn Fn);

  /// Registers a pretenured allocation for the next region scan.
  void notePretenuredRun(Word *Payload, Word Descriptor, bool NoScan);

  /// nursery + both tenured spaces + LOS footprint.
  size_t footprintBytes() const;

  /// VerifyLevel with the legacy VerifyHeapAfterGC toggle folded in.
  unsigned effectiveVerifyLevel() const {
    return Opts.VerifyLevel > (Opts.VerifyHeapAfterGC ? 1u : 0u)
               ? Opts.VerifyLevel
               : (Opts.VerifyHeapAfterGC ? 1u : 0u);
  }

  /// Whether this collection should poison evacuated from-space
  /// (VerifyLevel >= 3 or the FromSpacePoison fault point).
  bool shouldPoison() const;

  /// Builds the verifier over the live spaces and runs it.
  bool runVerifier(std::string &Error) const;

  /// Level >= 1 post-collection heap validation; aborts on corruption.
  void maybeVerifyHeap(const char *Phase) const;

  /// Level >= 2 pre-minor audit: every tenured/LOS slot holding a young
  /// pointer must be covered by the roots the minor collection is about to
  /// process. Aborts (fatalError) on a missed barrier.
  void auditRememberedSets();

  // --- Pause-budget incremental major cycle (Opts.MaxPauseMicros > 0) ---

  /// Whether the incremental mode is available at all (budget set,
  /// mark-compact engine selected and not sticky-disabled).
  bool incrementalModeActive() const {
    return Opts.MaxPauseMicros > 0 &&
           Opts.MajorGc == MajorGcKind::MarkCompact && !McStickyDisabled;
  }
  /// Whether enough allocation has accumulated for the next slice. Two
  /// pacing legs: nursery growth past the watermark, and LOS bytes since
  /// the last slice (an LOS-heavy phase barely grows the nursery, so the
  /// watermark alone would leave whole cycles nearly sliceless).
  bool incrementalSliceDue() const {
    // Relaxed frontier read: in group mode this runs on the TLAB refill
    // path while peers CAS block grants off the same nursery. The check is
    // advisory — a stale value shifts the slice by one refill at most.
    return NurseryFrom->usedBytesRelaxed() >= IncNextSliceNurseryBytes ||
           (IncSliceStrideBytes &&
            IncLosBytesSinceSlice >= IncSliceStrideBytes);
  }
  /// Allocation distance between slices: 1/128 of a nursery load, with a
  /// floor so tiny test heaps don't slice every few objects. The divisor
  /// is sized for the pause SLO's tail math — a cycle's stop-the-world
  /// finish can only sit above the p99 if slices outnumber finishes by
  /// well over two orders of magnitude (scheduler preemption inflates a
  /// fraction of slice wall-times, and those outliers stack with the
  /// finishes at the 1% boundary), and high-promotion workloads get only
  /// a couple of nursery loads of tenured runway per cycle, so each load
  /// must contribute ~128 slices.
  size_t incrementalStrideBytes() const {
    return std::max<size_t>(256, NurseryFrom->capacityBytes() / 128);
  }
  /// Opens a cycle: creates the incremental engine, snapshots the current
  /// root values as mark seeds, raises the SATB barrier, and takes a
  /// cycle-long watchdog hold. \p RescanRoots distinguishes the two legal
  /// call sites: false at a minor collection's tail (the minor's scan is
  /// current and every root was just fixed up), true from the LOS
  /// soft-pressure path where the stack must be re-scanned first (markerless
  /// configurations only — a marker-updating scan outside a collection
  /// would re-anchor frames without redirecting their roots, breaking §5).
  void startIncrementalCycle(bool RescanRoots);
  /// allocate()-entry poll: runs one slice if due.
  void incrementalTick();
  /// One bounded mark increment: its own major GcEvent, SATB drain,
  /// budgeted grey-draining, optional tricolor audit, recover-request
  /// poll (a recover bark finishes the cycle stop-the-world).
  void runIncrementalSlice();
  /// Stop-the-world cycle completion: fresh root scan, final seeds (roots,
  /// SATB backlog, cycle-era allocations), full drain, then the shared
  /// post-mark body. Any forced major during a live cycle lands here.
  void finishIncrementalCycle(size_t NeedTenuredBytes, GcTrigger Trigger);
  /// Everything after a completed MARK phase, shared verbatim between
  /// doMajorMarkCompact and finishIncrementalCycle: plan, fit-or-grow
  /// decision, compact or evacuating grow, stats and space resets.
  void completeMarkedMajor(MarkCompact &M, size_t NeedTenuredBytes);
  /// VerifyLevel >= 2 between-slice audit: simulates the finish drain
  /// (roots + grey + SATB + cycle-era allocations, never re-expanding
  /// through already-black objects) and checks every truly-reachable
  /// object would be retained. Catches lost SATB records.
  void auditTricolorInvariant();
  /// Tears down cycle state (idempotent; the finish's unwind guard).
  void clearIncrementalState();

  // Collector heap-dump hooks.
  void appendHeapState(std::string &Out) const override;
  void forEachLiveObject(
      const std::function<void(Word *, Word)> &Fn) const override;

  Options Opts;
  Space NurseryA, NurseryB;
  Space *NurseryFrom = &NurseryA;
  Space *NurseryTo = &NurseryB; ///< Reserved only under aged tenuring.
  Space TenuredA, TenuredB;
  Space *TenuredFrom = &TenuredA;
  Space *TenuredTo = &TenuredB;
  LargeObjectSpace LOS;
  StoreBuffer SSB;
  CardTable Cards;
  CrossingMap CrossMap; ///< Object starts for TenuredFrom's cards.
  /// Region overlay over TenuredFrom (mark-compact mode only). Re-attached
  /// whenever the tenured space is re-reserved (growth fallback), under the
  /// same epoch-binding contract as the card table and crossing map.
  RegionManager Regions;
  std::vector<Word *> LOSDirtySlots; ///< Card-mode overflow for LOS slots.
  MarkerManager Markers;
  ScanCache Cache;

  /// Per-site pretenure decision: 0 = no, 1 = pretenure, 2 = pretenure and
  /// skip the region scan (§7.2).
  std::vector<uint8_t> PretenureFlag;

  /// Contiguous runs of tenured space allocated into since the last
  /// collection (paper: "we remember the area of the older generation that
  /// has been directly allocated into and scan this region").
  struct Run {
    Word *Begin; ///< First object header word.
    Word *End;   ///< One past the last object.
    bool NoScan;
  };
  std::vector<Run> Runs;

  /// Large objects allocated since the last collection; scanned for young
  /// pointers at the next minor collection (their initializing stores
  /// bypass the barrier, like the pretenured region's).
  std::vector<Word *> NewLargeObjects;

  /// Aged tenuring only: old-generation slots that point into the young
  /// generation because *promotion* created the edge (no mutator barrier
  /// saw it). Rebuilt at every minor collection; cleared by majors.
  std::vector<Word *> CrossGenSlots;

  /// Capacity-reusing scratch: the heap-side minor roots (barrier output,
  /// pretenured regions, new large objects) gathered per collection into
  /// one contiguous span for the batched root pipeline.
  std::vector<Word *> RootBatch;
  /// Capacity-reusing scratch for the evacuator's CrossGenOut.
  std::vector<Word *> MinorCrossGen;

  uint64_t LiveBytes = 0;
  uint64_t LOSAllocSinceGC = 0;
  /// Stats.PretenuredBytes watermark at the end of the previous collection;
  /// the telemetry event reports the per-collection delta.
  uint64_t PretenuredBytesAtLastGC = 0;
  /// Stats.CrossingMapUpdates watermark (same per-collection-delta role).
  uint64_t CrossingUpdatesAtLastGC = 0;
  /// Hybrid barrier state: sticky card-mode flag, the per-event "switched
  /// since the last collection" latch, and the current flood threshold.
  bool HybridCardMode = false;
  bool HybridSwitchedSinceGC = false;
  uint64_t HybridFloodEntries = 0;
  /// Parallel card sweep: stripes with at least this many dirty cards in
  /// total go to the worker pool; below it the serial scan is cheaper than
  /// the fork/join.
  static constexpr size_t ParallelSweepMinDirtyCards = 64;
  /// Per-worker scratch for the parallel card sweep (capacity reused).
  std::vector<std::vector<Word *>> SweepScratch;
  /// True while TenuredTo sits idle fully poisoned (checked for wild
  /// writes at the next major's entry).
  bool TenuredToPoisonValid = false;
  /// Present only when Opts.GcThreads > 1.
  std::unique_ptr<WorkerPool> Pool;
  /// GC-cycle supervisor; its thread starts lazily on the first armed
  /// window, so a zero deadline never pays for it.
  Watchdog WD;
  /// Consecutive majors where the mark-compact engine aborted and the
  /// semispace fallback finished the collection. Reset by any MC success.
  unsigned ConsecutiveMcFailovers = 0;
  /// Sticky: set once ConsecutiveMcFailovers reaches FailoverStickyLimit.
  bool McStickyDisabled = false;
  /// Arm nesting depth: a tenured-pressure major chained inside a minor
  /// keeps the minor's watchdog window instead of re-arming.
  unsigned WatchDepth = 0;

  // --- Pause-budget incremental cycle state (Opts.MaxPauseMicros > 0) ---
  /// True from startIncrementalCycle() to the cycle's finish/teardown.
  bool IncCycleLive = false;
  /// The cycle's engine: seeded at start, fed by slices, completed (plan +
  /// compact) by the finishing collection.
  std::unique_ptr<MarkCompact> IncMC;
  /// SATB deletion buffer: old values of pointer slots overwritten while
  /// the cycle is live; drained into mark seeds at each slice.
  SatbBuffer Satb;
  /// Trigger recorded on slice events (the pressure that opened the cycle).
  GcTrigger IncTrigger = GcTrigger::TenuredPressure;
  /// Nursery-allocation pacing: a slice is due when the nursery has grown
  /// past this watermark; reset after each slice and each minor.
  size_t IncNextSliceNurseryBytes = 0;
  /// One stride of the slice schedule (~1/256 nursery load), recomputed at
  /// cycle start, after each slice, and at each minor's tail.
  size_t IncSliceStrideBytes = 0;
  /// Large-object bytes allocated since the last slice (the second pacing
  /// leg of incrementalSliceDue).
  size_t IncLosBytesSinceSlice = 0;
  /// Tenured frontier at cycle start: [here, frontier) is the cycle-era
  /// delta (promotions + pretenured allocations), seeded at finish.
  Word *IncTenuredDeltaFrom = nullptr;
  /// LOS payloads allocated during the cycle (NewLargeObjects clears at
  /// every minor, so the cycle keeps its own union), seeded at finish.
  std::vector<Word *> IncNewLOS;
  /// Lifetime counters (tests / bench).
  uint64_t IncSliceCount = 0;
  uint64_t IncCycleCount = 0;
};

} // namespace tilgc

#endif // TILGC_GC_GENERATIONALCOLLECTOR_H
