//===- gc/Evacuator.h - Cheney copying engine -------------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The copying engine shared by both collectors: Cheney's algorithm
/// (Cheney 1970) generalized to
///
///  * up to three from-spaces (nursery, nursery to-space, tenured
///    from-space — a major collection evacuates them all at once),
///  * an optional second destination for the aged-tenuring ablation policy
///    (survivors below the age threshold are copied back to the young
///    generation instead of being promoted),
///  * mark-and-push handling of the non-moving large-object space during
///    major collections, and
///  * optional heap-profiler accounting (copied bytes, survived-first
///    counts, referent-site edges for the §7.2 scan-elimination analysis).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_EVACUATOR_H
#define TILGC_GC_EVACUATOR_H

#include "heap/CrossingMap.h"
#include "heap/LargeObjectSpace.h"
#include "heap/Space.h"
#include "object/Object.h"
#include "profile/HeapProfiler.h"

#include <array>
#include <cstdio>
#include <cstdint>
#include <vector>

namespace tilgc {

class GcTelemetry;

/// One evacuation pass: forward roots with forwardSlot(), then drain().
class Evacuator {
public:
  struct Config {
    /// Spaces being evacuated (null entries ignored).
    std::array<Space *, 3> From = {nullptr, nullptr, nullptr};
    /// Default destination (the tenured generation / the to-space).
    Space *Dest = nullptr;
    /// Aged-tenuring policy: survivors whose bumped age is below
    /// PromoteAgeThreshold are copied here instead of Dest. Null for the
    /// paper's promote-all policy.
    Space *DestYoung = nullptr;
    unsigned PromoteAgeThreshold = 1;
    /// Large-object space; traced (marked + scanned) only when TraceLOS.
    LargeObjectSpace *LOS = nullptr;
    bool TraceLOS = false;
    /// Optional profiling hooks.
    HeapProfiler *Profiler = nullptr;
    /// Aged tenuring only: collects every slot (outside the from-spaces
    /// and the young destination) whose forwarded target stayed in the
    /// young generation. Promotion creates old->young edges no mutator
    /// barrier ever saw; the collector must remember them itself.
    std::vector<Word *> *CrossGenOut = nullptr;
    /// True when a nursery is among From: age-0 survivors count as having
    /// survived their first collection.
    bool CountSurvivedFirst = false;
    /// Optional telemetry plane. The serial engine ignores it (the
    /// collector's phase scopes cover it); the parallel engine stamps
    /// per-worker spans into the in-flight event when armed.
    GcTelemetry *Telemetry = nullptr;
    /// Optional object-start crossing map covering Dest. When set, every
    /// object copied into Dest is recorded so later dirty-card scans can
    /// find object starts (CardMarking / Hybrid barriers).
    CrossingMap *CrossDest = nullptr;
  };

  explicit Evacuator(const Config &C);

  /// If *Slot points into a from-space, copies the object (once) and
  /// redirects the slot. If it points into the LOS and TraceLOS is set,
  /// marks the object and queues it for scanning.
  void forwardSlot(Word *Slot) {
    Word Bits = *Slot;
    if (!Bits)
      return;
    Word *P = reinterpret_cast<Word *>(Bits);
    if (inFromSpace(P)) {
      *Slot = reinterpret_cast<Word>(copy(P));
      if (C.CrossGenOut &&
          C.DestYoung->contains(reinterpret_cast<Word *>(*Slot)) &&
          !C.DestYoung->contains(Slot) && !inFromSpace(Slot))
        C.CrossGenOut->push_back(Slot);
      return;
    }
    if (C.TraceLOS && C.LOS->contains(P) && C.LOS->mark(P))
      LOSWork.push_back(P);
  }

  /// Forwards a contiguous span of root slots. The batched root pipeline:
  /// collectors hand whole RootSet vectors (and gathered heap-root batches)
  /// here instead of looping forwardSlot at every call site.
  void forwardRootSpan(Word *const *Slots, size_t Count) {
    for (size_t I = 0; I < Count; ++I)
      forwardSlot(Slots[I]);
  }

  /// Processes gray objects (Cheney scan of the destinations plus the LOS
  /// worklist) until no work remains.
  void drain();

  uint64_t bytesCopied() const { return BytesCopied; }
  uint64_t objectsCopied() const { return ObjectsCopied; }
  uint64_t crossingMapUpdates() const { return CrossingUpdates; }

private:
  /// From-space bounds are cached in plain members at construction: the
  /// per-slot test is the hottest load in a collection, and chasing
  /// Space* -> Base/Limit through the config array costs three dependent
  /// loads per query against zero for values the compiler can keep in
  /// registers across the scan loop.
  bool inFromSpace(const Word *P) const {
    for (unsigned I = 0; I < NumFrom; ++I)
      if (P >= FromLo[I] && P < FromHi[I])
        return true;
    return false;
  }

  Word *copy(Word *P);
  template <bool WithProfiler> void scanObject(Word *Payload);
  template <bool WithProfiler> void drainImpl();

  Config C;
  const Word *FromLo[3];
  const Word *FromHi[3];
  unsigned NumFrom = 0;
  Word *ScanDest;
  Word *ScanYoung;
  std::vector<Word *> LOSWork;
  uint64_t BytesCopied = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t CrossingUpdates = 0;
};

} // namespace tilgc

#endif // TILGC_GC_EVACUATOR_H
