//===- gc/ParallelEvacuator.h - Work-stealing copy engine -------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel twin of gc/Evacuator.h: the same Cheney evacuation
/// semantics, executed by GcThreads workers on a work-stealing pool. This
/// goes beyond the paper (the 1998 TIL runtime was single-threaded); see
/// DESIGN.md "Beyond the paper: parallel evacuation" for the protocol
/// rationale. The serial engine remains the GcThreads == 1 path, so every
/// paper-table reproduction stays deterministic and bit-identical.
///
/// Protocol summary:
///
///  * **CAS-installed forwarding.** A worker that finds an unforwarded
///    from-space object copies it into its private block first, then
///    compare-exchanges the forwarding word into the descriptor. Losers
///    retract their speculative copy (a private bump-pointer decrement) and
///    adopt the winner's target from the failed CAS. copy-then-publish
///    means a loser never observes a half-copied winner.
///
///  * **Per-worker copy blocks.** Destination spaces hand out fixed-size
///    blocks through the thread-safe Space::allocateBlock; all object
///    allocation inside a block is single-threaded. Unused block tails are
///    returned to the space when still at the frontier, else stamped with a
///    Pad filler so spaces stay linearly walkable.
///
///  * **Span-granular gray work.** Each worker Cheney-scans its own block
///    (copied objects are scanned by the worker that copied them — the
///    cache-friendly case). When the local backlog exceeds two spans, the
///    worker carves fixed-size spans off the head and publishes them on its
///    Chase-Lev deque; idle workers steal from the tail. LOS objects won by
///    an atomic mark are published as single-object spans.
///
///  * **Termination.** A global active-worker count: a worker goes idle
///    only with empty local work, and the phase ends when the count reaches
///    zero — at which point no deque can hold work, because an owner always
///    drains its own deque before idling.
///
///  * **Deterministic accounting.** BytesCopied / ObjectsCopied / profiler
///    counts are accumulated per worker (the profiler into a private
///    scratch) and merged after the join, so totals — and therefore
///    profile-driven pretenuring decisions — are identical across thread
///    counts.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_GC_PARALLELEVACUATOR_H
#define TILGC_GC_PARALLELEVACUATOR_H

#include "gc/Evacuator.h"
#include "heap/LargeObjectSpace.h"
#include "heap/Space.h"
#include "object/Object.h"
#include "profile/HeapProfiler.h"
#include "support/WorkerPool.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tilgc {

/// One parallel evacuation pass: gather roots with addRoot(), then run().
class ParallelEvacuator {
public:
  /// Reuses the serial engine's configuration (spaces, policy, profiler).
  using Config = Evacuator::Config;

  /// Words per copy block handed to a worker (32KB). Objects larger than a
  /// block get an exactly-sized private block.
  static constexpr size_t BlockWords = 4096;
  /// Target words per published scan span (8KB).
  static constexpr size_t SpanWords = 1024;

  ParallelEvacuator(const Config &C, WorkerPool &Pool);
  ~ParallelEvacuator();

  /// Queues \p Slot for forwarding; call before run(). Duplicate slots are
  /// tolerated (slot words are accessed atomically during the pass).
  void addRoot(Word *Slot) { Roots.push_back(Slot); }

  /// Queues a contiguous span of root slots — the batched pipeline: the
  /// collectors hand whole root vectors instead of per-slot addRoot calls,
  /// and run() partitions the concatenated spans across workers without
  /// ever copying the slots. The backing array must stay alive and
  /// unmodified until run() returns. Spans are consumed in hand-in order,
  /// followed by any addRoot singles, so a collector that queues its spans
  /// in the serial engine's order gets the identical worker partition the
  /// flat root vector used to produce.
  void addRootSpan(Word *const *Slots, size_t Count) {
    if (Count)
      RootSpans.push_back(RootSpan{Slots, Count});
  }

  /// Runs the parallel pass to completion: forwards all queued roots,
  /// drains the transitive closure, retires worker blocks (pad or return
  /// tails), and merges per-worker stats, profiler scratches and cross-gen
  /// slot lists.
  void run();

  uint64_t bytesCopied() const { return TotalBytesCopied; }
  uint64_t objectsCopied() const { return TotalObjectsCopied; }
  uint64_t crossingMapUpdates() const { return TotalCrossingUpdates; }

  /// Workers that faulted (threw) during the pass. When nonzero, run()
  /// finished their abandoned work with a single-threaded recovery drain.
  unsigned workerFaults() const {
    return NumFaults.load(std::memory_order_relaxed);
  }

  /// Extra destination capacity (beyond live bytes) the block handout may
  /// consume as pad waste when copying \p IncomingBytes with \p Threads
  /// workers. Collectors add this to their worst-case reserves.
  static size_t reserveSlackBytes(size_t IncomingBytes, unsigned Threads) {
    return IncomingBytes / 8 +
           static_cast<size_t>(Threads) * BlockWords * sizeof(Word) * 2 +
           (64u << 10);
  }

private:
  /// A contiguous run of fully-copied objects awaiting scanning.
  struct Span {
    Word *Begin;
    Word *End;
  };

  /// A caller-owned span of root slots (addRootSpan).
  struct RootSpan {
    Word *const *Slots;
    size_t Count;
  };

  /// Private bump allocator over blocks granted by a destination space.
  struct LocalAlloc {
    Space *S = nullptr;
    Word *BlockBegin = nullptr;
    Word *BlockEnd = nullptr;
    Word *Alloc = nullptr; ///< Next free word in the current block.
    Word *Scan = nullptr;  ///< Gray cursor; [Scan, Alloc) awaits scanning.
  };

  struct Worker {
    WorkStealingDeque<Span> Deque;
    std::vector<Span> Overflow; ///< Spill when the deque is full.
    LocalAlloc Old;
    LocalAlloc Young;
    std::vector<Word *> CrossGen;
    std::unique_ptr<HeapProfiler> Prof;
    uint64_t BytesCopied = 0;
    uint64_t ObjectsCopied = 0;
    uint64_t CrossingUpdates = 0;
    /// Telemetry span stamps (only written when the pass stamps workers —
    /// an armed telemetry plane was configured). Written by the worker
    /// itself, read by the controlling thread after the pool joins.
    uint64_t TelBeginNs = 0;
    uint64_t TelEndNs = 0;
    bool Faulted = false;
    uint32_t Seed = 0;
    size_t RootBegin = 0;
    size_t RootEnd = 0;
    /// Fault-recovery bookkeeping: the global root index this worker has
    /// forwarded up to (slots in [RootCursor, RootEnd) may be unprocessed
    /// if the worker faulted), and the span it was scanning when it died.
    size_t RootCursor = 0;
    Span Pending{nullptr, nullptr};
  };

  void workerMain(unsigned Index);
  void workerBody(unsigned Index);
  /// Exercises the WorkerStall / WorkerThrow fault-injection points.
  void faultCheck();
  /// Single-threaded post-join drain of everything faulted workers
  /// abandoned: unforwarded root slices, pending spans, local gray
  /// backlogs, overflow lists and deques. Safe because forwarding is
  /// idempotent (re-forwarding an already-copied object just adopts the
  /// installed target).
  void serialRecover();
  bool drainLocalGray(Worker &R, LocalAlloc &LA);
  void forwardRootRange(Worker &W, size_t Begin, size_t End);
  void forwardSlot(Worker &W, Word *Slot);
  Word *copy(Worker &W, Word *P);
  Word *localAllocate(Worker &W, LocalAlloc &LA, Word Descriptor, Word Meta,
                      uint32_t Total);
  void retireBlock(Worker &W, LocalAlloc &LA);
  void scanObject(Worker &W, Word *Payload);
  void scanSpan(Worker &W, Span S);
  bool scanLocalBatch(Worker &W, LocalAlloc &LA);
  bool scanStep(Worker &W);
  bool trySteal(Worker &W, unsigned Index, Span &Out);
  void publishSpan(Worker &W, Span S);

  bool inFromSpace(const Word *P) const {
    for (unsigned I = 0; I < NumFrom; ++I)
      if (P >= FromLo[I] && P < FromHi[I])
        return true;
    return false;
  }

  Config C;
  WorkerPool &Pool;
  const Word *FromLo[3];
  const Word *FromHi[3];
  unsigned NumFrom = 0;
  std::vector<Word *> Roots;
  std::vector<RootSpan> RootSpans;
  /// Prefix sums over RootSpans (run() builds it): global root index I
  /// lives in span SI iff SpanOffsets[SI] <= I < SpanOffsets[SI + 1].
  std::vector<size_t> SpanOffsets;
  std::vector<std::unique_ptr<Worker>> Workers;
  std::atomic<unsigned> NumActive{0};
  /// Workers that threw out of workerBody this pass. Fault points only
  /// fire while a worker is active, so its catch handler performs the one
  /// NumActive decrement that keeps the termination protocol balanced.
  std::atomic<unsigned> NumFaults{0};
  /// True while serialRecover() runs: a copy-space overflow there is a
  /// genuine OOM mid-evacuation and must die structurally rather than
  /// re-throwing into a recovery that cannot recover itself.
  bool InRecovery = false;
  /// Workers stamp begin/end telemetry spans this pass (decided once in
  /// run(), before the pool starts, so workers read a stable value).
  bool StampWorkers = false;
  uint64_t TotalBytesCopied = 0;
  uint64_t TotalObjectsCopied = 0;
  uint64_t TotalCrossingUpdates = 0;
};

} // namespace tilgc

#endif // TILGC_GC_PARALLELEVACUATOR_H
