//===- gc/Evacuator.cpp - Cheney copying engine ---------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "gc/Evacuator.h"

#include "support/Fatal.h"

#include <cstdio>
#include <cstring>

using namespace tilgc;

Evacuator::Evacuator(const Config &C) : C(C) {
  assert(C.Dest && "evacuation needs a destination");
  assert(!C.TraceLOS || C.LOS);
  assert((C.DestYoung == nullptr) == (C.PromoteAgeThreshold <= 1) &&
         "aged tenuring needs a young destination and vice versa");
  for (Space *S : C.From) {
    if (!S)
      continue;
    FromLo[NumFrom] = S->baseAddr();
    FromHi[NumFrom] = S->limitAddr();
    ++NumFrom;
  }
  ScanDest = C.Dest->frontier();
  ScanYoung = C.DestYoung ? C.DestYoung->frontier() : nullptr;
}

Word *Evacuator::copy(Word *P) {
  Word Descriptor = descriptorOf(P);
  if (header::isForwarded(Descriptor))
    return header::forwardTarget(Descriptor);


  Word Meta = metaOf(P);
  unsigned OldAge = meta::age(Meta);
  Word NewMeta = meta::withBumpedAge(Meta);

  Space *Target = C.Dest;
  if (C.DestYoung && OldAge + 1 < C.PromoteAgeThreshold)
    Target = C.DestYoung;

  Word *NewPayload = Target->allocate(Descriptor, NewMeta);
  if (TILGC_UNLIKELY(!NewPayload) && Target != C.Dest) {
    // The young destination ran dry: promote early rather than dying. The
    // parallel engine applies the same young->old fallback.
    Target = C.Dest;
    NewPayload = Target->allocate(Descriptor, NewMeta);
  }
  if (TILGC_UNLIKELY(!NewPayload))
    // Always-on terminal failure: the heap is half-evacuated, so this is
    // not recoverable the way an allocation-time OOM is.
    fatalError("destination space overflowed during evacuation (target=%s "
               "used=%zu cap=%zu, need %u bytes); collection cannot "
               "complete",
               Target == C.Dest ? "dest" : "destYoung", Target->usedBytes(),
               Target->capacityBytes(), objectTotalWords(Descriptor) * 8);
  uint32_t Len = header::length(Descriptor);
  std::memcpy(NewPayload, P, static_cast<size_t>(Len) * sizeof(Word));
  descriptorOf(P) = header::makeForward(NewPayload);

  uint64_t Bytes = objectTotalBytes(Descriptor);
  BytesCopied += Bytes;
  ++ObjectsCopied;

  if (TILGC_UNLIKELY(C.CrossDest != nullptr) && Target == C.Dest) {
    C.CrossDest->recordObject(NewPayload - HeaderWords,
                              objectTotalWords(Descriptor));
    ++CrossingUpdates;
  }

  if (C.Profiler) {
    uint32_t Site = meta::site(Meta);
    C.Profiler->onCopy(Site, Bytes);
    if (C.CountSurvivedFirst && OldAge == 0)
      C.Profiler->onSurviveFirst(Site);
  }
  return NewPayload;
}

// The profiler test is hoisted out of the per-field loop by stamping the
// scan path on the flag once per drain: a profiled run re-tests C.Profiler
// for every pointer field otherwise, and unprofiled runs (every paper-table
// reproduction) pay the branch for nothing.
template <bool WithProfiler> void Evacuator::scanObject(Word *Payload) {
  uint32_t Site = WithProfiler ? meta::site(metaOf(Payload)) : 0;
  forEachPointerField(Payload, [&](Word *Field) {
    forwardSlot(Field);
    if constexpr (WithProfiler) {
      if (*Field)
        C.Profiler->onReferent(Site,
                               meta::site(metaOf(reinterpret_cast<Word *>(
                                   *Field))));
    }
  });
}

template <bool WithProfiler> void Evacuator::drainImpl() {
  bool Progress = true;
  while (Progress) {
    Progress = false;
    while (ScanDest < C.Dest->frontier()) {
      Word *Payload = ScanDest + HeaderWords;
      scanObject<WithProfiler>(Payload);
      ScanDest += objectTotalWords(descriptorOf(Payload));
      Progress = true;
    }
    if (C.DestYoung) {
      while (ScanYoung < C.DestYoung->frontier()) {
        Word *Payload = ScanYoung + HeaderWords;
        scanObject<WithProfiler>(Payload);
        ScanYoung += objectTotalWords(descriptorOf(Payload));
        Progress = true;
      }
    }
    while (!LOSWork.empty()) {
      Word *Payload = LOSWork.back();
      LOSWork.pop_back();
      scanObject<WithProfiler>(Payload);
      Progress = true;
    }
  }
}

void Evacuator::drain() {
  if (C.Profiler)
    drainImpl<true>();
  else
    drainImpl<false>();
}
