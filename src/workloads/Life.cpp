//===- workloads/Life.cpp - The Life benchmark -----------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "The game of Life implemented using lists (Reade 1989)."
///
/// The live-cell set is a sorted int list on a 64x64 torus. Each generation
/// allocates an 8-entry neighbour burst per live cell, mergesorts the burst
/// list, and walks it against the current generation to produce the next —
/// entirely list allocation with almost no live data (paper: 363MB
/// allocated, 24KB max live, shallow stack).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/MLLib.h"

#include <algorithm>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int Side = 64;
constexpr int Cells = Side * Side;

uint32_t siteNeighbor() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("life.neighbor");
  return S;
}
uint32_t siteSort() {
  static const uint32_t S = AllocSiteRegistry::global().define("life.sort");
  return S;
}
uint32_t siteGen() {
  static const uint32_t S = AllocSiteRegistry::global().define("life.gen");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("life.run", {Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t keyNextGen() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "life.nextgen",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t keySort() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "life.sort", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                    Trace::pointer(), Trace::pointer()}));
  return K;
}

int wrap(int V) { return (V % Side + Side) % Side; }

/// Splits list (slot In) into two alternating halves left in OutA/OutB.
void splitAlternating(Mutator &M, SlotRef In, SlotRef OutA, SlotRef OutB) {
  OutA.set(Value::null());
  OutB.set(Value::null());
  bool Left = true;
  while (!In.get().isNull()) {
    int64_t H = headInt(In.get());
    In.set(tail(In.get()));
    SlotRef Out = Left ? OutA : OutB;
    Out.set(consInt(M, siteSort(), H, Out));
    Left = !Left;
  }
}

/// Merges two ascending int lists (slots A and B), ascending, duplicates
/// kept. Builds descending into Acc then reverses.
Value mergeAsc(Mutator &M, SlotRef A, SlotRef B, SlotRef Acc,
               SlotRef Scratch) {
  Acc.set(Value::null());
  while (!A.get().isNull() || !B.get().isNull()) {
    int64_t H;
    if (B.get().isNull() ||
        (!A.get().isNull() && headInt(A.get()) <= headInt(B.get()))) {
      H = headInt(A.get());
      A.set(tail(A.get()));
    } else {
      H = headInt(B.get());
      B.set(tail(B.get()));
    }
    Acc.set(consInt(M, siteSort(), H, Acc));
  }
  Scratch.set(Acc.get());
  return reverseInt(M, siteSort(), Scratch, Acc);
}

/// Recursive mergesort (log-depth frames).
Value msort(Mutator &M, SlotRef In) {
  if (In.get().isNull() || tail(In.get()).isNull())
    return In.get();
  // 1 = left, 2 = right, 3 = acc, 4 = scratch, 5 = own input cursor (the
  // frameless helpers may only clobber slots of the *current* frame).
  Frame F(M, keySort());
  F.set(5, In.get());
  splitAlternating(M, slot(F, 5), slot(F, 1), slot(F, 2));
  F.set(1, msort(M, slot(F, 1)));
  F.set(2, msort(M, slot(F, 2)));
  return mergeAsc(M, slot(F, 1), slot(F, 2), slot(F, 3), slot(F, 4));
}

/// One generation step over the sorted live-cell list; returns the next
/// generation (the caller stores it into its own frame).
Value nextGen(Mutator &M, SlotRef Alive) {
  Frame F(M, keyNextGen());
  // 1 = neighbour burst, 2 = sorted burst, 3 = next gen (descending),
  // 4 = cursor over alive, 5 = scratch, 6 = sorted cursor.
  F.set(4, Alive.get());
  while (!F.get(4).isNull()) {
    int64_t Pos = headInt(F.get(4));
    int X = static_cast<int>(Pos) / Side, Y = static_cast<int>(Pos) % Side;
    for (int DX = -1; DX <= 1; ++DX) {
      for (int DY = -1; DY <= 1; ++DY) {
        if (DX == 0 && DY == 0)
          continue;
        int64_t NPos = wrap(X + DX) * Side + wrap(Y + DY);
        F.set(1, consInt(M, siteNeighbor(), NPos, slot(F, 1)));
      }
    }
    F.set(4, tail(F.get(4)));
  }

  F.set(2, msort(M, slot(F, 1)));

  // Walk the sorted burst, run-length counting, against the (sorted) alive
  // list to apply B3/S23.
  F.set(4, Alive.get());
  F.set(6, F.get(2));
  while (!F.get(6).isNull()) {
    int64_t Pos = headInt(F.get(6));
    int Count = 0;
    while (!F.get(6).isNull() && headInt(F.get(6)) == Pos) {
      ++Count;
      F.set(6, tail(F.get(6)));
    }
    while (!F.get(4).isNull() && headInt(F.get(4)) < Pos)
      F.set(4, tail(F.get(4)));
    bool WasAlive = !F.get(4).isNull() && headInt(F.get(4)) == Pos;
    bool Lives = WasAlive ? (Count == 2 || Count == 3) : (Count == 3);
    if (Lives)
      F.set(3, consInt(M, siteGen(), Pos, slot(F, 3)));
  }
  F.set(5, F.get(3));
  return reverseInt(M, siteGen(), slot(F, 5), slot(F, 3));
}

int gensFor(double Scale) {
  int G = static_cast<int>(150.0 * Scale);
  return G < 1 ? 1 : G;
}

/// Deterministic start pattern: an R-pentomino near the centre plus a
/// glider in one corner.
std::vector<int> startPattern() {
  auto At = [](int X, int Y) { return X * Side + Y; };
  std::vector<int> P = {
      // R-pentomino at (30..32, 30..31).
      At(30, 31), At(30, 32), At(31, 30), At(31, 31), At(32, 31),
      // Glider.
      At(2, 3), At(3, 4), At(4, 2), At(4, 3), At(4, 4)};
  return P;
}

class LifeWorkload : public Workload {
public:
  const char *name() const override { return "Life"; }
  const char *description() const override {
    return "Game of Life on sorted cell lists (64x64 torus)";
  }
  unsigned paperLines() const override { return 146; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, keyRun()); // 1 = alive list, 2 = scratch.
    // Build the initial generation, sorted ascending (fold from the back).
    std::vector<int> Init = startPattern();
    std::sort(Init.begin(), Init.end());
    for (auto It = Init.rbegin(); It != Init.rend(); ++It)
      Top.set(1, consInt(M, siteGen(), *It, slot(Top, 1)));

    uint64_t Sum = 0;
    int Gens = gensFor(Scale);
    for (int G = 0; G < Gens; ++G) {
      Top.set(1, nextGen(M, slot(Top, 1)));
      Sum = Sum * 31 + mllib::length(Top.get(1));
    }
    Sum = Sum * 31 + static_cast<uint64_t>(mllib::sumInt(Top.get(1)));
    return Sum;
  }

  uint64_t expected(double Scale) override {
    std::vector<char> Grid(Cells, 0), Next(Cells, 0);
    for (int P : startPattern())
      Grid[static_cast<size_t>(P)] = 1;
    uint64_t Sum = 0;
    int Gens = gensFor(Scale);
    for (int G = 0; G < Gens; ++G) {
      uint64_t Pop = 0;
      for (int X = 0; X < Side; ++X) {
        for (int Y = 0; Y < Side; ++Y) {
          int Count = 0;
          for (int DX = -1; DX <= 1; ++DX)
            for (int DY = -1; DY <= 1; ++DY)
              if (DX || DY)
                Count += Grid[static_cast<size_t>(wrap(X + DX) * Side +
                                                  wrap(Y + DY))];
          bool WasAlive = Grid[static_cast<size_t>(X * Side + Y)] != 0;
          bool Lives = WasAlive ? (Count == 2 || Count == 3) : (Count == 3);
          Next[static_cast<size_t>(X * Side + Y)] = Lives ? 1 : 0;
          Pop += Lives;
        }
      }
      Grid.swap(Next);
      Sum = Sum * 31 + Pop;
    }
    uint64_t PosSum = 0;
    for (int P = 0; P < Cells; ++P)
      if (Grid[static_cast<size_t>(P)])
        PosSum += static_cast<uint64_t>(P);
    Sum = Sum * 31 + PosSum;
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeLifeWorkload() {
  return std::make_unique<LifeWorkload>();
}
