//===- workloads/MLLib.h - ML-style heap idioms -----------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers for the list/record idioms the SML benchmarks live on.
///
/// Safety rules embodied here:
///  * Functions that allocate take their pointer arguments as SlotRef — a
///    (frame, slot) pair re-read *after* the allocation — never as raw
///    Values, because an allocation may collect and move everything.
///  * Returned Values must be stored into a frame slot by the caller before
///    the next allocation.
///
/// Cons cells are two-field records: field 0 = head, field 1 = tail
/// (pointer). An integer list's head is unboxed (PtrMask = 0b10); a pointer
/// list's head is a pointer (PtrMask = 0b11). nil is the null Value.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_WORKLOADS_MLLIB_H
#define TILGC_WORKLOADS_MLLIB_H

#include "runtime/Mutator.h"

namespace tilgc {

/// A re-readable reference to a frame slot; the safe way to pass pointer
/// arguments to allocating helpers.
struct SlotRef {
  Frame *F;
  unsigned Slot;

  Value get() const { return F->get(Slot); }
  void set(Value V) const { F->set(Slot, V); }
};

/// Convenience maker (Frame cannot return SlotRef by value cheaply enough
/// to matter; this reads better at call sites).
inline SlotRef slot(Frame &F, unsigned I) { return SlotRef{&F, I}; }

namespace mllib {

/// PtrMask for an int-headed cons cell (tail only).
inline constexpr uint32_t IntConsMask = 0b10;
/// PtrMask for a pointer-headed cons cell.
inline constexpr uint32_t PtrConsMask = 0b11;

/// Allocates Head :: Tail with an unboxed integer head.
inline Value consInt(Mutator &M, uint32_t Site, int64_t Head, SlotRef Tail) {
  Value Cell = M.allocRecord(Site, 2, IntConsMask);
  M.initField(Cell, 0, Value::fromInt(Head));
  M.initField(Cell, 1, Tail.get());
  return Cell;
}

/// Allocates Head :: Tail with a pointer head.
inline Value consPtr(Mutator &M, uint32_t Site, SlotRef Head, SlotRef Tail) {
  Value Cell = M.allocRecord(Site, 2, PtrConsMask);
  M.initField(Cell, 0, Head.get());
  M.initField(Cell, 1, Tail.get());
  return Cell;
}

inline Value head(Value Cell) { return Mutator::getField(Cell, 0); }
inline int64_t headInt(Value Cell) {
  return Mutator::getField(Cell, 0).asInt();
}
inline Value tail(Value Cell) { return Mutator::getField(Cell, 1); }

/// Non-allocating length (iterative; cannot trigger a collection).
inline uint64_t length(Value List) {
  uint64_t N = 0;
  for (Value P = List; !P.isNull(); P = tail(P))
    ++N;
  return N;
}

/// Non-allocating sum of an int list.
inline int64_t sumInt(Value List) {
  int64_t S = 0;
  for (Value P = List; !P.isNull(); P = tail(P))
    S += headInt(P);
  return S;
}

/// Iterative, allocating reverse of an int list. \p Site tags the fresh
/// cells; \p In names the input list's slot, \p Scratch a scratch pointer
/// slot the helper may clobber. Returns the reversed list.
inline Value reverseInt(Mutator &M, uint32_t Site, SlotRef In,
                        SlotRef Scratch) {
  Scratch.set(Value::null());
  while (!In.get().isNull()) {
    Value Cell = consInt(M, Site, headInt(In.get()), Scratch);
    Scratch.set(Cell);
    In.set(tail(In.get()));
  }
  return Scratch.get();
}

/// Frame key for copyIntRec's activation records.
uint32_t copyIntRecKey();

/// Recursive (deep-stack) structural copy of an int list. Allocation
/// happens on the way back up, so the whole spine is live on the stack.
Value copyIntRec(Mutator &M, uint32_t Site, SlotRef In);

} // namespace mllib
} // namespace tilgc

#endif // TILGC_WORKLOADS_MLLIB_H
