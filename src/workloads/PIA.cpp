//===- workloads/PIA.cpp - The PIA benchmark -------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "The Perspective Inversion Algorithm deciding the location of
/// an object in a perspective video image."
///
/// A pose-search pipeline over synthetic video frames: per frame, a large
/// unboxed image-point array plus thousands of small per-pose candidate
/// records (paper: 214MB arrays + 154MB records), with a sliding window of
/// recent frame results kept alive. Window entries survive a few minor
/// collections, get promoted, and then die — the allocation behaviour the
/// paper singles out as hostile to generational collection ("PIA's tenured
/// data tends to die rapidly"), which is why its GC time is so sensitive
/// to k in Tables 3 and 4.
///
/// All arithmetic is 16.16 fixed-point integer math, mirrored exactly by
/// the plain-C++ reference.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <cmath>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int NumImagePoints = 6000;
constexpr int NumModelPoints = 120;
constexpr int NumPoses = 28;
constexpr int WindowSize = 4;

uint32_t siteImage() {
  static const uint32_t S = AllocSiteRegistry::global().define("pia.image");
  return S;
}
uint32_t siteFeature() {
  static const uint32_t S = AllocSiteRegistry::global().define("pia.feature");
  return S;
}
uint32_t siteCand() {
  static const uint32_t S = AllocSiteRegistry::global().define("pia.cand");
  return S;
}
uint32_t siteFrameRec() {
  static const uint32_t S = AllocSiteRegistry::global().define("pia.frame");
  return S;
}
uint32_t siteWindow() {
  static const uint32_t S = AllocSiteRegistry::global().define("pia.window");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "pia.run", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t keyFrame() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "pia.frame",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  return K;
}

/// 16.16 fixed-point sine/cosine for the pose angles (deterministic; the
/// reference uses the same table).
const std::vector<std::pair<int64_t, int64_t>> &poseRotations() {
  static const std::vector<std::pair<int64_t, int64_t>> Table = [] {
    std::vector<std::pair<int64_t, int64_t>> T;
    for (int I = 0; I < NumPoses; ++I) {
      double A = 2.0 * 3.14159265358979323846 * I / NumPoses;
      T.emplace_back(std::llround(std::cos(A) * 65536.0),
                     std::llround(std::sin(A) * 65536.0));
    }
    return T;
  }();
  return Table;
}

int64_t modelX(int I) { return (I * 37 % 200 - 100) << 16; }
int64_t modelY(int I) { return (I * 53 % 200 - 100) << 16; }

/// Deterministic image coordinates (shared with the reference).
int64_t imageCoord(int Frame, int Index) {
  uint64_t S = static_cast<uint64_t>(Frame) * 1000003 +
               static_cast<uint64_t>(Index);
  return static_cast<int64_t>(splitMix64(S) % 512) - 256;
}

/// Scores one pose against the image (pure reads; no allocation).
int64_t scorePose(Value Image, int Frame, int Pose) {
  (void)Frame;
  auto [C, S] = poseRotations()[static_cast<size_t>(Pose)];
  int64_t TX = (Pose * 11 % 64 - 32), TY = (Pose * 29 % 64 - 32);
  int64_t Score = 0;
  for (int I = 0; I < NumModelPoints; ++I) {
    int64_t X = (C * modelX(I) - S * modelY(I)) >> 32;
    int64_t Y = (S * modelX(I) + C * modelY(I)) >> 32;
    X += TX;
    Y += TY;
    int Idx = (I * 7 + Pose * 13) % NumImagePoints;
    int64_t IX = Value::fromBits(Image.asPtr()[2 * Idx]).asInt();
    int64_t IY = Value::fromBits(Image.asPtr()[2 * Idx + 1]).asInt();
    int64_t DX = X - IX, DY = Y - IY;
    Score += (DX < 0 ? -DX : DX) + (DY < 0 ? -DY : DY);
  }
  return Score;
}

/// One video frame: image array, pose search, frame-result record.
/// Returns the record the caller conses onto its sliding window.
Value processFrame(Mutator &M, int FrameNo, uint64_t &Sum) {
  Frame F(M, keyFrame()); // 1 = image, 2 = best cand, 3 = result, 4 = -.
  // Image array: 2 coords per point, unboxed (large object).
  F.set(1, M.allocNonPtrArray(siteImage(), 2 * NumImagePoints));
  {
    Value Img = F.get(1);
    for (int I = 0; I < NumImagePoints; ++I) {
      Img.asPtr()[2 * I] = Value::fromInt(imageCoord(FrameNo, 2 * I)).bits();
      Img.asPtr()[2 * I + 1] =
          Value::fromInt(imageCoord(FrameNo, 2 * I + 1)).bits();
    }
  }

  // Pose search: per-pose candidate records plus a burst of per-point
  // feature records (the paper's PIA is heavily record-allocating).
  int64_t Best = INT64_MAX;
  int BestPose = -1;
  for (int Pose = 0; Pose < NumPoses; ++Pose) {
    int64_t Score = scorePose(F.get(1), FrameNo, Pose);
    for (int Pt = 0; Pt < NumModelPoints; ++Pt) {
      Value Feat = M.allocRecord(siteFeature(), 2, 0);
      M.initField(Feat, 0, Value::fromInt(Score + Pt));
      M.initField(Feat, 1, Value::fromInt(Pose));
    }
    Value Cand = M.allocRecord(siteCand(), 3, 0b100);
    M.initField(Cand, 0, Value::fromInt(Pose));
    M.initField(Cand, 1, Value::fromInt(Score));
    M.initField(Cand, 2, F.get(2)); // Chain of improving candidates.
    if (Score < Best) {
      Best = Score;
      BestPose = Pose;
      F.set(2, Cand);
    }
  }
  Sum = Sum * 1099511628211ULL + static_cast<uint64_t>(Best) +
        static_cast<uint64_t>(BestPose);

  // Frame result: {image, bestCand, best}.
  Value Rec = M.allocRecord(siteFrameRec(), 3, 0b011);
  M.initField(Rec, 0, F.get(1));
  M.initField(Rec, 1, F.get(2));
  M.initField(Rec, 2, Value::fromInt(Best));
  return Rec;
}

int framesFor(double Scale) {
  int F = static_cast<int>(380.0 * Scale);
  return F < WindowSize + 1 ? WindowSize + 1 : F;
}

class PIAWorkload : public Workload {
public:
  const char *name() const override { return "PIA"; }
  const char *description() const override {
    return "Perspective-inversion pose search with a sliding window of "
           "frame results";
  }
  unsigned paperLines() const override { return 2065; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, keyRun()); // 1 = window list, 2 = frame record, 3 = -.
    uint64_t Sum = 0;
    int Frames = framesFor(Scale);
    for (int FrameNo = 0; FrameNo < Frames; ++FrameNo) {
      Top.set(2, processFrame(M, FrameNo, Sum));
      Top.set(1, consPtr(M, siteWindow(), slot(Top, 2), slot(Top, 1)));
      // Trim the window: the (WindowSize)-th cell's tail is severed, so
      // older frame data — already promoted — dies in the old generation.
      Value Cell = Top.get(1);
      int Depth = 1;
      while (!Cell.isNull() && Depth < WindowSize) {
        Cell = tail(Cell);
        ++Depth;
      }
      if (!Cell.isNull() && !tail(Cell).isNull())
        M.writeField(Cell, 1, Value::null(), /*IsPointerField=*/true);
    }
    return Sum;
  }

  uint64_t expected(double Scale) override {
    uint64_t Sum = 0;
    int Frames = framesFor(Scale);
    std::vector<int64_t> Img(2 * NumImagePoints);
    for (int FrameNo = 0; FrameNo < Frames; ++FrameNo) {
      for (int I = 0; I < 2 * NumImagePoints; ++I)
        Img[static_cast<size_t>(I)] = imageCoord(FrameNo, I);
      int64_t Best = INT64_MAX;
      int BestPose = -1;
      for (int Pose = 0; Pose < NumPoses; ++Pose) {
        auto [C, S] = poseRotations()[static_cast<size_t>(Pose)];
        int64_t TX = (Pose * 11 % 64 - 32), TY = (Pose * 29 % 64 - 32);
        int64_t Score = 0;
        for (int I = 0; I < NumModelPoints; ++I) {
          int64_t X = (C * modelX(I) - S * modelY(I)) >> 32;
          int64_t Y = (S * modelX(I) + C * modelY(I)) >> 32;
          X += TX;
          Y += TY;
          int Idx = (I * 7 + Pose * 13) % NumImagePoints;
          int64_t DX = X - Img[static_cast<size_t>(2 * Idx)];
          int64_t DY = Y - Img[static_cast<size_t>(2 * Idx + 1)];
          Score += (DX < 0 ? -DX : DX) + (DY < 0 ? -DY : DY);
        }
        if (Score < Best) {
          Best = Score;
          BestPose = Pose;
        }
      }
      Sum = Sum * 1099511628211ULL + static_cast<uint64_t>(Best) +
            static_cast<uint64_t>(BestPose);
    }
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makePIAWorkload() {
  return std::make_unique<PIAWorkload>();
}
