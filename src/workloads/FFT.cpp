//===- workloads/FFT.cpp - The FFT benchmark -------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "Fast Fourier transform, multiplying polynomials up to degree
/// 65,536."
///
/// Iterative radix-2 FFTs over unboxed double arrays, used to multiply
/// random integer polynomials at doubling sizes. Almost all allocation is
/// large non-pointer arrays: under the generational collector they live in
/// the mark-sweep large-object space and GC time nearly vanishes (Table 4:
/// 0.07s), while the semispace collector copies whichever arrays are live
/// at each collection (Table 3: 63MB copied). The stack stays ~4 frames
/// deep.
///
/// Validation: coefficients are small, so the rounded FFT product is the
/// exact integer convolution; a plain-C++ direct convolution predicts
/// every coefficient.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <cmath>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

uint32_t siteArray() {
  static const uint32_t S = AllocSiteRegistry::global().define("fft.array");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "fft.run",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  return K;
}
uint32_t keyTransform() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "fft.transform", {Trace::pointer(), Trace::pointer()}));
  return K;
}

double getD(Value Arr, uint32_t I) {
  return Value::fromBits(Arr.asPtr()[I]).asDouble();
}
void setD(Value Arr, uint32_t I, double D) {
  Arr.asPtr()[I] = Value::fromDouble(D).bits();
}

/// In-place iterative radix-2 FFT over (Re, Im) in the given frame slots.
/// No allocation happens inside, so raw element access is safe; arrays are
/// re-read from the slots on entry.
void fftInPlace(Mutator &M, SlotRef ReS, SlotRef ImS, uint32_t N,
                bool Inverse) {
  Frame F(M, keyTransform()); // 1 = re, 2 = im.
  F.set(1, ReS.get());
  F.set(2, ImS.get());
  Value Re = F.get(1), Im = F.get(2);

  // Bit reversal.
  for (uint32_t I = 1, J = 0; I < N; ++I) {
    uint32_t Bit = N >> 1;
    for (; J & Bit; Bit >>= 1)
      J ^= Bit;
    J ^= Bit;
    if (I < J) {
      double TR = getD(Re, I), TI = getD(Im, I);
      setD(Re, I, getD(Re, J));
      setD(Im, I, getD(Im, J));
      setD(Re, J, TR);
      setD(Im, J, TI);
    }
  }

  const double Pi = 3.14159265358979323846;
  for (uint32_t Len = 2; Len <= N; Len <<= 1) {
    double Ang = 2 * Pi / static_cast<double>(Len) * (Inverse ? 1.0 : -1.0);
    double WR = std::cos(Ang), WI = std::sin(Ang);
    for (uint32_t I = 0; I < N; I += Len) {
      double CurR = 1.0, CurI = 0.0;
      for (uint32_t J = 0; J < Len / 2; ++J) {
        uint32_t A = I + J, B = I + J + Len / 2;
        double AR = getD(Re, A), AI = getD(Im, A);
        double BR = getD(Re, B) * CurR - getD(Im, B) * CurI;
        double BI = getD(Re, B) * CurI + getD(Im, B) * CurR;
        setD(Re, A, AR + BR);
        setD(Im, A, AI + BI);
        setD(Re, B, AR - BR);
        setD(Im, B, AI - BI);
        double NR = CurR * WR - CurI * WI;
        CurI = CurR * WI + CurI * WR;
        CurR = NR;
      }
    }
  }
  if (Inverse) {
    for (uint32_t I = 0; I < N; ++I) {
      setD(Re, I, getD(Re, I) / static_cast<double>(N));
      setD(Im, I, getD(Im, I) / static_cast<double>(N));
    }
  }
}

/// Deterministic coefficients shared with the reference.
int coefAt(uint64_t Seed, uint32_t Size, uint32_t I) {
  uint64_t S = Seed ^ (static_cast<uint64_t>(Size) << 32) ^ I;
  return static_cast<int>(splitMix64(S) % 10);
}

struct Sizes {
  int Repeats;
  uint32_t MaxSize;
};

Sizes sizesFor(double Scale) {
  Sizes S;
  S.Repeats = static_cast<int>(24.0 * Scale);
  if (S.Repeats < 1)
    S.Repeats = 1;
  S.MaxSize = 16384;
  return S;
}

class FFTWorkload : public Workload {
public:
  const char *name() const override { return "FFT"; }
  const char *description() const override {
    return "Polynomial multiplication via iterative FFT over unboxed "
           "double arrays";
  }
  unsigned paperLines() const override { return 246; }

  uint64_t run(Mutator &M, double Scale) override {
    Sizes S = sizesFor(Scale);
    Frame Top(M, keyRun()); // 1 = re, 2 = im, 3 = re2, 4 = im2.
    uint64_t Sum = 0;
    for (int Rep = 0; Rep < S.Repeats; ++Rep) {
      for (uint32_t Half = 256; Half <= S.MaxSize / 2; Half <<= 1) {
        uint32_t N = Half * 2; // Product degree < N.
        Top.set(1, M.allocNonPtrArray(siteArray(), N));
        Top.set(2, M.allocNonPtrArray(siteArray(), N));
        Top.set(3, M.allocNonPtrArray(siteArray(), N));
        Top.set(4, M.allocNonPtrArray(siteArray(), N));
        uint64_t Seed = static_cast<uint64_t>(Rep);
        for (uint32_t I = 0; I < N; ++I) {
          setD(Top.get(1), I, I < Half ? coefAt(Seed, N, I) : 0.0);
          setD(Top.get(2), I, 0.0);
          setD(Top.get(3), I, I < Half ? coefAt(Seed + 1, N, I) : 0.0);
          setD(Top.get(4), I, 0.0);
        }
        fftInPlace(M, slot(Top, 1), slot(Top, 2), N, false);
        fftInPlace(M, slot(Top, 3), slot(Top, 4), N, false);
        // Pointwise product into (1, 2); no allocation in the loop.
        {
          Value R1 = Top.get(1), I1 = Top.get(2);
          Value R2 = Top.get(3), I2 = Top.get(4);
          for (uint32_t I = 0; I < N; ++I) {
            double AR = getD(R1, I), AI = getD(I1, I);
            double BR = getD(R2, I), BI = getD(I2, I);
            setD(R1, I, AR * BR - AI * BI);
            setD(I1, I, AR * BI + AI * BR);
          }
        }
        fftInPlace(M, slot(Top, 1), slot(Top, 2), N, true);
        {
          Value R1 = Top.get(1);
          for (uint32_t I = 0; I < N; ++I) {
            int64_t C = static_cast<int64_t>(std::llround(getD(R1, I)));
            Sum = Sum * 31 + static_cast<uint64_t>(C);
          }
        }
      }
    }
    return Sum;
  }

  uint64_t expected(double Scale) override {
    Sizes S = sizesFor(Scale);
    uint64_t Sum = 0;
    for (int Rep = 0; Rep < S.Repeats; ++Rep) {
      for (uint32_t Half = 256; Half <= S.MaxSize / 2; Half <<= 1) {
        uint32_t N = Half * 2;
        uint64_t Seed = static_cast<uint64_t>(Rep);
        std::vector<int64_t> Prod(N, 0);
        for (uint32_t I = 0; I < Half; ++I)
          for (uint32_t J = 0; J < Half; ++J)
            Prod[I + J] += static_cast<int64_t>(coefAt(Seed, N, I)) *
                           coefAt(Seed + 1, N, J);
        for (uint32_t I = 0; I < N; ++I)
          Sum = Sum * 31 + static_cast<uint64_t>(Prod[I]);
      }
    }
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeFFTWorkload() {
  return std::make_unique<FFTWorkload>();
}
