//===- workloads/Workload.h - Benchmark program interface -------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interface of the eleven benchmark programs of paper Table 1. Each is
/// a real program written against the Mutator API whose allocation mix,
/// live-data shape, stack depth and mutation rate mimic the corresponding
/// SML benchmark. Every workload computes a deterministic result that is
/// validated against either a plain-C++ reference implementation or an
/// internal consistency check, so a collector bug shows up as a wrong
/// answer, not just a crash.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_WORKLOADS_WORKLOAD_H
#define TILGC_WORKLOADS_WORKLOAD_H

#include "runtime/Mutator.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace tilgc {

/// A paper benchmark. Scale 1.0 is the default benchmarking size (sized to
/// finish in roughly a second per run on a laptop); the paper's original
/// sizes are larger — pass a bigger scale to approach them.
class Workload {
public:
  virtual ~Workload();

  /// Table 1 name, e.g. "Knuth-Bendix".
  virtual const char *name() const = 0;
  /// Table 1 description.
  virtual const char *description() const = 0;
  /// Table 1 "lines" column (size of the original SML program).
  virtual unsigned paperLines() const = 0;

  /// Runs the program and returns its result checksum.
  virtual uint64_t run(Mutator &M, double Scale) = 0;

  /// The expected checksum at \p Scale, from a reference implementation or
  /// an internal-consistency convention (see each workload).
  virtual uint64_t expected(double Scale) = 0;

  /// Runs and validates in one step.
  bool runAndCheck(Mutator &M, double Scale) {
    return run(M, Scale) == expected(Scale);
  }
};

/// The eleven benchmarks, in Table 1 order. Constructed on first use.
const std::vector<std::unique_ptr<Workload>> &allWorkloads();

/// Finds a benchmark by (case-sensitive) name; null if unknown.
Workload *findWorkload(const char *Name);

/// Builds a fresh private instance by name; null if unknown. Multi-mutator
/// harnesses give each thread its own instance instead of sharing the
/// allWorkloads() singletons.
std::unique_ptr<Workload> makeWorkloadByName(const char *Name);

// Factories (one per benchmark translation unit).
std::unique_ptr<Workload> makeChecksumWorkload();
std::unique_ptr<Workload> makeColorWorkload();
std::unique_ptr<Workload> makeFFTWorkload();
std::unique_ptr<Workload> makeGrobnerWorkload();
std::unique_ptr<Workload> makeKnuthBendixWorkload();
std::unique_ptr<Workload> makeLexgenWorkload();
std::unique_ptr<Workload> makeLifeWorkload();
std::unique_ptr<Workload> makeNqueenWorkload();
std::unique_ptr<Workload> makePegWorkload();
std::unique_ptr<Workload> makePIAWorkload();
std::unique_ptr<Workload> makeSimpleWorkload();

} // namespace tilgc

#endif // TILGC_WORKLOADS_WORKLOAD_H
