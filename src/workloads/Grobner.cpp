//===- workloads/Grobner.cpp - The Gröbner benchmark ------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "Compute Grobner basis of a set of polynomials."
///
/// Buchberger's algorithm over GF(7919) in three variables with graded-lex
/// order. Polynomials are sorted cons lists of unboxed term records; the
/// recursive merges of polynomial addition and the S-polynomial/reduction
/// loop produce the paper's record-heavy allocation profile (139MB
/// allocated, 128KB live, stacks around 16 deep with excursions to ~100).
///
/// Validation: a plain-C++ vector implementation runs the identical
/// algorithm (same pair order, same inverse-free arithmetic) and must
/// produce the identical basis.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <deque>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int64_t P = 7919;

//===----------------------------------------------------------------------===
// Monomials: three exponents packed 8 bits each; graded-lex order.
//===----------------------------------------------------------------------===

int moExp(int Mo, int V) { return (Mo >> (8 * V)) & 0xFF; }
int moDeg(int Mo) { return moExp(Mo, 0) + moExp(Mo, 1) + moExp(Mo, 2); }
int moMul(int A, int B) { return A + B; }
bool moDivides(int A, int B) { // A | B
  return moExp(A, 0) <= moExp(B, 0) && moExp(A, 1) <= moExp(B, 1) &&
         moExp(A, 2) <= moExp(B, 2);
}
int moDiv(int B, int A) { return B - A; }
int moLcm(int A, int B) {
  int L = 0;
  for (int V = 0; V < 3; ++V) {
    int E = moExp(A, V) > moExp(B, V) ? moExp(A, V) : moExp(B, V);
    L |= E << (8 * V);
  }
  return L;
}
/// Graded-lex: higher total degree first, ties by packed value.
bool moGreater(int A, int B) {
  int DA = moDeg(A), DB = moDeg(B);
  if (DA != DB)
    return DA > DB;
  return A > B;
}

//===----------------------------------------------------------------------===
// Reference implementation (plain vectors)
//===----------------------------------------------------------------------===

/// Terms sorted descending by monomial; (mono, coef), coef in [1, P).
using RPoly = std::vector<std::pair<int, int64_t>>;

RPoly refAdd(const RPoly &A, const RPoly &B) {
  RPoly Out;
  size_t I = 0, J = 0;
  while (I < A.size() || J < B.size()) {
    if (J >= B.size() || (I < A.size() && moGreater(A[I].first, B[J].first)))
      Out.push_back(A[I++]);
    else if (I >= A.size() || moGreater(B[J].first, A[I].first))
      Out.push_back(B[J++]);
    else {
      int64_t C = (A[I].second + B[J].second) % P;
      if (C)
        Out.emplace_back(A[I].first, C);
      ++I;
      ++J;
    }
  }
  return Out;
}

RPoly refScaleMul(int64_t C, int Mo, const RPoly &A) {
  RPoly Out;
  C = ((C % P) + P) % P;
  if (!C)
    return Out;
  for (const auto &T : A)
    Out.emplace_back(moMul(T.first, Mo), (T.second * C) % P);
  return Out;
}

/// Top-reduction of A by the basis until its head is irreducible (or A=0).
RPoly refReduce(RPoly A, const std::vector<RPoly> &Basis) {
  bool Changed = true;
  while (!A.empty() && Changed) {
    Changed = false;
    for (const RPoly &G : Basis) {
      if (G.empty() || !moDivides(G[0].first, A[0].first))
        continue;
      // A' = lc(G)*A - lc(A)*x^d*G (heads cancel; inverse-free).
      RPoly T1 = refScaleMul(G[0].second, 0, A);
      RPoly T2 =
          refScaleMul(P - A[0].second, moDiv(A[0].first, G[0].first), G);
      A = refAdd(T1, T2);
      Changed = true;
      break;
    }
  }
  return A;
}

RPoly refSPoly(const RPoly &F, const RPoly &G) {
  int U = moLcm(F[0].first, G[0].first);
  RPoly T1 = refScaleMul(G[0].second, moDiv(U, F[0].first), F);
  RPoly T2 = refScaleMul(P - F[0].second, moDiv(U, G[0].first), G);
  return refAdd(T1, T2);
}

constexpr size_t MaxBasis = 28;
constexpr int MaxPairsProcessed = 160;

uint64_t refBuchberger(std::vector<RPoly> Basis) {
  std::deque<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I < Basis.size(); ++I)
    for (size_t J = I + 1; J < Basis.size(); ++J)
      Pairs.emplace_back(I, J);
  int Processed = 0;
  while (!Pairs.empty() && Processed < MaxPairsProcessed &&
         Basis.size() < MaxBasis) {
    auto [I, J] = Pairs.front();
    Pairs.pop_front();
    ++Processed;
    if (Basis[I].empty() || Basis[J].empty())
      continue;
    // Buchberger's first criterion: coprime heads reduce to zero.
    if (moLcm(Basis[I][0].first, Basis[J][0].first) ==
        moMul(Basis[I][0].first, Basis[J][0].first))
      continue;
    RPoly S = refSPoly(Basis[I], Basis[J]);
    RPoly R = refReduce(std::move(S), Basis);
    if (R.empty())
      continue;
    size_t New = Basis.size();
    Basis.push_back(std::move(R));
    for (size_t K = 0; K < New; ++K)
      Pairs.emplace_back(K, New);
  }
  uint64_t Sum = 5381;
  for (const RPoly &G : Basis) {
    Sum = Sum * 31 + G.size();
    for (const auto &T : G)
      Sum = Sum * 1099511628211ULL +
            (static_cast<uint64_t>(T.first) << 16) +
            static_cast<uint64_t>(T.second);
  }
  return Sum;
}

/// Deterministic input systems (shared plan).
std::vector<RPoly> genSystem(Rng &R) {
  std::vector<RPoly> Sys;
  for (int PI = 0; PI < 3; ++PI) {
    RPoly Poly;
    int Terms = static_cast<int>(R.range(2, 4));
    for (int T = 0; T < Terms; ++T) {
      int Mo = 0;
      for (int V = 0; V < 3; ++V)
        Mo |= static_cast<int>(R.below(3)) << (8 * V);
      int64_t C = static_cast<int64_t>(R.range(1, P - 1));
      RPoly One = {{Mo, C}};
      Poly = refAdd(Poly, One);
    }
    if (!Poly.empty())
      Sys.push_back(Poly);
  }
  return Sys;
}

//===----------------------------------------------------------------------===
// Heap implementation
//===----------------------------------------------------------------------===
//
// Term record {coef, mono}: no pointers. Polynomial: consPtr list of terms,
// sorted descending. Basis: consPtr list of polynomials (newest first; the
// reference indexes it from the back).

uint32_t siteTerm() {
  static const uint32_t S = AllocSiteRegistry::global().define("gb.term");
  return S;
}
uint32_t sitePolyList() {
  static const uint32_t S = AllocSiteRegistry::global().define("gb.poly");
  return S;
}
uint32_t siteBasis() {
  static const uint32_t S = AllocSiteRegistry::global().define("gb.basis");
  return S;
}

uint32_t gbKey(unsigned NumPtrSlots) {
  static const uint32_t K4 = TraceTableRegistry::global().define(FrameLayout(
      "gb.frame4", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                    Trace::pointer()}));
  static const uint32_t K6 = TraceTableRegistry::global().define(FrameLayout(
      "gb.frame6",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer(), Trace::pointer()}));
  if (NumPtrSlots <= 4)
    return K4;
  assert(NumPtrSlots <= 6 && "frame too large");
  return K6;
}

int64_t termCoef(Value T) { return Mutator::getField(T, 0).asInt(); }
int termMono(Value T) {
  return static_cast<int>(Mutator::getField(T, 1).asInt());
}

Value consTerm(Mutator &M, int64_t Coef, int Mono, SlotRef Rest) {
  Frame F(M, gbKey(4)); // 1 = term, 2 = rest.
  F.set(2, Rest.get());
  Value T = M.allocRecord(siteTerm(), 2, 0);
  M.initField(T, 0, Value::fromInt(Coef));
  M.initField(T, 1, Value::fromInt(Mono));
  F.set(1, T);
  return consPtr(M, sitePolyList(), slot(F, 1), slot(F, 2));
}

/// Recursive merge: A + B (mod P), sorted descending, zero terms dropped.
Value addPoly(Mutator &M, SlotRef A, SlotRef B) {
  if (A.get().isNull())
    return B.get();
  if (B.get().isNull())
    return A.get();
  Frame F(M, gbKey(4)); // 1 = rest a, 2 = rest b, 3 = child.
  Value TA = head(A.get()), TB = head(B.get());
  int MoA = termMono(TA), MoB = termMono(TB);
  if (moGreater(MoA, MoB)) {
    int64_t C = termCoef(TA);
    F.set(1, tail(A.get()));
    F.set(2, B.get());
    F.set(3, addPoly(M, slot(F, 1), slot(F, 2)));
    return consTerm(M, C, MoA, slot(F, 3));
  }
  if (moGreater(MoB, MoA)) {
    int64_t C = termCoef(TB);
    F.set(1, A.get());
    F.set(2, tail(B.get()));
    F.set(3, addPoly(M, slot(F, 1), slot(F, 2)));
    return consTerm(M, C, MoB, slot(F, 3));
  }
  int64_t C = (termCoef(TA) + termCoef(TB)) % P;
  F.set(1, tail(A.get()));
  F.set(2, tail(B.get()));
  F.set(3, addPoly(M, slot(F, 1), slot(F, 2)));
  if (!C)
    return F.get(3);
  return consTerm(M, C, MoA, slot(F, 3));
}

/// (C * x^Mo) * A — recursive map.
Value scaleMul(Mutator &M, int64_t C, int Mo, SlotRef A) {
  C = ((C % P) + P) % P;
  if (!C || A.get().isNull())
    return Value::null();
  Frame F(M, gbKey(4)); // 1 = rest, 3 = child.
  Value T = head(A.get());
  int64_t NC = (termCoef(T) * C) % P;
  int NMo = moMul(termMono(T), Mo);
  F.set(1, tail(A.get()));
  F.set(3, scaleMul(M, C, Mo, slot(F, 1)));
  return consTerm(M, NC, NMo, slot(F, 3));
}

/// Top-reduction by the basis list (mirrors refReduce exactly; the basis
/// is iterated back-to-front to match the reference's index order).
Value reduce(Mutator &M, SlotRef AIn, SlotRef Basis) {
  Frame F(M, gbKey(6));
  // 1 = a, 2 = basis cursor, 3 = g, 4 = t1, 5 = t2, 6 = reversed basis.
  F.set(1, AIn.get());
  // Reverse the basis once so iteration order matches the reference
  // (oldest first).
  F.set(2, Basis.get());
  while (!F.get(2).isNull()) {
    F.set(3, head(F.get(2)));
    F.set(6, consPtr(M, siteBasis(), slot(F, 3), slot(F, 6)));
    F.set(2, tail(F.get(2)));
  }
  bool Changed = true;
  while (!F.get(1).isNull() && Changed) {
    Changed = false;
    F.set(2, F.get(6));
    while (!F.get(2).isNull()) {
      F.set(3, head(F.get(2)));
      F.set(2, tail(F.get(2)));
      if (F.get(3).isNull())
        continue;
      Value G = F.get(3), A = F.get(1);
      int GM = termMono(head(G)), AM = termMono(head(A));
      if (!moDivides(GM, AM))
        continue;
      int64_t GC = termCoef(head(G)), AC = termCoef(head(A));
      F.set(4, scaleMul(M, GC, 0, slot(F, 1)));
      F.set(5, scaleMul(M, P - AC, moDiv(AM, GM), slot(F, 3)));
      F.set(1, addPoly(M, slot(F, 4), slot(F, 5)));
      Changed = true;
      break;
    }
  }
  return F.get(1);
}

Value sPoly(Mutator &M, SlotRef FP, SlotRef GP) {
  Frame F(M, gbKey(4)); // 1 = t1, 2 = t2.
  Value FH = head(FP.get()), GH = head(GP.get());
  int U = moLcm(termMono(FH), termMono(GH));
  int64_t FC = termCoef(FH), GC = termCoef(GH);
  int DF = moDiv(U, termMono(FH)), DG = moDiv(U, termMono(GH));
  F.set(1, scaleMul(M, GC, DF, FP));
  F.set(2, scaleMul(M, P - FC, DG, GP));
  return addPoly(M, slot(F, 1), slot(F, 2));
}

/// N-th element of a cons list counted from the BACK (index 0 = oldest),
/// matching the reference's vector indexing. Read-only.
Value nthFromBack(Value List, size_t N) {
  size_t Len = mllib::length(List);
  assert(N < Len && "basis index out of range");
  for (size_t I = 0; I < Len - 1 - N; ++I)
    List = tail(List);
  return head(List);
}

/// Heap Buchberger mirroring refBuchberger step for step.
uint64_t buchberger(Mutator &M, const std::vector<RPoly> &Inputs) {
  Frame F(M, gbKey(6));
  // 1 = basis (newest first), 2 = f, 3 = g, 4 = s, 5 = r, 6 = scratch.

  // Load the inputs (oldest ends up at the back).
  for (const RPoly &Poly : Inputs) {
    F.set(6, Value::null());
    for (auto It = Poly.rbegin(); It != Poly.rend(); ++It)
      F.set(6, consTerm(M, It->second, It->first, slot(F, 6)));
    F.set(1, consPtr(M, siteBasis(), slot(F, 6), slot(F, 1)));
  }

  size_t BasisSize = Inputs.size();
  std::deque<std::pair<size_t, size_t>> Pairs;
  for (size_t I = 0; I < BasisSize; ++I)
    for (size_t J = I + 1; J < BasisSize; ++J)
      Pairs.emplace_back(I, J);

  int Processed = 0;
  while (!Pairs.empty() && Processed < MaxPairsProcessed &&
         BasisSize < MaxBasis) {
    auto [I, J] = Pairs.front();
    Pairs.pop_front();
    ++Processed;
    F.set(2, nthFromBack(F.get(1), I));
    F.set(3, nthFromBack(F.get(1), J));
    if (F.get(2).isNull() || F.get(3).isNull())
      continue;
    int LI = termMono(head(F.get(2))), LJ = termMono(head(F.get(3)));
    if (moLcm(LI, LJ) == moMul(LI, LJ))
      continue;
    F.set(4, sPoly(M, slot(F, 2), slot(F, 3)));
    F.set(5, reduce(M, slot(F, 4), slot(F, 1)));
    if (F.get(5).isNull())
      continue;
    size_t New = BasisSize++;
    F.set(1, consPtr(M, siteBasis(), slot(F, 5), slot(F, 1)));
    for (size_t K = 0; K < New; ++K)
      Pairs.emplace_back(K, New);
  }

  // Checksum in reference order (oldest first).
  uint64_t Sum = 5381;
  for (size_t I = 0; I < BasisSize; ++I) {
    Value G = nthFromBack(F.get(1), I);
    Sum = Sum * 31 + mllib::length(G);
    for (Value L = G; !L.isNull(); L = tail(L)) {
      Value T = head(L);
      Sum = Sum * 1099511628211ULL +
            (static_cast<uint64_t>(termMono(T)) << 16) +
            static_cast<uint64_t>(termCoef(T));
    }
  }
  return Sum;
}

int roundsFor(double Scale) {
  int R = static_cast<int>(24.0 * Scale);
  return R < 1 ? 1 : R;
}

class GrobnerWorkload : public Workload {
public:
  const char *name() const override { return "Gröbner"; }
  const char *description() const override {
    return "Buchberger's algorithm over GF(7919) on random ternary systems";
  }
  unsigned paperLines() const override { return 904; }

  uint64_t run(Mutator &M, double Scale) override {
    Rng R(0x6B0B);
    uint64_t Sum = 0;
    int Rounds = roundsFor(Scale);
    for (int Round = 0; Round < Rounds; ++Round) {
      std::vector<RPoly> Sys = genSystem(R);
      if (Sys.empty())
        continue;
      Sum = Sum * 1099511628211ULL + buchberger(M, Sys);
    }
    return Sum;
  }

  uint64_t expected(double Scale) override {
    Rng R(0x6B0B);
    uint64_t Sum = 0;
    int Rounds = roundsFor(Scale);
    for (int Round = 0; Round < Rounds; ++Round) {
      std::vector<RPoly> Sys = genSystem(R);
      if (Sys.empty())
        continue;
      Sum = Sum * 1099511628211ULL + refBuchberger(Sys);
    }
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeGrobnerWorkload() {
  return std::make_unique<GrobnerWorkload>();
}
