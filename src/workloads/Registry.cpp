//===- workloads/Registry.cpp - Benchmark registry -------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include <cstring>

using namespace tilgc;

Workload::~Workload() = default;

const std::vector<std::unique_ptr<Workload>> &tilgc::allWorkloads() {
  static std::vector<std::unique_ptr<Workload>> All = [] {
    std::vector<std::unique_ptr<Workload>> W;
    W.push_back(makeChecksumWorkload());
    W.push_back(makeColorWorkload());
    W.push_back(makeFFTWorkload());
    W.push_back(makeGrobnerWorkload());
    W.push_back(makeKnuthBendixWorkload());
    W.push_back(makeLexgenWorkload());
    W.push_back(makeLifeWorkload());
    W.push_back(makeNqueenWorkload());
    W.push_back(makePegWorkload());
    W.push_back(makePIAWorkload());
    W.push_back(makeSimpleWorkload());
    return W;
  }();
  return All;
}

Workload *tilgc::findWorkload(const char *Name) {
  for (const auto &W : allWorkloads())
    if (std::strcmp(W->name(), Name) == 0)
      return W.get();
  return nullptr;
}

std::unique_ptr<Workload> tilgc::makeWorkloadByName(const char *Name) {
  using Factory = std::unique_ptr<Workload> (*)();
  static constexpr Factory Factories[] = {
      makeChecksumWorkload, makeColorWorkload,  makeFFTWorkload,
      makeGrobnerWorkload,  makeKnuthBendixWorkload, makeLexgenWorkload,
      makeLifeWorkload,     makeNqueenWorkload, makePegWorkload,
      makePIAWorkload,      makeSimpleWorkload};
  for (Factory F : Factories) {
    std::unique_ptr<Workload> W = F();
    if (std::strcmp(W->name(), Name) == 0)
      return W;
  }
  return nullptr;
}
