//===- workloads/Nqueen.cpp - The Nqueen benchmark -------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "The N-queens problem for n=10."
///
/// Shape being reproduced: moderate stack (placement recursion + a
/// recursive safety check, ~25 frames), bulk allocation of short-lived
/// candidate/board cells, and a small set of sites (the solution copies)
/// whose objects are long-lived with old% ≈ 100 — the paper's Figure 2
/// shows 4 such sites carrying 99% of all copied bytes, which makes Nqueen
/// the flagship pretenuring benchmark (50% GC-time reduction in Table 6).
/// Root processing dominates its GC cost (95% in Table 5).
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/MLLib.h"

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int N = 10;

uint32_t siteCand() {
  static const uint32_t S = AllocSiteRegistry::global().define("nq.cand");
  return S;
}
uint32_t siteBoard() {
  static const uint32_t S = AllocSiteRegistry::global().define("nq.board");
  return S;
}
uint32_t siteSolCell() {
  static const uint32_t S = AllocSiteRegistry::global().define("nq.solcell");
  return S;
}
uint32_t siteSolList() {
  static const uint32_t S = AllocSiteRegistry::global().define("nq.sollist");
  return S;
}

uint32_t siteRef() {
  static const uint32_t S = AllocSiteRegistry::global().define("nq.solref");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("nq.run", {Trace::pointer()}));
  return K;
}
uint32_t keyPlace() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("nq.place", {Trace::pointer(), Trace::pointer(),
                               Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t keySafe() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("nq.safe", {Trace::pointer()}));
  return K;
}

/// Recursive safety check: no allocation, but a frame per board cell so the
/// stack reaches placement depth + board length, like the SML original.
bool safeRec(Mutator &M, int64_t Col, int64_t Dist, SlotRef Board) {
  if (Board.get().isNull())
    return true;
  Frame F(M, keySafe());
  F.set(1, tail(Board.get()));
  int64_t Q = headInt(Board.get());
  if (Q == Col || Q == Col + Dist || Q == Col - Dist)
    return false;
  return safeRec(M, Col, Dist + 1, slot(F, 1));
}

struct SearchCtx {
  Mutator &M;
  Frame &Top; ///< run frame; slot 1 = ref cell holding the solutions list.
  uint64_t Checksum = 0;
  uint64_t NumSolutions = 0;
};

/// Extends the partial board (an int list of columns, most recent first)
/// one row at a time.
void place(SearchCtx &C, int Row, SlotRef Board) {
  Mutator &M = C.M;
  if (Row == N) {
    // A solution: record its checksum and keep a structural copy alive.
    uint64_t Local = 0;
    int I = N;
    for (Value P = Board.get(); !P.isNull(); P = tail(P), --I)
      Local += static_cast<uint64_t>(I) * static_cast<uint64_t>(headInt(P));
    C.Checksum = C.Checksum * 31 + Local;
    ++C.NumSolutions;

    // solutions := copy board :: !solutions (through the ref cell — the
    // only way compiled code can update state owned by an ancestor frame).
    Frame F(M, keyPlace()); // 1 = board, 2 = copy, 3 = old list, 4 = -.
    F.set(1, Board.get());
    F.set(2, copyIntRec(M, siteSolCell(), slot(F, 1)));
    F.set(3, Mutator::getField(C.Top.get(1), 0));
    Value Cell = consPtr(M, siteSolList(), slot(F, 2), slot(F, 3));
    M.writeField(C.Top.get(1), 0, Cell, /*IsPointerField=*/true);
    return;
  }

  Frame F(M, keyPlace()); // 1 = board, 2 = candidates, 3 = extension, 4 = -.
  F.set(1, Board.get());
  // Build the candidate list (bulk, dies almost immediately).
  for (int Col = N; Col >= 1; --Col) {
    if (safeRec(M, Col, 1, slot(F, 1)))
      F.set(2, consInt(M, siteCand(), Col, slot(F, 2)));
  }
  while (!F.get(2).isNull()) {
    int64_t Col = headInt(F.get(2));
    F.set(2, tail(F.get(2)));
    F.set(3, consInt(M, siteBoard(), Col, slot(F, 1)));
    place(C, Row + 1, slot(F, 3));
  }
}

int repeatsFor(double Scale) {
  int Repeats = static_cast<int>(8.0 * Scale);
  return Repeats < 1 ? 1 : Repeats;
}

/// Plain-C++ reference enumerating in the same order.
void referencePlace(int Row, int *Cols, uint64_t &Checksum, uint64_t &Count) {
  if (Row == N) {
    uint64_t Local = 0;
    // The workload walks the board list most-recent-first.
    for (int I = N - 1; I >= 0; --I)
      Local += static_cast<uint64_t>(N - (N - 1 - I)) *
               static_cast<uint64_t>(Cols[I]);
    Checksum = Checksum * 31 + Local;
    ++Count;
    return;
  }
  for (int Col = 1; Col <= N; ++Col) {
    bool Safe = true;
    for (int I = Row - 1, Dist = 1; I >= 0; --I, ++Dist) {
      int Q = Cols[I];
      if (Q == Col || Q == Col + Dist || Q == Col - Dist) {
        Safe = false;
        break;
      }
    }
    if (Safe) {
      Cols[Row] = Col;
      referencePlace(Row + 1, Cols, Checksum, Count);
    }
  }
}

class NqueenWorkload : public Workload {
public:
  const char *name() const override { return "Nqueen"; }
  const char *description() const override {
    return "N-queens (n=10) accumulating solution boards";
  }
  unsigned paperLines() const override { return 73; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, keyRun()); // Slot 1 = ref cell; solutions live to the end.
    Top.set(1, M.allocRecord(siteRef(), 1, 0b1));
    SearchCtx C{M, Top};
    int Repeats = repeatsFor(Scale);
    for (int R = 0; R < Repeats; ++R) {
      Frame F(M, keyPlace());
      place(C, 0, slot(F, 1));
    }
    return (C.NumSolutions << 32) ^ (C.Checksum & 0xFFFFFFFFULL) ^
           mllib::length(Mutator::getField(Top.get(1), 0));
  }

  uint64_t expected(double Scale) override {
    uint64_t Checksum = 0, Count = 0;
    int Cols[N];
    int Repeats = repeatsFor(Scale);
    for (int R = 0; R < Repeats; ++R)
      referencePlace(0, Cols, Checksum, Count);
    return (Count << 32) ^ (Checksum & 0xFFFFFFFFULL) ^ Count;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeNqueenWorkload() {
  return std::make_unique<NqueenWorkload>();
}
