//===- workloads/Simple.cpp - The Simple benchmark --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "A spherical fluid-dynamics program, run for 4 iterations with
/// grid size of 200."
///
/// A Jacobi-style stencil relaxation over fixed-point pressure/energy
/// grids. Each iteration allocates fresh grid arrays (large objects) and
/// rebuilds every row as a cons list of cell records (the record-heavy mix
/// of the paper: 493MB records + 158MB arrays), while per-row summary
/// records accumulate and stay live to the end — the long-lived sites that
/// make Simple a pretenuring target in Table 6 (44% less copying).
///
/// All arithmetic is integer fixed-point, mirrored by the C++ reference.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/MLLib.h"

#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int Side = 128;
constexpr int Cells = Side * Side;

uint32_t siteGrid() {
  static const uint32_t S = AllocSiteRegistry::global().define("simple.grid");
  return S;
}
uint32_t siteCell() {
  static const uint32_t S = AllocSiteRegistry::global().define("simple.cell");
  return S;
}
uint32_t siteRow() {
  static const uint32_t S = AllocSiteRegistry::global().define("simple.row");
  return S;
}
uint32_t siteSummary() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("simple.summary");
  return S;
}
uint32_t siteKeep() {
  static const uint32_t S = AllocSiteRegistry::global().define("simple.keep");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "simple.run", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                     Trace::pointer()}));
  return K;
}
uint32_t keyRow() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "simple.row", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                     Trace::pointer()}));
  return K;
}

int64_t initCell(int R, int C) {
  // A smooth deterministic initial field.
  return ((R * 131 + C * 17) % 1000) << 8;
}

/// Stencil step (pure): damped four-neighbour average plus a source term.
int64_t stencil(int64_t Up, int64_t Down, int64_t Left, int64_t Right,
                int64_t Self, int R, int C) {
  int64_t Avg = (Up + Down + Left + Right) / 4;
  int64_t Source = ((R ^ C) & 15) << 6;
  return Self + ((Avg - Self) * 3) / 4 + Source;
}

/// Builds the row R of the next grid recursively, one activation record
/// and one cell record per column (back to front).
Value buildRow(Mutator &M, SlotRef Old, SlotRef New, int R, int C,
               int64_t &RowSum) {
  if (C >= Side)
    return Value::null();
  Frame F(M, keyRow()); // 1 = old, 2 = new, 3 = rest, 4 = cell record.
  F.set(1, Old.get());
  F.set(2, New.get());

  auto At = [&](int RR, int CC) -> int64_t {
    RR = (RR + Side) % Side;
    CC = (CC + Side) % Side;
    return Value::fromBits(F.get(1).asPtr()[RR * Side + CC]).asInt();
  };
  int64_t V = stencil(At(R - 1, C), At(R + 1, C), At(R, C - 1), At(R, C + 1),
                      At(R, C), R, C);
  RowSum += V;

  F.set(3, buildRow(M, slot(F, 1), slot(F, 2), R, C + 1, RowSum));
  // Cell record {value, col}: bulk, dies with the row list.
  Value Cell = M.allocRecord(siteCell(), 2, 0);
  M.initField(Cell, 0, Value::fromInt(V));
  M.initField(Cell, 1, Value::fromInt(C));
  F.set(4, Cell);
  Value Row = consPtr(M, siteRow(), slot(F, 4), slot(F, 3));
  // Commit the computed value into the (stationary, large-object) new
  // grid; no allocation between the read of F(2) and the store.
  F.get(2).asPtr()[R * Side + C] = Value::fromInt(V).bits();
  return Row;
}

int itersFor(double Scale) {
  int I = static_cast<int>(40.0 * Scale);
  return I < 1 ? 1 : I;
}

class SimpleWorkload : public Workload {
public:
  const char *name() const override { return "Simple"; }
  const char *description() const override {
    return "Fixed-point Jacobi relaxation with per-row cons lists and "
           "long-lived summaries";
  }
  unsigned paperLines() const override { return 870; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, keyRun()); // 1 = grid, 2 = next grid, 3 = summaries,
                            // 4 = row scratch.
    Top.set(1, M.allocNonPtrArray(siteGrid(), Cells));
    {
      Value G = Top.get(1);
      for (int R = 0; R < Side; ++R)
        for (int C = 0; C < Side; ++C)
          G.asPtr()[R * Side + C] = Value::fromInt(initCell(R, C)).bits();
    }

    uint64_t Sum = 0;
    int Iters = itersFor(Scale);
    for (int It = 0; It < Iters; ++It) {
      Top.set(2, M.allocNonPtrArray(siteGrid(), Cells));
      for (int R = 0; R < Side; ++R) {
        int64_t RowSum = 0;
        Top.set(4, buildRow(M, slot(Top, 1), slot(Top, 2), R, 0, RowSum));
        // Long-lived per-row summary {iter*Side+row, rowSum}.
        Value S = M.allocRecord(siteSummary(), 2, 0);
        M.initField(S, 0, Value::fromInt(It * Side + R));
        M.initField(S, 1, Value::fromInt(RowSum));
        Top.set(4, S);
        Top.set(3, consPtr(M, siteKeep(), slot(Top, 4), slot(Top, 3)));
        Sum = Sum * 31 + static_cast<uint64_t>(RowSum);
      }
      Top.set(1, Top.get(2)); // The old grid becomes garbage.
    }
    // Fold the kept summaries (checks they all survived).
    for (Value L = Top.get(3); !L.isNull(); L = tail(L))
      Sum = Sum * 1099511628211ULL +
            static_cast<uint64_t>(Mutator::getField(head(L), 1).asInt());
    return Sum;
  }

  uint64_t expected(double Scale) override {
    std::vector<int64_t> Grid(Cells), Next(Cells);
    for (int R = 0; R < Side; ++R)
      for (int C = 0; C < Side; ++C)
        Grid[static_cast<size_t>(R * Side + C)] = initCell(R, C);

    uint64_t Sum = 0;
    std::vector<int64_t> RowSums;
    int Iters = itersFor(Scale);
    for (int It = 0; It < Iters; ++It) {
      for (int R = 0; R < Side; ++R) {
        int64_t RowSum = 0;
        for (int C = 0; C < Side; ++C) {
          auto At = [&](int RR, int CC) {
            RR = (RR + Side) % Side;
            CC = (CC + Side) % Side;
            return Grid[static_cast<size_t>(RR * Side + CC)];
          };
          int64_t V = stencil(At(R - 1, C), At(R + 1, C), At(R, C - 1),
                              At(R, C + 1), At(R, C), R, C);
          Next[static_cast<size_t>(R * Side + C)] = V;
          RowSum += V;
        }
        RowSums.push_back(RowSum);
        Sum = Sum * 31 + static_cast<uint64_t>(RowSum);
      }
      Grid.swap(Next);
    }
    // The workload's summary list is newest-first.
    for (auto It = RowSums.rbegin(); It != RowSums.rend(); ++It)
      Sum = Sum * 1099511628211ULL + static_cast<uint64_t>(*It);
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeSimpleWorkload() {
  return std::make_unique<SimpleWorkload>();
}
