//===- workloads/Lexgen.cpp - The Lexgen benchmark -------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "A lexical-analyzer generator, processing the lexical
/// description of Standard ML."
///
/// A real McNaughton-Yamada-Aho DFA generator: regex syntax trees for an
/// ML-ish token set (keywords, identifiers, numbers, strings, operators,
/// whitespace, parens), nullable/firstpos/lastpos/followpos over the tree,
/// subset construction with sorted position lists as states, and a
/// maximal-munch tokenizer driven by the generated tables over synthetic
/// program text. Every generated DFA is kept alive (paper: ~3.5MB live,
/// a pretenuring target in Table 6).
///
/// Deep stacks come from two sources, as in the SML original: the
/// recursive sorted-set unions of the followpos computation, and the
/// recursive construction of the output token list (one activation record
/// per token; paper: max 1802 frames, avg 714).
///
/// Polymorphism: the generic polyCons helpers allocate through a
/// Compute-traced slot guided by a runtime type descriptor — TIL's
/// intensional-polymorphism idiom, exercised at real collection points.
///
/// Validation: the synthetic input is rendered from a token plan, so the
/// tokenizer's (kind, length) stream must reproduce the plan exactly — an
/// end-to-end check of the generator.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <string>
#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

//===----------------------------------------------------------------------===
// Alphabet and token set
//===----------------------------------------------------------------------===

// Symbols: 'a'..'z' -> 0..25, '0'..'9' -> 26..35, ' ' 36, '"' 37,
// '+' 38, '-' 39, '*' 40, '<' 41, '=' 42, '(' 43, ')' 44.
constexpr int NumSymbols = 45;
constexpr int SymSpace = 36, SymQuote = 37, SymLParen = 43, SymRParen = 44;

int charSym(char C) {
  if (C >= 'a' && C <= 'z')
    return C - 'a';
  TILGC_UNREACHABLE("only letters appear in keywords");
}

const std::vector<std::string> &keywords() {
  static const std::vector<std::string> KW = {
      "if",  "then", "else",   "fun",  "let",    "in",
      "end", "val",  "struct", "open", "handle", "raise"};
  return KW;
}

// Token kinds, in priority (declaration) order; keywords are 0..11.
enum TokenKind : int {
  TokId = 12,
  TokNum = 13,
  TokStr = 14,
  TokOp = 15,
  TokLParen = 16,
  TokRParen = 17,
  TokWs = 18,
};

//===----------------------------------------------------------------------===
// Sites and frame layouts
//===----------------------------------------------------------------------===

uint32_t siteNode() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.node");
  return S;
}
uint32_t sitePosSet() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.posset");
  return S;
}
uint32_t siteState() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.state");
  return S;
}
uint32_t siteStateList() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("lex.statelist");
  return S;
}
uint32_t siteTrans() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.trans");
  return S;
}
uint32_t siteFollowArr() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.follow");
  return S;
}
uint32_t siteInput() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.input");
  return S;
}
uint32_t siteToken() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.token");
  return S;
}
uint32_t siteKeep() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.keep");
  return S;
}

uint32_t lexKey(unsigned NumPtrSlots) {
  static const uint32_t K3 = TraceTableRegistry::global().define(FrameLayout(
      "lex.frame3", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  static const uint32_t K6 = TraceTableRegistry::global().define(FrameLayout(
      "lex.frame6",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer(), Trace::pointer()}));
  if (NumPtrSlots <= 3)
    return K3;
  assert(NumPtrSlots <= 6 && "frame too large");
  return K6;
}

//===----------------------------------------------------------------------===
// Polymorphic cons (runtime type descriptors + Compute traces)
//===----------------------------------------------------------------------===

uint32_t polyKey() {
  // Slot 1 = type descriptor (pointer); slot 2 = the element, whose
  // pointer-ness the scanner computes from slot 1; slot 3 = the list.
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "lex.polyCons",
      {Trace::pointer(), Trace::computeFromSlot(1), Trace::pointer()}));
  return K;
}

/// Generic cons of a pointer element (the descriptor says "pointer").
Value polyConsPtr(Mutator &M, uint32_t Site, SlotRef Elem, SlotRef List) {
  Frame F(M, polyKey());
  F.set(1, M.allocTypeDesc(true));
  F.set(2, Elem.get());
  F.set(3, List.get());
  Value Cell = M.allocRecord(Site, 2, PtrConsMask);
  M.initField(Cell, 0, F.get(2));
  M.initField(Cell, 1, F.get(3));
  return Cell;
}

/// Generic cons of an unboxed element (the descriptor says "non-pointer").
Value polyConsInt(Mutator &M, uint32_t Site, int64_t Elem, SlotRef List) {
  Frame F(M, polyKey());
  F.set(1, M.allocTypeDesc(false));
  F.set(2, Value::fromInt(Elem));
  F.set(3, List.get());
  Value Cell = M.allocRecord(Site, 2, IntConsMask);
  M.initField(Cell, 0, F.get(2));
  M.initField(Cell, 1, F.get(3));
  return Cell;
}

//===----------------------------------------------------------------------===
// Regex nodes
//===----------------------------------------------------------------------===
//
// Char {tag=0, sym, pos} / End {tag=5, token, pos}: no pointers.
// Eps {tag=1}. Cat/Or {tag, left, right}: mask 0b110. Star {tag, c}: 0b10.

enum NodeTag : int64_t {
  TagChar = 0,
  TagEps = 1,
  TagCat = 2,
  TagOr = 3,
  TagStar = 4,
  TagEnd = 5
};

int64_t nodeTag(Value N) { return Mutator::getField(N, 0).asInt(); }

Value mkLeaf(Mutator &M, int64_t Tag, int64_t A, int64_t B) {
  Value N = M.allocRecord(siteNode(), 3, 0);
  M.initField(N, 0, Value::fromInt(Tag));
  M.initField(N, 1, Value::fromInt(A));
  M.initField(N, 2, Value::fromInt(B));
  return N;
}

Value mkEps(Mutator &M) {
  Value N = M.allocRecord(siteNode(), 1, 0);
  M.initField(N, 0, Value::fromInt(TagEps));
  return N;
}

Value mkBin(Mutator &M, int64_t Tag, SlotRef L, SlotRef R) {
  Value N = M.allocRecord(siteNode(), 3, 0b110);
  M.initField(N, 0, Value::fromInt(Tag));
  M.initField(N, 1, L.get());
  M.initField(N, 2, R.get());
  return N;
}

Value mkStar(Mutator &M, SlotRef C) {
  Value N = M.allocRecord(siteNode(), 2, 0b10);
  M.initField(N, 0, Value::fromInt(TagStar));
  M.initField(N, 1, C.get());
  return N;
}

//===----------------------------------------------------------------------===
// Sorted position sets
//===----------------------------------------------------------------------===

/// Recursive sorted union — one of the deep-stack workhorses here.
Value posUnion(Mutator &M, SlotRef A, SlotRef B) {
  if (A.get().isNull())
    return B.get();
  if (B.get().isNull())
    return A.get();
  Frame F(M, lexKey(3)); // 1 = rest a, 2 = rest b, 3 = child result.
  int64_t HA = headInt(A.get()), HB = headInt(B.get());
  int64_t H;
  if (HA == HB) {
    H = HA;
    F.set(1, tail(A.get()));
    F.set(2, tail(B.get()));
  } else if (HA < HB) {
    H = HA;
    F.set(1, tail(A.get()));
    F.set(2, B.get());
  } else {
    H = HB;
    F.set(1, A.get());
    F.set(2, tail(B.get()));
  }
  F.set(3, posUnion(M, slot(F, 1), slot(F, 2)));
  return consInt(M, sitePosSet(), H, slot(F, 3));
}

bool posEqual(Value A, Value B) {
  while (!A.isNull() && !B.isNull()) {
    if (headInt(A) != headInt(B))
      return false;
    A = tail(A);
    B = tail(B);
  }
  return A.isNull() && B.isNull();
}

//===----------------------------------------------------------------------===
// nullable / firstpos / lastpos / followpos
//===----------------------------------------------------------------------===

bool nullable(Value N) {
  switch (nodeTag(N)) {
  case TagChar:
  case TagEnd:
    return false;
  case TagEps:
  case TagStar:
    return true;
  case TagCat:
    return nullable(Mutator::getField(N, 1)) &&
           nullable(Mutator::getField(N, 2));
  case TagOr:
    return nullable(Mutator::getField(N, 1)) ||
           nullable(Mutator::getField(N, 2));
  }
  TILGC_UNREACHABLE("bad node tag");
}

Value posOf(Mutator &M, SlotRef N, bool First) {
  int64_t Tag = nodeTag(N.get());
  if (Tag == TagChar || Tag == TagEnd) {
    Frame F(M, lexKey(3));
    return consInt(M, sitePosSet(), Mutator::getField(N.get(), 2).asInt(),
                   slot(F, 1));
  }
  if (Tag == TagEps)
    return Value::null();
  Frame F(M, lexKey(3)); // 1 = left, 2 = right, 3 = partial.
  if (Tag == TagStar) {
    F.set(1, Mutator::getField(N.get(), 1));
    return posOf(M, slot(F, 1), First);
  }
  F.set(1, Mutator::getField(N.get(), 1));
  F.set(2, Mutator::getField(N.get(), 2));
  if (Tag == TagOr) {
    F.set(3, posOf(M, slot(F, 1), First));
    F.set(1, posOf(M, slot(F, 2), First));
    return posUnion(M, slot(F, 3), slot(F, 1));
  }
  // Cat.
  SlotRef Main = First ? slot(F, 1) : slot(F, 2);
  SlotRef Other = First ? slot(F, 2) : slot(F, 1);
  if (nullable(Main.get())) {
    F.set(3, posOf(M, Main, First));
    Value OtherSet = posOf(M, Other, First);
    // Careful: Main/Other alias F slots; store before union.
    Frame G(M, lexKey(3));
    G.set(1, OtherSet);
    G.set(2, F.get(3));
    return posUnion(M, slot(G, 2), slot(G, 1));
  }
  return posOf(M, Main, First);
}

Value firstpos(Mutator &M, SlotRef N) { return posOf(M, N, true); }
Value lastpos(Mutator &M, SlotRef N) { return posOf(M, N, false); }

/// followpos: Follow is a pointer array indexed by position.
void computeFollow(Mutator &M, SlotRef N, SlotRef Follow) {
  int64_t Tag = nodeTag(N.get());
  if (Tag == TagChar || Tag == TagEnd || Tag == TagEps)
    return;
  Frame F(M, lexKey(6));
  // 1 = left/child, 2 = right, 3 = lastpos, 4 = firstpos, 5 = cursor,
  // 6 = merged.
  if (Tag == TagStar) {
    F.set(1, Mutator::getField(N.get(), 1));
    computeFollow(M, slot(F, 1), Follow);
    F.set(3, lastpos(M, slot(F, 1)));
    F.set(4, firstpos(M, slot(F, 1)));
  } else {
    F.set(1, Mutator::getField(N.get(), 1));
    F.set(2, Mutator::getField(N.get(), 2));
    computeFollow(M, slot(F, 1), Follow);
    computeFollow(M, slot(F, 2), Follow);
    if (Tag != TagCat)
      return;
    F.set(3, lastpos(M, slot(F, 1)));
    F.set(4, firstpos(M, slot(F, 2)));
  }
  F.set(5, F.get(3));
  while (!F.get(5).isNull()) {
    int64_t P = headInt(F.get(5));
    F.set(6, Mutator::getField(Follow.get(), static_cast<uint32_t>(P)));
    F.set(6, posUnion(M, slot(F, 6), slot(F, 4)));
    M.writeField(Follow.get(), static_cast<uint32_t>(P), F.get(6),
                 /*IsPointerField=*/true);
    F.set(5, tail(F.get(5)));
  }
}

//===----------------------------------------------------------------------===
// Token-rule construction
//===----------------------------------------------------------------------===

struct BuildCtx {
  std::vector<int> PosSym;   ///< Position -> symbol (or -1 for End).
  std::vector<int> PosToken; ///< Position -> token kind (End) or -1.

  BuildCtx() {
    PosSym.push_back(-2); // Position 0 unused.
    PosToken.push_back(-1);
  }

  int newPos(int Sym, int Token) {
    int P = static_cast<int>(PosSym.size());
    PosSym.push_back(Sym);
    PosToken.push_back(Token);
    return P;
  }

  int numPositions() const { return static_cast<int>(PosSym.size()); }
};

Value mkLiteral(Mutator &M, BuildCtx &B, const std::string &S) {
  Frame F(M, lexKey(3)); // 1 = acc, 2 = char node.
  for (char C : S) {
    int Sym = charSym(C);
    F.set(2, mkLeaf(M, TagChar, Sym, B.newPos(Sym, -1)));
    F.set(1, F.get(1).isNull() ? F.get(2)
                               : mkBin(M, TagCat, slot(F, 1), slot(F, 2)));
  }
  return F.get(1);
}

Value mkClass(Mutator &M, BuildCtx &B, const std::vector<int> &Syms) {
  Frame F(M, lexKey(3));
  for (int Sym : Syms) {
    F.set(2, mkLeaf(M, TagChar, Sym, B.newPos(Sym, -1)));
    F.set(1, F.get(1).isNull() ? F.get(2)
                               : mkBin(M, TagOr, slot(F, 1), slot(F, 2)));
  }
  return F.get(1);
}

std::vector<int> letterSyms() {
  std::vector<int> S;
  for (int I = 0; I < 26; ++I)
    S.push_back(I);
  return S;
}
std::vector<int> digitSyms() {
  std::vector<int> S;
  for (int I = 26; I < 36; ++I)
    S.push_back(I);
  return S;
}
std::vector<int> opSyms() { return {38, 39, 40, 41, 42}; }
std::vector<int> strBodySyms() {
  std::vector<int> S = letterSyms();
  for (int D : digitSyms())
    S.push_back(D);
  S.push_back(SymSpace);
  return S;
}

Value withEnd(Mutator &M, BuildCtx &B, SlotRef Re, int Token) {
  Frame F(M, lexKey(3));
  F.set(1, mkLeaf(M, TagEnd, Token, B.newPos(-1, Token)));
  return mkBin(M, TagCat, Re, slot(F, 1));
}

/// X X* (one-or-more over a class).
Value mkPlus(Mutator &M, BuildCtx &B, const std::vector<int> &Syms) {
  Frame F(M, lexKey(3));
  F.set(1, mkClass(M, B, Syms));
  F.set(2, mkClass(M, B, Syms));
  F.set(2, mkStar(M, slot(F, 2)));
  return mkBin(M, TagCat, slot(F, 1), slot(F, 2));
}

/// The complete token set as one Or-tree.
Value buildTokenTree(Mutator &M, BuildCtx &B) {
  Frame F(M, lexKey(6)); // 1 = acc, 2 = rule, 3/4 = parts.
  auto AddRule = [&](Value Rule) {
    F.set(2, Rule);
    F.set(1, F.get(1).isNull() ? F.get(2)
                               : mkBin(M, TagOr, slot(F, 1), slot(F, 2)));
  };

  for (size_t K = 0; K < keywords().size(); ++K) {
    F.set(3, mkLiteral(M, B, keywords()[K]));
    AddRule(withEnd(M, B, slot(F, 3), static_cast<int>(K)));
  }
  { // ID: letter (letter|digit)*.
    F.set(3, mkClass(M, B, letterSyms()));
    std::vector<int> Both = letterSyms();
    for (int D : digitSyms())
      Both.push_back(D);
    F.set(4, mkClass(M, B, Both));
    F.set(4, mkStar(M, slot(F, 4)));
    F.set(3, mkBin(M, TagCat, slot(F, 3), slot(F, 4)));
    AddRule(withEnd(M, B, slot(F, 3), TokId));
  }
  { // NUM.
    F.set(3, mkPlus(M, B, digitSyms()));
    AddRule(withEnd(M, B, slot(F, 3), TokNum));
  }
  { // STR: " body* ".
    F.set(3, mkLeaf(M, TagChar, SymQuote, B.newPos(SymQuote, -1)));
    F.set(4, mkClass(M, B, strBodySyms()));
    F.set(4, mkStar(M, slot(F, 4)));
    F.set(3, mkBin(M, TagCat, slot(F, 3), slot(F, 4)));
    F.set(4, mkLeaf(M, TagChar, SymQuote, B.newPos(SymQuote, -1)));
    F.set(3, mkBin(M, TagCat, slot(F, 3), slot(F, 4)));
    AddRule(withEnd(M, B, slot(F, 3), TokStr));
  }
  { // OP.
    F.set(3, mkPlus(M, B, opSyms()));
    AddRule(withEnd(M, B, slot(F, 3), TokOp));
  }
  { // Parens.
    F.set(3, mkLeaf(M, TagChar, SymLParen, B.newPos(SymLParen, -1)));
    AddRule(withEnd(M, B, slot(F, 3), TokLParen));
    F.set(3, mkLeaf(M, TagChar, SymRParen, B.newPos(SymRParen, -1)));
    AddRule(withEnd(M, B, slot(F, 3), TokRParen));
  }
  { // WS: space+.
    F.set(3, mkPlus(M, B, {SymSpace}));
    AddRule(withEnd(M, B, slot(F, 3), TokWs));
  }
  (void)mkEps; // Eps exists for completeness of the node kinds.
  return F.get(1);
}

//===----------------------------------------------------------------------===
// Subset construction
//===----------------------------------------------------------------------===

// State record: {id, posSet, trans, accept}; mask 0b0110.
Value statePosSet(Value S) { return Mutator::getField(S, 1); }
Value stateTrans(Value S) { return Mutator::getField(S, 2); }
int64_t stateId(Value S) { return Mutator::getField(S, 0).asInt(); }
int64_t stateAccept(Value S) { return Mutator::getField(S, 3).asInt(); }

int64_t acceptOf(Value PosSet, const BuildCtx &B) {
  int64_t Best = -1;
  for (Value L = PosSet; !L.isNull(); L = tail(L)) {
    int Token = B.PosToken[static_cast<size_t>(headInt(L))];
    if (Token >= 0 && (Best < 0 || Token < Best))
      Best = Token;
  }
  return Best;
}

Value findState(Value States, Value PosSet) {
  for (Value L = States; !L.isNull(); L = tail(L))
    if (posEqual(statePosSet(head(L)), PosSet))
      return head(L);
  return Value::null();
}

Value makeState(Mutator &M, SlotRef PosSet, int Id, const BuildCtx &B) {
  Frame F(M, lexKey(3)); // 1 = state, 2 = trans array.
  Value S = M.allocRecord(siteState(), 4, 0b0110);
  M.initField(S, 0, Value::fromInt(Id));
  M.initField(S, 1, PosSet.get());
  M.initField(S, 3, Value::fromInt(acceptOf(PosSet.get(), B)));
  F.set(1, S);
  F.set(2, M.allocPtrArray(siteTrans(), NumSymbols));
  // The state was just allocated but the array allocation may have moved
  // it; re-read and use a barriered write (the state may have been
  // pretenured into the old generation).
  M.writeField(F.get(1), 2, F.get(2), /*IsPointerField=*/true);
  return F.get(1);
}

/// Union of follow[p] over p in PosSet with sym(p) == Sym.
Value targetSet(Mutator &M, SlotRef PosSet, SlotRef Follow, int Sym,
                const BuildCtx &B) {
  Frame F(M, lexKey(3)); // 1 = cursor, 2 = acc, 3 = follow entry.
  F.set(1, PosSet.get());
  while (!F.get(1).isNull()) {
    int64_t P = headInt(F.get(1));
    if (B.PosSym[static_cast<size_t>(P)] == Sym) {
      F.set(3, Mutator::getField(Follow.get(), static_cast<uint32_t>(P)));
      F.set(2, posUnion(M, slot(F, 3), slot(F, 2)));
    }
    F.set(1, tail(F.get(1)));
  }
  return F.get(2);
}

struct DfaStats {
  int NumStates = 0;
  uint64_t Transitions = 0;
};

/// Runs the subset construction; returns the state list (start state has
/// id 0 and sits at the list's tail end).
Value buildDfa(Mutator &M, SlotRef Root, SlotRef Follow, const BuildCtx &B,
               DfaStats &Out) {
  Frame F(M, lexKey(6));
  // 1 = states, 2 = worklist, 3 = current, 4 = target set, 5 = state,
  // 6 = scratch.
  F.set(4, firstpos(M, Root));
  F.set(5, makeState(M, slot(F, 4), 0, B));
  F.set(1, polyConsPtr(M, siteStateList(), slot(F, 5), slot(F, 1)));
  F.set(2, F.get(1));
  int NumStates = 1;

  while (!F.get(2).isNull()) {
    F.set(3, head(F.get(2)));
    F.set(2, tail(F.get(2)));
    for (int Sym = 0; Sym < NumSymbols; ++Sym) {
      F.set(6, statePosSet(F.get(3)));
      F.set(4, targetSet(M, slot(F, 6), Follow, Sym, B));
      if (F.get(4).isNull())
        continue;
      F.set(5, findState(F.get(1), F.get(4)));
      if (F.get(5).isNull()) {
        F.set(5, makeState(M, slot(F, 4), NumStates++, B));
        F.set(1, polyConsPtr(M, siteStateList(), slot(F, 5), slot(F, 1)));
        F.set(2, polyConsPtr(M, siteStateList(), slot(F, 5), slot(F, 2)));
      }
      M.writeField(stateTrans(F.get(3)), static_cast<uint32_t>(Sym),
                   F.get(5), /*IsPointerField=*/true);
      ++Out.Transitions;
    }
  }
  Out.NumStates = NumStates;
  return F.get(1);
}

//===----------------------------------------------------------------------===
// Tokenizing
//===----------------------------------------------------------------------===

/// Longest-match token starting at \p I (read-only; no allocation).
/// Returns the token kind and writes the end offset through \p EndOut;
/// kind -1 means no match.
int64_t matchAt(Value Start, Value Input, int64_t I, int64_t Len,
                int64_t &EndOut) {
  Value Cur = Start;
  int64_t LastAccept = -1, LastEnd = I, J = I;
  if (stateAccept(Cur) >= 0) {
    LastAccept = stateAccept(Cur);
    LastEnd = J;
  }
  while (J < Len) {
    int64_t Sym = static_cast<int64_t>(Input.asPtr()[J]);
    Value Next = Mutator::getField(stateTrans(Cur),
                                   static_cast<uint32_t>(Sym));
    if (Next.isNull())
      break;
    Cur = Next;
    ++J;
    if (stateAccept(Cur) >= 0) {
      LastAccept = stateAccept(Cur);
      LastEnd = J;
    }
  }
  EndOut = LastEnd;
  return LastAccept;
}

uint32_t siteLexeme() {
  static const uint32_t S = AllocSiteRegistry::global().define("lex.lexeme");
  return S;
}

/// Recursive maximal-munch tokenization building the token list back to
/// front: one activation record per token — the paper's deep Lexgen stack.
/// Each token also materializes its lexeme as a char list, the way ML
/// lexers build the matched string (bulk, short-lived allocation).
Value tokenizeRec(Mutator &M, SlotRef Start, SlotRef Input, int64_t I,
                  int64_t Len) {
  if (I >= Len)
    return Value::null();
  Frame F(M, lexKey(6)); // 1 = start, 2 = input, 3 = rest, 4 = lexeme.
  F.set(1, Start.get());
  F.set(2, Input.get());
  int64_t End = I;
  int64_t Kind = matchAt(F.get(1), F.get(2), I, Len, End);
  if (Kind < 0 || End == I)
    return polyConsInt(M, siteToken(), -1, slot(F, 3)); // Lexical error.
  for (int64_t C = End; C > I; --C) {
    int64_t Sym = static_cast<int64_t>(F.get(2).asPtr()[C - 1]);
    F.set(4, consInt(M, siteLexeme(), Sym, slot(F, 4)));
  }
  F.set(3, tokenizeRec(M, slot(F, 1), slot(F, 2), End, Len));
  // Token cell payload: kind * 2^20 + length.
  return polyConsInt(M, siteToken(), Kind * (1 << 20) + (End - I),
                     slot(F, 3));
}

//===----------------------------------------------------------------------===
// Input generation (the shared plan)
//===----------------------------------------------------------------------===

struct PlannedToken {
  int Kind;
  std::vector<int> Syms;
};

/// Renders a deterministic token stream; WS separates every pair.
std::vector<PlannedToken> makePlan(Rng &R, int NumTokens) {
  std::vector<PlannedToken> Plan;
  auto PushWs = [&] {
    PlannedToken T;
    T.Kind = TokWs;
    int N = static_cast<int>(R.range(1, 3));
    T.Syms.assign(static_cast<size_t>(N), SymSpace);
    Plan.push_back(T);
  };
  for (int I = 0; I < NumTokens; ++I) {
    if (I)
      PushWs();
    PlannedToken T;
    switch (R.below(7)) {
    case 0: { // Keyword.
      size_t K = R.below(keywords().size());
      T.Kind = static_cast<int>(K);
      for (char C : keywords()[K])
        T.Syms.push_back(charSym(C));
      break;
    }
    case 1: { // ID (contains a digit, so it never collides with keywords).
      T.Kind = TokId;
      T.Syms.push_back(static_cast<int>(R.below(26)));
      T.Syms.push_back(26 + static_cast<int>(R.below(10)));
      int Extra = static_cast<int>(R.range(0, 5));
      for (int E = 0; E < Extra; ++E)
        T.Syms.push_back(static_cast<int>(R.below(36)));
      break;
    }
    case 2: { // NUM.
      T.Kind = TokNum;
      int Len = static_cast<int>(R.range(1, 6));
      for (int E = 0; E < Len; ++E)
        T.Syms.push_back(26 + static_cast<int>(R.below(10)));
      break;
    }
    case 3: { // STR.
      T.Kind = TokStr;
      T.Syms.push_back(SymQuote);
      int Len = static_cast<int>(R.range(0, 8));
      for (int E = 0; E < Len; ++E) {
        uint64_t C = R.below(37);
        T.Syms.push_back(C == 36 ? SymSpace : static_cast<int>(C));
      }
      T.Syms.push_back(SymQuote);
      break;
    }
    case 4: { // OP.
      T.Kind = TokOp;
      int Len = static_cast<int>(R.range(1, 3));
      for (int E = 0; E < Len; ++E)
        T.Syms.push_back(38 + static_cast<int>(R.below(5)));
      break;
    }
    case 5:
      T.Kind = TokLParen;
      T.Syms.push_back(SymLParen);
      break;
    default:
      T.Kind = TokRParen;
      T.Syms.push_back(SymRParen);
      break;
    }
    Plan.push_back(T);
  }
  return Plan;
}

uint64_t planChecksum(const std::vector<PlannedToken> &Plan) {
  uint64_t Sum = 5381;
  for (const PlannedToken &T : Plan)
    Sum = Sum * 31 +
          static_cast<uint64_t>(T.Kind * (1 << 20) +
                                static_cast<int>(T.Syms.size()));
  return Sum;
}

struct Sizes {
  int Rounds;
  int TokensPerRound;
};

Sizes sizesFor(double Scale) {
  Sizes S;
  S.Rounds = static_cast<int>(6.0 * Scale);
  if (S.Rounds < 1)
    S.Rounds = 1;
  S.TokensPerRound = 2600;
  return S;
}

//===----------------------------------------------------------------------===
// The workload
//===----------------------------------------------------------------------===

class LexgenWorkload : public Workload {
public:
  const char *name() const override { return "Lexgen"; }
  const char *description() const override {
    return "Regex-to-DFA generator + maximal-munch tokenizer over an ML "
           "token set";
  }
  unsigned paperLines() const override { return 1123; }

  uint64_t run(Mutator &M, double Scale) override {
    Sizes S = sizesFor(Scale);
    Rng R(0x13EC5);
    Frame Top(M, lexKey(6));
    // 1 = kept DFAs, 2 = syntax tree, 3 = follow array, 4 = states,
    // 5 = input, 6 = tokens / start.
    uint64_t Sum = 0;
    for (int Round = 0; Round < S.Rounds; ++Round) {
      // Build the generator's inputs fresh each round (each DFA is kept).
      BuildCtx B;
      Top.set(2, buildTokenTree(M, B));
      Top.set(3, M.allocPtrArray(siteFollowArr(),
                                 static_cast<uint32_t>(B.numPositions())));
      computeFollow(M, slot(Top, 2), slot(Top, 3));
      DfaStats DS;
      Top.set(4, buildDfa(M, slot(Top, 2), slot(Top, 3), B, DS));
      Top.set(1, polyConsPtr(M, siteKeep(), slot(Top, 4), slot(Top, 1)));
      // Sanity-poison the checksum if the construction degenerated.
      if (DS.NumStates < 20)
        Sum ^= 0xDEADBEEFULL;

      // Tokenize a plan-generated input with the fresh DFA.
      std::vector<PlannedToken> Plan = makePlan(R, S.TokensPerRound);
      int64_t Len = 0;
      for (const PlannedToken &T : Plan)
        Len += static_cast<int64_t>(T.Syms.size());
      Top.set(5, M.allocNonPtrArray(siteInput(), static_cast<uint32_t>(Len)));
      {
        int64_t I = 0;
        for (const PlannedToken &T : Plan)
          for (int Sym : T.Syms)
            M.initField(Top.get(5), static_cast<uint32_t>(I++),
                        Value::fromInt(Sym));
      }
      // Start state = id 0 (tail end of the state list).
      Top.set(6, Top.get(4));
      while (stateId(head(Top.get(6))) != 0)
        Top.set(6, tail(Top.get(6)));
      Top.set(6, head(Top.get(6)));
      Top.set(6, tokenizeRec(M, slot(Top, 6), slot(Top, 5), 0, Len));

      uint64_t TokSum = 5381;
      for (Value L = Top.get(6); !L.isNull(); L = tail(L))
        TokSum = TokSum * 31 + static_cast<uint64_t>(headInt(L));
      Sum = Sum * 1099511628211ULL + TokSum;
    }
    return Sum;
  }

  uint64_t expected(double Scale) override {
    // The input is rendered from the plan, so the DFA must recover the
    // plan's exact (kind, length) stream — an end-to-end check of the
    // whole generator pipeline.
    Sizes S = sizesFor(Scale);
    Rng R(0x13EC5);
    uint64_t Sum = 0;
    for (int Round = 0; Round < S.Rounds; ++Round) {
      std::vector<PlannedToken> Plan = makePlan(R, S.TokensPerRound);
      Sum = Sum * 1099511628211ULL + planChecksum(Plan);
    }
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeLexgenWorkload() {
  return std::make_unique<LexgenWorkload>();
}
