//===- workloads/Peg.cpp - The Peg benchmark -------------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "Solving a peg-jumping game, using the output of a Prolog to
/// ML translator."
///
/// Depth-first peg-solitaire search on the 33-hole English board in the
/// Prolog-translation style: failure is an exception. Every subtree
/// signals exhaustion by raising Fail to its caller's handler, and budget
/// exhaustion raises an Abort that is re-raised level by level — so the
/// run performs hundreds of thousands of raises, exercising the
/// stack-marker exception watermark M of §5.
///
/// The board is a mutable pointer array updated through the write barrier:
/// every move performs three barriered pointer stores and every undo three
/// more. This reproduces the paper's Peg pathology — four orders of
/// magnitude more pointer updates than any other benchmark (Table 2:
/// 2,974,688), flooding the sequential store buffer ("a more realistic
/// approach such as card-marking would probably ameliorate most of the
/// problems") — see bench/ablation_barriers.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/MLLib.h"

#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

// The English board: a 7x7 grid with the 2x2 corners removed; 33 holes.
// Cells are numbered row-major over valid positions.
struct BoardGeometry {
  int CellIndex[7][7];
  struct Move {
    int From, Over, To;
  };
  std::vector<Move> Moves;

  BoardGeometry() {
    int Next = 0;
    for (int R = 0; R < 7; ++R)
      for (int C = 0; C < 7; ++C)
        CellIndex[R][C] = valid(R, C) ? Next++ : -1;
    // All jump moves in a fixed (row-major, E/W/S/N) order.
    const int DR[4] = {0, 0, 1, -1};
    const int DC[4] = {1, -1, 0, 0};
    for (int R = 0; R < 7; ++R)
      for (int C = 0; C < 7; ++C) {
        if (!valid(R, C))
          continue;
        for (int D = 0; D < 4; ++D) {
          int R1 = R + DR[D], C1 = C + DC[D];
          int R2 = R + 2 * DR[D], C2 = C + 2 * DC[D];
          if (R2 < 0 || R2 >= 7 || C2 < 0 || C2 >= 7 || !valid(R1, C1) ||
              !valid(R2, C2))
            continue;
          Moves.push_back(Move{CellIndex[R][C], CellIndex[R1][C1],
                               CellIndex[R2][C2]});
        }
      }
  }

  static bool valid(int R, int C) {
    return (R >= 2 && R <= 4) || (C >= 2 && C <= 4);
  }
};

const BoardGeometry &geometry() {
  static const BoardGeometry G;
  return G;
}

constexpr int NumCells = 33;
constexpr int CenterCell = 16; // (3,3) in cell numbering.

uint32_t siteBoard() {
  static const uint32_t S = AllocSiteRegistry::global().define("peg.board");
  return S;
}
uint32_t sitePeg() {
  static const uint32_t S = AllocSiteRegistry::global().define("peg.peg");
  return S;
}
uint32_t siteExn() {
  static const uint32_t S = AllocSiteRegistry::global().define("peg.exn");
  return S;
}
uint32_t siteTrail() {
  static const uint32_t S = AllocSiteRegistry::global().define("peg.trail");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "peg.run", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}
uint32_t keySolve() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "peg.solve", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  return K;
}

// Exception payloads: records {kind} — 0 = Fail, 1 = Abort.
bool isAbort(Value Exn) { return Mutator::getField(Exn, 0).asInt() == 1; }

Value mkExn(Mutator &M, int64_t Kind) {
  Value E = M.allocRecord(siteExn(), 1, 0);
  M.initField(E, 0, Value::fromInt(Kind));
  return E;
}

struct SearchCtx {
  Mutator &M;
  Frame &Top; ///< 1 = board, 2 = fail exn, 3 = abort exn.
  uint64_t Budget;
  uint64_t Nodes = 0;
  uint64_t Solutions = 0;
  uint64_t Checksum = 0;
};

/// The recursive solver. NEVER returns normally: it raises Fail when the
/// subtree is exhausted and Abort when the node budget runs out (both in
/// the Prolog-translation style the paper's benchmark came from).
[[noreturn]] void solve(SearchCtx &C, int Pegs) {
  Mutator &M = C.M;
  Frame F(M, keySolve()); // 1 = fresh peg, 2 = trail cell, 3 = scratch.

  ++C.Nodes;
  if (C.Nodes >= C.Budget)
    M.raise(C.Top.get(3)); // Abort.
  if (Pegs == 1) {
    ++C.Solutions;
    C.Checksum = C.Checksum * 31 + 77;
    M.raise(C.Top.get(2)); // Keep enumerating: a solution is also a "fail".
  }

  const BoardGeometry &G = geometry();
  for (size_t MI = 0; MI < G.Moves.size(); ++MI) {
    const BoardGeometry::Move &Mv = G.Moves[MI];
    Value Board = C.Top.get(1);
    if (Mutator::getField(Board, static_cast<uint32_t>(Mv.From)).isNull() ||
        Mutator::getField(Board, static_cast<uint32_t>(Mv.Over)).isNull() ||
        !Mutator::getField(Board, static_cast<uint32_t>(Mv.To)).isNull())
      continue;

    C.Checksum = C.Checksum * 1099511628211ULL + MI;

    // Prolog translations rebuild terms per inference step: a move
    // descriptor and a trail cell per attempt (bulk, short-lived).
    {
      Value Desc = M.allocRecord(siteTrail(), 3, 0);
      M.initField(Desc, 0, Value::fromInt(Mv.From));
      M.initField(Desc, 1, Value::fromInt(Mv.Over));
      M.initField(Desc, 2, Value::fromInt(Mv.To));
      F.set(2, Desc);
      F.set(2, consPtr(M, siteTrail(), slot(F, 2), slot(F, 3)));
    }

    // Apply: three barriered pointer stores; the landing peg is a fresh
    // record (Prolog translations rebuild terms rather than reuse them).
    F.set(1, M.allocRecord(sitePeg(), 1, 0));
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.To), F.get(1), true);
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.From), Value::null(),
                 true);
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.Over), Value::null(),
                 true);

    uint64_t H = M.pushHandler(F.base());
    bool Aborting = false;
    try {
      solve(C, Pegs - 1);
    } catch (MLRaise &R) {
      if (R.HandlerId != H)
        throw;
      Aborting = isAbort(R.Exn);
    }

    // Undo: two fresh pegs back, landing cell cleared (three more
    // barriered stores).
    F.set(1, M.allocRecord(sitePeg(), 1, 0));
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.From), F.get(1),
                 true);
    F.set(1, M.allocRecord(sitePeg(), 1, 0));
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.Over), F.get(1),
                 true);
    M.writeField(C.Top.get(1), static_cast<uint32_t>(Mv.To), Value::null(),
                 true);

    if (Aborting)
      M.raise(C.Top.get(3)); // Re-raise level by level.
  }
  M.raise(C.Top.get(2)); // Subtree exhausted.
}

/// Reference search with identical traversal and counters.
struct RefCtx {
  uint64_t Budget;
  uint64_t Nodes = 0;
  uint64_t Solutions = 0;
  uint64_t Checksum = 0;
  bool Aborted = false;
};

void referenceSolve(RefCtx &C, std::vector<char> &Board, int Pegs) {
  ++C.Nodes;
  if (C.Nodes >= C.Budget) {
    C.Aborted = true;
    return;
  }
  if (Pegs == 1) {
    ++C.Solutions;
    C.Checksum = C.Checksum * 31 + 77;
    return;
  }
  const BoardGeometry &G = geometry();
  for (size_t MI = 0; MI < G.Moves.size(); ++MI) {
    const BoardGeometry::Move &Mv = G.Moves[MI];
    if (!Board[static_cast<size_t>(Mv.From)] ||
        !Board[static_cast<size_t>(Mv.Over)] ||
        Board[static_cast<size_t>(Mv.To)])
      continue;
    C.Checksum = C.Checksum * 1099511628211ULL + MI;
    Board[static_cast<size_t>(Mv.From)] = 0;
    Board[static_cast<size_t>(Mv.Over)] = 0;
    Board[static_cast<size_t>(Mv.To)] = 1;
    referenceSolve(C, Board, Pegs - 1);
    Board[static_cast<size_t>(Mv.From)] = 1;
    Board[static_cast<size_t>(Mv.Over)] = 1;
    Board[static_cast<size_t>(Mv.To)] = 0;
    if (C.Aborted)
      return;
  }
}

uint64_t budgetFor(double Scale) {
  uint64_t B = static_cast<uint64_t>(120000.0 * Scale);
  return B < 500 ? 500 : B;
}

class PegWorkload : public Workload {
public:
  const char *name() const override { return "Peg"; }
  const char *description() const override {
    return "Peg solitaire with exception-driven backtracking and a "
           "barrier-heavy mutable board";
  }
  unsigned paperLines() const override { return 458; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, keyRun());
    Top.set(1, M.allocPtrArray(siteBoard(), NumCells));
    for (int I = 0; I < NumCells; ++I) {
      if (I == CenterCell)
        continue;
      // Each peg allocation may promote the board, so these are mutating
      // stores (barriered), not initializing ones.
      Value Peg = M.allocRecord(sitePeg(), 1, 0);
      M.writeField(Top.get(1), static_cast<uint32_t>(I), Peg,
                   /*IsPointerField=*/true);
    }
    Top.set(2, mkExn(M, 0)); // Fail.
    Top.set(3, mkExn(M, 1)); // Abort.

    SearchCtx C{M, Top, budgetFor(Scale)};
    uint64_t H = M.pushHandler(Top.base());
    try {
      solve(C, NumCells - 1);
    } catch (MLRaise &R) {
      if (R.HandlerId != H)
        throw;
      // Fail = exhausted the whole tree; Abort = budget. Both fine.
    }
    // Trail-keeping cons so the trail site exists in profiles.
    Top.set(3, Value::null());
    Top.set(2, consInt(M, siteTrail(), static_cast<int64_t>(C.Nodes),
                       slot(Top, 3)));
    return (C.Solutions << 40) ^ C.Checksum ^ (C.Nodes << 1);
  }

  uint64_t expected(double Scale) override {
    std::vector<char> Board(NumCells, 1);
    Board[CenterCell] = 0;
    RefCtx C{budgetFor(Scale)};
    referenceSolve(C, Board, NumCells - 1);
    return (C.Solutions << 40) ^ C.Checksum ^ (C.Nodes << 1);
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makePegWorkload() {
  return std::make_unique<PegWorkload>();
}
