//===- workloads/Color.cpp - The Color benchmark ---------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "Brute-force graph coloring."
///
/// DFS enumeration of the 4-colorings of a 460-vertex chordal-path graph,
/// one activation record per vertex: the stack sits near full depth for
/// almost the whole run (paper: max 482 frames, avg 469.7) over almost no
/// live data — the second showcase for generational stack collection
/// (74.3% GC-time reduction in Table 5).
///
/// This workload also exercises the callee-save register machinery the
/// two-pass stack scan exists for: each recursion level keeps its current
/// assignment list in register r1 (a per-frame register definition) and
/// saves its caller's r1 into a CalleeSave-traced slot, so at a collection
/// the scanner must chain register state through ~460 frames.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

constexpr int NumVertices = 460;
constexpr int NumColors = 4;
constexpr unsigned AssignReg = 1;

uint32_t siteAssign() {
  static const uint32_t S = AllocSiteRegistry::global().define("color.assign");
  return S;
}
uint32_t siteCand() {
  static const uint32_t S = AllocSiteRegistry::global().define("color.cand");
  return S;
}
uint32_t siteStats() {
  static const uint32_t S = AllocSiteRegistry::global().define("color.stats");
  return S;
}
uint32_t siteMark() {
  static const uint32_t S = AllocSiteRegistry::global().define("color.mark");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "color.run", {Trace::pointer(), Trace::pointer()},
      {RegAction{AssignReg, Trace::nonPointer()}}));
  return K;
}
uint32_t keyColor() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "color.vertex",
      {Trace::calleeSave(AssignReg), Trace::pointer(), Trace::pointer(),
       Trace::pointer()},
      {RegAction{AssignReg, Trace::pointer()}}));
  return K;
}

/// Deterministic chordal path graph: every vertex is adjacent to its
/// predecessor, plus an occasional chord a few steps back.
std::vector<std::vector<int>> buildGraph() {
  Rng R(0xC0102);
  std::vector<std::vector<int>> Adj(NumVertices);
  for (int V = 1; V < NumVertices; ++V) {
    Adj[static_cast<size_t>(V)].push_back(V - 1);
    if (V >= 3 && R.chance(1, 3)) {
      int U = static_cast<int>(R.range(V >= 8 ? V - 8 : 0, V - 2));
      Adj[static_cast<size_t>(V)].push_back(U);
    }
  }
  return Adj;
}

struct SearchCtx {
  Mutator &M;
  Frame &Top; ///< Slot 1 = stats record (ptr field updated periodically).
  const std::vector<std::vector<int>> &Adj;
  uint64_t Budget;
  uint64_t Visits = 0;
  uint64_t Completions = 0;
  uint64_t Checksum = 0;
};

/// Color of vertex U given the assignment list whose head is vertex
/// Current-1 (read-only walk).
int colorOf(Value Assign, int Current, int U) {
  for (int I = Current - 1; I > U; --I)
    Assign = tail(Assign);
  return static_cast<int>(headInt(Assign));
}

void colorVertex(SearchCtx &C, int V) {
  Mutator &M = C.M;
  if (C.Visits >= C.Budget)
    return;
  if (V == NumVertices) {
    ++C.Completions;
    C.Checksum = C.Checksum * 31 + 1;
    return;
  }
  // Slot 1 saves the caller's r1 (callee-save); 2 = candidates; 3 = own
  // assignment; 4 = scratch for pointer updates.
  Frame F(M, keyColor());
  F.set(1, M.getRegister(AssignReg));

  // Candidate colors (bulk garbage), iterated in ascending order.
  for (int K = NumColors; K >= 1; --K) {
    bool Valid = true;
    for (int U : C.Adj[static_cast<size_t>(V)]) {
      if (colorOf(F.get(1), V, U) == K) {
        Valid = false;
        break;
      }
    }
    if (Valid)
      F.set(2, consInt(M, siteCand(), K, slot(F, 2)));
  }

  while (!F.get(2).isNull() && C.Visits < C.Budget) {
    int64_t K = headInt(F.get(2));
    F.set(2, tail(F.get(2)));
    ++C.Visits;
    C.Checksum =
        C.Checksum * 1099511628211ULL + static_cast<uint64_t>(V) * 17 +
        static_cast<uint64_t>(K);
    // The paper's Color performs a notable number of pointer updates
    // (Table 2: 1215); model them as periodic stats-record writes.
    if ((C.Visits & 4095) == 0) {
      F.set(4, C.M.allocRecord(siteMark(), 1, 0));
      M.writeField(C.Top.get(1), 1, F.get(4), /*IsPointerField=*/true);
    }
    F.set(3, consInt(M, siteAssign(), K, slot(F, 1)));
    M.setRegister(AssignReg, F.get(3)); // Own register definition.
    colorVertex(C, V + 1);
  }
  // Callee-save restore.
  M.setRegister(AssignReg, F.get(1));
}

/// Reference enumeration (identical traversal order and budget).
void referenceColor(const std::vector<std::vector<int>> &Adj, int V,
                    std::vector<int> &Colors, uint64_t Budget,
                    uint64_t &Visits, uint64_t &Completions,
                    uint64_t &Checksum) {
  if (Visits >= Budget)
    return;
  if (V == NumVertices) {
    ++Completions;
    Checksum = Checksum * 31 + 1;
    return;
  }
  for (int K = 1; K <= NumColors && Visits < Budget; ++K) {
    bool Valid = true;
    for (int U : Adj[static_cast<size_t>(V)]) {
      if (Colors[static_cast<size_t>(U)] == K) {
        Valid = false;
        break;
      }
    }
    if (!Valid)
      continue;
    ++Visits;
    Checksum = Checksum * 1099511628211ULL + static_cast<uint64_t>(V) * 17 +
               static_cast<uint64_t>(K);
    Colors[static_cast<size_t>(V)] = K;
    referenceColor(Adj, V + 1, Colors, Budget, Visits, Completions, Checksum);
    Colors[static_cast<size_t>(V)] = 0;
  }
}

uint64_t budgetFor(double Scale) {
  uint64_t B = static_cast<uint64_t>(500000.0 * Scale);
  return B < 1000 ? 1000 : B;
}

class ColorWorkload : public Workload {
public:
  const char *name() const override { return "Color"; }
  const char *description() const override {
    return "Brute-force 4-coloring of a 460-vertex chordal path";
  }
  unsigned paperLines() const override { return 110; }

  uint64_t run(Mutator &M, double Scale) override {
    std::vector<std::vector<int>> Adj = buildGraph();
    Frame Top(M, keyRun()); // 1 = stats record, 2 = scratch.
    Top.set(1, M.allocRecord(siteStats(), 2, 0b10));
    M.setRegister(AssignReg, Value::null());

    SearchCtx C{M, Top, Adj, budgetFor(Scale)};
    colorVertex(C, 0);
    M.setRegister(AssignReg, Value::null());
    return (C.Completions << 40) ^ C.Checksum;
  }

  uint64_t expected(double Scale) override {
    std::vector<std::vector<int>> Adj = buildGraph();
    std::vector<int> Colors(NumVertices, 0);
    uint64_t Visits = 0, Completions = 0, Checksum = 0;
    referenceColor(Adj, 0, Colors, budgetFor(Scale), Visits, Completions,
                   Checksum);
    return (Completions << 40) ^ Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeColorWorkload() {
  return std::make_unique<ColorWorkload>();
}
