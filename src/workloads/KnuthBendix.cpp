//===- workloads/KnuthBendix.cpp - The Knuth-Bendix benchmark --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "An implementation of the Knuth-Bendix completion algorithm."
///
/// A real completion engine: first-order terms, one-way matching,
/// unification with occurs check, a Knuth-Bendix ordering (weights
/// w(e)=w(*)=1, w(i)=0, precedence i > * > e), critical pairs, and the
/// completion loop. It completes the free-group axioms
///
///     1*x = x      i(x)*x = 1      (x*y)*z = x*(y*z)
///
/// to the classical ten-rule system, then normalizes a batch of large
/// random group words over two generators, keeping every original and
/// normal form alive to the end.
///
/// Shape being reproduced: the paper's deepest stacks (recursive
/// normalization of large terms; avg 1336 frames, max 4234) over a
/// monotonically growing live set — the flagship for generational stack
/// collection (67.5% GC-time reduction in Table 5), and the profile in
/// Figure 2: bulk sites with old% = 0 beside rule/word sites with
/// old% > 99.
///
/// Validation: ground normal forms of the completed system are exactly the
/// reduced, right-associated free-group words, so a plain-C++ free-group
/// reducer independently predicts every checksum; the rule count must be
/// the classical 10 after interreduction.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"
#include "workloads/MLLib.h"

#include <vector>

using namespace tilgc;
using namespace tilgc::mllib;

namespace {

//===----------------------------------------------------------------------===
// Term representation
//===----------------------------------------------------------------------===
//
// Var:  record {tag=0, index}                      (no pointers)
// App:  record {tag=1, symbol, args-list pointer}  (mask 0b100)
// Args: cons list of term pointers.
// Rule / pair: record {lhs, rhs} (mask 0b11), kept in cons lists.
// Substitution: cons list of binding records {varIdx, term} (mask 0b10).

enum Symbol : int64_t { SymE = 0, SymI = 1, SymM = 2, SymA = 3, SymB = 4 };

uint32_t siteVar() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.var");
  return S;
}
uint32_t siteApp() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.app");
  return S;
}
uint32_t siteArgs() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.args");
  return S;
}
uint32_t siteSubst() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.subst");
  return S;
}
uint32_t siteRule() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.rule");
  return S;
}
uint32_t siteRuleList() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.rulelist");
  return S;
}
uint32_t sitePair() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.pair");
  return S;
}
uint32_t siteWordApp() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.word.app");
  return S;
}
uint32_t siteWordArgs() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("kb.word.args");
  return S;
}
uint32_t siteWordKeep() {
  static const uint32_t S = AllocSiteRegistry::global().define("kb.wordkeep");
  return S;
}

/// Shared small/medium/large frame layouts (all-pointer slots), like a
/// compiler reusing common frame shapes.
uint32_t kbKey(unsigned NumPtrSlots) {
  static const uint32_t K3 = TraceTableRegistry::global().define(FrameLayout(
      "kb.frame3", {Trace::pointer(), Trace::pointer(), Trace::pointer()}));
  static const uint32_t K5 = TraceTableRegistry::global().define(FrameLayout(
      "kb.frame5", {Trace::pointer(), Trace::pointer(), Trace::pointer(),
                    Trace::pointer(), Trace::pointer()}));
  static const uint32_t K8 = TraceTableRegistry::global().define(FrameLayout(
      "kb.frame8",
      {Trace::pointer(), Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer(), Trace::pointer(), Trace::pointer(),
       Trace::pointer()}));
  if (NumPtrSlots <= 3)
    return K3;
  if (NumPtrSlots <= 5)
    return K5;
  assert(NumPtrSlots <= 8 && "frame too large");
  return K8;
}

// Read-only term accessors (no allocation — raw Values are safe).
bool isVar(Value T) { return Mutator::getField(T, 0).asInt() == 0; }
int64_t varIdx(Value T) { return Mutator::getField(T, 1).asInt(); }
int64_t appSym(Value T) { return Mutator::getField(T, 1).asInt(); }
Value appArgs(Value T) { return Mutator::getField(T, 2); }
Value arg0(Value T) { return head(appArgs(T)); }
Value arg1(Value T) { return head(tail(appArgs(T))); }

Value mkVar(Mutator &M, int64_t Idx) {
  Value V = M.allocRecord(siteVar(), 2, 0);
  M.initField(V, 0, Value::fromInt(0));
  M.initField(V, 1, Value::fromInt(Idx));
  return V;
}

struct TermSites {
  uint32_t App;
  uint32_t Args;
};

TermSites rwSites() { return TermSites{siteApp(), siteArgs()}; }
TermSites wordSites() { return TermSites{siteWordApp(), siteWordArgs()}; }

Value mkAppFromArgs(Mutator &M, int64_t Sym, SlotRef Args,
                    TermSites Sites = TermSites{0, 0}) {
  if (!Sites.App)
    Sites = rwSites();
  Value T = M.allocRecord(Sites.App, 3, 0b100);
  M.initField(T, 0, Value::fromInt(1));
  M.initField(T, 1, Value::fromInt(Sym));
  M.initField(T, 2, Args.get());
  return T;
}

Value mkApp0(Mutator &M, int64_t Sym, TermSites Sites = TermSites{0, 0}) {
  if (!Sites.App)
    Sites = rwSites();
  Frame F(M, kbKey(3));
  return mkAppFromArgs(M, Sym, slot(F, 1), Sites); // Empty args list.
}

Value mkApp1(Mutator &M, int64_t Sym, SlotRef A,
             TermSites Sites = TermSites{0, 0}) {
  if (!Sites.App)
    Sites = rwSites();
  Frame F(M, kbKey(3));
  F.set(1, consPtr(M, Sites.Args, A, slot(F, 2)));
  return mkAppFromArgs(M, Sym, slot(F, 1), Sites);
}

Value mkApp2(Mutator &M, int64_t Sym, SlotRef A, SlotRef B,
             TermSites Sites = TermSites{0, 0}) {
  if (!Sites.App)
    Sites = rwSites();
  Frame F(M, kbKey(3));
  F.set(1, consPtr(M, Sites.Args, B, slot(F, 2)));
  F.set(1, consPtr(M, Sites.Args, A, slot(F, 1)));
  return mkAppFromArgs(M, Sym, slot(F, 1), Sites);
}

//===----------------------------------------------------------------------===
// Pure (non-allocating) term analysis
//===----------------------------------------------------------------------===

bool termEq(Value A, Value B) {
  if (A.asPtr() == B.asPtr())
    return true;
  if (isVar(A) != isVar(B))
    return false;
  if (isVar(A))
    return varIdx(A) == varIdx(B);
  if (appSym(A) != appSym(B))
    return false;
  Value LA = appArgs(A), LB = appArgs(B);
  while (!LA.isNull() && !LB.isNull()) {
    if (!termEq(head(LA), head(LB)))
      return false;
    LA = tail(LA);
    LB = tail(LB);
  }
  return LA.isNull() && LB.isNull();
}

int64_t symWeight(int64_t Sym) { return Sym == SymI ? 0 : 1; }
int64_t symPrec(int64_t Sym) {
  switch (Sym) {
  case SymI:
    return 4;
  case SymM:
    return 3;
  case SymA:
    return 2;
  case SymB:
    return 1;
  case SymE:
  default:
    return 0;
  }
}

int64_t termWeight(Value T) {
  if (isVar(T))
    return 1;
  int64_t W = symWeight(appSym(T));
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    W += termWeight(head(L));
  return W;
}

void countVars(Value T, int64_t *Counts, unsigned MaxVars) {
  if (isVar(T)) {
    assert(varIdx(T) >= 0 && varIdx(T) < static_cast<int64_t>(MaxVars));
    ++Counts[varIdx(T)];
    return;
  }
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    countVars(head(L), Counts, MaxVars);
}

constexpr unsigned MaxVars = 128;

bool occursIn(int64_t Idx, Value T) {
  if (isVar(T))
    return varIdx(T) == Idx;
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    if (occursIn(Idx, head(L)))
      return true;
  return false;
}

/// Knuth-Bendix ordering: S > T?
bool kboGreater(Value S, Value T) {
  int64_t CS[MaxVars] = {0}, CT[MaxVars] = {0};
  countVars(S, CS, MaxVars);
  countVars(T, CT, MaxVars);
  for (unsigned I = 0; I < MaxVars; ++I)
    if (CT[I] > CS[I])
      return false;
  if (termEq(S, T))
    return false;
  int64_t WS = termWeight(S), WT = termWeight(T);
  if (WS != WT)
    return WS > WT;
  // Equal weights.
  if (isVar(T))
    return !isVar(S); // S properly contains the variable (checked above).
  if (isVar(S))
    return false;
  int64_t PS = symPrec(appSym(S)), PT = symPrec(appSym(T));
  if (PS != PT)
    return PS > PT;
  Value LA = appArgs(S), LB = appArgs(T);
  while (!LA.isNull() && !LB.isNull()) {
    if (!termEq(head(LA), head(LB)))
      return kboGreater(head(LA), head(LB));
    LA = tail(LA);
    LB = tail(LB);
  }
  return false;
}

/// Binding lookup in a substitution (read-only).
Value lookupVar(Value Subst, int64_t Idx) {
  for (Value L = Subst; !L.isNull(); L = tail(L)) {
    Value Bind = head(L);
    if (Mutator::getField(Bind, 0).asInt() == Idx)
      return Mutator::getField(Bind, 1);
  }
  return Value::null();
}

//===----------------------------------------------------------------------===
// Allocating term operations (frame-disciplined)
//===----------------------------------------------------------------------===

/// sigma(T): recursive substitution application. Unbound variables are
/// shared, not copied.
Value applySubst(Mutator &M, SlotRef T, SlotRef Subst) {
  if (isVar(T.get())) {
    Value Bound = lookupVar(Subst.get(), varIdx(T.get()));
    return Bound.isNull() ? T.get() : Bound;
  }
  // 1 = args cursor, 2 = rebuilt args (reversed), 3 = subst, 4 = scratch,
  // 5 = result args.
  Frame F(M, kbKey(5));
  int64_t Sym = appSym(T.get());
  F.set(1, appArgs(T.get()));
  F.set(3, Subst.get());
  while (!F.get(1).isNull()) {
    F.set(4, head(F.get(1)));
    F.set(1, tail(F.get(1)));
    F.set(4, applySubst(M, slot(F, 4), slot(F, 3)));
    F.set(2, consPtr(M, siteArgs(), slot(F, 4), slot(F, 2)));
  }
  // Reverse the rebuilt args (arity <= 2, cheap).
  while (!F.get(2).isNull()) {
    F.set(4, head(F.get(2)));
    F.set(2, tail(F.get(2)));
    F.set(5, consPtr(M, siteArgs(), slot(F, 4), slot(F, 5)));
  }
  return mkAppFromArgs(M, Sym, slot(F, 5));
}

/// Renames every variable in T by +Offset (fresh copy).
Value renameVars(Mutator &M, SlotRef T, int64_t Offset) {
  if (isVar(T.get()))
    return mkVar(M, varIdx(T.get()) + Offset);
  Frame F(M, kbKey(5)); // 1 = cursor, 2 = reversed, 4 = scratch, 5 = args.
  int64_t Sym = appSym(T.get());
  F.set(1, appArgs(T.get()));
  while (!F.get(1).isNull()) {
    F.set(4, head(F.get(1)));
    F.set(1, tail(F.get(1)));
    F.set(4, renameVars(M, slot(F, 4), Offset));
    F.set(2, consPtr(M, siteArgs(), slot(F, 4), slot(F, 2)));
  }
  while (!F.get(2).isNull()) {
    F.set(4, head(F.get(2)));
    F.set(2, tail(F.get(2)));
    F.set(5, consPtr(M, siteArgs(), slot(F, 4), slot(F, 5)));
  }
  return mkAppFromArgs(M, Sym, slot(F, 5));
}

/// Result of an extending operation on substitutions. Callers must store
/// Subst into a frame slot before the next allocation (like any returned
/// Value).
struct SubstResult {
  bool Ok;
  Value Subst;
};

/// One-way matching: returns the substitution extended so that
/// sigma(Pat) == Subj. Subject variables act as constants.
SubstResult matchRec(Mutator &M, SlotRef Pat, SlotRef Subj, SlotRef Subst) {
  if (isVar(Pat.get())) {
    Value Bound = lookupVar(Subst.get(), varIdx(Pat.get()));
    if (!Bound.isNull())
      return {termEq(Bound, Subj.get()), Subst.get()};
    Frame F(M, kbKey(3)); // 1 = binding, 2 = subst.
    F.set(2, Subst.get());
    Value Bind = M.allocRecord(siteSubst(), 2, 0b10);
    M.initField(Bind, 0, Value::fromInt(varIdx(Pat.get())));
    M.initField(Bind, 1, Subj.get());
    F.set(1, Bind);
    return {true, consPtr(M, siteSubst(), slot(F, 1), slot(F, 2))};
  }
  if (isVar(Subj.get()) || appSym(Pat.get()) != appSym(Subj.get()))
    return {false, Value::null()};
  Frame F(M, kbKey(5)); // 1 = pat args, 2 = subj args, 3/4 = heads, 5 = σ.
  F.set(1, appArgs(Pat.get()));
  F.set(2, appArgs(Subj.get()));
  F.set(5, Subst.get());
  while (!F.get(1).isNull()) {
    F.set(3, head(F.get(1)));
    F.set(4, head(F.get(2)));
    SubstResult R = matchRec(M, slot(F, 3), slot(F, 4), slot(F, 5));
    if (!R.Ok)
      return {false, Value::null()};
    F.set(5, R.Subst);
    F.set(1, tail(F.get(1)));
    F.set(2, tail(F.get(2)));
  }
  return {true, F.get(5)};
}

/// Dereferences a term through the substitution until it is not a bound
/// variable (read-only).
Value walk(Value T, Value Subst) {
  while (isVar(T)) {
    Value Bound = lookupVar(Subst, varIdx(T));
    if (Bound.isNull())
      return T;
    T = Bound;
  }
  return T;
}

/// Full (triangular) occurs check through the substitution.
bool occursWalked(int64_t Idx, Value T, Value Subst) {
  T = walk(T, Subst);
  if (isVar(T))
    return varIdx(T) == Idx;
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    if (occursWalked(Idx, head(L), Subst))
      return true;
  return false;
}

/// Unification with occurs check; returns the extended triangular
/// substitution.
SubstResult unifyRec(Mutator &M, SlotRef A, SlotRef B, SlotRef Subst) {
  Frame F(M, kbKey(5)); // 1 = a, 2 = b, 3/4 = arg heads, 5 = σ.
  F.set(5, Subst.get());
  F.set(1, walk(A.get(), F.get(5)));
  F.set(2, walk(B.get(), F.get(5)));
  if (isVar(F.get(1)) && isVar(F.get(2)) &&
      varIdx(F.get(1)) == varIdx(F.get(2)))
    return {true, F.get(5)};
  if (isVar(F.get(1)) || isVar(F.get(2))) {
    // Bind the variable side.
    bool VarIsA = isVar(F.get(1));
    SlotRef VarSide = VarIsA ? slot(F, 1) : slot(F, 2);
    SlotRef TermSide = VarIsA ? slot(F, 2) : slot(F, 1);
    int64_t Idx = varIdx(VarSide.get());
    if (occursWalked(Idx, TermSide.get(), F.get(5)))
      return {false, Value::null()};
    Value Bind = M.allocRecord(siteSubst(), 2, 0b10);
    M.initField(Bind, 0, Value::fromInt(Idx));
    M.initField(Bind, 1, TermSide.get());
    F.set(3, Bind);
    return {true, consPtr(M, siteSubst(), slot(F, 3), slot(F, 5))};
  }
  if (appSym(F.get(1)) != appSym(F.get(2)))
    return {false, Value::null()};
  F.set(1, appArgs(F.get(1)));
  F.set(2, appArgs(F.get(2)));
  while (!F.get(1).isNull()) {
    F.set(3, head(F.get(1)));
    F.set(4, head(F.get(2)));
    SubstResult R = unifyRec(M, slot(F, 3), slot(F, 4), slot(F, 5));
    if (!R.Ok)
      return {false, Value::null()};
    F.set(5, R.Subst);
    F.set(1, tail(F.get(1)));
    F.set(2, tail(F.get(2)));
  }
  return {true, F.get(5)};
}

/// Resolves a triangular substitution fully over a term.
Value resolve(Mutator &M, SlotRef T, SlotRef Subst) {
  Frame F(M, kbKey(8)); // 1 = t, 2 = subst, 4 = scratch, 5/6 = arg lists.
  F.set(1, walk(T.get(), Subst.get()));
  F.set(2, Subst.get());
  if (isVar(F.get(1)))
    return F.get(1);
  int64_t Sym = appSym(F.get(1));
  F.set(3, appArgs(F.get(1)));
  while (!F.get(3).isNull()) {
    F.set(4, head(F.get(3)));
    F.set(3, tail(F.get(3)));
    F.set(4, resolve(M, slot(F, 4), slot(F, 2)));
    F.set(5, consPtr(M, siteArgs(), slot(F, 4), slot(F, 5)));
  }
  while (!F.get(5).isNull()) {
    F.set(4, head(F.get(5)));
    F.set(5, tail(F.get(5)));
    F.set(6, consPtr(M, siteArgs(), slot(F, 4), slot(F, 6)));
  }
  return mkAppFromArgs(M, Sym, slot(F, 6));
}

//===----------------------------------------------------------------------===
// Rewriting
//===----------------------------------------------------------------------===

Value ruleLhs(Value R) { return Mutator::getField(R, 0); }
Value ruleRhs(Value R) { return Mutator::getField(R, 1); }

Value mkRule(Mutator &M, SlotRef Lhs, SlotRef Rhs) {
  Value R = M.allocRecord(siteRule(), 2, 0b11);
  M.initField(R, 0, Lhs.get());
  M.initField(R, 1, Rhs.get());
  return R;
}

/// Tries one rewrite step at the root; returns null if no rule applies.
Value rewriteRoot(Mutator &M, SlotRef T, SlotRef Rules) {
  Frame F(M, kbKey(8)); // 1 = rules cursor, 2 = subst, 3 = lhs, 4 = rhs.
  F.set(1, Rules.get());
  while (!F.get(1).isNull()) {
    F.set(2, Value::null());
    F.set(3, ruleLhs(head(F.get(1))));
    F.set(4, ruleRhs(head(F.get(1))));
    SubstResult R = matchRec(M, slot(F, 3), T, slot(F, 2));
    if (R.Ok) {
      F.set(2, R.Subst);
      return applySubst(M, slot(F, 4), slot(F, 2));
    }
    F.set(1, tail(F.get(1)));
  }
  return Value::null();
}

/// Innermost normalization. Deeply recursive over the term structure —
/// this is where the paper's KB stacks come from.
Value normalize(Mutator &M, SlotRef T, SlotRef Rules) {
  if (isVar(T.get()))
    return T.get();
  Frame F(M, kbKey(8));
  // 1 = args cursor, 2 = reversed args, 3 = rules, 4 = scratch, 5 = args,
  // 6 = candidate, 7 = rewritten.
  F.set(3, Rules.get());
  int64_t Sym = appSym(T.get());
  F.set(1, appArgs(T.get()));
  while (!F.get(1).isNull()) {
    F.set(4, head(F.get(1)));
    F.set(1, tail(F.get(1)));
    F.set(4, normalize(M, slot(F, 4), slot(F, 3)));
    F.set(2, consPtr(M, siteArgs(), slot(F, 4), slot(F, 2)));
  }
  while (!F.get(2).isNull()) {
    F.set(4, head(F.get(2)));
    F.set(2, tail(F.get(2)));
    F.set(5, consPtr(M, siteArgs(), slot(F, 4), slot(F, 5)));
  }
  F.set(6, mkAppFromArgs(M, Sym, slot(F, 5)));
  // Rewrite at the root until stable; a successful root step may expose
  // further redexes anywhere, so renormalize the result.
  F.set(7, rewriteRoot(M, slot(F, 6), slot(F, 3)));
  if (F.get(7).isNull())
    return F.get(6);
  return normalize(M, slot(F, 7), slot(F, 3));
}

//===----------------------------------------------------------------------===
// Critical pairs
//===----------------------------------------------------------------------===

int countNonVarSubterms(Value T) {
  if (isVar(T))
    return 0;
  int N = 1;
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    N += countNonVarSubterms(head(L));
  return N;
}

/// K-th (preorder) non-variable subterm (read-only; K is 0-based).
Value subtermAt(Value T, int &K) {
  assert(!isVar(T));
  if (K == 0)
    return T;
  --K;
  for (Value L = appArgs(T); !L.isNull(); L = tail(L)) {
    Value Sub = head(L);
    if (isVar(Sub))
      continue;
    Value Found = subtermAt(Sub, K);
    if (!Found.isNull())
      return Found;
  }
  return Value::null();
}

/// Fresh copy of T with its K-th non-variable subterm replaced by Repl.
Value replaceAt(Mutator &M, SlotRef T, int &K, SlotRef Repl) {
  assert(!isVar(T.get()));
  if (K == 0) {
    --K;
    return Repl.get();
  }
  --K;
  Frame F(M, kbKey(8)); // 1 = cursor, 2 = reversed, 4 = scratch, 5 = args.
  int64_t Sym = appSym(T.get());
  F.set(1, appArgs(T.get()));
  while (!F.get(1).isNull()) {
    F.set(4, head(F.get(1)));
    F.set(1, tail(F.get(1)));
    if (!isVar(F.get(4)) && K >= 0)
      F.set(4, replaceAt(M, slot(F, 4), K, Repl));
    F.set(2, consPtr(M, siteArgs(), slot(F, 4), slot(F, 2)));
  }
  while (!F.get(2).isNull()) {
    F.set(4, head(F.get(2)));
    F.set(2, tail(F.get(2)));
    F.set(5, consPtr(M, siteArgs(), slot(F, 4), slot(F, 5)));
  }
  return mkAppFromArgs(M, Sym, slot(F, 5));
}

/// Builds the critical pair at position \p P and conses it onto Pairs:
/// cp-left = resolve(L2[P <- R1']), cp-right = resolve(R2rhs).
Value addPair(Mutator &M, SlotRef L2, SlotRef R1Prime, int P, SlotRef Sigma,
              SlotRef R2Rhs, SlotRef Pairs) {
  Frame G(M, kbKey(5)); // 1 = replaced, 2 = left, 3 = right, 4 = pair.
  int K = P;
  G.set(1, replaceAt(M, L2, K, R1Prime));
  G.set(2, resolve(M, slot(G, 1), Sigma));
  G.set(3, resolve(M, R2Rhs, Sigma));
  G.set(4, mkRule(M, slot(G, 2), slot(G, 3))); // Pair, same layout.
  return consPtr(M, sitePair(), slot(G, 4), Pairs);
}

/// All critical pairs of R1 into R2, consed onto PairsIn; returns the
/// extended list.
Value criticalPairs(Mutator &M, SlotRef R1, SlotRef R2, SlotRef PairsIn) {
  Frame F(M, kbKey(8));
  // 1 = L1' (renamed), 2 = R1', 3 = L2, 4 = R2, 5 = subst, 6 = subterm,
  // 7 = pairs accumulator, 8 = scratch.
  F.set(7, PairsIn.get());
  F.set(3, ruleLhs(R1.get()));
  F.set(1, renameVars(M, slot(F, 3), 64));
  F.set(3, ruleRhs(R1.get()));
  F.set(2, renameVars(M, slot(F, 3), 64));
  F.set(3, ruleLhs(R2.get()));
  F.set(4, ruleRhs(R2.get()));

  bool SameRule = R1.get().asPtr() == R2.get().asPtr();
  int NumSub = countNonVarSubterms(F.get(3));
  for (int P = 0; P < NumSub; ++P) {
    // Skip the trivial root overlap of a rule with itself.
    if (P == 0 && SameRule)
      continue;
    int K = P;
    F.set(6, subtermAt(F.get(3), K));
    F.set(5, Value::null());
    SubstResult U = unifyRec(M, slot(F, 1), slot(F, 6), slot(F, 5));
    if (!U.Ok)
      continue;
    F.set(5, U.Subst);
    F.set(7, addPair(M, slot(F, 3), slot(F, 2), P, slot(F, 5), slot(F, 4),
                     slot(F, 7)));
  }
  return F.get(7);
}

//===----------------------------------------------------------------------===
// Completion
//===----------------------------------------------------------------------===

/// Collects variable indices in order of first (preorder) occurrence.
void collectVarsOrdered(Value T, std::vector<int64_t> &Order) {
  if (isVar(T)) {
    for (int64_t Seen : Order)
      if (Seen == varIdx(T))
        return;
    Order.push_back(varIdx(T));
    return;
  }
  for (Value L = appArgs(T); !L.isNull(); L = tail(L))
    collectVarsOrdered(head(L), Order);
}

/// Substitution mapping Order[i] -> fresh variable i (keeps the indices of
/// derived pairs canonical so repeated +64 renamings cannot overflow).
Value canonSubst(Mutator &M, const std::vector<int64_t> &Order) {
  Frame F(M, kbKey(3)); // 1 = subst, 2 = fresh var, 3 = binding.
  for (size_t I = 0; I < Order.size(); ++I) {
    F.set(2, mkVar(M, static_cast<int64_t>(I)));
    Value Bind = M.allocRecord(siteSubst(), 2, 0b10);
    M.initField(Bind, 0, Value::fromInt(Order[I]));
    M.initField(Bind, 1, F.get(2));
    F.set(3, Bind);
    F.set(1, consPtr(M, siteSubst(), slot(F, 3), slot(F, 1)));
  }
  return F.get(1);
}

/// Builds the free-group axioms as a pending-pair list.
/// Variables x=0, y=1, z=2.
Value groupAxioms(Mutator &M) {
  Frame A(M, kbKey(8)); // 1 = x, 2 = y, 3 = z, 4/6 scratch, 5 = rule,
                        // 7 = pending list.
  A.set(1, mkVar(M, 0));
  A.set(2, mkVar(M, 1));
  A.set(3, mkVar(M, 2));
  // 1*x = x.
  A.set(4, mkApp0(M, SymE));
  A.set(4, mkApp2(M, SymM, slot(A, 4), slot(A, 1)));
  A.set(5, mkRule(M, slot(A, 4), slot(A, 1)));
  A.set(7, consPtr(M, sitePair(), slot(A, 5), slot(A, 7)));
  // i(x)*x = 1.
  A.set(4, mkApp1(M, SymI, slot(A, 1)));
  A.set(4, mkApp2(M, SymM, slot(A, 4), slot(A, 1)));
  A.set(6, mkApp0(M, SymE));
  A.set(5, mkRule(M, slot(A, 4), slot(A, 6)));
  A.set(7, consPtr(M, sitePair(), slot(A, 5), slot(A, 7)));
  // (x*y)*z = x*(y*z).
  A.set(4, mkApp2(M, SymM, slot(A, 1), slot(A, 2)));
  A.set(4, mkApp2(M, SymM, slot(A, 4), slot(A, 3)));
  A.set(6, mkApp2(M, SymM, slot(A, 2), slot(A, 3)));
  A.set(6, mkApp2(M, SymM, slot(A, 1), slot(A, 6)));
  A.set(5, mkRule(M, slot(A, 4), slot(A, 6)));
  A.set(7, consPtr(M, sitePair(), slot(A, 5), slot(A, 7)));
  return A.get(7);
}

/// Runs completion on the free-group axioms; returns the interreduced rule
/// list and reports its length through \p KeptOut.
Value complete(Mutator &M, int &KeptOut) {
  Frame F(M, kbKey(8));
  // 1 = rules, 2 = pending, 3 = s, 4 = t, 5 = rule/r2 cursor, 6 = scratch,
  // 7 = new rule.
  F.set(2, groupAxioms(M));

  int Steps = 0;
  const int MaxSteps = 4000;
  [[maybe_unused]] int NumRulesDbg = 0;
  while (!F.get(2).isNull() && Steps++ < MaxSteps) {
#ifdef TILGC_KB_TRACE
    std::fprintf(stderr, "step=%d rules=%d pending=%llu lhsW=%lld rhsW=%lld\n",
                 Steps, NumRulesDbg,
                 (unsigned long long)mllib::length(F.get(2)),
                 (long long)termWeight(ruleLhs(head(F.get(2)))),
                 (long long)termWeight(ruleRhs(head(F.get(2)))));
#endif
    // Fair selection: take the lightest pending pair (LIFO diverges on the
    // group axioms — ever-larger consequences get explored first).
    {
      int Idx = 0, MinIdx = 0;
      int64_t MinW = INT64_MAX;
      for (Value L = F.get(2); !L.isNull(); L = tail(L), ++Idx) {
        int64_t W =
            termWeight(ruleLhs(head(L))) + termWeight(ruleRhs(head(L)));
        if (W < MinW) {
          MinW = W;
          MinIdx = Idx;
        }
      }
      F.set(5, F.get(2));
      F.set(2, Value::null());
      Idx = 0;
      while (!F.get(5).isNull()) {
        if (Idx == MinIdx) {
          F.set(3, ruleLhs(head(F.get(5))));
          F.set(4, ruleRhs(head(F.get(5))));
        } else {
          F.set(6, head(F.get(5)));
          F.set(2, consPtr(M, sitePair(), slot(F, 6), slot(F, 2)));
        }
        F.set(5, tail(F.get(5)));
        ++Idx;
      }
    }
    F.set(3, normalize(M, slot(F, 3), slot(F, 1)));
    F.set(4, normalize(M, slot(F, 4), slot(F, 1)));
    if (termEq(F.get(3), F.get(4)))
      continue;
    // Canonicalize variable numbering before orienting.
    {
      std::vector<int64_t> Order;
      collectVarsOrdered(F.get(3), Order);
      collectVarsOrdered(F.get(4), Order);
      F.set(6, canonSubst(M, Order));
      F.set(3, applySubst(M, slot(F, 3), slot(F, 6)));
      F.set(4, applySubst(M, slot(F, 4), slot(F, 6)));
    }
    if (kboGreater(F.get(4), F.get(3))) {
      F.set(6, F.get(3));
      F.set(3, F.get(4));
      F.set(4, F.get(6));
    } else if (!kboGreater(F.get(3), F.get(4))) {
      continue; // Unorientable (does not occur for the group system).
    }
    F.set(7, mkRule(M, slot(F, 3), slot(F, 4)));
    F.set(1, consPtr(M, siteRuleList(), slot(F, 7), slot(F, 1)));
    ++NumRulesDbg;
    // Critical pairs of the new rule against every rule (both directions).
    F.set(5, F.get(1));
    while (!F.get(5).isNull()) {
      F.set(6, head(F.get(5)));
      F.set(2, criticalPairs(M, slot(F, 7), slot(F, 6), slot(F, 2)));
      F.set(2, criticalPairs(M, slot(F, 6), slot(F, 7), slot(F, 2)));
      F.set(5, tail(F.get(5)));
    }
  }

  // Interreduce: keep a rule only if its lhs is irreducible by the others.
  Frame G(M, kbKey(8));
  // 1 = all rules, 2 = kept, 3 = cursor, 4 = rule, 5 = others, 6 = lhs',
  // 7 = scratch.
  G.set(1, F.get(1));
  G.set(3, G.get(1));
  int Kept = 0;
  while (!G.get(3).isNull()) {
    G.set(4, head(G.get(3)));
    G.set(3, tail(G.get(3)));
    // Others = all rules except this one (by identity).
    G.set(5, Value::null());
    G.set(7, G.get(1));
    while (!G.get(7).isNull()) {
      if (head(G.get(7)).asPtr() != G.get(4).asPtr()) {
        G.set(6, head(G.get(7)));
        G.set(5, consPtr(M, siteRuleList(), slot(G, 6), slot(G, 5)));
      }
      G.set(7, tail(G.get(7)));
    }
    G.set(6, ruleLhs(G.get(4)));
    G.set(6, normalize(M, slot(G, 6), slot(G, 5)));
    G.set(7, ruleLhs(G.get(4)));
    if (termEq(G.get(6), G.get(7))) {
      G.set(6, G.get(4));
      G.set(2, consPtr(M, siteRuleList(), slot(G, 6), slot(G, 2)));
      ++Kept;
    }
  }
  KeptOut = Kept;
  return G.get(2);
}

//===----------------------------------------------------------------------===
// Test-word phase (shared plan between workload and reference)
//===----------------------------------------------------------------------===

/// A word over the free group on {a, b}: entries +-1 (a) and +-2 (b).
std::vector<int> wordPlan(Rng &R, int Len) {
  std::vector<int> Plan;
  Plan.reserve(static_cast<size_t>(Len));
  for (int I = 0; I < Len; ++I) {
    if (!Plan.empty() && R.chance(2, 5)) {
      // Inject an inverse of the previous element to force cancellation.
      Plan.push_back(-Plan.back());
      continue;
    }
    int G = R.chance(1, 2) ? 1 : 2;
    Plan.push_back(R.chance(1, 2) ? G : -G);
  }
  return Plan;
}

/// Term for plan[Lo, Hi): divide-and-conquer shape (deterministic).
Value buildTerm(Mutator &M, const std::vector<int> &Plan, int Lo, int Hi) {
  if (Hi - Lo == 1) {
    int E = Plan[static_cast<size_t>(Lo)];
    if (E > 0)
      return mkApp0(M, E == 1 ? SymA : SymB, wordSites());
    Frame F(M, kbKey(3));
    F.set(1, mkApp0(M, -E == 1 ? SymA : SymB, wordSites()));
    return mkApp1(M, SymI, slot(F, 1), wordSites());
  }
  Frame F(M, kbKey(3)); // 1 = left, 2 = right.
  // Mostly right-associated chains (the deep-normalization shape KB's
  // paper stacks come from), with occasional balanced splits.
  int Mid = (Lo % 173 != 0) ? Lo + 1 : Lo + (Hi - Lo + 2) / 3;
  F.set(1, buildTerm(M, Plan, Lo, Mid));
  F.set(2, buildTerm(M, Plan, Mid, Hi));
  return mkApp2(M, SymM, slot(F, 1), slot(F, 2), wordSites());
}

/// Encodes a ground normal form (reduced, right-associated word) exactly
/// as the reference encodes a reduced plan.
uint64_t encodeNormalForm(Value T) {
  uint64_t Sum = 7;
  auto EncodeElem = [&](Value Elem) {
    int Code;
    if (appSym(Elem) == SymI)
      Code = appSym(arg0(Elem)) == SymA ? 2 : 4;
    else
      Code = appSym(Elem) == SymA ? 1 : 3;
    Sum = Sum * 31 + static_cast<uint64_t>(Code);
  };
  while (!isVar(T) && appSym(T) == SymM) {
    EncodeElem(arg0(T));
    T = arg1(T);
  }
  if (!(appSym(T) == SymE))
    EncodeElem(T);
  return Sum;
}

uint64_t encodeReducedPlan(const std::vector<int> &Reduced) {
  uint64_t Sum = 7;
  for (int E : Reduced) {
    int Code = E == 1 ? 1 : E == -1 ? 2 : E == 2 ? 3 : 4;
    Sum = Sum * 31 + static_cast<uint64_t>(Code);
  }
  return Sum;
}

std::vector<int> freeReduce(const std::vector<int> &Plan) {
  std::vector<int> Stack;
  for (int E : Plan) {
    if (!Stack.empty() && Stack.back() == -E)
      Stack.pop_back();
    else
      Stack.push_back(E);
  }
  return Stack;
}

struct Sizes {
  int NumWords;
  int WordLen;
};

Sizes sizesFor(double Scale) {
  Sizes S;
  // Many small words normalized from within one deep recursion over the
  // batch: the stack depth at collection time comes from the batch
  // recursion (the SML original's deeply recursive list processing), while
  // per-collection copying stays small — the combination behind KB's 76%
  // root-processing share in paper Table 5.
  S.NumWords = static_cast<int>(1400.0 * Scale);
  if (S.NumWords < 1)
    S.NumWords = 1;
  S.WordLen = 44;
  return S;
}

/// Processes words K.. (builds, keeps, normalizes, checksums) recursively;
/// every processed word's activation record stays live below the next, so
/// the stack is ~K frames deep while word K is rewritten.
void processWords(Mutator &M, SlotRef Rules, SlotRef KeepRef, int K, int N,
                  Rng &R, int WordLen, uint64_t &Sum) {
  if (K >= N)
    return;
  Frame F(M, kbKey(8));
  // 1 = rules, 2 = word, 3 = nf, 4 = old kept list, 5 = pair, 6 = scratch.
  F.set(1, Rules.get());
  std::vector<int> Plan = wordPlan(R, WordLen);
  F.set(2, buildTerm(M, Plan, 0, static_cast<int>(Plan.size())));
  F.set(3, normalize(M, slot(F, 2), slot(F, 1)));
  Sum = Sum * 1099511628211ULL + encodeNormalForm(F.get(3));
  // Keep original + normal form alive to the end through the ref cell
  // (kept := (word, nf) :: !kept) — the paper's KB retains its data.
  F.set(5, mkRule(M, slot(F, 2), slot(F, 3))); // Pair record, same layout.
  F.set(4, Mutator::getField(KeepRef.get(), 0));
  F.set(5, consPtr(M, siteWordKeep(), slot(F, 5), slot(F, 4)));
  M.writeField(KeepRef.get(), 0, F.get(5), /*IsPointerField=*/true);
  processWords(M, slot(F, 1), KeepRef, K + 1, N, R, WordLen, Sum);
}

class KnuthBendixWorkload : public Workload {
public:
  const char *name() const override { return "Knuth-Bendix"; }
  const char *description() const override {
    return "Completion of the free-group axioms + normalization of large "
           "group words";
  }
  unsigned paperLines() const override { return 618; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame Top(M, kbKey(8));
    // 1 = rules, 2 = keep ref cell, 3..6 scratch.
    int NumRules = 0;
    Top.set(1, complete(M, NumRules));
    Top.set(2, M.allocRecord(siteWordKeep(), 1, 0b1));

    Sizes S = sizesFor(Scale);
    Rng R(0x6b62); // "kb"
    uint64_t Sum = static_cast<uint64_t>(NumRules);
    processWords(M, slot(Top, 1), slot(Top, 2), 0, S.NumWords, R, S.WordLen,
                 Sum);
    // Sanity: everything we kept must still be reachable.
    Sum += mllib::length(Mutator::getField(Top.get(2), 0)) ==
                   static_cast<uint64_t>(S.NumWords)
               ? 0
               : 0xDEAD;
    return Sum;
  }

  uint64_t expected(double Scale) override {
    Sizes S = sizesFor(Scale);
    Rng R(0x6b62); // "kb"
    uint64_t Sum = 10; // The classical ten-rule group system.
    for (int W = 0; W < S.NumWords; ++W) {
      std::vector<int> Plan = wordPlan(R, S.WordLen);
      Sum = Sum * 1099511628211ULL + encodeReducedPlan(freeReduce(Plan));
    }
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeKnuthBendixWorkload() {
  return std::make_unique<KnuthBendixWorkload>();
}
