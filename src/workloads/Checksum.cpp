//===- workloads/Checksum.cpp - The Checksum benchmark ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table 1: "Checksum fragment from the Foxnet: 16Kb possibly unaligned
/// arrays are created and checksummed using iterators 10,000 times."
///
/// Shape being reproduced: enormous allocation volume (records dominate:
/// one iterator record per element examined), near-zero live data, shallow
/// stack (~4 frames). Under the generational collector the 16KB buffers go
/// to the large-object space; under the semispace collector they are copied
/// whenever one is live at a collection.
///
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "workloads/MLLib.h"

using namespace tilgc;

namespace {

constexpr uint32_t WordsPerArray = 2048; // 16 KiB payload.

uint32_t siteBuffer() {
  static const uint32_t S =
      AllocSiteRegistry::global().define("chksum.buffer");
  return S;
}
uint32_t siteIter() {
  static const uint32_t S = AllocSiteRegistry::global().define("chksum.iter");
  return S;
}

uint32_t keyRun() {
  static const uint32_t K = TraceTableRegistry::global().define(
      FrameLayout("chksum.run", {Trace::pointer()}));
  return K;
}
uint32_t keyChecksumOne() {
  static const uint32_t K = TraceTableRegistry::global().define(FrameLayout(
      "chksum.one", {Trace::pointer(), Trace::pointer()}));
  return K;
}

/// Deterministic buffer contents (shared with the reference computation).
uint64_t fillWord(int64_t Round, uint64_t Index) {
  uint64_t X = static_cast<uint64_t>(Round) * 0x9e3779b97f4a7c15ULL + Index;
  X ^= X >> 29;
  return X * 0xbf58476d1ce4e5b9ULL;
}

uint64_t foldStep(uint64_t Sum, uint64_t Elem) {
  return (Sum + Elem) * 1099511628211ULL;
}

int roundsFor(double Scale) {
  int Rounds = static_cast<int>(900.0 * Scale);
  return Rounds < 1 ? 1 : Rounds;
}

/// Creates one buffer, fills it, and folds over it with a freshly allocated
/// iterator record per element (the Foxnet iterator idiom).
uint64_t checksumOne(Mutator &M, int64_t Round, uint64_t Sum) {
  Frame F(M, keyChecksumOne()); // slot 1 = buffer, slot 2 = iterator.
  F.set(1, M.allocNonPtrArray(siteBuffer(), WordsPerArray));
  for (uint32_t I = 0; I < WordsPerArray; ++I)
    M.initField(F.get(1), I, Value::fromBits(fillWord(Round, I)));

  // Iterator record: field 0 = buffer pointer, field 1 = unboxed index.
  Value It = M.allocRecord(siteIter(), 2, 0b01);
  M.initField(It, 0, F.get(1));
  M.initField(It, 1, Value::fromInt(0));
  F.set(2, It);

  while (true) {
    Value Cur = F.get(2);
    int64_t Index = Mutator::getField(Cur, 1).asInt();
    if (Index >= static_cast<int64_t>(WordsPerArray))
      break;
    Value Buffer = Mutator::getField(Cur, 0);
    Sum = foldStep(Sum, Buffer.asPtr()[Index]);
    // Advance by allocating the successor iterator (re-read the current
    // iterator afterwards: the allocation may have moved it).
    Value Next = M.allocRecord(siteIter(), 2, 0b01);
    Cur = F.get(2);
    M.initField(Next, 0, Mutator::getField(Cur, 0));
    M.initField(Next, 1, Value::fromInt(Index + 1));
    F.set(2, Next);
  }
  return Sum;
}

class ChecksumWorkload : public Workload {
public:
  const char *name() const override { return "Checksum"; }
  const char *description() const override {
    return "Foxnet checksum: 16KB buffers folded with per-element iterator "
           "records";
  }
  unsigned paperLines() const override { return 241; }

  uint64_t run(Mutator &M, double Scale) override {
    Frame F(M, keyRun());
    uint64_t Sum = 0;
    int Rounds = roundsFor(Scale);
    for (int Round = 0; Round < Rounds; ++Round)
      Sum = checksumOne(M, Round, Sum);
    return Sum;
  }

  uint64_t expected(double Scale) override {
    uint64_t Sum = 0;
    int Rounds = roundsFor(Scale);
    for (int Round = 0; Round < Rounds; ++Round)
      for (uint32_t I = 0; I < WordsPerArray; ++I)
        Sum = foldStep(Sum, fillWord(Round, I));
    return Sum;
  }
};

} // namespace

std::unique_ptr<Workload> tilgc::makeChecksumWorkload() {
  return std::make_unique<ChecksumWorkload>();
}
