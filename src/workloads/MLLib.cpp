//===- workloads/MLLib.cpp - ML-style heap idioms --------------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/MLLib.h"

using namespace tilgc;

uint32_t mllib::copyIntRecKey() {
  static const uint32_t Key = TraceTableRegistry::global().define(FrameLayout(
      "mllib.copyIntRec", {Trace::pointer(), Trace::pointer()}));
  return Key;
}

Value mllib::copyIntRec(Mutator &M, uint32_t Site, SlotRef In) {
  if (In.get().isNull())
    return Value::null();
  Frame F(M, copyIntRecKey()); // slot 1 = rest, slot 2 = copied child
  F.set(1, tail(In.get()));
  int64_t Head = headInt(In.get());
  Value Child = copyIntRec(M, Site, slot(F, 1));
  F.set(2, Child);
  return consInt(M, Site, Head, slot(F, 2));
}
