//===- stack/ShadowStack.h - Activation-record stack ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mutator's stack of activation records. TIL manages activation
/// records on a contiguous stack rather than in the heap (paper §2.2); we
/// reproduce that as an array of word slots. Slot 0 of each frame holds the
/// return-address key; the remaining slots are the frame's locals/spills,
/// described by the trace table.
///
/// Pointer-slot discipline: workload code keeps every heap pointer that must
/// survive a possible collection in a frame slot (never in a C++ local),
/// because the collectors move objects and update the slots in place.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_SHADOWSTACK_H
#define TILGC_STACK_SHADOWSTACK_H

#include "object/Object.h"
#include "stack/TraceTable.h"

#include <cassert>
#include <cstddef>
#include <vector>

namespace tilgc {

/// A contiguous stack of activation records plus the frame-base side chain
/// used to iterate it.
class ShadowStack {
public:
  explicit ShadowStack(size_t CapacitySlots = 1u << 22);

  /// Pushes a frame of \p NumSlots slots with return-address key \p Key.
  /// All non-key slots are zeroed (null pointers). Returns the frame base
  /// (the slot index of the key slot).
  size_t pushFrame(uint32_t Key, uint32_t NumSlots) {
    assert(Top + NumSlots <= Slots.size() && "shadow stack overflow");
    size_t Base = Top;
    Slots[Base] = Key;
    for (uint32_t I = 1; I < NumSlots; ++I)
      Slots[Base + I] = 0;
    Top = Base + NumSlots;
    Bases.push_back(Base);
    return Base;
  }

  /// Pops the topmost frame, which must start at \p FrameBase.
  void popFrame(size_t FrameBase) {
    assert(!Bases.empty() && Bases.back() == FrameBase &&
           "popping a frame that is not on top");
    Bases.pop_back();
    Top = FrameBase;
    if (Bases.size() < MinFrames)
      MinFrames = Bases.size();
  }

  /// Unwinds (pops without individual bookkeeping) every frame strictly
  /// above \p FrameBase, making it the topmost frame. \p NumSlots is the
  /// target frame's size (the caller resolves it, since the target's key
  /// slot may hold a stub key). Used by the exception-raise path.
  void unwindTo(size_t FrameBase, uint32_t NumSlots) {
    while (!Bases.empty() && Bases.back() > FrameBase)
      Bases.pop_back();
    assert(!Bases.empty() && Bases.back() == FrameBase &&
           "unwind target is not a live frame");
    Top = FrameBase + NumSlots;
    if (Bases.size() < MinFrames)
      MinFrames = Bases.size();
  }

  Word &slot(size_t FrameBase, unsigned I) {
    assert(FrameBase + I < Top && "slot index outside stack");
    return Slots[FrameBase + I];
  }
  const Word &slot(size_t FrameBase, unsigned I) const {
    assert(FrameBase + I < Top && "slot index outside stack");
    return Slots[FrameBase + I];
  }

  /// Address of a slot; stable for the life of the stack (the backing array
  /// is never reallocated), which the scan cache relies on.
  Word *slotAddress(size_t FrameBase, unsigned I) {
    return &Slots[FrameBase + I];
  }

  /// True if \p P points into this stack's slot storage (collectors use
  /// this to filter stack slots out of heap remembered sets).
  bool ownsSlot(const Word *P) const {
    return P >= Slots.data() && P < Slots.data() + Slots.size();
  }

  /// The return-address key of the frame at \p FrameBase. May be StubKey if
  /// the collector marked this frame.
  uint32_t keyOf(size_t FrameBase) const {
    return static_cast<uint32_t>(Slots[FrameBase]);
  }
  void setKey(size_t FrameBase, uint32_t Key) { Slots[FrameBase] = Key; }

  size_t frameCount() const { return Bases.size(); }
  bool empty() const { return Bases.empty(); }
  /// Base of the I-th frame from the bottom (0 = oldest).
  size_t frameBase(size_t I) const {
    assert(I < Bases.size() && "frame index out of range");
    return Bases[I];
  }
  size_t topFrameBase() const {
    assert(!Bases.empty() && "no frames");
    return Bases.back();
  }

  /// Minimum frame count observed since the last resetWaterMark() — the
  /// collector uses this for Table 2's "New Frames in Stack" metric.
  size_t minFramesSinceMark() const { return MinFrames; }
  void resetWaterMark() { MinFrames = Bases.size(); }

private:
  std::vector<Word> Slots;
  std::vector<size_t> Bases;
  size_t Top = 0;
  size_t MinFrames = 0;
};

} // namespace tilgc

#endif // TILGC_STACK_SHADOWSTACK_H
