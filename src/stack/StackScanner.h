//===- stack/StackScanner.h - Two-pass stack root scanning -----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-pass trace-table stack scan of paper §2.3, optionally extended
/// with the scan cache that implements generational stack collection (§5).
///
/// Pass 1 walks from the topmost frame down to the reuse boundary, decoding
/// each frame's layout from its return-address key. Pass 2 walks upward
/// from the initial frame (or from the cached register state at the reuse
/// boundary), maintaining the pointer status of the register set, so that
/// CalleeSave slot traces can be resolved, and accumulating root locations.
///
/// Pass 2 has two execution modes. The interpretive mode (the paper's
/// §2.3, and the default of this raw entry point) dispatches a switch per
/// slot trace. The compiled mode (CompiledPlans = true; the collectors'
/// default via Options::CompiledScanPlans) fetches the frame's memoized
/// ScanPlan and iterates its pointer bitmask with countr_zero, interpreting
/// only the dense CalleeSave/Compute side lists — same roots, same register
/// state, same marker behavior, a fraction of the per-slot work.
///
/// When a MarkerManager and ScanCache are supplied, frames below the reuse
/// boundary are not rescanned: their root locations are replayed from the
/// cache into RootSet::ReusedSlotRoots. The collector decides what to do
/// with them — a promote-all minor collection skips them entirely (the
/// paper: "we do not need to consider roots residing in frames that were
/// present in previous collections"), while major and semispace collections
/// process them without paying the re-decoding cost.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_STACKSCANNER_H
#define TILGC_STACK_STACKSCANNER_H

#include "stack/RegisterFile.h"
#include "stack/ShadowStack.h"
#include "stack/StackMarkers.h"
#include "stack/TraceTable.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// The results of a stack scan: addresses of slots (and indices of
/// registers) that hold heap pointers.
struct RootSet {
  /// Roots discovered by scanning frames during this collection.
  std::vector<Word *> FreshSlotRoots;
  /// Roots replayed from the scan cache (frames unchanged since the last
  /// collection). Empty unless generational stack collection is enabled.
  std::vector<Word *> ReusedSlotRoots;
  /// Registers holding pointers (the topmost frame's view).
  std::vector<unsigned> RegRoots;

  /// Drops the roots but keeps the vectors' capacity: a RootSet is a
  /// long-lived collector member, and after the first few collections the
  /// scan runs entirely in already-reserved storage.
  void clear() {
    FreshSlotRoots.clear();
    ReusedSlotRoots.clear();
    RegRoots.clear();
  }

  /// Pre-sizes the root vectors (collectors call this once at startup so
  /// even the first collection does not grow them step by step).
  void reserve(size_t SlotRoots) {
    FreshSlotRoots.reserve(SlotRoots);
    ReusedSlotRoots.reserve(SlotRoots);
    RegRoots.reserve(NumRegisters);
  }
};

/// Work counters for one scan (accumulated into collector statistics).
///
/// FramesScanned, FramesReused, ComputesResolved and MarkersPlaced are
/// semantic counters: identical between the interpretive and compiled scan
/// modes (the differential test asserts it). SlotsVisited counts slot
/// traces *interpreted* — every non-key slot in interpretive mode, only the
/// CalleeSave/Compute side-list entries in compiled mode — so it is exactly
/// the work the plan compiler eliminates; PlanWordsScanned is the compiled
/// mode's replacement cost (pointer-bitmask words tested).
struct ScanStats {
  uint64_t FramesScanned = 0;  ///< Frames decoded and traced this scan.
  uint64_t FramesReused = 0;   ///< Frames replayed from the cache.
  uint64_t SlotsVisited = 0;   ///< Slot traces interpreted.
  uint64_t ComputesResolved = 0;
  uint64_t MarkersPlaced = 0;
  uint64_t PlanWordsScanned = 0; ///< Bitmask words tested (compiled mode).
};

/// Per-frame scan results cached between collections (owned by the
/// collector; meaningful only when stack markers are in use).
class ScanCache {
public:
  struct CachedFrame {
    size_t Base;
    uint32_t Key;
    /// Prefix length of Roots after processing this frame.
    uint32_t RootsEnd;
    /// Register pointer-status bitmask after this frame's definitions.
    uint32_t RegStateAfter;
  };

  /// Keeps capacity, like RootSet::clear().
  void clear() {
    Frames.clear();
    Roots.clear();
  }

  /// Pre-sizes the cache (collectors call this once at startup).
  void reserve(size_t NumFrames, size_t NumRoots) {
    Frames.reserve(NumFrames);
    Roots.reserve(NumRoots);
  }

  const std::vector<CachedFrame> &frames() const { return Frames; }
  /// Root slot addresses in bottom-up scan order.
  const std::vector<Word *> &roots() const { return Roots; }

  /// Scanner mutators: drop the suffix invalidated by stack movement, then
  /// append the rescanned frames' results. resize()/truncation keeps
  /// capacity, so after warm-up replays allocate nothing.
  void truncateFrames(size_t N) { Frames.resize(N); }
  void truncateRoots(size_t N) { Roots.resize(N); }
  void pushFrame(const CachedFrame &F) { Frames.push_back(F); }
  void pushRoot(Word *Slot) { Roots.push_back(Slot); }

private:
  std::vector<CachedFrame> Frames;
  /// Root slot addresses in bottom-up scan order.
  std::vector<Word *> Roots;
};

/// Stateless scan entry points.
class StackScanner {
public:
  /// Scans \p Stack (and \p Regs) for roots.
  ///
  /// \p Markers and \p Cache are either both null (plain two-pass scan, the
  /// baseline collectors) or both non-null (generational stack collection).
  ///
  /// \p CompiledPlans selects pass 2's execution mode: false interprets the
  /// trace tables exactly as the paper describes (the default here, so raw
  /// callers stay paper-faithful); true runs the compiled ScanPlans. The
  /// two modes produce the same root *set* — in compiled mode a frame's
  /// roots are emitted pointer-bitmask first, then CalleeSave, then Compute
  /// slots, so the within-frame order can differ for frames that mix those
  /// kinds.
  static void scan(ShadowStack &Stack, RegisterFile &Regs,
                   MarkerManager *Markers, ScanCache *Cache, RootSet &Roots,
                   ScanStats &Stats, bool CompiledPlans = false);
};

} // namespace tilgc

#endif // TILGC_STACK_STACKSCANNER_H
