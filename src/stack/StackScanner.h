//===- stack/StackScanner.h - Two-pass stack root scanning -----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two-pass trace-table stack scan of paper §2.3, optionally extended
/// with the scan cache that implements generational stack collection (§5).
///
/// Pass 1 walks from the topmost frame down to the reuse boundary, decoding
/// each frame's layout from its return-address key. Pass 2 walks upward
/// from the initial frame (or from the cached register state at the reuse
/// boundary), maintaining the pointer status of the register set, so that
/// CalleeSave slot traces can be resolved, and accumulating root locations.
///
/// When a MarkerManager and ScanCache are supplied, frames below the reuse
/// boundary are not rescanned: their root locations are replayed from the
/// cache into RootSet::ReusedSlotRoots. The collector decides what to do
/// with them — a promote-all minor collection skips them entirely (the
/// paper: "we do not need to consider roots residing in frames that were
/// present in previous collections"), while major and semispace collections
/// process them without paying the re-decoding cost.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_STACKSCANNER_H
#define TILGC_STACK_STACKSCANNER_H

#include "stack/RegisterFile.h"
#include "stack/ShadowStack.h"
#include "stack/StackMarkers.h"
#include "stack/TraceTable.h"

#include <cstdint>
#include <vector>

namespace tilgc {

/// The results of a stack scan: addresses of slots (and indices of
/// registers) that hold heap pointers.
struct RootSet {
  /// Roots discovered by scanning frames during this collection.
  std::vector<Word *> FreshSlotRoots;
  /// Roots replayed from the scan cache (frames unchanged since the last
  /// collection). Empty unless generational stack collection is enabled.
  std::vector<Word *> ReusedSlotRoots;
  /// Registers holding pointers (the topmost frame's view).
  std::vector<unsigned> RegRoots;

  void clear() {
    FreshSlotRoots.clear();
    ReusedSlotRoots.clear();
    RegRoots.clear();
  }
};

/// Work counters for one scan (accumulated into collector statistics).
struct ScanStats {
  uint64_t FramesScanned = 0;  ///< Frames decoded and traced this scan.
  uint64_t FramesReused = 0;   ///< Frames replayed from the cache.
  uint64_t SlotsVisited = 0;   ///< Slot traces interpreted.
  uint64_t ComputesResolved = 0;
  uint64_t MarkersPlaced = 0;
};

/// Per-frame scan results cached between collections (owned by the
/// collector; meaningful only when stack markers are in use).
class ScanCache {
public:
  void clear() {
    Frames.clear();
    Roots.clear();
  }

private:
  friend class StackScanner;

  struct CachedFrame {
    size_t Base;
    uint32_t Key;
    /// Prefix length of Roots after processing this frame.
    uint32_t RootsEnd;
    /// Register pointer-status bitmask after this frame's definitions.
    uint32_t RegStateAfter;
  };

  std::vector<CachedFrame> Frames;
  /// Root slot addresses in bottom-up scan order.
  std::vector<Word *> Roots;
};

/// Stateless scan entry points.
class StackScanner {
public:
  /// Scans \p Stack (and \p Regs) for roots.
  ///
  /// \p Markers and \p Cache are either both null (plain two-pass scan, the
  /// baseline collectors) or both non-null (generational stack collection).
  static void scan(ShadowStack &Stack, RegisterFile &Regs,
                   MarkerManager *Markers, ScanCache *Cache, RootSet &Roots,
                   ScanStats &Stats);
};

} // namespace tilgc

#endif // TILGC_STACK_STACKSCANNER_H
