//===- stack/TraceTable.h - Stack frame trace tables ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Trace tables: the compiler-emitted metadata that lets TIL's collector
/// decode stack frames (paper §2.3, Figure 1).
///
/// Slot 0 of every frame holds a *return-address key* which indexes the
/// registry; the entry gives the frame size and, for every other slot and
/// every register, one of the paper's four traces:
///
///  * Pointer      — statically known pointer; a root.
///  * NonPointer   — statically known non-pointer; never a root.
///  * CalleeSave   — the slot holds the caller's value of some register;
///                   whether it is a root depends on the register's pointer
///                   status in the frame below (this is what forces the
///                   two-pass scan).
///  * Compute      — pointer-ness could not be determined statically
///                   (polymorphism); auxiliary data locates a runtime type
///                   descriptor from which the scanner computes it.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_TRACETABLE_H
#define TILGC_STACK_TRACETABLE_H

#include "object/Object.h"
#include "support/Compiler.h"

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace tilgc {

/// Number of simulated general-purpose registers.
inline constexpr unsigned NumRegisters = 16;

/// The four trace kinds of paper §2.3.
enum class TraceKind : uint8_t { NonPointer, Pointer, CalleeSave, Compute };

/// Where a Compute trace's type descriptor lives.
enum class ComputeLoc : uint8_t { Slot, Register };

/// Trace information for one stack slot or register.
struct Trace {
  TraceKind Kind = TraceKind::NonPointer;
  ComputeLoc Loc = ComputeLoc::Slot;
  /// CalleeSave: the register whose caller value is saved here.
  /// Compute: the slot index / register number holding the type descriptor.
  uint8_t Index = 0;

  static Trace nonPointer() { return Trace{}; }
  static Trace pointer() { return Trace{TraceKind::Pointer, ComputeLoc::Slot, 0}; }
  static Trace calleeSave(unsigned Reg) {
    assert(Reg < NumRegisters && "bad register");
    return Trace{TraceKind::CalleeSave, ComputeLoc::Slot,
                 static_cast<uint8_t>(Reg)};
  }
  static Trace computeFromSlot(unsigned Slot) {
    return Trace{TraceKind::Compute, ComputeLoc::Slot,
                 static_cast<uint8_t>(Slot)};
  }
  static Trace computeFromReg(unsigned Reg) {
    assert(Reg < NumRegisters && "bad register");
    return Trace{TraceKind::Compute, ComputeLoc::Register,
                 static_cast<uint8_t>(Reg)};
  }
};

/// A register redefinition performed by a frame's function by the time of
/// any call (and therefore any collection) within it. Registers without an
/// action are unchanged: their contents (and pointer status) flow up from
/// the caller, which is exactly the callee-save discipline.
struct RegAction {
  uint8_t Reg;
  Trace What; ///< Pointer / NonPointer / Compute (CalleeSave is meaningless
              ///< here; saving happens via slot traces).
};

/// One trace-table entry: the layout of every frame created by a particular
/// call site (paper Figure 1, right side).
struct FrameLayout {
  std::string Name;               ///< For diagnostics and dumps.
  std::vector<Trace> SlotTraces;  ///< Traces for slots 1..N (slot 0 = key).
  std::vector<RegAction> RegDefs; ///< Register redefinitions by this frame.

  FrameLayout() = default;
  FrameLayout(std::string Name, std::vector<Trace> Slots,
              std::vector<RegAction> Regs = {})
      : Name(std::move(Name)), SlotTraces(std::move(Slots)),
        RegDefs(std::move(Regs)) {}

  /// Total frame size in slots, including slot 0.
  uint32_t numSlots() const {
    return static_cast<uint32_t>(SlotTraces.size()) + 1;
  }
};

/// The distinguished key the collector writes into a marked frame's
/// return-address slot (the "stub function" of paper §5). Never a valid
/// registry index.
inline constexpr uint32_t StubKey = 0xFFFFFFFFu;

/// Registry of frame layouts keyed by return-address key. In TIL this table
/// is emitted by the compiler; here workloads register their layouts once at
/// startup.
///
/// Thread-safety: layouts register lazily through function-local statics in
/// workload code, and multi-mutator runs execute per-thread workload
/// instances concurrently — so define() takes a mutex, storage is a deque
/// (no element ever moves under a reader), and the published key count is a
/// release store the lock-free lookup acquires. Single-threaded cost: one
/// atomic load where a plain size() load was.
class TraceTableRegistry {
public:
  /// The process-wide registry (trace tables are program metadata).
  static TraceTableRegistry &global();

  /// Registers \p Layout and returns its key. Keys are never reused.
  /// Thread-safe.
  uint32_t define(FrameLayout Layout);

  /// Checked lookup: a key the registry never issued aborts loudly in every
  /// build mode. A frame's key slot is mutator-writable memory — if it is
  /// corrupted (or a stub key leaks past marker retirement), an
  /// assert-only check would let release builds index out of bounds and
  /// read wild memory as a FrameLayout.
  const FrameLayout &lookup(uint32_t Key) const {
    size_t N = NumKeys.load(std::memory_order_acquire);
    if (TILGC_UNLIKELY(Key >= N))
      fatalBadKey(Key, N);
    return Layouts[Key];
  }

  size_t size() const { return NumKeys.load(std::memory_order_acquire); }

private:
  [[noreturn]] static void fatalBadKey(uint32_t Key, size_t NumKeys);

  TraceTableRegistry();
  std::deque<FrameLayout> Layouts;
  std::atomic<size_t> NumKeys{0};
  std::mutex DefineMutex;
};

} // namespace tilgc

#endif // TILGC_STACK_TRACETABLE_H
