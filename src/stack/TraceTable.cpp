//===- stack/TraceTable.cpp - Stack frame trace tables --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/TraceTable.h"

#include <cstdio>
#include <cstdlib>

using namespace tilgc;

void TraceTableRegistry::fatalBadKey(uint32_t Key, size_t NumKeys) {
  std::fprintf(stderr,
               "tilgc: fatal: return-address key %u (0x%x) is not a "
               "registered trace table (%zu keys defined)%s\n",
               Key, Key, NumKeys,
               Key == StubKey ? "; a stack-marker stub key leaked into a "
                                "frame decode"
                              : "");
  std::abort();
}

TraceTableRegistry &TraceTableRegistry::global() {
  static TraceTableRegistry Registry;
  return Registry;
}

TraceTableRegistry::TraceTableRegistry() {
  // Key 0 is reserved so that a zeroed slot never looks like a valid frame.
  Layouts.emplace_back("<invalid>", std::vector<Trace>{});
  NumKeys.store(1, std::memory_order_release);
}

uint32_t TraceTableRegistry::define(FrameLayout Layout) {
  for (const Trace &T : Layout.SlotTraces) {
    if (T.Kind == TraceKind::Compute && T.Loc == ComputeLoc::Slot) {
      assert(T.Index >= 1 && T.Index < Layout.numSlots() &&
             "compute trace names a slot outside the frame");
      assert(Layout.SlotTraces[T.Index - 1].Kind == TraceKind::Pointer &&
             "a compute trace's type-descriptor slot must itself be a "
             "pointer slot");
    }
  }
  std::lock_guard<std::mutex> L(DefineMutex);
  uint32_t Key = static_cast<uint32_t>(Layouts.size());
  assert(Key != StubKey && "trace table registry overflow");
  Layouts.push_back(std::move(Layout));
  NumKeys.store(Layouts.size(), std::memory_order_release);
  return Key;
}
