//===- stack/StackMarkers.h - Generational stack collection ----*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stack-marker machinery of paper §5 (generational stack collection).
///
/// At each stack scan the collector overwrites the return-address key of
/// every n-th frame (default n = 25) with \c StubKey, recording the original
/// key in a side table. When a marked frame later returns, the pop path
/// lands in the "stub": the manager notes the deactivation and hands back
/// the original key. Exceptions that unwind past marked frames update the
/// watermark M (paper: "the shallowest stack pointer value that occurred as
/// a result of raised exceptions") and retire the jumped-over markers.
///
/// At the next scan, every frame strictly below
///   min(highest intact marker, deactivation watermark, exception watermark)
/// is guaranteed unchanged since the previous scan: stack discipline says
/// popping any of them would first have popped a marked frame (hitting the
/// stub) or raised past one (updating M).
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_STACKMARKERS_H
#define TILGC_STACK_STACKMARKERS_H

#include "stack/ShadowStack.h"
#include "stack/TraceTable.h"

#include <cstdint>
#include <limits>
#include <vector>

namespace tilgc {

/// Tracks marked frames, stub pops, and exception watermarks between scans.
class MarkerManager {
public:
  /// Sentinel meaning "no watermark recorded".
  static constexpr size_t NoWatermark = std::numeric_limits<size_t>::max();

  explicit MarkerManager(unsigned Period = 25) : Period(Period) {}

  unsigned period() const { return Period; }
  void setPeriod(unsigned P) { Period = P; }

  /// Enables the §7.1 "more dynamic policy of marker placement": the
  /// period tracks the observed number of freshly scanned frames per
  /// collection, so stable deep stacks get dense marking near the top
  /// (maximum reuse) while shallow or churny stacks get almost none
  /// (minimum bookkeeping).
  void setAdaptive(bool On) { Adaptive = On; }
  bool adaptive() const { return Adaptive; }

  /// Scanner feedback: \p FreshFrames were scanned (not reused) this
  /// collection. Adjusts the period when adaptive placement is on.
  void onScanComplete(size_t FreshFrames) {
    if (!Adaptive)
      return;
    FreshEwma = 0.75 * FreshEwma + 0.25 * static_cast<double>(FreshFrames);
    double Target = FreshEwma / 3.0;
    Period = static_cast<unsigned>(Target < 4 ? 4
                                   : Target > 256 ? 256
                                                  : Target);
  }

  /// Records that the collector marked the frame at \p Base whose original
  /// return-address key is \p OriginalKey. Markers are placed bottom-up
  /// during a scan, so bases arrive in increasing order.
  void place(size_t Base, uint32_t OriginalKey) {
    assert((Markers.empty() || Markers.back().Base < Base) &&
           "markers must be placed bottom-up");
    Markers.push_back(Marker{Base, OriginalKey});
    ++NumPlaced;
  }

  /// True if the frame at \p Base currently carries a marker.
  bool isMarked(size_t Base) const { return findMarker(Base) != nullptr; }

  /// Original return-address key of the marked frame at \p Base.
  uint32_t originalKeyAt(size_t Base) const {
    const Marker *M = findMarker(Base);
    assert(M && "frame is not marked");
    return M->OriginalKey;
  }

  /// The "stub function": called when a marked frame returns normally.
  /// Retires the marker, updates the deactivation watermark, and returns
  /// the original key.
  uint32_t onStubPop(size_t Base) {
    assert(!Markers.empty() && Markers.back().Base == Base &&
           "stub pop must hit the topmost marker");
    uint32_t Key = Markers.back().OriginalKey;
    Markers.pop_back();
    if (Base < DeactivationWatermark)
      DeactivationWatermark = Base;
    ++NumStubPops;
    return Key;
  }

  /// Called when an exception unwinds the stack so that the frame at
  /// \p TargetBase becomes topmost. Retires every marker strictly above the
  /// target and updates the exception watermark M. Restores no keys: the
  /// jumped-over frames are dead.
  void onUnwind(size_t TargetBase) {
    if (TargetBase < ExceptionWatermark)
      ExceptionWatermark = TargetBase;
    while (!Markers.empty() && Markers.back().Base > TargetBase)
      Markers.pop_back();
  }

  /// Frames with base strictly below the returned value are unchanged since
  /// the previous scan. Returns 0 when nothing is reusable.
  size_t reuseBoundary() const {
    size_t Boundary = Markers.empty() ? 0 : Markers.back().Base;
    if (DeactivationWatermark < Boundary)
      Boundary = DeactivationWatermark;
    if (ExceptionWatermark < Boundary)
      Boundary = ExceptionWatermark;
    return Boundary;
  }

  /// Called by the scanner at the start of a scan, after computing the
  /// reuse boundary: clears watermarks for the next mutator epoch and drops
  /// retired state. Markers above \p Boundary are about to be re-placed by
  /// the new scan, so they are discarded here; the stack's key slots are
  /// restored by the scanner as it re-decodes those frames.
  void beginScan(size_t Boundary, ShadowStack &Stack) {
    while (!Markers.empty() && Markers.back().Base >= Boundary) {
      Stack.setKey(Markers.back().Base, Markers.back().OriginalKey);
      Markers.pop_back();
    }
    DeactivationWatermark = NoWatermark;
    ExceptionWatermark = NoWatermark;
  }

  /// Resolves a frame's key, seeing through a stub. Used by scans and by
  /// the exception path, which must size frames whose key slot is stubbed.
  uint32_t resolveKey(const ShadowStack &Stack, size_t Base) const {
    uint32_t Key = Stack.keyOf(Base);
    if (Key != StubKey)
      return Key;
    return originalKeyAt(Base);
  }

  size_t numActiveMarkers() const { return Markers.size(); }
  uint64_t numPlaced() const { return NumPlaced; }
  uint64_t numStubPops() const { return NumStubPops; }

private:
  struct Marker {
    size_t Base;
    uint32_t OriginalKey;
  };

  const Marker *findMarker(size_t Base) const {
    // Markers are sorted by base; linear scan from the top is fine because
    // stub pops and queries hit the top of the stack.
    for (size_t I = Markers.size(); I > 0; --I) {
      if (Markers[I - 1].Base == Base)
        return &Markers[I - 1];
      if (Markers[I - 1].Base < Base)
        return nullptr;
    }
    return nullptr;
  }

  std::vector<Marker> Markers;
  unsigned Period;
  bool Adaptive = false;
  double FreshEwma = 25.0;
  size_t DeactivationWatermark = NoWatermark;
  size_t ExceptionWatermark = NoWatermark;
  uint64_t NumPlaced = 0;
  uint64_t NumStubPops = 0;
};

} // namespace tilgc

#endif // TILGC_STACK_STACKMARKERS_H
