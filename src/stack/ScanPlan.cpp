//===- stack/ScanPlan.cpp - Compiled stack-scan plans ---------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/ScanPlan.h"

using namespace tilgc;

ScanPlan ScanPlan::compile(const FrameLayout &Layout) {
  ScanPlan P;
  P.NumSlots = Layout.numSlots();
  if (P.NumSlots > 1)
    P.PtrWords.assign((P.NumSlots + 63) / 64, 0);

  // Slot traces. Slot 0 is the key; layout entry i describes slot i + 1.
  for (uint32_t S = 1; S < P.NumSlots; ++S) {
    const Trace &T = Layout.SlotTraces[S - 1];
    switch (T.Kind) {
    case TraceKind::NonPointer:
      break;
    case TraceKind::Pointer:
      P.PtrWords[S / 64] |= uint64_t{1} << (S % 64);
      break;
    case TraceKind::CalleeSave:
      P.CalleeSaves.push_back(
          CalleeSaveEntry{static_cast<uint16_t>(S), T.Index});
      break;
    case TraceKind::Compute:
      P.Computes.push_back(ComputeEntry{static_cast<uint16_t>(S), T});
      break;
    }
  }

  // Register transition. The interpreter applies RegDefs sequentially
  // (last writer wins) and bumps ComputesResolved once per Compute
  // definition; the masks reproduce that only when each register is
  // defined at most once, so detect duplicates and fall back otherwise.
  uint32_t Defined = 0;
  for (const RegAction &A : Layout.RegDefs) {
    uint32_t Bit = 1u << A.Reg;
    if (Defined & Bit) {
      P.RegDefsNeedInterp = true;
      P.RegSetMask = P.RegClearMask = 0;
      P.ComputeRegDefs.clear();
      P.InterpRegDefs = Layout.RegDefs;
      return P;
    }
    Defined |= Bit;
    switch (A.What.Kind) {
    case TraceKind::Pointer:
      P.RegSetMask |= Bit;
      break;
    case TraceKind::NonPointer:
      P.RegClearMask |= Bit;
      break;
    case TraceKind::Compute:
      P.ComputeRegDefs.push_back(A);
      break;
    case TraceKind::CalleeSave:
      TILGC_UNREACHABLE("CalleeSave is not a register definition");
    }
  }
  return P;
}

ScanPlanCache &ScanPlanCache::global() {
  static ScanPlanCache Cache;
  return Cache;
}

const ScanPlan &ScanPlanCache::compileAndInsert(uint32_t Key) {
  // The checked lookup aborts on a key the registry has never issued, so a
  // corrupted return-address slot cannot index out of bounds here either.
  const FrameLayout &L = TraceTableRegistry::global().lookup(Key);
  if (Key >= Plans.size())
    Plans.resize(Key + 1);
  Plans[Key] = std::make_unique<const ScanPlan>(ScanPlan::compile(L));
  ++NumCompiled;
  return *Plans[Key];
}
