//===- stack/StackScanner.cpp - Two-pass stack root scanning --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/StackScanner.h"

#include "support/Compiler.h"

using namespace tilgc;

/// Resolves a Compute trace by consulting its runtime type descriptor
/// (paper §2.3: "the compute trace is used when the compiler could not
/// statically determine the pointer status of a value"). The descriptor is
/// a heap record whose first (non-pointer) field is nonzero iff the
/// described value is a pointer.
static bool resolveCompute(const Trace &T, const ShadowStack &Stack,
                           size_t Base, const RegisterFile &Regs,
                           bool IsTopFrame) {
  Word DescBits;
  if (T.Loc == ComputeLoc::Slot) {
    DescBits = Stack.slot(Base, T.Index);
  } else {
    assert(IsTopFrame &&
           "register compute traces are only meaningful in the top frame");
    (void)IsTopFrame;
    DescBits = Regs[T.Index];
  }
  // A null descriptor means the frame has not yet installed its runtime
  // type (a collection hit between frame setup and the descriptor store).
  // The discipline requires the descriptor to be written before the
  // described slot, so the described slot is still null/dead here.
  if (!DescBits)
    return false;
  const Word *Desc = reinterpret_cast<const Word *>(DescBits);
  return Desc[0] != 0;
}

void StackScanner::scan(ShadowStack &Stack, RegisterFile &Regs,
                        MarkerManager *Markers, ScanCache *Cache,
                        RootSet &Roots, ScanStats &Stats) {
  assert((Markers == nullptr) == (Cache == nullptr) &&
         "markers and cache go together");
  Roots.clear();

  TraceTableRegistry &Registry = TraceTableRegistry::global();
  size_t FrameCount = Stack.frameCount();
  size_t ReuseCount = 0;
  uint32_t RegState = 0;

  if (Markers) {
    // Generational stack collection: replay the cached prefix.
    size_t Boundary = Markers->reuseBoundary();
    while (ReuseCount < Cache->Frames.size() &&
           Cache->Frames[ReuseCount].Base < Boundary)
      ++ReuseCount;
    assert(ReuseCount <= FrameCount &&
           "cache claims more unchanged frames than exist");
    // Retire markers at/above the boundary (their frames are rescanned) and
    // open a new watermark epoch.
    Markers->beginScan(Boundary, Stack);
    if (ReuseCount) {
      const ScanCache::CachedFrame &Last = Cache->Frames[ReuseCount - 1];
      assert(Last.Base == Stack.frameBase(ReuseCount - 1) &&
             "cached frame does not match the live stack");
      RegState = Last.RegStateAfter;
      Roots.ReusedSlotRoots.assign(Cache->Roots.begin(),
                                   Cache->Roots.begin() + Last.RootsEnd);
      Cache->Roots.resize(Last.RootsEnd);
    } else {
      Cache->Roots.clear();
    }
    Cache->Frames.resize(ReuseCount);
    Stats.FramesReused += ReuseCount;
  }

  // Pass 1: decode downward from the current execution point to the reuse
  // boundary, keying each frame's layout by its return-address slot. (With
  // a side chain of frame bases the decode is a table lookup per frame; the
  // cost model — work proportional to the number of non-reused frames — is
  // what matters.)
  for (size_t I = FrameCount; I > ReuseCount; --I) {
    size_t Base = Stack.frameBase(I - 1);
    uint32_t Key = Stack.keyOf(Base);
    assert(Key != StubKey && "stubs must be retired before decoding");
    (void)Registry.lookup(Key);
  }

  // Pass 2: walk upward maintaining the register pointer-status so that
  // CalleeSave traces resolve, accumulating root locations.
  auto PushRoot = [&](Word *Slot) {
    Roots.FreshSlotRoots.push_back(Slot);
    if (Cache)
      Cache->Roots.push_back(Slot);
  };

  for (size_t I = ReuseCount; I < FrameCount; ++I) {
    size_t Base = Stack.frameBase(I);
    uint32_t Key = Stack.keyOf(Base);
    const FrameLayout &L = Registry.lookup(Key);
    bool IsTop = (I + 1 == FrameCount);
    ++Stats.FramesScanned;

    uint32_t NumSlots = L.numSlots();
    for (uint32_t S = 1; S < NumSlots; ++S) {
      const Trace &T = L.SlotTraces[S - 1];
      ++Stats.SlotsVisited;
      switch (T.Kind) {
      case TraceKind::NonPointer:
        break;
      case TraceKind::Pointer:
        if (Stack.slot(Base, S))
          PushRoot(Stack.slotAddress(Base, S));
        break;
      case TraceKind::CalleeSave:
        // The slot holds the caller's value of register T.Index; it is a
        // root exactly when that register held a pointer below this frame.
        if ((RegState >> T.Index) & 1u)
          if (Stack.slot(Base, S))
            PushRoot(Stack.slotAddress(Base, S));
        break;
      case TraceKind::Compute:
        ++Stats.ComputesResolved;
        if (resolveCompute(T, Stack, Base, Regs, IsTop))
          if (Stack.slot(Base, S))
            PushRoot(Stack.slotAddress(Base, S));
        break;
      }
    }

    // Apply this frame's register definitions.
    for (const RegAction &A : L.RegDefs) {
      bool IsPtr = false;
      switch (A.What.Kind) {
      case TraceKind::Pointer:
        IsPtr = true;
        break;
      case TraceKind::NonPointer:
        IsPtr = false;
        break;
      case TraceKind::Compute:
        ++Stats.ComputesResolved;
        IsPtr = resolveCompute(A.What, Stack, Base, Regs, IsTop);
        break;
      case TraceKind::CalleeSave:
        TILGC_UNREACHABLE("CalleeSave is not a register definition");
      }
      if (IsPtr)
        RegState |= 1u << A.Reg;
      else
        RegState &= ~(1u << A.Reg);
    }

    if (Cache)
      Cache->Frames.push_back(ScanCache::CachedFrame{
          Base, Key,
          static_cast<uint32_t>(Roots.ReusedSlotRoots.size() +
                                Roots.FreshSlotRoots.size()),
          RegState});

    // Mark every Period-th frame (fixed frame indices keep global marker
    // spacing stable across scans without extra bookkeeping).
    if (Markers && (I + 1) % Markers->period() == 0) {
      Markers->place(Base, Key);
      Stack.setKey(Base, StubKey);
      ++Stats.MarkersPlaced;
    }
  }

  // The register file itself: the final register state is the topmost
  // frame's view of the machine registers.
  for (unsigned R = 0; R < NumRegisters; ++R)
    if (((RegState >> R) & 1u) && Regs[R] != 0)
      Roots.RegRoots.push_back(R);

  if (Markers)
    Markers->onScanComplete(FrameCount - ReuseCount);
}
