//===- stack/StackScanner.cpp - Two-pass stack root scanning --------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/StackScanner.h"

#include "stack/ScanPlan.h"
#include "support/Compiler.h"

#include <bit>

using namespace tilgc;

/// Resolves a Compute trace by consulting its runtime type descriptor
/// (paper §2.3: "the compute trace is used when the compiler could not
/// statically determine the pointer status of a value"). The descriptor is
/// a heap record whose first (non-pointer) field is nonzero iff the
/// described value is a pointer.
static bool resolveCompute(const Trace &T, const ShadowStack &Stack,
                           size_t Base, const RegisterFile &Regs,
                           bool IsTopFrame) {
  Word DescBits;
  if (T.Loc == ComputeLoc::Slot) {
    DescBits = Stack.slot(Base, T.Index);
  } else {
    assert(IsTopFrame &&
           "register compute traces are only meaningful in the top frame");
    (void)IsTopFrame;
    DescBits = Regs[T.Index];
  }
  // A null descriptor means the frame has not yet installed its runtime
  // type (a collection hit between frame setup and the descriptor store).
  // The discipline requires the descriptor to be written before the
  // described slot, so the described slot is still null/dead here.
  if (!DescBits)
    return false;
  const Word *Desc = reinterpret_cast<const Word *>(DescBits);
  return Desc[0] != 0;
}

/// Applies one register definition to \p RegState (shared by both modes and
/// by the compiled mode's duplicate-definition fallback).
template <typename StatsT>
static void applyRegDef(const RegAction &A, uint32_t &RegState,
                        const ShadowStack &Stack, size_t Base,
                        const RegisterFile &Regs, bool IsTop, StatsT &Stats) {
  bool IsPtr = false;
  switch (A.What.Kind) {
  case TraceKind::Pointer:
    IsPtr = true;
    break;
  case TraceKind::NonPointer:
    IsPtr = false;
    break;
  case TraceKind::Compute:
    ++Stats.ComputesResolved;
    IsPtr = resolveCompute(A.What, Stack, Base, Regs, IsTop);
    break;
  case TraceKind::CalleeSave:
    TILGC_UNREACHABLE("CalleeSave is not a register definition");
  }
  if (IsPtr)
    RegState |= 1u << A.Reg;
  else
    RegState &= ~(1u << A.Reg);
}

namespace {

/// Pass 2 frame bodies. Compiled = false is the paper's interpretive
/// per-slot switch; Compiled = true runs the memoized ScanPlan: a
/// countr_zero walk of the pointer bitmask plus the dense side lists. The
/// template keeps the mode dispatch out of the per-frame (and per-slot)
/// hot path.
template <bool Compiled> struct FrameTracer;

template <> struct FrameTracer<false> {
  template <typename PushRootT>
  static uint32_t trace(ShadowStack &Stack, size_t Base, uint32_t Key,
                        const RegisterFile &Regs, bool IsTop,
                        uint32_t RegState, ScanStats &Stats,
                        PushRootT &&PushRoot) {
    const FrameLayout &L = TraceTableRegistry::global().lookup(Key);
    uint32_t NumSlots = L.numSlots();
    for (uint32_t S = 1; S < NumSlots; ++S) {
      const Trace &T = L.SlotTraces[S - 1];
      ++Stats.SlotsVisited;
      switch (T.Kind) {
      case TraceKind::NonPointer:
        break;
      case TraceKind::Pointer:
        if (Stack.slot(Base, S))
          PushRoot(Stack.slotAddress(Base, S));
        break;
      case TraceKind::CalleeSave:
        // The slot holds the caller's value of register T.Index; it is a
        // root exactly when that register held a pointer below this frame.
        if ((RegState >> T.Index) & 1u)
          if (Stack.slot(Base, S))
            PushRoot(Stack.slotAddress(Base, S));
        break;
      case TraceKind::Compute:
        ++Stats.ComputesResolved;
        if (resolveCompute(T, Stack, Base, Regs, IsTop))
          if (Stack.slot(Base, S))
            PushRoot(Stack.slotAddress(Base, S));
        break;
      }
    }

    // Apply this frame's register definitions.
    for (const RegAction &A : L.RegDefs)
      applyRegDef(A, RegState, Stack, Base, Regs, IsTop, Stats);
    return RegState;
  }
};

template <> struct FrameTracer<true> {
  template <typename PushRootT>
  static uint32_t trace(ShadowStack &Stack, size_t Base, uint32_t Key,
                        const RegisterFile &Regs, bool IsTop,
                        uint32_t RegState, ScanStats &Stats,
                        PushRootT &&PushRoot) {
    const ScanPlan &P = ScanPlanCache::global().plan(Key);

    // Pointer bitmask: one word test per 64 slots, one countr_zero per
    // pointer slot. Slot addresses are computed off the frame's first slot
    // so the inner loop is pure pointer arithmetic.
    Word *Frame = Stack.slotAddress(Base, 0);
    const uint64_t *Words = P.PtrWords.data();
    size_t NumWords = P.PtrWords.size();
    Stats.PlanWordsScanned += NumWords;
    for (size_t WI = 0; WI < NumWords; ++WI) {
      uint64_t Bits = Words[WI];
      Word *Chunk = Frame + WI * 64;
      while (Bits) {
        unsigned B = static_cast<unsigned>(std::countr_zero(Bits));
        Bits &= Bits - 1;
        if (Chunk[B])
          PushRoot(Chunk + B);
      }
    }

    // The side lists are the only interpreted slots left.
    for (const ScanPlan::CalleeSaveEntry &CS : P.CalleeSaves) {
      ++Stats.SlotsVisited;
      if ((RegState >> CS.Reg) & 1u)
        if (Frame[CS.Slot])
          PushRoot(Frame + CS.Slot);
    }
    for (const ScanPlan::ComputeEntry &CE : P.Computes) {
      ++Stats.SlotsVisited;
      ++Stats.ComputesResolved;
      if (resolveCompute(CE.T, Stack, Base, Regs, IsTop))
        if (Frame[CE.Slot])
          PushRoot(Frame + CE.Slot);
    }

    // Precomputed register transition (or the verbatim fallback when the
    // layout redefines a register twice).
    if (TILGC_UNLIKELY(P.RegDefsNeedInterp)) {
      for (const RegAction &A : P.InterpRegDefs)
        applyRegDef(A, RegState, Stack, Base, Regs, IsTop, Stats);
      return RegState;
    }
    RegState = (RegState & ~P.RegClearMask) | P.RegSetMask;
    for (const RegAction &A : P.ComputeRegDefs)
      applyRegDef(A, RegState, Stack, Base, Regs, IsTop, Stats);
    return RegState;
  }
};

/// The shared scan skeleton: marker replay, pass 1 decode, pass 2 frame
/// loop (mode-templated), register roots.
template <bool Compiled>
void scanImpl(ShadowStack &Stack, RegisterFile &Regs, MarkerManager *Markers,
              ScanCache *Cache, RootSet &Roots, ScanStats &Stats) {
  TraceTableRegistry &Registry = TraceTableRegistry::global();
  size_t FrameCount = Stack.frameCount();
  size_t ReuseCount = 0;
  uint32_t RegState = 0;

  if (Markers) {
    // Generational stack collection: replay the cached prefix.
    size_t Boundary = Markers->reuseBoundary();
    while (ReuseCount < Cache->frames().size() &&
           Cache->frames()[ReuseCount].Base < Boundary)
      ++ReuseCount;
    assert(ReuseCount <= FrameCount &&
           "cache claims more unchanged frames than exist");
    // Retire markers at/above the boundary (their frames are rescanned) and
    // open a new watermark epoch.
    Markers->beginScan(Boundary, Stack);
    if (ReuseCount) {
      const ScanCache::CachedFrame &Last = Cache->frames()[ReuseCount - 1];
      assert(Last.Base == Stack.frameBase(ReuseCount - 1) &&
             "cached frame does not match the live stack");
      RegState = Last.RegStateAfter;
      Roots.ReusedSlotRoots.assign(Cache->roots().begin(),
                                   Cache->roots().begin() + Last.RootsEnd);
      Cache->truncateRoots(Last.RootsEnd);
    } else {
      Cache->truncateRoots(0);
    }
    Cache->truncateFrames(ReuseCount);
    Stats.FramesReused += ReuseCount;
  }

  // Pass 1: decode downward from the current execution point to the reuse
  // boundary, keying each frame's layout by its return-address slot. (With
  // a side chain of frame bases the decode is a table lookup per frame; the
  // cost model — work proportional to the number of non-reused frames — is
  // what matters.) In compiled mode this is also where a key first seen by
  // the collector gets its plan compiled.
  for (size_t I = FrameCount; I > ReuseCount; --I) {
    size_t Base = Stack.frameBase(I - 1);
    uint32_t Key = Stack.keyOf(Base);
    assert(Key != StubKey && "stubs must be retired before decoding");
    if constexpr (Compiled)
      (void)ScanPlanCache::global().plan(Key);
    else
      (void)Registry.lookup(Key);
  }
  (void)Registry;

  // Pass 2: walk upward maintaining the register pointer-status so that
  // CalleeSave traces resolve, accumulating root locations.
  auto PushRoot = [&](Word *Slot) {
    Roots.FreshSlotRoots.push_back(Slot);
    if (Cache)
      Cache->pushRoot(Slot);
  };

  for (size_t I = ReuseCount; I < FrameCount; ++I) {
    size_t Base = Stack.frameBase(I);
    uint32_t Key = Stack.keyOf(Base);
    bool IsTop = (I + 1 == FrameCount);
    ++Stats.FramesScanned;

    RegState = FrameTracer<Compiled>::trace(Stack, Base, Key, Regs, IsTop,
                                            RegState, Stats, PushRoot);

    if (Cache)
      Cache->pushFrame(ScanCache::CachedFrame{
          Base, Key,
          static_cast<uint32_t>(Roots.ReusedSlotRoots.size() +
                                Roots.FreshSlotRoots.size()),
          RegState});

    // Mark every Period-th frame (fixed frame indices keep global marker
    // spacing stable across scans without extra bookkeeping).
    if (Markers && (I + 1) % Markers->period() == 0) {
      Markers->place(Base, Key);
      Stack.setKey(Base, StubKey);
      ++Stats.MarkersPlaced;
    }
  }

  // The register file itself: the final register state is the topmost
  // frame's view of the machine registers.
  for (unsigned R = 0; R < NumRegisters; ++R)
    if (((RegState >> R) & 1u) && Regs[R] != 0)
      Roots.RegRoots.push_back(R);

  if (Markers)
    Markers->onScanComplete(FrameCount - ReuseCount);
}

} // namespace

void StackScanner::scan(ShadowStack &Stack, RegisterFile &Regs,
                        MarkerManager *Markers, ScanCache *Cache,
                        RootSet &Roots, ScanStats &Stats,
                        bool CompiledPlans) {
  assert((Markers == nullptr) == (Cache == nullptr) &&
         "markers and cache go together");
  Roots.clear();
  if (CompiledPlans)
    scanImpl<true>(Stack, Regs, Markers, Cache, Roots, Stats);
  else
    scanImpl<false>(Stack, Regs, Markers, Cache, Roots, Stats);
}
