//===- stack/RegisterFile.h - Simulated register file -----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated general-purpose register file. Registers exist so that the
/// callee-save discipline — the reason TIL's stack scan is two-pass — has
/// something real to chain through: a register's pointer status at any frame
/// depends on the register definitions of the frames below it.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_REGISTERFILE_H
#define TILGC_STACK_REGISTERFILE_H

#include "object/Object.h"
#include "stack/TraceTable.h"

#include <cassert>

namespace tilgc {

/// A fixed file of NumRegisters machine words.
class RegisterFile {
public:
  Word &operator[](unsigned R) {
    assert(R < NumRegisters && "register index out of range");
    return Regs[R];
  }
  const Word &operator[](unsigned R) const {
    assert(R < NumRegisters && "register index out of range");
    return Regs[R];
  }

  void clear() {
    for (Word &R : Regs)
      R = 0;
  }

  /// True if \p P is one of this file's cells (collectors use this to
  /// filter register cells out of heap remembered sets).
  bool ownsSlot(const Word *P) const {
    return P >= Regs && P < Regs + NumRegisters;
  }

private:
  Word Regs[NumRegisters] = {};
};

} // namespace tilgc

#endif // TILGC_STACK_REGISTERFILE_H
