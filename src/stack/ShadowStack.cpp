//===- stack/ShadowStack.cpp - Activation-record stack --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "stack/ShadowStack.h"

using namespace tilgc;

ShadowStack::ShadowStack(size_t CapacitySlots) : Slots(CapacitySlots, 0) {
  Bases.reserve(CapacitySlots / 4);
}
