//===- stack/ScanPlan.h - Compiled stack-scan plans -------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiled scan plans: the JIT-style metadata compilation layer over the
/// trace tables (see DESIGN.md "Beyond the paper: compiled scan plans").
///
/// The paper's scanner interprets a frame's `FrameLayout` with a per-slot
/// switch over the four trace kinds — cheap per slot, but every collection
/// re-pays the decode for every slot of every fresh frame. The first time a
/// return-address key is scanned, we compile its layout once into a
/// `ScanPlan`:
///
///  * a **pointer bitmask** over the frame's slots (one `uint64_t` word per
///    64 slots; bit s of word s/64 is set iff slot s carries a Pointer
///    trace), iterated with `countr_zero` so a Pointer/NonPointer-dominated
///    frame costs one word-test per 64 slots instead of 64 switch
///    dispatches;
///  * a **dense callee-save list** and a **dense compute list** (in slot
///    order), the only traces that still need per-slot interpretation; and
///  * a **precomputed register transition**: set/clear masks folding every
///    statically-known `RegDefs` action into two AND/OR operations, plus a
///    residue of runtime-resolved Compute definitions.
///
/// Plans are memoized in the process-wide `ScanPlanCache` beside the
/// `TraceTableRegistry`: keys are never redefined, so a compiled plan never
/// goes stale. Both caches follow the same threading convention — mutators
/// (and therefore stack scans) are single-threaded; GC worker threads never
/// touch frame metadata.
///
/// The interpretive scan remains available behind
/// `Options::CompiledScanPlans = false` as the paper-faithful mode; the
/// differential test in tests/scan_plan_test.cpp pins the two modes to
/// identical root sets, collection behavior, and pretenuring profiles.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_STACK_SCANPLAN_H
#define TILGC_STACK_SCANPLAN_H

#include "stack/TraceTable.h"
#include "support/Compiler.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace tilgc {

/// The compiled form of one FrameLayout.
struct ScanPlan {
  /// A slot holding the caller's value of register Reg (CalleeSave trace):
  /// a root exactly when Reg held a pointer below this frame.
  struct CalleeSaveEntry {
    uint16_t Slot;
    uint8_t Reg;
  };

  /// A slot whose pointer-ness is resolved from a runtime type descriptor
  /// (Compute trace).
  struct ComputeEntry {
    uint16_t Slot;
    Trace T;
  };

  /// Total frame size in slots, including the key slot 0.
  uint32_t NumSlots = 1;

  /// Pointer bitmask: bit (s % 64) of PtrWords[s / 64] is set iff slot s
  /// has a Pointer trace. Slot 0 (the key) is never set. Sized to cover
  /// slots [0, NumSlots); empty for one-slot frames.
  std::vector<uint64_t> PtrWords;

  /// CalleeSave slots, in increasing slot order.
  std::vector<CalleeSaveEntry> CalleeSaves;

  /// Compute slots, in increasing slot order (matching the interpreter's
  /// resolution order, so ComputesResolved counts stay bit-identical).
  std::vector<ComputeEntry> Computes;

  /// Register-state transition: registers statically redefined to Pointer
  /// (set) or NonPointer (clear) by this frame. Applied as
  ///   RegState = (RegState & ~RegClearMask) | RegSetMask
  /// before the compute residue below.
  uint32_t RegSetMask = 0;
  uint32_t RegClearMask = 0;

  /// Register definitions that need runtime Compute resolution, in the
  /// layout's definition order.
  std::vector<RegAction> ComputeRegDefs;

  /// Fallback for the (pathological) case of a layout that redefines the
  /// same register more than once: the masks above cannot reproduce the
  /// interpreter's sequential last-writer-wins semantics together with its
  /// per-definition ComputesResolved accounting, so the scanner interprets
  /// RegDefs (a verbatim copy) instead. Never set by real layouts.
  bool RegDefsNeedInterp = false;
  std::vector<RegAction> InterpRegDefs;

  /// Compiles \p Layout. Pure function of the layout; never fails.
  static ScanPlan compile(const FrameLayout &Layout);
};

/// Process-wide memoization of compiled plans, indexed by return-address
/// key. Lives beside TraceTableRegistry::global() and shares its threading
/// convention (scans are single-threaded).
class ScanPlanCache {
public:
  static ScanPlanCache &global();

  /// The plan for \p Key, compiling it on first use. \p Key is validated
  /// against the registry (checked lookup — a corrupted return-address slot
  /// aborts loudly rather than reading out of bounds).
  const ScanPlan &plan(uint32_t Key) {
    if (TILGC_UNLIKELY(Key >= Plans.size() || !Plans[Key]))
      return compileAndInsert(Key);
    return *Plans[Key];
  }

  /// Number of keys compiled so far (observability for tests/benches).
  size_t compiledCount() const { return NumCompiled; }

private:
  const ScanPlan &compileAndInsert(uint32_t Key);

  /// unique_ptr entries keep plan references stable across vector growth.
  std::vector<std::unique_ptr<const ScanPlan>> Plans;
  size_t NumCompiled = 0;
};

} // namespace tilgc

#endif // TILGC_STACK_SCANPLAN_H
