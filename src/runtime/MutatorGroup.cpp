//===- runtime/MutatorGroup.cpp - N mutators, one heap --------------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/MutatorGroup.h"

#include "observe/GcTelemetry.h"
#include "support/Fatal.h"

#include <exception>
#include <thread>

using namespace tilgc;

MutatorGroup::MutatorGroup(const MutatorConfig &Config, unsigned NumMutators)
    : SP(NumMutators) {
  if (NumMutators == 0)
    fatalError("mutator group needs at least one mutator");
  if (Config.UseStackMarkers)
    fatalError("multi-mutator mode is incompatible with stack markers: the "
               "scan cache covers a single stack");

  Muts.reserve(NumMutators);
  Muts.push_back(std::make_unique<Mutator>(Config));
  Collector &C = Muts[0]->collector();
  for (unsigned I = 1; I < NumMutators; ++I) {
    Muts.push_back(std::make_unique<Mutator>(C, Config));
    C.registerExtraContext(&Muts[I]->stack(), &Muts[I]->registers());
  }

  bool RecordBarrier = Config.Kind == CollectorKind::Generational;
  for (unsigned I = 0; I < NumMutators; ++I)
    Muts[I]->attachToGroup(*this, I, Config.EnableProfiling, RecordBarrier);

  if (Config.SafepointDeadlineMicros) {
    // Barks fan out through the shared collector's telemetry plane so one
    // observer registration sees GC events, GC barks, and rendezvous barks
    // alike. Dispatch runs on the supervisor thread; noteWatchdogBark is
    // safe there (see GcObserver.h).
    GcTelemetry *T = &C.telemetry();
    SP.configureWatchdog(&SafepointWD, Config.SafepointDeadlineMicros,
                         Config.WatchdogEscalation,
                         [T](const WatchdogBark &B) { T->noteWatchdogBark(B); });
  }
}

MutatorGroup::~MutatorGroup() = default;

void MutatorGroup::run(const std::function<void(Mutator &, unsigned)> &Body) {
  unsigned N = size();
  SP.arm(N);
  std::vector<std::exception_ptr> Errors(N);
  std::vector<std::thread> Threads;
  Threads.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Threads.emplace_back([this, &Body, &Errors, I] {
      try {
        Body(*Muts[I], I);
      } catch (...) {
        Errors[I] = std::current_exception();
      }
      // Liveness: a thread that will poll no more must deactivate, or a
      // stopper would wait for it forever.
      SP.deactivate(I);
    });
  for (std::thread &T : Threads)
    T.join();
  // World quiescent: fold the tails so callers see exact final totals and
  // a linearly walkable heap (retired TLABs), exactly as after a stop.
  mergeAtSafepoint();
  for (std::exception_ptr &E : Errors)
    if (E)
      std::rethrow_exception(E);
}

Word *MutatorGroup::allocateStopped(unsigned Idx, ObjectKind Kind,
                                    uint32_t LenWords, uint32_t PtrMask,
                                    uint32_t Site) {
  return SP.stopTheWorld(Idx, [&]() -> Word * {
    beginStopBookkeeping();
    EndGuard EG{*this};
    return collector().allocate(Kind, LenWords, PtrMask, Site);
  });
}

void MutatorGroup::collectStopped(unsigned Idx, bool Major) {
  SP.stopTheWorld(Idx, [&] {
    beginStopBookkeeping();
    EndGuard EG{*this};
    collector().collect(Major);
  });
}

void MutatorGroup::beginStopBookkeeping() {
  GcStats &S = gcStats();
  ++S.SafepointStops;
  S.SafepointWaitNs += SP.lastWaitEndNs() - SP.lastWaitBeginNs();
  // Stage the rendezvous for the event plane: if the stopped operation
  // collects, its event absorbs the wait as a SafepointWait phase (and the
  // per-mutator park spans); if not, endStopBookkeeping drops the record.
  collector().telemetry().noteSafepointWait(
      SP.lastWaitBeginNs(), SP.lastWaitEndNs(), SP.takeParkSpans());
  mergeAtSafepoint();
}

void MutatorGroup::endStopBookkeeping() {
  uint64_t SharedBytes = gcStats().BytesAllocated;
  for (std::unique_ptr<Mutator> &M : Muts)
    M->SharedBytesAtMerge = SharedBytes;
  collector().telemetry().clearPendingSafepoint();
}

void MutatorGroup::mergeAtSafepoint() {
  Collector &C = collector();
  GcStats &S = C.stats();
  HeapProfiler *Shared = Muts[0]->profiler();
  // Thread-index order makes every merged quantity deterministic: totals,
  // site profiles, and anything derived from them (pretenure sets) come
  // out identical run to run and identical to a serial execution.
  for (std::unique_ptr<Mutator> &MP : Muts) {
    Mutator &M = *MP;
    M.retireTlab();
    for (Word *Slot : M.LocalSSB)
      C.writeBarrier(Slot);
    M.LocalSSB.clear();
    // Pause-budget SATB backlog: replayed with the world stopped, before
    // the stopped operation can run a slice or finish the cycle — so every
    // overwritten snapshot edge is seeded ahead of any mark advance.
    for (Word OldBits : M.LocalSatb)
      C.satbRecord(OldBits);
    M.LocalSatb.clear();
    S.BytesAllocated += M.LocalStats.BytesAllocated;
    S.ObjectsAllocated += M.LocalStats.ObjectsAllocated;
    S.RecordBytesAllocated += M.LocalStats.RecordBytesAllocated;
    S.ArrayBytesAllocated += M.LocalStats.ArrayBytesAllocated;
    S.TlabRefills += M.LocalStats.TlabRefills;
    S.TlabPadBytes += M.LocalStats.TlabPadBytes;
    M.LocalStats = Mutator::LocalAlloc{};
    if (Shared && M.LocalProf) {
      Shared->mergeFrom(*M.LocalProf);
      M.LocalProf->reset();
    }
  }
}
