//===- runtime/MutatorGroup.h - N mutators, one heap ------------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-mutator runtime: N mutator threads share one collector
/// (DESIGN.md "Beyond the paper: multi-mutator runtime").
///
/// Construction wires the pieces together with the world quiescent:
///
///  * Mutator 0 is an ordinary Mutator owning the collector (and the
///    shared profiler/trace recorder); mutators 1..N-1 are attached —
///    they alias the primary's collector, and their shadow stacks and
///    register files are registered as extra root contexts so every
///    collection scans all N stacks.
///  * Every member is then switched into group mode: allocation goes
///    through a per-thread TLAB (a block grant from the collector's
///    inline-allocation space) with a safepoint poll; pointer-store
///    barrier records buffer in a per-thread store buffer; allocation
///    statistics and profile samples accumulate in per-thread scratch.
///
/// Any slow-path allocation or explicit collection stops the world via
/// SafepointCoordinator, then — with every other thread parked — merges
/// all per-thread state in thread-index order (TLAB retirement, barrier
/// replay through the collector's real write barrier, statistics fold,
/// profile merge) before running the collector operation. The merge order
/// is deterministic, so totals, site profiles, and derived pretenure sets
/// match a serial run exactly; only the interleaving of per-thread
/// allocation into birth stamps varies.
///
/// Stack markers are rejected: the §5 scan cache memoizes a single stack's
/// scan state and cannot cover N stacks.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_RUNTIME_MUTATORGROUP_H
#define TILGC_RUNTIME_MUTATORGROUP_H

#include "runtime/Mutator.h"
#include "runtime/Safepoint.h"
#include "support/Watchdog.h"

#include <functional>
#include <memory>
#include <vector>

namespace tilgc {

class MutatorGroup {
public:
  /// Builds \p NumMutators mutators sharing one collector configured by
  /// \p Config. Fatal if NumMutators is 0 or Config enables stack markers.
  MutatorGroup(const MutatorConfig &Config, unsigned NumMutators);
  ~MutatorGroup();
  MutatorGroup(const MutatorGroup &) = delete;
  MutatorGroup &operator=(const MutatorGroup &) = delete;

  unsigned size() const { return static_cast<unsigned>(Muts.size()); }
  Mutator &mutator(unsigned Idx) { return *Muts[Idx]; }
  Collector &collector() { return Muts[0]->collector(); }
  GcStats &gcStats() { return collector().stats(); }
  /// The shared profiler (primary mutator's; null unless profiling).
  HeapProfiler *profiler() { return Muts[0]->profiler(); }
  SafepointCoordinator &safepoint() { return SP; }
  /// The rendezvous supervisor (idle unless Config.SafepointDeadlineMicros
  /// was set); tests read barks() from it.
  Watchdog &safepointWatchdog() { return SafepointWD; }

  /// Runs \p Body(mutator(I), I) on one std::thread per mutator and joins
  /// them all. On return the world is quiescent and all per-thread state
  /// has been merged, so stats/profiles/heap walks see final totals. The
  /// first per-thread exception (by thread index) is rethrown; the
  /// remaining threads still run to completion first.
  void run(const std::function<void(Mutator &, unsigned)> &Body);

  // --- Internal API for attached Mutators -------------------------------

  /// Stop-the-world slow-path allocation for thread \p Idx: parks behind /
  /// claims the safepoint, merges per-thread state, then runs the
  /// collector's full allocate() — same OOM ladder as single-mutator mode.
  Word *allocateStopped(unsigned Idx, ObjectKind Kind, uint32_t LenWords,
                        uint32_t PtrMask, uint32_t Site);

  /// Stop-the-world explicit collection for thread \p Idx.
  void collectStopped(unsigned Idx, bool Major);

private:
  /// First thing inside a stop: count it, feed the rendezvous telemetry to
  /// the collector's event plane, and merge all per-thread state so the
  /// collector sees a coherent heap and exact totals.
  void beginStopBookkeeping();
  /// Last thing inside a stop (runs even if the operation threw): refresh
  /// every thread's shared-counter snapshot; drop the pending safepoint
  /// record if no collection consumed it.
  void endStopBookkeeping();
  void mergeAtSafepoint();

  struct EndGuard {
    MutatorGroup &G;
    ~EndGuard() { G.endStopBookkeeping(); }
  };

  std::vector<std::unique_ptr<Mutator>> Muts;
  SafepointCoordinator SP;
  /// Supervises stop-the-world rendezvous; separate from the collector's
  /// GC-cycle watchdog because the two windows have different owners (a
  /// stopping mutator vs the collecting thread) and different deadlines.
  Watchdog SafepointWD;
};

} // namespace tilgc

#endif // TILGC_RUNTIME_MUTATORGROUP_H
