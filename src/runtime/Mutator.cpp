//===- runtime/Mutator.cpp - The mutator-facing runtime API ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "observe/EventRecorder.h"
#include "observe/TraceExporter.h"
#include "support/Fatal.h"

#include <cstdlib>

using namespace tilgc;

Mutator::Mutator(const MutatorConfig &Config) : Config(Config) {
  if (Config.EnableProfiling)
    Profiler = std::make_unique<HeapProfiler>();

  TracePath = Config.TraceOutPath;
  if (TracePath.empty())
    if (const char *P = std::getenv("TILGC_TRACE_OUT"))
      TracePath = P;
  if (!TracePath.empty())
    Recorder = std::make_unique<EventRecorder>(Config.TelemetryRingEvents);

  CollectorEnv Env;
  Env.Stack = &Stack;
  Env.Regs = &Regs;
  Env.Profiler = Profiler.get();
  if (Config.Observer)
    Env.Observers.push_back(Config.Observer);
  if (Recorder)
    Env.Observers.push_back(Recorder.get());

  switch (Config.Kind) {
  case CollectorKind::Semispace: {
    SemispaceCollector::Options Opts;
    Opts.Name = Config.Name;
    Opts.BudgetBytes = Config.BudgetBytes;
    Opts.HardLimitBytes = Config.HardLimitBytes;
    Opts.VerifyLevel = Config.VerifyLevel;
    Opts.TargetLiveness = Config.SemispaceTargetLiveness;
    Opts.UseStackMarkers = Config.UseStackMarkers;
    Opts.MarkerPeriod = Config.MarkerPeriod;
    Opts.AdaptiveMarkerPlacement = Config.AdaptiveMarkerPlacement;
    Opts.CompiledScanPlans = Config.CompiledScanPlans;
    Opts.GcThreads = Config.GcThreads;
    GC = std::make_unique<SemispaceCollector>(Env, Opts);
    break;
  }
  case CollectorKind::Generational: {
    GenerationalCollector::Options Opts;
    Opts.Name = Config.Name;
    Opts.BudgetBytes = Config.BudgetBytes;
    Opts.HardLimitBytes = Config.HardLimitBytes;
    Opts.VerifyLevel = Config.VerifyLevel;
    Opts.NurseryLimitBytes = Config.NurseryLimitBytes;
    Opts.TenuredTargetLiveness = Config.TenuredTargetLiveness;
    Opts.LargeObjectThresholdBytes = Config.LargeObjectThresholdBytes;
    Opts.UseStackMarkers = Config.UseStackMarkers;
    Opts.MarkerPeriod = Config.MarkerPeriod;
    Opts.AdaptiveMarkerPlacement = Config.AdaptiveMarkerPlacement;
    Opts.CompiledScanPlans = Config.CompiledScanPlans;
    Opts.Barrier = Config.Barrier;
    Opts.MajorGc = Config.MajorGc;
    Opts.PromoteAgeThreshold = Config.PromoteAgeThreshold;
    Opts.Pretenure = Config.Pretenure;
    Opts.VerifyReuseInvariant = Config.VerifyReuseInvariant;
    Opts.VerifyHeapAfterGC = Config.VerifyHeapAfterGC;
    Opts.GcThreads = Config.GcThreads;
    GC = std::make_unique<GenerationalCollector>(Env, Opts);
    break;
  }
  }
}

Mutator::~Mutator() {
  if (Recorder && !TracePath.empty())
    TraceExporter::writeFile(*Recorder, TracePath);
}

void Mutator::raise(Value Exn) {
  // An uncaught ML exception is a workload bug, but one that must die
  // loudly and identifiably in every build mode — the NDEBUG alternative
  // is unwinding through an empty handler stack into memory corruption.
  if (TILGC_UNLIKELY(Handlers.empty()))
    fatalError("uncaught ML exception in mutator '%s': handler stack empty "
               "at raise #%llu with %zu live frames",
               Config.Name.empty() ? "<unnamed>" : Config.Name.c_str(),
               (unsigned long long)(NumRaises + 1), Stack.frameCount());
  HandlerEntry H = Handlers.back();
  Handlers.pop_back();
  ++NumRaises;

  // Size the target frame before touching the marker set (its key slot may
  // hold a stub key if the collector marked it).
  MarkerManager *MM = GC->markerManager();
  uint32_t Key =
      MM ? MM->resolveKey(Stack, H.FrameBase) : Stack.keyOf(H.FrameBase);
  uint32_t NumSlots = TraceTableRegistry::global().lookup(Key).numSlots();

  // Control jumps past the intervening frames without executing their
  // returns: retire jumped-over markers and update the watermark M (§5).
  if (MM)
    MM->onUnwind(H.FrameBase);
  Stack.unwindTo(H.FrameBase, NumSlots);

  throw MLRaise{Exn, H.Id};
}
