//===- runtime/Mutator.cpp - The mutator-facing runtime API ---------------===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//

#include "runtime/Mutator.h"

#include "observe/EventRecorder.h"
#include "observe/TraceExporter.h"
#include "runtime/MutatorGroup.h"
#include "support/Fatal.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cstdlib>

using namespace tilgc;

Mutator::Mutator(const MutatorConfig &Config) : Config(Config) {
  if (Config.EnableProfiling)
    Profiler = std::make_unique<HeapProfiler>();

  TracePath = Config.TraceOutPath;
  if (TracePath.empty())
    if (const char *P = std::getenv("TILGC_TRACE_OUT"))
      TracePath = P;
  if (!TracePath.empty())
    Recorder = std::make_unique<EventRecorder>(Config.TelemetryRingEvents);

  CollectorEnv Env;
  Env.Stack = &Stack;
  Env.Regs = &Regs;
  Env.Profiler = Profiler.get();
  if (Config.Observer)
    Env.Observers.push_back(Config.Observer);
  if (Recorder)
    Env.Observers.push_back(Recorder.get());

  switch (Config.Kind) {
  case CollectorKind::Semispace: {
    SemispaceCollector::Options Opts;
    Opts.Name = Config.Name;
    Opts.BudgetBytes = Config.BudgetBytes;
    Opts.HardLimitBytes = Config.HardLimitBytes;
    Opts.VerifyLevel = Config.VerifyLevel;
    Opts.TargetLiveness = Config.SemispaceTargetLiveness;
    Opts.UseStackMarkers = Config.UseStackMarkers;
    Opts.MarkerPeriod = Config.MarkerPeriod;
    Opts.AdaptiveMarkerPlacement = Config.AdaptiveMarkerPlacement;
    Opts.CompiledScanPlans = Config.CompiledScanPlans;
    Opts.GcThreads = Config.GcThreads;
    OwnedGC = std::make_unique<SemispaceCollector>(Env, Opts);
    break;
  }
  case CollectorKind::Generational: {
    GenerationalCollector::Options Opts;
    Opts.Name = Config.Name;
    Opts.BudgetBytes = Config.BudgetBytes;
    Opts.HardLimitBytes = Config.HardLimitBytes;
    Opts.VerifyLevel = Config.VerifyLevel;
    Opts.NurseryLimitBytes = Config.NurseryLimitBytes;
    Opts.TenuredTargetLiveness = Config.TenuredTargetLiveness;
    Opts.LargeObjectThresholdBytes = Config.LargeObjectThresholdBytes;
    Opts.UseStackMarkers = Config.UseStackMarkers;
    Opts.MarkerPeriod = Config.MarkerPeriod;
    Opts.AdaptiveMarkerPlacement = Config.AdaptiveMarkerPlacement;
    Opts.CompiledScanPlans = Config.CompiledScanPlans;
    Opts.Barrier = Config.Barrier;
    Opts.MajorGc = Config.MajorGc;
    Opts.PromoteAgeThreshold = Config.PromoteAgeThreshold;
    Opts.Pretenure = Config.Pretenure;
    Opts.VerifyReuseInvariant = Config.VerifyReuseInvariant;
    Opts.VerifyHeapAfterGC = Config.VerifyHeapAfterGC;
    Opts.GcThreads = Config.GcThreads;
    Opts.MaxPauseMicros = Config.MaxPauseMicros;
    Opts.GcDeadlineMicros = Config.GcDeadlineMicros;
    Opts.SafepointDeadlineMicros = Config.SafepointDeadlineMicros;
    Opts.WatchdogEscalation = Config.WatchdogEscalation;
    Opts.FailoverStickyLimit = Config.FailoverStickyLimit;
    OwnedGC = std::make_unique<GenerationalCollector>(Env, Opts);
    break;
  }
  }
  GC = OwnedGC.get();
}

Mutator::Mutator(Collector &SharedGC, const MutatorConfig &Config)
    : Config(Config), GC(&SharedGC) {
  // Attached mutators own no collector, profiler, or trace recorder: the
  // group's primary mutator holds all shared machinery. Per-thread profile
  // scratch (LocalProf) is wired later by attachToGroup.
}

Mutator::~Mutator() {
  if (Recorder && !TracePath.empty())
    TraceExporter::writeFile(*Recorder, TracePath, Config.Name);
}

//===----------------------------------------------------------------------===//
// Multi-mutator mode (see runtime/MutatorGroup.h for the protocol).
//===----------------------------------------------------------------------===//

void Mutator::attachToGroup(MutatorGroup &G, unsigned Idx, bool Profiling,
                            bool RecordBarrier) {
  Group = &G;
  GroupIdx = Idx;
  RecordLocalBarrier = RecordBarrier;
  if (Profiling)
    LocalProf = std::make_unique<HeapProfiler>();
  SharedBytesAtMerge = GC->stats().BytesAllocated;
  // Fix the TLAB object-size bound once: for the generational collector
  // this is the large-object threshold, a construction-time constant.
  GC->inlineAllocSpace(TlabMaxBytes);
}

Word *Mutator::allocMulti(ObjectKind Kind, Word Descriptor, uint32_t LenWords,
                          uint32_t PtrMask, uint32_t Site) {
  SafepointCoordinator &SP = Group->safepoint();
  if (TILGC_UNLIKELY(SP.stopRequested()))
    SP.yield(GroupIdx);
  if (TILGC_LIKELY(siteAllowsFast(Site) &&
                   objectTotalBytes(Descriptor) < TlabMaxBytes)) {
    size_t Need = objectTotalWords(Descriptor);
    Word *P = TlabNext;
    if (TILGC_UNLIKELY(!P || Need > static_cast<size_t>(TlabEnd - P)))
      P = refillTlab(Need);
    if (TILGC_LIKELY(P != nullptr)) {
      TlabNext = P + Need;
      P[0] = Descriptor;
      // Birth stamp: shared counter as of the last safepoint merge plus
      // allocation since — monotone per thread, exact in total.
      P[1] = meta::make(
          Site, (SharedBytesAtMerge + LocalStats.BytesAllocated) >> 10);
      uint64_t Bytes = objectTotalBytes(Descriptor);
      LocalStats.BytesAllocated += Bytes;
      LocalStats.ObjectsAllocated += 1;
      if (Kind == ObjectKind::Record)
        LocalStats.RecordBytesAllocated += Bytes;
      else
        LocalStats.ArrayBytesAllocated += Bytes;
      if (LocalProf)
        LocalProf->onAlloc(Site, Bytes);
      std::memset(P + HeaderWords, 0,
                  static_cast<size_t>(LenWords) * sizeof(Word));
      return P + HeaderWords;
    }
  }
  // Pretenured site, large object, or nursery exhausted: stop the world
  // and run the collector's full allocate() (merges first, may collect,
  // reuses the single-mutator OOM ladder unchanged).
  return Group->allocateStopped(GroupIdx, Kind, LenWords, PtrMask, Site);
}

Word *Mutator::refillTlab(size_t NeedWords) {
  retireTlab();
  // Injected refill refusal: the thread behaves exactly as if the nursery
  // had no block to grant and falls to the stop-the-world slow path — the
  // graceful-degradation contract this fault point exists to prove.
  if (TILGC_UNLIKELY(FaultInjector::enabled()) &&
      FaultInjector::global().shouldFire(FaultPoint::TlabRefillFail))
    return nullptr;
  size_t MaxBytes = 0;
  Space *S = GC->tlabAllocSpace(MaxBytes);
  if (TILGC_UNLIKELY(!S))
    return nullptr;
  // Pause-budget cycle live: shrink the grant so refills (the group-mode
  // slice safepoints) come ~8x as often — a full-size grant would quantize
  // the slice schedule to ~32 checks per nursery epoch and let arbitrarily
  // much mark debt pile up between them.
  size_t GrantWords = GC->satbLive() ? TlabWords / 8 : TlabWords;
  Word *Begin = nullptr;
  Word *End = nullptr;
  if (!S->allocateBlock(NeedWords, std::max(NeedWords, GrantWords), Begin, End))
    return nullptr;
  TlabSpace = S;
  TlabNext = Begin;
  TlabEnd = End;
  ++LocalStats.TlabRefills;
  return Begin;
}

void Mutator::retireTlab() {
  if (TlabSpace && TlabNext != TlabEnd &&
      !TlabSpace->returnBlockTail(TlabNext, TlabEnd)) {
    // Another thread allocated a block past ours: plug the tail with a Pad
    // so the space stays linearly walkable (heap audits, death sweeps).
    size_t PadW = static_cast<size_t>(TlabEnd - TlabNext);
    TlabNext[0] = header::makePad(static_cast<uint32_t>(PadW));
    LocalStats.TlabPadBytes += PadW * sizeof(Word);
  }
  TlabSpace = nullptr;
  TlabNext = nullptr;
  TlabEnd = nullptr;
}

void Mutator::collect(bool Major) {
  if (TILGC_UNLIKELY(Group != nullptr)) {
    Group->collectStopped(GroupIdx, Major);
    return;
  }
  GC->collect(Major);
}

void Mutator::raise(Value Exn) {
  // An uncaught ML exception is a workload bug, but one that must die
  // loudly and identifiably in every build mode — the NDEBUG alternative
  // is unwinding through an empty handler stack into memory corruption.
  if (TILGC_UNLIKELY(Handlers.empty()))
    fatalError("uncaught ML exception in mutator '%s': handler stack empty "
               "at raise #%llu with %zu live frames",
               Config.Name.empty() ? "<unnamed>" : Config.Name.c_str(),
               (unsigned long long)(NumRaises + 1), Stack.frameCount());
  HandlerEntry H = Handlers.back();
  Handlers.pop_back();
  ++NumRaises;

  // Size the target frame before touching the marker set (its key slot may
  // hold a stub key if the collector marked it).
  MarkerManager *MM = GC->markerManager();
  uint32_t Key =
      MM ? MM->resolveKey(Stack, H.FrameBase) : Stack.keyOf(H.FrameBase);
  uint32_t NumSlots = TraceTableRegistry::global().lookup(Key).numSlots();

  // Control jumps past the intervening frames without executing their
  // returns: retire jumped-over markers and update the watermark M (§5).
  if (MM)
    MM->onUnwind(H.FrameBase);
  Stack.unwindTo(H.FrameBase, NumSlots);

  throw MLRaise{Exn, H.Id};
}
