//===- runtime/Safepoint.h - Stop-the-world rendezvous ----------*- C++ -*-===//
//
// Part of the tilgc project (PLDI'98 GC reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stop-the-world safepoint protocol of the multi-mutator runtime
/// (DESIGN.md "Beyond the paper: multi-mutator runtime").
///
/// Every mutator thread polls a relaxed stop flag on its allocation fast
/// path and parks when a stop is in progress. Polling only at allocations
/// is sound because of the pointer-slot discipline: any allocation may
/// collect, so every live heap pointer is already in a frame slot at every
/// poll — a parked thread's stack is scannable and objects may move under
/// it. The corollary is a liveness rule: a thread that stops allocating
/// must exit (deactivate) for stops to make progress; MutatorGroup::run
/// guarantees this by deactivating each thread as its body returns.
///
/// A thread wanting the world stopped (slow-path allocation, explicit
/// collect) calls stopTheWorld: it parks behind any stop already in
/// progress, claims the stop, raises the flag, waits until every other
/// active thread is parked, runs its operation while holding the
/// coordination mutex, and resumes the world — exception-safely, so a
/// HeapExhausted thrown by the stopped-world operation releases the other
/// threads before it propagates.
///
/// Memory ordering: the mutex is the synchronization spine. Every thread
/// reacquires it when resuming from a park, so anything the stop owner
/// wrote while the world was stopped (space flips, merged statistics,
/// moved objects) happens-before every other thread's next step. The stop
/// flag itself can be relaxed: a thread that misses it simply parks at a
/// later poll, and the owner waits exactly until it does.
///
/// Pause-budget incremental slices (Options::MaxPauseMicros) ride the
/// same protocol: a mark slice is a (short) stopped-world operation run
/// from the allocation slow path, so the recorded pause of any group-mode
/// collection — slice or full — includes the rendezvous wait, i.e. the
/// time-to-safepoint of the slowest running thread. That component is
/// bounded by poll density, not by the budget; bench/pause_budget gates
/// the SLO on the single-mutator configuration for exactly this reason.
///
//===----------------------------------------------------------------------===//

#ifndef TILGC_RUNTIME_SAFEPOINT_H
#define TILGC_RUNTIME_SAFEPOINT_H

#include "observe/GcEvent.h"
#include "support/Compiler.h"
#include "support/Watchdog.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

namespace tilgc {

class SafepointCoordinator {
public:
  explicit SafepointCoordinator(unsigned NumThreads)
      : ParkBeginNs(NumThreads, 0) {}

  SafepointCoordinator(const SafepointCoordinator &) = delete;
  SafepointCoordinator &operator=(const SafepointCoordinator &) = delete;

  /// The allocation-path poll: one relaxed load.
  bool stopRequested() const {
    return Requested.load(std::memory_order_relaxed);
  }

  /// Supervises every later rendezvous with \p W: beginStopLocked arms it
  /// before waiting for parks and disarms it once every thread arrived. A
  /// bark carries per-mutator park state (read under try_lock) and is
  /// delivered through \p Dispatch on the supervisor thread. Deadline 0
  /// keeps every rendezvous unsupervised. Call before any thread runs.
  void configureWatchdog(Watchdog *W, uint64_t DeadlineMicros,
                         WatchdogPolicy Policy, Watchdog::DispatchFn Dispatch) {
    WD = W;
    WdDeadlineUs = DeadlineMicros;
    WdPolicy = Policy;
    WdDispatch = std::move(Dispatch);
  }

  /// Declares \p NumThreads threads about to start running (called before
  /// they spawn, so a stop can never race a thread into existence).
  void arm(unsigned NumThreads);

  /// Thread \p Idx has finished running and will poll no more.
  void deactivate(unsigned Idx);

  /// Parks thread \p Idx until no stop is in progress. Call after
  /// stopRequested() returns true (calling it spuriously is harmless).
  /// The armed SafepointStall fault point injects a sleep before the park,
  /// stretching the rendezvous window (torture).
  void yield(unsigned Idx);

  /// Stops the world, runs \p F, resumes the world, returns F's result.
  /// F runs with every other active thread parked and the coordination
  /// mutex held; if F throws, the world resumes before the exception
  /// propagates. Telemetry from the rendezvous (wait window, park spans)
  /// is readable through the accessors below from inside F.
  template <typename Fn>
  auto stopTheWorld(unsigned Idx, Fn &&F) -> decltype(F()) {
    std::unique_lock<std::mutex> L(M);
    beginStopLocked(L, Idx);
    struct ResumeGuard {
      SafepointCoordinator &SP;
      ~ResumeGuard() { SP.resumeLocked(); }
    } G{*this};
    return F();
  }

  // --- Rendezvous telemetry (valid inside the stopped-world operation) --

  uint64_t lastWaitBeginNs() const { return LastWaitBeginNs; }
  uint64_t lastWaitEndNs() const { return LastWaitEndNs; }
  /// Park spans of the threads that waited out this stop (GcWorkerSpan
  /// reused: Index = thread index, Begin = park time, End = rendezvous
  /// completion). Moves the storage out; call at most once per stop.
  std::vector<GcWorkerSpan> takeParkSpans() {
    return std::move(LastParkSpans);
  }

  /// Stops completed since construction (tests).
  uint64_t stops() const { return NumStops; }

private:
  void beginStopLocked(std::unique_lock<std::mutex> &L, unsigned Idx);
  void resumeLocked();
  void armRendezvousWatchdog();
  void fillRendezvousBark(WatchdogBark &B);

  std::mutex M;
  std::condition_variable OwnerCv;  ///< Signaled when parks/exits change.
  std::condition_variable ResumeCv; ///< Signaled when a stop ends.
  std::atomic<bool> Requested{false};
  bool StopInProgress = false;
  unsigned NumActive = 0; ///< Threads running (armed minus deactivated).
  unsigned NumSafe = 0;   ///< Threads parked (yield or queued stoppers).
  /// Per-thread park timestamp; 0 = not parked. A thread that stays parked
  /// across back-to-back stops keeps its original park time — its span
  /// honestly covers the whole parked stretch.
  std::vector<uint64_t> ParkBeginNs;

  uint64_t LastWaitBeginNs = 0;
  uint64_t LastWaitEndNs = 0;
  std::vector<GcWorkerSpan> LastParkSpans;
  uint64_t NumStops = 0;

  // Rendezvous watchdog (null/0 = unsupervised; see configureWatchdog).
  Watchdog *WD = nullptr;
  uint64_t WdDeadlineUs = 0;
  WatchdogPolicy WdPolicy = WatchdogPolicy::Report;
  Watchdog::DispatchFn WdDispatch;
};

} // namespace tilgc

#endif // TILGC_RUNTIME_SAFEPOINT_H
